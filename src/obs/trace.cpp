#include "src/obs/trace.hpp"

#include <iomanip>
#include <sstream>

namespace wivi::obs {

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kIngress: return "ingress";
    case Stage::kGuard: return "guard";
    case Stage::kStft: return "stft_doppler";
    case Stage::kMusic: return "music";
    case Stage::kDetect: return "detect";
    case Stage::kEmit: return "emit";
    case Stage::kChunk: return "chunk";
    case Stage::kCount: break;
  }
  return "unknown";
}

std::vector<TraceRecord> TraceBuffer::records() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // head_ is the oldest element once the ring has wrapped; before that the
  // ring is in push order starting at 0 (and head_ is still 0).
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

namespace {

/// Nanoseconds → trace-event microseconds with sub-ns kept as decimals.
void write_us(std::ostream& os, std::int64_t ns) {
  os << ns / 1000 << '.' << std::setw(3) << std::setfill('0') << ns % 1000
     << std::setfill(' ');
}

void write_event(std::ostream& os, const TraceRecord& r, int pid, bool first) {
  if (!first) os << ",\n";
  os << R"({"name":")" << r.name << R"(","cat":"wivi","ph":"X","ts":)";
  write_us(os, r.start_ns);
  os << ",\"dur\":";
  write_us(os, r.dur_ns);
  os << ",\"pid\":" << pid << ",\"tid\":0}";
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<TraceTrack>& tracks) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceTrack& t : tracks) {
    // Metadata event naming the track's process row in the Perfetto UI.
    if (!first) os << ",\n";
    os << R"({"name":"process_name","ph":"M","pid":)" << t.pid
       << R"(,"tid":0,"args":{"name":")" << t.label << "\"}}";
    first = false;
    for (const TraceRecord& r : t.records) write_event(os, r, t.pid, false);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace(std::ostream& os, const TraceBuffer& buffer,
                        const char* label) {
  write_chrome_trace(os, {TraceTrack{0, label, buffer.records()}});
}

void PipelineObserver::add_to_snapshot(Snapshot& snap,
                                       const std::string& prefix) const {
  if (!hist_) return;  // nothing recorded yet
  for (int i = 0; i < kStageCount; ++i) {
    const LocalHistogram& h = (*hist_)[static_cast<std::size_t>(i)];
    if (h.count() == 0) continue;
    snap.add_histogram(prefix + stage_name(static_cast<Stage>(i)) + "_ns",
                       h.snapshot());
  }
}

}  // namespace wivi::obs
