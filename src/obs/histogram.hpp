/// @file
/// Fixed-bucket log-scale latency histograms with quantile extraction.
///
/// The bucket layout is log-linear (HdrHistogram-style): values 0..7 get
/// exact unit buckets, and every power-of-two octave above is split into 8
/// linear sub-buckets, so any recorded value lands in a bucket whose width
/// is at most 1/8 (12.5%) of its lower bound. That bounds the relative
/// error of every extracted quantile by one sub-bucket (~13%, verified
/// against exact references by test_obs) while keeping the whole 64-bit
/// range in 496 fixed buckets — recording is one bit-scan plus one counter
/// bump, no allocation ever.
///
/// Two variants share the mapping:
///  * LocalHistogram — plain counters for single-threaded owners (an
///    api::Session records its per-stage latencies here);
///  * Histogram — cache-aligned per-thread slots of atomic counters,
///    aggregated on read, for concurrent recorders (the obs::Registry and
///    the rt::Engine's cross-worker latency metrics).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

namespace wivi::obs {

/// @addtogroup wivi_obs
/// @{

/// Sub-buckets per octave as a power of two (8 sub-buckets → every bucket
/// is at most 12.5% wide relative to its lower bound).
inline constexpr int kHistSubBits = 3;
/// Number of linear sub-buckets per power-of-two octave.
inline constexpr std::uint64_t kHistSub = std::uint64_t{1} << kHistSubBits;
/// Total buckets covering the full 64-bit value range.
inline constexpr int kHistBuckets =
    ((64 - kHistSubBits) << kHistSubBits) + static_cast<int>(kHistSub);

/// The bucket a value lands in: identity below kHistSub, log-linear above
/// (monotone in `v`, total over the 64-bit range).
[[nodiscard]] constexpr int bucket_index(std::uint64_t v) noexcept {
  if (v < kHistSub) return static_cast<int>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - kHistSubBits;
  return ((shift + 1) << kHistSubBits) |
         static_cast<int>((v >> shift) & (kHistSub - 1));
}

/// Smallest value mapping to bucket `idx` (the inverse of bucket_index on
/// bucket lower edges).
[[nodiscard]] constexpr std::uint64_t bucket_lower(int idx) noexcept {
  if (idx < static_cast<int>(kHistSub)) return static_cast<std::uint64_t>(idx);
  const int shift = (idx >> kHistSubBits) - 1;
  return (kHistSub | static_cast<std::uint64_t>(idx & (kHistSub - 1))) << shift;
}

/// Point-in-time summary of one histogram: count/sum plus the quantiles the
/// runtime reports everywhere. Quantile values are bucket midpoints, so
/// each is within one sub-bucket (~13% relative) of the exact order
/// statistic; `max` is the upper edge of the highest non-empty bucket.
struct HistogramSnapshot {
  std::uint64_t count = 0;  ///< Values recorded.
  std::uint64_t sum = 0;    ///< Sum of recorded values.
  std::uint64_t p50 = 0;    ///< Median estimate (bucket midpoint).
  std::uint64_t p90 = 0;    ///< 90th-percentile estimate.
  std::uint64_t p99 = 0;    ///< 99th-percentile estimate.
  std::uint64_t max = 0;    ///< Upper edge of the highest non-empty bucket.
  /// Mean of recorded values (0 when empty).
  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Quantile extraction over a raw bucket-count array (shared by both
/// histogram variants and by merged cross-thread aggregates): the bucket
/// midpoint at rank ceil(q * count).
[[nodiscard]] std::uint64_t quantile_from_buckets(
    const std::uint64_t* buckets, std::uint64_t count, double q) noexcept;

/// Summarise a raw bucket-count array (count must be the bucket total).
[[nodiscard]] HistogramSnapshot snapshot_from_buckets(
    const std::uint64_t* buckets, std::uint64_t sum) noexcept;

/// Single-threaded histogram: plain counters, zero synchronisation. The
/// right variant inside anything with a one-thread-at-a-time contract
/// (api::Session and the streaming stages).
class LocalHistogram {
 public:
  /// Record one value (no allocation; one bit-scan + two adds).
  void record(std::uint64_t v) noexcept {
    ++buckets_[static_cast<std::size_t>(bucket_index(v))];
    sum_ += v;
  }
  /// Values recorded so far.
  [[nodiscard]] std::uint64_t count() const noexcept;
  /// Summarise (count, sum, quantiles).
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  /// Add every bucket of `other` into this histogram (cross-instance
  /// aggregation, e.g. merging per-thread locals).
  void merge(const LocalHistogram& other) noexcept;
  /// Reset to empty.
  void reset() noexcept;

 private:
  std::array<std::uint64_t, kHistBuckets> buckets_{};
  std::uint64_t sum_ = 0;
};

/// Concurrent histogram: `slots` cache-aligned bucket arrays of relaxed
/// atomics, writers spread across slots by thread identity, reads
/// aggregate every slot. Any number of threads may record and snapshot
/// concurrently; a snapshot taken while writers are active is a racy but
/// internally consistent-enough point-in-time view (each counter is
/// monotone).
///
/// With `slots == 1` every writer shares one array — still safe (atomic
/// adds), just contended; use it where an external protocol already
/// serialises writers (the rt::Engine's per-session claim flag) and memory
/// matters more than write spread.
class Histogram {
 public:
  /// Build with `slots` per-thread slots (clamped to [1, 64]).
  explicit Histogram(int slots = 8);

  Histogram(const Histogram&) = delete;             ///< Non-copyable.
  Histogram& operator=(const Histogram&) = delete;  ///< Non-copyable.

  /// Record one value into this thread's slot (relaxed atomic add, no
  /// allocation).
  void record(std::uint64_t v) noexcept;
  /// Aggregate every slot into one summary.
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;
  /// Values recorded so far (aggregated over slots, relaxed).
  [[nodiscard]] std::uint64_t count() const noexcept;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };
  int slots_;
  std::unique_ptr<Slot[]> slot_;
};

/// The calling thread's stable slot index for sharded recorders: assigned
/// monotonically on first use, so the first N threads of a process get
/// private slots in any N-slot shard array (indices are taken modulo the
/// shard count by the users).
[[nodiscard]] int thread_slot() noexcept;

/// @}

}  // namespace wivi::obs
