/// @file
/// The lock-free metrics registry: named counters, gauges and latency
/// histograms with per-thread recording slots.
///
/// Hot-path contract (DESIGN.md §10): recording never allocates, never
/// takes a lock and never issues a fence stronger than relaxed — a Counter
/// bump on a thread with a private slot is literally one relaxed load and
/// one relaxed store on a cache line no other writer touches. Aggregation
/// happens entirely on the *read* side: value()/snapshot() sum the slots.
///
/// Registration (Registry::counter/gauge/histogram by name) is the cold
/// path: it takes a mutex, interns the name, and returns a reference that
/// stays valid for the registry's lifetime — callers cache the reference
/// and never look up on the hot path.
///
/// Disable paths: obs::set_enabled(false) turns every recording call into
/// a checked no-op at run time; compiling with WIVI_OBS_ENABLED=0 (CMake
/// -DWIVI_OBS=OFF) compiles them out entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/obs/histogram.hpp"
#include "src/obs/snapshot.hpp"

#ifndef WIVI_OBS_ENABLED
/// Compile-time master switch: define to 0 (CMake -DWIVI_OBS=OFF) to
/// compile every metric recording call down to nothing.
#define WIVI_OBS_ENABLED 1
#endif

namespace wivi::obs {

/// @addtogroup wivi_obs
/// @{

/// Run-time master switch for all obs recording (registry metrics and
/// pipeline observers); starts enabled. Reads are relaxed — a toggle
/// becomes visible to recorders promptly but not atomically across them.
void set_enabled(bool on) noexcept;
/// Current state of the run-time master switch.
[[nodiscard]] bool enabled() noexcept;

/// A monotonic counter sharded over cache-aligned per-thread slots. The
/// first kSlots-1 threads of the process own private slots (recording is a
/// relaxed load+store); later threads share the last slot (relaxed
/// fetch_add). value() sums all slots.
class Counter {
 public:
  /// Slots in the shard array (first kSlots-1 threads write privately).
  static constexpr int kSlots = 32;

  Counter() = default;  ///< Zero everywhere; normally obtained from a Registry.
  Counter(const Counter&) = delete;             ///< Non-copyable.
  Counter& operator=(const Counter&) = delete;  ///< Non-copyable.

  /// Add `n` (relaxed; private-slot threads pay a plain store).
  void add(std::uint64_t n = 1) noexcept {
#if WIVI_OBS_ENABLED
    if (!enabled()) return;
    const int t = thread_slot();
    std::atomic<std::uint64_t>& c = slot_[t < kSlots ? t : kSlots - 1].v;
    if (t < kSlots - 1)
      c.store(c.load(std::memory_order_relaxed) + n,
              std::memory_order_relaxed);
    else
      c.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  /// Sum over all slots (relaxed; exact once writers are quiet).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slot_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  Slot slot_[kSlots];
};

/// A point-in-time signed value (queue depth, fidelity level...): one
/// atomic, set/add from any thread, relaxed.
class Gauge {
 public:
  Gauge() = default;  ///< Starts at 0; normally obtained from a Registry.
  Gauge(const Gauge&) = delete;             ///< Non-copyable.
  Gauge& operator=(const Gauge&) = delete;  ///< Non-copyable.

  /// Overwrite the value (relaxed).
  void set(std::int64_t v) noexcept {
#if WIVI_OBS_ENABLED
    if (enabled()) v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  /// Adjust the value by `d` (relaxed fetch_add — gauges move both ways,
  /// so the single-writer store trick does not apply).
  void add(std::int64_t d) noexcept {
#if WIVI_OBS_ENABLED
    if (enabled()) v_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  /// Current value (relaxed).
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// The name-interning home of a metric set: counters, gauges and
/// histograms registered by name, each returned as a stable reference.
/// One Registry per subsystem that wants an exportable metric namespace
/// (the rt::Engine owns one); default_registry() serves process-global
/// metrics.
///
/// Thread-safe: registration locks, recording through the returned
/// references never does, snapshot() aggregates on read.
class Registry {
 public:
  Registry() = default;  ///< An empty registry.
  Registry(const Registry&) = delete;             ///< Non-copyable.
  Registry& operator=(const Registry&) = delete;  ///< Non-copyable.

  /// The counter named `name` (created on first use; same name → same
  /// counter). The reference stays valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  /// The gauge named `name` (created on first use).
  Gauge& gauge(std::string_view name);
  /// The histogram named `name` (created on first use) with `slots`
  /// per-thread recording slots (ignored when it already exists).
  Histogram& histogram(std::string_view name, int slots = 8);

  /// Aggregate every registered metric into one exportable snapshot
  /// (obs::write_snapshot renders it as JSON or Prometheus text).
  [[nodiscard]] Snapshot snapshot() const;

 private:
  template <typename T, typename... Args>
  T& intern(std::deque<std::pair<std::string, std::unique_ptr<T>>>& family,
            std::string_view name, Args&&... args);

  mutable std::mutex mu_;
  std::deque<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::deque<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::deque<std::pair<std::string, std::unique_ptr<Histogram>>> histograms_;
};

/// The process-global registry (metrics with no narrower owner).
[[nodiscard]] Registry& default_registry();

/// @}

}  // namespace wivi::obs
