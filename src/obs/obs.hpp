/// @file
/// Umbrella header for wivi::obs — metrics registry, per-stage latency
/// tracing and exportable runtime telemetry. See DESIGN.md §10 for the
/// metric naming scheme and overhead budget.
#pragma once

#include "src/obs/clock.hpp"      // IWYU pragma: export
#include "src/obs/histogram.hpp"  // IWYU pragma: export
#include "src/obs/metrics.hpp"    // IWYU pragma: export
#include "src/obs/snapshot.hpp"   // IWYU pragma: export
#include "src/obs/trace.hpp"      // IWYU pragma: export
