/// @file
/// Exportable telemetry snapshots: one flat, named view of a metric set,
/// writable as machine-readable JSON or Prometheus text exposition.
///
/// A Snapshot is the interchange type between the things that *have*
/// metrics (obs::Registry, rt::Engine, api::Session) and the things that
/// *consume* them (dashboards, scripts/check_trace.py, load-bench
/// tooling). Producers append named counters and histogram summaries;
/// obs::write_snapshot renders the result. Metric naming scheme in
/// DESIGN.md §10: snake_case, `wivi_` prefix, `_total` suffix on
/// monotonic counters, `_ns` suffix on nanosecond histograms.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/histogram.hpp"

namespace wivi::obs {

/// @addtogroup wivi_obs
/// @{

/// A flat point-in-time view of one metric set.
struct Snapshot {
  /// One named scalar (counter or gauge value).
  struct CounterValue {
    std::string name;         ///< Metric name (DESIGN.md §10 scheme).
    std::uint64_t value = 0;  ///< Value at snapshot time.
  };
  /// One named latency-histogram summary.
  struct HistogramValue {
    std::string name;        ///< Metric name (`_ns` suffix by convention).
    HistogramSnapshot hist;  ///< count/sum/p50/p90/p99/max.
  };

  /// What produced this snapshot (e.g. "wivi::rt::Engine").
  std::string source;
  /// All scalar metrics, registration order.
  std::vector<CounterValue> counters;
  /// All histogram metrics, registration order.
  std::vector<HistogramValue> histograms;

  /// Append a scalar metric.
  void add_counter(std::string name, std::uint64_t value) {
    counters.push_back({std::move(name), value});
  }
  /// Append a histogram summary.
  void add_histogram(std::string name, HistogramSnapshot hist) {
    histograms.push_back({std::move(name), hist});
  }
  /// The value of the scalar named `name` (0 when absent — snapshots are
  /// for export; tests use this to assert conservation laws).
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
};

/// Snapshot wire formats.
enum class ExportFormat {
  kJson,        ///< One JSON object (schema validated by check_trace.py).
  kPrometheus,  ///< Prometheus text exposition (counters + summaries).
};

/// Render `snap` to `os`. JSON schema:
/// `{"version":1,"source":...,"counters":{name:value,...},
///   "histograms":{name:{"count","sum","mean","p50","p90","p99","max"}}}`
/// (histogram fields in the metric's own unit, nanoseconds by convention).
/// Prometheus: `# TYPE` lines, counters as plain samples, histograms as
/// summaries with quantile labels.
void write_snapshot(std::ostream& os, const Snapshot& snap,
                    ExportFormat format = ExportFormat::kJson);

/// @}

}  // namespace wivi::obs
