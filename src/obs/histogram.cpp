#include "src/obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.hpp"

namespace wivi::obs {

namespace {

/// Midpoint of bucket `idx` — the reported quantile value. Buckets are
/// [lower, next_lower), so the midpoint is within half a bucket width of
/// any member.
std::uint64_t bucket_mid(int idx) noexcept {
  const std::uint64_t lo = bucket_lower(idx);
  const std::uint64_t hi =
      idx + 1 < kHistBuckets ? bucket_lower(idx + 1) : lo + (lo >> kHistSubBits);
  return lo + (hi - lo) / 2;
}

}  // namespace

std::uint64_t quantile_from_buckets(const std::uint64_t* buckets,
                                    std::uint64_t count, double q) noexcept {
  if (count == 0) return 0;
  // Rank of the order statistic: ceil(q * count), clamped to [1, count].
  const double want = q * static_cast<double>(count);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(want));
  rank = std::clamp<std::uint64_t>(rank, 1, count);
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) return bucket_mid(i);
  }
  return bucket_mid(kHistBuckets - 1);
}

HistogramSnapshot snapshot_from_buckets(const std::uint64_t* buckets,
                                        std::uint64_t sum) noexcept {
  HistogramSnapshot s;
  s.sum = sum;
  int top = -1;
  for (int i = 0; i < kHistBuckets; ++i) {
    s.count += buckets[i];
    if (buckets[i] != 0) top = i;
  }
  if (s.count == 0) return s;
  s.p50 = quantile_from_buckets(buckets, s.count, 0.50);
  s.p90 = quantile_from_buckets(buckets, s.count, 0.90);
  s.p99 = quantile_from_buckets(buckets, s.count, 0.99);
  s.max = top + 1 < kHistBuckets ? bucket_lower(top + 1)
                                 : bucket_lower(top) * 2;
  return s;
}

std::uint64_t LocalHistogram::count() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t b : buckets_) n += b;
  return n;
}

HistogramSnapshot LocalHistogram::snapshot() const noexcept {
  return snapshot_from_buckets(buckets_.data(), sum_);
}

void LocalHistogram::merge(const LocalHistogram& other) noexcept {
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  sum_ += other.sum_;
}

void LocalHistogram::reset() noexcept { *this = LocalHistogram(); }

Histogram::Histogram(int slots)
    : slots_(std::clamp(slots, 1, 64)),
      slot_(std::make_unique<Slot[]>(static_cast<std::size_t>(slots_))) {}

void Histogram::record(std::uint64_t v) noexcept {
#if !WIVI_OBS_ENABLED
  (void)v;
  return;
#endif
  if (!enabled()) return;
  Slot& s = slot_[static_cast<std::size_t>(thread_slot() % slots_)];
  s.buckets[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  std::array<std::uint64_t, kHistBuckets> agg{};
  std::uint64_t sum = 0;
  for (int s = 0; s < slots_; ++s) {
    const Slot& sl = slot_[static_cast<std::size_t>(s)];
    for (int i = 0; i < kHistBuckets; ++i)
      agg[static_cast<std::size_t>(i)] +=
          sl.buckets[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    sum += sl.sum.load(std::memory_order_relaxed);
  }
  return snapshot_from_buckets(agg.data(), sum);
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t n = 0;
  for (int s = 0; s < slots_; ++s)
    for (int i = 0; i < kHistBuckets; ++i)
      n += slot_[static_cast<std::size_t>(s)].buckets[static_cast<std::size_t>(
          i)].load(std::memory_order_relaxed);
  return n;
}

namespace {
std::atomic<int> g_next_thread_slot{0};
}  // namespace

int thread_slot() noexcept {
  thread_local const int slot =
      g_next_thread_slot.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace wivi::obs
