#include "src/obs/metrics.hpp"

#include <utility>

namespace wivi::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

template <typename T, typename... Args>
T& Registry::intern(
    std::deque<std::pair<std::string, std::unique_ptr<T>>>& family,
    std::string_view name, Args&&... args) {
  std::lock_guard lk(mu_);
  for (auto& [n, m] : family)
    if (n == name) return *m;
  family.emplace_back(std::string(name),
                      std::make_unique<T>(std::forward<Args>(args)...));
  return *family.back().second;
}

Counter& Registry::counter(std::string_view name) {
  return intern(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) { return intern(gauges_, name); }

Histogram& Registry::histogram(std::string_view name, int slots) {
  return intern(histograms_, name, slots);
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.source = "wivi::obs::Registry";
  std::lock_guard lk(mu_);
  for (const auto& [name, c] : counters_) snap.add_counter(name, c->value());
  for (const auto& [name, g] : gauges_)
    snap.add_counter(name, static_cast<std::uint64_t>(g->value()));
  for (const auto& [name, h] : histograms_)
    snap.add_histogram(name, h->snapshot());
  return snap;
}

Registry& default_registry() {
  static Registry* reg = new Registry();  // leaked: outlives static dtors
  return *reg;
}

}  // namespace wivi::obs
