#include "src/obs/snapshot.hpp"

#include <string_view>

namespace wivi::obs {

namespace {

/// JSON string escaping for metric/source names (the only free-form
/// strings in a snapshot; metric names are snake_case in practice, so the
/// escapes are belt-and-braces).
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';  // control chars never appear in metric names
        else
          os << c;
    }
  }
  os << '"';
}

void write_hist_json(std::ostream& os, const HistogramSnapshot& h) {
  os << "{\"count\":" << h.count << ",\"sum\":" << h.sum
     << ",\"mean\":" << h.mean() << ",\"p50\":" << h.p50
     << ",\"p90\":" << h.p90 << ",\"p99\":" << h.p99 << ",\"max\":" << h.max
     << "}";
}

void write_json(std::ostream& os, const Snapshot& snap) {
  os << "{\"version\":1,\"source\":";
  write_json_string(os, snap.source);
  os << ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) os << ",";
    write_json_string(os, snap.counters[i].name);
    os << ":" << snap.counters[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i != 0) os << ",";
    write_json_string(os, snap.histograms[i].name);
    os << ":";
    write_hist_json(os, snap.histograms[i].hist);
  }
  os << "}}\n";
}

void write_prometheus(std::ostream& os, const Snapshot& snap) {
  for (const Snapshot::CounterValue& c : snap.counters) {
    os << "# TYPE " << c.name << " counter\n"
       << c.name << " " << c.value << "\n";
  }
  for (const Snapshot::HistogramValue& h : snap.histograms) {
    os << "# TYPE " << h.name << " summary\n"
       << h.name << "{quantile=\"0.5\"} " << h.hist.p50 << "\n"
       << h.name << "{quantile=\"0.9\"} " << h.hist.p90 << "\n"
       << h.name << "{quantile=\"0.99\"} " << h.hist.p99 << "\n"
       << h.name << "_sum " << h.hist.sum << "\n"
       << h.name << "_count " << h.hist.count << "\n";
  }
}

}  // namespace

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  for (const CounterValue& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

void write_snapshot(std::ostream& os, const Snapshot& snap,
                    ExportFormat format) {
  if (format == ExportFormat::kJson)
    write_json(os, snap);
  else
    write_prometheus(os, snap);
}

}  // namespace wivi::obs
