/// @file
/// The runtime's single time base: a pluggable monotonic nanosecond clock.
///
/// Every latency, watchdog and span measurement in the runtime reads time
/// through obs::now_ns() — one indirection over std::chrono::steady_clock
/// (never system_clock: wall time jumps under NTP slew and would corrupt
/// latency histograms and liveness deadlines). The indirection exists so
/// tests can install an obs::FakeClock and drive watchdog timeouts,
/// restart backoffs and latency measurements deterministically instead of
/// sleeping through them.
///
/// The hot-path cost is one relaxed atomic load of a function pointer plus
/// the call — noise next to the clock_gettime behind steady_clock itself.
#pragma once

#include <cstdint>

namespace wivi::obs {

/// @addtogroup wivi_obs
/// @{

/// A time source: monotonic nanoseconds since an arbitrary epoch.
using ClockFn = std::int64_t (*)() noexcept;

/// std::chrono::steady_clock::now() in nanoseconds — the default source.
[[nodiscard]] std::int64_t steady_now_ns() noexcept;

/// Monotonic nanoseconds from the currently installed source (the steady
/// clock unless a FakeClock is active). The runtime-wide time base.
[[nodiscard]] std::int64_t now_ns() noexcept;

/// Install `fn` as the time source (nullptr restores the steady clock);
/// returns the previously installed source. Prefer FakeClock, which
/// restores the previous source automatically.
ClockFn set_clock(ClockFn fn) noexcept;

/// A manually advanced time source for deterministic tests: installing one
/// reroutes obs::now_ns() to an internal counter that only moves when the
/// test says so. Install *before* constructing the component under test
/// (an rt::Engine samples the clock at session open), advance past the
/// deadline under test, observe the reaction — no sleeps, no flakes.
///
/// At most one FakeClock may be alive at a time (enforced); the destructor
/// restores the previously installed source.
class FakeClock {
 public:
  /// Install the fake source, starting at `start_ns`.
  explicit FakeClock(std::int64_t start_ns = 0);
  ~FakeClock();  ///< Restore the previously installed time source.

  FakeClock(const FakeClock&) = delete;             ///< Non-copyable.
  FakeClock& operator=(const FakeClock&) = delete;  ///< Non-copyable.

  /// Move the fake time forward by `ns` (callable from any thread).
  void advance_ns(std::int64_t ns) noexcept;
  /// Move the fake time forward by `sec` seconds.
  void advance_sec(double sec) noexcept;
  /// The fake time currently reported to obs::now_ns().
  [[nodiscard]] std::int64_t now() const noexcept;

 private:
  ClockFn prev_;
};

/// @}

}  // namespace wivi::obs
