#include "src/obs/clock.hpp"

#include <atomic>
#include <chrono>

#include "src/common/error.hpp"

namespace wivi::obs {

namespace {

std::atomic<ClockFn> g_clock{&steady_now_ns};

// FakeClock state: a process-wide counter so the source function can be a
// plain function pointer (no captures) and stay one relaxed load away.
std::atomic<std::int64_t> g_fake_ns{0};
std::atomic<bool> g_fake_alive{false};

std::int64_t fake_now_ns() noexcept {
  return g_fake_ns.load(std::memory_order_relaxed);
}

}  // namespace

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t now_ns() noexcept {
  return g_clock.load(std::memory_order_relaxed)();
}

ClockFn set_clock(ClockFn fn) noexcept {
  return g_clock.exchange(fn != nullptr ? fn : &steady_now_ns,
                          std::memory_order_relaxed);
}

FakeClock::FakeClock(std::int64_t start_ns) {
  WIVI_REQUIRE(!g_fake_alive.exchange(true),
               "only one obs::FakeClock may be alive at a time");
  g_fake_ns.store(start_ns, std::memory_order_relaxed);
  prev_ = set_clock(&fake_now_ns);
}

FakeClock::~FakeClock() {
  (void)set_clock(prev_);
  g_fake_alive.store(false);
}

void FakeClock::advance_ns(std::int64_t ns) noexcept {
  g_fake_ns.fetch_add(ns, std::memory_order_relaxed);
}

void FakeClock::advance_sec(double sec) noexcept {
  advance_ns(static_cast<std::int64_t>(sec * 1e9));
}

std::int64_t FakeClock::now() const noexcept {
  return g_fake_ns.load(std::memory_order_relaxed);
}

}  // namespace wivi::obs
