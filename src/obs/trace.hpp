/// @file
/// Per-stage latency spans and the bounded trace ring: how one chunk's
/// journey through the pipeline becomes numbers (per-stage histograms) and
/// pictures (a Chrome trace-event JSON you can drop into Perfetto).
///
/// The pipeline stages are fixed (Stage enum) so recording is an array
/// index, not a name lookup. A PipelineObserver is single-writer by
/// construction — it belongs to one api::Session (whose push() path is
/// single-threaded) or one claim-serialized engine session — so its
/// histograms are plain LocalHistograms and its TraceBuffer needs no
/// atomics.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "src/obs/clock.hpp"
#include "src/obs/histogram.hpp"
#include "src/obs/metrics.hpp"

namespace wivi::obs {

/// @addtogroup wivi_obs
/// @{

/// The fixed pipeline stages a chunk passes through (DESIGN.md §10).
enum class Stage : int {
  kIngress = 0,  ///< Offer-to-pop wait in the engine ring (engine only).
  kGuard,        ///< Input validation / sanitization.
  kStft,         ///< Sliding correlation advance (STFT/Doppler window).
  kMusic,        ///< MUSIC pseudospectrum for one emitted column.
  kDetect,       ///< Motion counting / association / gesture decoding.
  kEmit,         ///< Event delivery to the sink.
  kChunk,        ///< The whole push (guard through emit).
  kCount,        ///< Number of stages (array bound, not a stage).
};

/// Number of real stages (excludes Stage::kCount).
inline constexpr int kStageCount = static_cast<int>(Stage::kCount);

/// The stable metric/trace name of `s` ("guard", "stft_doppler", ...).
[[nodiscard]] const char* stage_name(Stage s) noexcept;

/// One completed span: a named interval on the pipeline timeline.
struct TraceRecord {
  const char* name = "";     ///< Stage or event name (static storage).
  std::int64_t start_ns = 0; ///< Span start, obs::now_ns() timebase.
  std::int64_t dur_ns = 0;   ///< Span duration in nanoseconds.
};

/// A bounded ring of the most recent trace spans. Capacity 0 disables
/// recording entirely (push is a counter bump). Single-writer; readers
/// must be externally synchronized with the writer (e.g. call records()
/// from the same thread, or after the pipeline is quiet).
class TraceBuffer {
 public:
  /// A ring keeping the most recent `capacity` spans.
  explicit TraceBuffer(std::size_t capacity = 0) : cap_(capacity) {
    ring_.reserve(capacity);
  }

  /// Append a span, evicting the oldest when full.
  void push(const TraceRecord& r) {
    ++total_;
    if (cap_ == 0) return;
    if (ring_.size() < cap_) {
      ring_.push_back(r);
    } else {
      ring_[head_] = r;
      head_ = (head_ + 1) % cap_;
    }
  }

  /// Maximum retained spans.
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  /// Currently retained spans (≤ capacity).
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  /// Spans ever pushed, including evicted ones.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// The retained spans, oldest first.
  [[nodiscard]] std::vector<TraceRecord> records() const;

  /// Drop all retained spans (total() is preserved).
  void clear() {
    ring_.clear();
    head_ = 0;
  }

 private:
  std::size_t cap_;
  std::size_t head_ = 0;  // oldest element once the ring is full
  std::uint64_t total_ = 0;
  std::vector<TraceRecord> ring_;
};

/// One exportable trace track: a (process id, span source) pair. The
/// engine exports one track per session so Perfetto shows them as
/// separate processes.
struct TraceTrack {
  int pid = 0;                       ///< Chrome trace "pid" for this track.
  const char* label = "wivi";        ///< Track label (process_name row).
  std::vector<TraceRecord> records;  ///< Spans, any order.
};

/// Write `tracks` as Chrome trace-event JSON (`{"traceEvents":[...]}`,
/// complete "X" events, ts/dur in microseconds) — loadable in Perfetto or
/// chrome://tracing, validated by scripts/check_trace.py.
void write_chrome_trace(std::ostream& os, const std::vector<TraceTrack>& tracks);

/// Convenience: a single track with pid 0.
void write_chrome_trace(std::ostream& os, const TraceBuffer& buffer,
                        const char* label = "wivi");

/// The per-stage instrument a pipeline carries: one LocalHistogram per
/// Stage plus an optional TraceBuffer of recent spans. Single-writer (see
/// file comment). Recording honours both the compile-time switch and
/// obs::enabled() via ScopedSpan / record().
class PipelineObserver {
 public:
  /// An observer with span timing on/off and `trace_capacity` retained
  /// trace spans (0 = no trace ring).
  explicit PipelineObserver(bool timing = true, std::size_t trace_capacity = 0)
      : timing_(timing), trace_(trace_capacity) {}

  /// Whether spans should be measured right now (compile-time switch AND
  /// construction-time `timing` AND run-time obs::enabled()).
  [[nodiscard]] bool active() const noexcept {
#if WIVI_OBS_ENABLED
    return timing_ && enabled();
#else
    return false;
#endif
  }

  /// Record a completed span for `s` (start/end in obs::now_ns() time).
  void record(Stage s, std::int64_t start_ns, std::int64_t end_ns) {
    const std::int64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
    if (!hist_)  // first span ever: materialise the histogram block
      hist_ = std::make_unique<std::array<LocalHistogram, kStageCount>>();
    (*hist_)[static_cast<std::size_t>(s)].record(
        static_cast<std::uint64_t>(dur));
    if (trace_.capacity() != 0)
      trace_.push({stage_name(s), start_ns, dur});
  }

  /// The latency histogram of stage `s` (all spans recorded so far; a
  /// shared empty histogram before the first record()).
  [[nodiscard]] const LocalHistogram& stage(Stage s) const noexcept {
    static const LocalHistogram kEmpty;
    return hist_ ? (*hist_)[static_cast<std::size_t>(s)] : kEmpty;
  }

  /// The trace ring (capacity 0 when tracing is off).
  [[nodiscard]] const TraceBuffer& trace() const noexcept { return trace_; }

  /// Append every non-empty stage histogram to `snap` as
  /// `<prefix><stage>_ns`.
  void add_to_snapshot(Snapshot& snap, const std::string& prefix) const;

 private:
  bool timing_;
  // Lazily allocated on the first recorded span: an observer that never
  // records (an idle session, or obs disabled) costs pointer-size instead
  // of the full kStageCount histogram block.
  std::unique_ptr<std::array<LocalHistogram, kStageCount>> hist_;
  TraceBuffer trace_;
};

/// RAII span: captures obs::now_ns() at construction when the observer is
/// active, records the interval at destruction (or at an explicit stop()).
class ScopedSpan {
 public:
  /// Start timing stage `s` on `obs` (null or inactive observer → no-op).
  ScopedSpan(PipelineObserver* obs, Stage s) noexcept
      : obs_(obs != nullptr && obs->active() ? obs : nullptr),
        stage_(s),
        start_ns_(obs_ != nullptr ? now_ns() : 0) {}

  ScopedSpan(const ScopedSpan&) = delete;             ///< Non-copyable.
  ScopedSpan& operator=(const ScopedSpan&) = delete;  ///< Non-copyable.

  /// Record the span now instead of at scope exit.
  void stop() noexcept {
    if (obs_ == nullptr) return;
    obs_->record(stage_, start_ns_, now_ns());
    obs_ = nullptr;
  }

  ~ScopedSpan() { stop(); }  ///< Records the span unless stop()ped already.

 private:
  PipelineObserver* obs_;
  Stage stage_;
  std::int64_t start_ns_;
};

/// @}

}  // namespace wivi::obs
