// Descriptive statistics and empirical CDFs.
//
// The evaluation chapter reports its results almost entirely as CDFs
// (Figs. 7-3, 7-5, 7-7), medians and means; this module computes them.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/types.hpp"

namespace wivi::dsp {

[[nodiscard]] double mean(RSpan x);
[[nodiscard]] double variance(RSpan x);  // population variance
[[nodiscard]] double stddev(RSpan x);
[[nodiscard]] double median(RSpan x);

/// Median computed destructively (the buffer is partially reordered) with
/// std::nth_element instead of a copy + full sort: O(n) and allocation-free
/// for callers that own a scratch buffer. Returns exactly median(x).
[[nodiscard]] double median_inplace(std::span<double> x);

/// Linear-interpolated percentile, p in [0, 100].
[[nodiscard]] double percentile(RSpan x, double p);

/// Empirical CDF over a sample set; evaluate and tabulate.
class Ecdf {
 public:
  explicit Ecdf(RSpan samples);

  /// Fraction of samples <= v.
  [[nodiscard]] double operator()(double v) const;

  /// Value below which a fraction q of samples fall (inverse CDF), q in [0,1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Evenly spaced (value, fraction) rows, ready for printing a CDF figure.
  struct Row {
    double value;
    double fraction;
  };
  [[nodiscard]] std::vector<Row> tabulate(std::size_t num_rows) const;

 private:
  RVec sorted_;
};

/// Histogram with uniform bins over [lo, hi].
struct Histogram {
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;

  [[nodiscard]] static Histogram build(RSpan x, double lo, double hi,
                                       std::size_t bins);
};

}  // namespace wivi::dsp
