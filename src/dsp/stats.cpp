#include "src/dsp/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace wivi::dsp {

double mean(RSpan x) {
  WIVI_REQUIRE(!x.empty(), "mean of empty range");
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double variance(RSpan x) {
  const double m = mean(x);
  double acc = 0.0;
  for (double v : x) acc += (v - m) * (v - m);
  return acc / static_cast<double>(x.size());
}

double stddev(RSpan x) { return std::sqrt(variance(x)); }

double median(RSpan x) { return percentile(x, 50.0); }

double median_inplace(std::span<double> x) {
  WIVI_REQUIRE(!x.empty(), "median of empty range");
  const std::size_t n = x.size();
  const auto mid = x.begin() + static_cast<std::ptrdiff_t>(n / 2);
  std::nth_element(x.begin(), mid, x.end());
  if (n % 2 == 1) return *mid;
  // Even length: the lower middle is the max of the left partition; combine
  // with the same expression percentile() uses so the value is identical.
  const double lo = *std::max_element(x.begin(), mid);
  return lo * 0.5 + *mid * 0.5;
}

double percentile(RSpan x, double p) {
  WIVI_REQUIRE(!x.empty(), "percentile of empty range");
  WIVI_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  RVec sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Ecdf::Ecdf(RSpan samples) : sorted_(samples.begin(), samples.end()) {
  WIVI_REQUIRE(!sorted_.empty(), "Ecdf needs at least one sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double v) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), v);
  return static_cast<double>(std::distance(sorted_.begin(), it)) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  WIVI_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  return percentile(sorted_, q * 100.0);
}

double Ecdf::min() const { return sorted_.front(); }
double Ecdf::max() const { return sorted_.back(); }

std::vector<Ecdf::Row> Ecdf::tabulate(std::size_t num_rows) const {
  WIVI_REQUIRE(num_rows >= 2, "tabulate needs >= 2 rows");
  std::vector<Row> rows;
  rows.reserve(num_rows);
  const double lo = min();
  const double hi = max();
  for (std::size_t i = 0; i < num_rows; ++i) {
    const double v =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(num_rows - 1);
    rows.push_back({v, (*this)(v)});
  }
  return rows;
}

Histogram Histogram::build(RSpan x, double lo, double hi, std::size_t bins) {
  WIVI_REQUIRE(bins > 0 && hi > lo, "histogram needs bins > 0 and hi > lo");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  for (double v : x) {
    if (v < lo || v >= hi) continue;
    const auto idx =
        static_cast<std::size_t>((v - lo) / (hi - lo) * static_cast<double>(bins));
    ++h.counts[std::min(idx, bins - 1)];
  }
  return h;
}

}  // namespace wivi::dsp
