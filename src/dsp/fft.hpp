// In-place radix-2 FFT/IFFT with precomputed plans.
//
// The OFDM PHY only ever needs power-of-two sizes (64 subcarriers, paper
// §7.1), so a plain iterative Cooley-Tukey is exact and dependency-free.
// Hot paths (the Doppler STFT, the OFDM modem) run the transform thousands
// of times per trace at a handful of fixed sizes, so the twiddle factors
// and the bit-reversal permutation are computed once per size in an
// `FftPlan` and reused; the legacy `fft()/ifft()` entry points are thin
// wrappers over a thread-local plan cache and keep their exact semantics.
#pragma once

#include <memory>
#include <span>

#include "src/common/types.hpp"

namespace wivi::dsp {

/// True iff n is a power of two (and > 0).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// A precomputed radix-2 transform of one fixed power-of-two size: the
/// bit-reversal permutation plus per-stage twiddle tables (each twiddle
/// evaluated directly from cos/sin, not by iterated multiplication, so the
/// plan is also more accurate than the textbook loop it replaces).
/// Executing a plan performs no heap allocation; buffers are caller-owned.
class FftPlan {
 public:
  /// Throws InvalidArgument unless n is a power of two.
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// In-place forward DFT of exactly size() samples (no scaling).
  void forward(std::span<cdouble> x) const;

  /// In-place inverse DFT of exactly size() samples with 1/N scaling.
  void inverse(std::span<cdouble> x) const;

 private:
  void run(std::span<cdouble> x, const CVec& twiddles) const;

  std::size_t n_ = 0;
  std::vector<std::uint32_t> rev_;  // bit-reversal permutation
  CVec tw_fwd_;  // per-stage twiddles, packed: [len=2 | len=4 | ... | len=n]
  CVec tw_inv_;  // conjugate table for the inverse transform
};

/// Shared handle to the registry-owned plan for size n (wivi::plan): the
/// plan is built at most once process-wide while resident, shared across
/// every thread and session, and the handle pins it past any cache
/// eviction. Prefer this for long-lived owners (e.g. a processor member);
/// hot loops that want a bare reference use fft_plan().
[[nodiscard]] std::shared_ptr<const FftPlan> acquire_fft_plan(std::size_t n);

/// Borrowed per-thread fast path over acquire_fft_plan(): a bounded
/// thread-local memo (one handle per power-of-two size) backed by the
/// shared plan registry — every thread resolves the same size to the same
/// registry-owned plan, and a registry hit is allocation-free. The
/// reference stays valid for the thread's lifetime (the memo's handle
/// pins the plan even if the registry evicts it).
[[nodiscard]] const FftPlan& fft_plan(std::size_t n);

/// In-place forward DFT. `x.size()` must be a power of two.
/// Convention: X[k] = sum_n x[n] * exp(-j 2 pi k n / N), no scaling.
void fft(CVec& x);

/// In-place inverse DFT with 1/N scaling, so ifft(fft(x)) == x.
void ifft(CVec& x);

/// Out-of-place convenience overloads.
[[nodiscard]] CVec fft_copy(CSpan x);
[[nodiscard]] CVec ifft_copy(CSpan x);

/// Rotate so the zero-frequency bin sits in the middle (plot ordering):
/// x[0] lands at index n/2 (floor), for even and odd n alike.
[[nodiscard]] CVec fftshift(CSpan x);

/// Exact inverse of fftshift. For even n the two are the same rotation;
/// for odd n they differ by one sample — using fftshift twice there is an
/// off-by-one, which is why this exists (parity pinned in test_dsp).
[[nodiscard]] CVec ifftshift(CSpan x);

}  // namespace wivi::dsp
