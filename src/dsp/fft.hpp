// In-place radix-2 FFT/IFFT.
//
// The OFDM PHY only ever needs power-of-two sizes (64 subcarriers, paper
// §7.1), so a plain iterative Cooley-Tukey is exact and dependency-free.
#pragma once

#include "src/common/types.hpp"

namespace wivi::dsp {

/// True iff n is a power of two (and > 0).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// In-place forward DFT. `x.size()` must be a power of two.
/// Convention: X[k] = sum_n x[n] * exp(-j 2 pi k n / N), no scaling.
void fft(CVec& x);

/// In-place inverse DFT with 1/N scaling, so ifft(fft(x)) == x.
void ifft(CVec& x);

/// Out-of-place convenience overloads.
[[nodiscard]] CVec fft_copy(CSpan x);
[[nodiscard]] CVec ifft_copy(CSpan x);

/// Rotate so the zero-frequency bin sits in the middle (plot ordering).
[[nodiscard]] CVec fftshift(CSpan x);

}  // namespace wivi::dsp
