// FIR filtering: design (windowed sinc) and application, plus the moving
// average / decimation used to turn raw channel estimates into the 312.5 Hz
// estimate stream the smoothed-MUSIC stage consumes (paper §7.1).
#pragma once

#include "src/common/types.hpp"
#include "src/dsp/window.hpp"

namespace wivi::dsp {

/// Design a linear-phase low-pass FIR via the windowed-sinc method.
/// `cutoff_norm` is the cutoff as a fraction of the sample rate in (0, 0.5).
[[nodiscard]] RVec design_lowpass(std::size_t num_taps, double cutoff_norm,
                                  WindowType window = WindowType::kHamming);

/// Convolution modes (numpy naming).
enum class ConvMode { kFull, kSame };

/// Convolve complex data with real taps.
[[nodiscard]] CVec convolve(CSpan x, RSpan taps, ConvMode mode);

/// Convolve real data with real taps.
[[nodiscard]] RVec convolve(RSpan x, RSpan taps, ConvMode mode);

/// Average consecutive non-overlapping blocks of `factor` samples
/// (the "averaged into an antenna array" step of paper §7.1);
/// output length is x.size() / factor (remainder dropped).
[[nodiscard]] CVec block_average(CSpan x, std::size_t factor);

/// Simple moving average of odd length `w`, same-size output.
[[nodiscard]] RVec moving_average(RSpan x, std::size_t w);

}  // namespace wivi::dsp
