// Window functions used by the spectral-analysis stages.
#pragma once

#include <memory>

#include "src/common/types.hpp"

namespace wivi::dsp {

enum class WindowType { kRectangular, kHann, kHamming, kBlackman, kTriangular };

/// Generate an n-point window of the given type.
///
/// `periodic = false` (default) gives the symmetric form (endpoints
/// mirror; the right choice for FIR design, where linear phase needs the
/// symmetry). `periodic = true` evaluates the same formula over n points
/// of a full period (equivalently: the first n points of the symmetric
/// (n+1)-window), which is the DFT/STFT convention — overlapped shifts of
/// a periodic Hann at hop = n/4 or n/2 sum to an exactly constant level
/// (COLA), whereas the symmetric form double-counts its endpoint seam.
[[nodiscard]] RVec make_window(WindowType type, std::size_t n,
                               bool periodic = false);

/// Shared handle to the registry-owned coefficient table for
/// (type, n, periodic) — exactly make_window()'s values, built at most
/// once process-wide while resident (wivi::plan) and shared read-only
/// across threads and sessions.
[[nodiscard]] std::shared_ptr<const RVec> acquire_window(WindowType type,
                                                         std::size_t n,
                                                         bool periodic = false);

/// Multiply a complex buffer by a real window element-wise.
void apply_window(CVec& x, RSpan window);

/// Sum of window coefficients (for amplitude normalisation).
[[nodiscard]] double window_gain(RSpan window) noexcept;

}  // namespace wivi::dsp
