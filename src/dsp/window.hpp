// Window functions used by the spectral-analysis stages.
#pragma once

#include "src/common/types.hpp"

namespace wivi::dsp {

enum class WindowType { kRectangular, kHann, kHamming, kBlackman, kTriangular };

/// Generate an n-point window of the given type (symmetric form).
[[nodiscard]] RVec make_window(WindowType type, std::size_t n);

/// Multiply a complex buffer by a real window element-wise.
void apply_window(CVec& x, RSpan window);

/// Sum of window coefficients (for amplitude normalisation).
[[nodiscard]] double window_gain(RSpan window) noexcept;

}  // namespace wivi::dsp
