#include "src/dsp/window.hpp"

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"
#include "src/plan/registry.hpp"

namespace wivi::dsp {

RVec make_window(WindowType type, std::size_t n, bool periodic) {
  WIVI_REQUIRE(n > 0, "window length must be positive");
  RVec w(n, 1.0);
  if (n == 1) return w;
  const double denom = static_cast<double>(periodic ? n : n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / denom;  // in [0, 1]
    switch (type) {
      case WindowType::kRectangular:
        w[i] = 1.0;
        break;
      case WindowType::kHann:
        w[i] = 0.5 - 0.5 * std::cos(kTwoPi * t);
        break;
      case WindowType::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(kTwoPi * t);
        break;
      case WindowType::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(kTwoPi * t) + 0.08 * std::cos(2.0 * kTwoPi * t);
        break;
      case WindowType::kTriangular:
        w[i] = 1.0 - std::abs(2.0 * t - 1.0);
        break;
    }
  }
  return w;
}

std::shared_ptr<const RVec> acquire_window(WindowType type, std::size_t n,
                                           bool periodic) {
  WIVI_REQUIRE(n > 0, "window length must be positive");
  struct Ctx {
    WindowType type;
    std::size_t n;
    bool periodic;
  } ctx{type, n, periodic};
  const std::uint64_t ints[3] = {static_cast<std::uint64_t>(type),
                                 static_cast<std::uint64_t>(n),
                                 periodic ? 1u : 0u};
  const plan::KeyRef key{plan::Kind::kWindow, ints, {}, {}};
  const auto build = [](void* raw) -> plan::Built {
    const Ctx& c = *static_cast<const Ctx*>(raw);
    auto w = std::make_shared<const RVec>(make_window(c.type, c.n, c.periodic));
    return {std::move(w), c.n * sizeof(double)};
  };
  return std::static_pointer_cast<const RVec>(
      plan::registry().acquire(key, build, &ctx));
}

void apply_window(CVec& x, RSpan window) {
  WIVI_REQUIRE(x.size() == window.size(), "window/buffer size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) x[i] *= window[i];
}

double window_gain(RSpan window) noexcept {
  double acc = 0.0;
  for (double v : window) acc += v;
  return acc;
}

}  // namespace wivi::dsp
