// Peak detection for the gesture decoder (paper §6.2: "a standard peak
// detector") and for locating MUSIC pseudospectrum maxima.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/types.hpp"

namespace wivi::dsp {

struct Peak {
  std::size_t index = 0;
  double value = 0.0;
};

struct PeakOptions {
  /// Only report peaks with value >= min_height (after sign handling).
  double min_height = 0.0;
  /// Suppress peaks closer than this many samples to a larger peak.
  std::size_t min_distance = 1;
  /// If true, detect troughs (local minima of x) as negative-valued peaks.
  bool negative = false;
};

/// Local maxima of `x` subject to the options, sorted by index.
[[nodiscard]] std::vector<Peak> find_peaks(RSpan x, const PeakOptions& opts);

/// Both maxima above +min_height and minima below -min_height, merged and
/// index-sorted; this is the symbol detector shape the gesture decoder needs
/// (Fig. 6-3(b): +1 / -1 mapped symbols).
[[nodiscard]] std::vector<Peak> find_signed_peaks(RSpan x, double min_height,
                                                  std::size_t min_distance);

/// Index of the global maximum (first if ties). Requires non-empty input.
[[nodiscard]] std::size_t argmax(RSpan x);

}  // namespace wivi::dsp
