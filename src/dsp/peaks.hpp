// Peak detection for the gesture decoder (paper §6.2: "a standard peak
// detector") and for locating MUSIC pseudospectrum maxima.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/types.hpp"

namespace wivi::dsp {

/// One detected local extremum of a real-valued signal.
struct Peak {
  /// Sample index of the extremum within the analysed span.
  std::size_t index = 0;
  /// Signal value at `index` (negative for detected troughs).
  double value = 0.0;
};

/// Options for find_peaks().
struct PeakOptions {
  /// Only report peaks with value >= min_height (after sign handling).
  double min_height = 0.0;
  /// Suppress peaks closer than this many samples to a larger peak.
  std::size_t min_distance = 1;
  /// If true, detect troughs (local minima of x) as negative-valued peaks.
  bool negative = false;
};

/// Local maxima of `x` subject to the options, sorted by index.
[[nodiscard]] std::vector<Peak> find_peaks(RSpan x, const PeakOptions& opts);

/// Both maxima above +min_height and minima below -min_height, merged and
/// index-sorted; this is the symbol detector shape the gesture decoder needs
/// (Fig. 6-3(b): +1 / -1 mapped symbols).
[[nodiscard]] std::vector<Peak> find_signed_peaks(RSpan x, double min_height,
                                                  std::size_t min_distance);

/// Options for find_peaks_over_floor(), the floor-relative multi-peak
/// extractor shared by core::MotionTracker's dominant-angle readout and the
/// track:: multi-target detector.
struct FloorPeakOptions {
  /// A peak must clear `floor + min_over_floor` to be reported. With dB
  /// inputs and the column median as the floor this is the "X dB above the
  /// pseudospectrum floor" rule of the single-target tracker.
  double min_over_floor = 6.0;
  /// Suppress peaks closer than this many samples to a taller peak.
  std::size_t min_distance = 1;
  /// Keep at most this many peaks (the tallest ones).
  std::size_t max_peaks = SIZE_MAX;
};

/// Floor-relative multi-peak extraction with masking. Finds local maxima of
/// `x` at least `opts.min_over_floor` above the caller-supplied `floor`
/// (typically the column median), applies tallest-first non-maximum
/// suppression at `opts.min_distance`, keeps the `opts.max_peaks` tallest
/// survivors, and returns them index-sorted.
///
/// Masking semantics: entries equal to -infinity are masked out — they can
/// never be peaks, and they count as bottomless neighbours, so a finite
/// value adjacent to a masked region (or at either end of `x`) qualifies as
/// a local maximum when it beats its remaining neighbour. Note the edge
/// candidacy this creates: masking a *monotone shoulder* region (e.g. the
/// DC lobe of a MUSIC column) manufactures a false peak at the mask
/// boundary, which is why both tracking consumers peak-find on the
/// unmasked column and discard in-band peaks afterwards (DESIGN.md §5).
[[nodiscard]] std::vector<Peak> find_peaks_over_floor(
    RSpan x, double floor, const FloorPeakOptions& opts);

/// Index of the global maximum (first if ties). Requires non-empty input.
[[nodiscard]] std::size_t argmax(RSpan x);

}  // namespace wivi::dsp
