#include "src/dsp/matched_filter.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace wivi::dsp {

RVec matched_filter(RSpan x, RSpan templ) {
  WIVI_REQUIRE(!x.empty() && !templ.empty(), "matched_filter: empty input");
  const auto nx = static_cast<std::ptrdiff_t>(x.size());
  const auto nt = static_cast<std::ptrdiff_t>(templ.size());
  const std::ptrdiff_t half = nt / 2;
  RVec out(x.size(), 0.0);
  for (std::ptrdiff_t i = 0; i < nx; ++i) {
    double acc = 0.0;
    for (std::ptrdiff_t k = 0; k < nt; ++k) {
      const std::ptrdiff_t idx = i + k - half;
      if (idx >= 0 && idx < nx)
        acc += x[static_cast<std::size_t>(idx)] * templ[static_cast<std::size_t>(k)];
    }
    out[static_cast<std::size_t>(i)] = acc;
  }
  return out;
}

double template_energy(RSpan templ) noexcept {
  double acc = 0.0;
  for (double v : templ) acc += v * v;
  return acc;
}

RVec triangle_template(std::size_t n, double amplitude) {
  WIVI_REQUIRE(n >= 3, "triangle template needs at least 3 samples");
  RVec t(n);
  const double centre = static_cast<double>(n - 1) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = 1.0 - std::abs(static_cast<double>(i) - centre) / centre;
    t[i] = amplitude * frac;
  }
  return t;
}

}  // namespace wivi::dsp
