#include "src/dsp/fft.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <memory>
#include <utility>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"
#include "src/plan/registry.hpp"

namespace wivi::dsp {

FftPlan::FftPlan(std::size_t n) : n_(n) {
  WIVI_REQUIRE(is_pow2(n), "FFT size must be a power of two");

  rev_.resize(n);
  rev_[0] = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    rev_[i] = static_cast<std::uint32_t>(j);
  }

  // Packed per-stage tables: stage `len` contributes len/2 twiddles
  // w^k = exp(-j 2 pi k / len), k = 0 .. len/2 - 1; n - 1 entries total.
  tw_fwd_.reserve(n > 1 ? n - 1 : 0);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -kTwoPi / static_cast<double>(len);
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double phi = ang * static_cast<double>(k);
      tw_fwd_.emplace_back(std::cos(phi), std::sin(phi));
    }
  }
  tw_inv_.resize(tw_fwd_.size());
  for (std::size_t i = 0; i < tw_fwd_.size(); ++i)
    tw_inv_[i] = std::conj(tw_fwd_[i]);
}

void FftPlan::run(std::span<cdouble> x, const CVec& twiddles) const {
  WIVI_REQUIRE(x.size() == n_, "buffer size does not match the FFT plan");
  const std::size_t n = n_;
  cdouble* const data = x.data();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  const cdouble* tw = twiddles.data();
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    for (std::size_t i = 0; i < n; i += len) {
      cdouble* const lo = data + i;
      cdouble* const hi = lo + half;
      for (std::size_t k = 0; k < half; ++k) {
        const cdouble u = lo[k];
        const cdouble v = hi[k] * tw[k];
        lo[k] = u + v;
        hi[k] = u - v;
      }
    }
    tw += half;
  }
}

void FftPlan::forward(std::span<cdouble> x) const { run(x, tw_fwd_); }

void FftPlan::inverse(std::span<cdouble> x) const {
  run(x, tw_inv_);
  const double scale = 1.0 / static_cast<double>(n_);
  for (auto& v : x) v *= scale;
}

std::shared_ptr<const FftPlan> acquire_fft_plan(std::size_t n) {
  WIVI_REQUIRE(is_pow2(n), "FFT size must be a power of two");
  const std::uint64_t ints[1] = {static_cast<std::uint64_t>(n)};
  const plan::KeyRef key{plan::Kind::kFft, ints, {}, {}};
  const auto build = [](void* ctx) -> plan::Built {
    const std::size_t size = *static_cast<const std::size_t*>(ctx);
    auto p = std::make_shared<const FftPlan>(size);
    // Permutation + forward and inverse twiddle tables.
    const std::size_t bytes = size * sizeof(std::uint32_t) +
                              2 * (size > 1 ? size - 1 : 0) * sizeof(cdouble);
    return {std::move(p), bytes};
  };
  return std::static_pointer_cast<const FftPlan>(
      plan::registry().acquire(key, build, &n));
}

const FftPlan& fft_plan(std::size_t n) {
  WIVI_REQUIRE(is_pow2(n), "FFT size must be a power of two");
  // One handle slot per log2 size — a bounded per-thread memo over the
  // shared registry, so all threads use one plan per size and repeated
  // lookups skip even the registry probe.
  thread_local std::array<std::shared_ptr<const FftPlan>, 64> memo;
  auto& slot = memo[static_cast<std::size_t>(std::countr_zero(n))];
  if (!slot) slot = acquire_fft_plan(n);
  return *slot;
}

void fft(CVec& x) { fft_plan(x.size()).forward(x); }

void ifft(CVec& x) { fft_plan(x.size()).inverse(x); }

CVec fft_copy(CSpan x) {
  CVec out(x.begin(), x.end());
  fft(out);
  return out;
}

CVec ifft_copy(CSpan x) {
  CVec out(x.begin(), x.end());
  ifft(out);
  return out;
}

CVec fftshift(CSpan x) {
  const std::size_t n = x.size();
  CVec out(n);
  const std::size_t half = (n + 1) / 2;  // ceil: DC lands at floor(n/2)
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

CVec ifftshift(CSpan x) {
  const std::size_t n = x.size();
  CVec out(n);
  const std::size_t half = n / 2;  // floor: the two rotations sum to n
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

}  // namespace wivi::dsp
