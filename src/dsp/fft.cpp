#include "src/dsp/fft.hpp"

#include <cmath>
#include <utility>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"

namespace wivi::dsp {
namespace {

void bit_reverse_permute(CVec& x) {
  const std::size_t n = x.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void transform(CVec& x, bool inverse) {
  const std::size_t n = x.size();
  WIVI_REQUIRE(is_pow2(n), "FFT size must be a power of two");
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const cdouble wlen{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      cdouble w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble u = x[i + k];
        const cdouble v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& v : x) v *= scale;
  }
}

}  // namespace

void fft(CVec& x) { transform(x, /*inverse=*/false); }

void ifft(CVec& x) { transform(x, /*inverse=*/true); }

CVec fft_copy(CSpan x) {
  CVec out(x.begin(), x.end());
  fft(out);
  return out;
}

CVec ifft_copy(CSpan x) {
  CVec out(x.begin(), x.end());
  ifft(out);
  return out;
}

CVec fftshift(CSpan x) {
  const std::size_t n = x.size();
  CVec out(n);
  const std::size_t half = (n + 1) / 2;
  for (std::size_t i = 0; i < n; ++i) out[i] = x[(i + half) % n];
  return out;
}

}  // namespace wivi::dsp
