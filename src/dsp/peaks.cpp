#include "src/dsp/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace wivi::dsp {
namespace {

/// Greedy non-maximum suppression: keep the tallest peaks, drop any within
/// min_distance of an already kept peak, return index-sorted.
std::vector<Peak> suppress(std::vector<Peak> peaks, std::size_t min_distance) {
  std::sort(peaks.begin(), peaks.end(), [](const Peak& a, const Peak& b) {
    return std::abs(a.value) > std::abs(b.value);
  });
  std::vector<Peak> kept;
  for (const Peak& p : peaks) {
    const bool clash = std::any_of(kept.begin(), kept.end(), [&](const Peak& q) {
      const std::size_t d = p.index > q.index ? p.index - q.index : q.index - p.index;
      return d < min_distance;
    });
    if (!clash) kept.push_back(p);
  }
  std::sort(kept.begin(), kept.end(),
            [](const Peak& a, const Peak& b) { return a.index < b.index; });
  return kept;
}

}  // namespace

std::vector<Peak> find_peaks(RSpan x, const PeakOptions& opts) {
  std::vector<Peak> raw;
  const double sign = opts.negative ? -1.0 : 1.0;
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    const double prev = sign * x[i - 1];
    const double cur = sign * x[i];
    const double next = sign * x[i + 1];
    if (cur > prev && cur >= next && cur >= opts.min_height)
      raw.push_back({i, x[i]});
  }
  return suppress(std::move(raw), std::max<std::size_t>(opts.min_distance, 1));
}

std::vector<Peak> find_signed_peaks(RSpan x, double min_height,
                                    std::size_t min_distance) {
  PeakOptions pos{.min_height = min_height, .min_distance = 1, .negative = false};
  PeakOptions neg{.min_height = min_height, .min_distance = 1, .negative = true};
  std::vector<Peak> all = find_peaks(x, pos);
  for (const Peak& p : find_peaks(x, neg)) all.push_back(p);
  return suppress(std::move(all), std::max<std::size_t>(min_distance, 1));
}

std::vector<Peak> find_peaks_over_floor(RSpan x, double floor,
                                        const FloorPeakOptions& opts) {
  const double threshold = floor + opts.min_over_floor;
  const double ninf = -std::numeric_limits<double>::infinity();
  std::vector<Peak> raw;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] == ninf || x[i] < threshold) continue;
    // Out-of-range and masked neighbours count as bottomless. The strict >
    // on the left / >= on the right matches find_peaks(): the leftmost
    // element of a flat plateau is the one reported.
    const double prev = i > 0 ? x[i - 1] : ninf;
    const double next = i + 1 < x.size() ? x[i + 1] : ninf;
    if (x[i] > prev && x[i] >= next) raw.push_back({i, x[i]});
  }
  std::vector<Peak> kept =
      suppress(std::move(raw), std::max<std::size_t>(opts.min_distance, 1));
  if (kept.size() > opts.max_peaks) {
    // suppress() returns index-sorted; trim to the tallest max_peaks and
    // restore index order.
    std::sort(kept.begin(), kept.end(), [](const Peak& a, const Peak& b) {
      return a.value > b.value;
    });
    kept.resize(opts.max_peaks);
    std::sort(kept.begin(), kept.end(),
              [](const Peak& a, const Peak& b) { return a.index < b.index; });
  }
  return kept;
}

std::size_t argmax(RSpan x) {
  WIVI_REQUIRE(!x.empty(), "argmax of empty range");
  return static_cast<std::size_t>(
      std::distance(x.begin(), std::max_element(x.begin(), x.end())));
}

}  // namespace wivi::dsp
