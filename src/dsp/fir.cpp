#include "src/dsp/fir.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"

namespace wivi::dsp {
namespace {

/// Normalised sinc: sin(pi x) / (pi x).
double sinc(double x) noexcept {
  if (std::abs(x) < 1e-12) return 1.0;
  const double px = kPi * x;
  return std::sin(px) / px;
}

template <typename T>
std::vector<T> convolve_impl(std::span<const T> x, RSpan taps, ConvMode mode) {
  WIVI_REQUIRE(!x.empty() && !taps.empty(), "convolve: empty input");
  const std::size_t nx = x.size();
  const std::size_t nt = taps.size();
  const std::size_t nfull = nx + nt - 1;
  std::vector<T> full(nfull, T{});
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t k = 0; k < nt; ++k) full[i + k] += x[i] * taps[k];
  }
  if (mode == ConvMode::kFull) return full;
  // kSame: centre slice of length nx.
  const std::size_t start = (nt - 1) / 2;
  std::vector<T> same(full.begin() + static_cast<std::ptrdiff_t>(start),
                      full.begin() + static_cast<std::ptrdiff_t>(start + nx));
  return same;
}

}  // namespace

RVec design_lowpass(std::size_t num_taps, double cutoff_norm, WindowType window) {
  WIVI_REQUIRE(num_taps >= 3, "lowpass needs at least 3 taps");
  WIVI_REQUIRE(cutoff_norm > 0.0 && cutoff_norm < 0.5,
               "cutoff must be in (0, 0.5) of the sample rate");
  const RVec w = make_window(window, num_taps);
  RVec taps(num_taps);
  const double centre = static_cast<double>(num_taps - 1) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const double t = static_cast<double>(i) - centre;
    taps[i] = 2.0 * cutoff_norm * sinc(2.0 * cutoff_norm * t) * w[i];
    sum += taps[i];
  }
  // Unity DC gain.
  for (auto& v : taps) v /= sum;
  return taps;
}

CVec convolve(CSpan x, RSpan taps, ConvMode mode) {
  return convolve_impl<cdouble>(x, taps, mode);
}

RVec convolve(RSpan x, RSpan taps, ConvMode mode) {
  return convolve_impl<double>(x, taps, mode);
}

CVec block_average(CSpan x, std::size_t factor) {
  WIVI_REQUIRE(factor > 0, "block_average factor must be positive");
  const std::size_t nout = x.size() / factor;
  CVec out(nout);
  for (std::size_t i = 0; i < nout; ++i) {
    cdouble acc{0.0, 0.0};
    for (std::size_t k = 0; k < factor; ++k) acc += x[i * factor + k];
    out[i] = acc / static_cast<double>(factor);
  }
  return out;
}

RVec moving_average(RSpan x, std::size_t w) {
  WIVI_REQUIRE(w % 2 == 1, "moving_average window must be odd");
  const auto n = static_cast<std::ptrdiff_t>(x.size());
  const auto half = static_cast<std::ptrdiff_t>(w / 2);
  RVec out(x.size(), 0.0);
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    double acc = 0.0;
    int count = 0;
    for (std::ptrdiff_t k = -half; k <= half; ++k) {
      const std::ptrdiff_t idx = i + k;
      if (idx >= 0 && idx < n) {
        acc += x[static_cast<std::size_t>(idx)];
        ++count;
      }
    }
    out[static_cast<std::size_t>(i)] = acc / count;
  }
  return out;
}

}  // namespace wivi::dsp
