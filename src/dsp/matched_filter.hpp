// Matched filtering.
//
// The gesture decoder (paper §6.2) applies two matched filters — a triangle
// above the zero line and an inverted triangle below it — to the angle
// signal, then sums their outputs. The filters here are generic; the
// gesture-specific templates live in core/gesture.
#pragma once

#include "src/common/types.hpp"

namespace wivi::dsp {

/// Correlate `x` against `templ` (matched filter = convolution with the
/// time-reversed template). Output has x.size() samples; output[i] is the
/// correlation of the template centred at x[i]. Zero padding at edges.
[[nodiscard]] RVec matched_filter(RSpan x, RSpan templ);

/// Normalised template energy; correlating a template against itself at
/// perfect alignment yields exactly this value.
[[nodiscard]] double template_energy(RSpan templ) noexcept;

/// Symmetric triangle pulse of `n` samples, peak `amplitude` at the centre,
/// zero at both ends. The paper's forward-step signature (Fig. 6-1).
[[nodiscard]] RVec triangle_template(std::size_t n, double amplitude = 1.0);

}  // namespace wivi::dsp
