// USRP N210 front-end characteristics used by the hardware emulation.
//
// These are the device limits the paper calls out explicitly: the ~20 mW
// linear transmit range ("the linear transmit power range for USRPs is
// around 20 mW (i.e., beyond this power the signal starts being clipped)",
// paper §7.5) and the 12 dB in-band power boost after nulling (§4.1.2
// footnote: "we boost the power by 12 dB ... limited by the need to stay
// within the linear range").
#pragma once

namespace wivi::hw {

/// Linear transmit power ceiling [W]; beyond this the PA clips.
inline constexpr double kUsrpLinearTxPowerWatts = 0.020;

/// Wi-Fi regulatory power for comparison [W] (paper §7.5: 100 mW).
inline constexpr double kWifiMaxTxPowerWatts = 0.100;

/// Effective ADC resolution. The N210's converter is 14-bit; effective
/// number of bits after front-end noise is lower — 12 is the value we use.
inline constexpr int kUsrpAdcBits = 12;

/// Power boost applied after initial nulling (paper §4.1.2).
inline constexpr double kPowerBoostDb = 12.0;

}  // namespace wivi::hw
