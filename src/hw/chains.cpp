#include "src/hw/chains.hpp"

#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::hw {
namespace {

/// Hard amplitude limiter preserving phase (PA deep compression model).
cdouble clip_amplitude(cdouble x, double max_amp, bool& clipped) noexcept {
  const double mag = std::abs(x);
  if (mag <= max_amp) return x;
  clipped = true;
  return x * (max_amp / mag);
}

}  // namespace

TxChain::TxChain(double gain_db, double max_linear_amplitude)
    : gain_db_(gain_db), max_amp_(max_linear_amplitude) {
  WIVI_REQUIRE(max_linear_amplitude > 0.0, "clip amplitude must be positive");
}

void TxChain::set_gain_db(double gain_db) { gain_db_ = gain_db; }

TxChain::Result TxChain::process(CSpan x) const {
  const double g = db_to_amp(gain_db_);
  Result r;
  r.samples.reserve(x.size());
  for (cdouble v : x) {
    bool clipped = false;
    r.samples.push_back(clip_amplitude(v * g, max_amp_, clipped));
    if (clipped) ++r.clipped_count;
  }
  return r;
}

bool TxChain::would_clip(CSpan x) const {
  const double g = db_to_amp(gain_db_);
  for (cdouble v : x) {
    if (std::abs(v) * g > max_amp_) return true;
  }
  return false;
}

RxChain::RxChain(double gain_db) : gain_db_(gain_db) {}

void RxChain::set_gain_db(double gain_db) { gain_db_ = gain_db; }

CVec RxChain::process(CSpan x) const {
  const double g = db_to_amp(gain_db_);
  CVec out(x.begin(), x.end());
  for (auto& v : out) v *= g;
  return out;
}

}  // namespace wivi::hw
