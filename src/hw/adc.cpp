#include "src/hw/adc.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace wivi::hw {

Adc::Adc(int bits, double full_scale) : bits_(bits), full_scale_(full_scale) {
  WIVI_REQUIRE(bits >= 2 && bits <= 24, "ADC bits must be in [2, 24]");
  WIVI_REQUIRE(full_scale > 0.0, "ADC full scale must be positive");
}

double Adc::lsb() const noexcept {
  // Signed range [-full_scale, +full_scale] over 2^bits levels.
  return 2.0 * full_scale_ / static_cast<double>(1LL << bits_);
}

double Adc::quantize_rail(double v, bool& clipped) const noexcept {
  if (v >= full_scale_) {
    clipped = true;
    return full_scale_;
  }
  if (v <= -full_scale_) {
    clipped = true;
    return -full_scale_;
  }
  const double step = lsb();
  return std::round(v / step) * step;
}

cdouble Adc::quantize(cdouble x) const noexcept {
  bool clipped = false;
  return {quantize_rail(x.real(), clipped), quantize_rail(x.imag(), clipped)};
}

Adc::Result Adc::convert(CSpan x) const {
  Result r;
  r.samples.reserve(x.size());
  for (cdouble v : x) {
    bool clipped = false;
    const double re = quantize_rail(v.real(), clipped);
    const double im = quantize_rail(v.imag(), clipped);
    if (clipped) ++r.saturated_count;
    r.samples.emplace_back(re, im);
  }
  return r;
}

double Adc::dynamic_range_db() const noexcept { return 6.02 * bits_; }

}  // namespace wivi::hw
