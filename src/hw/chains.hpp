// Transmit and receive signal-conditioning chains.
//
// TxChain applies digital gain and then the PA's hard amplitude clip at the
// USRP linear range; RxChain applies LNA/ADC-driver gain. The simulated
// link (sim::SimulatedMimoLink) wires these around the RF channel model.
#pragma once

#include "src/common/types.hpp"

namespace wivi::hw {

class TxChain {
 public:
  /// `max_linear_amplitude` is the clip point (sqrt of the PA's linear
  /// power ceiling for a unit-impedance convention).
  TxChain(double gain_db, double max_linear_amplitude);

  [[nodiscard]] double gain_db() const noexcept { return gain_db_; }
  void set_gain_db(double gain_db);

  /// Amplify and clip one buffer; `clipped_count` reports PA compression.
  struct Result {
    CVec samples;
    std::size_t clipped_count = 0;
  };
  [[nodiscard]] Result process(CSpan x) const;

  /// Would this buffer clip at the current gain? (used by tests asserting
  /// the 12 dB boost stays inside the linear range).
  [[nodiscard]] bool would_clip(CSpan x) const;

 private:
  double gain_db_;
  double max_amp_;
};

class RxChain {
 public:
  explicit RxChain(double gain_db);

  [[nodiscard]] double gain_db() const noexcept { return gain_db_; }
  void set_gain_db(double gain_db);

  [[nodiscard]] CVec process(CSpan x) const;

 private:
  double gain_db_;
};

}  // namespace wivi::hw
