// Quantizing, saturating analog-to-digital converter.
//
// The flash effect (paper §1) is an ADC phenomenon: the wall reflection
// overwhelms the converter and the minute reflections from behind the wall
// disappear below the quantization floor or get clipped entirely. This
// model is therefore load-bearing: the nulling evaluation (Fig. 7-7) is
// only meaningful with quantization and saturation in the loop.
#pragma once

#include <cstddef>

#include "src/common/types.hpp"

namespace wivi::hw {

class Adc {
 public:
  /// `bits` per I/Q rail; `full_scale` is the amplitude at which each rail
  /// saturates.
  Adc(int bits, double full_scale);

  [[nodiscard]] int bits() const noexcept { return bits_; }
  [[nodiscard]] double full_scale() const noexcept { return full_scale_; }

  /// Quantization step per rail.
  [[nodiscard]] double lsb() const noexcept;

  /// Quantize one complex sample (round-to-nearest per rail, clamp at
  /// full scale).
  [[nodiscard]] cdouble quantize(cdouble x) const noexcept;

  /// Quantize a buffer; returns how many samples hit the rails.
  struct Result {
    CVec samples;
    std::size_t saturated_count = 0;
    [[nodiscard]] bool saturated() const noexcept { return saturated_count > 0; }
  };
  [[nodiscard]] Result convert(CSpan x) const;

  /// Dynamic range in dB (6.02 dB per bit).
  [[nodiscard]] double dynamic_range_db() const noexcept;

 private:
  [[nodiscard]] double quantize_rail(double v, bool& clipped) const noexcept;

  int bits_;
  double full_scale_;
};

}  // namespace wivi::hw
