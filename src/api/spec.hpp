/// @file
/// The declarative pipeline specification the wivi::Session facade compiles.
///
/// Wi-Vi's pipeline is one dataflow — nulled channel stream → smoothed-MUSIC
/// angle-time image → detect/track/gesture/count — and a PipelineSpec is its
/// complete declarative description: the mandatory image stage plus an
/// optional<> per downstream stage (replacing the bool-flag + loose-config
/// pairs of the legacy rt::SessionConfig). A spec says *what* to compute;
/// *how* it executes — batch, chunked streaming, column-parallel offline,
/// or multiplexed inside rt::Engine — is chosen per call on the compiled
/// wivi::Session, and every mode produces identical results (see
/// DESIGN.md §8).
///
/// The per-stage configuration structs are the single source of truth the
/// rest of the library already validates (core::MotionTracker::Config,
/// track::MultiTargetTracker::Config, rt::StreamingGesture::Config), so the
/// spec cannot drift from the stages it describes.
#pragma once

#include <cstddef>
#include <optional>

#include "src/core/tracker.hpp"
#include "src/rt/streaming.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi::api {

/// @addtogroup wivi_api
/// @{

/// The mandatory front end: channel-estimate samples → smoothed-MUSIC
/// angle-time image (§5.2).
struct ImageStage {
  /// Imaging configuration (hop, angle grid, MUSIC parameters).
  /// `tracker.num_threads` is ignored by the Session — the execution mode
  /// (and thread count) is chosen per run()/push() call, not in the spec.
  core::MotionTracker::Config tracker;
  /// Emit a ColumnEvent per completed image column (costs one column copy;
  /// turn off for counting- or tracking-only workloads).
  bool emit_columns = true;
};

/// Optional multi-target detect + track stage (§5.2 / §7.2): per-column
/// multi-peak detection, gated association, per-target Kalman smoothing and
/// lifecycle management. Emits TracksEvents.
struct TrackStage {
  /// Tracker configuration; `tracker.detector` holds the per-column
  /// detection thresholds (the shared core::PeakPolicy plus NMS geometry).
  track::MultiTargetTracker::Config tracker;
};

/// Optional gesture-decoding stage (§6). Emits BitsEvents as decoded bits
/// stabilise; the final flush decode equals the batch decode exactly.
struct GestureStage {
  /// Decoder configuration plus the incremental-emission cadence.
  rt::StreamingGesture::Config gesture;
};

/// Optional occupancy-counting stage (§7.4): running Eq. 5.5 spatial
/// variance. Emits CountEvents.
struct CountStage {
  /// dB cap of the column scale (Eq. 5.4's cap).
  double cap_db = 60.0;
};

/// Ingress trust-boundary validation of every chunk handed to
/// Session::push (and, via the Session, to every chunk an rt::Engine
/// worker feeds a multiplexed pipeline). A violating chunk is rejected
/// with a TypedError of ErrorCode::kInvalidChunk *before* any pipeline
/// state mutates, so a rejected chunk is a no-op: the session stays open
/// and the next valid chunk continues the stream (DESIGN.md §9).
struct InputGuard {
  /// Largest accepted chunk, in samples (a DoS/fat-finger bound; the
  /// default admits ~56 min of 312.5 Hz stream in one batch run() call).
  std::size_t max_chunk_samples = std::size_t{1} << 20;
  /// When non-zero, every chunk length must be a multiple of this many
  /// samples — the sensor's frame size, so a frame with missing or extra
  /// antenna rows is rejected at the boundary. 0 accepts any length.
  std::size_t frame_samples = 0;
  /// Reject chunks containing non-finite (NaN/Inf) samples. Costs one
  /// predictable scan per chunk (pinned ≤1% of pipeline cost by
  /// bench_fault); turn off only for pre-validated replay traces.
  bool check_finite = true;
};

/// Observability configuration of a compiled pipeline (wivi::obs): whether
/// the Session times its stages, and how many trace spans it retains for
/// Chrome-trace export. Stage timing is on by default and pinned ≤1% of
/// pipeline cost by bench_obs; the obs::set_enabled(false) run-time switch
/// and the WIVI_OBS=OFF compile-time switch override `timing` globally.
struct ObsConfig {
  /// Measure per-stage latencies (guard/stft_doppler/music/detect/emit/
  /// chunk) into the session's obs::PipelineObserver histograms, readable
  /// via Session::stats().
  bool timing = true;
  /// Most recent trace spans retained for Session::write_trace() (Chrome
  /// trace-event JSON). 0 keeps no spans — timing histograms still fill.
  std::size_t trace_capacity = 0;
};

/// One complete declarative pipeline description: what to compute for one
/// sensor stream. Compile it with wivi::Session.
struct PipelineSpec {
  /// The mandatory image stage.
  ImageStage image;
  /// Absolute time of the session's first sample.
  double t0 = 0.0;
  /// Attach multi-target tracking (TracksEvents).
  std::optional<TrackStage> track;
  /// Attach gesture decoding (BitsEvents).
  std::optional<GestureStage> gesture;
  /// Attach occupancy counting (CountEvents).
  std::optional<CountStage> count;
  /// Ingress validation policy applied to every pushed chunk.
  InputGuard guard;
  /// Observability: per-stage timing and trace retention.
  ObsConfig obs;

  /// Check every invariant of the spec and its stage configurations by
  /// driving them through the same validation the stages themselves
  /// enforce; throws InvalidArgument on the first violation. Compiling a
  /// Session validates implicitly — call this to vet a spec without
  /// paying for workspace allocation.
  void validate() const;
};

/// @}

}  // namespace wivi::api
