#include "src/api/spec.hpp"

#include "src/common/error.hpp"
#include "src/core/music.hpp"

namespace wivi::api {

void PipelineSpec::validate() const {
  // Drive every invariant through the constructors that own it — the spec
  // deliberately has no validation rules of its own to drift from the
  // stages. The constructed objects are discarded; compiling a Session
  // does the same work and keeps them.
  (void)core::MotionTracker(image.tracker);
  (void)core::SmoothedMusic(image.tracker.music);
  if (track) (void)track::MultiTargetTracker(track->tracker);
  if (gesture) (void)rt::StreamingGesture(gesture->gesture);
  if (count) (void)rt::StreamingCounter(count->cap_db);
  // The guard is the one spec member with no stage constructor behind it
  // (it configures the push() boundary itself), so it is checked here and
  // in the Session constructor.
  WIVI_REQUIRE(guard.max_chunk_samples >= 1,
               "guard.max_chunk_samples must be >= 1");
  WIVI_REQUIRE(guard.frame_samples == 0 ||
                   guard.frame_samples <= guard.max_chunk_samples,
               "guard.frame_samples must not exceed max_chunk_samples");
}

}  // namespace wivi::api
