#include "src/api/spec.hpp"

#include "src/core/music.hpp"

namespace wivi::api {

void PipelineSpec::validate() const {
  // Drive every invariant through the constructors that own it — the spec
  // deliberately has no validation rules of its own to drift from the
  // stages. The constructed objects are discarded; compiling a Session
  // does the same work and keeps them.
  (void)core::MotionTracker(image.tracker);
  (void)core::SmoothedMusic(image.tracker.music);
  if (track) (void)track::MultiTargetTracker(track->tracker);
  if (gesture) (void)rt::StreamingGesture(gesture->gesture);
  if (count) (void)rt::StreamingCounter(count->cap_db);
}

}  // namespace wivi::api
