#include "src/api/session.hpp"

#include <cmath>
#include <utility>

#include "src/common/error.hpp"
#include "src/par/image_builder.hpp"

namespace wivi::api {

Session::Session(PipelineSpec spec)
    : spec_(std::move(spec)),
      obs_(spec_.obs.timing, spec_.obs.trace_capacity),
      tracker_(spec_.image.tracker, spec_.t0) {
  // Compiling validates: every stage constructor (tracker_ above, the
  // emplaces below) enforces its own invariants — the same checks
  // PipelineSpec::validate() drives, so the spec is not re-validated
  // wholesale here.
  if (spec_.track) multi_.emplace(spec_.track->tracker);
  if (spec_.gesture) gesture_.emplace(spec_.gesture->gesture);
  if (spec_.count) counter_.emplace(spec_.count->cap_db);
  tracker_.set_observer(&obs_);
}

core::AngleTimeImage Session::take_image() {
  WIVI_REQUIRE(state_ != State::kOpen,
               "take_image() requires a finished session");
  return tracker_.take_image();
}

core::GestureDecoder::Result Session::take_gesture_result() {
  WIVI_REQUIRE(gesture_.has_value(), "the spec has no GestureStage");
  WIVI_REQUIRE(state_ != State::kOpen,
               "take_gesture_result() requires a finished session");
  return gesture_->take_result();
}

const track::MultiTargetTracker& Session::multi_tracker() const {
  WIVI_REQUIRE(multi_.has_value(), "the spec has no TrackStage");
  return multi_->tracker();
}

const core::GestureDecoder::Result& Session::gesture_result() const {
  WIVI_REQUIRE(gesture_.has_value(), "the spec has no GestureStage");
  return gesture_->result();
}

double Session::spatial_variance() const {
  WIVI_REQUIRE(counter_.has_value(), "the spec has no CountStage");
  return counter_->variance();
}

void Session::fail(ErrorCode code, const char* what) noexcept {
  state_ = State::kFailed;
  error_ = what;
  error_code_ = code;
  // Best effort: the sink may be the very thing that threw.
  try {
    emit(ErrorEvent{error_, code});
  } catch (...) {
  }
}

/// Run `fn`; on any exception mark the session failed (delivering a
/// best-effort ErrorEvent carrying the failure's ErrorCode) and rethrow
/// to the caller. TypedError keeps its own classification (a throwing
/// sink surfaces as kSinkFailure via emit()'s wrapping); anything else a
/// stage throws is kStageFailure.
template <typename Fn>
decltype(auto) Session::guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const TypedError& e) {
    fail(e.code(), e.what());
    throw;
  } catch (const std::exception& e) {
    fail(ErrorCode::kStageFailure, e.what());
    throw;
  } catch (...) {
    fail(ErrorCode::kStageFailure, "unknown exception");
    throw;
  }
}

void Session::emit(Event&& e) {
  ++events_emitted_;
  obs::ScopedSpan span(&obs_, obs::Stage::kEmit);
  if (callback_) {
    // Classify sink deaths at the throw site: the message survives
    // verbatim, the wrapper only adds ErrorCode::kSinkFailure for the
    // guard above (and the Engine's restart policy) to dispatch on.
    try {
      callback_(std::move(e));
    } catch (const TypedError&) {
      throw;
    } catch (const std::exception& ex) {
      throw TypedError(ErrorCode::kSinkFailure, ex.what());
    } catch (...) {
      throw TypedError(ErrorCode::kSinkFailure, "unknown sink exception");
    }
    return;
  }
  queue_.push_back(std::move(e));
}

/// The InputGuard scan: every rejection throws TypedError{kInvalidChunk}
/// before any pipeline state has mutated, so the caller may simply drop
/// the chunk and continue the stream.
void Session::guard_chunk(CSpan chunk) const {
  const InputGuard& g = spec_.guard;
  if (chunk.empty())
    throw TypedError(ErrorCode::kInvalidChunk, "rejected chunk: empty");
  if (chunk.size() > g.max_chunk_samples)
    throw TypedError(ErrorCode::kInvalidChunk,
                     "rejected chunk: exceeds guard.max_chunk_samples");
  if (g.frame_samples != 0 && chunk.size() % g.frame_samples != 0)
    throw TypedError(
        ErrorCode::kInvalidChunk,
        "rejected chunk: length is not a whole number of sensor frames "
        "(guard.frame_samples)");
  if (g.check_finite) {
    for (const cdouble& z : chunk) {
      if (!std::isfinite(z.real()) || !std::isfinite(z.imag()))
        throw TypedError(ErrorCode::kInvalidChunk,
                         "rejected chunk: non-finite sample");
    }
  }
}

/// Deliver the per-column events for columns [from, end) plus one update
/// round of each attached stage — the shared tail of every execution mode
/// (ColumnEvents, then CountEvent, TracksEvent, BitsEvent).
void Session::emit_new_columns(std::size_t from) {
  const core::AngleTimeImage& img = tracker_.image();
  const std::size_t after = img.num_times();
  if (after == from) return;

  if (spec_.image.emit_columns) {
    for (std::size_t c = from; c < after; ++c) {
      ColumnEvent e;
      e.column_index = c;
      e.time_sec = img.times_sec[c];
      e.column = img.columns[c];
      e.model_order = img.model_orders[c];
      emit(std::move(e));
    }
  }
  if (counter_) {
    obs::ScopedSpan span(&obs_, obs::Stage::kDetect);
    counter_->update(img);
    span.stop();
    emit(CountEvent{counter_->variance(), counter_->columns_seen()});
  }
  if (multi_) {
    obs::ScopedSpan span(&obs_, obs::Stage::kDetect);
    multi_->update(img);
    span.stop();
    TracksEvent e;
    e.tracks = multi_->snapshots();
    e.num_confirmed = multi_->tracker().num_confirmed();
    e.columns_seen = multi_->columns_seen();
    emit(std::move(e));
  }
  if (gesture_) {
    obs::ScopedSpan span(&obs_, obs::Stage::kDetect);
    auto bits = gesture_->poll(img, /*flush=*/false);
    span.stop();
    if (!bits.empty()) {
      bits_emitted_ += bits.size();
      emit(BitsEvent{std::move(bits)});
    }
  }
}

std::size_t Session::push(CSpan chunk) {
  WIVI_REQUIRE(state_ == State::kOpen, "push() on a finished session");
  // Outside guarded(): a rejected chunk is a no-op, not a session death.
  {
    obs::ScopedSpan span(&obs_, obs::Stage::kGuard);
    try {
      guard_chunk(chunk);
    } catch (...) {
      ++chunks_rejected_;
      throw;
    }
  }
  // The chunk span covers the accepted pipeline (post-guard through emit);
  // rejected chunks never pollute the chunk-latency histogram.
  obs::ScopedSpan span(&obs_, obs::Stage::kChunk);
  return guarded([&]() -> std::size_t {
    if (fault_hook_) fault_hook_(pushes_accepted_);
    ++pushes_accepted_;
    const std::size_t before = tracker_.num_columns();
    tracker_.push(chunk);
    emit_new_columns(before);
    return tracker_.num_columns() - before;
  });
}

void Session::finish() {
  WIVI_REQUIRE(state_ == State::kOpen, "finish() on a finished session");
  guarded([&] {
    const core::AngleTimeImage& img = tracker_.image();
    if (gesture_) {
      auto bits = gesture_->poll(img, /*flush=*/true);
      if (!bits.empty()) {
        bits_emitted_ += bits.size();
        emit(BitsEvent{std::move(bits)});
      }
    }
    if (counter_) counter_->update(img);
    if (multi_) multi_->update(img);

    FinishedEvent e;
    e.columns_seen = tracker_.num_columns();
    if (counter_) e.spatial_variance = counter_->variance();
    if (multi_) e.num_confirmed = multi_->tracker().num_confirmed();
    emit(std::move(e));
    state_ = State::kFinished;
  });
}

void Session::run(CSpan trace) {
  // An empty recorded trace is a legal degenerate batch (0 columns), not
  // a malformed chunk — skip straight to the finalisation.
  if (!trace.empty()) push(trace);
  finish();
}

void Session::run(CSpan trace, int num_threads) {
  if (num_threads == 1)
    run(trace);
  else
    run(trace, Parallelism{num_threads});
}

void Session::run(CSpan trace, Parallelism parallel) {
  WIVI_REQUIRE(state_ == State::kOpen, "run() on a finished session");
  WIVI_REQUIRE(parallel.num_threads >= 0,
               "Parallelism num_threads must be >= 0");
  // Checked before guarded(): a precondition slip here should not poison
  // the session like a mid-stream stage failure would.
  WIVI_REQUIRE(samples_seen() == 0,
               "parallel run() requires a fresh session (nothing pushed)");
  // Same ingress boundary as the streaming path (a batch trace is one big
  // chunk), same no-op-on-rejection semantics: checked before guarded().
  if (!trace.empty()) guard_chunk(trace);
  guarded([&] {
    const auto w =
        static_cast<std::size_t>(spec_.image.tracker.music.isar.window);
    if (trace.size() >= w) {
      // A builder per call: par::ThreadPool is one-job-at-a-time, so
      // concurrent Sessions must not share one pool.
      ::wivi::par::ParallelImageBuilder builder(spec_.image.tracker,
                                                parallel.num_threads);
      tracker_.adopt(trace, builder.build(trace, spec_.t0));
    } else if (!trace.empty()) {
      (void)tracker_.push(trace);  // shorter than one window: no columns
    }
    emit_new_columns(0);
  });
  finish();
}

std::size_t Session::poll(std::vector<Event>& out) {
  const std::size_t n = queue_.size();
  if (n > 0) {
    out.insert(out.end(), std::make_move_iterator(queue_.begin()),
               std::make_move_iterator(queue_.end()));
    queue_.clear();
  }
  return n;
}

void Session::set_callback(std::function<void(Event&&)> cb) {
  WIVI_REQUIRE(state_ == State::kOpen && samples_seen() == 0 &&
                   queue_.empty(),
               "install the callback on a fresh session, before push()");
  callback_ = std::move(cb);
}

void Session::set_fault_hook(std::function<void(std::size_t)> hook) {
  WIVI_REQUIRE(state_ == State::kOpen && samples_seen() == 0,
               "install the fault hook on a fresh session, before push()");
  fault_hook_ = std::move(hook);
}

PipelineStats Session::stats() const {
  PipelineStats s;
  s.chunks_in = pushes_accepted_;
  s.chunks_rejected = chunks_rejected_;
  s.samples_seen = samples_seen();
  s.columns_seen = columns_seen();
  s.bits_emitted = bits_emitted_;
  s.events_emitted = events_emitted_;
  for (int i = 0; i < obs::kStageCount; ++i) {
    const auto stage = static_cast<obs::Stage>(i);
    const obs::LocalHistogram& h = obs_.stage(stage);
    if (h.count() == 0) continue;
    s.stages.push_back({obs::stage_name(stage), h.snapshot()});
  }
  return s;
}

obs::Snapshot Session::snapshot() const {
  obs::Snapshot snap;
  snap.source = "wivi::Session";
  snap.add_counter("wivi_session_chunks_in_total", pushes_accepted_);
  snap.add_counter("wivi_session_chunks_rejected_total", chunks_rejected_);
  snap.add_counter("wivi_session_samples_seen_total", samples_seen());
  snap.add_counter("wivi_session_columns_total", columns_seen());
  snap.add_counter("wivi_session_bits_total", bits_emitted_);
  snap.add_counter("wivi_session_events_total", events_emitted_);
  obs_.add_to_snapshot(snap, "wivi_stage_");
  return snap;
}

void Session::write_trace(std::ostream& os) const {
  obs::write_chrome_trace(os, obs_.trace(), "wivi::Session");
}

void Session::set_fidelity(int angle_decimation) {
  WIVI_REQUIRE(state_ == State::kOpen,
               "set_fidelity() on a finished session");
  tracker_.set_angle_decimation(angle_decimation);
}

}  // namespace wivi::api
