/// @file
/// Typed pipeline output events of the wivi::Session facade.
///
/// Every unit of output a compiled pipeline produces is one alternative of
/// the api::Event variant — one struct per stage kind instead of the fat
/// union-style rt::Event whose payload fields only mean something for some
/// Event::Type values. Consumers dispatch with std::visit or std::get_if
/// and the type system guarantees they can only read fields that exist.
///
/// Delivery order within one session is deterministic: for every batch of
/// freshly completed image columns, ColumnEvents (one per column, in column
/// order) precede the stage updates, which arrive in the fixed order
/// CountEvent, TracksEvent, BitsEvent; FinishedEvent (or ErrorEvent) is
/// always last.
#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "src/core/gesture.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi::api {

/// @addtogroup wivi_api
/// @{

/// One new angle-time image column (emitted when ImageStage::emit_columns).
struct ColumnEvent {
  /// Index of the new column in the session's image.
  std::size_t column_index = 0;
  /// Absolute time of the column (window centre).
  double time_sec = 0.0;
  /// Linear MUSIC pseudospectrum over the session's angle grid.
  RVec column;
  /// MUSIC model order of the column.
  int model_order = 0;
};

/// Live multi-target snapshots after the newest processed columns (emitted
/// once per batch of new columns when a TrackStage is attached).
struct TracksEvent {
  /// Live track snapshots after the newest processed column, id order.
  std::vector<track::TrackSnapshot> tracks;
  /// Currently live confirmed-or-coasting targets.
  std::size_t num_confirmed = 0;
  /// Image columns processed so far.
  std::size_t columns_seen = 0;
};

/// Newly stable decoded gesture bits, time order (emitted when a
/// GestureStage is attached and new bits stabilised).
struct BitsEvent {
  /// The newly stable bits (each bit time is delivered at most once).
  std::vector<core::GestureDecoder::DecodedBit> bits;
};

/// Running Eq. 5.5 spatial-variance update (emitted once per batch of new
/// columns when a CountStage is attached).
struct CountEvent {
  /// Running experiment-level spatial variance.
  double spatial_variance = 0.0;
  /// Image columns accumulated so far.
  std::size_t columns_seen = 0;
};

/// End of stream: the session is finalised (always the last event of a
/// healthy session).
struct FinishedEvent {
  /// Image columns produced over the whole session.
  std::size_t columns_seen = 0;
  /// Final spatial variance (0 unless a CountStage was attached).
  double spatial_variance = 0.0;
  /// Final confirmed-target count (0 unless a TrackStage was attached).
  std::size_t num_confirmed = 0;
};

/// The session failed (a stage or the event sink threw) and is dead; no
/// further events follow.
struct ErrorEvent {
  /// What the failing stage or sink threw.
  std::string message;
};

/// One unit of pipeline output: exactly one of the event structs above.
using Event = std::variant<ColumnEvent, TracksEvent, BitsEvent, CountEvent,
                           FinishedEvent, ErrorEvent>;

/// @}

}  // namespace wivi::api
