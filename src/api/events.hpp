/// @file
/// Typed pipeline output events of the wivi::Session facade.
///
/// Every unit of output a compiled pipeline produces is one alternative of
/// the api::Event variant — one struct per stage kind instead of the fat
/// union-style rt::Event whose payload fields only mean something for some
/// Event::Type values. Consumers dispatch with std::visit or std::get_if
/// and the type system guarantees they can only read fields that exist.
///
/// Delivery order within one session is deterministic: for every batch of
/// freshly completed image columns, ColumnEvents (one per column, in column
/// order) precede the stage updates, which arrive in the fixed order
/// CountEvent, TracksEvent, BitsEvent; FinishedEvent (or ErrorEvent) is
/// always last.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/gesture.hpp"
#include "src/obs/histogram.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi::api {

/// @addtogroup wivi_api
/// @{

/// One new angle-time image column (emitted when ImageStage::emit_columns).
struct ColumnEvent {
  /// Index of the new column in the session's image.
  std::size_t column_index = 0;
  /// Absolute time of the column (window centre).
  double time_sec = 0.0;
  /// Linear MUSIC pseudospectrum over the session's angle grid.
  RVec column;
  /// MUSIC model order of the column.
  int model_order = 0;
};

/// Live multi-target snapshots after the newest processed columns (emitted
/// once per batch of new columns when a TrackStage is attached).
struct TracksEvent {
  /// Live track snapshots after the newest processed column, id order.
  std::vector<track::TrackSnapshot> tracks;
  /// Currently live confirmed-or-coasting targets.
  std::size_t num_confirmed = 0;
  /// Image columns processed so far.
  std::size_t columns_seen = 0;
};

/// Newly stable decoded gesture bits, time order (emitted when a
/// GestureStage is attached and new bits stabilised).
struct BitsEvent {
  /// The newly stable bits (each bit time is delivered at most once).
  std::vector<core::GestureDecoder::DecodedBit> bits;
};

/// Running Eq. 5.5 spatial-variance update (emitted once per batch of new
/// columns when a CountStage is attached).
struct CountEvent {
  /// Running experiment-level spatial variance.
  double spatial_variance = 0.0;
  /// Image columns accumulated so far.
  std::size_t columns_seen = 0;
};

/// End of stream: the session is finalised (always the last event of a
/// healthy session).
struct FinishedEvent {
  /// Image columns produced over the whole session.
  std::size_t columns_seen = 0;
  /// Final spatial variance (0 unless a CountStage was attached).
  double spatial_variance = 0.0;
  /// Final confirmed-target count (0 unless a TrackStage was attached).
  std::size_t num_confirmed = 0;
};

/// The session failed (a stage or the event sink threw, or a runtime
/// policy killed it) and is dead; no further events follow — except under
/// an rt::RestartPolicy, where a RecoveredEvent may follow and only the
/// last ErrorEvent is terminal (DESIGN.md §9).
struct ErrorEvent {
  /// What the failing stage or sink threw.
  std::string message;
  /// Machine-readable failure class (wivi::error_code_name() for the
  /// string form; taxonomy in DESIGN.md §9).
  ErrorCode code = ErrorCode::kStageFailure;
};

/// Watchdog warning: the session's feeder has delivered nothing for longer
/// than its liveness deadline (rt::WatchdogConfig). Advisory — the session
/// is still alive; if silence continues, a terminal ErrorEvent with
/// ErrorCode::kTimeout follows. Emitted by the rt::Engine only.
struct StalledEvent {
  /// How long the feeder has been silent.
  double silent_sec = 0.0;
  /// Chunks the session had received when the stall was detected.
  std::uint64_t chunks_seen = 0;
};

/// The session failed but was re-armed under its rt::RestartPolicy: a fresh
/// pipeline now continues consuming the stream (earlier columns are lost;
/// column indices restart from 0). Emitted by the rt::Engine only.
struct RecoveredEvent {
  /// Restarts consumed so far, this one included.
  int restarts = 0;
  /// Failure class of the fault that forced the restart.
  ErrorCode cause = ErrorCode::kStageFailure;
  /// What the failing stage or sink threw.
  std::string message;
};

/// Graceful-degradation transition under overload (rt::OverloadPolicy):
/// the session moved down the ladder to a coarser MUSIC angle grid, or —
/// with `degraded == false` — recovered full fidelity after the hysteresis
/// window of drop-free input. Emitted by the rt::Engine only.
struct OverloadEvent {
  /// True when entering degraded mode, false when restoring full fidelity.
  bool degraded = false;
  /// Angle-grid decimation now in effect (1 = full fidelity).
  int fidelity = 1;
  /// Cumulative chunks lost to backpressure at the transition.
  std::uint64_t chunks_dropped = 0;
  /// Cumulative samples lost to backpressure at the transition.
  std::uint64_t samples_dropped = 0;
};

/// Periodic per-session telemetry snapshot (rt::IngestConfig::
/// stats_interval_sec): the session's cumulative ingest/output counters and
/// its chunk→event latency summary, emitted in-band so a sink can watch
/// session health without polling Engine::stats(). Emitted by the
/// rt::Engine only.
struct StatsEvent {
  /// Chunks accepted into the session's ring so far.
  std::uint64_t chunks_in = 0;
  /// Samples accepted into the session's ring so far.
  std::uint64_t samples_in = 0;
  /// Chunks lost to backpressure (ring full) so far.
  std::uint64_t chunks_dropped = 0;
  /// Samples lost to backpressure so far.
  std::uint64_t samples_dropped = 0;
  /// Chunks rejected by the session's InputGuard so far.
  std::uint64_t chunks_rejected = 0;
  /// Samples rejected by the session's InputGuard so far.
  std::uint64_t samples_rejected = 0;
  /// Image columns the session has produced so far.
  std::uint64_t columns_out = 0;
  /// Gesture bits the session has emitted so far.
  std::uint64_t bits_out = 0;
  /// Restarts consumed so far (rt::RestartPolicy).
  int restarts = 0;
  /// Angle-grid decimation currently in effect (1 = full fidelity).
  int fidelity = 1;
  /// True while the watchdog has the session flagged as stalled.
  bool stalled = false;
  /// Offer→processed chunk latency summary (nanoseconds).
  obs::HistogramSnapshot latency;
};

/// One unit of pipeline output: exactly one of the event structs above.
/// StalledEvent/RecoveredEvent/OverloadEvent/StatsEvent are runtime-health
/// events only the multiplexing rt::Engine produces; a standalone Session
/// never emits them.
using Event = std::variant<ColumnEvent, TracksEvent, BitsEvent, CountEvent,
                           FinishedEvent, ErrorEvent, StalledEvent,
                           RecoveredEvent, OverloadEvent, StatsEvent>;

/// @}

}  // namespace wivi::api
