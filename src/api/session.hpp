/// @file
/// wivi::Session — one compiled pipeline, every execution mode.
///
/// A Session is the single entry point to the Wi-Vi dataflow: compile a
/// declarative api::PipelineSpec once, then execute it
///
///   * **batch** — run(trace): one whole recorded stream;
///   * **chunked streaming** — push(chunk) ... finish(): live chunks of any
///     size, bit-identical to the batch pass (built on the rt::Streaming*
///     state machines and their pinned streaming==batch contract);
///   * **parallel offline** — run(trace, Parallelism{n}): the image built
///     column-parallel over n workers (par::ParallelImageBuilder +
///     rt::StreamingTracker::adopt) — thread-count-invariant output, ~1e-9
///     from the sliding path (DESIGN.md §7);
///   * **multiplexed** — rt::Engine owns one Session per sensor and drives
///     the same push()/finish() path under its worker pool.
///
/// Output is a stream of typed api::Event variants delivered to a poll
/// queue or a callback sink. Results are also readable directly
/// (image(), multi_tracker(), gesture_result(), spatial_variance()).
///
/// Threading: a Session is single-threaded like the stages it compiles —
/// one instance per sensor stream, one thread at a time (rt::Engine
/// enforces this with its per-session claim; see DESIGN.md §4).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/api/events.hpp"
#include "src/api/spec.hpp"
#include "src/obs/snapshot.hpp"
#include "src/obs/trace.hpp"
#include "src/rt/streaming.hpp"

namespace wivi::api {

/// @addtogroup wivi_api
/// @{

/// Parallel-execution request for Session::run(): shard the image build
/// over this many workers (0 = hardware concurrency). Output is
/// bit-identical for every worker count (DESIGN.md §7).
struct Parallelism {
  /// Worker threads for the column-parallel image build; 0 = all cores.
  int num_threads = 0;
};

/// One stage's latency summary inside PipelineStats.
struct StageLatency {
  /// Stage name (obs::stage_name: "guard", "stft_doppler", ...).
  const char* stage = "";
  /// Latency summary of every span of that stage, nanoseconds.
  obs::HistogramSnapshot latency;
};

/// Point-in-time telemetry of one Session (Session::stats()): cumulative
/// pipeline counters plus one latency summary per pipeline stage that has
/// recorded at least one span. Stage timing obeys the spec's
/// api::ObsConfig and the global obs switches.
struct PipelineStats {
  /// Chunks accepted by push() (rejected chunks excluded).
  std::uint64_t chunks_in = 0;
  /// Chunks rejected by the InputGuard (TypedError{kInvalidChunk}).
  std::uint64_t chunks_rejected = 0;
  /// Samples ingested so far.
  std::uint64_t samples_seen = 0;
  /// Image columns completed so far.
  std::uint64_t columns_seen = 0;
  /// Gesture bits emitted so far.
  std::uint64_t bits_emitted = 0;
  /// Events delivered (queued or called back) so far.
  std::uint64_t events_emitted = 0;
  /// Per-stage latency summaries, pipeline order; only stages with spans.
  std::vector<StageLatency> stages;
};

/// A compiled pipeline: the spec's stages instantiated and ready to
/// execute in any mode. Construction validates the whole spec
/// (InvalidArgument on any violated invariant).
class Session {
 public:
  /// Compile `spec` (validates every stage configuration).
  explicit Session(PipelineSpec spec);

  Session(const Session&) = delete;             ///< Non-copyable.
  Session& operator=(const Session&) = delete;  ///< Non-copyable.

  /// The compiled specification.
  [[nodiscard]] const PipelineSpec& spec() const noexcept { return spec_; }

  /// Streaming execution: ingest one chunk of any size and emit the events
  /// it completes. Returns the number of image columns the chunk finished.
  ///
  /// The chunk is first validated against the spec's InputGuard (ingress
  /// trust boundary): an empty, oversized, frame-misaligned or non-finite
  /// chunk throws TypedError{ErrorCode::kInvalidChunk} *before any state
  /// mutates* — the rejected chunk is a no-op and the session stays open
  /// for the next chunk. Exceptions from a stage or the event sink, by
  /// contrast, propagate after the session delivers a best-effort
  /// ErrorEvent (sink exceptions wrapped as ErrorCode::kSinkFailure,
  /// everything else classified kStageFailure) and marks itself failed().
  std::size_t push(CSpan chunk);

  /// End of stream: final gesture flush, final stage updates, then
  /// FinishedEvent. The session only accepts accessor reads afterwards.
  void finish();

  /// Batch execution: push(trace) then finish() in one call — bit-identical
  /// to any chunking of the same stream.
  void run(CSpan trace);

  /// Parallel offline execution of a fully recorded trace: the angle-time
  /// image is built column-parallel (par::ParallelImageBuilder over
  /// `par.num_threads` workers) and adopted, then the downstream stages
  /// run once over the finished image — so CountEvent/TracksEvent/
  /// BitsEvent arrive once (after all columns) instead of once per chunk,
  /// and the column values come from the thread-count-invariant rebuild
  /// path (~1e-9 from the sliding path; DESIGN.md §7). Requires a fresh
  /// session (nothing pushed yet).
  void run(CSpan trace, Parallelism parallel);

  /// Batch execution with the historical thread-count convention of
  /// core::MotionTracker::Config::num_threads: 1 runs the sequential
  /// sliding path (run(trace)); any other value runs the column-parallel
  /// offline mode (run(trace, Parallelism{num_threads}); 0 = all cores).
  /// This is the single home of that mapping — track::track_trace and the
  /// sim trial runners route through here.
  void run(CSpan trace, int num_threads);

  /// Move all queued events into `out` (appended); returns how many.
  /// Returns 0 when a callback sink is installed (nothing ever queues).
  std::size_t poll(std::vector<Event>& out);

  /// Deliver events through `cb` as they are produced instead of the
  /// poll() queue. Install on a fresh session, before the first push().
  /// A throwing callback fails the session (see push()).
  void set_callback(std::function<void(Event&&)> cb);

  /// Chaos-engineering failpoint: `hook` runs at the start of every
  /// accepted push() with the 0-based index of that push, *inside* the
  /// failure guard — a throwing hook behaves exactly like a pipeline stage
  /// throwing at that chunk (ErrorEvent, failed(), rethrow). This is how
  /// the fault-injection suites script stage exceptions at exact chunk
  /// indices (fault::throw_hook); rejected chunks do not advance the
  /// index. Install on a fresh session, before the first push().
  void set_fault_hook(std::function<void(std::size_t)> hook);

  /// Graceful degradation: run the image stage at the given angle-grid
  /// decimation from the next column on (1 = full fidelity; see
  /// rt::StreamingTracker::set_angle_decimation for the exact semantics).
  /// Callable any time while the session is open — the rt::Engine drives
  /// this from its overload ladder.
  void set_fidelity(int angle_decimation);
  /// Angle-grid decimation currently in effect (1 = full fidelity).
  [[nodiscard]] int fidelity() const noexcept {
    return tracker_.angle_decimation();
  }

  /// The angle-time image produced so far.
  [[nodiscard]] const core::AngleTimeImage& image() const noexcept {
    return tracker_.image();
  }
  /// The underlying streaming image stage.
  [[nodiscard]] const rt::StreamingTracker& tracker() const noexcept {
    return tracker_;
  }
  /// Move the angle-time image out of a finished session — the cheap
  /// alternative to copying image() when the session is about to be
  /// discarded. Requires finish() to have run; image() reads empty
  /// afterwards.
  [[nodiscard]] core::AngleTimeImage take_image();
  /// The multi-target tracker (requires a TrackStage in the spec).
  [[nodiscard]] const track::MultiTargetTracker& multi_tracker() const;
  /// Final gesture decode — exactly the batch decode of the full image
  /// once finish() has run (requires a GestureStage in the spec).
  [[nodiscard]] const core::GestureDecoder::Result& gesture_result() const;
  /// Move the final gesture decode out of a finished session (see
  /// take_image() for when to prefer moving; gesture_result() reads empty
  /// afterwards). Requires a GestureStage and finish().
  [[nodiscard]] core::GestureDecoder::Result take_gesture_result();
  /// Running Eq. 5.5 spatial variance (requires a CountStage in the spec).
  [[nodiscard]] double spatial_variance() const;

  /// Image columns completed so far.
  [[nodiscard]] std::size_t columns_seen() const noexcept {
    return tracker_.num_columns();
  }
  /// Samples ingested so far.
  [[nodiscard]] std::size_t samples_seen() const noexcept {
    return tracker_.samples_seen();
  }
  /// Gesture bits emitted so far (0 without a GestureStage).
  [[nodiscard]] std::size_t bits_emitted() const noexcept {
    return bits_emitted_;
  }
  /// Time step between image columns.
  [[nodiscard]] double column_period_sec() const noexcept {
    return tracker_.column_period_sec();
  }

  /// Point-in-time telemetry: cumulative counters plus per-stage latency
  /// summaries (nanoseconds). p50/p99 are non-zero for any stage that ran
  /// with timing enabled (spec.obs.timing, the default). Callable any
  /// time, including after finish().
  [[nodiscard]] PipelineStats stats() const;

  /// The same telemetry as one exportable obs::Snapshot (counters named
  /// `wivi_session_*_total`, stage histograms `wivi_stage_<stage>_ns`) —
  /// feed it to obs::write_snapshot for JSON or Prometheus text.
  [[nodiscard]] obs::Snapshot snapshot() const;

  /// Write the retained trace spans (most recent spec.obs.trace_capacity
  /// spans) as Chrome trace-event JSON — loadable in Perfetto. With
  /// trace_capacity 0 the trace is valid but empty.
  void write_trace(std::ostream& os) const;

  /// The session's per-stage instrument (histograms + trace ring).
  [[nodiscard]] const obs::PipelineObserver& observer() const noexcept {
    return obs_;
  }

  /// True once the session stopped accepting input: finish() ran, or it
  /// failed().
  [[nodiscard]] bool finished() const noexcept {
    return state_ != State::kOpen;
  }
  /// True if the session died on an exception (ErrorEvent delivered).
  [[nodiscard]] bool failed() const noexcept {
    return state_ == State::kFailed;
  }
  /// What the failing stage or sink threw (empty unless failed()).
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// Failure classification of the death (kNone unless failed()).
  [[nodiscard]] ErrorCode error_code() const noexcept { return error_code_; }

 private:
  enum class State { kOpen, kFinished, kFailed };

  template <typename Fn>
  decltype(auto) guarded(Fn&& fn);
  void guard_chunk(CSpan chunk) const;
  void emit(Event&& e);
  void emit_new_columns(std::size_t from);
  void fail(ErrorCode code, const char* what) noexcept;

  PipelineSpec spec_;
  obs::PipelineObserver obs_;  // before tracker_: tracker_ holds a pointer
  rt::StreamingTracker tracker_;
  std::optional<rt::StreamingMultiTracker> multi_;
  std::optional<rt::StreamingGesture> gesture_;
  std::optional<rt::StreamingCounter> counter_;

  std::function<void(Event&&)> callback_;
  std::function<void(std::size_t)> fault_hook_;
  std::vector<Event> queue_;
  State state_ = State::kOpen;
  std::string error_;
  ErrorCode error_code_ = ErrorCode::kNone;
  std::size_t bits_emitted_ = 0;
  std::size_t pushes_accepted_ = 0;
  std::size_t chunks_rejected_ = 0;
  std::size_t events_emitted_ = 0;
};

/// @}

}  // namespace wivi::api

namespace wivi {

/// Canonical short spelling of api::PipelineSpec.
using api::PipelineSpec;
/// Canonical short spelling of api::Session.
using api::Session;
/// Canonical short spelling of api::Parallelism.
using api::Parallelism;

}  // namespace wivi
