/// @file
/// Inverse synthetic aperture radar: time samples as antenna arrays
/// (paper §5.1, Fig. 5-1, Eq. 5.1).
///
/// Consecutive channel estimates h[n]..h[n+w] are treated as one antenna
/// array whose element spacing is Delta = 2 v T (v = assumed human speed,
/// T = channel sample period; the factor 2 accounts for the round trip,
/// paper footnote 2 of §5.1). Beam steering over that array gives
///   A[theta, n] = sum_i h[n+i] * conj(a_i(theta)),
///   a_i(theta)  = exp(j 2 pi i Delta sin(theta) / lambda),
/// which peaks at sin(theta) = v_radial / v: a person walking straight at
/// the device (v_r = +1 m/s) shows at +90 degrees, walking away at -90.
#pragma once

#include <memory>

#include "src/common/constants.hpp"
#include "src/common/types.hpp"

namespace wivi::core {

/// Geometry of the emulated ISAR array.
struct IsarConfig {
  /// Carrier wavelength lambda (2.4 GHz ISM band).
  double wavelength_m = kWavelength;
  /// Assumed target speed v (paper default 1 m/s, §5.1).
  double assumed_speed_mps = kAssumedHumanSpeed;
  /// Channel-estimate sample period T (312.5 Hz stream, paper §7.1).
  double sample_period_sec = 1.0 / kChannelSampleRateHz;
  /// Emulated array size w (paper §7.1: 100).
  int window = kEmulatedArraySize;
};

/// Emulated element spacing Delta = 2 v T.
[[nodiscard]] double element_spacing_m(const IsarConfig& cfg) noexcept;

/// Steering vector a(theta) of length `m` for the emulated array.
[[nodiscard]] CVec steering_vector(const IsarConfig& cfg, double theta_deg,
                                   std::size_t m);

/// An immutable, read-only-after-build steering matrix for one canonical
/// geometry: row ai is a(angles[ai]) of length m, optionally unit-norm,
/// stored contiguously. Tables are owned by the shared plan registry
/// (wivi::plan) and handed out through acquire_steering() as shared
/// handles, so any number of sessions and threads with the same canonical
/// geometry read one table instead of each building ~100 KB of phase
/// ramps. The values are exactly what the pre-registry per-session build
/// produced (same expression order — bit-identical pseudospectra).
class SteeringTable {
 public:
  /// Build the table directly (acquire_steering() is the shared path; a
  /// direct build is for tests and one-off uses). `spacing_m` is the
  /// emulated element spacing Delta = 2 v T; every angle must lie in
  /// [-90, 90] degrees.
  SteeringTable(double spacing_m, double wavelength_m, RSpan angles_deg,
                std::size_t m, bool unit_norm);

  /// Contiguous steering row for angle index ai.
  [[nodiscard]] const cdouble* row(std::size_t ai) const noexcept {
    return data_.data() + ai * m_;
  }
  /// The angle grid the table was built on (degrees).
  [[nodiscard]] RSpan angles_deg() const noexcept { return angles_; }
  /// Number of angles in the grid.
  [[nodiscard]] std::size_t num_angles() const noexcept {
    return angles_.size();
  }
  /// Steering-vector length m.
  [[nodiscard]] std::size_t length() const noexcept { return m_; }
  /// Emulated element spacing Delta = 2 v T the table was built for.
  [[nodiscard]] double spacing_m() const noexcept { return spacing_m_; }
  /// Carrier wavelength the table was built for.
  [[nodiscard]] double wavelength_m() const noexcept { return wavelength_m_; }
  /// Whether each row is scaled to unit norm.
  [[nodiscard]] bool unit_norm() const noexcept { return unit_norm_; }
  /// Heap bytes the table keeps alive (grid + matrix storage).
  [[nodiscard]] std::size_t bytes() const noexcept;

  /// True iff this table is exactly the one (spacing, wavelength, grid,
  /// m, unit_norm) describes — the comparison ensure() uses to skip
  /// re-acquisition; allocation-free.
  [[nodiscard]] bool matches(double spacing_m, double wavelength_m,
                             RSpan angles_deg, std::size_t m,
                             bool unit_norm) const noexcept;

 private:
  RVec angles_;
  CVec data_;  // num_angles x m, row-major
  std::size_t m_ = 0;
  double spacing_m_ = 0.0;
  double wavelength_m_ = 0.0;
  bool unit_norm_ = false;
};

/// Shared handle to the registry-owned steering table for (cfg geometry,
/// grid, m, unit_norm). The key is *canonical*: it carries the derived
/// element spacing Delta = 2 v T rather than v and T separately, so
/// configurations that differ only in that factoring (e.g. doubled speed,
/// halved sample period) collide on one shared table. Built at most once
/// process-wide while resident; the handle pins the table past eviction.
[[nodiscard]] std::shared_ptr<const SteeringTable> acquire_steering(
    const IsarConfig& cfg, RSpan angles_deg, std::size_t m, bool unit_norm);

/// A client's view of one shared steering table: ensure() resolves the
/// requested geometry through the plan registry and keeps the handle;
/// row() reads the shared immutable data. DoA estimators evaluate the
/// full grid against every window position, so ensure() is called per
/// window — when the geometry is unchanged it is a field comparison
/// (allocation-free, no registry probe), and when it is a registry hit it
/// is a handle copy (allocation-free).
class SteeringMatrix {
 public:
  /// Make the handle match (cfg geometry, grid, m, unit_norm); no-op when
  /// already current, a registry acquire otherwise.
  void ensure(const IsarConfig& cfg, RSpan angles_deg, std::size_t m,
              bool unit_norm);

  /// Contiguous steering row for angle index ai (ensure() first).
  [[nodiscard]] const cdouble* row(std::size_t ai) const noexcept {
    return table_->row(ai);
  }
  /// Number of angles in the held table (0 before the first ensure()).
  [[nodiscard]] std::size_t num_angles() const noexcept {
    return table_ ? table_->num_angles() : 0;
  }
  /// Steering-vector length m of the held table (0 before ensure()).
  [[nodiscard]] std::size_t length() const noexcept {
    return table_ ? table_->length() : 0;
  }
  /// The shared table handle (null before the first ensure()).
  [[nodiscard]] const std::shared_ptr<const SteeringTable>& table()
      const noexcept {
    return table_;
  }

 private:
  std::shared_ptr<const SteeringTable> table_;
};

/// Uniform angle grid [-90, 90] with the given step (181 angles at 1 deg),
/// the grid all evaluation figures use.
[[nodiscard]] RVec angle_grid_deg(double step_deg = 1.0);

/// Shared handle to the registry-owned grid for `step_deg` — exactly
/// angle_grid_deg()'s values, built at most once process-wide while
/// resident (wivi::plan) and shared read-only across sessions.
[[nodiscard]] std::shared_ptr<const RVec> acquire_angle_grid(
    double step_deg = 1.0);

/// Eq. 5.1: beamformed power |A[theta, n]|^2 for one window of channel
/// samples, evaluated on the given angle grid. This is the conventional
/// (non-MUSIC) beamformer, kept both as the pedagogical baseline and for
/// the MUSIC-vs-beamforming ablation (paper §5.2 footnote 6).
[[nodiscard]] RVec beamform_power(CSpan window, const IsarConfig& cfg,
                                  RSpan angles_deg);

}  // namespace wivi::core
