/// @file
/// Inverse synthetic aperture radar: time samples as antenna arrays
/// (paper §5.1, Fig. 5-1, Eq. 5.1).
///
/// Consecutive channel estimates h[n]..h[n+w] are treated as one antenna
/// array whose element spacing is Delta = 2 v T (v = assumed human speed,
/// T = channel sample period; the factor 2 accounts for the round trip,
/// paper footnote 2 of §5.1). Beam steering over that array gives
///   A[theta, n] = sum_i h[n+i] * conj(a_i(theta)),
///   a_i(theta)  = exp(j 2 pi i Delta sin(theta) / lambda),
/// which peaks at sin(theta) = v_radial / v: a person walking straight at
/// the device (v_r = +1 m/s) shows at +90 degrees, walking away at -90.
#pragma once

#include "src/common/constants.hpp"
#include "src/common/types.hpp"

namespace wivi::core {

/// Geometry of the emulated ISAR array.
struct IsarConfig {
  /// Carrier wavelength lambda (2.4 GHz ISM band).
  double wavelength_m = kWavelength;
  /// Assumed target speed v (paper default 1 m/s, §5.1).
  double assumed_speed_mps = kAssumedHumanSpeed;
  /// Channel-estimate sample period T (312.5 Hz stream, paper §7.1).
  double sample_period_sec = 1.0 / kChannelSampleRateHz;
  /// Emulated array size w (paper §7.1: 100).
  int window = kEmulatedArraySize;
};

/// Emulated element spacing Delta = 2 v T.
[[nodiscard]] double element_spacing_m(const IsarConfig& cfg) noexcept;

/// Steering vector a(theta) of length `m` for the emulated array.
[[nodiscard]] CVec steering_vector(const IsarConfig& cfg, double theta_deg,
                                   std::size_t m);

/// Precomputed steering matrix for an (angle grid, array length) pair:
/// row ai is a(angles[ai]) of length m, optionally unit-norm, stored
/// contiguously. DoA estimators evaluate the full grid against every
/// window position, so rebuilding the sin/cos phase ramps per call is the
/// dominant steering cost; ensure() rebuilds only when the geometry, the
/// grid, or the length actually changed and is otherwise free.
class SteeringMatrix {
 public:
  /// Make the cache match (cfg geometry, grid, m, unit_norm); no-op when
  /// already current.
  void ensure(const IsarConfig& cfg, RSpan angles_deg, std::size_t m,
              bool unit_norm);

  /// Contiguous steering row for angle index ai.
  [[nodiscard]] const cdouble* row(std::size_t ai) const noexcept {
    return data_.data() + ai * m_;
  }
  /// Number of angles in the cached grid.
  [[nodiscard]] std::size_t num_angles() const noexcept { return angles_.size(); }
  /// Steering-vector length m of the cached matrix.
  [[nodiscard]] std::size_t length() const noexcept { return m_; }

 private:
  RVec angles_;
  CVec data_;  // num_angles x m, row-major
  std::size_t m_ = 0;
  double spacing_m_ = -1.0;
  double wavelength_m_ = 0.0;
  bool unit_norm_ = false;
};

/// Uniform angle grid [-90, 90] with the given step (181 angles at 1 deg),
/// the grid all evaluation figures use.
[[nodiscard]] RVec angle_grid_deg(double step_deg = 1.0);

/// Eq. 5.1: beamformed power |A[theta, n]|^2 for one window of channel
/// samples, evaluated on the given angle grid. This is the conventional
/// (non-MUSIC) beamformer, kept both as the pedagogical baseline and for
/// the MUSIC-vs-beamforming ablation (paper §5.2 footnote 6).
[[nodiscard]] RVec beamform_power(CSpan window, const IsarConfig& cfg,
                                  RSpan angles_deg);

}  // namespace wivi::core
