/// @file
/// The shared peak-acceptance policy of the angle-time image readouts.
///
/// Three consumers read "mover" peaks out of MUSIC pseudospectrum columns —
/// the single-target dominant-angle readout (core::MotionTracker), the
/// gesture decoder's signed angle projection (core::GestureDecoder) and the
/// multi-target column detector (track::ColumnDetector) — and all three must
/// agree on the same two §5.2 thresholds: how wide the DC residual band of
/// imperfect nulling is, and how far a peak must rise above the column's
/// median floor to count as a mover. These defaults used to be triplicated
/// literals; they now live here, once, so the readouts can never drift
/// apart.
#pragma once

namespace wivi::core {

/// Which pseudospectrum peaks count as movers (§5.2): the DC-residual
/// exclusion band and the floor-relative acceptance threshold shared by
/// every image readout (single-target, gesture, multi-target detection).
struct PeakPolicy {
  /// Peaks with |angle| at or below this band are the DC residual of
  /// imperfect nulling, not movers (§5.2); they are excluded.
  double dc_exclusion_deg = 12.0;
  /// A peak must rise this many dB above the column's median floor to be
  /// accepted (the floor-relative rule all readouts share).
  double min_peak_db = 6.0;
};

}  // namespace wivi::core
