/// @file
/// Through-wall gesture-based communication (paper §6).
///
/// Encoding (§6.1): a '0' bit is a step forward then a step backward; a '1'
/// bit is a step backward then a step forward — Manchester-like, composable,
/// and trivially decodable. A forward step sweeps the spatial angle through
/// a triangle above the zero line, a backward step through an inverted
/// triangle below it (Fig. 6-1).
///
/// Decoding (§6.2): project the angle-time image onto a signed 1-D angle
/// signal, apply two matched filters (upright and inverted triangle), sum,
/// peak-detect, and pair consecutive opposite-sign symbols into bits. A
/// gesture is decoded only if its matched-filter SNR exceeds 3 dB (Fig. 7-4
/// caption), so failures are erasures, never bit flips (§7.5).
#pragma once

#include <optional>
#include <vector>

#include "src/core/tracker.hpp"

namespace wivi::core {

/// One message bit of the §6.1 gesture alphabet.
enum class Bit : int {
  kZero = 0,  ///< step forward then backward
  kOne = 1    ///< step backward then forward
};

/// Physical parameters of the step gestures. Defaults reproduce the paper's
/// §7.5 micro-measurements: ~2-3 foot steps, ~2.2 s per bit gesture.
struct GestureProfile {
  // Defaults keep the raised-cosine peak speed at ~1 m/s, matching the
  // ISAR assumed speed so a straight-at-the-device step sweeps the full
  // 0 -> 90 -> 0 degree triangle of Fig. 6-1 (a faster step would push
  // sin(theta) = v_r / v beyond the visible region).
  double step_duration_sec = 0.95;   ///< one step, forward or backward
  double step_length_m = 0.48;       ///< ~19 inches
  double intra_bit_pause_sec = 0.1;  ///< between the two steps of one bit
  /// Longer than the intra-bit pause on purpose: the gap difference is the
  /// framing signal that lets the decoder pair steps into bits without
  /// cascading after an erased step.
  double inter_bit_pause_sec = 0.65;
  /// Humans find stepping backward harder and take smaller backward steps
  /// (§7.5) - one of the two reasons bit '0' outruns bit '1' in SNR
  /// (Fig. 7-5). Scale of a backward step relative to a forward one.
  double backward_step_scale = 0.85;
  /// Peak speed of the raised-cosine step speed profile; derived so that the
  /// step covers step_length_m in step_duration_sec.
  [[nodiscard]] double peak_speed_mps() const noexcept {
    return 2.0 * step_length_m / step_duration_sec;
  }
  /// Total airtime of one bit gesture (two steps plus both pauses).
  [[nodiscard]] double bit_duration_sec() const noexcept {
    return 2.0 * step_duration_sec + intra_bit_pause_sec + inter_bit_pause_sec;
  }
};

/// One encoded step: direction and absolute start time.
struct GestureStep {
  bool forward = true;     ///< forward (toward the device) or backward
  double start_sec = 0.0;  ///< absolute start time of the step
};

/// Encode a message as a timed step sequence starting at `t0`.
[[nodiscard]] std::vector<GestureStep> encode_message(
    std::span<const Bit> bits, const GestureProfile& profile, double t0 = 0.0);

/// Total airtime of an encoded message.
[[nodiscard]] double message_duration_sec(std::size_t num_bits,
                                          const GestureProfile& profile);

/// Decodes §6.1 step-gesture messages out of an angle-time image.
class GestureDecoder {
 public:
  /// Decoder thresholds and the gesture timing profile.
  struct Config {
    /// Physical step/gesture timing the matched filters are built from.
    GestureProfile profile;
    /// Columns with |theta| below this are the DC line; excluded (§5.2).
    /// Default comes from the shared core::PeakPolicy so the decoder and
    /// the tracking readouts can never disagree about the band width.
    double dc_exclusion_deg = PeakPolicy{}.dc_exclusion_deg;
    /// Decode gate: gestures below this matched-filter SNR are erased
    /// (paper: 3 dB, Fig. 7-4 caption).
    double snr_gate_db = 3.0;
    /// Two steps pair into one bit only if closer than this; <= 0 means
    /// derive from the profile (step + intra pause + half the inter pause),
    /// so symbols across a bit boundary never pair and an erased step
    /// produces one unpaired symbol instead of cascading mispairs.
    double max_pair_gap_sec = 0.0;
    /// The two steps of one bit are performed from (almost) the same spot,
    /// so their matched-filter SNRs are within a few dB of each other;
    /// symbols further apart than this are never paired. This is what keeps
    /// the decoder's failures erasures instead of flips (§7.5): a weak
    /// noise blip cannot pair with a strong genuine step.
    double snr_pair_tolerance_db = 18.0;
  };

  /// One gated matched-filter peak (half of a bit gesture).
  struct Symbol {
    double time_sec = 0.0;  ///< peak time
    int sign = 0;           ///< +1 forward step, -1 backward step
    double snr_db = 0.0;    ///< matched-filter SNR of the peak
  };

  /// One successfully paired bit.
  struct DecodedBit {
    Bit value = Bit::kZero;  ///< decoded bit value
    double time_sec = 0.0;   ///< centre time of the bit gesture
    double snr_db = 0.0;     ///< the weaker of the two constituent steps
  };

  /// Full decode output (bits plus the intermediates figures plot).
  struct Result {
    std::vector<DecodedBit> bits;      ///< decoded bits, time order
    std::vector<Symbol> symbols;       ///< all gated symbols, time order
    std::size_t unpaired_symbols = 0;  ///< halves that found no partner
    RVec angle_signal;                 ///< intermediate, for figures
    RVec matched_output;               ///< Fig. 6-3(a)
    double noise_sigma = 0.0;          ///< robust noise scale of matched output
  };

  GestureDecoder();  ///< Build a decoder with the default Config.
  /// Build a decoder with the given configuration.
  explicit GestureDecoder(Config cfg);

  /// The decoder's configuration.
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Signed 1-D angle signal from the image: positive-angle energy minus
  /// negative-angle energy, per column (the projection Fig. 6-1 plots).
  [[nodiscard]] RVec angle_signal(const AngleTimeImage& img) const;

  /// Sum of the two triangle matched filters (Fig. 6-3(a)).
  /// `column_period_sec` is the image's time step.
  [[nodiscard]] RVec matched_output(RSpan angle_sig,
                                    double column_period_sec) const;

  /// Full decode of an angle-time image.
  [[nodiscard]] Result decode(const AngleTimeImage& img) const;

 private:
  Config cfg_;
};

}  // namespace wivi::core
