#include "src/core/isar.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace wivi::core {

double element_spacing_m(const IsarConfig& cfg) noexcept {
  return 2.0 * cfg.assumed_speed_mps * cfg.sample_period_sec;
}

CVec steering_vector(const IsarConfig& cfg, double theta_deg, std::size_t m) {
  WIVI_REQUIRE(m > 0, "steering vector length must be positive");
  WIVI_REQUIRE(theta_deg >= -90.0 && theta_deg <= 90.0,
               "theta must be in [-90, 90] degrees");
  const double sin_theta = std::sin(theta_deg * kPi / 180.0);
  const double phase_step =
      kTwoPi * element_spacing_m(cfg) * sin_theta / cfg.wavelength_m;
  CVec a(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double phi = phase_step * static_cast<double>(i);
    a[i] = {std::cos(phi), std::sin(phi)};
  }
  return a;
}

void SteeringMatrix::ensure(const IsarConfig& cfg, RSpan angles_deg,
                            std::size_t m, bool unit_norm) {
  WIVI_REQUIRE(m > 0, "steering vector length must be positive");
  const double spacing = element_spacing_m(cfg);
  const bool current =
      m == m_ && unit_norm == unit_norm_ && spacing == spacing_m_ &&
      cfg.wavelength_m == wavelength_m_ && angles_deg.size() == angles_.size() &&
      std::equal(angles_deg.begin(), angles_deg.end(), angles_.begin());
  if (current) return;

  m_ = m;
  unit_norm_ = unit_norm;
  spacing_m_ = spacing;
  wavelength_m_ = cfg.wavelength_m;
  angles_.assign(angles_deg.begin(), angles_deg.end());
  data_.resize(angles_.size() * m);
  const double inv_norm = 1.0 / std::sqrt(static_cast<double>(m));
  for (std::size_t ai = 0; ai < angles_.size(); ++ai) {
    const double theta_deg = angles_[ai];
    WIVI_REQUIRE(theta_deg >= -90.0 && theta_deg <= 90.0,
                 "theta must be in [-90, 90] degrees");
    const double sin_theta = std::sin(theta_deg * kPi / 180.0);
    const double phase_step = kTwoPi * spacing * sin_theta / cfg.wavelength_m;
    cdouble* const r = data_.data() + ai * m;
    for (std::size_t i = 0; i < m; ++i) {
      const double phi = phase_step * static_cast<double>(i);
      r[i] = {std::cos(phi), std::sin(phi)};
      if (unit_norm) r[i] *= inv_norm;
    }
  }
}

RVec angle_grid_deg(double step_deg) {
  WIVI_REQUIRE(step_deg > 0.0, "angle step must be positive");
  RVec grid;
  for (double t = -90.0; t <= 90.0 + 1e-9; t += step_deg) grid.push_back(t);
  return grid;
}

RVec beamform_power(CSpan window, const IsarConfig& cfg, RSpan angles_deg) {
  WIVI_REQUIRE(!window.empty(), "beamform: empty window");
  const std::size_t m = window.size();
  thread_local SteeringMatrix steering;
  steering.ensure(cfg, angles_deg, m, /*unit_norm=*/false);
  RVec out(angles_deg.size(), 0.0);
  for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
    const cdouble* const a = steering.row(ai);
    cdouble acc{0.0, 0.0};
    for (std::size_t i = 0; i < m; ++i) acc += window[i] * std::conj(a[i]);
    out[ai] = norm2(acc) / static_cast<double>(m);
  }
  return out;
}

}  // namespace wivi::core
