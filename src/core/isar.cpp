#include "src/core/isar.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/plan/registry.hpp"

namespace wivi::core {

double element_spacing_m(const IsarConfig& cfg) noexcept {
  return 2.0 * cfg.assumed_speed_mps * cfg.sample_period_sec;
}

CVec steering_vector(const IsarConfig& cfg, double theta_deg, std::size_t m) {
  WIVI_REQUIRE(m > 0, "steering vector length must be positive");
  WIVI_REQUIRE(theta_deg >= -90.0 && theta_deg <= 90.0,
               "theta must be in [-90, 90] degrees");
  const double sin_theta = std::sin(theta_deg * kPi / 180.0);
  const double phase_step =
      kTwoPi * element_spacing_m(cfg) * sin_theta / cfg.wavelength_m;
  CVec a(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double phi = phase_step * static_cast<double>(i);
    a[i] = {std::cos(phi), std::sin(phi)};
  }
  return a;
}

SteeringTable::SteeringTable(double spacing_m, double wavelength_m,
                             RSpan angles_deg, std::size_t m, bool unit_norm)
    : angles_(angles_deg.begin(), angles_deg.end()),
      m_(m),
      spacing_m_(spacing_m),
      wavelength_m_(wavelength_m),
      unit_norm_(unit_norm) {
  WIVI_REQUIRE(m > 0, "steering vector length must be positive");
  data_.resize(angles_.size() * m);
  const double inv_norm = 1.0 / std::sqrt(static_cast<double>(m));
  for (std::size_t ai = 0; ai < angles_.size(); ++ai) {
    const double theta_deg = angles_[ai];
    WIVI_REQUIRE(theta_deg >= -90.0 && theta_deg <= 90.0,
                 "theta must be in [-90, 90] degrees");
    const double sin_theta = std::sin(theta_deg * kPi / 180.0);
    const double phase_step = kTwoPi * spacing_m * sin_theta / wavelength_m;
    cdouble* const r = data_.data() + ai * m;
    for (std::size_t i = 0; i < m; ++i) {
      const double phi = phase_step * static_cast<double>(i);
      r[i] = {std::cos(phi), std::sin(phi)};
      if (unit_norm) r[i] *= inv_norm;
    }
  }
}

std::size_t SteeringTable::bytes() const noexcept {
  return angles_.size() * sizeof(double) + data_.size() * sizeof(cdouble);
}

bool SteeringTable::matches(double spacing_m, double wavelength_m,
                            RSpan angles_deg, std::size_t m,
                            bool unit_norm) const noexcept {
  return m == m_ && unit_norm == unit_norm_ && spacing_m == spacing_m_ &&
         wavelength_m == wavelength_m_ &&
         angles_deg.size() == angles_.size() &&
         std::equal(angles_deg.begin(), angles_deg.end(), angles_.begin());
}

std::shared_ptr<const SteeringTable> acquire_steering(const IsarConfig& cfg,
                                                      RSpan angles_deg,
                                                      std::size_t m,
                                                      bool unit_norm) {
  WIVI_REQUIRE(m > 0, "steering vector length must be positive");
  struct Ctx {
    double spacing;
    double wavelength;
    RSpan angles;
    std::size_t m;
    bool unit_norm;
  } ctx{element_spacing_m(cfg), cfg.wavelength_m, angles_deg, m, unit_norm};
  const std::uint64_t ints[2] = {static_cast<std::uint64_t>(m),
                                 unit_norm ? 1u : 0u};
  const double reals[2] = {ctx.spacing, ctx.wavelength};
  const plan::KeyRef key{plan::Kind::kSteering, ints, reals, angles_deg};
  const auto build = [](void* raw) -> plan::Built {
    const Ctx& c = *static_cast<const Ctx*>(raw);
    auto t = std::make_shared<const SteeringTable>(c.spacing, c.wavelength,
                                                   c.angles, c.m, c.unit_norm);
    return {t, t->bytes()};
  };
  return std::static_pointer_cast<const SteeringTable>(
      plan::registry().acquire(key, build, &ctx));
}

void SteeringMatrix::ensure(const IsarConfig& cfg, RSpan angles_deg,
                            std::size_t m, bool unit_norm) {
  WIVI_REQUIRE(m > 0, "steering vector length must be positive");
  const double spacing = element_spacing_m(cfg);
  if (table_ &&
      table_->matches(spacing, cfg.wavelength_m, angles_deg, m, unit_norm))
    return;
  table_ = acquire_steering(cfg, angles_deg, m, unit_norm);
}

RVec angle_grid_deg(double step_deg) {
  WIVI_REQUIRE(step_deg > 0.0, "angle step must be positive");
  RVec grid;
  for (double t = -90.0; t <= 90.0 + 1e-9; t += step_deg) grid.push_back(t);
  return grid;
}

std::shared_ptr<const RVec> acquire_angle_grid(double step_deg) {
  WIVI_REQUIRE(step_deg > 0.0, "angle step must be positive");
  const double reals[1] = {step_deg};
  const plan::KeyRef key{plan::Kind::kAngleGrid, {}, reals, {}};
  const auto build = [](void* raw) -> plan::Built {
    const double step = *static_cast<const double*>(raw);
    auto g = std::make_shared<const RVec>(angle_grid_deg(step));
    return {g, g->size() * sizeof(double)};
  };
  return std::static_pointer_cast<const RVec>(
      plan::registry().acquire(key, build, &step_deg));
}

RVec beamform_power(CSpan window, const IsarConfig& cfg, RSpan angles_deg) {
  WIVI_REQUIRE(!window.empty(), "beamform: empty window");
  const std::size_t m = window.size();
  thread_local SteeringMatrix steering;
  steering.ensure(cfg, angles_deg, m, /*unit_norm=*/false);
  RVec out(angles_deg.size(), 0.0);
  for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
    const cdouble* const a = steering.row(ai);
    cdouble acc{0.0, 0.0};
    for (std::size_t i = 0; i < m; ++i) acc += window[i] * std::conj(a[i]);
    out[ai] = norm2(acc) / static_cast<double>(m);
  }
  return out;
}

}  // namespace wivi::core
