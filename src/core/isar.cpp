#include "src/core/isar.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace wivi::core {

double element_spacing_m(const IsarConfig& cfg) noexcept {
  return 2.0 * cfg.assumed_speed_mps * cfg.sample_period_sec;
}

CVec steering_vector(const IsarConfig& cfg, double theta_deg, std::size_t m) {
  WIVI_REQUIRE(m > 0, "steering vector length must be positive");
  WIVI_REQUIRE(theta_deg >= -90.0 && theta_deg <= 90.0,
               "theta must be in [-90, 90] degrees");
  const double sin_theta = std::sin(theta_deg * kPi / 180.0);
  const double phase_step =
      kTwoPi * element_spacing_m(cfg) * sin_theta / cfg.wavelength_m;
  CVec a(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double phi = phase_step * static_cast<double>(i);
    a[i] = {std::cos(phi), std::sin(phi)};
  }
  return a;
}

RVec angle_grid_deg(double step_deg) {
  WIVI_REQUIRE(step_deg > 0.0, "angle step must be positive");
  RVec grid;
  for (double t = -90.0; t <= 90.0 + 1e-9; t += step_deg) grid.push_back(t);
  return grid;
}

RVec beamform_power(CSpan window, const IsarConfig& cfg, RSpan angles_deg) {
  WIVI_REQUIRE(!window.empty(), "beamform: empty window");
  RVec out(angles_deg.size(), 0.0);
  for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
    const CVec a = steering_vector(cfg, angles_deg[ai], window.size());
    cdouble acc{0.0, 0.0};
    for (std::size_t i = 0; i < window.size(); ++i)
      acc += window[i] * std::conj(a[i]);
    out[ai] = norm2(acc) / static_cast<double>(window.size());
  }
  return out;
}

}  // namespace wivi::core
