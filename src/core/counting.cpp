#include "src/core/counting.hpp"

#include <algorithm>
#include <map>

#include "src/common/error.hpp"

namespace wivi::core {
namespace {

struct ColumnMoments {
  double weight_sum = 0.0;    // W      = sum w(theta)
  double centroid = 0.0;      // C      = sum theta w / W
  double variance = 0.0;      // Eq 5.5 = sum theta^2 w - C^2 W
};

ColumnMoments column_moments(RSpan column_db, RSpan angles_deg) {
  WIVI_REQUIRE(column_db.size() == angles_deg.size(),
               "column/angle size mismatch");
  double w_sum = 0.0;
  double tw_sum = 0.0;
  double ttw_sum = 0.0;
  for (std::size_t i = 0; i < column_db.size(); ++i) {
    const double w = std::max(column_db[i], 0.0);
    const double th = angles_deg[i];
    w_sum += w;
    tw_sum += th * w;
    ttw_sum += th * th * w;
  }
  ColumnMoments m;
  m.weight_sum = w_sum;
  if (w_sum > 0.0) {
    m.centroid = tw_sum / w_sum;
    m.variance = ttw_sum - m.centroid * m.centroid * w_sum;
  }
  return m;
}

}  // namespace

double spatial_centroid(RSpan column_db, RSpan angles_deg) {
  return column_moments(column_db, angles_deg).centroid;
}

double spatial_variance_column(RSpan column_db, RSpan angles_deg) {
  return column_moments(column_db, angles_deg).variance;
}

double spatial_variance(const AngleTimeImage& img, double cap_db) {
  WIVI_REQUIRE(img.num_times() > 0, "spatial variance of an empty image");
  double acc = 0.0;
  RVec col_db;
  for (std::size_t t = 0; t < img.num_times(); ++t) {
    img.column_db_into(t, col_db, cap_db);
    acc += spatial_variance_column(col_db, img.angles_deg);
  }
  return acc / static_cast<double>(img.num_times());
}

void VarianceClassifier::train(const std::vector<LabeledVariance>& training_set) {
  WIVI_REQUIRE(!training_set.empty(), "empty training set");
  std::map<int, std::pair<double, int>> acc;  // count -> (sum, n)
  for (const auto& s : training_set) {
    auto& [sum, n] = acc[s.count];
    sum += s.variance;
    ++n;
  }
  WIVI_REQUIRE(acc.size() >= 2, "need at least two distinct counts to train");

  std::vector<int> counts;
  std::vector<double> means;
  for (const auto& [count, sn] : acc) {
    counts.push_back(count);
    means.push_back(sn.first / sn.second);
  }

  // The spatial-variance model says the means increase with the count, but
  // crowded rooms saturate (§7.4: separation shrinks as people are added),
  // so adjacent class means can invert slightly in a finite training set.
  // Isotonic regression (pool-adjacent-violators) restores monotonicity;
  // fully pooled neighbours end up sharing a threshold at their common
  // mean, and ties classify as the lower count.
  std::vector<double> iso = means;
  std::vector<double> weight(iso.size(), 1.0);
  std::vector<std::size_t> span(iso.size(), 1);
  std::size_t m = 0;  // blocks in use
  for (std::size_t i = 0; i < means.size(); ++i) {
    iso[m] = means[i];
    weight[m] = 1.0;
    span[m] = 1;
    ++m;
    while (m >= 2 && iso[m - 2] > iso[m - 1]) {
      const double w = weight[m - 2] + weight[m - 1];
      iso[m - 2] = (iso[m - 2] * weight[m - 2] + iso[m - 1] * weight[m - 1]) / w;
      weight[m - 2] = w;
      span[m - 2] += span[m - 1];
      --m;
    }
  }
  std::vector<double> fitted;
  for (std::size_t b = 0; b < m; ++b)
    fitted.insert(fitted.end(), span[b], iso[b]);

  std::vector<double> thresholds;
  for (std::size_t i = 0; i + 1 < fitted.size(); ++i)
    thresholds.push_back(0.5 * (fitted[i] + fitted[i + 1]));

  // Commit only after the fit succeeds (strong exception safety).
  counts_ = std::move(counts);
  thresholds_ = std::move(thresholds);
}

int VarianceClassifier::classify(double variance) const {
  WIVI_REQUIRE(trained(), "classifier has not been trained");
  std::size_t cls = 0;
  while (cls < thresholds_.size() && variance > thresholds_[cls]) ++cls;
  return counts_[cls];
}

}  // namespace wivi::core
