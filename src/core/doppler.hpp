/// @file
/// Doppler spectrogram processing and the narrowband-radar baseline.
///
/// The through-wall systems Wi-Vi is contrasted with in §2.1 "typically rely
/// on detecting the Doppler shift caused by moving objects behind the wall"
/// and are defeated by the flash effect. This module implements that
/// baseline: an STFT Doppler spectrogram of the channel-estimate stream and
/// a motion detector thresholding the non-DC Doppler energy. Paired with
/// the experiment runner's no-nulling mode it reproduces the paper's
/// argument for why nulling (not Doppler processing) is the enabling idea.
///
/// A human moving radially at v produces a Doppler shift of 2v/lambda
/// (~16 Hz at 1 m/s), comfortably inside the 312.5 Hz estimate stream.
#pragma once

#include <memory>
#include <vector>

#include "src/common/constants.hpp"
#include "src/common/types.hpp"
#include "src/dsp/fft.hpp"

namespace wivi::core {

/// STFT power spectrogram of a channel-estimate stream.
struct DopplerSpectrogram {
  RVec freqs_hz;              ///< bin centres, DC-centred (fftshifted)
  RVec times_sec;             ///< window centres
  std::vector<RVec> columns;  ///< columns[t][f] = power

  /// Number of STFT window positions.
  [[nodiscard]] std::size_t num_times() const noexcept { return columns.size(); }
  /// Number of Doppler bins per column.
  [[nodiscard]] std::size_t num_freqs() const noexcept { return freqs_hz.size(); }

  /// Ratio of energy outside the +/- guard band around DC to the total,
  /// averaged over time: ~0 for a static scene, large when something moves.
  [[nodiscard]] double motion_energy_ratio(double dc_guard_hz) const;

  /// CFAR-style statistic: the strongest non-DC bin relative to the median
  /// non-DC bin, averaged over time. Flat noise gives ~a few; a moving
  /// target concentrates Doppler energy in a handful of bins and pushes
  /// this far higher. Robust to the (always large) DC residual.
  [[nodiscard]] double peak_over_floor(double dc_guard_hz) const;

  /// Mean radial speed estimate from the Doppler centroid of the non-DC
  /// energy: v = lambda * f_centroid / 2.
  [[nodiscard]] double mean_radial_speed_mps(double dc_guard_hz,
                                             double wavelength_m = kWavelength) const;
};

/// Not safe for concurrent use of one instance (including via const
/// process()): the STFT reuses a mutable scratch window. Give each thread
/// its own DopplerProcessor.
class DopplerProcessor {
 public:
  /// STFT shape and pre-processing options.
  struct Config {
    int fft_size = 64;  ///< samples per STFT window (power of two)
    int hop = 16;       ///< samples between windows
    /// Sample rate of the input stream (the 312.5 Hz estimate stream).
    double sample_rate_hz = kChannelSampleRateHz;
    /// Subtract each window's mean before the FFT. The static residual is
    /// 40+ dB above the movers, and even a good window's sidelobes would
    /// leak it across the whole Doppler axis; exact mean removal kills the
    /// constant part without touching the moving components.
    bool remove_dc = true;
  };

  DopplerProcessor();  ///< Build a processor with the default Config.
  /// Build a processor with the given STFT configuration (validated).
  explicit DopplerProcessor(Config cfg);

  /// The processor's configuration.
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// STFT power spectrogram of the channel-estimate stream (Hann window,
  /// DC-centred bins). `t0` is the absolute time of h.front().
  [[nodiscard]] DopplerSpectrogram process(CSpan h, double t0 = 0.0) const;

  /// Same, into a caller-owned spectrogram whose buffers are reused: after
  /// a first (warming) call of the same shape, the whole STFT — DC removal,
  /// Hann window, FFT, power + fftshift (done as an index-rotated power
  /// write-out, no complex copy) — performs zero heap allocations. The
  /// shared scratch window makes concurrent calls on one instance unsafe.
  void process_into(CSpan h, DopplerSpectrogram& out, double t0 = 0.0) const;

 private:
  Config cfg_;
  // Immutable artifacts shared through the plan registry (wivi::plan):
  // every processor with the same fft_size reads one Hann table and one
  // FFT plan instead of owning private copies.
  std::shared_ptr<const RVec> window_;
  std::shared_ptr<const dsp::FftPlan> plan_;
  mutable CVec scratch_;  // one STFT window, reused across hops
};

/// The §2.1 narrowband-radar baseline: declare "moving target present" when
/// the non-DC Doppler energy exceeds the detector's noise-calibrated
/// threshold. With nulling this works through walls; without nulling the
/// un-boosted receiver buries the mover (the paper's core argument).
class NarrowbandMotionDetector {
 public:
  /// Detector thresholds over the Doppler spectrogram.
  struct Config {
    /// STFT shape used to form the spectrogram.
    DopplerProcessor::Config stft;
    /// Non-DC band starts here; must clear the STFT DC mainlobe (~10 Hz).
    double dc_guard_hz = 12.0;
    /// Motion if the time-averaged non-DC peak-over-floor statistic exceeds
    /// this. Flat complex-Gaussian noise gives ~3-5; 12 leaves a wide
    /// false-alarm margin.
    double threshold_peak_over_floor = 12.0;
  };

  NarrowbandMotionDetector();  ///< Build a detector with the default Config.
  /// Build a detector with the given configuration.
  explicit NarrowbandMotionDetector(Config cfg);

  /// Outcome of one detect() call.
  struct Decision {
    bool motion = false;            ///< moving target declared present?
    double peak_over_floor = 0.0;   ///< the thresholded CFAR statistic
    double energy_ratio = 0.0;      ///< non-DC energy fraction
    double radial_speed_mps = 0.0;  ///< Doppler-centroid speed estimate
  };
  /// Run the baseline detector over a channel-estimate stream.
  [[nodiscard]] Decision detect(CSpan h) const;

 private:
  Config cfg_;
};

}  // namespace wivi::core
