/// @file
/// Direction-of-arrival estimator family over the ISAR emulated array.
///
/// Wi-Vi's production estimator is smoothed MUSIC (music.hpp); this module
/// adds the two classical baselines it is evaluated against in the
/// literature the paper builds on (§5.1-§5.2, [35] Stoica & Moses):
///
///   * Bartlett - the conventional beamformer of Eq. 5.1 (delegates to
///     isar.hpp), broad main lobe, strong side lobes;
///   * Capon (MVDR) - minimum-variance distortionless response,
///     P(theta) = 1 / (a^H R^{-1} a): sharper than Bartlett, but degrades
///     on the coherent multi-human reflections unless spatially smoothed.
///
/// All three share the smoothing front end so they can be compared
/// apples-to-apples (bench_ablation_music).
#pragma once

#include "src/core/music.hpp"
#include "src/linalg/cholesky.hpp"

namespace wivi::core {

/// Which spatial-spectrum estimator DoaEstimator runs.
enum class DoaMethod {
  kBartlett,  ///< conventional beamformer (Eq. 5.1)
  kCapon,     ///< minimum-variance distortionless response
  kMusic      ///< smoothed MUSIC (the production estimator)
};

/// Not safe for concurrent use of one instance (including via const
/// spectrum()): all methods reuse mutable workspaces. Give each thread its
/// own DoaEstimator.
class DoaEstimator {
 public:
  /// Reuses MusicConfig: the ISAR geometry, the smoothing sub-array length
  /// and (for MUSIC) the model-order rule.
  DoaEstimator(DoaMethod method, MusicConfig cfg = {});

  /// The method this estimator runs.
  [[nodiscard]] DoaMethod method() const noexcept { return method_; }

  /// Spatial spectrum of one window of channel estimates on the grid.
  /// All methods return a positive spectrum whose peaks mark movers; the
  /// absolute scale is method-specific.
  [[nodiscard]] RVec spectrum(CSpan window, RSpan angles_deg) const;

  /// Diagonal loading applied to the Capon correlation matrix, as a
  /// fraction of the average eigenvalue (keeps R invertible when the
  /// window is noise-starved). Ignored by the other methods.
  double capon_loading = 1e-3;

 private:
  DoaMethod method_;
  MusicConfig cfg_;
  SmoothedMusic music_;
  // Reused workspaces (correlation, R*a product, steering cache) so the
  // per-window path stops allocating once warm; mutable because spectrum()
  // is logically const. Not safe for concurrent calls on one instance.
  mutable linalg::CMatrix r_;
  mutable CVec ra_;
  mutable SteeringMatrix steering_;
};

}  // namespace wivi::core
