/// @file
/// Automatic detection of the number of moving humans (paper §5.2 end, §7.4).
///
/// Moving humans appear as curved lines in A'[theta, n]; more humans means
/// more spatial spread at any instant. The paper's heuristic: compute the
/// spatial centroid (Eq. 5.4) and spatial variance (Eq. 5.5) of each image
/// column on the 20 log10 A' scale, average over the experiment, and learn
/// per-count thresholds from a training set gathered in a *different* room.
///
/// Note on Eq. 5.5's scale: the paper's Fig. 7-3 x-axis reads "tens of
/// millions", which pins down the intended normalisation — the theta sums are
/// taken with raw (unnormalised) dB weights; only the centroid inside the
/// variance is weight-normalised. spatial_variance_column() implements
/// exactly that: W * Var_w(theta) where W = sum of dB weights.
#pragma once

#include <vector>

#include "src/core/tracker.hpp"

namespace wivi::core {

/// Weighted spatial centroid of one image column (Eq. 5.4), using dB
/// weights clamped to [0, cap_db]. Returns 0 for an all-floor column.
[[nodiscard]] double spatial_centroid(RSpan column_db, RSpan angles_deg);

/// Unnormalised spatial variance of one column (Eq. 5.5, see header note).
[[nodiscard]] double spatial_variance_column(RSpan column_db, RSpan angles_deg);

/// Experiment-level spatial variance: Eq. 5.5 averaged over all columns of
/// the image ("averaged over the duration of the experiment", §5.2).
[[nodiscard]] double spatial_variance(const AngleTimeImage& img,
                                      double cap_db = 60.0);

/// Threshold classifier over the scalar spatial variance. Trained on
/// labelled experiments from one room, tested on another (paper §7.4).
class VarianceClassifier {
 public:
  /// One training example for train().
  struct LabeledVariance {
    int count;        ///< ground-truth number of moving humans
    double variance;  ///< measured spatial variance
  };

  /// Learn one threshold between each pair of adjacent counts: the midpoint
  /// of the two class means, after isotonic (pool-adjacent-violators)
  /// smoothing so that saturation-induced inversions between adjacent
  /// crowded classes still yield a usable monotone classifier. Requires at
  /// least two distinct counts.
  void train(const std::vector<LabeledVariance>& training_set);

  /// Predicted number of moving humans.
  [[nodiscard]] int classify(double variance) const;

  /// True once train() has been called successfully.
  [[nodiscard]] bool trained() const noexcept { return !counts_.empty(); }
  /// Learned class boundaries, ascending (counts() size minus one).
  [[nodiscard]] const std::vector<double>& thresholds() const noexcept {
    return thresholds_;
  }
  /// Distinct class labels seen in training, ascending.
  [[nodiscard]] const std::vector<int>& counts() const noexcept { return counts_; }

 private:
  std::vector<int> counts_;        // distinct class labels, ascending
  std::vector<double> thresholds_; // counts_.size() - 1 boundaries
};

}  // namespace wivi::core
