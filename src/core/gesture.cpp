#include "src/core/gesture.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/dsp/matched_filter.hpp"
#include "src/dsp/peaks.hpp"
#include "src/dsp/stats.hpp"

namespace wivi::core {

std::vector<GestureStep> encode_message(std::span<const Bit> bits,
                                        const GestureProfile& profile,
                                        double t0) {
  std::vector<GestureStep> steps;
  steps.reserve(bits.size() * 2);
  double t = t0;
  for (Bit b : bits) {
    const bool first_forward = (b == Bit::kZero);  // '0' = F then B, '1' = B then F
    steps.push_back({first_forward, t});
    t += profile.step_duration_sec + profile.intra_bit_pause_sec;
    steps.push_back({!first_forward, t});
    t += profile.step_duration_sec + profile.inter_bit_pause_sec;
  }
  return steps;
}

double message_duration_sec(std::size_t num_bits, const GestureProfile& profile) {
  return static_cast<double>(num_bits) * profile.bit_duration_sec();
}

GestureDecoder::GestureDecoder() : GestureDecoder(Config{}) {}

GestureDecoder::GestureDecoder(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.dc_exclusion_deg >= 0.0 && cfg_.dc_exclusion_deg < 90.0,
               "dc exclusion must be in [0, 90)");
  WIVI_REQUIRE(cfg_.snr_gate_db >= 0.0, "SNR gate must be >= 0 dB");
}

RVec GestureDecoder::angle_signal(const AngleTimeImage& img) const {
  // Signed projection: dB excess over the column median, weighted by the
  // normalised angle. Deliberately NOT clamped at zero - the background
  // fluctuations must survive so the decoder's noise estimate (and hence
  // the 3 dB SNR gate) is meaningful even in all-quiet traces.
  RVec sig(img.num_times(), 0.0);
  for (std::size_t t = 0; t < img.num_times(); ++t) {
    const RVec col_db = img.column_db(t);
    const double baseline = dsp::median(col_db);
    double acc = 0.0;
    for (std::size_t a = 0; a < img.num_angles(); ++a) {
      const double theta = img.angles_deg[a];
      if (std::abs(theta) <= cfg_.dc_exclusion_deg) continue;
      acc += (col_db[a] - baseline) * (theta / 90.0);
    }
    sig[t] = acc;
  }
  return sig;
}

RVec GestureDecoder::matched_output(RSpan angle_sig,
                                    double column_period_sec) const {
  WIVI_REQUIRE(column_period_sec > 0.0, "column period must be positive");
  const auto len = std::max<std::size_t>(
      3, static_cast<std::size_t>(
             std::round(cfg_.profile.step_duration_sec / column_period_sec)));
  // Forward steps: upright triangle above zero; backward: inverted below.
  // Correlating with the upright triangle answers both (the inverted filter
  // is its negation, and the paper sums the two filter outputs, which for a
  // signed input is equivalent to a single signed correlation).
  RVec tri = dsp::triangle_template(len, 1.0);
  // Unit-energy template so the output scale is window-length independent.
  const double e = std::sqrt(dsp::template_energy(tri));
  for (auto& v : tri) v /= e;
  return dsp::matched_filter(angle_sig, tri);
}

GestureDecoder::Result GestureDecoder::decode(const AngleTimeImage& img) const {
  Result r;
  r.angle_signal = angle_signal(img);
  const double dt = img.num_times() >= 2
                        ? img.times_sec[1] - img.times_sec[0]
                        : cfg_.profile.step_duration_sec / 8.0;
  r.matched_output = matched_output(r.angle_signal, dt);

  // Robust noise scale: median absolute deviation of the matched output.
  // Gestures are sparse in time, so the MAD tracks the noise, not them.
  RVec abs_out(r.matched_output.size());
  for (std::size_t i = 0; i < abs_out.size(); ++i)
    abs_out[i] = std::abs(r.matched_output[i]);
  const double mad = dsp::median(abs_out);
  r.noise_sigma = std::max(1.4826 * mad, 1e-12);

  // Peak detection with the 3 dB SNR gate (amplitude ratio).
  const double min_height = r.noise_sigma * db_to_amp(cfg_.snr_gate_db);
  const auto min_dist = static_cast<std::size_t>(std::max(
      1.0, 0.9 * cfg_.profile.step_duration_sec / dt));
  const std::vector<dsp::Peak> peaks =
      dsp::find_signed_peaks(r.matched_output, min_height, min_dist);

  for (const dsp::Peak& p : peaks) {
    Symbol s;
    s.time_sec = img.times_sec[p.index];
    s.sign = p.value >= 0.0 ? +1 : -1;
    s.snr_db = amp_to_db(std::abs(p.value) / r.noise_sigma);
    r.symbols.push_back(s);
  }

  // Pair consecutive opposite-sign symbols into bits: (+,-) => '0',
  // (-,+) => '1' (Fig. 6-3(b)). The gap limit enforces bit framing.
  const double max_gap =
      cfg_.max_pair_gap_sec > 0.0
          ? cfg_.max_pair_gap_sec
          : cfg_.profile.step_duration_sec + cfg_.profile.intra_bit_pause_sec +
                0.5 * cfg_.profile.inter_bit_pause_sec;
  std::size_t i = 0;
  while (i < r.symbols.size()) {
    if (i + 1 < r.symbols.size()) {
      const Symbol& a = r.symbols[i];
      const Symbol& b = r.symbols[i + 1];
      const bool opposite = a.sign * b.sign < 0;
      const bool close = b.time_sec - a.time_sec <= max_gap;
      const bool comparable =
          std::abs(a.snr_db - b.snr_db) <= cfg_.snr_pair_tolerance_db;
      if (opposite && close && comparable) {
        DecodedBit bit;
        bit.value = a.sign > 0 ? Bit::kZero : Bit::kOne;
        bit.time_sec = 0.5 * (a.time_sec + b.time_sec);
        bit.snr_db = std::min(a.snr_db, b.snr_db);
        r.bits.push_back(bit);
        i += 2;
        continue;
      }
    }
    ++r.unpaired_symbols;
    ++i;
  }
  return r;
}

}  // namespace wivi::core
