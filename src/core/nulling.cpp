#include "src/core/nulling.hpp"

#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::core {
namespace {

/// Combined power (dB) of the used-subcarrier average of a per-subcarrier
/// channel vector.
double combined_power_db(const phy::OfdmModem& modem, CSpan h) {
  const cdouble c = modem.combine_subcarriers(h);
  return to_db(norm2(c));
}

}  // namespace

Nuller::Nuller() : Nuller(Config{}) {}

Nuller::Nuller(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.symbols_per_estimate >= 1, "need at least one symbol per estimate");
  WIVI_REQUIRE(cfg_.max_iterations >= 0, "max_iterations must be >= 0");
  WIVI_REQUIRE(cfg_.tx_boost_db >= 0.0 && cfg_.rx_boost_db >= 0.0,
               "gain boosts must be non-negative");
}

CVec Nuller::measure(phy::SubcarrierLink& link, CSpan x0, CSpan x1,
                     bool* saturated) const {
  const phy::OfdmModem& modem = link.modem();
  const auto n = static_cast<std::size_t>(modem.num_subcarriers());
  CVec acc(n, cdouble{0.0, 0.0});
  bool any_saturated = false;
  const CVec ref = modem.preamble(cfg_.preamble_seed);
  for (int s = 0; s < cfg_.symbols_per_estimate; ++s) {
    const CVec y = link.transceive(x0, x1);
    any_saturated = any_saturated || link.last_rx_saturated();
    const CVec h = modem.estimate_channel(y, ref);
    for (std::size_t k = 0; k < n; ++k) acc[k] += h[k];
  }
  // Normalise to propagation units: divide out both gains so estimates made
  // at different gain settings are comparable (Alg. 1 mixes them).
  const double gain = db_to_amp(link.tx_gain_db()) * db_to_amp(link.rx_gain_db());
  const double scale = 1.0 / (gain * static_cast<double>(cfg_.symbols_per_estimate));
  for (auto& v : acc) v *= scale;
  if (saturated != nullptr) *saturated = any_saturated;
  return acc;
}

Nuller::Result Nuller::run(phy::SubcarrierLink& link) const {
  const phy::OfdmModem& modem = link.modem();
  const auto n = static_cast<std::size_t>(modem.num_subcarriers());
  const CVec x = modem.preamble(cfg_.preamble_seed);
  const CVec zero(n, cdouble{0.0, 0.0});
  const double base_tx = link.tx_gain_db();
  const double base_rx = link.rx_gain_db();

  Result r;

  // --- Flash-effect witness: both antennas at boosted gain, no precoding.
  link.set_tx_gain_db(base_tx + cfg_.tx_boost_db);
  (void)measure(link, x, x, &r.saturates_without_nulling);
  link.set_tx_gain_db(base_tx);

  // --- Phase 1: initial nulling (standard MIMO channel sounding).
  r.h1 = measure(link, x, zero);
  r.h2 = measure(link, zero, x);

  r.p.assign(n, cdouble{0.0, 0.0});
  for (int k : modem.used_subcarriers()) {
    const auto i = static_cast<std::size_t>(k);
    WIVI_REQUIRE(norm2(r.h2[i]) > 0.0, "h2 estimate is zero; cannot precode");
    r.p[i] = -r.h1[i] / r.h2[i];
  }

  // Pre-null static power: what the RX sees with both antennas active and
  // no precoding. (Reflections combine linearly, so h = h1 + h2.)
  {
    CVec h_sum(n, cdouble{0.0, 0.0});
    for (std::size_t k = 0; k < n; ++k) h_sum[k] = r.h1[k] + r.h2[k];
    r.pre_null_power_db = combined_power_db(modem, h_sum);
  }

  // --- Phase 2: power boosting. Safe because the channel is nulled.
  link.set_tx_gain_db(base_tx + cfg_.tx_boost_db);
  link.set_rx_gain_db(base_rx + cfg_.rx_boost_db);

  // --- Phase 3: iterative nulling.
  CVec x1(n);  // precoded antenna-2 symbol, reused across iterations
  auto transmit_nulled = [&](bool* sat) {
    for (std::size_t k = 0; k < n; ++k) x1[k] = r.p[k] * x[k];
    return measure(link, x, x1, sat);
  };

  CVec hres = transmit_nulled(&r.saturates_with_nulling);
  double residual_db = combined_power_db(modem, hres);
  r.initial_residual_power_db = residual_db;
  r.residual_trajectory_db.push_back(residual_db);

  for (int i = 0; i < cfg_.max_iterations; ++i) {
    // Alg. 1: even iterations refine h1 (Eq. 4.2), odd refine h2 (Eq. 4.3).
    for (int k : modem.used_subcarriers()) {
      const auto s = static_cast<std::size_t>(k);
      if (i % 2 == 0) {
        r.h1[s] = hres[s] + r.h1[s];
      } else {
        if (norm2(r.h1[s]) == 0.0) continue;
        r.h2[s] = (cdouble{1.0, 0.0} - hres[s] / r.h1[s]) * r.h2[s];
      }
      if (norm2(r.h2[s]) > 0.0) r.p[s] = -r.h1[s] / r.h2[s];
    }
    bool sat = false;
    hres = transmit_nulled(&sat);
    const double new_db = combined_power_db(modem, hres);
    r.residual_trajectory_db.push_back(new_db);
    r.iterations_used = i + 1;
    if (residual_db - new_db < cfg_.min_improvement_db) {
      residual_db = std::min(residual_db, new_db);
      break;
    }
    residual_db = new_db;
  }

  r.residual_power_db = residual_db;
  r.nulling_db = r.pre_null_power_db - r.residual_power_db;
  return r;
}

double lemma_4_1_1_residual(double initial_residual, double error_ratio,
                            int iterations) {
  WIVI_REQUIRE(iterations >= 0, "iterations must be >= 0");
  return initial_residual * std::pow(error_ratio, iterations);
}

}  // namespace wivi::core
