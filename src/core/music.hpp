/// @file
/// Smoothed MUSIC over the emulated ISAR array (paper §5.2, Eqs. 5.2-5.3).
///
/// Reflections from multiple humans are correlated (they all reflect the
/// same transmitted signal), which defeats plain MUSIC; spatial smoothing
/// (Shan, Wax & Kailath 1985) de-correlates them by averaging correlation
/// matrices over overlapping sub-arrays of size w' < w before the eigen
/// decomposition. The pseudospectrum
///   A'[theta] = 1 / sum_j |a(theta)^H u_j|^2        (noise eigenvectors u_j)
/// spikes at the moving humans' spatial angles and at the DC (theta = 0)
/// residual from imperfect nulling.
///
/// The evaluation path runs one pseudospectrum per sliding-window position
/// over whole traces (§7.1: ~1 s of post-processing per 25 s trace), so the
/// implementation is built around reuse: a unit-norm steering-matrix cache
/// shared across calls, contiguous noise-subspace storage for the
/// projection, workspace-backed eigendecomposition, and an incremental
/// (rank-one add/subtract) sliding-window correlation for streaming use.
#pragma once

#include "src/core/isar.hpp"
#include "src/linalg/cmatrix.hpp"
#include "src/linalg/eig.hpp"

namespace wivi::core {

/// Configuration of the smoothed-MUSIC estimator.
struct MusicConfig {
  /// ISAR emulated-array geometry (wavelength, speed, window, period).
  IsarConfig isar;
  /// Sub-array length w' used for spatial smoothing. Must be <= the window
  /// passed to pseudospectrum(); 32 trades angular resolution against
  /// de-correlation across the w = 100 window.
  int subarray = 32;
  /// Largest number of signal eigenvectors we will ever attribute to
  /// sources (humans + DC). A closed conference room holds at most a few.
  int max_sources = 16;
  /// An eigenvalue is "signal" if it exceeds the noise-floor estimate by
  /// this many dB (the floor is the mean of the smallest half of the
  /// eigenvalues).
  double signal_threshold_db = 12.0;
};

/// Streaming maintenance of the Eq. 5.2 smoothed-correlation sub-array sum
/// for a w-sample window sliding along a channel-estimate stream. Moving
/// the window by one sample drops exactly one sub-array and gains exactly
/// one, so the sum is updated with a rank-one subtract + add (O(w'^2))
/// instead of the full O(S * w'^2) rebuild; advance_to() falls back to a
/// rebuild when the slide distance makes that cheaper, and re-anchors
/// periodically to bound floating-point drift.
class SlidingCorrelation {
 public:
  /// Set up for sub-arrays of length `subarray` inside a sliding window of
  /// `window` samples (no stream attached yet).
  SlidingCorrelation(int subarray, int window);

  /// Full rebuild of the sub-array sum for the window at stream offset
  /// `pos` (covers stream[pos, pos + window)).
  void rebuild(CSpan stream, std::size_t pos);

  /// Move the window to offset `pos` (>= the current position) with
  /// incremental updates. The first call behaves like rebuild().
  void advance_to(CSpan stream, std::size_t pos);

  /// Relabel the stream origin: the caller dropped `drop` samples from the
  /// front of its buffer, so all future advance_to() positions are smaller
  /// by `drop`. Pure bookkeeping — no numeric state changes, which is what
  /// lets a bounded-memory streaming consumer (rt::StreamingTracker) stay
  /// bit-for-bit identical to a whole-trace pass. `drop` must not reach
  /// past the current window start.
  void rebase(std::size_t drop);

  /// Normalised smoothed correlation (w' x w', Hermitian) of the current
  /// window; reuses r's storage, no allocation on repeated calls.
  void correlation_into(linalg::CMatrix& r) const;

  /// Stream offset of the current window start.
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  /// Rank-one updates applied since the last full rebuild: advance_to()
  /// re-anchors (rebuilds) before this would exceed kRebuildEvery, which
  /// bounds the rounding drift of the subtract/add chain. Exposed so tests
  /// can pin behaviour on both sides of the re-anchor boundary.
  [[nodiscard]] long updates_since_rebuild() const noexcept {
    return updates_since_rebuild_;
  }

  /// Re-anchor cadence: the update budget between full rebuilds (each slid
  /// sample costs 2 updates, so this is ~2048 slid samples).
  static constexpr long kRebuildEvery = 4096;

 private:
  void accumulate_outer(const cdouble* x, double sign);

  int wp_;               // sub-array length w'
  int w_;                // window length
  int num_subarrays_;    // S = w - w' + 1
  std::size_t pos_ = 0;
  bool valid_ = false;
  long updates_since_rebuild_ = 0;
  linalg::CMatrix sum_;  // upper triangle of the un-normalised sub-array sum
};

/// Per-thread mutable MUSIC workspace: eigendecomposition buffers, the
/// contiguous noise-subspace copy, and correlation/model-order scratch.
/// Every member is fully overwritten by each estimation call, so one
/// workspace per thread serves any number of SmoothedMusic instances —
/// this is what lets a thousand idle sessions share a handful of
/// workspaces instead of each holding ~20 KB of warm buffers.
struct MusicScratch {
  linalg::CMatrix r;            ///< Correlation scratch (w' x w').
  linalg::EigResult eig;        ///< Eigendecomposition output.
  linalg::EigWorkspace eig_ws;  ///< Eigendecomposition scratch.
  CVec noise;                   ///< Noise eigenvectors, contiguous rows.
  RVec order_tail;              ///< Model-order noise-floor scratch.
};

/// The calling thread's MUSIC workspace (lazily constructed, grows to the
/// largest sub-array used on the thread and then stays warm).
[[nodiscard]] MusicScratch& music_scratch() noexcept;

/// Not safe for concurrent use of one instance (including via the const
/// methods): estimation mutates the shared per-thread workspace and the
/// instance's steering handle. Instances themselves are cheap — the heavy
/// state lives in the per-thread MusicScratch and the registry-shared
/// steering table.
class SmoothedMusic {
 public:
  /// Build an estimator (workspaces allocate lazily on first use).
  explicit SmoothedMusic(MusicConfig cfg = {});

  /// The estimator's configuration.
  [[nodiscard]] const MusicConfig& config() const noexcept { return cfg_; }

  /// Eq. 5.2 with spatial smoothing: average of sub-array correlation
  /// matrices (w' x w').
  [[nodiscard]] linalg::CMatrix smoothed_correlation(CSpan window) const;

  /// Same, into a caller-owned matrix (no allocation on repeated calls).
  void smoothed_correlation_into(CSpan window, linalg::CMatrix& r) const;

  /// Number of signal eigenvectors given descending eigenvalues.
  /// At least 1 (the DC always exists), at most cfg.max_sources, and always
  /// leaves at least one noise eigenvector.
  [[nodiscard]] int estimate_model_order(RSpan eigenvalues) const;

  /// Eq. 5.3: the MUSIC pseudospectrum of one window of channel estimates
  /// on the given angle grid. If `model_order_out` is non-null it receives
  /// the estimated number of signal eigenvectors.
  [[nodiscard]] RVec pseudospectrum(CSpan window, RSpan angles_deg,
                                    int* model_order_out = nullptr) const;

  /// Same, into a caller-owned spectrum buffer; reuses the instance's
  /// eigen/steering/noise workspaces (zero heap allocation per call once
  /// they are warm). Not safe for concurrent calls on one instance.
  void pseudospectrum_into(CSpan window, RSpan angles_deg, RVec& out,
                           int* model_order_out = nullptr) const;

  /// Pseudospectrum from an externally maintained smoothed correlation
  /// (e.g. a SlidingCorrelation) — the streaming fast path.
  void pseudospectrum_from_correlation_into(const linalg::CMatrix& r,
                                            RSpan angles_deg, RVec& out,
                                            int* model_order_out = nullptr) const;

  /// Resolve the unit-norm steering table for `angles_deg` now (a registry
  /// acquire) instead of inside the first pseudospectrum call, so session
  /// construction pays the one shared build and the hot path starts warm.
  void prewarm(RSpan angles_deg) const;

 private:
  MusicConfig cfg_;
  // The only per-instance state beyond the config: a shared_ptr-sized
  // handle to the registry-owned unit-norm steering table. All bulk
  // scratch lives in the per-thread MusicScratch.
  mutable SteeringMatrix steering_;
};

}  // namespace wivi::core
