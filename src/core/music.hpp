// Smoothed MUSIC over the emulated ISAR array (paper §5.2, Eqs. 5.2-5.3).
//
// Reflections from multiple humans are correlated (they all reflect the
// same transmitted signal), which defeats plain MUSIC; spatial smoothing
// (Shan, Wax & Kailath 1985) de-correlates them by averaging correlation
// matrices over overlapping sub-arrays of size w' < w before the eigen
// decomposition. The pseudospectrum
//   A'[theta] = 1 / sum_j |a(theta)^H u_j|^2        (noise eigenvectors u_j)
// spikes at the moving humans' spatial angles and at the DC (theta = 0)
// residual from imperfect nulling.
#pragma once

#include "src/core/isar.hpp"
#include "src/linalg/cmatrix.hpp"

namespace wivi::core {

struct MusicConfig {
  IsarConfig isar;
  /// Sub-array length w' used for spatial smoothing. Must be <= the window
  /// passed to pseudospectrum(); 32 trades angular resolution against
  /// de-correlation across the w = 100 window.
  int subarray = 32;
  /// Largest number of signal eigenvectors we will ever attribute to
  /// sources (humans + DC). A closed conference room holds at most a few.
  int max_sources = 16;
  /// An eigenvalue is "signal" if it exceeds the noise-floor estimate by
  /// this many dB (the floor is the mean of the smallest half of the
  /// eigenvalues).
  double signal_threshold_db = 12.0;
};

class SmoothedMusic {
 public:
  explicit SmoothedMusic(MusicConfig cfg = {});

  [[nodiscard]] const MusicConfig& config() const noexcept { return cfg_; }

  /// Eq. 5.2 with spatial smoothing: average of sub-array correlation
  /// matrices (w' x w').
  [[nodiscard]] linalg::CMatrix smoothed_correlation(CSpan window) const;

  /// Number of signal eigenvectors given descending eigenvalues.
  /// At least 1 (the DC always exists), at most cfg.max_sources, and always
  /// leaves at least one noise eigenvector.
  [[nodiscard]] int estimate_model_order(RSpan eigenvalues) const;

  /// Eq. 5.3: the MUSIC pseudospectrum of one window of channel estimates
  /// on the given angle grid. If `model_order_out` is non-null it receives
  /// the estimated number of signal eigenvectors.
  [[nodiscard]] RVec pseudospectrum(CSpan window, RSpan angles_deg,
                                    int* model_order_out = nullptr) const;

 private:
  MusicConfig cfg_;
};

}  // namespace wivi::core
