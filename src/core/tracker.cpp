#include "src/core/tracker.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/dsp/peaks.hpp"
#include "src/dsp/stats.hpp"
#include "src/par/image_builder.hpp"

namespace wivi::core {

RVec AngleTimeImage::column_db(std::size_t t, double cap_db) const {
  RVec out;
  column_db_into(t, out, cap_db);
  return out;
}

void AngleTimeImage::column_db_into(std::size_t t, RVec& out,
                                    double cap_db) const {
  WIVI_REQUIRE(t < columns.size(), "image column out of range");
  const RVec& col = columns[t];
  // Reference = column median, not minimum: MUSIC pushes deeper nulls at
  // non-source angles as SNR grows, so a min-referenced scale would inflate
  // the whole column with source strength; the median is a stable floor.
  const double floor_ref = std::max(dsp::median(col), 1e-300);
  out.resize(col.size());
  for (std::size_t i = 0; i < col.size(); ++i) {
    const double db = amp_to_db(std::sqrt(col[i] / floor_ref));
    out[i] = std::clamp(db, 0.0, cap_db);
  }
}

double AngleTimeImage::global_min() const {
  double lo = std::numeric_limits<double>::infinity();
  for (const RVec& col : columns)
    lo = std::min(lo, *std::min_element(col.begin(), col.end()));
  return lo;
}

double AngleTimeImage::global_max() const {
  double hi = -std::numeric_limits<double>::infinity();
  for (const RVec& col : columns)
    hi = std::max(hi, *std::max_element(col.begin(), col.end()));
  return hi;
}

MotionTracker::MotionTracker() : MotionTracker(Config{}) {}

MotionTracker::MotionTracker(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.hop >= 1, "hop must be >= 1");
  WIVI_REQUIRE(cfg_.angle_step_deg > 0.0, "angle step must be positive");
  WIVI_REQUIRE(cfg_.num_threads >= 0, "num_threads must be >= 0");
}

double MotionTracker::column_period_sec() const noexcept {
  return static_cast<double>(cfg_.hop) * cfg_.music.isar.sample_period_sec;
}

AngleTimeImage MotionTracker::process(CSpan h, double t0) const {
  // Opt-in batch parallelism: anything but the default 1 routes through
  // the column-sharded builder (whose output is thread-count invariant).
  // The builder (pool + per-worker workspaces) is constructed per call —
  // noise next to a whole-trace build, and it keeps const process()
  // callable concurrently; loops that build many images back to back
  // should hold a par::ParallelImageBuilder directly.
  if (cfg_.num_threads != 1)
    return par::ParallelImageBuilder(cfg_, cfg_.num_threads).build(h, t0);

  const auto w = static_cast<std::size_t>(cfg_.music.isar.window);
  const auto hop = static_cast<std::size_t>(cfg_.hop);
  WIVI_REQUIRE(h.size() >= w, "channel stream shorter than one ISAR window");
  const std::size_t num_cols = (h.size() - w) / hop + 1;

  AngleTimeImage img;
  img.angles_deg = angle_grid_deg(cfg_.angle_step_deg);
  img.columns.resize(num_cols);
  img.model_orders.resize(num_cols);
  img.times_sec.resize(num_cols);
  const SmoothedMusic music(cfg_.music);
  const double T = cfg_.music.isar.sample_period_sec;

  // Streaming fast path: successive windows overlap by w - hop samples, so
  // the smoothed correlation is maintained incrementally (rank-one
  // add/subtract per slid sample) instead of rebuilt per column, and the
  // pseudospectrum reuses the estimator's eigen/steering workspaces.
  SlidingCorrelation sliding(cfg_.music.subarray, cfg_.music.isar.window);
  linalg::CMatrix r;
  for (std::size_t c = 0; c < num_cols; ++c) {
    const std::size_t n = c * hop;
    sliding.advance_to(h, n);
    sliding.correlation_into(r);
    int order = 0;
    music.pseudospectrum_from_correlation_into(r, img.angles_deg,
                                               img.columns[c], &order);
    img.model_orders[c] = order;
    img.times_sec[c] =
        t0 + (static_cast<double>(n) + static_cast<double>(w) / 2.0) * T;
  }
  return img;
}

RVec MotionTracker::dominant_angle_trace(const AngleTimeImage& img,
                                         const PeakPolicy& peaks) const {
  RVec trace(img.num_times(), std::numeric_limits<double>::quiet_NaN());
  dsp::FloorPeakOptions opts;
  opts.min_over_floor = peaks.min_peak_db;
  opts.min_distance = 1;
  RVec col_db;
  for (std::size_t t = 0; t < img.num_times(); ++t) {
    img.column_db_into(t, col_db);
    // Floor = whole-column median (DC lobe included — it is part of the
    // column's level statistics). Peaks are found on the unmasked column —
    // so the DC residual is one genuine peak, not a hole whose shoulder
    // fakes a mover at the exclusion boundary — and DC-band peaks are then
    // discarded; the strongest survivor is the dominant mover.
    const double baseline = dsp::median(col_db);
    double best_db = -std::numeric_limits<double>::infinity();
    for (const dsp::Peak& p :
         dsp::find_peaks_over_floor(col_db, baseline, opts)) {
      if (std::abs(img.angles_deg[p.index]) <= peaks.dc_exclusion_deg) continue;
      if (p.value > best_db) {
        best_db = p.value;
        trace[t] = img.angles_deg[p.index];
      }
    }
  }
  return trace;
}

std::string render_ascii(const AngleTimeImage& img, std::size_t max_cols,
                         std::size_t max_rows) {
  WIVI_REQUIRE(img.num_times() > 0 && img.num_angles() > 0,
               "cannot render an empty image");
  static constexpr char kShades[] = " .:-=+*#%@";
  constexpr std::size_t kNumShades = sizeof(kShades) - 1;

  const std::size_t cols = std::min(max_cols, img.num_times());
  const std::size_t rows = std::min(max_rows, img.num_angles());
  std::string out;
  out.reserve((rows + 2) * (cols + 16));

  // Convert each selected column to dB once.
  std::vector<RVec> cols_db(cols);
  double hi = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t t = c * (img.num_times() - 1) / std::max<std::size_t>(cols - 1, 1);
    cols_db[c] = img.column_db(t);
    hi = std::max(hi, *std::max_element(cols_db[c].begin(), cols_db[c].end()));
  }
  if (hi <= 0.0) hi = 1.0;

  for (std::size_t r = 0; r < rows; ++r) {
    // Top row = +90 degrees, bottom = -90 (the paper's y-axis).
    const std::size_t a =
        (rows - 1 - r) * (img.num_angles() - 1) / std::max<std::size_t>(rows - 1, 1);
    const double angle = img.angles_deg[a];
    char label[8];
    std::snprintf(label, sizeof(label), "%+4.0f ", angle);
    out += label;
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = cols_db[c][a] / hi;  // 0..1
      const auto shade = static_cast<std::size_t>(
          std::clamp(v, 0.0, 1.0) * static_cast<double>(kNumShades - 1) + 0.5);
      out += kShades[shade];
    }
    out += '\n';
  }
  char footer[96];
  std::snprintf(footer, sizeof(footer),
                "     time %.2fs .. %.2fs  (angle +90 top / -90 bottom)\n",
                img.times_sec.front(), img.times_sec.back());
  out += footer;
  return out;
}

}  // namespace wivi::core
