#include "src/core/music.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/linalg/eig.hpp"

namespace wivi::core {

SmoothedMusic::SmoothedMusic(MusicConfig cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.subarray >= 2, "sub-array must have at least 2 elements");
  WIVI_REQUIRE(cfg_.max_sources >= 1, "max_sources must be >= 1");
  WIVI_REQUIRE(cfg_.max_sources < cfg_.subarray,
               "max_sources must leave room for noise eigenvectors");
  WIVI_REQUIRE(cfg_.signal_threshold_db > 0.0, "signal threshold must be positive");
}

linalg::CMatrix SmoothedMusic::smoothed_correlation(CSpan window) const {
  const auto wp = static_cast<std::size_t>(cfg_.subarray);
  WIVI_REQUIRE(window.size() >= wp,
               "window shorter than the smoothing sub-array");
  const std::size_t num_subarrays = window.size() - wp + 1;
  linalg::CMatrix r(wp, wp);
  for (std::size_t s = 0; s < num_subarrays; ++s) {
    const CSpan sub = window.subspan(s, wp);
    // Accumulate the rank-one term sub * sub^H without materialising it.
    for (std::size_t i = 0; i < wp; ++i)
      for (std::size_t j = 0; j < wp; ++j)
        r(i, j) += sub[i] * std::conj(sub[j]);
  }
  r *= cdouble{1.0 / static_cast<double>(num_subarrays), 0.0};
  return r;
}

int SmoothedMusic::estimate_model_order(RSpan eigenvalues) const {
  WIVI_REQUIRE(eigenvalues.size() >= 2, "need at least two eigenvalues");
  // Noise floor: median of the smallest half of the (descending)
  // eigenvalues — robust even when several strong sources leak into the
  // lower half.
  const std::size_t n = eigenvalues.size();
  const std::size_t half = n / 2;
  RVec tail(eigenvalues.begin() + static_cast<std::ptrdiff_t>(half),
            eigenvalues.end());
  std::sort(tail.begin(), tail.end());
  const double floor = std::max(tail[tail.size() / 2], 1e-300);
  const double threshold = floor * from_db(cfg_.signal_threshold_db);

  int order = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (eigenvalues[i] > threshold)
      ++order;
    else
      break;  // eigenvalues are sorted; the first miss ends the signal set
  }
  order = std::clamp(order, 1, cfg_.max_sources);
  // Keep at least one noise eigenvector for the null-space projection.
  order = std::min(order, static_cast<int>(n) - 1);
  return order;
}

RVec SmoothedMusic::pseudospectrum(CSpan window, RSpan angles_deg,
                                   int* model_order_out) const {
  const linalg::CMatrix r = smoothed_correlation(window);
  const linalg::EigResult eig = linalg::hermitian_eig(r);
  const int order = estimate_model_order(eig.values);
  if (model_order_out != nullptr) *model_order_out = order;

  const std::size_t wp = r.rows();
  const std::size_t num_noise = wp - static_cast<std::size_t>(order);

  // Pre-extract the noise eigenvectors (columns order .. wp-1).
  std::vector<CVec> noise;
  noise.reserve(num_noise);
  for (std::size_t j = static_cast<std::size_t>(order); j < wp; ++j)
    noise.push_back(eig.vectors.column(j));

  RVec spectrum(angles_deg.size(), 0.0);
  for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
    CVec a = steering_vector(cfg_.isar, angles_deg[ai], wp);
    // Unit-norm steering so the pseudospectrum scale is grid-independent.
    const double inv_norm = 1.0 / std::sqrt(static_cast<double>(wp));
    for (auto& v : a) v *= inv_norm;
    double proj = 0.0;
    for (const CVec& u : noise) {
      cdouble dot{0.0, 0.0};
      for (std::size_t i = 0; i < wp; ++i) dot += std::conj(a[i]) * u[i];
      proj += norm2(dot);
    }
    spectrum[ai] = 1.0 / std::max(proj, 1e-12);
  }
  return spectrum;
}

}  // namespace wivi::core
