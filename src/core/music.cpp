#include "src/core/music.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::core {

// --------------------------------------------------- SlidingCorrelation ---

SlidingCorrelation::SlidingCorrelation(int subarray, int window)
    : wp_(subarray), w_(window), num_subarrays_(window - subarray + 1) {
  WIVI_REQUIRE(subarray >= 2, "sub-array must have at least 2 elements");
  WIVI_REQUIRE(window >= subarray, "window shorter than the smoothing sub-array");
  // sum_ stays empty until the first rebuild(): every use is gated on
  // valid_, and rebuild() reshapes (zero-fills) before accumulating, so an
  // idle instance holds no w'^2 buffer.
}

void SlidingCorrelation::accumulate_outer(const cdouble* x, double sign) {
  // Upper triangle of sign * x x^H; the lower triangle is implied.
  const auto wp = static_cast<std::size_t>(wp_);
  for (std::size_t i = 0; i < wp; ++i) {
    const cdouble xi = sign * x[i];
    cdouble* const row_i = sum_.row(i);
    for (std::size_t j = i; j < wp; ++j) row_i[j] += xi * std::conj(x[j]);
  }
}

void SlidingCorrelation::rebuild(CSpan stream, std::size_t pos) {
  WIVI_REQUIRE(pos + static_cast<std::size_t>(w_) <= stream.size(),
               "window extends past the end of the stream");
  sum_.reshape(static_cast<std::size_t>(wp_), static_cast<std::size_t>(wp_));
  for (int s = 0; s < num_subarrays_; ++s)
    accumulate_outer(stream.data() + pos + static_cast<std::size_t>(s), 1.0);
  pos_ = pos;
  valid_ = true;
  updates_since_rebuild_ = 0;
}

void SlidingCorrelation::advance_to(CSpan stream, std::size_t pos) {
  WIVI_REQUIRE(pos + static_cast<std::size_t>(w_) <= stream.size(),
               "window extends past the end of the stream");
  WIVI_REQUIRE(!valid_ || pos >= pos_, "SlidingCorrelation only slides forward");
  if (!valid_) {
    rebuild(stream, pos);
    return;
  }
  const std::size_t delta = pos - pos_;
  // Each slid sample costs one subtract + one add (2 rank-one updates); a
  // rebuild costs S of them. Also re-anchor periodically: the subtract/add
  // chain accumulates rounding at ~eps per update, so a cheap occasional
  // rebuild keeps the streaming path within ~1e-12 of the direct one.
  if (2 * delta >= static_cast<std::size_t>(num_subarrays_) ||
      updates_since_rebuild_ + 2 * static_cast<long>(delta) > kRebuildEvery) {
    rebuild(stream, pos);
    return;
  }
  const auto S = static_cast<std::size_t>(num_subarrays_);
  for (std::size_t p = pos_; p < pos; ++p) {
    accumulate_outer(stream.data() + p, -1.0);      // drop sub-array at p
    accumulate_outer(stream.data() + p + S, 1.0);   // gain sub-array at p + S
  }
  pos_ = pos;
  updates_since_rebuild_ += 2 * static_cast<long>(delta);
}

void SlidingCorrelation::rebase(std::size_t drop) {
  if (drop == 0) return;
  WIVI_REQUIRE(valid_, "rebase() before the first window");
  WIVI_REQUIRE(drop <= pos_, "cannot rebase past the current window start");
  pos_ -= drop;
}

void SlidingCorrelation::correlation_into(linalg::CMatrix& r) const {
  WIVI_REQUIRE(valid_, "SlidingCorrelation has no window yet");
  const auto wp = static_cast<std::size_t>(wp_);
  if (r.rows() != wp || r.cols() != wp) r.reshape(wp, wp);
  const double inv = 1.0 / static_cast<double>(num_subarrays_);
  for (std::size_t i = 0; i < wp; ++i) {
    const cdouble* const src_i = sum_.row(i);
    cdouble* const dst_i = r.row(i);
    dst_i[i] = src_i[i] * inv;
    for (std::size_t j = i + 1; j < wp; ++j) {
      const cdouble v = src_i[j] * inv;
      dst_i[j] = v;
      r(j, i) = std::conj(v);
    }
  }
}

// -------------------------------------------------------- SmoothedMusic ---

MusicScratch& music_scratch() noexcept {
  thread_local MusicScratch scratch;
  return scratch;
}

SmoothedMusic::SmoothedMusic(MusicConfig cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.subarray >= 2, "sub-array must have at least 2 elements");
  WIVI_REQUIRE(cfg_.max_sources >= 1, "max_sources must be >= 1");
  WIVI_REQUIRE(cfg_.max_sources < cfg_.subarray,
               "max_sources must leave room for noise eigenvectors");
  WIVI_REQUIRE(cfg_.signal_threshold_db > 0.0, "signal threshold must be positive");
}

linalg::CMatrix SmoothedMusic::smoothed_correlation(CSpan window) const {
  linalg::CMatrix r;
  smoothed_correlation_into(window, r);
  return r;
}

void SmoothedMusic::smoothed_correlation_into(CSpan window,
                                              linalg::CMatrix& r) const {
  const auto wp = static_cast<std::size_t>(cfg_.subarray);
  WIVI_REQUIRE(window.size() >= wp,
               "window shorter than the smoothing sub-array");
  const std::size_t num_subarrays = window.size() - wp + 1;
  r.reshape(wp, wp);
  for (std::size_t s = 0; s < num_subarrays; ++s) {
    // Accumulate the rank-one term sub * sub^H without materialising it;
    // only the upper triangle — the lower is its conjugate mirror.
    const cdouble* const sub = window.data() + s;
    for (std::size_t i = 0; i < wp; ++i) {
      const cdouble si = sub[i];
      cdouble* const row_i = r.row(i);
      for (std::size_t j = i; j < wp; ++j) row_i[j] += si * std::conj(sub[j]);
    }
  }
  const double inv = 1.0 / static_cast<double>(num_subarrays);
  for (std::size_t i = 0; i < wp; ++i) {
    cdouble* const row_i = r.row(i);
    row_i[i] *= inv;
    for (std::size_t j = i + 1; j < wp; ++j) {
      row_i[j] *= inv;
      r(j, i) = std::conj(row_i[j]);
    }
  }
}

int SmoothedMusic::estimate_model_order(RSpan eigenvalues) const {
  WIVI_REQUIRE(eigenvalues.size() >= 2, "need at least two eigenvalues");
  // Noise floor: median of the smallest half of the (descending)
  // eigenvalues — robust even when several strong sources leak into the
  // lower half. nth_element on a reused scratch buffer instead of a fresh
  // copy-and-sort per call.
  const std::size_t n = eigenvalues.size();
  const std::size_t half = n / 2;
  RVec& order_tail = music_scratch().order_tail;
  order_tail.assign(eigenvalues.begin() + static_cast<std::ptrdiff_t>(half),
                    eigenvalues.end());
  const auto mid = order_tail.begin() +
                   static_cast<std::ptrdiff_t>(order_tail.size() / 2);
  std::nth_element(order_tail.begin(), mid, order_tail.end());
  const double floor = std::max(*mid, 1e-300);
  const double threshold = floor * from_db(cfg_.signal_threshold_db);

  int order = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (eigenvalues[i] > threshold)
      ++order;
    else
      break;  // eigenvalues are sorted; the first miss ends the signal set
  }
  order = std::clamp(order, 1, cfg_.max_sources);
  // Keep at least one noise eigenvector for the null-space projection.
  order = std::min(order, static_cast<int>(n) - 1);
  return order;
}

RVec SmoothedMusic::pseudospectrum(CSpan window, RSpan angles_deg,
                                   int* model_order_out) const {
  RVec spectrum;
  pseudospectrum_into(window, angles_deg, spectrum, model_order_out);
  return spectrum;
}

void SmoothedMusic::pseudospectrum_into(CSpan window, RSpan angles_deg,
                                        RVec& out, int* model_order_out) const {
  linalg::CMatrix& r = music_scratch().r;
  smoothed_correlation_into(window, r);
  pseudospectrum_from_correlation_into(r, angles_deg, out, model_order_out);
}

void SmoothedMusic::pseudospectrum_from_correlation_into(
    const linalg::CMatrix& r, RSpan angles_deg, RVec& out,
    int* model_order_out) const {
  MusicScratch& ws = music_scratch();
  linalg::hermitian_eig_into(r, ws.eig, ws.eig_ws);
  const int order = estimate_model_order(ws.eig.values);
  if (model_order_out != nullptr) *model_order_out = order;

  const std::size_t wp = r.rows();
  const std::size_t num_noise = wp - static_cast<std::size_t>(order);

  // Noise eigenvectors (columns order .. wp-1 of the eigenvector matrix)
  // copied once into contiguous rows, so the projection inner loop below
  // streams both operands linearly. Reserve the worst case (order = 1) up
  // front so later calls never reallocate even if the model order drops.
  CVec& noise = ws.noise;
  if (noise.capacity() < (wp - 1) * wp) noise.reserve((wp - 1) * wp);
  noise.resize(num_noise * wp);
  for (std::size_t jj = 0; jj < num_noise; ++jj) {
    cdouble* const u = noise.data() + jj * wp;
    const std::size_t j = static_cast<std::size_t>(order) + jj;
    for (std::size_t i = 0; i < wp; ++i) u[i] = ws.eig.vectors(i, j);
  }

  // Unit-norm steering so the pseudospectrum scale is grid-independent.
  steering_.ensure(cfg_.isar, angles_deg, wp, /*unit_norm=*/true);

  out.resize(angles_deg.size());
  for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
    const cdouble* const a = steering_.row(ai);
    // Row-wise ||a^H E_noise||^2 over contiguous storage. Four partial
    // accumulators break the serial add chain of a naive dot product (the
    // operands already sit in L1; the chain latency was the bottleneck).
    double proj = 0.0;
    for (std::size_t jj = 0; jj < num_noise; ++jj) {
      const cdouble* const u = noise.data() + jj * wp;
      cdouble d0{0.0, 0.0};
      cdouble d1{0.0, 0.0};
      cdouble d2{0.0, 0.0};
      cdouble d3{0.0, 0.0};
      std::size_t i = 0;
      for (; i + 4 <= wp; i += 4) {
        d0 += std::conj(a[i]) * u[i];
        d1 += std::conj(a[i + 1]) * u[i + 1];
        d2 += std::conj(a[i + 2]) * u[i + 2];
        d3 += std::conj(a[i + 3]) * u[i + 3];
      }
      for (; i < wp; ++i) d0 += std::conj(a[i]) * u[i];
      proj += norm2((d0 + d1) + (d2 + d3));
    }
    out[ai] = 1.0 / std::max(proj, 1e-12);
  }
}

void SmoothedMusic::prewarm(RSpan angles_deg) const {
  steering_.ensure(cfg_.isar, angles_deg,
                   static_cast<std::size_t>(cfg_.subarray),
                   /*unit_norm=*/true);
}

}  // namespace wivi::core
