#include "src/core/doa.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace wivi::core {

DoaEstimator::DoaEstimator(DoaMethod method, MusicConfig cfg)
    : method_(method), cfg_(cfg), music_(cfg) {}

RVec DoaEstimator::spectrum(CSpan window, RSpan angles_deg) const {
  if (method_ == DoaMethod::kMusic)
    return music_.pseudospectrum(window, angles_deg);

  const linalg::CMatrix r = music_.smoothed_correlation(window);
  const std::size_t wp = r.rows();

  if (method_ == DoaMethod::kBartlett) {
    // a^H R a on the smoothed correlation (equivalent to averaging the
    // Eq. 5.1 beamformer over the sub-arrays).
    RVec out(angles_deg.size(), 0.0);
    for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
      CVec a = steering_vector(cfg_.isar, angles_deg[ai], wp);
      const double inv = 1.0 / std::sqrt(static_cast<double>(wp));
      for (auto& v : a) v *= inv;
      const CVec ra = r * CSpan(a);
      cdouble acc{0.0, 0.0};
      for (std::size_t i = 0; i < wp; ++i) acc += std::conj(a[i]) * ra[i];
      out[ai] = std::max(acc.real(), 0.0);
    }
    return out;
  }

  // Capon / MVDR: P = 1 / (a^H R^{-1} a), with diagonal loading.
  linalg::CMatrix loaded = r;
  double trace = 0.0;
  for (std::size_t i = 0; i < wp; ++i) trace += loaded(i, i).real();
  const double load = capon_loading * trace / static_cast<double>(wp);
  for (std::size_t i = 0; i < wp; ++i) loaded(i, i) += load;
  const linalg::Cholesky chol(loaded);

  RVec out(angles_deg.size(), 0.0);
  for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
    CVec a = steering_vector(cfg_.isar, angles_deg[ai], wp);
    const double inv = 1.0 / std::sqrt(static_cast<double>(wp));
    for (auto& v : a) v *= inv;
    const double q = chol.inverse_quadratic_form(a);
    out[ai] = 1.0 / std::max(q, 1e-300);
  }
  return out;
}

}  // namespace wivi::core
