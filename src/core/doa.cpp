#include "src/core/doa.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace wivi::core {

DoaEstimator::DoaEstimator(DoaMethod method, MusicConfig cfg)
    : method_(method), cfg_(cfg), music_(cfg) {}

RVec DoaEstimator::spectrum(CSpan window, RSpan angles_deg) const {
  if (method_ == DoaMethod::kMusic)
    return music_.pseudospectrum(window, angles_deg);

  music_.smoothed_correlation_into(window, r_);
  const std::size_t wp = r_.rows();
  // All methods share the cached unit-norm steering matrix: contiguous
  // rows, rebuilt only when the grid or geometry changes.
  steering_.ensure(cfg_.isar, angles_deg, wp, /*unit_norm=*/true);

  if (method_ == DoaMethod::kBartlett) {
    // a^H R a on the smoothed correlation (equivalent to averaging the
    // Eq. 5.1 beamformer over the sub-arrays).
    RVec out(angles_deg.size(), 0.0);
    for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
      const cdouble* const a = steering_.row(ai);
      r_.multiply_into(CSpan(a, wp), ra_);
      cdouble acc{0.0, 0.0};
      for (std::size_t i = 0; i < wp; ++i) acc += std::conj(a[i]) * ra_[i];
      out[ai] = std::max(acc.real(), 0.0);
    }
    return out;
  }

  // Capon / MVDR: P = 1 / (a^H R^{-1} a), with diagonal loading.
  double trace = 0.0;
  for (std::size_t i = 0; i < wp; ++i) trace += r_(i, i).real();
  const double load = capon_loading * trace / static_cast<double>(wp);
  for (std::size_t i = 0; i < wp; ++i) r_(i, i) += load;
  const linalg::Cholesky chol(r_);

  RVec out(angles_deg.size(), 0.0);
  for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
    const double q = chol.inverse_quadratic_form(CSpan(steering_.row(ai), wp));
    out[ai] = 1.0 / std::max(q, 1e-300);
  }
  return out;
}

}  // namespace wivi::core
