#include "src/core/doppler.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/dsp/fft.hpp"
#include "src/dsp/stats.hpp"
#include "src/dsp/window.hpp"

namespace wivi::core {

double DopplerSpectrogram::motion_energy_ratio(double dc_guard_hz) const {
  WIVI_REQUIRE(!columns.empty(), "empty spectrogram");
  double moving = 0.0;
  double total = 0.0;
  for (const RVec& col : columns) {
    for (std::size_t f = 0; f < col.size(); ++f) {
      total += col[f];
      if (std::abs(freqs_hz[f]) > dc_guard_hz) moving += col[f];
    }
  }
  return total > 0.0 ? moving / total : 0.0;
}

double DopplerSpectrogram::peak_over_floor(double dc_guard_hz) const {
  WIVI_REQUIRE(!columns.empty(), "empty spectrogram");
  // One band buffer reused across columns (capacity settles after the first
  // column); the floor is an nth_element median, not a copy-and-sort.
  RVec band;
  band.reserve(freqs_hz.size());
  double acc = 0.0;
  for (const RVec& col : columns) {
    band.clear();
    double peak = 0.0;
    for (std::size_t f = 0; f < col.size(); ++f) {
      if (std::abs(freqs_hz[f]) <= dc_guard_hz) continue;
      band.push_back(col[f]);
      peak = std::max(peak, col[f]);
    }
    WIVI_REQUIRE(!band.empty(), "guard band covers the whole spectrum");
    const double floor_est = std::max(dsp::median_inplace(band), 1e-300);
    acc += peak / floor_est;
  }
  return acc / static_cast<double>(columns.size());
}

double DopplerSpectrogram::mean_radial_speed_mps(double dc_guard_hz,
                                                 double wavelength_m) const {
  WIVI_REQUIRE(!columns.empty(), "empty spectrogram");
  double acc = 0.0;
  double weight = 0.0;
  for (const RVec& col : columns) {
    for (std::size_t f = 0; f < col.size(); ++f) {
      if (std::abs(freqs_hz[f]) <= dc_guard_hz) continue;
      acc += std::abs(freqs_hz[f]) * col[f];
      weight += col[f];
    }
  }
  if (weight <= 0.0) return 0.0;
  // Round-trip Doppler: f = 2 v / lambda.
  return wavelength_m * (acc / weight) / 2.0;
}

DopplerProcessor::DopplerProcessor() : DopplerProcessor(Config{}) {}

DopplerProcessor::DopplerProcessor(Config cfg)
    : cfg_(cfg),
      // Shared registry artifacts; acquire throws on a non-pow2 fft_size.
      plan_(dsp::acquire_fft_plan(static_cast<std::size_t>(cfg.fft_size))),
      scratch_(static_cast<std::size_t>(cfg.fft_size)) {
  WIVI_REQUIRE(cfg_.hop >= 1, "hop must be >= 1");
  WIVI_REQUIRE(cfg_.sample_rate_hz > 0.0, "sample rate must be positive");
  // Periodic Hann, not symmetric: with the default hop = fft_size/4 (or
  // any divisor of fft_size/2) the overlapped windows sum to an exactly
  // constant level (COLA), so spectrogram energy is hop-position
  // invariant. The symmetric form repeats its zero endpoint one sample
  // late and dips at every window seam.
  window_ = dsp::acquire_window(dsp::WindowType::kHann,
                                static_cast<std::size_t>(cfg_.fft_size),
                                /*periodic=*/true);
}

DopplerSpectrogram DopplerProcessor::process(CSpan h, double t0) const {
  DopplerSpectrogram out;
  process_into(h, out, t0);
  return out;
}

void DopplerProcessor::process_into(CSpan h, DopplerSpectrogram& out,
                                    double t0) const {
  const auto nfft = static_cast<std::size_t>(cfg_.fft_size);
  const auto hop = static_cast<std::size_t>(cfg_.hop);
  WIVI_REQUIRE(h.size() >= nfft, "stream shorter than one STFT window");
  const std::size_t num_cols = (h.size() - nfft) / hop + 1;

  out.freqs_hz.resize(nfft);
  for (std::size_t f = 0; f < nfft; ++f) {
    const auto signed_bin =
        static_cast<double>(f) - static_cast<double>(nfft) / 2.0;
    out.freqs_hz[f] = signed_bin * cfg_.sample_rate_hz / static_cast<double>(nfft);
  }
  out.times_sec.resize(num_cols);
  out.columns.resize(num_cols);

  const std::size_t half = nfft / 2;   // fftshift rotation (nfft is pow2)
  const std::size_t mask = nfft - 1;
  for (std::size_t c = 0; c < num_cols; ++c) {
    const std::size_t n = c * hop;
    scratch_.assign(h.begin() + static_cast<std::ptrdiff_t>(n),
                    h.begin() + static_cast<std::ptrdiff_t>(n + nfft));
    if (cfg_.remove_dc) {
      cdouble mean{0.0, 0.0};
      for (const cdouble& v : scratch_) mean += v;
      mean /= static_cast<double>(nfft);
      for (cdouble& v : scratch_) v -= mean;
    }
    dsp::apply_window(scratch_, *window_);
    plan_->forward(scratch_);
    // fftshift folded into the power write-out as an index rotation; no
    // complex copy, and the output column's storage is reused across calls.
    RVec& power = out.columns[c];
    power.resize(nfft);
    for (std::size_t f = 0; f < nfft; ++f)
      power[f] = norm2(scratch_[(f + half) & mask]);
    out.times_sec[c] =
        t0 + (static_cast<double>(n) + static_cast<double>(nfft) / 2.0) /
                 cfg_.sample_rate_hz;
  }
}

NarrowbandMotionDetector::NarrowbandMotionDetector()
    : NarrowbandMotionDetector(Config{}) {}

NarrowbandMotionDetector::NarrowbandMotionDetector(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.dc_guard_hz >= 0.0, "DC guard must be >= 0");
  WIVI_REQUIRE(cfg_.threshold_peak_over_floor > 1.0,
               "peak-over-floor threshold must exceed 1");
}

NarrowbandMotionDetector::Decision NarrowbandMotionDetector::detect(
    CSpan h) const {
  const DopplerProcessor proc(cfg_.stft);
  const DopplerSpectrogram spec = proc.process(h);
  Decision d;
  d.peak_over_floor = spec.peak_over_floor(cfg_.dc_guard_hz);
  d.energy_ratio = spec.motion_energy_ratio(cfg_.dc_guard_hz);
  d.radial_speed_mps = spec.mean_radial_speed_mps(cfg_.dc_guard_hz);
  d.motion = d.peak_over_floor > cfg_.threshold_peak_over_floor;
  return d;
}

}  // namespace wivi::core
