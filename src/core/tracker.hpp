/// @file
/// Motion tracking pipeline: nulled channel-estimate stream to angle-time
/// image A'[theta, n] (the heat maps of Figs. 5-2, 5-3, 7-2).
#pragma once

#include <vector>

#include "src/core/music.hpp"
#include "src/core/peak_policy.hpp"

namespace wivi::core {

/// A'[theta, n] sampled on an angle grid at successive window positions.
/// Values are the raw (linear) MUSIC pseudospectrum; consumers convert to
/// dB with the normalisation that suits them.
struct AngleTimeImage {
  RVec angles_deg;                ///< row coordinates (degrees)
  RVec times_sec;                 ///< column coordinates (window centres)
  std::vector<RVec> columns;      ///< columns[t][a] = A'[angle a, time t]
  std::vector<int> model_orders;  ///< MUSIC model order per column

  /// Number of image columns (time positions).
  [[nodiscard]] std::size_t num_times() const noexcept { return columns.size(); }
  /// Number of image rows (angle grid points).
  [[nodiscard]] std::size_t num_angles() const noexcept { return angles_deg.size(); }

  /// Column t in dB relative to the column's minimum (all values >= 0),
  /// clamped at `cap_db`. This is the "20 log10 A'" scale of Eq. 5.4.
  [[nodiscard]] RVec column_db(std::size_t t, double cap_db = 60.0) const;

  /// Same, into a caller-owned buffer (no allocation on repeated calls of
  /// one shape) — the per-column hot path for counting and tracking.
  void column_db_into(std::size_t t, RVec& out, double cap_db = 60.0) const;

  /// Global minimum over all columns (linear).
  [[nodiscard]] double global_min() const;
  /// Global maximum over all columns (linear).
  [[nodiscard]] double global_max() const;
};

/// Runs smoothed MUSIC over a sliding window of the channel-estimate
/// stream to build the angle-time image, and reads the dominant mover
/// angle back out of it (the single-target readout; multi-target tracking
/// lives in track::MultiTargetTracker).
class MotionTracker {
 public:
  /// Imaging parameters.
  struct Config {
    /// MUSIC estimator configuration (ISAR geometry, smoothing, orders).
    MusicConfig music;
    /// Samples between successive window positions (image time resolution).
    int hop = 25;
    /// Angle grid step in degrees (paper sums theta over [-90, 90]).
    double angle_step_deg = 1.0;
    /// Worker threads for process(). 1 (default) keeps the sequential
    /// rank-one sliding path — bit-exact with rt::StreamingTracker. Any
    /// other value routes through par::ParallelImageBuilder, which shards
    /// columns over a pool (0 = hardware concurrency): output is then
    /// bit-identical for every thread count, but only ~1e-9-close to the
    /// sliding path (different rounding chains; see DESIGN.md §7).
    int num_threads = 1;
  };

  MotionTracker();  ///< Build a tracker with the default Config.
  /// Build a tracker with the given configuration (validated).
  explicit MotionTracker(Config cfg);

  /// The tracker's configuration.
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Time step between image columns.
  [[nodiscard]] double column_period_sec() const noexcept;

  /// Run smoothed MUSIC over sliding windows of the channel stream.
  /// `t0` is the absolute time of h.front().
  [[nodiscard]] AngleTimeImage process(CSpan h, double t0 = 0.0) const;

  /// Dominant non-DC angle per column: the angle of the strongest
  /// pseudospectrum peak outside the policy's DC exclusion band, or NaN
  /// when that peak is less than `peaks.min_peak_db` above the column's
  /// median level (no confident mover). The default PeakPolicy is the
  /// shared §5.2 thresholds every image readout uses.
  [[nodiscard]] RVec dominant_angle_trace(const AngleTimeImage& img,
                                          const PeakPolicy& peaks = {}) const;

 private:
  Config cfg_;
};

/// Render an angle-time image as an ASCII heat map (examples and debug
/// output; the paper's Figs. 5-2/5-3/7-2 are exactly this, in colour).
[[nodiscard]] std::string render_ascii(const AngleTimeImage& img,
                                       std::size_t max_cols = 72,
                                       std::size_t max_rows = 31);

}  // namespace wivi::core
