/// @file
/// MIMO interference nulling to eliminate the flash effect (paper §4, Alg. 1).
///
/// Three phases, exactly as the paper's Algorithm 1:
///   1. Initial nulling — estimate h1, h2 from separate preambles, precode the
///      second antenna with p = -h1/h2 so static reflections cancel at the RX.
///   2. Power boosting — raise TX (and optionally RX) gain; safe only because
///      the channel is already nulled, so the ADC no longer saturates.
///   3. Iterative nulling — the combined residual h_res is re-measured and
///      attributed alternately to h1 (even iterations, Eq. 4.2) and h2 (odd
///      iterations, Eq. 4.3); converges geometrically (Lemma 4.1.1).
///
/// Everything is per subcarrier (paper §7.1) against the abstract
/// phy::SubcarrierLink, so the same code would drive real radios.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.hpp"
#include "src/hw/usrp.hpp"
#include "src/phy/link.hpp"

namespace wivi::core {

/// Runs the paper's three-phase nulling procedure against a MIMO link.
class Nuller {
 public:
  /// Procedure parameters (paper defaults).
  struct Config {
    /// OFDM symbols averaged per channel estimate; each estimate spans a few
    /// milliseconds, short relative to human motion (paper §4.1 last bullet).
    int symbols_per_estimate = 8;
    /// Power boost after initial nulling (paper: 12 dB, USRP linear range).
    double tx_boost_db = hw::kPowerBoostDb;
    /// Extra RX gain after nulling ("we can also boost the receive gain
    /// without saturating", §4.1.2 footnote).
    double rx_boost_db = 20.0;
    /// Iterative-nulling cap; convergence is geometric so few are needed.
    int max_iterations = 12;
    /// Stop early once an iteration improves the residual by less than this.
    double min_improvement_db = 0.5;
    /// Preamble PRN seed (must match on TX and RX, as on a real device).
    std::uint64_t preamble_seed = 0x5Fee1DEA;
  };

  /// Everything the procedure measured and produced.
  struct Result {
    CVec h1;  ///< final per-subcarrier channel estimate, antenna 1
    CVec h2;  ///< final per-subcarrier channel estimate, antenna 2
    /// Final per-subcarrier precoder (zeros on unused subcarriers); what
    /// stage-2 operation transmits.
    CVec p;

    /// Received static-path power before nulling (both antennas transmitting
    /// x, no precoding), in dB relative to the estimation reference.
    double pre_null_power_db = 0.0;
    /// Residual static-path power after the final iteration (same reference).
    double residual_power_db = 0.0;
    /// Achieved nulling = pre_null_power_db - residual_power_db (Fig. 7-7).
    double nulling_db = 0.0;

    /// Residual after initial nulling only (ablation: what iterative nulling
    /// buys on top of stage 1).
    double initial_residual_power_db = 0.0;

    /// Residual power per iterative-nulling iteration, for checking the
    /// Lemma 4.1.1 geometric decay.
    std::vector<double> residual_trajectory_db;
    int iterations_used = 0;  ///< iterative-nulling iterations actually run

    /// Flash effect witness: did the ADC saturate when both antennas
    /// transmitted at boosted gain *without* nulling?
    bool saturates_without_nulling = false;
    /// And with nulling in place at the same gain?
    bool saturates_with_nulling = false;
  };

  Nuller();  ///< Build a nuller with the default Config.
  /// Build a nuller with the given configuration.
  explicit Nuller(Config cfg);

  /// Run the full three-phase procedure. Leaves the link at boosted TX/RX
  /// gain with the precoder ready for stage-2 (tracking) operation.
  [[nodiscard]] Result run(phy::SubcarrierLink& link) const;

  /// The nuller's configuration.
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

 private:
  /// Average per-subcarrier channel estimate over symbols_per_estimate
  /// symbols, transmitting `x0`/`x1`; normalised to propagation units
  /// (TX/RX gains divided out) so estimates from different gain settings
  /// are directly comparable.
  [[nodiscard]] CVec measure(phy::SubcarrierLink& link, CSpan x0, CSpan x1,
                             bool* saturated = nullptr) const;

  Config cfg_;
};

/// Predicted residual magnitude after `iterations` of iterative nulling
/// given the initial residual and the relative estimate error |Δ2 / h2|
/// (Lemma 4.1.1): |h_res^(i)| = |h_res^(0)| * ratio^i.
[[nodiscard]] double lemma_4_1_1_residual(double initial_residual,
                                          double error_ratio, int iterations);

}  // namespace wivi::core
