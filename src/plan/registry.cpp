#include "src/plan/registry.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/common/error.hpp"

namespace wivi::plan {

namespace {

bool bits_equal(std::span<const double> a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

std::uint64_t hash_key(const KeyRef& key) noexcept {
  // FNV-1a, one byte at a time over 64-bit words: kind, then each
  // section's length and elements (doubles by bit pattern).
  std::uint64_t h = 14695981039346656037ull;
  const auto word = [&h](std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  word(static_cast<std::uint64_t>(key.kind));
  word(key.ints.size());
  for (const std::uint64_t v : key.ints) word(v);
  word(key.reals.size());
  for (const double d : key.reals) word(std::bit_cast<std::uint64_t>(d));
  word(key.grid.size());
  for (const double d : key.grid) word(std::bit_cast<std::uint64_t>(d));
  return h;
}

Registry::Registry(std::size_t capacity) : c_(capacity) {
  WIVI_REQUIRE(capacity >= 1, "plan registry capacity must be >= 1");
}

Registry::EntryList& Registry::list_of(ListId id) {
  switch (id) {
    case ListId::kT1: return t1_;
    case ListId::kT2: return t2_;
    case ListId::kB1: return b1_;
    case ListId::kB2: return b2_;
  }
  return t1_;  // unreachable
}

bool Registry::matches(const Entry& e, const KeyRef& key,
                       std::uint64_t hash) const {
  return e.hash == hash && e.kind == key.kind &&
         e.ints.size() == key.ints.size() &&
         std::equal(key.ints.begin(), key.ints.end(), e.ints.begin()) &&
         bits_equal(key.reals, e.reals) && bits_equal(key.grid, e.grid);
}

Registry::EntryIt Registry::find_locked(const KeyRef& key, std::uint64_t hash,
                                        bool* found) {
  const auto bucket = index_.find(hash);
  if (bucket != index_.end()) {
    for (const EntryIt it : bucket->second) {
      if (matches(*it, key, hash)) {
        *found = true;
        return it;
      }
    }
  }
  *found = false;
  return t1_.end();
}

void Registry::move_to_front(EntryIt it, ListId dst) {
  EntryList& d = list_of(dst);
  EntryList& s = list_of(it->list);
  it->list = dst;
  d.splice(d.begin(), s, it);
}

void Registry::demote_lru(ListId from) {
  EntryList& src = list_of(from);
  if (src.empty()) return;
  const EntryIt it = std::prev(src.end());
  // Drop only the registry's reference: outstanding handles keep the
  // artifact alive, and it->ghost (set at build time) lets a later
  // acquire resurrect it without rebuilding.
  stats_.resident_bytes -= it->bytes;
  it->artifact.reset();
  ++stats_.evictions;
  move_to_front(it, from == ListId::kT1 ? ListId::kB1 : ListId::kB2);
}

void Registry::drop_lru(ListId from) {
  EntryList& src = list_of(from);
  if (src.empty()) return;
  const EntryIt it = std::prev(src.end());
  if (it->artifact != nullptr) {
    stats_.resident_bytes -= it->bytes;
    ++stats_.evictions;
  }
  erase_from_index(it);
  src.erase(it);
}

void Registry::erase_from_index(EntryIt it) {
  const auto bucket = index_.find(it->hash);
  if (bucket == index_.end()) return;
  auto& v = bucket->second;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == it) {
      v[i] = v.back();
      v.pop_back();
      break;
    }
  }
  if (v.empty()) index_.erase(bucket);
}

void Registry::replace_locked(bool hit_in_b2) {
  // ARC's REPLACE: demote the resident LRU the adaptation target points
  // at — T1 when it exceeds p (or exactly meets it on a B2 hit), else T2.
  if (!t1_.empty() &&
      (t1_.size() > p_ || (hit_in_b2 && t1_.size() == p_))) {
    demote_lru(ListId::kT1);
  } else if (!t2_.empty()) {
    demote_lru(ListId::kT2);
  }
}

void Registry::make_room_locked(bool /*in_ghost*/) {
  // ARC case IV (brand-new key): keep |T1|+|B1| <= c and the total
  // directory <= 2c before inserting at the MRU of T1.
  const std::size_t l1 = t1_.size() + b1_.size();
  if (l1 == c_) {
    if (t1_.size() < c_) {
      drop_lru(ListId::kB1);
      replace_locked(false);
    } else {
      drop_lru(ListId::kT1);  // B1 empty and T1 full: discard T1's LRU
    }
  } else if (l1 < c_) {
    const std::size_t total = l1 + t2_.size() + b2_.size();
    if (total >= c_) {
      if (total == 2 * c_) drop_lru(ListId::kB2);
      replace_locked(false);
    }
  }
}

std::shared_ptr<const void> Registry::materialize_locked(EntryIt it,
                                                         BuildFn build,
                                                         void* ctx) {
  if (auto live = it->ghost.lock()) {
    // Some session still holds a handle to the evicted artifact — adopt
    // it back instead of rebuilding.
    ++stats_.resurrections;
    it->artifact = std::move(live);
  } else {
    ++stats_.builds;
    Built b = build(ctx);
    WIVI_REQUIRE(b.artifact != nullptr, "plan builder returned null");
    it->artifact = std::move(b.artifact);
    it->bytes = b.bytes;
    it->ghost = it->artifact;
  }
  stats_.resident_bytes += it->bytes;
  return it->artifact;
}

std::shared_ptr<const void> Registry::acquire(const KeyRef& key, BuildFn build,
                                              void* ctx) {
  WIVI_REQUIRE(build != nullptr, "plan builder must be non-null");
  const std::uint64_t h = hash_key(key);
  std::lock_guard<std::mutex> lock(mu_);

  bool found = false;
  const EntryIt it = find_locked(key, h, &found);
  if (found && it->artifact != nullptr) {
    // Resident hit — the allocation-free fast path: bump to the MRU of
    // the frequency list and hand out a handle copy.
    ++stats_.hits;
    move_to_front(it, ListId::kT2);
    return it->artifact;
  }
  ++stats_.misses;

  if (found) {
    // Ghost hit: the key was evicted recently. Adapt p toward the list
    // that proved too small, make room, then revive or rebuild.
    ++stats_.ghost_hits;
    const bool in_b2 = it->list == ListId::kB2;
    if (in_b2) {
      const std::size_t d =
          std::max<std::size_t>(1, b2_.empty() ? 1 : b1_.size() / b2_.size());
      p_ = p_ > d ? p_ - d : 0;
    } else {
      const std::size_t d =
          std::max<std::size_t>(1, b1_.empty() ? 1 : b2_.size() / b1_.size());
      p_ = std::min(c_, p_ + d);
    }
    replace_locked(in_b2);
    std::shared_ptr<const void> artifact = materialize_locked(it, build, ctx);
    move_to_front(it, ListId::kT2);
    return artifact;
  }

  // Brand-new key: build first (strong exception safety — a throwing
  // builder leaves only the miss counted), then insert at the MRU of T1.
  ++stats_.builds;
  Built b = build(ctx);
  WIVI_REQUIRE(b.artifact != nullptr, "plan builder returned null");
  make_room_locked(false);
  t1_.push_front(Entry{});
  const EntryIt ni = t1_.begin();
  ni->hash = h;
  ni->kind = key.kind;
  ni->ints.assign(key.ints.begin(), key.ints.end());
  ni->reals.assign(key.reals.begin(), key.reals.end());
  ni->grid.assign(key.grid.begin(), key.grid.end());
  ni->artifact = std::move(b.artifact);
  ni->ghost = ni->artifact;
  ni->bytes = b.bytes;
  ni->list = ListId::kT1;
  index_[h].push_back(ni);
  stats_.resident_bytes += ni->bytes;
  return ni->artifact;
}

Stats Registry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.resident_plans =
      static_cast<std::uint64_t>(t1_.size()) + static_cast<std::uint64_t>(t2_.size());
  return s;
}

std::size_t Registry::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return c_;
}

void Registry::set_capacity(std::size_t capacity) {
  WIVI_REQUIRE(capacity >= 1, "plan registry capacity must be >= 1");
  std::lock_guard<std::mutex> lock(mu_);
  c_ = capacity;
  trim_locked();
}

void Registry::trim_locked() {
  p_ = std::min(p_, c_);
  while (t1_.size() + t2_.size() > c_) replace_locked(false);
  while (t1_.size() + b1_.size() > c_)
    drop_lru(b1_.empty() ? ListId::kT1 : ListId::kB1);
  while (t1_.size() + t2_.size() + b1_.size() + b2_.size() > 2 * c_)
    drop_lru(ListId::kB2);
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  index_.clear();
  p_ = 0;
  stats_ = Stats{};
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace wivi::plan
