/// @file
/// wivi::plan — the shared-plan registry (DESIGN.md §12).
///
/// Every pipeline needs a handful of expensive, immutable,
/// read-only-after-build artifacts — steering matrices, FFT twiddle
/// tables, window functions, angle grids — and most sessions share a
/// handful of configurations, so owning them per session is pure
/// duplication. The registry hash-conses them: an artifact is keyed by
/// its *canonicalized* configuration (two specs that build bit-identical
/// values collide on one key), built at most once while resident, and
/// handed out as `shared_ptr<const T>` handles that any number of
/// sessions and threads read concurrently.
///
/// Residency is bounded by an ARC cache (Megiddo & Modha, FAST'03): two
/// resident lists split recency (T1) from frequency (T2) hits, two ghost
/// lists (B1/B2) remember recently evicted keys, and the adaptation
/// target p shifts capacity between the two on ghost hits — so one-shot
/// configs cannot flush the hot set, and a workload's reuse pattern tunes
/// the split automatically. Eviction only drops the *registry's* handle:
/// outstanding session handles keep the artifact alive, and a ghost entry
/// keeps a `weak_ptr` so re-acquiring a still-alive evicted plan
/// resurrects it without rebuilding.
///
/// Ownership rules (§12): anyone may hold a handle for as long as they
/// like — handles pin the artifact, not a cache slot. The artifact behind
/// a handle is deeply immutable; builders run under the registry lock and
/// must not re-enter the registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace wivi::plan {

/// @addtogroup wivi_plan
/// @{

/// Artifact families the registry distinguishes (part of every key, so
/// equal parameter lists of different families never collide).
enum class Kind : std::uint8_t {
  kFft = 0,    ///< dsp::FftPlan twiddle/permutation tables.
  kWindow,     ///< dsp window coefficient tables.
  kSteering,   ///< core::SteeringTable phase-ramp matrices.
  kAngleGrid,  ///< core angle grids.
  kOther,      ///< Caller-defined artifacts (tests, future layers).
};

/// A borrowed, stack-only view of a canonicalized plan key: the artifact
/// family plus up to three parameter sections (integers, real scalars,
/// and a real vector such as an angle grid). Reals are keyed and compared
/// *bitwise*, so keying is exact and deterministic; callers canonicalize
/// before keying (e.g. steering keys carry the derived element spacing
/// 2vT, not v and T separately, so (v=1, T) and (v=2, T/2) collide).
/// Building a KeyRef never allocates — that is what keeps registry hits
/// allocation-free.
struct KeyRef {
  /// Artifact family.
  Kind kind = Kind::kOther;
  /// Integer parameters (sizes, flags), in a fixed caller-chosen order.
  std::span<const std::uint64_t> ints;
  /// Real scalar parameters (geometry), in a fixed caller-chosen order.
  std::span<const double> reals;
  /// Real vector payload (e.g. the angle grid contents); often empty.
  std::span<const double> grid;
};

/// 64-bit FNV-1a hash of a key (kind, section lengths, and the bit
/// patterns of every element). Deterministic across runs and platforms
/// with IEEE-754 doubles.
[[nodiscard]] std::uint64_t hash_key(const KeyRef& key) noexcept;

/// What a builder returns: the type-erased immutable artifact plus its
/// approximate heap footprint (drives the resident-bytes gauge).
struct Built {
  /// The artifact; must be non-null. The registry only ever exposes it
  /// as a pointer-to-const.
  std::shared_ptr<const void> artifact;
  /// Approximate bytes the artifact keeps alive (tables, not headers).
  std::size_t bytes = 0;
};

/// Builder callback: a plain function pointer plus an opaque context (a
/// `std::function` would allocate on construction and break the
/// zero-alloc hit contract). Runs under the registry lock; must not
/// re-enter the registry.
using BuildFn = Built (*)(void* ctx);

/// Point-in-time registry counters (monotonic except the two gauges).
struct Stats {
  std::uint64_t hits = 0;           ///< acquires served from a resident plan
  std::uint64_t misses = 0;         ///< acquires that found no resident plan
  std::uint64_t builds = 0;         ///< builder invocations
  std::uint64_t ghost_hits = 0;     ///< misses whose key was in a ghost list
  std::uint64_t resurrections = 0;  ///< ghost hits revived from a live handle
  std::uint64_t evictions = 0;      ///< resident plans demoted or dropped
  std::uint64_t resident_plans = 0; ///< gauge: plans currently resident
  std::uint64_t resident_bytes = 0; ///< gauge: bytes of resident artifacts
};

/// The config-keyed artifact cache: hash-consed handles bounded by ARC.
/// Thread-safe; one mutex serializes every operation (builds included, so
/// a plan is never built twice concurrently).
class Registry {
 public:
  /// Default residency bound, in plans (not bytes): generous next to the
  /// handful of configs a real deployment uses, small next to memory.
  static constexpr std::size_t kDefaultCapacity = 128;

  /// A registry bounded to `capacity` resident plans (>= 1).
  explicit Registry(std::size_t capacity = kDefaultCapacity);

  Registry(const Registry&) = delete;             ///< Non-copyable.
  Registry& operator=(const Registry&) = delete;  ///< Non-copyable.

  /// The shared handle for `key`, building via `build(ctx)` only when no
  /// resident or resurrectable artifact exists. A hit performs no heap
  /// allocation (hash, probe, list splice, handle copy). The returned
  /// handle stays valid indefinitely — eviction only drops the registry's
  /// own reference. Throws whatever `build` throws (the registry is left
  /// unchanged apart from the miss counter).
  [[nodiscard]] std::shared_ptr<const void> acquire(const KeyRef& key,
                                                    BuildFn build, void* ctx);

  /// Current counters (gauges included), one consistent view.
  [[nodiscard]] Stats stats() const;

  /// Residency bound in plans.
  [[nodiscard]] std::size_t capacity() const;

  /// Re-bound residency to `capacity` (>= 1) plans, evicting LRU-first
  /// until the ARC invariants hold again.
  void set_capacity(std::size_t capacity);

  /// Drop every entry (resident and ghost) and zero the counters — test
  /// isolation; outstanding handles stay valid.
  void clear();

 private:
  /// Which ARC list an entry currently lives on.
  enum class ListId : std::uint8_t { kT1, kT2, kB1, kB2 };

  struct Entry {
    std::uint64_t hash = 0;
    Kind kind = Kind::kOther;
    std::vector<std::uint64_t> ints;
    std::vector<double> reals;
    std::vector<double> grid;
    std::shared_ptr<const void> artifact;  // non-null iff resident (T1/T2)
    std::weak_ptr<const void> ghost;       // survives demotion to B1/B2
    std::size_t bytes = 0;
    ListId list = ListId::kT1;
  };
  using EntryList = std::list<Entry>;
  using EntryIt = EntryList::iterator;

  [[nodiscard]] EntryList& list_of(ListId id);
  [[nodiscard]] bool matches(const Entry& e, const KeyRef& key,
                             std::uint64_t hash) const;
  [[nodiscard]] EntryIt find_locked(const KeyRef& key, std::uint64_t hash,
                                    bool* found);
  void move_to_front(EntryIt it, ListId dst);
  void demote_lru(ListId from);          // resident LRU -> ghost list MRU
  void drop_lru(ListId from);            // remove the list's LRU entirely
  void replace_locked(bool hit_in_b2);   // ARC's REPLACE procedure
  void make_room_locked(bool in_ghost);  // ARC case IV bookkeeping
  void trim_locked();                    // restore invariants after resize
  void erase_from_index(EntryIt it);
  [[nodiscard]] std::shared_ptr<const void> materialize_locked(
      EntryIt it, BuildFn build, void* ctx);

  mutable std::mutex mu_;
  std::size_t c_;      // capacity in resident plans
  std::size_t p_ = 0;  // ARC adaptation target for |T1|
  EntryList t1_, t2_;  // resident: recency / frequency (MRU at front)
  EntryList b1_, b2_;  // ghosts of t1_ / t2_ evictions (MRU at front)
  /// hash -> entries with that hash (collisions resolved by full compare).
  std::unordered_map<std::uint64_t, std::vector<EntryIt>> index_;
  Stats stats_;
};

/// The process-wide registry every built-in acquire_* helper uses. One
/// instance by design: sharing across engines/sessions is the point.
[[nodiscard]] Registry& registry();

/// @}

}  // namespace wivi::plan
