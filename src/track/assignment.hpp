/// @file
/// Track-to-detection assignment: gated nearest neighbour with a Hungarian
/// fallback for ambiguous frames.
///
/// Each image column yields a handful of detections that must be matched
/// to the live tracks. Most frames are easy — every detection is inside
/// exactly one track's gate — and greedy nearest neighbour is both optimal
/// and cheap there. Frames where gates overlap (targets crossing, a
/// detection reachable from two tracks) are where greedy commits early and
/// swaps identities, so the tracker detects that ambiguity and switches to
/// the Hungarian algorithm, which minimises the *total* association cost
/// over the frame. Costs are innovation distances in degrees; pairs outside
/// the gate are forbidden (infinite cost) and stay unmatched.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/types.hpp"

namespace wivi::track {

/// Sentinel for "row matched to no column" in assignment results.
inline constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

/// Dense row-major cost table for an assignment problem: rows are tracks,
/// columns are detections, entries are association costs (innovation
/// distance in degrees). An entry of +infinity marks a pair outside the
/// association gate — it can never be matched.
class CostMatrix {
 public:
  /// An empty rows x cols table initialised to +infinity (all forbidden).
  CostMatrix(std::size_t rows, std::size_t cols);

  /// Mutable access to entry (r, c).
  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  /// Read-only access to entry (r, c).
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  /// Number of rows (tracks).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  /// Number of columns (detections).
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  RVec data_;
};

/// Greedy gated nearest neighbour: repeatedly commit the cheapest feasible
/// (row, column) pair until none remains. Returns, per row, the matched
/// column or kUnassigned. Optimal whenever no two rows contend for the
/// same column (the common, unambiguous frame); may be suboptimal when
/// gates overlap.
[[nodiscard]] std::vector<std::size_t> greedy_assign(const CostMatrix& cost);

/// Hungarian (Kuhn-Munkres) assignment, O(n^3): the matching that
/// minimises total cost while matching as many feasible pairs as possible
/// (leaving a feasible pair unmatched is never cheaper). Returns, per row,
/// the matched column or kUnassigned.
[[nodiscard]] std::vector<std::size_t> hungarian_assign(const CostMatrix& cost);

/// True when the feasibility graph is ambiguous: some connected component
/// of the (row, column) gate graph contains at least two rows and at least
/// two columns, so greedy commitment order can change the matching.
[[nodiscard]] bool assignment_is_ambiguous(const CostMatrix& cost);

/// The tracker's dispatcher: greedy_assign() for unambiguous frames,
/// hungarian_assign() when assignment_is_ambiguous().
[[nodiscard]] std::vector<std::size_t> assign(const CostMatrix& cost);

}  // namespace wivi::track
