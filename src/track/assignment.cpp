#include "src/track/assignment.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/error.hpp"

namespace wivi::track {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Stand-in cost for forbidden / padding entries inside the Hungarian
/// solver: large enough that avoiding one is worth more than any sum of
/// real gate-bounded costs (degrees, so < 180 each over < 10^3 rows), small
/// enough to stay far from overflow in the potential updates.
constexpr double kBig = 1e9;

}  // namespace

CostMatrix::CostMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, kInf) {}

std::vector<std::size_t> greedy_assign(const CostMatrix& cost) {
  struct Entry {
    double c;
    std::size_t r, j;
  };
  std::vector<Entry> feasible;
  for (std::size_t r = 0; r < cost.rows(); ++r)
    for (std::size_t j = 0; j < cost.cols(); ++j)
      if (std::isfinite(cost.at(r, j))) feasible.push_back({cost.at(r, j), r, j});
  // Cheapest first; ties broken by indices so the result is deterministic.
  std::sort(feasible.begin(), feasible.end(), [](const Entry& a, const Entry& b) {
    if (a.c != b.c) return a.c < b.c;
    if (a.r != b.r) return a.r < b.r;
    return a.j < b.j;
  });
  std::vector<std::size_t> row_match(cost.rows(), kUnassigned);
  std::vector<bool> col_taken(cost.cols(), false);
  for (const Entry& e : feasible) {
    if (row_match[e.r] != kUnassigned || col_taken[e.j]) continue;
    row_match[e.r] = e.j;
    col_taken[e.j] = true;
  }
  return row_match;
}

std::vector<std::size_t> hungarian_assign(const CostMatrix& cost) {
  const std::size_t rows = cost.rows();
  const std::size_t cols = cost.cols();
  std::vector<std::size_t> row_match(rows, kUnassigned);
  if (rows == 0 || cols == 0) return row_match;

  // Square n x n problem with forbidden and padding entries at kBig; the
  // solver then maximises the number of feasible matches as a side effect
  // of minimising total cost.
  const std::size_t n = std::max(rows, cols);
  const auto a = [&](std::size_t r, std::size_t c) -> double {
    if (r >= rows || c >= cols) return kBig;
    const double v = cost.at(r, c);
    return std::isfinite(v) ? v : kBig;
  };

  // Potentials-based Kuhn-Munkres (1-indexed internally): p[j] is the row
  // matched to column j, column 0 is the virtual root.
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0), way(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = a(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t r = p[j] - 1;
    const std::size_t c = j - 1;
    if (r < rows && c < cols && std::isfinite(cost.at(r, c)))
      row_match[r] = c;
  }
  return row_match;
}

bool assignment_is_ambiguous(const CostMatrix& cost) {
  const std::size_t rows = cost.rows();
  const std::size_t cols = cost.cols();
  if (rows < 2 || cols < 2) return false;
  // Union-find over rows [0, rows) and columns [rows, rows + cols).
  std::vector<std::size_t> parent(rows + cols);
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t j = 0; j < cols; ++j)
      if (std::isfinite(cost.at(r, j))) parent[find(r)] = find(rows + j);
  std::vector<std::size_t> row_count(rows + cols, 0), col_count(rows + cols, 0);
  for (std::size_t r = 0; r < rows; ++r) ++row_count[find(r)];
  for (std::size_t j = 0; j < cols; ++j) ++col_count[find(rows + j)];
  for (std::size_t root = 0; root < parent.size(); ++root)
    if (row_count[root] >= 2 && col_count[root] >= 2) return true;
  return false;
}

std::vector<std::size_t> assign(const CostMatrix& cost) {
  return assignment_is_ambiguous(cost) ? hungarian_assign(cost)
                                       : greedy_assign(cost);
}

}  // namespace wivi::track
