/// @file
/// Multi-peak detection over MUSIC pseudospectrum columns.
///
/// The paper's multi-person evaluation (Figs. 5-3, 7-2: up to three humans)
/// reads several simultaneous peaks out of each angle-time image column;
/// this module turns one column into a set of Detection candidates. The
/// actual peak extraction — floor-relative thresholding plus non-maximum
/// suppression — is the shared dsp::find_peaks_over_floor() implementation
/// that core::MotionTracker's single-target dominant-angle readout also
/// consumes, so the two code paths can never disagree about what counts as
/// a peak. Both find peaks on the unmasked column (the DC residual is a
/// genuine peak, and its suppression footprint is wanted) and then discard
/// peaks inside the DC exclusion band.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/tracker.hpp"

namespace wivi::track {

/// One candidate mover extracted from a single angle-time image column.
struct Detection {
  /// Spatial angle of the pseudospectrum peak in degrees.
  double angle_deg = 0.0;
  /// Peak height on the column's dB scale (AngleTimeImage::column_db).
  double strength_db = 0.0;
  /// Index of the peak in the image's angle grid.
  std::size_t angle_index = 0;
};

/// Extracts up to a handful of mover detections from each image column.
/// Reuses internal buffers across calls, so the per-column path allocates
/// only when the caller-visible detection list grows; one instance is not
/// safe for concurrent use.
class ColumnDetector {
 public:
  /// Detection thresholds and geometry.
  struct Config {
    /// The shared DC-exclusion / floor-relative acceptance thresholds
    /// (§5.2) — the same core::PeakPolicy the single-target readout and
    /// the gesture decoder consume, so the paths can never drift apart.
    core::PeakPolicy peaks;
    /// Two reported peaks are at least this far apart in degrees; closer
    /// rivals are suppressed in favour of the taller one (MUSIC's
    /// resolution limit makes closer pairs unreliable anyway).
    double min_separation_deg = 6.0;
    /// Upper bound on detections per column. The paper tracks up to 3
    /// humans; a little headroom lets clutter compete and lose.
    int max_detections = 5;
    /// dB cap of the column scale (AngleTimeImage::column_db).
    double cap_db = 60.0;
  };

  ColumnDetector();  ///< Build a detector with the default Config.
  /// Build a detector with the given thresholds (validated).
  explicit ColumnDetector(Config cfg);

  /// The detector's configuration.
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Extract detections from column `t` of `img`, angle-sorted.
  [[nodiscard]] std::vector<Detection> detect(const core::AngleTimeImage& img,
                                              std::size_t t) const;

  /// Same, into a caller-owned list (cleared first): the zero-allocation
  /// steady-state path for per-column tracking.
  /// @param img  the angle-time image to read.
  /// @param t    column index within `img`.
  /// @param out  receives the detections, sorted by angle index.
  void detect_into(const core::AngleTimeImage& img, std::size_t t,
                   std::vector<Detection>& out) const;

 private:
  Config cfg_;
  mutable RVec col_db_;  // column dB scratch
};

}  // namespace wivi::track
