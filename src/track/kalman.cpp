#include "src/track/kalman.hpp"

#include "src/common/error.hpp"

namespace wivi::track {

AngleKalman::AngleKalman(const KalmanConfig& cfg, double angle_deg)
    : cfg_(cfg),
      x0_(angle_deg),
      x1_(0.0),
      p00_(cfg.measurement_sigma_deg * cfg.measurement_sigma_deg),
      p01_(0.0),
      p11_(cfg.initial_velocity_sigma_dps * cfg.initial_velocity_sigma_dps) {
  WIVI_REQUIRE(cfg_.process_noise >= 0.0, "process noise must be >= 0");
  WIVI_REQUIRE(cfg_.measurement_sigma_deg > 0.0,
               "measurement sigma must be positive");
}

void AngleKalman::predict(double dt_sec) {
  WIVI_REQUIRE(dt_sec >= 0.0, "cannot predict backwards in time");
  const double dt = dt_sec;
  const double q = cfg_.process_noise;
  x0_ += x1_ * dt;
  // P <- F P F^T + Q with F = [[1, dt], [0, 1]] and the continuous
  // white-acceleration Q = q * [[dt^3/3, dt^2/2], [dt^2/2, dt]].
  const double p00 = p00_ + dt * (2.0 * p01_ + dt * p11_) + q * dt * dt * dt / 3.0;
  const double p01 = p01_ + dt * p11_ + q * dt * dt / 2.0;
  const double p11 = p11_ + q * dt;
  p00_ = p00;
  p01_ = p01;
  p11_ = p11;
}

double AngleKalman::innovation_variance() const noexcept {
  return p00_ + cfg_.measurement_sigma_deg * cfg_.measurement_sigma_deg;
}

void AngleKalman::update(double angle_deg) {
  const double s = innovation_variance();
  const double k0 = p00_ / s;
  const double k1 = p01_ / s;
  const double innovation = angle_deg - x0_;
  x0_ += k0 * innovation;
  x1_ += k1 * innovation;
  const double p00 = (1.0 - k0) * p00_;
  const double p01 = (1.0 - k0) * p01_;
  const double p11 = p11_ - k1 * p01_;
  p00_ = p00;
  p01_ = p01;
  p11_ = p11;
}

void AngleKalman::damp_velocity(double factor) {
  WIVI_REQUIRE(factor > 0.0 && factor <= 1.0,
               "velocity damping factor must be in (0, 1]");
  // x1 <- f * x1 is the linear map G = diag(1, f); P <- G P G^T keeps the
  // covariance consistent with the damped state.
  x1_ *= factor;
  p01_ *= factor;
  p11_ *= factor * factor;
}

}  // namespace wivi::track
