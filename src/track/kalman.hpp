/// @file
/// Per-target constant-velocity Kalman filter in spatial angle.
///
/// A mover's spatial angle theta (sin(theta) = v_radial / v_assumed, paper
/// §5.1) evolves smoothly on the column timescale of the angle-time image
/// (one column per hop = 80 ms at the paper's parameters), so a two-state
/// constant-velocity model [theta, theta_dot] with white-acceleration
/// process noise is the right smoother: it tracks walking humans through
/// MUSIC grid quantisation and peak jitter, carries a predicted angle
/// through dropped detections (coasting), and its velocity state is what
/// keeps identities straight when two tracks cross — the association cost
/// is distance to the *predicted* position, and two crossing targets have
/// opposite predicted velocities.
#pragma once

#include "src/common/types.hpp"

namespace wivi::track {

/// Noise configuration of the constant-velocity angle filter.
struct KalmanConfig {
  /// Continuous white-acceleration spectral density q, in (deg/s^2)^2 * s.
  /// Sets how fast the filter lets a target's angular velocity change:
  /// larger follows manoeuvres faster but smooths less.
  double process_noise = 40.0;
  /// Standard deviation of one angle measurement in degrees. The MUSIC
  /// grid step (1 deg) plus peak jitter makes ~1.5 deg a good default.
  double measurement_sigma_deg = 1.5;
  /// Standard deviation of the (unknown) initial angular velocity in
  /// deg/s. A walking human sweeps at most a few tens of deg/s.
  double initial_velocity_sigma_dps = 30.0;
};

/// Scalar-measurement constant-velocity Kalman filter over the state
/// [angle (deg), angular velocity (deg/s)]. One instance per live track;
/// the tracker calls predict() once per image column and update() when a
/// detection is associated (coasting columns predict without updating).
class AngleKalman {
 public:
  /// Start a filter at a first detection.
  /// @param cfg        noise configuration (copied).
  /// @param angle_deg  the detection's angle — the initial state mean.
  AngleKalman(const KalmanConfig& cfg, double angle_deg);

  /// Time-propagate the state by `dt_sec` seconds (one image column).
  /// After predict(), angle_deg() is the gate centre for association.
  void predict(double dt_sec);

  /// Fold in an associated detection at `angle_deg` degrees.
  void update(double angle_deg);

  /// Decay the velocity state by `factor` in (0, 1] (covariance scaled
  /// consistently). The tracker applies this to long-coasting tracks so a
  /// stalled target's prediction parks near where it faded instead of
  /// extrapolating away on stale velocity (the exponentially-decaying
  /// velocity of a Singer-style manoeuvre model, applied only while no
  /// measurements arrive).
  void damp_velocity(double factor);

  /// Current (predicted or updated) angle estimate in degrees.
  [[nodiscard]] double angle_deg() const noexcept { return x0_; }
  /// Current angular-velocity estimate in deg/s.
  [[nodiscard]] double velocity_dps() const noexcept { return x1_; }
  /// Variance of the angle estimate (deg^2).
  [[nodiscard]] double angle_variance() const noexcept { return p00_; }
  /// Innovation variance S = P_00 + R of a measurement taken now (deg^2);
  /// the natural scale for gating decisions.
  [[nodiscard]] double innovation_variance() const noexcept;

 private:
  KalmanConfig cfg_;
  double x0_;   // angle (deg)
  double x1_;   // angular velocity (deg/s)
  double p00_;  // covariance entries (symmetric 2x2)
  double p01_;
  double p11_;
};

}  // namespace wivi::track
