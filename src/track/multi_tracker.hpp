/// @file
/// Multi-target tracking over the angle-time image.
///
/// The paper's headline evaluation is multi-person: up to three humans are
/// localised and counted behind a wall from the smoothed-MUSIC angle-time
/// image (Figs. 5-3, 7-2). This module closes the loop from image columns
/// to persistent target identities: each column is reduced to a set of
/// detections (ColumnDetector), detections are associated to live tracks
/// by gated nearest neighbour with a Hungarian fallback for ambiguous
/// frames (assignment.hpp), each track is smoothed by a per-target
/// constant-velocity Kalman filter (kalman.hpp), and a
/// tentative -> confirmed -> coasting -> dead lifecycle keeps identities
/// stable while targets cross, enter, leave, or momentarily fade below
/// the detection floor.
///
/// The tracker is strictly column-incremental — step() consumes one image
/// column and never revisits earlier ones — so the streaming wrapper
/// (rt::StreamingMultiTracker) is bit-for-bit identical to a batch pass by
/// construction.
#pragma once

#include <cstddef>
#include <vector>

#include "src/track/detect.hpp"
#include "src/track/kalman.hpp"

namespace wivi::track {

/// Lifecycle states of a track.
enum class TrackState {
  /// Newly born from an unassociated detection; not yet reported as a
  /// target. Dies quickly if not re-detected (clutter suppression).
  kTentative,
  /// Established target: detected in enough consecutive columns.
  kConfirmed,
  /// Confirmed target that missed its detection this column; the Kalman
  /// prediction carries it until re-acquisition or the coast budget runs
  /// out.
  kCoasting,
  /// Track terminated (coast budget exhausted or tentative starved);
  /// its identity is never reused.
  kDead,
};

/// Human-readable name of a TrackState ("tentative", "confirmed", ...).
[[nodiscard]] const char* to_string(TrackState s) noexcept;

/// Public view of one live track after a column update.
struct TrackSnapshot {
  /// Stable track identity (unique over the tracker's lifetime).
  int id = 0;
  /// Lifecycle state after this column.
  TrackState state = TrackState::kTentative;
  /// Kalman angle estimate in degrees.
  double angle_deg = 0.0;
  /// Kalman angular-velocity estimate in deg/s.
  double velocity_dps = 0.0;
  /// Time of the column this snapshot describes (image times_sec).
  double time_sec = 0.0;
  /// True when a detection was associated this column (false = coasted).
  bool updated = false;
  /// Strength of the associated detection in dB (0 when coasting).
  double strength_db = 0.0;
  /// Columns since birth (1 on the birth column).
  int age_columns = 0;
};

/// Full per-track history, kept for live and dead tracks alike: the
/// angle-vs-time curve a figure or an application consumes.
struct TrackHistory {
  /// Stable track identity.
  int id = 0;
  /// Column index of the birth detection.
  std::size_t birth_column = 0;
  /// Final lifecycle state (kDead once terminated).
  TrackState state = TrackState::kTentative;
  /// True if the track was ever confirmed (tentative clutter never is).
  bool confirmed_ever = false;
  /// Column times covered by this track, one entry per column alive.
  RVec times_sec;
  /// Kalman angle estimate per column alive (smoothed trajectory).
  RVec angles_deg;
  /// Per column alive: whether a detection was associated (false =
  /// coasted on prediction).
  std::vector<bool> updated;
};

/// Tracks every mover in an angle-time image, one column at a time.
/// Deterministic: the same column sequence always produces the same
/// tracks, ids and states. Not safe for concurrent use of one instance.
class MultiTargetTracker {
 public:
  /// Detection, smoothing, association and lifecycle parameters.
  struct Config {
    /// Per-column multi-peak detection thresholds.
    ColumnDetector::Config detector;
    /// Per-target constant-velocity smoother noise.
    KalmanConfig kalman;
    /// Association gate in degrees: a detection further than this from a
    /// track's predicted angle can never be associated with it.
    double gate_deg = 15.0;
    /// Consecutive detected columns before a tentative track is confirmed
    /// (the paper's image cadence is ~12.5 columns/s, so 3 is ~0.25 s).
    int confirm_columns = 3;
    /// Consecutive missed columns a confirmed track may coast before it
    /// dies (~2 s at the default cadence). Crossing targets merge into one
    /// detection for as long as they sit inside one MUSIC resolution cell —
    /// easily a second for slow movers — so the budget must outlast the
    /// merge; the price is that a departed person's track lingers this long.
    int max_coast_columns = 25;
    /// Consecutive missed columns before an unconfirmed (tentative) track
    /// dies; small, so clutter blips vanish quickly.
    int tentative_max_misses = 2;
    /// Coasted columns after which the track's velocity state starts to
    /// decay (see coast_velocity_damping). Short coasts — crossing merges,
    /// single dropped detections — keep the full constant-velocity
    /// extrapolation that re-acquires a moving target on the far side; only
    /// a coast longer than this looks like a stalled target whose stale
    /// velocity would drag the prediction away from the re-appearance
    /// point.
    int coast_damp_after = 8;
    /// Velocity damping factor applied each coasted column past
    /// coast_damp_after (1 = legacy undamped coasting). With the default,
    /// a long-stalled target's prediction parks within a gate-width of
    /// where it faded, so the target re-associates with its old identity
    /// when it starts moving again instead of being reborn under a new id.
    double coast_velocity_damping = 0.6;
    /// Occlusion forgiveness: a confirmed track that misses its detection
    /// while its prediction sits within the detector's min_separation_deg
    /// of a track that *was* updated this column is occluded — the
    /// detector cannot resolve two peaks that close, so the miss says
    /// nothing about the target having left. Occluded misses do not
    /// consume the coast budget; this cap on consecutive occluded columns
    /// is the safety valve that eventually retires a track permanently
    /// hidden behind another (0 disables forgiveness entirely — every
    /// miss consumes coast budget, the legacy lifecycle).
    int max_occluded_columns = 120;
  };

  MultiTargetTracker();  ///< Build a tracker with the default Config.
  /// Build a tracker (validates the configuration).
  explicit MultiTargetTracker(Config cfg);

  /// The tracker's configuration.
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Consume column `t` of `img`. Columns must be fed strictly in order:
  /// `t` must equal columns_processed() (enforced). Returns the snapshots
  /// of all live (non-dead) tracks after the update, ordered by track id.
  const std::vector<TrackSnapshot>& step(const core::AngleTimeImage& img,
                                         std::size_t t);

  /// Number of columns consumed so far.
  [[nodiscard]] std::size_t columns_processed() const noexcept {
    return cols_seen_;
  }

  /// Snapshots of all live tracks after the most recent step(), ordered by
  /// track id (empty before the first step).
  [[nodiscard]] const std::vector<TrackSnapshot>& snapshots() const noexcept {
    return snapshots_;
  }

  /// Histories of every track ever created — live and dead, confirmed and
  /// clutter — ordered by id. Filter on `confirmed_ever` for targets.
  [[nodiscard]] std::vector<TrackHistory> histories() const;

  /// Number of currently live confirmed-or-coasting targets.
  [[nodiscard]] std::size_t num_confirmed() const noexcept;

  /// Drop all tracks and start over (ids keep counting up).
  void reset();

 private:
  struct Track {
    int id;
    TrackState state;
    AngleKalman kalman;
    std::size_t birth_column;
    int age_columns = 1;
    int consecutive_hits = 1;
    int consecutive_misses = 0;
    double last_strength_db = 0.0;
    TrackHistory history;
    int occluded_columns = 0;  // consecutive occluded (forgiven) misses
  };

  void kill(Track& tr);
  [[nodiscard]] bool occluded(std::size_t i,
                              const std::vector<std::size_t>& match) const;

  Config cfg_;
  ColumnDetector detector_;
  std::vector<Track> live_;           // id order (insertion order)
  std::vector<TrackHistory> dead_;    // retired tracks, id order
  std::vector<TrackSnapshot> snapshots_;
  std::vector<Detection> detections_;  // per-column scratch
  std::size_t cols_seen_ = 0;
  double last_time_sec_ = 0.0;
  int next_id_ = 1;
};

/// Convenience batch entry point: run a fresh MultiTargetTracker over every
/// column of `img` and return the final histories (the batch counterpart
/// the streaming path is pinned against).
/// @param img  a complete angle-time image.
/// @param cfg  tracker configuration.
/// @return histories of all tracks, ordered by id.
[[nodiscard]] std::vector<TrackHistory> track_image(
    const core::AngleTimeImage& img, const MultiTargetTracker::Config& cfg = {});

/// Result of the whole-trace batch entry point: the angle-time image plus
/// the tracks extracted from it (keep the image for figures/debugging, or
/// discard it and keep only the histories).
struct TraceTrackResult {
  /// The smoothed-MUSIC angle-time image of the trace.
  core::AngleTimeImage image;
  /// Histories of every track, ordered by id (track_image semantics).
  std::vector<TrackHistory> histories;
};

/// Samples-to-tracks batch entry point: build the angle-time image of a
/// recorded channel-estimate stream and track every mover in it. Set
/// `image_cfg.num_threads` != 1 to shard the image build over a worker
/// pool (par::ParallelImageBuilder; 0 = all cores) — the dominant cost of
/// this call by far. The tracking pass itself stays single-threaded (it
/// is strictly column-sequential) and is identical for every thread
/// count.
/// @param h  the recorded channel-estimate stream.
/// @param image_cfg  imaging configuration (hop, grid, MUSIC, threads).
/// @param cfg  tracker configuration.
/// @param t0  absolute time of h.front().
/// @return the image and the track histories.
[[nodiscard]] TraceTrackResult track_trace(
    CSpan h, const core::MotionTracker::Config& image_cfg = {},
    const MultiTargetTracker::Config& cfg = {}, double t0 = 0.0);

}  // namespace wivi::track
