#include "src/track/detect.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/dsp/peaks.hpp"
#include "src/dsp/stats.hpp"

namespace wivi::track {

ColumnDetector::ColumnDetector() : ColumnDetector(Config{}) {}

ColumnDetector::ColumnDetector(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.peaks.min_peak_db >= 0.0, "min_peak_db must be >= 0");
  WIVI_REQUIRE(cfg_.peaks.dc_exclusion_deg >= 0.0 &&
                   cfg_.peaks.dc_exclusion_deg < 90.0,
               "dc_exclusion_deg must be in [0, 90)");
  WIVI_REQUIRE(cfg_.min_separation_deg >= 0.0,
               "min_separation_deg must be >= 0");
  WIVI_REQUIRE(cfg_.max_detections >= 1, "max_detections must be >= 1");
}

std::vector<Detection> ColumnDetector::detect(const core::AngleTimeImage& img,
                                              std::size_t t) const {
  std::vector<Detection> out;
  detect_into(img, t, out);
  return out;
}

void ColumnDetector::detect_into(const core::AngleTimeImage& img,
                                 std::size_t t,
                                 std::vector<Detection>& out) const {
  out.clear();
  WIVI_REQUIRE(img.num_angles() >= 2, "angle grid too small to detect peaks");
  img.column_db_into(t, col_db_, cfg_.cap_db);
  const double floor = dsp::median(col_db_);

  const double grid_step = std::abs(img.angles_deg[1] - img.angles_deg[0]);
  dsp::FloorPeakOptions opts;
  opts.min_over_floor = cfg_.peaks.min_peak_db;
  opts.min_distance = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(cfg_.min_separation_deg /
                                              std::max(grid_step, 1e-9))));
  // Peak-find on the *unmasked* column so the DC residual is one genuine
  // peak at ~0 degrees (whose NMS footprint also suppresses unreliable
  // rivals hugging it) rather than a masked-out hole whose shoulder would
  // fake a permanent mover at the exclusion boundary. DC-band peaks are
  // then discarded, and only then is the detection budget applied.
  opts.max_peaks = SIZE_MAX;
  for (const dsp::Peak& p : dsp::find_peaks_over_floor(col_db_, floor, opts)) {
    if (std::abs(img.angles_deg[p.index]) <= cfg_.peaks.dc_exclusion_deg)
      continue;
    out.push_back({img.angles_deg[p.index], p.value, p.index});
  }
  if (out.size() > static_cast<std::size_t>(cfg_.max_detections)) {
    std::sort(out.begin(), out.end(), [](const Detection& a, const Detection& b) {
      return a.strength_db > b.strength_db;
    });
    out.resize(static_cast<std::size_t>(cfg_.max_detections));
    std::sort(out.begin(), out.end(), [](const Detection& a, const Detection& b) {
      return a.angle_index < b.angle_index;
    });
  }
}

}  // namespace wivi::track
