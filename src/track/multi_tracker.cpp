#include "src/track/multi_tracker.hpp"

#include <algorithm>
#include <cmath>

#include "src/api/session.hpp"
#include "src/common/error.hpp"
#include "src/track/assignment.hpp"

namespace wivi::track {

const char* to_string(TrackState s) noexcept {
  switch (s) {
    case TrackState::kTentative: return "tentative";
    case TrackState::kConfirmed: return "confirmed";
    case TrackState::kCoasting: return "coasting";
    case TrackState::kDead: return "dead";
  }
  return "?";
}

MultiTargetTracker::MultiTargetTracker() : MultiTargetTracker(Config{}) {}

MultiTargetTracker::MultiTargetTracker(Config cfg)
    : cfg_(cfg), detector_(cfg.detector) {
  WIVI_REQUIRE(cfg_.gate_deg > 0.0, "association gate must be positive");
  WIVI_REQUIRE(cfg_.confirm_columns >= 1, "confirm_columns must be >= 1");
  WIVI_REQUIRE(cfg_.max_coast_columns >= 0, "max_coast_columns must be >= 0");
  WIVI_REQUIRE(cfg_.tentative_max_misses >= 1,
               "tentative_max_misses must be >= 1");
  WIVI_REQUIRE(cfg_.coast_damp_after >= 0, "coast_damp_after must be >= 0");
  WIVI_REQUIRE(cfg_.coast_velocity_damping > 0.0 &&
                   cfg_.coast_velocity_damping <= 1.0,
               "coast_velocity_damping must be in (0, 1]");
  WIVI_REQUIRE(cfg_.max_occluded_columns >= 0,
               "max_occluded_columns must be >= 0");
}

bool MultiTargetTracker::occluded(
    std::size_t i, const std::vector<std::size_t>& match) const {
  if (cfg_.max_occluded_columns <= 0) return false;  // forgiveness disabled
  const double angle = live_[i].kalman.angle_deg();
  for (std::size_t k = 0; k < live_.size(); ++k) {
    if (k == i || match[k] == kUnassigned) continue;
    if (std::abs(live_[k].kalman.angle_deg() - angle) <=
        cfg_.detector.min_separation_deg)
      return true;
  }
  return false;
}

void MultiTargetTracker::kill(Track& tr) {
  tr.state = TrackState::kDead;
  tr.history.state = TrackState::kDead;
  dead_.push_back(std::move(tr.history));
}

const std::vector<TrackSnapshot>& MultiTargetTracker::step(
    const core::AngleTimeImage& img, std::size_t t) {
  WIVI_REQUIRE(t == cols_seen_, "columns must be fed strictly in order");
  WIVI_REQUIRE(t < img.num_times(), "image column out of range");
  const double now = img.times_sec[t];
  const double dt = cols_seen_ > 0 ? now - last_time_sec_ : 0.0;
  WIVI_REQUIRE(dt >= 0.0, "image time must be non-decreasing");
  last_time_sec_ = now;
  ++cols_seen_;

  detector_.detect_into(img, t, detections_);

  // 1. Predict every live track to this column's time.
  for (Track& tr : live_) tr.kalman.predict(dt);

  // 2. Gated association: innovation distance, infinite outside the gate.
  CostMatrix cost(live_.size(), detections_.size());
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const double predicted = live_[i].kalman.angle_deg();
    for (std::size_t j = 0; j < detections_.size(); ++j) {
      const double d = std::abs(detections_[j].angle_deg - predicted);
      if (d <= cfg_.gate_deg) cost.at(i, j) = d;
    }
  }
  const std::vector<std::size_t> match = assign(cost);

  // 3. Update matched tracks, age the lifecycle of unmatched ones.
  std::vector<bool> det_taken(detections_.size(), false);
  for (std::size_t i = 0; i < live_.size(); ++i) {
    Track& tr = live_[i];
    ++tr.age_columns;
    const bool hit = match[i] != kUnassigned;
    tr.last_strength_db = 0.0;
    if (hit) {
      const Detection& det = detections_[match[i]];
      det_taken[match[i]] = true;
      tr.kalman.update(det.angle_deg);
      tr.last_strength_db = det.strength_db;
      ++tr.consecutive_hits;
      tr.consecutive_misses = 0;
      tr.occluded_columns = 0;
      if (tr.state == TrackState::kCoasting) tr.state = TrackState::kConfirmed;
      if (tr.state == TrackState::kTentative &&
          tr.consecutive_hits >= cfg_.confirm_columns) {
        tr.state = TrackState::kConfirmed;
        tr.history.confirmed_ever = true;
      }
    } else {
      tr.consecutive_hits = 0;
      if (tr.state == TrackState::kTentative) {
        ++tr.consecutive_misses;
        if (tr.consecutive_misses >= cfg_.tentative_max_misses)
          tr.state = TrackState::kDead;
      } else if (occluded(i, match)) {
        // The prediction sits within the detector's resolution of a track
        // that WAS detected this column: two targets have merged into one
        // peak, and the miss says nothing about this one having left. The
        // miss is forgiven — the coast budget is for departed targets —
        // up to the max_occluded_columns safety valve.
        ++tr.occluded_columns;
        tr.state = tr.occluded_columns > cfg_.max_occluded_columns
                       ? TrackState::kDead
                       : TrackState::kCoasting;
      } else {
        // A confirmed target coasts on its prediction for up to
        // max_coast_columns columns, then dies. Past coast_damp_after
        // columns the velocity state decays each column, so a stalled
        // target's prediction parks near its fade point instead of
        // extrapolating away on stale velocity.
        ++tr.consecutive_misses;
        tr.occluded_columns = 0;
        if (tr.consecutive_misses > cfg_.coast_damp_after)
          tr.kalman.damp_velocity(cfg_.coast_velocity_damping);
        tr.state = tr.consecutive_misses > cfg_.max_coast_columns
                       ? TrackState::kDead
                       : TrackState::kCoasting;
      }
    }
    if (tr.state == TrackState::kDead) continue;
    tr.history.state = tr.state;
    tr.history.times_sec.push_back(now);
    tr.history.angles_deg.push_back(tr.kalman.angle_deg());
    tr.history.updated.push_back(hit);
  }
  for (std::size_t i = 0; i < live_.size();) {
    if (live_[i].state == TrackState::kDead) {
      kill(live_[i]);
      live_.erase(live_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // 4. Every unclaimed detection births a tentative track.
  for (std::size_t j = 0; j < detections_.size(); ++j) {
    if (det_taken[j]) continue;
    const Detection& det = detections_[j];
    Track tr{next_id_++,
             TrackState::kTentative,
             AngleKalman(cfg_.kalman, det.angle_deg),
             /*birth_column=*/t,
             /*age_columns=*/1,
             /*consecutive_hits=*/1,
             /*consecutive_misses=*/0,
             /*last_strength_db=*/det.strength_db,
             TrackHistory{}};
    tr.history.id = tr.id;
    tr.history.birth_column = t;
    tr.history.state = tr.state;
    tr.history.times_sec.push_back(now);
    tr.history.angles_deg.push_back(det.angle_deg);
    tr.history.updated.push_back(true);
    if (cfg_.confirm_columns <= 1) {
      tr.state = TrackState::kConfirmed;
      tr.history.state = tr.state;
      tr.history.confirmed_ever = true;
    }
    live_.push_back(std::move(tr));
  }

  // 5. Snapshot the survivors (live_ is insertion order == id order).
  snapshots_.clear();
  for (const Track& tr : live_) {
    TrackSnapshot snap;
    snap.id = tr.id;
    snap.state = tr.state;
    snap.angle_deg = tr.kalman.angle_deg();
    snap.velocity_dps = tr.kalman.velocity_dps();
    snap.time_sec = now;
    snap.updated = tr.history.updated.back();
    snap.strength_db = tr.last_strength_db;
    snap.age_columns = tr.age_columns;
    snapshots_.push_back(snap);
  }
  return snapshots_;
}

std::vector<TrackHistory> MultiTargetTracker::histories() const {
  std::vector<TrackHistory> all = dead_;
  for (const Track& tr : live_) all.push_back(tr.history);
  std::sort(all.begin(), all.end(),
            [](const TrackHistory& a, const TrackHistory& b) {
              return a.id < b.id;
            });
  return all;
}

std::size_t MultiTargetTracker::num_confirmed() const noexcept {
  std::size_t n = 0;
  for (const Track& tr : live_)
    n += tr.state == TrackState::kConfirmed || tr.state == TrackState::kCoasting;
  return n;
}

void MultiTargetTracker::reset() {
  live_.clear();
  dead_.clear();
  snapshots_.clear();
  detections_.clear();
  cols_seen_ = 0;
  last_time_sec_ = 0.0;
}

std::vector<TrackHistory> track_image(const core::AngleTimeImage& img,
                                      const MultiTargetTracker::Config& cfg) {
  MultiTargetTracker tracker(cfg);
  for (std::size_t t = 0; t < img.num_times(); ++t) tracker.step(img, t);
  return tracker.histories();
}

TraceTrackResult track_trace(CSpan h,
                             const core::MotionTracker::Config& image_cfg,
                             const MultiTargetTracker::Config& cfg,
                             double t0) {
  // Built through the declarative facade: one spec, image + track stages.
  // image_cfg.num_threads keeps its historical meaning by selecting the
  // execution mode — 1 = sequential batch (the sliding path), anything
  // else = the column-parallel offline mode (DESIGN.md §7).
  api::PipelineSpec spec;
  spec.image.tracker = image_cfg;
  spec.image.emit_columns = false;  // the image is read back whole below
  spec.t0 = t0;
  spec.track = api::TrackStage{cfg};
  api::Session session(std::move(spec));
  WIVI_REQUIRE(h.size() >=
                   static_cast<std::size_t>(image_cfg.music.isar.window),
               "channel stream shorter than one ISAR window");
  session.run(h, image_cfg.num_threads);

  TraceTrackResult out;
  out.histories = session.multi_tracker().histories();
  out.image = session.take_image();
  return out;
}

}  // namespace wivi::track
