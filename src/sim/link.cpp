#include "src/sim/link.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/hw/usrp.hpp"
#include "src/rf/noise.hpp"

namespace wivi::sim {

SimulatedMimoLink::SimulatedMimoLink(const Scene& scene, Rng rng,
                                     phy::OfdmModem::Config ofdm)
    : scene_(scene),
      modem_(ofdm),
      adc_(scene.calibration().adc_bits, scene.calibration().adc_full_scale),
      rng_(rng) {
  const Calibration& cal = scene_.calibration();
  noise_power_ = from_db(cal.rx_noise_floor_db);
  imperfection_seed_ = rng_();
  for (auto& chain : drift_phases_)
    for (auto& phase : chain) phase = rng_.uniform(0.0, kTwoPi);

  // PA linear ceiling: sized so the nominal +12 dB power boost stays linear
  // (paper §4.1.2 footnote) but pushing much further would clip. Derived
  // from the actual preamble peak amplitude, as one would calibrate a PA.
  const CVec pre = modem_.modulate(modem_.preamble());
  double peak = 0.0;
  for (cdouble v : pre) peak = std::max(peak, std::abs(v));
  tx_clip_amplitude_ = peak * db_to_amp(hw::kPowerBoostDb) * 1.05;

  // RX gain calibration: place the static (flash-dominated) signal at the
  // configured fraction of ADC full scale at base gains, the way an
  // operator sets the USRP RX gain to just avoid clipping. Measured on the
  // actual received waveform for both antennas transmitting the preamble.
  const CVec x = modem_.preamble();
  CVec y(static_cast<std::size_t>(modem_.num_subcarriers()), cdouble{0.0, 0.0});
  for (int k : modem_.used_subcarriers()) {
    const auto i = static_cast<std::size_t>(k);
    const double df = modem_.subcarrier_offset_hz(k);
    y[i] = (scene_.channel().static_response(0, df) +
            scene_.channel().static_response(1, df)) *
           x[i];
  }
  const CVec y_time = modem_.modulate(y);
  double rx_peak = 0.0;
  for (cdouble v : y_time) rx_peak = std::max(rx_peak, std::abs(v));
  WIVI_REQUIRE(rx_peak > 0.0, "scene has no static paths to calibrate against");
  const double target = cal.static_headroom_fraction * cal.adc_full_scale;
  rx_gain_db_ = amp_to_db(target / rx_peak);
}

void SimulatedMimoLink::set_tx_gain_db(double gain_db) { tx_gain_db_ = gain_db; }
void SimulatedMimoLink::set_rx_gain_db(double gain_db) { rx_gain_db_ = gain_db; }
void SimulatedMimoLink::advance(double seconds) {
  WIVI_REQUIRE(seconds >= 0.0, "cannot rewind the link clock");
  now_sec_ += seconds;
}

cdouble SimulatedMimoLink::gain_change_perturbation(int chain,
                                                    double gain_db) const {
  // Deterministic per (chain, quantized gain): the amplifier settles to a
  // slightly different complex response at each operating point.
  const auto q = static_cast<std::int64_t>(std::llround(gain_db * 2.0));
  Rng h(imperfection_seed_ ^ (static_cast<std::uint64_t>(chain + 1) * 0x9E37u) ^
        static_cast<std::uint64_t>(q * 0x85EBCA6B
        ));
  const double sigma = scene_.calibration().chain_gain_change_sigma;
  return cdouble{1.0, 0.0} + h.complex_gaussian(sigma * sigma);
}

cdouble SimulatedMimoLink::drift(int chain, double t) const {
  // Bounded quasi-random drift: three incommensurate slow sinusoids per
  // quadrature, RMS ~= chain_drift_sigma.
  static constexpr double kPeriods[3] = {7.3, 13.7, 29.1};
  const double s = scene_.calibration().chain_drift_sigma / std::sqrt(3.0);
  double re = 0.0;
  double im = 0.0;
  for (int k = 0; k < 3; ++k) {
    const double ph = kTwoPi * t / kPeriods[k] + drift_phases_[chain][k];
    re += s * std::sin(ph);
    im += s * std::cos(1.37 * ph + 0.7);
  }
  return cdouble{1.0 + re, im};
}

cdouble SimulatedMimoLink::chain_response(int chain, double t) const {
  WIVI_REQUIRE(chain == 0 || chain == 1, "chain index must be 0 or 1");
  return gain_change_perturbation(chain, tx_gain_db_) * drift(chain, t);
}

CVec SimulatedMimoLink::transceive(CSpan tx0_freq, CSpan tx1_freq) {
  const auto n = static_cast<std::size_t>(modem_.num_subcarriers());
  WIVI_REQUIRE(tx0_freq.size() == n && tx1_freq.size() == n,
               "transceive: symbol size mismatch");
  const double t = now_sec_;

  // TX chains: modulate, amplify, clip.
  const hw::TxChain tx_chain(tx_gain_db_, tx_clip_amplitude_);
  const hw::TxChain::Result t0 = tx_chain.process(modem_.modulate(tx0_freq));
  const hw::TxChain::Result t1 = tx_chain.process(modem_.modulate(tx1_freq));
  last_tx_clipped_ = t0.clipped_count + t1.clipped_count > 0;

  // What actually left each PA, back in the frequency domain (clipping is a
  // time-domain nonlinearity, so this is not simply gain * input).
  const CVec f0 = modem_.demodulate(t0.samples);
  const CVec f1 = modem_.demodulate(t1.samples);

  // Per-subcarrier RF channel x chain response, superimposed at the RX.
  const cdouble c0 = chain_response(0, t);
  const cdouble c1 = chain_response(1, t);
  CVec y(n, cdouble{0.0, 0.0});
  for (int k : modem_.used_subcarriers()) {
    const auto i = static_cast<std::size_t>(k);
    const double df = modem_.subcarrier_offset_hz(k);
    const cdouble h0 = scene_.channel().response(0, t, df);
    const cdouble h1 = scene_.channel().response(1, t, df);
    y[i] = h0 * c0 * f0[i] + h1 * c1 * f1[i];
  }

  // To time domain; thermal noise enters ahead of the RX gain stage.
  CVec y_time = modem_.modulate(y);
  rf::add_awgn(y_time, noise_power_, rng_);

  const hw::RxChain rx_chain(rx_gain_db_);
  const hw::Adc::Result digitized = adc_.convert(rx_chain.process(y_time));
  last_saturated_ = digitized.saturated();

  now_sec_ += modem_.symbol_duration_sec();
  return modem_.demodulate(digitized.samples);
}

}  // namespace wivi::sim
