#include "src/sim/protocols.hpp"

#include <algorithm>
#include <cmath>

#include "src/api/session.hpp"
#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::sim {

CountingResult run_counting_trial(const CountingTrial& trial) {
  WIVI_REQUIRE(trial.num_humans >= 0, "human count must be >= 0");
  WIVI_REQUIRE(trial.subjects.size() >= static_cast<std::size_t>(trial.num_humans),
               "not enough subjects for the requested human count");
  Rng rng(trial.seed);
  Scene scene(trial.room, default_calibration(), rng);

  const double motion_span = trial.duration_sec + 10.0;
  for (int i = 0; i < trial.num_humans; ++i) {
    const SubjectParams params = subject(trial.subjects[static_cast<std::size_t>(i)]);
    scene.add_human(params,
                    random_walk(scene.interior(), motion_span, /*dt=*/0.01,
                                params.walk_speed_mps, rng),
                    rng());
  }

  ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = trial.duration_sec;
  ExperimentRunner runner(scene, cfg, rng.fork());

  CountingResult result;
  result.trace = runner.run();
  result.effective_nulling_db = result.trace.effective_nulling_db;

  // One declarative pipeline: image + counting, executed batch (the
  // sequential sliding path) or column-parallel per image_threads — the
  // same num_threads semantics the tracker config historically had.
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.t0 = result.trace.t0;
  spec.count = api::CountStage{};
  api::Session session(std::move(spec));
  session.run(result.trace.h, trial.image_threads);
  result.spatial_variance = session.spatial_variance();
  result.image = session.take_image();
  return result;
}

namespace {

/// Doppler-band power of h over [lo, hi) seconds (absolute time): power of
/// the stream after removing a short local mean (+/-80 ms), which strips the
/// DC residual and slow chain drift but passes the ~16 Hz torso Doppler.
double doppler_power(const TraceResult& trace, double lo, double hi) {
  const auto n = trace.h.size();
  const auto half = static_cast<std::ptrdiff_t>(0.08 * trace.sample_rate_hz);
  auto index = [&](double t) {
    const double rel = (t - trace.t0) * trace.sample_rate_hz;
    return static_cast<std::ptrdiff_t>(
        std::clamp(rel, 0.0, static_cast<double>(n - 1)));
  };
  const std::ptrdiff_t a = index(lo);
  const std::ptrdiff_t b = std::max(index(hi), a + 2);
  double acc = 0.0;
  for (std::ptrdiff_t i = a; i < b; ++i) {
    const std::ptrdiff_t w0 = std::max<std::ptrdiff_t>(i - half, 0);
    const std::ptrdiff_t w1 =
        std::min<std::ptrdiff_t>(i + half, static_cast<std::ptrdiff_t>(n) - 1);
    cdouble mean{0.0, 0.0};
    for (std::ptrdiff_t k = w0; k <= w1; ++k)
      mean += trace.h[static_cast<std::size_t>(k)];
    mean /= static_cast<double>(w1 - w0 + 1);
    acc += norm2(trace.h[static_cast<std::size_t>(i)] - mean);
  }
  return acc / static_cast<double>(b - a);
}

}  // namespace

void score_decoded_bits(std::span<const core::Bit> sent,
                        const std::vector<core::GestureDecoder::DecodedBit>& got,
                        GestureResult& out, const TraceResult* trace) {
  // Noise reference: the quiet lead-in before the first gesture.
  double noise_ref = 0.0;
  if (trace != nullptr)
    noise_ref = std::max(doppler_power(*trace, trace->t0, trace->t0 + 1.5),
                         1e-300);

  // Decoded bits arrive in time order; align them greedily against the
  // transmitted sequence. Any decoded bit that cannot be matched in order
  // counts as a flip (this never fires in practice: §7.5, erasures only).
  std::size_t si = 0;
  for (const auto& bit : got) {
    bool matched = false;
    while (si < sent.size()) {
      if (sent[si] == bit.value) {
        ++out.correct;
        double snr_db = bit.snr_db;  // fallback: matched-filter SNR
        if (trace != nullptr) {
          const double sig =
              doppler_power(*trace, bit.time_sec - 1.2, bit.time_sec + 1.2);
          snr_db = to_db(std::max(sig - noise_ref, noise_ref * 1e-3) / noise_ref);
        }
        (bit.value == core::Bit::kZero ? out.snr_zero_db : out.snr_one_db)
            .push_back(snr_db);
        ++si;
        matched = true;
        break;
      }
      ++out.erased;  // ground-truth bit skipped by the decoder
      ++si;
    }
    if (!matched) ++out.flipped;
  }
  out.erased += static_cast<int>(sent.size() - si);
}

GestureResult run_gesture_trial(const GestureTrial& trial) {
  WIVI_REQUIRE(!trial.message.empty(), "gesture trial needs a message");
  WIVI_REQUIRE(trial.distance_m > 0.0, "distance must be positive");
  Rng rng(trial.seed);
  Scene scene(trial.room, default_calibration(), rng);

  const SubjectParams params = subject(trial.subject_index);
  core::GestureProfile profile;
  profile.step_length_m = params.step_length_m;
  profile.step_duration_sec = params.step_duration_sec;

  // Subject stands distance_m behind the wall on the device axis and
  // gestures toward the device, possibly at a slant (Fig. 6-2(c)).
  const rf::Vec2 start{0.0, scene.wall_y() + trial.distance_m};
  rf::Vec2 facing = scene.toward_device(start);
  if (trial.facing_offset_deg != 0.0) {
    const double a = trial.facing_offset_deg * kPi / 180.0;
    facing = {facing.x * std::cos(a) - facing.y * std::sin(a),
              facing.x * std::sin(a) + facing.y * std::cos(a)};
  }

  const double lead_in = 2.0;
  const auto steps = core::encode_message(trial.message, profile, lead_in);
  const double duration =
      lead_in + core::message_duration_sec(trial.message.size(), profile) + 3.0;
  scene.add_human(params,
                  gesture_trajectory(start, facing, steps, profile,
                                     duration + 10.0, /*dt=*/0.01),
                  rng());

  ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = duration;
  ExperimentRunner runner(scene, cfg, rng.fork());
  const TraceResult trace = runner.run();

  // One declarative pipeline: image + gesture decoding, batch-executed.
  // The session's flush decode is exactly the batch decode of the full
  // image (the pinned streaming==batch gesture contract).
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.t0 = trace.t0;
  api::GestureStage gesture_stage;
  gesture_stage.gesture.decoder.profile = profile;
  spec.gesture = gesture_stage;
  api::Session session(std::move(spec));
  session.run(trace.h);

  GestureResult result;
  result.decoded = session.take_gesture_result();
  result.effective_nulling_db = trace.effective_nulling_db;
  score_decoded_bits(trial.message, result.decoded.bits, result, &trace);
  return result;
}

}  // namespace wivi::sim
