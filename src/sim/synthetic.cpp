#include "src/sim/synthetic.hpp"

#include <cmath>

#include "src/common/random.hpp"
#include "src/core/isar.hpp"

namespace wivi::sim {

CVec synthetic_mover_trace(std::size_t n, std::uint64_t seed,
                           double speed_mps) {
  Rng rng(seed);
  CVec h(n);
  const core::IsarConfig isar;
  // Round-trip Doppler phase ramp of a target at constant radial speed.
  const double step =
      kTwoPi * 2.0 * speed_mps * isar.sample_period_sec / isar.wavelength_m;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = step * static_cast<double>(i);
    h[i] = cdouble{std::cos(p), std::sin(p)} + cdouble{0.4, 0.1} +
           rng.complex_gaussian(1e-4);
  }
  return h;
}

}  // namespace wivi::sim
