#include "src/sim/synthetic.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/core/isar.hpp"

namespace wivi::sim {

double mover_phase_at(const SyntheticMover& m, std::size_t i, std::size_t n,
                      const core::IsarConfig& isar) {
  if (m.end_speed_mps == m.start_speed_mps) {
    // Constant speed: keep the exact historical expression (operation
    // order included) so the single-mover trace stays bit-for-bit
    // stable across releases.
    const double step = kTwoPi * 2.0 * m.start_speed_mps *
                        isar.sample_period_sec / isar.wavelength_m;
    return m.phase_rad + step * static_cast<double>(i);
  }
  // Linear speed ramp start -> end across the trace; the phase is
  // the exact discrete integral of the per-sample Doppler step.
  const double k = kTwoPi * 2.0 * isar.sample_period_sec / isar.wavelength_m;
  const double di = static_cast<double>(i);
  const double slope = (m.end_speed_mps - m.start_speed_mps) /
                       static_cast<double>(n - 1);
  const double speed_sum =
      m.start_speed_mps * di + slope * di * (di - 1.0) / 2.0;
  return m.phase_rad + k * speed_sum;
}

CVec synthetic_movers_trace(std::size_t n, std::uint64_t seed,
                            std::span<const SyntheticMover> movers) {
  WIVI_REQUIRE(n >= 2, "trace too short");
  Rng rng(seed);
  CVec h(n);
  const core::IsarConfig isar;
  for (std::size_t i = 0; i < n; ++i) {
    cdouble acc{0.0, 0.0};
    for (const SyntheticMover& m : movers) {
      const double p = mover_phase_at(m, i, n, isar);
      acc += m.amplitude * cdouble{std::cos(p), std::sin(p)};
    }
    h[i] = acc + cdouble{0.4, 0.1} + rng.complex_gaussian(1e-4);
  }
  return h;
}

CVec synthetic_mover_trace(std::size_t n, std::uint64_t seed,
                           double speed_mps) {
  const SyntheticMover mover{speed_mps, speed_mps, 1.0, 0.0};
  return synthetic_movers_trace(n, seed, std::span(&mover, 1));
}

CVec synthetic_crossing_trace(double duration_sec, std::uint64_t seed) {
  const core::IsarConfig isar;
  const auto n = static_cast<std::size_t>(
      std::llround(duration_sec / isar.sample_period_sec));
  // Angles: sin(theta) = v / v_assumed (1 m/s). Mover 1 sweeps ~+15 -> +64
  // degrees while mover 2 sweeps ~+64 -> +15 — they cross near +35 degrees,
  // comfortably outside the DC exclusion band. Mover 3 recedes steadily at
  // about -30 degrees.
  const SyntheticMover movers[] = {
      {0.26, 0.90, 1.0, 0.0},
      {0.90, 0.26, 0.85, 2.1},
      {-0.50, -0.50, 0.7, 4.2},
  };
  return synthetic_movers_trace(n, seed, movers);
}

}  // namespace wivi::sim
