// Rooms and scenes: the paper's experimental environments.
//
// Geometry convention (top view): the Wi-Vi device sits at the origin with
// its boresight along +y; the imaged wall is the segment y = standoff
// (paper §7.3: "we position Wi-Vi one meter away from a wall that has
// neither a door nor a window"); the closed room lies behind it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/random.hpp"
#include "src/rf/channel.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/human.hpp"
#include "src/sim/multipath.hpp"

namespace wivi::sim {

struct RoomSpec {
  std::string name;
  double width_m = 7.0;   // x extent of the room
  double depth_m = 4.0;   // y extent behind the wall
  rf::Material wall_material = rf::Material::kHollowWall;
  int num_furniture = 5;  // static clutter scatterers inside
  /// Generate first-order ghost reflections of moving bodies off the
  /// room's side walls (§7.3's multipath-rich environment).
  bool multipath_ghosts = true;
};

/// The paper's rooms (§7.2): two Stata conference rooms with 6" hollow
/// walls (7x4 m and 11x7 m) and the Fairchild building's 8" concrete wall.
[[nodiscard]] RoomSpec stata_conference_a();
[[nodiscard]] RoomSpec stata_conference_b();
[[nodiscard]] RoomSpec fairchild_room();
/// A room like Stata A but with a different wall material (Fig. 7-6 sweep).
[[nodiscard]] RoomSpec room_with_material(rf::Material m);

/// A fully wired scene: antennas, wall, clutter, and any number of humans.
/// Owns the bodies; the channel model references them.
class Scene {
 public:
  Scene(RoomSpec spec, const Calibration& cal, Rng& rng);

  Scene(const Scene&) = delete;
  Scene& operator=(const Scene&) = delete;

  [[nodiscard]] const RoomSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const Calibration& calibration() const noexcept { return cal_; }

  [[nodiscard]] rf::ChannelModel& channel() noexcept { return *channel_; }
  [[nodiscard]] const rf::ChannelModel& channel() const noexcept {
    return *channel_;
  }

  /// Device (RX antenna) position — the reference point for angles.
  [[nodiscard]] rf::Vec2 device_position() const noexcept { return {0.0, 0.0}; }

  /// Wall-facing unit vector from inside the room toward the device.
  [[nodiscard]] rf::Vec2 toward_device(rf::Vec2 from) const noexcept;

  /// Walkable interior of the closed room (with a margin off the walls).
  [[nodiscard]] Rect interior() const noexcept;

  /// y-coordinate of the imaged wall.
  [[nodiscard]] double wall_y() const noexcept;

  /// Add a human; the scene keeps ownership, the channel model tracks it
  /// (plus side-wall ghost reflections when the room enables multipath).
  HumanBody& add_human(const SubjectParams& params, rf::Trajectory trajectory,
                       std::uint64_t seed);

  /// Add any other moving body (e.g. sim::Robot); non-owning - the body
  /// must outlive the scene. Ghosts are added like for humans.
  void add_body(const rf::MovingBody* body);

  [[nodiscard]] std::size_t num_humans() const noexcept { return humans_.size(); }

 private:
  void add_ghosts_for(const rf::MovingBody* body);

  RoomSpec spec_;
  Calibration cal_;
  std::unique_ptr<rf::ChannelModel> channel_;
  std::vector<std::unique_ptr<HumanBody>> humans_;
  std::vector<std::unique_ptr<rf::MovingBody>> ghosts_;
};

}  // namespace wivi::sim
