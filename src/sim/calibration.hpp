// Calibration constants for the simulated testbed.
//
// These stand in for everything about the authors' physical setup we cannot
// measure: exact antenna placement losses, body reflectivity, USRP noise
// figure, LO drift. Each knob is physical (not a fudge on the algorithms)
// and the defaults were tuned once so that the *shape* targets of DESIGN.md
// §3 hold: nulling depth centred near 40 dB, gesture decoding collapsing
// between 8 and 9 m, material ordering per Fig. 7-6.
#pragma once

#include "src/hw/usrp.hpp"

namespace wivi::sim {

struct Calibration {
  // --- Noise ---------------------------------------------------------
  /// Per-sample receiver noise power at the RX input, relative to unit TX
  /// power (dB). -104 dB corresponds to ~kTB over 5 MHz with a USRP-class
  /// noise figure against the 20 mW linear TX ceiling, plus residual
  /// interference in the 2.4 GHz ISM band.
  double rx_noise_floor_db = -104.0;
  /// Effective noise power per *channel-estimate* sample of the 312.5 Hz
  /// tracking stream (dB, same reference). Less than the full coherent
  /// averaging bound because phase noise decorrelates long averages. This
  /// floor is what sets the gesture decoding range: at -93 dB a torso echo
  /// from ~10 m of round-trip geometry drops below MUSIC's model-order
  /// gate, producing the paper's sharp 8->9 m cutoff (Fig. 7-4).
  double estimate_noise_floor_db = -100.0;

  // --- Radar cross sections [m^2] -------------------------------------
  // (Per-subject body RCS values live in sim::SubjectParams.)
  double wall_flash_rcs = 60.0;  // the wall is large and flat (paper §4)
  double furniture_rcs = 0.8;    // table/board/chair cluster inside the room
  double front_clutter_rcs = 1.5;  // table the radio sits on, radio case

  // --- Hardware ------------------------------------------------------
  int adc_bits = hw::kUsrpAdcBits;
  double adc_full_scale = 1.0;
  /// Fraction of ADC full scale the static (flash) signal is set to occupy
  /// at base gain; +12 dB boost then rails the converter unless nulled.
  double static_headroom_fraction = 0.4;
  /// TX chain response perturbation when the commanded gain changes
  /// (amplifier operating-point shift), as a complex relative sigma. This
  /// is what iterative nulling exists to clean up (paper §4.1.3).
  double chain_gain_change_sigma = 0.015;
  /// Slow TX LO/chain drift: bounded quasi-random amplitude of the relative
  /// response wander over tens of seconds. Sets the nulling floor
  /// (Fig. 7-7: median ~40 dB <=> ~1% residual drift).
  double chain_drift_sigma = 0.010;

  // --- Geometry ------------------------------------------------------
  /// Device standoff from the wall (paper §7.3: one meter away).
  double device_standoff_m = 1.0;
  /// TX antenna separation (half-wavelength-scale MIMO spacing scaled up
  /// for directional elements).
  double tx_separation_m = 1.0;
};

/// Library-wide default calibration.
[[nodiscard]] inline const Calibration& default_calibration() {
  static const Calibration kCal{};
  return kCal;
}

}  // namespace wivi::sim
