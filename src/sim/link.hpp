// Simulated 2TX/1RX MIMO link: the offline stand-in for three clock-locked
// USRP N210s (paper §7.1).
//
// Signal path per transceive():
//   freq symbols -> OFDM modulate -> TX chain (gain + PA clip)
//   -> per-subcarrier RF channel (static + moving paths) x chain response
//   -> superposition + AWGN -> RX gain -> ADC (quantize + saturate)
//   -> OFDM demodulate -> freq symbols
//
// Two hardware imperfections bound the achievable nulling (Fig. 7-7) and
// motivate iterative nulling (paper §4.1.3):
//   * a small deterministic chain-response shift whenever the commanded TX
//     gain changes (amplifier operating point), and
//   * a slow bounded LO/chain drift over tens of seconds.
#pragma once

#include <memory>

#include "src/common/random.hpp"
#include "src/hw/adc.hpp"
#include "src/hw/chains.hpp"
#include "src/phy/link.hpp"
#include "src/sim/room.hpp"

namespace wivi::sim {

class SimulatedMimoLink final : public phy::SubcarrierLink {
 public:
  /// `rng` seeds the noise and imperfection streams for this link instance.
  SimulatedMimoLink(const Scene& scene, Rng rng,
                    phy::OfdmModem::Config ofdm = {});

  // --- phy::SubcarrierLink -------------------------------------------
  [[nodiscard]] const phy::OfdmModem& modem() const override { return modem_; }
  [[nodiscard]] CVec transceive(CSpan tx0_freq, CSpan tx1_freq) override;
  [[nodiscard]] bool last_rx_saturated() const override { return last_saturated_; }
  void set_tx_gain_db(double gain_db) override;
  [[nodiscard]] double tx_gain_db() const override { return tx_gain_db_; }
  void set_rx_gain_db(double gain_db) override;
  [[nodiscard]] double rx_gain_db() const override { return rx_gain_db_; }
  [[nodiscard]] double now() const override { return now_sec_; }

  // --- Simulation-side accessors --------------------------------------
  /// Relative TX chain response (gain-change perturbation x slow drift) of
  /// chain 0/1 at time t; the experiment runner folds this into the
  /// tracking trace so the post-nulling residual is consistent.
  [[nodiscard]] cdouble chain_response(int chain, double t) const;

  /// Did the PA clip on the most recent transceive()?
  [[nodiscard]] bool last_tx_clipped() const { return last_tx_clipped_; }

  [[nodiscard]] const hw::Adc& adc() const { return adc_; }
  [[nodiscard]] double noise_power() const { return noise_power_; }

  /// Advance the link clock without transmitting (idle time).
  void advance(double seconds);

 private:
  [[nodiscard]] cdouble gain_change_perturbation(int chain, double gain_db) const;
  [[nodiscard]] cdouble drift(int chain, double t) const;

  const Scene& scene_;
  phy::OfdmModem modem_;
  hw::Adc adc_;
  double tx_gain_db_ = 0.0;
  double rx_gain_db_ = 0.0;
  double tx_clip_amplitude_ = 1e9;
  double noise_power_ = 0.0;
  double now_sec_ = 0.0;
  bool last_saturated_ = false;
  bool last_tx_clipped_ = false;
  mutable Rng rng_;
  std::uint64_t imperfection_seed_ = 0;
  double drift_phases_[2][3] = {};
};

}  // namespace wivi::sim
