// Non-human moving bodies.
//
// Paper §5 footnote 1: "our system is general, and can capture other moving
// bodies. For example, we have successfully experimented with tracking an
// iRobot Create robot." A robot is a single compact scatterer with a much
// smaller RCS than a torso and perfectly rigid motion (no limb fuzz), which
// makes its angle trace noticeably crisper than a human's.
#pragma once

#include "src/rf/channel.hpp"
#include "src/rf/geometry.hpp"

namespace wivi::sim {

class Robot final : public rf::MovingBody {
 public:
  /// iRobot Create-class platform: low, round, mostly plastic over a metal
  /// chassis - RCS around 0.05 m^2 at 2.4 GHz.
  explicit Robot(rf::Trajectory trajectory, double rcs_m2 = 0.05);

  [[nodiscard]] const rf::Trajectory& trajectory() const noexcept {
    return trajectory_;
  }

  [[nodiscard]] std::vector<rf::ScatterPoint> scatter_points(
      double t) const override;

 private:
  rf::Trajectory trajectory_;
  double rcs_m2_;
};

/// Straight back-and-forth patrol segment between `a` and `b` at constant
/// speed - the canonical robot test drive.
[[nodiscard]] rf::Trajectory patrol(rf::Vec2 a, rf::Vec2 b, double speed_mps,
                                    double duration_sec, double dt);

}  // namespace wivi::sim
