#include "src/sim/human.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"

namespace wivi::sim {

SubjectParams subject(int index) {
  WIVI_REQUIRE(index >= 0 && index < kNumSubjects, "subject index out of range");
  // Height/build scaling factors for the 8 volunteers (3 women, 5 men).
  static constexpr double kBuild[kNumSubjects] = {0.80, 0.90, 0.85, 1.00,
                                                  1.10, 1.05, 1.20, 0.95};
  static constexpr double kPace[kNumSubjects] = {1.05, 0.95, 1.00, 1.00,
                                                 0.90, 1.10, 0.95, 1.05};
  SubjectParams p;
  p.torso_rcs *= kBuild[index];
  p.limb_rcs *= kBuild[index];
  p.walk_speed_mps *= kPace[index];
  p.step_length_m *= 0.8 + 0.4 * kBuild[index] / 1.2;
  p.step_duration_sec /= kPace[index];
  return p;
}

HumanBody::HumanBody(SubjectParams params, rf::Trajectory trajectory,
                     std::uint64_t seed)
    : params_(params), trajectory_(std::move(trajectory)) {
  Rng rng(seed);
  limbs_.reserve(static_cast<std::size_t>(params_.num_limbs));
  for (int i = 0; i < params_.num_limbs; ++i) {
    Limb limb;
    const double ang = rng.uniform(0.0, kTwoPi);
    limb.base_offset = {0.20 * std::cos(ang), 0.20 * std::sin(ang)};
    const double swing_ang = rng.uniform(0.0, kTwoPi);
    limb.swing_dir = {std::cos(swing_ang), std::sin(swing_ang)};
    limb.phase = rng.uniform(0.0, kTwoPi);
    limb.rate_scale = rng.uniform(0.85, 1.15);
    limbs_.push_back(limb);
  }
}

std::vector<rf::ScatterPoint> HumanBody::scatter_points(double t) const {
  const rf::Vec2 torso = trajectory_.position(t);
  const double speed = trajectory_.velocity(t).norm();
  // Limbs swing hard while walking, barely while standing.
  const double activity = std::clamp(speed / params_.walk_speed_mps, 0.07, 1.0);

  std::vector<rf::ScatterPoint> pts;
  pts.reserve(limbs_.size() + 1);
  pts.push_back({torso, params_.torso_rcs});
  for (const Limb& limb : limbs_) {
    const double osc =
        std::sin(kTwoPi * params_.limb_swing_hz * limb.rate_scale * t +
                 limb.phase) *
        params_.limb_swing_amplitude_m * activity;
    const rf::Vec2 pos = torso + limb.base_offset + limb.swing_dir * osc;
    pts.push_back({pos, params_.limb_rcs});
  }
  return pts;
}

rf::Trajectory random_walk(const Rect& area, double duration_sec, double dt,
                           double speed_mps, Rng& rng) {
  WIVI_REQUIRE(duration_sec > 0.0 && dt > 0.0, "duration and dt must be positive");
  WIVI_REQUIRE(speed_mps > 0.0, "walk speed must be positive");
  const auto n = static_cast<std::size_t>(std::ceil(duration_sec / dt)) + 1;

  // Waypoints are biased toward the front (door/table) half of the room:
  // people "moving at will" in a conference room spend most of their time
  // around the furniture, not pacing the far corners.
  auto pick_waypoint = [&]() -> rf::Vec2 {
    const double front_ymax = area.ymin + 0.55 * area.height();
    if (rng.uniform() < 0.7)
      return {rng.uniform(area.xmin, area.xmax), rng.uniform(area.ymin, front_ymax)};
    return {rng.uniform(area.xmin, area.xmax), rng.uniform(area.ymin, area.ymax)};
  };

  std::vector<rf::Vec2> samples;
  samples.reserve(n);
  rf::Vec2 pos = pick_waypoint();
  rf::Vec2 waypoint = pick_waypoint();
  double pause_left = 0.0;
  double speed = speed_mps;

  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(pos);
    if (pause_left > 0.0) {
      pause_left -= dt;
      continue;
    }
    const rf::Vec2 to_wp = waypoint - pos;
    const double dist = to_wp.norm();
    if (dist < 0.15) {
      // Arrived: maybe pause, then pick a fresh waypoint and speed.
      if (rng.uniform() < 0.35) pause_left = rng.uniform(0.4, 1.5);
      waypoint = pick_waypoint();
      speed = std::max(0.3, speed_mps * rng.uniform(0.75, 1.25));
      continue;
    }
    pos = pos + to_wp.normalized() * std::min(speed * dt, dist);
  }
  return rf::Trajectory(std::move(samples), dt);
}

rf::Trajectory stand_still(rf::Vec2 pos, double duration_sec, double dt) {
  return rf::Trajectory::stationary(pos, duration_sec, dt);
}

rf::Trajectory gesture_trajectory(rf::Vec2 start, rf::Vec2 facing,
                                  std::span<const core::GestureStep> steps,
                                  const core::GestureProfile& profile,
                                  double duration_sec, double dt) {
  WIVI_REQUIRE(duration_sec > 0.0 && dt > 0.0, "duration and dt must be positive");
  const rf::Vec2 dir = facing.normalized();
  WIVI_REQUIRE(dir.norm() > 0.0, "facing direction must be nonzero");

  const auto n = static_cast<std::size_t>(std::ceil(duration_sec / dt)) + 1;
  std::vector<rf::Vec2> samples;
  samples.reserve(n);

  const double T = profile.step_duration_sec;
  const double L = profile.step_length_m;

  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    // Displacement along `dir` = sum of completed/ongoing step profiles.
    double disp = 0.0;
    for (const core::GestureStep& s : steps) {
      if (t <= s.start_sec) continue;
      const double tau = std::min(t - s.start_sec, T);
      // Raised-cosine speed: v(tau) = Vpk/2 (1 - cos(2 pi tau / T));
      // integrated displacement below, reaching L at tau = T.
      const double frac =
          (tau - T / kTwoPi * std::sin(kTwoPi * tau / T)) / T;  // 0..1
      const double length = s.forward ? L : L * profile.backward_step_scale;
      disp += (s.forward ? +length : -length) * frac;
    }
    samples.push_back(start + dir * disp);
  }
  return rf::Trajectory(std::move(samples), dt);
}

}  // namespace wivi::sim
