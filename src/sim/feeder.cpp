#include "src/sim/feeder.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/sim/human.hpp"

namespace wivi::sim {

TraceResult record_session_trace(const SessionScenario& sc) {
  WIVI_REQUIRE(sc.num_humans >= 0, "human count must be >= 0");
  WIVI_REQUIRE(sc.duration_sec > 0.0, "duration must be positive");
  Rng rng(sc.seed);
  Scene scene(sc.room, default_calibration(), rng);

  // Same protocol as a counting trial's scene setup: each human walks at
  // will for the whole capture (§7.4); subject identities rotate with the
  // seed so sessions differ in bodies as well as trajectories.
  const double motion_span = sc.duration_sec + 10.0;
  for (int i = 0; i < sc.num_humans; ++i) {
    const SubjectParams params =
        subject(static_cast<int>((sc.seed + static_cast<std::uint64_t>(i)) % 8));
    scene.add_human(params,
                    random_walk(scene.interior(), motion_span, /*dt=*/0.01,
                                params.walk_speed_mps, rng),
                    rng());
  }

  ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = sc.duration_sec;
  ExperimentRunner runner(scene, cfg, rng.fork());
  return runner.run();
}

ChunkedTrace::ChunkedTrace(TraceResult trace, std::size_t chunk_len)
    : trace_(std::move(trace)), chunk_len_(chunk_len) {
  WIVI_REQUIRE(chunk_len_ >= 1, "chunk length must be >= 1");
}

bool ChunkedTrace::next(CVec& chunk) {
  if (exhausted()) return false;
  const std::size_t end = std::min(pos_ + chunk_len_, trace_.h.size());
  chunk.assign(trace_.h.begin() + static_cast<std::ptrdiff_t>(pos_),
               trace_.h.begin() + static_cast<std::ptrdiff_t>(end));
  pos_ = end;
  ++emitted_;
  return true;
}

std::size_t ChunkedTrace::chunks_remaining() const noexcept {
  const std::size_t left = trace_.h.size() - std::min(pos_, trace_.h.size());
  return (left + chunk_len_ - 1) / chunk_len_;
}

double ChunkedTrace::chunk_period_sec() const noexcept {
  return trace_.sample_rate_hz > 0.0
             ? static_cast<double>(chunk_len_) / trace_.sample_rate_hz
             : 0.0;
}

}  // namespace wivi::sim
