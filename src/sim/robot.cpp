#include "src/sim/robot.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace wivi::sim {

Robot::Robot(rf::Trajectory trajectory, double rcs_m2)
    : trajectory_(std::move(trajectory)), rcs_m2_(rcs_m2) {
  WIVI_REQUIRE(rcs_m2 > 0.0, "robot RCS must be positive");
}

std::vector<rf::ScatterPoint> Robot::scatter_points(double t) const {
  return {{trajectory_.position(t), rcs_m2_}};
}

rf::Trajectory patrol(rf::Vec2 a, rf::Vec2 b, double speed_mps,
                      double duration_sec, double dt) {
  WIVI_REQUIRE(speed_mps > 0.0, "patrol speed must be positive");
  WIVI_REQUIRE(duration_sec > 0.0 && dt > 0.0, "duration and dt must be positive");
  const double leg = rf::distance(a, b);
  WIVI_REQUIRE(leg > 0.0, "patrol endpoints must differ");
  const double leg_time = leg / speed_mps;
  const auto n = static_cast<std::size_t>(std::ceil(duration_sec / dt)) + 1;
  std::vector<rf::Vec2> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    const double phase = std::fmod(t, 2.0 * leg_time);
    const double frac = phase < leg_time ? phase / leg_time
                                         : 2.0 - phase / leg_time;
    samples.push_back(a + (b - a) * frac);
  }
  return rf::Trajectory(std::move(samples), dt);
}

}  // namespace wivi::sim
