// Human bodies as moving scatterer clusters, and the motion models that
// drive them.
//
// The paper treats a moving human as a dominant reflector whose different
// body parts move "in a loosely coupled way" (§5.2) — that loose coupling
// is what makes multi-person images fuzzy (§7.3). We model a body as a
// torso point plus limb points that oscillate around it while the body is
// in motion.
#pragma once

#include <vector>

#include "src/common/random.hpp"
#include "src/core/gesture.hpp"
#include "src/rf/channel.hpp"
#include "src/rf/geometry.hpp"

namespace wivi::sim {

/// Per-subject physical parameters; the paper's experiments use 8 subjects
/// "of different heights and builds" (§7.2).
struct SubjectParams {
  double torso_rcs = 0.45;
  double limb_rcs = 0.015;
  int num_limbs = 4;
  double limb_swing_amplitude_m = 0.12;  // at full walking speed
  double limb_swing_hz = 1.8;            // arm/leg cadence
  double walk_speed_mps = 1.0;           // comfortable walking speed
  double step_length_m = 0.48;           // gesture step (§7.5)
  double step_duration_sec = 0.95;       // peak step speed ~1 m/s
};

/// Deterministic pool of the paper's 8 subjects (3 women, 5 men, varying
/// height/build); subject(i) always returns the same parameters.
[[nodiscard]] SubjectParams subject(int index);
inline constexpr int kNumSubjects = 8;

class HumanBody final : public rf::MovingBody {
 public:
  /// `seed` fixes the limb phases/directions for reproducibility.
  HumanBody(SubjectParams params, rf::Trajectory trajectory, std::uint64_t seed);

  [[nodiscard]] const SubjectParams& params() const noexcept { return params_; }
  [[nodiscard]] const rf::Trajectory& trajectory() const noexcept {
    return trajectory_;
  }

  /// rf::MovingBody: torso + swinging limbs at time t.
  [[nodiscard]] std::vector<rf::ScatterPoint> scatter_points(
      double t) const override;

 private:
  struct Limb {
    rf::Vec2 base_offset;   // resting position relative to torso
    rf::Vec2 swing_dir;     // unit oscillation direction
    double phase;           // radians
    double rate_scale;      // per-limb cadence variation
  };

  SubjectParams params_;
  rf::Trajectory trajectory_;
  std::vector<Limb> limbs_;
};

/// Axis-aligned rectangle (room interiors, walk areas).
struct Rect {
  double xmin = 0.0, xmax = 1.0, ymin = 0.0, ymax = 1.0;
  [[nodiscard]] bool contains(rf::Vec2 p) const noexcept {
    return p.x >= xmin && p.x <= xmax && p.y >= ymin && p.y <= ymax;
  }
  [[nodiscard]] double width() const noexcept { return xmax - xmin; }
  [[nodiscard]] double height() const noexcept { return ymax - ymin; }
};

/// Random-waypoint walk inside `area`: pick a waypoint, walk toward it at
/// roughly `speed`, occasionally pause — the "enter the room, close the
/// door, and move at will" workload of §7.2/§7.3.
[[nodiscard]] rf::Trajectory random_walk(const Rect& area, double duration_sec,
                                         double dt, double speed_mps, Rng& rng);

/// Stationary subject with natural sway (breathing/posture), for the
/// zero-moving-humans baseline.
[[nodiscard]] rf::Trajectory stand_still(rf::Vec2 pos, double duration_sec,
                                         double dt);

/// Gesture trajectory: the subject stands at `start` and performs the timed
/// step sequence along `facing` (unit vector, normally toward the device —
/// or slanted, Fig. 6-2(c)). Each step follows a raised-cosine speed profile
/// covering `profile.step_length_m` in `profile.step_duration_sec`.
[[nodiscard]] rf::Trajectory gesture_trajectory(
    rf::Vec2 start, rf::Vec2 facing, std::span<const core::GestureStep> steps,
    const core::GestureProfile& profile, double duration_sec, double dt);

}  // namespace wivi::sim
