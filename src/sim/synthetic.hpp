// Synthetic channel-estimate streams for benches and tests: ideal movers
// (constant- or ramped-radial-speed phase components) over a static
// residual plus noise, with no scene simulation — cheap enough to generate
// by the megasample, deterministic in the seed, and shaped like what the
// tracker actually consumes. The full physical simulation lives in
// sim::Scene / ExperimentRunner; this is the stand-in for when the
// *processing* is the thing under test.
#pragma once

#include <span>

#include "src/common/types.hpp"
#include "src/core/isar.hpp"

namespace wivi::sim {

/// One ideal mover of a synthetic trace. The mover contributes
/// amplitude * e^{j phi[n]} where phi ramps at the round-trip Doppler rate
/// of its radial speed; a speed that changes linearly from start to end
/// sweeps the mover's ISAR angle (sin theta = v / v_assumed) across the
/// trace — two movers with opposite ramps cross.
struct SyntheticMover {
  /// Radial speed at the first sample (m/s, positive = approaching).
  double start_speed_mps = 0.6;
  /// Radial speed at the last sample; equal to start_speed_mps for the
  /// classic constant-speed (fixed-angle) mover.
  double end_speed_mps = 0.6;
  /// Reflection amplitude relative to the unit reference mover.
  double amplitude = 1.0;
  /// Initial phase offset in radians (decorrelate mover start phases).
  double phase_rad = 0.0;
};

/// The speed-ramp primitive itself: phase of mover `m` at sample `i` of an
/// n-sample trace — the exact discrete integral of the linearly ramping
/// per-sample Doppler step (and, for a constant-speed mover, the exact
/// historical constant-step expression, operation order included, so
/// existing traces stay bit-stable). The scenario factory's mobility
/// models (sim::ScenarioSpec) compile down to runs of this primitive.
[[nodiscard]] double mover_phase_at(const SyntheticMover& m, std::size_t i,
                                    std::size_t n, const core::IsarConfig& isar);

/// n samples of h[n] = sum_k movers[k] + static + CN(0, 1e-4): the
/// multi-target synthetic trace the track:: subsystem is exercised on.
/// With a single constant-speed unit-amplitude mover this reproduces
/// synthetic_mover_trace() bit for bit (same arithmetic, same noise draw
/// sequence).
[[nodiscard]] CVec synthetic_movers_trace(std::size_t n, std::uint64_t seed,
                                          std::span<const SyntheticMover> movers);

/// n samples of h[n] = e^{j phi(v, n)} + static + CN(0, 1e-4). The default
/// seed/speed are the historical bench_perf construction, kept stable so
/// committed benchmark numbers stay comparable.
[[nodiscard]] CVec synthetic_mover_trace(std::size_t n,
                                         std::uint64_t seed = 404,
                                         double speed_mps = 0.6);

/// The canonical three-mover tracking scenario used by the multi-person
/// example, tests and bench: two movers whose speed ramps make their
/// angles cross mid-trace, plus one steady mover on the receding side.
/// `duration_sec` at the 312.5 Hz channel-estimate rate.
[[nodiscard]] CVec synthetic_crossing_trace(double duration_sec,
                                            std::uint64_t seed = 1234);

}  // namespace wivi::sim
