// Synthetic channel-estimate streams for benches and tests: one ideal
// mover (a constant-radial-speed phase ramp) over a static residual plus
// noise, with no scene simulation — cheap enough to generate by the
// megasample, deterministic in the seed, and shaped like what the tracker
// actually consumes. The full physical simulation lives in sim::Scene /
// ExperimentRunner; this is the stand-in for when the *processing* is the
// thing under test.
#pragma once

#include "src/common/types.hpp"

namespace wivi::sim {

/// n samples of h[n] = e^{j phi(v, n)} + static + CN(0, 1e-4). The default
/// seed/speed are the historical bench_perf construction, kept stable so
/// committed benchmark numbers stay comparable.
[[nodiscard]] CVec synthetic_mover_trace(std::size_t n,
                                         std::uint64_t seed = 404,
                                         double speed_mps = 0.6);

}  // namespace wivi::sim
