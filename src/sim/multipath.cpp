#include "src/sim/multipath.hpp"

#include "src/common/error.hpp"

namespace wivi::sim {

GhostReflection::GhostReflection(const rf::MovingBody* source, double mirror_x,
                                 double rcs_scale)
    : source_(source), mirror_x_(mirror_x), rcs_scale_(rcs_scale) {
  WIVI_REQUIRE(source != nullptr, "ghost needs a source body");
  WIVI_REQUIRE(rcs_scale > 0.0 && rcs_scale < 1.0,
               "reflection RCS scale must be in (0, 1)");
}

std::vector<rf::ScatterPoint> GhostReflection::scatter_points(double t) const {
  std::vector<rf::ScatterPoint> pts = source_->scatter_points(t);
  for (auto& p : pts) {
    p.pos.x = 2.0 * mirror_x_ - p.pos.x;
    p.rcs_m2 *= rcs_scale_;
  }
  return pts;
}

}  // namespace wivi::sim
