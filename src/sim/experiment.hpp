// End-to-end experiment runner: nulling over the full PHY, then capture of
// the post-nulling channel-estimate stream the tracking stages consume.
//
// The paper's pipeline (§7.1): nulling runs in real time in the UHD driver;
// the received samples over 0.32 s windows are averaged into w = 100 point
// arrays, i.e. a 312.5 Hz channel-estimate stream, which smoothed MUSIC
// post-processes. We run the nulling stage sample-exact through the
// simulated link, then synthesise the estimate stream directly from the
// same channel model (see DESIGN.md §1, last substitution row): each
// estimate is
//   h[n] = mean_k( h1(f_k, t_n) c0(t_n) + p[k] h2(f_k, t_n) c1(t_n) ) + noise
// over a pilot subset of subcarriers k, with the chain responses c_i taken
// from the same link, so the residual statics and drift are consistent with
// what nulling achieved.
#pragma once

#include "src/core/nulling.hpp"
#include "src/sim/link.hpp"

namespace wivi::sim {

struct TraceResult {
  /// Post-nulling channel-estimate stream at `sample_rate_hz`.
  CVec h;
  /// Absolute time of h.front().
  double t0 = 0.0;
  double sample_rate_hz = 0.0;
  /// The nulling stage's outcome (precoder, depth, convergence).
  core::Nuller::Result nulling;
  /// The Fig. 7-7 metric: reduction of static-path power sustained over the
  /// whole capture (chain drift slowly re-opens the null, so this is lower
  /// than the instantaneous post-convergence depth in `nulling.nulling_db`).
  double effective_nulling_db = 0.0;
};

class ExperimentRunner {
 public:
  struct Config {
    /// Trace length (paper §7.4: 25 s per counting experiment, "excluding
    /// the time required for iterative nulling").
    double trace_duration_sec = 25.0;
    double sample_rate_hz = kChannelSampleRateHz;
    /// Pilot subcarriers used when synthesising estimates.
    int num_pilot_bins = 4;
    /// Extra estimate-noise penalty in dB. The no-nulling baseline cannot
    /// boost TX or RX gain (the flash would saturate the ADC, §4.1.2), so
    /// its RX-referred noise floor is higher by the foregone boost; set
    /// this to tx_boost + rx_boost when capturing with a zero precoder.
    double estimate_noise_extra_db = 0.0;
    core::Nuller::Config nuller;
  };

  ExperimentRunner(Scene& scene, Config cfg, Rng rng);

  /// Null, then record. Deterministic for a given scene + seed.
  [[nodiscard]] TraceResult run();

  /// Capture a trace with a caller-supplied precoder instead of running the
  /// Nuller (ablations: e.g. p = 0 to show the un-nulled flash).
  [[nodiscard]] TraceResult run_with_precoder(const CVec& p,
                                              core::Nuller::Result nulling = {});

 private:
  /// Record the estimate stream; `static_residual_power_out` receives the
  /// mean power of the static-only (nulled) component over the capture.
  [[nodiscard]] CVec capture(SimulatedMimoLink& link, const CVec& p,
                             double* static_residual_power_out) const;

  Scene& scene_;
  Config cfg_;
  Rng rng_;
};

}  // namespace wivi::sim
