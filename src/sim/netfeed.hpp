/// @file
/// Loopback traffic generation: simulated captures pushed over the real
/// network ingress.
///
/// NetFeeder is the driver the loopback tests, bench_net and
/// tools/wivi_capture use to exercise the full wire path: it walks a
/// sim::ChunkedTrace (or a fault::FaultyFeeder's perturbed chunk stream)
/// and sends every chunk through a net::Sender as one sensor's framed
/// stream, finishing with the end-of-stream mark. Combined with a
/// net::Receiver bound to an rt::Engine, this closes the loop
/// scene → chunks → frames → sockets → reassembly → engine sessions
/// with the exact same chunking an in-process feed would use — which is
/// what the live-vs-network parity tests pin.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/fault/fault.hpp"
#include "src/net/sender.hpp"
#include "src/sim/feeder.hpp"

namespace wivi::sim {

/// Streams chunked traces over a net::Sender as one sensor.
class NetFeeder {
 public:
  /// Feed `sensor_id`'s stream through `sender` (not owned).
  NetFeeder(net::Sender& sender, std::uint32_t sensor_id)
      : sender_(sender), sensor_id_(sensor_id) {}

  /// Send every remaining chunk of `trace`, then (when `end`) the
  /// end-of-stream mark. Returns chunks sent.
  std::size_t feed(ChunkedTrace& trace, bool end = true);

  /// Send a FaultyFeeder's perturbed chunk stream (silence gaps produce
  /// nothing on the wire — a gap simply sends no frames), then the
  /// end-of-stream mark. Returns chunks sent.
  std::size_t feed(fault::FaultyFeeder& feeder, bool end = true);

  /// Chunks sent over this feeder's lifetime.
  [[nodiscard]] std::size_t chunks_sent() const noexcept { return sent_; }

 private:
  net::Sender& sender_;
  std::uint32_t sensor_id_;
  std::size_t sent_ = 0;
};

}  // namespace wivi::sim
