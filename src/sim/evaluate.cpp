#include "src/sim/evaluate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "src/api/session.hpp"
#include "src/common/error.hpp"
#include "src/sim/feeder.hpp"
#include "src/track/assignment.hpp"

namespace wivi::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// SplitMix64 finaliser (the scenario/fault seed-derivation hash).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t case_seed(std::uint64_t base, std::uint64_t family,
                        std::uint64_t index) noexcept {
  return mix(base ^ mix(family * 1000 + index));
}

/// Stream the trace into the session, optionally through a FaultyFeeder.
/// Returns the number of typed kInvalidChunk rejections (corrupted chunks
/// the InputGuard bounced — the allowed failure mode; anything else
/// propagates).
int feed_session(api::Session& session, const GeneratedScenario& sc,
                 const EvaluatorConfig& cfg) {
  int rejected = 0;
  if (cfg.faults) {
    TraceResult tr;
    tr.h = sc.h;
    tr.sample_rate_hz = sc.sample_rate_hz;
    fault::FaultyFeeder feeder(ChunkedTrace(std::move(tr), cfg.chunk_len),
                               *cfg.faults);
    CVec chunk;
    for (;;) {
      const fault::FaultAction act = feeder.next(chunk);
      if (act == fault::FaultAction::kEnd) break;
      if (act == fault::FaultAction::kGap) continue;
      try {
        session.push(chunk);
      } catch (const TypedError& e) {
        if (e.code() != ErrorCode::kInvalidChunk) throw;
        ++rejected;  // typed rejection: the session stays open
      }
    }
  } else {
    const CSpan h(sc.h);
    for (std::size_t i = 0; i < h.size(); i += cfg.chunk_len)
      session.push(h.subspan(i, std::min(cfg.chunk_len, h.size() - i)));
  }
  session.finish();
  return rejected;
}

}  // namespace

Evaluator::Evaluator(EvaluatorConfig cfg) : cfg_(std::move(cfg)) {
  WIVI_REQUIRE(cfg_.ospa_cutoff_deg > 0.0, "OSPA cutoff must be positive");
  WIVI_REQUIRE(cfg_.match_gate_deg > 0.0, "match gate must be positive");
  WIVI_REQUIRE(cfg_.chunk_len > 0, "chunk length must be positive");
  // Compiling throwaway stages validates the pipeline configs up front.
  core::MotionTracker{cfg_.image};
  track::MultiTargetTracker{cfg_.tracker};
}

ScenarioScores Evaluator::score(const ScenarioSpec& spec,
                                std::uint64_t seed) const {
  return score(generate_scenario(spec, seed));
}

ScenarioScores Evaluator::score(const GeneratedScenario& sc) const {
  ScenarioScores out;
  out.name = sc.spec.name;
  out.seed = sc.seed;
  out.num_truth_movers = static_cast<int>(sc.spec.movers.size());
  out.max_concurrent = sc.truth.max_concurrent();
  out.faulted = cfg_.faults.has_value();

  // 1. The pipeline under test: a compiled Session streaming the trace
  //    (image + Eq. 5.5 counting stage).
  api::PipelineSpec ps;
  ps.image.tracker = cfg_.image;
  ps.image.emit_columns = false;
  ps.count = api::CountStage{};
  api::Session session(ps);
  out.chunks_rejected = feed_session(session, sc, cfg_);
  out.spatial_variance = session.spatial_variance();
  const core::AngleTimeImage& img = session.image();
  out.columns = static_cast<int>(img.num_times());

  // 2. The tracker under test, stepped column by column so every column's
  //    live track set is observable (identical to the Session TrackStage
  //    by the pinned streaming==batch contract).
  track::MultiTargetTracker mt(cfg_.tracker);
  const double dc_deg = cfg_.tracker.detector.peaks.dc_exclusion_deg;
  const double cutoff = cfg_.ospa_cutoff_deg;

  double ospa_sum = 0.0;
  int ospa_cols = 0;
  std::size_t truth_instances = 0;
  std::size_t covered = 0;
  int count_hits = 0;
  double count_abs = 0.0;
  // tally[track id][mover k] = columns the gated match paired them.
  std::map<int, std::map<std::size_t, int>> tally;
  std::map<std::size_t, int> last_id;  // mover -> last covering track id

  std::vector<double> track_angles;
  std::vector<int> track_ids;
  std::vector<std::pair<std::size_t, double>> truth_now;  // (mover, angle)

  for (std::size_t c = 0; c < img.num_times(); ++c) {
    const std::vector<track::TrackSnapshot>& snaps = mt.step(img, c);
    track_angles.clear();
    track_ids.clear();
    for (const track::TrackSnapshot& s : snaps) {
      if (s.state != track::TrackState::kConfirmed &&
          s.state != track::TrackState::kCoasting)
        continue;
      track_angles.push_back(s.angle_deg);
      track_ids.push_back(s.id);
    }

    // Detectable truth this column: present movers outside the DC band.
    const double t = img.times_sec[c];
    truth_now.clear();
    for (std::size_t k = 0; k < sc.truth.movers.size(); ++k) {
      if (!sc.truth.present(k, t)) continue;
      const double ang = sc.truth.angle_deg_at(k, t);
      if (std::abs(ang) > dc_deg) truth_now.emplace_back(k, ang);
    }

    const std::size_t m = truth_now.size();
    const std::size_t n = track_angles.size();

    // Counting: live confirmed/coasting targets vs detectable truth.
    count_hits += static_cast<int>(m) == static_cast<int>(n);
    count_abs += std::abs(static_cast<double>(m) - static_cast<double>(n));

    // OSPA (p = 1): optimal cutoff-bounded matching, cardinality errors
    // cost the cutoff each.
    if (m > 0 || n > 0) {
      double matched_cost = 0.0;
      if (m > 0 && n > 0) {
        track::CostMatrix cost(m, n);
        for (std::size_t r = 0; r < m; ++r)
          for (std::size_t cc = 0; cc < n; ++cc)
            cost.at(r, cc) =
                std::min(cutoff, std::abs(truth_now[r].second - track_angles[cc]));
        const std::vector<std::size_t> asg = track::hungarian_assign(cost);
        for (std::size_t r = 0; r < m; ++r)
          if (asg[r] != track::kUnassigned) matched_cost += cost.at(r, asg[r]);
      }
      const std::size_t mx = std::max(m, n);
      ospa_sum += (matched_cost +
                   cutoff * static_cast<double>(mx - std::min(m, n))) /
                  static_cast<double>(mx);
      ++ospa_cols;
    }

    // Gated truth-to-track matching: continuity, purity, id switches.
    truth_instances += m;
    if (m > 0 && n > 0) {
      track::CostMatrix gated(m, n);
      for (std::size_t r = 0; r < m; ++r)
        for (std::size_t cc = 0; cc < n; ++cc) {
          const double d = std::abs(truth_now[r].second - track_angles[cc]);
          gated.at(r, cc) = d <= cfg_.match_gate_deg ? d : kInf;
        }
      const std::vector<std::size_t> asg = track::assign(gated);
      for (std::size_t r = 0; r < m; ++r) {
        if (asg[r] == track::kUnassigned) continue;
        ++covered;
        const std::size_t k = truth_now[r].first;
        const int tid = track_ids[asg[r]];
        ++tally[tid][k];
        const auto it = last_id.find(k);
        if (it == last_id.end())
          last_id.emplace(k, tid);
        else if (it->second != tid) {
          ++out.id_switches;
          it->second = tid;
        }
      }
    }
  }

  out.ospa_deg = ospa_cols > 0 ? ospa_sum / ospa_cols : 0.0;
  out.continuity = truth_instances > 0
                       ? static_cast<double>(covered) /
                             static_cast<double>(truth_instances)
                       : 1.0;
  out.count_accuracy =
      out.columns > 0 ? static_cast<double>(count_hits) / out.columns : 1.0;
  out.count_mae = out.columns > 0 ? count_abs / out.columns : 0.0;

  // Purity: weighted over every truth-matched track column.
  int dominant = 0;
  int matched_total = 0;
  for (const auto& [tid, per_mover] : tally) {
    int total = 0;
    int best = 0;
    for (const auto& [k, cnt] : per_mover) {
      total += cnt;
      best = std::max(best, cnt);
    }
    dominant += best;
    matched_total += total;
  }
  out.purity = matched_total > 0
                   ? static_cast<double>(dominant) / matched_total
                   : 1.0;

  // Ghosts: tracks that were ever confirmed yet never matched any truth.
  for (const track::TrackHistory& h : mt.histories())
    if (h.confirmed_ever && !tally.contains(h.id)) ++out.ghost_tracks;
  return out;
}

std::vector<ScenarioScores> evaluate_family(const ScenarioFamily& family,
                                            const EvaluatorConfig& cfg) {
  std::vector<ScenarioScores> scores;
  scores.reserve(family.cases.size());
  for (const ScenarioCase& sc : family.cases) {
    EvaluatorConfig per_case = cfg;
    if (family.faults) {
      per_case.faults = family.faults;
      // Independent fault plan per case, deterministic in both seeds.
      per_case.faults->seed = mix(family.faults->seed ^ sc.seed);
    }
    scores.push_back(Evaluator(per_case).score(sc.spec, sc.seed));
  }
  return scores;
}

FamilySummary summarize(const std::string& family,
                        const std::vector<ScenarioScores>& scores) {
  FamilySummary s;
  s.name = family;
  s.scenarios = static_cast<int>(scores.size());
  if (scores.empty()) return s;
  for (const ScenarioScores& sc : scores) {
    s.mean_ospa_deg += sc.ospa_deg;
    s.mean_continuity += sc.continuity;
    s.mean_purity += sc.purity;
    s.total_id_switches += sc.id_switches;
    s.total_ghost_tracks += sc.ghost_tracks;
    s.mean_count_accuracy += sc.count_accuracy;
    s.mean_count_mae += sc.count_mae;
    s.total_chunks_rejected += sc.chunks_rejected;
  }
  const double n = static_cast<double>(scores.size());
  s.mean_ospa_deg /= n;
  s.mean_continuity /= n;
  s.mean_purity /= n;
  s.mean_count_accuracy /= n;
  s.mean_count_mae /= n;
  return s;
}

// ---------------------------------------------------------------------------
// The committed sweep catalog.
// ---------------------------------------------------------------------------

namespace {

ScenarioSpec base_spec(const char* family, std::size_t i, double duration) {
  ScenarioSpec spec;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s-%02zu", family, i);
  spec.name = buf;
  spec.duration_sec = duration;
  return spec;
}

ScenarioMover ramp_mover(double start, double end, double amp, double phase) {
  ScenarioMover m;
  m.mobility = MobilityModel::kSpeedRamp;
  m.start_speed_mps = start;
  m.end_speed_mps = end;
  m.amplitude = amp;
  m.phase_rad = phase;
  return m;
}

ScenarioFamily walker_family(std::uint64_t base) {
  ScenarioFamily fam;
  fam.name = "walker";
  for (std::size_t i = 0; i < 18; ++i) {
    ScenarioSpec spec = base_spec("walker", i, 8.0);
    ScenarioMover m;
    m.mobility = MobilityModel::kRandomWalk;
    m.walk_speed_mps = 0.7 + 0.03 * static_cast<double>(i);
    spec.movers.push_back(m);
    if (i % 3 == 2) spec.protocol.num_pilot_bins = 8;  // protocol variant
    fam.cases.push_back({std::move(spec), case_seed(base, 1, i)});
  }
  return fam;
}

ScenarioFamily crossing_family(std::uint64_t base) {
  ScenarioFamily fam;
  fam.name = "crossing";
  for (std::size_t i = 0; i < 18; ++i) {
    ScenarioSpec spec = base_spec("crossing", i, 8.0);
    const double lo = 0.18 + 0.02 * static_cast<double>(i % 5);
    if (i % 6 == 5) {
      // Near-parallel crossing: both movers sweep upward through almost
      // the same angles — the id-churn stress case.
      spec.movers.push_back(ramp_mover(lo, 0.88, 1.0, 0.0));
      spec.movers.push_back(ramp_mover(lo + 0.10, 0.78, 0.85, 2.1));
    } else {
      spec.movers.push_back(ramp_mover(lo, 0.88, 1.0, 0.0));
      spec.movers.push_back(ramp_mover(0.90, lo + 0.02, 0.85, 2.1));
    }
    if (i % 3 == 0)
      spec.movers.push_back(ramp_mover(-0.50, -0.50, 0.7, 4.2));
    fam.cases.push_back({std::move(spec), case_seed(base, 2, i)});
  }
  return fam;
}

ScenarioFamily count_family(std::uint64_t base) {
  ScenarioFamily fam;
  fam.name = "count";
  constexpr double kSpeeds[] = {0.75, -0.60, 0.45, -0.82};
  constexpr double kPhases[] = {0.0, 1.3, 2.6, 3.9};
  for (std::size_t i = 0; i < 20; ++i) {
    ScenarioSpec spec = base_spec("count", i, 8.0);
    const std::size_t movers = 1 + i % 4;
    for (std::size_t k = 0; k < movers; ++k) {
      ScenarioMover m = ramp_mover(kSpeeds[k], kSpeeds[k],
                                   1.0 - 0.1 * static_cast<double>(k),
                                   kPhases[k]);
      if (i >= 10) {
        // Staggered presence: movers enter and leave mid-trace, so the
        // truth count changes over the run.
        m.enter_sec = 0.8 * static_cast<double>(k);
        if (k + 1 < movers) m.exit_sec = 8.0 - 0.6 * static_cast<double>(k);
      }
      spec.movers.push_back(m);
    }
    if (i % 5 == 4) {
      // A stalled mover: walks in, pauses mid-trace (fades into the DC
      // band), then walks on — the count-hysteresis stress case.
      ScenarioMover m;
      m.mobility = MobilityModel::kWaypoint;
      m.start = {-2.0, 2.0};
      m.waypoints.push_back({{1.5, 3.2}, 1.0, 2.5});
      m.waypoints.push_back({{-1.0, 4.2}, 1.0, 0.0});
      m.amplitude = 0.9;
      m.phase_rad = 5.1;
      spec.movers.push_back(m);
    }
    fam.cases.push_back({std::move(spec), case_seed(base, 3, i)});
  }
  return fam;
}

ScenarioFamily clutter_family(std::uint64_t base) {
  ScenarioFamily fam;
  fam.name = "clutter";
  for (std::size_t i = 0; i < 16; ++i) {
    ScenarioSpec spec = base_spec("clutter", i, 8.0);
    ClutterSpec fan;
    fan.kind = ClutterKind::kFan;
    fan.pos = {1.8, 2.2};
    fan.amplitude = 0.18;
    fan.rate_hz = 2.0 + 0.5 * static_cast<double>(i % 3);
    spec.clutter.push_back(fan);
    ClutterSpec pet;
    pet.kind = ClutterKind::kPet;
    pet.pos = {-1.5, 3.0};
    pet.amplitude = 0.12;
    pet.extent_m = 0.4;
    spec.clutter.push_back(pet);
    if (i % 2 == 0) {
      // Half the family pairs the clutter with a real walker; the other
      // half is clutter-only (any confirmed track is a ghost).
      ScenarioMover m;
      m.mobility = MobilityModel::kRandomWalk;
      m.walk_speed_mps = 0.9;
      spec.movers.push_back(m);
    }
    fam.cases.push_back({std::move(spec), case_seed(base, 4, i)});
  }
  return fam;
}

ScenarioFamily interferer_family(std::uint64_t base) {
  ScenarioFamily fam;
  fam.name = "interferer";
  for (std::size_t i = 0; i < 14; ++i) {
    ScenarioSpec spec = base_spec("interferer", i, 8.0);
    spec.movers.push_back(ramp_mover(0.25, 0.85, 1.0, 0.0));
    if (i % 2 == 1)
      spec.movers.push_back(ramp_mover(-0.70, -0.40, 0.85, 2.1));
    InterfererSpec intf;
    intf.burst_prob = 0.25 + 0.05 * static_cast<double>(i % 3);
    intf.burst_sec = 0.4;
    intf.power = 3e-3 + 1e-3 * static_cast<double>(i % 4);
    spec.interferer = intf;
    fam.cases.push_back({std::move(spec), case_seed(base, 5, i)});
  }
  return fam;
}

ScenarioFamily faulted_family(std::uint64_t base) {
  ScenarioFamily fam;
  fam.name = "faulted";
  for (std::size_t i = 0; i < 14; ++i) {
    ScenarioSpec spec = base_spec("faulted", i, 8.0);
    if (i % 2 == 0) {
      ScenarioMover m;
      m.mobility = MobilityModel::kRandomWalk;
      m.walk_speed_mps = 0.8 + 0.04 * static_cast<double>(i);
      spec.movers.push_back(m);
    } else {
      spec.movers.push_back(ramp_mover(0.30, 0.85, 1.0, 0.0));
      spec.movers.push_back(ramp_mover(-0.80, -0.45, 0.85, 2.1));
    }
    fam.cases.push_back({std::move(spec), case_seed(base, 6, i)});
  }
  // Accuracy under faults: the replay sees drops, duplicates, reorders,
  // silence gaps and NaN bursts — corruption must surface as typed
  // InputGuard rejections (counted in the matrix), never as silently
  // wrong scores.
  fault::FaultSpec faults;
  faults.seed = mix(base ^ 0xFA17);
  faults.drop_prob = 0.05;
  faults.duplicate_prob = 0.03;
  faults.reorder_prob = 0.02;
  faults.gap_prob = 0.03;
  faults.corrupt_prob = 0.04;
  faults.corrupt_burst = 4;
  faults.silence_chunks = 3;
  fam.faults = faults;
  return fam;
}

}  // namespace

std::vector<ScenarioFamily> scenario_families(std::uint64_t base_seed) {
  std::vector<ScenarioFamily> fams;
  fams.push_back(walker_family(base_seed));
  fams.push_back(crossing_family(base_seed));
  fams.push_back(count_family(base_seed));
  fams.push_back(clutter_family(base_seed));
  fams.push_back(interferer_family(base_seed));
  fams.push_back(faulted_family(base_seed));
  return fams;
}

// ---------------------------------------------------------------------------
// Matrix serialisation.
// ---------------------------------------------------------------------------

namespace {

void append_num(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

void append_scores(std::string& out, const ScenarioScores& s) {
  out += "      {\"name\": \"" + s.name + "\", \"seed\": " +
         std::to_string(s.seed);
  out += ", \"movers\": " + std::to_string(s.num_truth_movers);
  out += ", \"max_concurrent\": " + std::to_string(s.max_concurrent);
  out += ", \"columns\": " + std::to_string(s.columns);
  out += ", \"ospa_deg\": ";
  append_num(out, s.ospa_deg);
  out += ", \"continuity\": ";
  append_num(out, s.continuity);
  out += ", \"purity\": ";
  append_num(out, s.purity);
  out += ", \"id_switches\": " + std::to_string(s.id_switches);
  out += ", \"ghost_tracks\": " + std::to_string(s.ghost_tracks);
  out += ", \"count_accuracy\": ";
  append_num(out, s.count_accuracy);
  out += ", \"count_mae\": ";
  append_num(out, s.count_mae);
  out += ", \"spatial_variance\": ";
  append_num(out, s.spatial_variance);
  out += ", \"faulted\": ";
  out += s.faulted ? "true" : "false";
  out += ", \"chunks_rejected\": " + std::to_string(s.chunks_rejected);
  out += "}";
}

}  // namespace

std::string accuracy_matrix_json(
    std::uint64_t base_seed,
    const std::vector<std::pair<FamilySummary, std::vector<ScenarioScores>>>&
        families) {
  std::size_t total = 0;
  for (const auto& [summary, scores] : families) total += scores.size();

  std::string out;
  out += "{\n";
  out += "  \"schema\": \"wivi-accuracy-matrix-v1\",\n";
  out += "  \"base_seed\": " + std::to_string(base_seed) + ",\n";
  out += "  \"scenarios_total\": " + std::to_string(total) + ",\n";
  out += "  \"families\": [\n";
  for (std::size_t f = 0; f < families.size(); ++f) {
    const auto& [s, scores] = families[f];
    out += "    {\"name\": \"" + s.name + "\",\n";
    out += "     \"scenarios\": " + std::to_string(s.scenarios) + ",\n";
    out += "     \"summary\": {\"mean_ospa_deg\": ";
    append_num(out, s.mean_ospa_deg);
    out += ", \"mean_continuity\": ";
    append_num(out, s.mean_continuity);
    out += ", \"mean_purity\": ";
    append_num(out, s.mean_purity);
    out += ", \"total_id_switches\": " + std::to_string(s.total_id_switches);
    out += ", \"total_ghost_tracks\": " + std::to_string(s.total_ghost_tracks);
    out += ", \"mean_count_accuracy\": ";
    append_num(out, s.mean_count_accuracy);
    out += ", \"mean_count_mae\": ";
    append_num(out, s.mean_count_mae);
    out +=
        ", \"total_chunks_rejected\": " + std::to_string(s.total_chunks_rejected);
    out += "},\n";
    out += "     \"rows\": [\n";
    for (std::size_t i = 0; i < scores.size(); ++i) {
      append_scores(out, scores[i]);
      out += i + 1 < scores.size() ? ",\n" : "\n";
    }
    out += "     ]}";
    out += f + 1 < families.size() ? ",\n" : "\n";
  }
  out += "  ]\n";
  out += "}\n";
  return out;
}

}  // namespace wivi::sim
