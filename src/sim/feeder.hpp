// Chunked trace feeding for the streaming runtime: turn one simulated
// capture (ExperimentRunner under the hood) into the sequence of sample
// chunks a live driver would hand to rt::Engine::offer(), so examples,
// benches and tests can drive M concurrent sessions from M independently
// seeded scenes.
#pragma once

#include "src/sim/experiment.hpp"
#include "src/sim/room.hpp"

namespace wivi::sim {

/// One session's worth of scene: like a §7.4 counting trial, but only the
/// capture — no batch post-processing.
struct SessionScenario {
  RoomSpec room;  // default-constructed = a Stata-A-like hollow-wall room
  int num_humans = 1;
  double duration_sec = 10.0;
  std::uint64_t seed = 1;
};

/// Null, then capture the post-nulling channel-estimate stream for one
/// scenario. Deterministic in the seed; independently seeded scenarios are
/// fully independent scenes.
[[nodiscard]] TraceResult record_session_trace(const SessionScenario& sc);

/// A recorded trace chopped into fixed-size chunks, replayed in order.
class ChunkedTrace {
 public:
  ChunkedTrace(TraceResult trace, std::size_t chunk_len);

  /// Pop the next chunk (the last one may be short). False when done.
  [[nodiscard]] bool next(CVec& chunk);

  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= trace_.h.size(); }
  [[nodiscard]] std::size_t chunks_remaining() const noexcept;
  /// Chunks handed out by next() since construction / the last rewind().
  [[nodiscard]] std::size_t chunks_emitted() const noexcept {
    return emitted_;
  }
  /// Seconds of stream one chunk covers (live pacing: one chunk arrives
  /// every chunk_period_sec()).
  [[nodiscard]] double chunk_period_sec() const noexcept;

  [[nodiscard]] const TraceResult& trace() const noexcept { return trace_; }
  [[nodiscard]] std::size_t chunk_len() const noexcept { return chunk_len_; }

  void rewind() noexcept {
    pos_ = 0;
    emitted_ = 0;
  }

 private:
  TraceResult trace_;
  std::size_t chunk_len_;
  std::size_t pos_ = 0;
  std::size_t emitted_ = 0;
};

}  // namespace wivi::sim
