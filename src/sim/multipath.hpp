// First-order indoor multipath: ghost images of moving bodies.
//
// Paper §7.3: "our experiments are conducted in multipath-rich indoor
// environments ... Wi-Vi works in the presence of multipath effects
// because the direct path from a moving human to Wi-Vi is much stronger
// than indirect paths which bounce off the internal walls of the room."
//
// We model the dominant indirect paths with the image method: a reflection
// off a side wall is equivalent to a scatterer mirrored across that wall,
// attenuated by the wall's reflection loss. The ghosts inherit the source
// body's motion, so they add exactly the kind of correlated clutter the
// smoothed-MUSIC stage must (and does) tolerate.
#pragma once

#include "src/rf/channel.hpp"

namespace wivi::sim {

class GhostReflection final : public rf::MovingBody {
 public:
  /// Mirror `source` across the vertical plane x = mirror_x, scaling each
  /// scatter point's RCS by `rcs_scale` (reflection loss; ~ -12 dB power
  /// for painted sheetrock at grazing incidence).
  GhostReflection(const rf::MovingBody* source, double mirror_x,
                  double rcs_scale = 0.06);

  [[nodiscard]] std::vector<rf::ScatterPoint> scatter_points(
      double t) const override;

 private:
  const rf::MovingBody* source_;
  double mirror_x_;
  double rcs_scale_;
};

}  // namespace wivi::sim
