#include "src/sim/room.hpp"

#include "src/common/constants.hpp"
#include "src/common/error.hpp"

namespace wivi::sim {

RoomSpec stata_conference_a() {
  return {"Stata conference room A (7x4 m, 6\" hollow wall)", 7.0, 4.0,
          rf::Material::kHollowWall, 5};
}

RoomSpec stata_conference_b() {
  return {"Stata conference room B (11x7 m, 6\" hollow wall)", 11.0, 7.0,
          rf::Material::kHollowWall, 7};
}

RoomSpec fairchild_room() {
  return {"Fairchild room (8\" concrete wall)", 7.0, 5.0,
          rf::Material::kConcrete8in, 5};
}

RoomSpec room_with_material(rf::Material m) {
  RoomSpec spec = stata_conference_a();
  spec.wall_material = m;
  spec.name = std::string("Material test room: ") + std::string(rf::info(m).name);
  return spec;
}

Scene::Scene(RoomSpec spec, const Calibration& cal, Rng& rng)
    : spec_(std::move(spec)), cal_(cal) {
  const double wall_y_pos = cal_.device_standoff_m;
  const double half_sep = cal_.tx_separation_m / 2.0;
  const rf::Vec2 boresight{0.0, 1.0};

  // 3-antenna MIMO device: two TX flanking one RX, all facing the wall
  // (paper §3.1), LP0965-class directional elements at 6 dBi.
  const auto tx0 =
      rf::Antenna::directional({-half_sep, 0.0}, boresight, /*gain_dbi=*/6.0);
  const auto tx1 =
      rf::Antenna::directional({+half_sep, 0.0}, boresight, /*gain_dbi=*/6.0);
  const auto rx = rf::Antenna::directional({0.0, 0.05}, boresight, 6.0);

  channel_ = std::make_unique<rf::ChannelModel>(tx0, tx1, rx);

  if (spec_.wall_material != rf::Material::kFreeSpace) {
    // The imaged wall spans the room width (plus margin so oblique paths
    // still traverse it).
    const double half_w = spec_.width_m / 2.0 + 2.0;
    channel_->add_wall(
        {{-half_w, wall_y_pos}, {+half_w, wall_y_pos}, spec_.wall_material});

    // The flash: strong specular reflection off the wall's front face.
    // Placed epsilon in front of the wall so the reflected path is not
    // itself wall-attenuated. One dominant specular point plus two dimmer
    // off-axis glints.
    const double eps = 0.01;
    channel_->add_static_scatterer({{0.0, wall_y_pos - eps}, cal_.wall_flash_rcs});
    channel_->add_static_scatterer(
        {{-1.2, wall_y_pos - eps}, cal_.wall_flash_rcs * 0.15});
    channel_->add_static_scatterer(
        {{+1.2, wall_y_pos - eps}, cal_.wall_flash_rcs * 0.15});
  }

  // Clutter in front of the wall: the table the radio sits on, the radio
  // case, the floor bounce (paper §4.1: nulling removes these too).
  channel_->add_static_scatterer({{0.25, 0.35}, cal_.front_clutter_rcs});
  channel_->add_static_scatterer({{-0.4, 0.6}, cal_.front_clutter_rcs * 0.5});

  // Furniture inside the closed room ("standard furniture: tables, chairs,
  // boards", §7.2), randomly placed per scene.
  const Rect inside = interior();
  for (int i = 0; i < spec_.num_furniture; ++i) {
    const rf::Vec2 pos{rng.uniform(inside.xmin, inside.xmax),
                       rng.uniform(inside.ymin, inside.ymax)};
    channel_->add_static_scatterer({pos, cal_.furniture_rcs * rng.uniform(0.5, 1.5)});
  }
}

rf::Vec2 Scene::toward_device(rf::Vec2 from) const noexcept {
  return (device_position() - from).normalized();
}

Rect Scene::interior() const noexcept {
  const double margin = 0.4;
  const double wall_y_pos = cal_.device_standoff_m;
  return {-spec_.width_m / 2.0 + margin, spec_.width_m / 2.0 - margin,
          wall_y_pos + margin, wall_y_pos + spec_.depth_m - margin};
}

double Scene::wall_y() const noexcept { return cal_.device_standoff_m; }

HumanBody& Scene::add_human(const SubjectParams& params,
                            rf::Trajectory trajectory, std::uint64_t seed) {
  humans_.push_back(
      std::make_unique<HumanBody>(params, std::move(trajectory), seed));
  channel_->add_moving_body(humans_.back().get());
  add_ghosts_for(humans_.back().get());
  return *humans_.back();
}

void Scene::add_body(const rf::MovingBody* body) {
  WIVI_REQUIRE(body != nullptr, "body must not be null");
  channel_->add_moving_body(body);
  add_ghosts_for(body);
}

void Scene::add_ghosts_for(const rf::MovingBody* body) {
  if (!spec_.multipath_ghosts) return;
  // First-order images across the two side walls of the room.
  for (const double mirror_x : {-spec_.width_m / 2.0, +spec_.width_m / 2.0}) {
    ghosts_.push_back(std::make_unique<GhostReflection>(body, mirror_x));
    channel_->add_moving_body(ghosts_.back().get());
  }
}

}  // namespace wivi::sim
