// Canonical experiment protocols of the paper's evaluation chapter, shared
// by the benchmark harness, the integration tests and the examples so that
// every consumer runs exactly the same procedure.
//
//   * Tracking / counting trials (§7.3, §7.4): N humans enter a closed
//     conference room and "move at will" for 25 s.
//   * Gesture trials (§7.5, §7.6): one subject stands at a given distance
//     behind the wall and performs gesture-encoded bits.
#pragma once

#include <optional>
#include <vector>

#include "src/core/counting.hpp"
#include "src/core/gesture.hpp"
#include "src/sim/experiment.hpp"

namespace wivi::sim {

// ------------------------------------------------------------- Counting ---

struct CountingTrial {
  RoomSpec room;
  int num_humans = 1;
  /// Subject indices (into sim::subject) for the participating humans.
  std::vector<int> subjects;
  double duration_sec = 25.0;
  std::uint64_t seed = 1;
  /// Threads for the smoothed-MUSIC image build
  /// (core::MotionTracker::Config::num_threads semantics: 1 = sequential
  /// sliding default; 0 / >1 = par::ParallelImageBuilder). Figure benches
  /// opt in; tests keep the bit-stable sequential default.
  int image_threads = 1;
};

struct CountingResult {
  double spatial_variance = 0.0;
  double effective_nulling_db = 0.0;
  core::AngleTimeImage image;
  TraceResult trace;
};

/// Run one §7.4 counting experiment: nulling, 25 s capture, smoothed MUSIC,
/// Eq. 5.5 spatial variance.
[[nodiscard]] CountingResult run_counting_trial(const CountingTrial& trial);

// -------------------------------------------------------------- Gesture ---

struct GestureTrial {
  RoomSpec room;
  /// Distance from the wall at which the subject stands (§7.5: 1-9 m).
  double distance_m = 3.0;
  int subject_index = 0;
  std::vector<core::Bit> message;
  /// Facing offset from straight-at-the-device, degrees (Fig. 6-2(c):
  /// a slanted subject still produces the right bit shapes).
  double facing_offset_deg = 0.0;
  std::uint64_t seed = 1;
};

struct GestureResult {
  core::GestureDecoder::Result decoded;
  /// Per ground-truth bit: decoded correctly / erased / flipped.
  int correct = 0;
  int erased = 0;
  int flipped = 0;
  /// Physical gesture SNR of each correctly decoded bit, split by bit value
  /// (Figs. 7-5 / 7-6(b)): Doppler-band (first-difference) power of the
  /// channel-estimate stream during the gesture, relative to the same
  /// measure over the quiet lead-in. This is the received-echo SNR, which
  /// scales with distance and wall material; the decoder's *matched-filter*
  /// SNR (used for the 3 dB decode gate) is in decoded.bits[i].snr_db.
  RVec snr_zero_db;
  RVec snr_one_db;
  double effective_nulling_db = 0.0;
};

/// Run one §7.5/§7.6 gesture experiment and score it against the message.
[[nodiscard]] GestureResult run_gesture_trial(const GestureTrial& trial);

/// Greedy alignment of decoded bits against the transmitted message:
/// decoded values must appear as an in-order subsequence; matches count as
/// correct, skipped ground-truth bits as erasures, mismatches as flips.
/// If `trace` is non-null, per-bit SNRs are measured physically on it
/// (Doppler-band power vs the lead-in noise floor); otherwise the decoder's
/// matched-filter SNR is reported.
void score_decoded_bits(std::span<const core::Bit> sent,
                        const std::vector<core::GestureDecoder::DecodedBit>& got,
                        GestureResult& out, const TraceResult* trace = nullptr);

}  // namespace wivi::sim
