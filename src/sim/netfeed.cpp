#include "src/sim/netfeed.hpp"

namespace wivi::sim {

std::size_t NetFeeder::feed(ChunkedTrace& trace, bool end) {
  std::size_t n = 0;
  CVec chunk;
  while (trace.next(chunk)) {
    sender_.send_chunk(sensor_id_, chunk);
    ++n;
  }
  if (end) sender_.send_end(sensor_id_);
  sent_ += n;
  return n;
}

std::size_t NetFeeder::feed(fault::FaultyFeeder& feeder, bool end) {
  std::size_t n = 0;
  CVec chunk;
  for (;;) {
    const fault::FaultAction action = feeder.next(chunk);
    if (action == fault::FaultAction::kEnd) break;
    if (action == fault::FaultAction::kGap) continue;
    sender_.send_chunk(sensor_id_, chunk);
    ++n;
  }
  if (end) sender_.send_end(sensor_id_);
  sent_ += n;
  return n;
}

}  // namespace wivi::sim
