/// @file
/// Accuracy evaluation harness over generated scenarios (DESIGN.md §11).
///
/// The sim::Evaluator closes the loop the scenario factory opens: it runs
/// a GeneratedScenario's trace through a compiled wivi::Session (chunked
/// streaming, optionally through a fault::FaultyFeeder), steps a
/// track::MultiTargetTracker over the resulting angle-time image column
/// by column, and scores what the pipeline reported against the
/// scenario's generated ground truth — OSPA-style angle error, track
/// continuity and purity, identity switches, ghost tracks, and counting
/// accuracy. Scoring is deterministic: the same GeneratedScenario always
/// produces bit-identical ScenarioScores.
///
/// scenario_families() is the committed sweep catalog — named families of
/// (spec, seed) cases, pure in the base seed — and accuracy_matrix_json()
/// renders a full sweep as the ACCURACY_matrix.json the scenario-eval CI
/// job gates on (tools/eval_scenarios + scripts/check_accuracy.py).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/sim/scenario.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi::sim {

/// @addtogroup wivi_scenario
/// @{

/// Accuracy scores of one scenario run. Angle metrics are scored against
/// the *detectable* truth: movers whose ground-truth angle is outside the
/// detector's DC-exclusion band (a near-DC mover is invisible to the
/// sensor by §5.2 physics, not by tracker failure — it re-enters the
/// scored set the moment its radial speed brings it back out).
struct ScenarioScores {
  /// Scenario name (ScenarioSpec::name).
  std::string name;
  /// Generating seed.
  std::uint64_t seed = 0;
  /// Ground-truth target count (spec movers).
  int num_truth_movers = 0;
  /// Largest number of simultaneously present truth movers.
  int max_concurrent = 0;
  /// Image columns scored.
  int columns = 0;

  /// Mean per-column OSPA (p=1) angle error in degrees, cutoff-bounded:
  /// unmatched targets/tracks each cost the cutoff. 0 when no column has
  /// either a detectable truth mover or a live track.
  double ospa_deg = 0.0;
  /// Fraction of (column, detectable truth mover) instances covered by a
  /// confirmed/coasting track within the match gate. 1.0 when vacuous.
  double continuity = 0.0;
  /// Weighted track purity: of all truth-matched track columns, the
  /// fraction matched to the track's dominant mover. 1.0 when vacuous.
  double purity = 0.0;
  /// Ground-truth movers whose covering track identity changed.
  int id_switches = 0;
  /// Ever-confirmed tracks never matched to any truth mover (clutter or
  /// interference promoted to a target).
  int ghost_tracks = 0;

  /// Fraction of columns where the live confirmed/coasting track count
  /// equals the detectable truth count.
  double count_accuracy = 0.0;
  /// Mean absolute count error over columns.
  double count_mae = 0.0;
  /// Final Eq. 5.5 spatial variance of the run (Session CountStage).
  double spatial_variance = 0.0;

  /// True when the trace was replayed through a fault::FaultyFeeder.
  bool faulted = false;
  /// Chunks the InputGuard rejected with a typed kInvalidChunk error
  /// (faulted runs: corruption must surface as typed failures, never as
  /// silently wrong samples).
  int chunks_rejected = 0;
};

/// Evaluator knobs: the pipeline configuration under test plus scoring
/// geometry and the optional fault plan of the replay.
struct EvaluatorConfig {
  /// Imaging configuration the Session compiles.
  core::MotionTracker::Config image;
  /// Multi-target tracker under test.
  track::MultiTargetTracker::Config tracker;
  /// OSPA cutoff in degrees (the cost of a cardinality mismatch).
  double ospa_cutoff_deg = 20.0;
  /// Truth-to-track match gate in degrees (continuity/purity/id-switch
  /// bookkeeping; same order as the tracker's association gate).
  double match_gate_deg = 15.0;
  /// Streaming chunk size fed to Session::push, in samples.
  std::size_t chunk_len = 250;
  /// When set, replay the trace through a FaultyFeeder with this plan.
  std::optional<fault::FaultSpec> faults;
};

/// Runs generated scenarios through the pipeline and scores them.
class Evaluator {
 public:
  /// Build an evaluator (validates the pipeline configurations).
  explicit Evaluator(EvaluatorConfig cfg = {});

  /// The evaluator's configuration.
  [[nodiscard]] const EvaluatorConfig& config() const noexcept { return cfg_; }

  /// Run `sc` through a fresh wivi::Session and score the result against
  /// sc.truth. Deterministic: bit-identical scores for identical inputs.
  [[nodiscard]] ScenarioScores score(const GeneratedScenario& sc) const;

  /// generate_scenario() + score() in one call.
  [[nodiscard]] ScenarioScores score(const ScenarioSpec& spec,
                                     std::uint64_t seed) const;

 private:
  EvaluatorConfig cfg_;
};

/// One (spec, seed) cell of a sweep.
struct ScenarioCase {
  /// The declarative world description.
  ScenarioSpec spec;
  /// The generating seed.
  std::uint64_t seed = 0;
};

/// A named family of scenario cases sharing one theme (and optionally one
/// fault plan for accuracy-under-faults rows).
struct ScenarioFamily {
  /// Family name (matrix section / CI row prefix).
  std::string name;
  /// The family's cases.
  std::vector<ScenarioCase> cases;
  /// When set, every case of the family replays through a FaultyFeeder
  /// with this plan (seed is combined with the case seed per case).
  std::optional<fault::FaultSpec> faults;
};

/// Default base seed of the committed accuracy matrix.
inline constexpr std::uint64_t kMatrixBaseSeed = 2026;

/// The committed sweep catalog: >= 100 cases across >= 5 named families
/// (walkers, crossings, occupancy counts, clutter, interferers, faulted
/// replays), every case seed SplitMix64-derived from `base_seed` — the
/// same base seed always yields the identical catalog.
[[nodiscard]] std::vector<ScenarioFamily> scenario_families(
    std::uint64_t base_seed = kMatrixBaseSeed);

/// Aggregate scores of one family (the per-family summary block of the
/// accuracy matrix).
struct FamilySummary {
  /// Family name.
  std::string name;
  /// Cases aggregated.
  int scenarios = 0;
  double mean_ospa_deg = 0.0;       ///< Mean of ScenarioScores::ospa_deg.
  double mean_continuity = 0.0;     ///< Mean continuity.
  double mean_purity = 0.0;         ///< Mean purity.
  int total_id_switches = 0;        ///< Summed identity switches.
  int total_ghost_tracks = 0;       ///< Summed ghost tracks.
  double mean_count_accuracy = 0.0; ///< Mean counting accuracy.
  double mean_count_mae = 0.0;      ///< Mean absolute count error.
  int total_chunks_rejected = 0;    ///< Summed typed chunk rejections.
};

/// Aggregate a family's scores.
[[nodiscard]] FamilySummary summarize(const std::string& family,
                                      const std::vector<ScenarioScores>& scores);

/// Evaluate one family: generate and score every case (applying the
/// family fault plan when present).
[[nodiscard]] std::vector<ScenarioScores> evaluate_family(
    const ScenarioFamily& family, const EvaluatorConfig& cfg = {});

/// Render a full sweep as the ACCURACY_matrix.json document (schema
/// "wivi-accuracy-matrix-v1"): per-family scenario rows plus summary
/// blocks. Deterministic formatting — the same scores always serialise to
/// the identical byte string.
[[nodiscard]] std::string accuracy_matrix_json(
    std::uint64_t base_seed,
    const std::vector<std::pair<FamilySummary, std::vector<ScenarioScores>>>&
        families);

/// @}

}  // namespace wivi::sim
