#include "src/sim/experiment.hpp"

#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::sim {

ExperimentRunner::ExperimentRunner(Scene& scene, Config cfg, Rng rng)
    : scene_(scene), cfg_(cfg), rng_(rng) {
  WIVI_REQUIRE(cfg_.trace_duration_sec > 0.0, "trace duration must be positive");
  WIVI_REQUIRE(cfg_.sample_rate_hz > 0.0, "sample rate must be positive");
  WIVI_REQUIRE(cfg_.num_pilot_bins >= 1, "need at least one pilot bin");
}

CVec ExperimentRunner::capture(SimulatedMimoLink& link, const CVec& p,
                               double* static_residual_power_out) const {
  const phy::OfdmModem& modem = link.modem();
  const auto& used = modem.used_subcarriers();

  // Pilot bins spread evenly across the used band.
  std::vector<int> pilots;
  const auto stride =
      std::max<std::size_t>(1, used.size() / static_cast<std::size_t>(
                                                 cfg_.num_pilot_bins));
  for (std::size_t i = stride / 2; i < used.size() &&
       pilots.size() < static_cast<std::size_t>(cfg_.num_pilot_bins);
       i += stride)
    pilots.push_back(used[i]);

  const double est_noise =
      from_db(scene_.calibration().estimate_noise_floor_db +
              cfg_.estimate_noise_extra_db);
  const auto n = static_cast<std::size_t>(
      std::round(cfg_.trace_duration_sec * cfg_.sample_rate_hz));
  const double t0 = link.now();
  Rng noise_rng = rng_;

  CVec h(n);
  double static_power_acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + static_cast<double>(i) / cfg_.sample_rate_hz;
    const cdouble c0 = link.chain_response(0, t);
    const cdouble c1 = link.chain_response(1, t);
    cdouble acc{0.0, 0.0};
    cdouble stat_acc{0.0, 0.0};
    for (int k : pilots) {
      const auto ki = static_cast<std::size_t>(k);
      const double df = modem.subcarrier_offset_hz(k);
      const cdouble s1 = scene_.channel().static_response(0, df);
      const cdouble s2 = scene_.channel().static_response(1, df);
      const cdouble m1 = scene_.channel().moving_response(0, t, df);
      const cdouble m2 = scene_.channel().moving_response(1, t, df);
      acc += (s1 + m1) * c0 + p[ki] * (s2 + m2) * c1;
      stat_acc += s1 * c0 + p[ki] * s2 * c1;
    }
    acc /= static_cast<double>(pilots.size());
    stat_acc /= static_cast<double>(pilots.size());
    static_power_acc += norm2(stat_acc);
    h[i] = acc + noise_rng.complex_gaussian(est_noise);
  }
  if (static_residual_power_out != nullptr)
    *static_residual_power_out = static_power_acc / static_cast<double>(n);
  return h;
}

TraceResult ExperimentRunner::run() {
  SimulatedMimoLink link(scene_, rng_.fork());
  const core::Nuller nuller(cfg_.nuller);

  TraceResult result;
  result.nulling = nuller.run(link);
  result.t0 = link.now();
  result.sample_rate_hz = cfg_.sample_rate_hz;
  double static_residual = 0.0;
  result.h = capture(link, result.nulling.p, &static_residual);
  result.effective_nulling_db =
      result.nulling.pre_null_power_db - to_db(static_residual);
  return result;
}

TraceResult ExperimentRunner::run_with_precoder(const CVec& p,
                                                core::Nuller::Result nulling) {
  SimulatedMimoLink link(scene_, rng_.fork());
  WIVI_REQUIRE(p.size() ==
                   static_cast<std::size_t>(link.modem().num_subcarriers()),
               "precoder size mismatch");
  TraceResult result;
  result.nulling = std::move(nulling);
  result.t0 = link.now();
  result.sample_rate_hz = cfg_.sample_rate_hz;
  double static_residual = 0.0;
  result.h = capture(link, p, &static_residual);
  result.effective_nulling_db =
      result.nulling.pre_null_power_db - to_db(static_residual);
  return result;
}

}  // namespace wivi::sim
