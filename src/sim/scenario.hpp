/// @file
/// Declarative scenario factory: from hand-built synthetic traces to
/// seeded families of measured worlds (DESIGN.md §11).
///
/// A sim::ScenarioSpec describes one through-wall world declaratively —
/// the room (geometry and wall material via the existing sim::RoomSpec),
/// any number of movers with waypoint, seeded random-walk or speed-ramp
/// mobility models, clutter sources (fans, pets), an optional interferer,
/// and the protocol variant (phy::OfdmModem knobs) — and
/// generate_scenario() turns (spec, seed) into a channel-estimate trace
/// *plus its ground truth*, purely and deterministically: the same
/// (spec, seed) pair always produces a bit-identical trace and truth,
/// SplitMix64-derived per consumer like wivi::fault's fault plans.
///
/// Every mobility model compiles down to the SyntheticMover speed-ramp
/// primitive: a geometric path (waypoints or a random walk inside the
/// room) is reduced to the mover's per-sample radial range r(t) toward
/// the device, whose exact discrete Doppler is what the ISAR emulation
/// measures — so the generated ground-truth angle
/// asin(v_radial / v_assumed) is consistent with the physics the
/// pipeline assumes by construction, not by tuning.
///
/// The evaluation harness on top (sim::Evaluator, tools/eval_scenarios)
/// sweeps families of generated scenarios through wivi::Session and
/// scores tracking/counting accuracy against the generated truth.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/phy/ofdm.hpp"
#include "src/rf/geometry.hpp"
#include "src/sim/room.hpp"

namespace wivi::sim {

/// @addtogroup wivi_scenario
/// @{

/// How a mover's radial-speed profile is produced.
enum class MobilityModel {
  /// Walk the scripted ScenarioMover::waypoints leg by leg (with per-leg
  /// speed and optional dwell), starting from ScenarioMover::start.
  kWaypoint,
  /// ns-3-style random waypoint walk inside the room interior (seeded;
  /// reuses sim::random_walk, pauses included).
  kRandomWalk,
  /// The geometry-free SyntheticMover primitive: radial speed ramps
  /// linearly from ScenarioMover::start_speed_mps to end_speed_mps.
  kSpeedRamp,
};

/// Human-readable name of a MobilityModel ("waypoint", ...).
[[nodiscard]] const char* to_string(MobilityModel m) noexcept;

/// One leg of a scripted kWaypoint path.
struct PathWaypoint {
  /// Destination of the leg, room coordinates (metres; device at origin).
  rf::Vec2 pos;
  /// Walking speed along the leg (m/s, > 0).
  double speed_mps = 1.0;
  /// Dwell after arriving (seconds, >= 0): the mover stands still — its
  /// radial speed is 0, so it fades into the DC band while paused.
  double pause_sec = 0.0;
};

/// One mover of a scenario: a mobility model plus presence window and
/// reflection amplitude. Movers are the scenario's ground-truth targets.
struct ScenarioMover {
  /// Which mobility model drives the radial-speed profile.
  MobilityModel mobility = MobilityModel::kRandomWalk;

  /// Start position (kWaypoint / kRandomWalk), room coordinates. Must be
  /// inside the room interior.
  rf::Vec2 start{0.0, 2.5};
  /// Scripted legs (kWaypoint only; at least one). Every waypoint must be
  /// inside the room interior.
  std::vector<PathWaypoint> waypoints;

  /// Mean walking speed of the kRandomWalk model (m/s, > 0).
  double walk_speed_mps = 1.0;

  /// kSpeedRamp: radial speed at the first present sample (m/s, positive
  /// = approaching; |v| <= the assumed ISAR speed of 1 m/s).
  double start_speed_mps = 0.6;
  /// kSpeedRamp: radial speed at the last present sample.
  double end_speed_mps = 0.6;

  /// Reflection amplitude relative to the unit reference mover (> 0);
  /// the room's wall material further attenuates it.
  double amplitude = 1.0;
  /// Initial phase offset in radians (decorrelates mover start phases).
  double phase_rad = 0.0;

  /// The mover enters the scene at this time (seconds, >= 0).
  double enter_sec = 0.0;
  /// The mover leaves the scene at this time (seconds, > enter_sec);
  /// infinity = present to the end.
  double exit_sec = std::numeric_limits<double>::infinity();
};

/// Kinds of non-target clutter sources.
enum class ClutterKind {
  /// Oscillating reflector at a fixed position (a fan: small sinusoidal
  /// radial motion at a steady rate).
  kFan,
  /// A small erratic mover (a pet): low-amplitude seeded random walk in a
  /// patch around ClutterSpec::pos.
  kPet,
};

/// Human-readable name of a ClutterKind ("fan", "pet").
[[nodiscard]] const char* to_string(ClutterKind k) noexcept;

/// One clutter source. Clutter contributes to the trace but is *not* part
/// of the ground-truth target set — a tracker that confirms it is scored
/// as a ghost track.
struct ClutterSpec {
  /// What kind of clutter this is.
  ClutterKind kind = ClutterKind::kFan;
  /// Position in room coordinates (fans sit here; pets wander nearby).
  /// Must be inside the room interior.
  rf::Vec2 pos{1.5, 2.5};
  /// Reflection amplitude (> 0; typically well below a human's).
  double amplitude = 0.15;
  /// Oscillation rate of a fan in Hz (> 0; ignored for pets).
  double rate_hz = 3.0;
  /// Radial oscillation extent of a fan in metres (> 0), or the radius of
  /// a pet's wander patch.
  double extent_m = 0.05;
};

/// An in-band interferer: seeded bursts of wideband noise added to the
/// channel-estimate stream (another network transmitting over the
/// measurement). Burst placement is a pure hash of (seed, second slot).
struct InterfererSpec {
  /// Probability that a burst starts within any given second of trace.
  double burst_prob = 0.3;
  /// Duration of one burst (seconds, > 0).
  double burst_sec = 0.5;
  /// Added complex-noise power per sample during a burst (> 0).
  double power = 5e-3;
};

/// Protocol variant: the phy::OfdmModem knobs that shape the estimate
/// stream's noise floor. Wider bandwidth admits more noise per estimate;
/// averaging more pilot subcarriers suppresses it (paper §7.1).
struct ProtocolSpec {
  /// OFDM configuration (bandwidth_hz is the noise-scaling knob).
  phy::OfdmModem::Config ofdm;
  /// Pilot subcarriers averaged per channel estimate (>= 1, and no more
  /// than the modem's used-subcarrier count).
  int num_pilot_bins = 4;
};

/// One complete declarative scenario: everything generate_scenario()
/// needs except the seed. Specs are cheap value types — families are
/// built by copying a base spec and varying fields.
struct ScenarioSpec {
  /// Scenario name (matrix row / test identifier).
  std::string name = "unnamed";
  /// The room: geometry, wall material, furniture clutter level.
  RoomSpec room;
  /// Trace duration in seconds (must cover at least one ISAR window).
  double duration_sec = 10.0;
  /// The ground-truth target movers (may be empty for clutter-only
  /// scenarios, but a scenario must contain at least one signal source).
  std::vector<ScenarioMover> movers;
  /// Non-target clutter sources.
  std::vector<ClutterSpec> clutter;
  /// Optional in-band interferer.
  std::optional<InterfererSpec> interferer;
  /// Protocol variant (noise-floor shaping).
  ProtocolSpec protocol;

  /// Check every invariant (positive dimensions and durations, at least
  /// one signal source, waypoints inside the room interior, speeds within
  /// the ISAR's assumed-speed envelope, valid protocol knobs); throws
  /// InvalidArgument on the first violation.
  void validate() const;

  /// Walkable interior of the room (the same rectangle Scene::interior()
  /// uses: 0.4 m margin off the walls, behind the imaged wall).
  [[nodiscard]] Rect interior() const noexcept;
};

/// Ground truth of one generated mover: its per-sample radial speed over
/// its presence window (the exact discrete Doppler the trace contains).
struct MoverTruth {
  /// First trace sample at which the mover is present.
  std::size_t enter_sample = 0;
  /// One past the last present sample.
  std::size_t exit_sample = 0;
  /// Radial speed per present sample (m/s, positive = approaching);
  /// size == exit_sample - enter_sample.
  RVec radial_speed_mps;
};

/// Ground truth of a generated scenario: per-mover radial-speed profiles
/// (targets only — clutter is deliberately absent) on the trace's sample
/// clock, with angle/count readouts at arbitrary times.
struct GroundTruth {
  /// Per-target truth, in ScenarioSpec::movers order.
  std::vector<MoverTruth> movers;
  /// Sample rate of the truth clock (the trace's channel-estimate rate).
  double sample_rate_hz = 0.0;

  /// True when mover `k` is present at time `t_sec`.
  [[nodiscard]] bool present(std::size_t k, double t_sec) const;
  /// Radial speed of mover `k` at `t_sec` (0 when absent).
  [[nodiscard]] double radial_speed_mps_at(std::size_t k, double t_sec) const;
  /// Ground-truth ISAR angle of mover `k` at `t_sec` in degrees:
  /// asin(v_radial / v_assumed), clamped to [-90, 90]. 0 when absent.
  [[nodiscard]] double angle_deg_at(std::size_t k, double t_sec) const;
  /// Number of present movers at `t_sec`.
  [[nodiscard]] int count_at(double t_sec) const;
  /// Largest count_at() over the whole trace.
  [[nodiscard]] int max_concurrent() const;
};

/// Ground-truth angle for a radial speed: degrees(asin(v / v_assumed)),
/// clamped to the [-90, 90] grid (the §5.1 ISAR angle convention).
[[nodiscard]] double truth_angle_deg(double radial_speed_mps) noexcept;

/// One generated world: the spec and seed that made it, the trace the
/// pipeline consumes, and the ground truth the evaluator scores against.
struct GeneratedScenario {
  /// The generating spec.
  ScenarioSpec spec;
  /// The generating seed.
  std::uint64_t seed = 0;
  /// Channel-estimate stream at sample_rate_hz (what Session::run eats).
  CVec h;
  /// Sample rate of `h` (the 312.5 Hz channel-estimate clock).
  double sample_rate_hz = 0.0;
  /// The scenario's ground truth.
  GroundTruth truth;
};

/// Generate the world (spec, seed) describes. Pure: no global state, no
/// clocks — the same arguments always return a bit-identical
/// GeneratedScenario (trace and truth). Validates the spec first.
/// Independent sub-streams (per-mover walks, noise, interference bursts)
/// are derived from `seed` with SplitMix64, so editing one spec field
/// never reshuffles an unrelated source's draws.
[[nodiscard]] GeneratedScenario generate_scenario(const ScenarioSpec& spec,
                                                  std::uint64_t seed);

/// @}

}  // namespace wivi::sim
