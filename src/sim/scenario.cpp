#include "src/sim/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/rf/materials.hpp"
#include "src/sim/calibration.hpp"
#include "src/sim/human.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi::sim {

namespace {

// Per-consumer salts: every random sub-stream of a scenario (each mover's
// walk, each clutter source, the noise floor, the interference plan) is
// seeded by an independent SplitMix64-derived key, so editing one spec
// field never reshuffles an unrelated source's draws (the same discipline
// wivi::fault uses for its fault plans).
constexpr std::uint64_t kSaltMover = 0x30E5;
constexpr std::uint64_t kSaltClutter = 0xC1A7;
constexpr std::uint64_t kSaltNoise = 0xA015;
constexpr std::uint64_t kSaltIntf = 0x1F7E;
constexpr std::uint64_t kSaltIntfPos = 0x1F7F;
constexpr std::uint64_t kSaltIntfNoise = 0x1F80;

/// SplitMix64 finaliser: the stateless hash behind every seed derivation.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t sub_seed(std::uint64_t seed, std::uint64_t salt,
                       std::uint64_t index) noexcept {
  return mix(seed ^ mix(index ^ (salt * 0x2545F4914F6CDD1Dull)));
}

/// Uniform [0, 1) from a derived key (53 mantissa bits).
double hash_u01(std::uint64_t seed, std::uint64_t salt,
                std::uint64_t index) noexcept {
  return static_cast<double>(sub_seed(seed, salt, index) >> 11) * 0x1.0p-53;
}

/// Walking speed of a kPet clutter source (small erratic mover).
constexpr double kPetSpeedMps = 0.6;

/// Presence window of a mover in samples over an n-sample trace.
struct Window {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
};

Window presence_window(const ScenarioMover& m, std::size_t n, double rate) {
  Window w;
  w.begin = static_cast<std::size_t>(std::llround(m.enter_sec * rate));
  w.end = std::isinf(m.exit_sec)
              ? n
              : std::min<std::size_t>(
                    n, static_cast<std::size_t>(std::llround(m.exit_sec * rate)));
  w.begin = std::min(w.begin, w.end);
  return w;
}

/// Sample a scripted waypoint path at the channel clock: walk the legs at
/// their speeds, dwell at arrival pauses, stand at the final waypoint once
/// the path is exhausted.
std::vector<rf::Vec2> waypoint_path(const ScenarioMover& m, std::size_t np,
                                    double dt) {
  std::vector<rf::Vec2> pts;
  pts.reserve(np);
  rf::Vec2 cur = m.start;
  std::size_t wp = 0;
  double pause_left = 0.0;
  for (std::size_t i = 0; i < np; ++i) {
    pts.push_back(cur);
    double step_left = dt;
    while (step_left > 0.0) {
      if (pause_left > 0.0) {
        const double d = std::min(pause_left, step_left);
        pause_left -= d;
        step_left -= d;
        continue;
      }
      if (wp >= m.waypoints.size()) break;  // path done: stand still
      const PathWaypoint& w = m.waypoints[wp];
      const rf::Vec2 delta = w.pos - cur;
      const double dist = delta.norm();
      const double need = dist / w.speed_mps;
      if (need <= step_left) {
        cur = w.pos;
        step_left -= need;
        pause_left = w.pause_sec;
        ++wp;
      } else {
        cur = cur + delta * (w.speed_mps * step_left / dist);
        step_left = 0.0;
      }
    }
  }
  return pts;
}

/// Add a geometric source to the trace from its per-sample range r[i]
/// toward the device, and (optionally) record its ground-truth radial
/// speed. The phase is exactly the round-trip path length: the mobility
/// model is thereby "compiled down" to the same discrete Doppler the
/// SyntheticMover speed-ramp primitive integrates.
void add_range_source(CVec& h, const Window& w, RSpan r, double amplitude,
                      double phase0, const core::IsarConfig& isar,
                      RVec* truth_speed) {
  const double c = kTwoPi * 2.0 / isar.wavelength_m;
  const double rate = 1.0 / isar.sample_period_sec;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double p = phase0 + c * (r[0] - r[i]);
    h[w.begin + i] += amplitude * cdouble{std::cos(p), std::sin(p)};
  }
  if (truth_speed == nullptr) return;
  truth_speed->resize(w.size());
  for (std::size_t i = 1; i < w.size(); ++i)
    (*truth_speed)[i] = (r[i - 1] - r[i]) * rate;
  if (w.size() >= 2) (*truth_speed)[0] = (*truth_speed)[1];
}

void compile_mover(const ScenarioSpec& spec, const ScenarioMover& m,
                   std::size_t index, std::uint64_t seed, std::size_t n,
                   const core::IsarConfig& isar, double amp_scale, CVec& h,
                   MoverTruth& truth) {
  const double rate = 1.0 / isar.sample_period_sec;
  const Window w = presence_window(m, n, rate);
  truth.enter_sample = w.begin;
  truth.exit_sample = w.end;
  const double amp = m.amplitude * amp_scale;

  if (m.mobility == MobilityModel::kSpeedRamp) {
    // The SyntheticMover primitive verbatim, run over the presence window.
    const SyntheticMover prim{m.start_speed_mps, m.end_speed_mps, 1.0,
                              m.phase_rad};
    const std::size_t np = w.size();
    for (std::size_t i = 0; i < np; ++i) {
      const double p = mover_phase_at(prim, i, np, isar);
      h[w.begin + i] += amp * cdouble{std::cos(p), std::sin(p)};
    }
    truth.radial_speed_mps.resize(np);
    const double slope =
        np >= 2 ? (m.end_speed_mps - m.start_speed_mps) /
                      static_cast<double>(np - 1)
                : 0.0;
    for (std::size_t i = 0; i < np; ++i)
      truth.radial_speed_mps[i] =
          m.start_speed_mps + slope * static_cast<double>(i);
    return;
  }

  // Geometric mobility: reduce the path to per-sample range toward the
  // device (at the origin), then emit phase + truth from the range.
  const double dt = isar.sample_period_sec;
  RVec r(w.size());
  if (m.mobility == MobilityModel::kWaypoint) {
    const std::vector<rf::Vec2> pts = waypoint_path(m, w.size(), dt);
    for (std::size_t i = 0; i < w.size(); ++i) r[i] = pts[i].norm();
  } else {  // kRandomWalk
    Rng rng(sub_seed(seed, kSaltMover, index));
    const double presence_sec = static_cast<double>(w.size()) * dt;
    const rf::Trajectory traj = random_walk(spec.interior(), presence_sec, dt,
                                            m.walk_speed_mps, rng);
    for (std::size_t i = 0; i < w.size(); ++i)
      r[i] = traj.position(static_cast<double>(i) * dt).norm();
  }
  add_range_source(h, w, r, amp, m.phase_rad, isar, &truth.radial_speed_mps);
}

void compile_clutter(const ScenarioSpec& spec, const ClutterSpec& c,
                     std::size_t index, std::uint64_t seed, std::size_t n,
                     const core::IsarConfig& isar, double amp_scale, CVec& h) {
  const Window w{0, n};
  const double dt = isar.sample_period_sec;
  RVec r(n);
  if (c.kind == ClutterKind::kFan) {
    const double r0 = c.pos.norm();
    const double ph0 = hash_u01(seed, kSaltClutter, index) * kTwoPi;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) * dt;
      r[i] = r0 + c.extent_m * std::sin(kTwoPi * c.rate_hz * t + ph0);
    }
  } else {  // kPet: seeded wander inside a patch around pos
    const Rect room = spec.interior();
    const Rect patch{std::max(room.xmin, c.pos.x - c.extent_m),
                     std::min(room.xmax, c.pos.x + c.extent_m),
                     std::max(room.ymin, c.pos.y - c.extent_m),
                     std::min(room.ymax, c.pos.y + c.extent_m)};
    Rng rng(sub_seed(seed, kSaltClutter, index));
    const rf::Trajectory traj = random_walk(
        patch, static_cast<double>(n) * dt, dt, kPetSpeedMps, rng);
    for (std::size_t i = 0; i < n; ++i)
      r[i] = traj.position(static_cast<double>(i) * dt).norm();
  }
  add_range_source(h, w, r, c.amplitude * amp_scale, 0.0, isar, nullptr);
}

void add_interference(const InterfererSpec& intf, std::uint64_t seed,
                      double rate, CVec& h) {
  const auto seconds = static_cast<std::size_t>(
      std::ceil(static_cast<double>(h.size()) / rate));
  const auto burst_len =
      static_cast<std::size_t>(std::llround(intf.burst_sec * rate));
  for (std::size_t s = 0; s < seconds; ++s) {
    if (hash_u01(seed, kSaltIntf, s) >= intf.burst_prob) continue;
    const double offset = hash_u01(seed, kSaltIntfPos, s);
    const auto begin = static_cast<std::size_t>(
        std::llround((static_cast<double>(s) + offset) * rate));
    const std::size_t end = std::min(h.size(), begin + burst_len);
    Rng rng(sub_seed(seed, kSaltIntfNoise, s));
    for (std::size_t i = begin; i < end; ++i)
      h[i] += rng.complex_gaussian(intf.power);
  }
}

}  // namespace

const char* to_string(MobilityModel m) noexcept {
  switch (m) {
    case MobilityModel::kWaypoint: return "waypoint";
    case MobilityModel::kRandomWalk: return "random-walk";
    case MobilityModel::kSpeedRamp: return "speed-ramp";
  }
  return "?";
}

const char* to_string(ClutterKind k) noexcept {
  switch (k) {
    case ClutterKind::kFan: return "fan";
    case ClutterKind::kPet: return "pet";
  }
  return "?";
}

Rect ScenarioSpec::interior() const noexcept {
  // The same rectangle Scene::interior() derives: the closed room behind
  // the imaged wall at the calibrated device standoff, with a margin.
  const double margin = 0.4;
  const double wall_y = Calibration{}.device_standoff_m;
  return {-room.width_m / 2.0 + margin, room.width_m / 2.0 - margin,
          wall_y + margin, wall_y + room.depth_m - margin};
}

void ScenarioSpec::validate() const {
  const core::IsarConfig isar;
  const double rate = 1.0 / isar.sample_period_sec;
  WIVI_REQUIRE(room.width_m > 0.0 && room.depth_m > 0.0,
               "room dimensions must be positive");
  const Rect inside = interior();
  WIVI_REQUIRE(inside.width() > 0.0 && inside.height() > 0.0,
               "room too small: no walkable interior behind the wall");
  WIVI_REQUIRE(duration_sec > 0.0, "duration must be positive");
  WIVI_REQUIRE(duration_sec * rate >= static_cast<double>(isar.window),
               "duration shorter than one ISAR window");
  WIVI_REQUIRE(!movers.empty() || !clutter.empty(),
               "scenario has no signal sources (zero movers and no clutter)");
  for (const ScenarioMover& m : movers) {
    WIVI_REQUIRE(m.amplitude > 0.0, "mover amplitude must be positive");
    WIVI_REQUIRE(m.enter_sec >= 0.0, "mover enter time must be >= 0");
    WIVI_REQUIRE(m.exit_sec > m.enter_sec,
                 "mover exit time must be after its enter time");
    WIVI_REQUIRE(m.enter_sec < duration_sec,
                 "mover enters after the trace ends");
    const double present =
        std::min(m.exit_sec, duration_sec) - m.enter_sec;
    WIVI_REQUIRE(present >= 0.1, "mover present for less than 0.1 s");
    switch (m.mobility) {
      case MobilityModel::kWaypoint:
        WIVI_REQUIRE(!m.waypoints.empty(),
                     "waypoint mover needs at least one waypoint");
        WIVI_REQUIRE(inside.contains(m.start),
                     "mover start position outside the room interior");
        for (const PathWaypoint& w : m.waypoints) {
          WIVI_REQUIRE(inside.contains(w.pos),
                       "waypoint outside the room interior");
          WIVI_REQUIRE(w.speed_mps > 0.0, "waypoint speed must be positive");
          WIVI_REQUIRE(w.pause_sec >= 0.0, "waypoint pause must be >= 0");
        }
        break;
      case MobilityModel::kRandomWalk:
        WIVI_REQUIRE(m.walk_speed_mps > 0.0, "walk speed must be positive");
        break;
      case MobilityModel::kSpeedRamp:
        WIVI_REQUIRE(std::abs(m.start_speed_mps) <= isar.assumed_speed_mps &&
                         std::abs(m.end_speed_mps) <= isar.assumed_speed_mps,
                     "ramp speeds must stay within the assumed ISAR speed");
        break;
    }
  }
  for (const ClutterSpec& c : clutter) {
    WIVI_REQUIRE(c.amplitude > 0.0, "clutter amplitude must be positive");
    WIVI_REQUIRE(c.extent_m > 0.0, "clutter extent must be positive");
    WIVI_REQUIRE(c.kind != ClutterKind::kFan || c.rate_hz > 0.0,
                 "fan rate must be positive");
    WIVI_REQUIRE(inside.contains(c.pos),
                 "clutter position outside the room interior");
  }
  if (interferer) {
    WIVI_REQUIRE(interferer->burst_prob >= 0.0 && interferer->burst_prob <= 1.0,
                 "interferer burst probability must be in [0,1]");
    WIVI_REQUIRE(interferer->burst_sec > 0.0,
                 "interferer burst duration must be positive");
    WIVI_REQUIRE(interferer->power > 0.0,
                 "interferer power must be positive");
  }
  // Constructing the modem validates the OFDM knobs themselves.
  const phy::OfdmModem modem(protocol.ofdm);
  WIVI_REQUIRE(protocol.num_pilot_bins >= 1 &&
                   protocol.num_pilot_bins <=
                       static_cast<int>(modem.used_subcarriers().size()),
               "pilot bins must be in [1, used subcarriers]");
}

bool GroundTruth::present(std::size_t k, double t_sec) const {
  const auto i =
      static_cast<std::size_t>(std::llround(t_sec * sample_rate_hz));
  const MoverTruth& m = movers[k];
  return i >= m.enter_sample && i < m.exit_sample;
}

double GroundTruth::radial_speed_mps_at(std::size_t k, double t_sec) const {
  if (!present(k, t_sec)) return 0.0;
  const auto i =
      static_cast<std::size_t>(std::llround(t_sec * sample_rate_hz));
  return movers[k].radial_speed_mps[i - movers[k].enter_sample];
}

double GroundTruth::angle_deg_at(std::size_t k, double t_sec) const {
  return present(k, t_sec) ? truth_angle_deg(radial_speed_mps_at(k, t_sec))
                           : 0.0;
}

int GroundTruth::count_at(double t_sec) const {
  int count = 0;
  for (std::size_t k = 0; k < movers.size(); ++k)
    count += present(k, t_sec);
  return count;
}

int GroundTruth::max_concurrent() const {
  // Sweep the presence-interval endpoints.
  std::vector<std::pair<std::size_t, int>> events;
  for (const MoverTruth& m : movers) {
    if (m.enter_sample >= m.exit_sample) continue;
    events.emplace_back(m.enter_sample, +1);
    events.emplace_back(m.exit_sample, -1);
  }
  std::sort(events.begin(), events.end());
  int live = 0;
  int peak = 0;
  for (const auto& [sample, delta] : events) {
    live += delta;
    peak = std::max(peak, live);
  }
  return peak;
}

double truth_angle_deg(double radial_speed_mps) noexcept {
  const core::IsarConfig isar;
  const double s =
      std::clamp(radial_speed_mps / isar.assumed_speed_mps, -1.0, 1.0);
  return std::asin(s) * 180.0 / std::numbers::pi;
}

GeneratedScenario generate_scenario(const ScenarioSpec& spec,
                                    std::uint64_t seed) {
  spec.validate();
  const core::IsarConfig isar;
  const double rate = 1.0 / isar.sample_period_sec;
  const auto n =
      static_cast<std::size_t>(std::llround(spec.duration_sec * rate));

  GeneratedScenario out;
  out.spec = spec;
  out.seed = seed;
  out.sample_rate_hz = rate;
  out.truth.sample_rate_hz = rate;
  out.h.assign(n, cdouble{0.0, 0.0});
  out.truth.movers.resize(spec.movers.size());

  // Through-wall attenuation relative to the hollow-wall reference room:
  // a concrete wall weakens every echo, a glass one strengthens them.
  const double extra_db =
      rf::two_way_attenuation_db(spec.room.wall_material) -
      rf::two_way_attenuation_db(rf::Material::kHollowWall);
  const double amp_scale = std::pow(10.0, -extra_db / 20.0);

  for (std::size_t k = 0; k < spec.movers.size(); ++k)
    compile_mover(spec, spec.movers[k], k, seed, n, isar, amp_scale, out.h,
                  out.truth.movers[k]);
  for (std::size_t k = 0; k < spec.clutter.size(); ++k)
    compile_clutter(spec, spec.clutter[k], k, seed, n, isar, amp_scale,
                    out.h);

  // Residual static component (imperfect nulling): grows with the room's
  // furniture clutter; the synthetic-trace default at num_furniture = 5.
  const cdouble static_residual =
      cdouble{0.4, 0.1} *
      (0.7 + 0.06 * static_cast<double>(spec.room.num_furniture));

  // Estimate noise: the protocol variant's knobs scale the synthetic
  // baseline of CN(0, 1e-4) — wider bandwidth admits proportionally more
  // noise, averaging more pilot bins suppresses it (paper §7.1).
  const double noise_power = 1e-4 *
                             (spec.protocol.ofdm.bandwidth_hz / 5e6) *
                             (4.0 / spec.protocol.num_pilot_bins);
  Rng noise_rng(sub_seed(seed, kSaltNoise, 0));
  for (std::size_t i = 0; i < n; ++i)
    out.h[i] += static_residual + noise_rng.complex_gaussian(noise_power);

  if (spec.interferer) add_interference(*spec.interferer, seed, rate, out.h);
  return out;
}

}  // namespace wivi::sim
