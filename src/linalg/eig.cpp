#include "src/linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.hpp"

namespace wivi::linalg {
namespace {

/// One (p, q) complex Jacobi rotation: zero a(p, q) with the unitary
///   G_pp = c, G_pq = -s, G_qp = s*e^{-j phi}, G_qq = c*e^{-j phi},
/// where a_pq = |a_pq| e^{j phi}; A <- G^H A G, V <- V G.
///
/// Only the upper triangle of `a` is kept valid: the mirror writes of the
/// textbook formulation are pure memory traffic (the lower triangle is
/// always the conjugate), and dropping them halves the work per rotation.
/// Eigenvectors are accumulated transposed (`vt` row j = eigenvector j) so
/// both updated vectors are contiguous rows instead of strided columns.
void rotate(CMatrix& a, CMatrix& vt, std::size_t p, std::size_t q,
            cdouble apq, double g) {
  const cdouble phase = apq / g;  // e^{j phi}
  const double alpha = a(p, p).real();
  const double beta = a(q, q).real();
  // Smaller-magnitude root of  g t^2 + (alpha - beta) t - g = 0.
  const double diff = alpha - beta;
  const double t =
      (diff >= 0.0 ? 1.0 : -1.0) * 2.0 * g /
      (std::abs(diff) + std::sqrt(diff * diff + 4.0 * g * g));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;
  const cdouble conj_phase = std::conj(phase);

  const std::size_t n = a.rows();
  cdouble* const row_p = a.row(p);
  cdouble* const row_q = a.row(q);

  // k < p: both elements live in column p / column q of row k.
  {
    cdouble* col_p = a.data() + p;
    cdouble* col_q = a.data() + q;
    for (std::size_t k = 0; k < p; ++k, col_p += n, col_q += n) {
      const cdouble akp = *col_p;
      const cdouble akq = *col_q;
      *col_p = c * akp + s * conj_phase * akq;
      *col_q = -s * akp + c * conj_phase * akq;
    }
  }
  // p < k < q: a(k,p) = conj(a(p,k)); row p is contiguous.
  {
    cdouble* col_q = a.data() + (p + 1) * n + q;
    for (std::size_t k = p + 1; k < q; ++k, col_q += n) {
      const cdouble apk = row_p[k];
      const cdouble akq = *col_q;
      row_p[k] = c * apk + s * phase * std::conj(akq);
      *col_q = -s * std::conj(apk) + c * conj_phase * akq;
    }
  }
  // k > q: both mirrors live in rows p and q; fully contiguous.
  for (std::size_t k = q + 1; k < n; ++k) {
    const cdouble apk = row_p[k];
    const cdouble aqk = row_q[k];
    row_p[k] = c * apk + s * phase * aqk;
    row_q[k] = -s * apk + c * phase * aqk;
  }
  const double new_pp = c * c * alpha + 2.0 * c * s * g + s * s * beta;
  row_p[p] = new_pp;
  row_q[q] = alpha + beta - new_pp;
  row_p[q] = 0.0;

  // Accumulate eigenvectors: V <- V G, stored transposed (contiguous rows).
  cdouble* const vp = vt.row(p);
  cdouble* const vq = vt.row(q);
  for (std::size_t k = 0; k < n; ++k) {
    const cdouble vkp = vp[k];
    const cdouble vkq = vq[k];
    vp[k] = c * vkp + s * conj_phase * vkq;
    vq[k] = -s * vkp + c * conj_phase * vkq;
  }
}

/// 2 * sum_{i<j} |a(i,j)|^2 over the (valid) upper triangle.
double upper_offdiag_norm2(const CMatrix& a) {
  const std::size_t n = a.rows();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const cdouble* const row_i = a.row(i);
    for (std::size_t j = i + 1; j < n; ++j) acc += norm2(row_i[j]);
  }
  return 2.0 * acc;
}

}  // namespace

EigResult hermitian_eig(const CMatrix& a_in, const EigOptions& opts) {
  EigResult result;
  EigWorkspace ws;
  hermitian_eig_into(a_in, result, ws, opts);
  return result;
}

void hermitian_eig_into(const CMatrix& a_in, EigResult& out, EigWorkspace& ws,
                        const EigOptions& opts) {
  WIVI_REQUIRE(a_in.rows() == a_in.cols(), "hermitian_eig needs a square matrix");
  const std::size_t n = a_in.rows();

  // Frobenius norm and Hermitian defect in one pass (squared comparisons,
  // no per-element sqrt).
  double fro2 = 0.0;
  double defect2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const cdouble* const row_i = a_in.row(i);
    fro2 += norm2(row_i[i]);
    defect2 = std::max(defect2, row_i[i].imag() * row_i[i].imag() * 4.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const cdouble aij = row_i[j];
      const cdouble aji = a_in(j, i);
      fro2 += norm2(aij) + norm2(aji);
      defect2 = std::max(defect2, norm2(aij - std::conj(aji)));
    }
  }
  const double fro = std::sqrt(fro2);
  WIVI_REQUIRE(defect2 <= 1e-18 * std::max(fro2, 1.0),
               "hermitian_eig input is not Hermitian");

  // Working copy, upper triangle only, forced exactly Hermitian (averages
  // tiny defects); vt starts as the identity.
  CMatrix& a = ws.a;
  CMatrix& vt = ws.vt;
  a.reshape(n, n);
  vt.reshape(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    vt(i, i) = 1.0;
    a(i, i) = a_in(i, i).real();
    const cdouble* const src_i = a_in.row(i);
    cdouble* const dst_i = a.row(i);
    for (std::size_t j = i + 1; j < n; ++j)
      dst_i[j] = 0.5 * (src_i[j] + std::conj(a_in(j, i)));
  }

  const double target = opts.tolerance * std::max(fro, 1e-300);
  const double target2 = target * target;
  // A rotation below this threshold cannot matter: if every off-diagonal
  // entry is under it, the total off-diagonal norm is already <= target.
  const double skip2 = n > 1 ? target2 / static_cast<double>(n * (n - 1)) : 0.0;

  // Each rotation lowers the off-diagonal norm by exactly 2|a_pq|^2, so an
  // incrementally tracked estimate enables mid-sweep exit; the estimate is
  // re-anchored exactly at every sweep boundary to cancel rounding drift.
  double off2 = upper_offdiag_norm2(a);
  bool converged = n == 1 || off2 <= target2;
  for (int sweep = 0; sweep < opts.max_sweeps && !converged; ++sweep) {
    bool early_exit = false;
    for (std::size_t p = 0; p + 1 < n && !early_exit; ++p) {
      const cdouble* const row_p = a.row(p);
      for (std::size_t q = p + 1; q < n; ++q) {
        const cdouble apq = row_p[q];
        const double g2 = norm2(apq);
        if (g2 <= skip2) continue;
        rotate(a, vt, p, q, apq, std::sqrt(g2));
        off2 -= 2.0 * g2;
        if (off2 <= 0.25 * target2) {
          early_exit = true;
          break;
        }
      }
    }
    off2 = upper_offdiag_norm2(a);
    converged = off2 <= target2;
  }
  if (!converged) throw ComputeError("hermitian_eig: Jacobi sweeps exhausted");

  // Sort eigenpairs by descending eigenvalue.
  ws.order.resize(n);
  std::iota(ws.order.begin(), ws.order.end(), 0);
  ws.diag.resize(n);
  for (std::size_t i = 0; i < n; ++i) ws.diag[i] = a(i, i).real();
  std::sort(ws.order.begin(), ws.order.end(),
            [&](std::size_t x, std::size_t y) { return ws.diag[x] > ws.diag[y]; });

  out.values.resize(n);
  out.vectors.reshape(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = ws.diag[ws.order[j]];
    const cdouble* const src = vt.row(ws.order[j]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, j) = src[i];
  }
}

}  // namespace wivi::linalg
