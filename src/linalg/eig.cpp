#include "src/linalg/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/error.hpp"

namespace wivi::linalg {
namespace {

/// One (p, q) complex Jacobi rotation: zero a(p, q) with the unitary
///   G_pp = c, G_pq = -s, G_qp = s*e^{-j phi}, G_qq = c*e^{-j phi},
/// where a_pq = |a_pq| e^{j phi}; A <- G^H A G, V <- V G.
void rotate(CMatrix& a, CMatrix& v, std::size_t p, std::size_t q) {
  const cdouble apq = a(p, q);
  const double g = std::abs(apq);
  if (g == 0.0) return;
  const cdouble phase = apq / g;  // e^{j phi}
  const double alpha = a(p, p).real();
  const double beta = a(q, q).real();
  // Smaller-magnitude root of  g t^2 + (alpha - beta) t - g = 0.
  const double diff = alpha - beta;
  const double t =
      (diff >= 0.0 ? 1.0 : -1.0) * 2.0 * g /
      (std::abs(diff) + std::sqrt(diff * diff + 4.0 * g * g));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;
  const cdouble conj_phase = std::conj(phase);

  const std::size_t n = a.rows();
  // Update rows/columns p and q for k != p, q, keeping A exactly Hermitian.
  for (std::size_t k = 0; k < n; ++k) {
    if (k == p || k == q) continue;
    const cdouble akp = a(k, p);
    const cdouble akq = a(k, q);
    const cdouble new_kp = c * akp + s * conj_phase * akq;
    const cdouble new_kq = -s * akp + c * conj_phase * akq;
    a(k, p) = new_kp;
    a(p, k) = std::conj(new_kp);
    a(k, q) = new_kq;
    a(q, k) = std::conj(new_kq);
  }
  const double new_pp = c * c * alpha + 2.0 * c * s * g + s * s * beta;
  a(p, p) = new_pp;
  a(q, q) = alpha + beta - new_pp;
  a(p, q) = 0.0;
  a(q, p) = 0.0;

  // Accumulate eigenvectors: V <- V G.
  for (std::size_t k = 0; k < n; ++k) {
    const cdouble vkp = v(k, p);
    const cdouble vkq = v(k, q);
    v(k, p) = c * vkp + s * conj_phase * vkq;
    v(k, q) = -s * vkp + c * conj_phase * vkq;
  }
}

}  // namespace

EigResult hermitian_eig(const CMatrix& a_in, const EigOptions& opts) {
  WIVI_REQUIRE(a_in.rows() == a_in.cols(), "hermitian_eig needs a square matrix");
  const double fro = a_in.frobenius_norm();
  WIVI_REQUIRE(a_in.hermitian_defect() <= 1e-9 * std::max(fro, 1.0),
               "hermitian_eig input is not Hermitian");

  const std::size_t n = a_in.rows();
  CMatrix a = a_in;
  CMatrix v = CMatrix::identity(n);

  // Force exact Hermitian symmetry before sweeping (averages tiny defects).
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = a(i, i).real();
    for (std::size_t j = i + 1; j < n; ++j) {
      const cdouble avg = 0.5 * (a(i, j) + std::conj(a(j, i)));
      a(i, j) = avg;
      a(j, i) = std::conj(avg);
    }
  }

  const double target = opts.tolerance * std::max(fro, 1e-300);
  bool converged = n == 1;
  for (int sweep = 0; sweep < opts.max_sweeps && !converged; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) rotate(a, v, p, q);
    converged = std::sqrt(a.offdiag_norm2()) <= target;
  }
  if (!converged) throw ComputeError("hermitian_eig: Jacobi sweeps exhausted");

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  RVec diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = a(i, i).real();
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  EigResult result;
  result.values.resize(n);
  result.vectors = CMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.values[j] = diag[order[j]];
    for (std::size_t i = 0; i < n; ++i) result.vectors(i, j) = v(i, order[j]);
  }
  return result;
}

}  // namespace wivi::linalg
