#include "src/linalg/cmatrix.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace wivi::linalg {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cdouble{0.0, 0.0}) {
  WIVI_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

CMatrix CMatrix::outer(CSpan x) {
  WIVI_REQUIRE(!x.empty(), "outer product of empty vector");
  const std::size_t n = x.size();
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = x[i] * std::conj(x[j]);
  return m;
}

void CMatrix::reshape(std::size_t rows, std::size_t cols) {
  WIVI_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, cdouble{0.0, 0.0});
}

cdouble CMatrix::at(std::size_t r, std::size_t c) const {
  WIVI_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

CMatrix& CMatrix::operator+=(const CMatrix& rhs) {
  WIVI_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
               "matrix sum size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

CMatrix& CMatrix::operator*=(cdouble scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

CMatrix CMatrix::operator*(const CMatrix& rhs) const {
  WIVI_REQUIRE(cols_ == rhs.rows_, "matrix product size mismatch");
  CMatrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cdouble aik = (*this)(i, k);
      if (aik == cdouble{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += aik * rhs(k, j);
    }
  }
  return out;
}

CVec CMatrix::operator*(CSpan x) const {
  CVec out;
  multiply_into(x, out);
  return out;
}

void CMatrix::multiply_into(CSpan x, CVec& out) const {
  WIVI_REQUIRE(cols_ == x.size(), "matrix-vector size mismatch");
  out.resize(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const cdouble* const r = row(i);
    cdouble acc{0.0, 0.0};
    for (std::size_t j = 0; j < cols_; ++j) acc += r[j] * x[j];
    out[i] = acc;
  }
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = std::conj((*this)(i, j));
  return out;
}

CVec CMatrix::column(std::size_t c) const {
  WIVI_REQUIRE(c < cols_, "column index out of range");
  CVec out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

double CMatrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (const auto& v : data_) acc += norm2(v);
  return std::sqrt(acc);
}

double CMatrix::offdiag_norm2() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      if (i != j) acc += norm2((*this)(i, j));
  return acc;
}

double CMatrix::hermitian_defect() const noexcept {
  double worst = 0.0;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      worst = std::max(worst, std::abs((*this)(i, j) - std::conj((*this)(j, i))));
  return worst;
}

}  // namespace wivi::linalg
