// Dense complex matrix.
//
// Sized for the smoothed-MUSIC correlation matrices (w' x w', w' <= 100,
// paper §7.1) — a straightforward row-major dense implementation is exact
// and fast enough; no external BLAS/LAPACK dependency.
#pragma once

#include <cstddef>

#include "src/common/types.hpp"

namespace wivi::linalg {

class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] static CMatrix identity(std::size_t n);

  /// Outer product x * x^H (rank-one correlation term, Eq. 5.2).
  [[nodiscard]] static CMatrix outer(CSpan x);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] cdouble& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] cdouble operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Element access with bounds checking (throws InvalidArgument).
  [[nodiscard]] cdouble at(std::size_t r, std::size_t c) const;

  /// Contiguous row-major storage access: row r occupies
  /// [row(r), row(r) + cols()). Hot loops (MUSIC noise projections, Jacobi
  /// sweeps) iterate these pointers instead of paying the operator()
  /// index arithmetic per element.
  [[nodiscard]] cdouble* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  [[nodiscard]] const cdouble* row(std::size_t r) const noexcept {
    return data_.data() + r * cols_;
  }
  [[nodiscard]] cdouble* data() noexcept { return data_.data(); }
  [[nodiscard]] const cdouble* data() const noexcept { return data_.data(); }

  /// Re-shape to rows x cols and zero-fill, reusing existing storage when
  /// the capacity suffices (no allocation on repeated same-size calls).
  void reshape(std::size_t rows, std::size_t cols);

  CMatrix& operator+=(const CMatrix& rhs);
  CMatrix& operator*=(cdouble scalar);

  [[nodiscard]] CMatrix operator*(const CMatrix& rhs) const;

  /// Matrix-vector product.
  [[nodiscard]] CVec operator*(CSpan x) const;

  /// Matrix-vector product into a caller-owned buffer (no allocation when
  /// out already has rows() elements).
  void multiply_into(CSpan x, CVec& out) const;

  /// Conjugate transpose.
  [[nodiscard]] CMatrix hermitian() const;

  /// Column `c` as a vector.
  [[nodiscard]] CVec column(std::size_t c) const;

  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Sum of |a_ij|^2 over i != j; the Jacobi convergence measure.
  [[nodiscard]] double offdiag_norm2() const noexcept;

  /// Max |a_ij - conj(a_ji)| — how far from Hermitian this matrix is.
  [[nodiscard]] double hermitian_defect() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  CVec data_;
};

}  // namespace wivi::linalg
