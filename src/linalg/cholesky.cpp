#include "src/linalg/cholesky.hpp"

#include <cmath>

#include "src/common/error.hpp"

namespace wivi::linalg {

Cholesky::Cholesky(const CMatrix& a) : l_(a.rows(), a.cols()) {
  WIVI_REQUIRE(a.rows() == a.cols(), "Cholesky needs a square matrix");
  const double fro = a.frobenius_norm();
  WIVI_REQUIRE(a.hermitian_defect() <= 1e-9 * std::max(fro, 1.0),
               "Cholesky input is not Hermitian");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    // Diagonal entry.
    double d = a(j, j).real();
    for (std::size_t k = 0; k < j; ++k) d -= norm2(l_(j, k));
    if (d <= 0.0 || !std::isfinite(d))
      throw ComputeError("Cholesky: matrix is not positive definite");
    const double ljj = std::sqrt(d);
    l_(j, j) = ljj;
    // Column below the diagonal.
    for (std::size_t i = j + 1; i < n; ++i) {
      cdouble s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * std::conj(l_(j, k));
      l_(i, j) = s / ljj;
    }
  }
}

CVec Cholesky::forward(CSpan b) const {
  const std::size_t n = l_.rows();
  WIVI_REQUIRE(b.size() == n, "Cholesky solve: size mismatch");
  CVec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    cdouble s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

CVec Cholesky::backward(CSpan y) const {
  const std::size_t n = l_.rows();
  CVec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    cdouble s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= std::conj(l_(k, ii)) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

CVec Cholesky::solve(CSpan b) const { return backward(forward(b)); }

double Cholesky::inverse_quadratic_form(CSpan b) const {
  const CVec y = forward(b);
  double acc = 0.0;
  for (const cdouble& v : y) acc += norm2(v);
  return acc;
}

double Cholesky::log_determinant() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i).real());
  return 2.0 * acc;
}

CVec solve_hpd(const CMatrix& a, CSpan b) { return Cholesky(a).solve(b); }

}  // namespace wivi::linalg
