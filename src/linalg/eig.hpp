// Hermitian eigendecomposition via cyclic complex Jacobi rotations.
//
// MUSIC (paper Eq. 5.3) needs the full eigendecomposition of the smoothed
// correlation matrix to split signal and noise subspaces. Jacobi is the
// right tool at our sizes (w' <= 100): unconditionally stable, simple to
// verify, and accurate to machine precision for Hermitian inputs.
#pragma once

#include "src/common/types.hpp"
#include "src/linalg/cmatrix.hpp"

namespace wivi::linalg {

struct EigResult {
  /// Eigenvalues sorted in descending order (real: the input is Hermitian).
  RVec values;
  /// Unitary matrix whose column j is the eigenvector for values[j].
  CMatrix vectors;
};

struct EigOptions {
  /// Stop when sqrt(offdiag_norm2) <= tol * frobenius_norm.
  double tolerance = 1e-12;
  /// Hard iteration cap; a 100x100 Hermitian matrix converges in ~8 sweeps.
  int max_sweeps = 60;
};

/// Reusable scratch for hermitian_eig_into: the working copy being
/// diagonalised, the transposed eigenvector accumulator, and the sorting
/// buffers. Holding one of these across calls (MUSIC runs one eig per
/// sliding-window position) makes repeated same-size decompositions
/// allocation-free.
struct EigWorkspace {
  CMatrix a;                        // working copy (upper triangle active)
  CMatrix vt;                       // row j = eigenvector j (transposed V)
  RVec diag;                        // unsorted eigenvalues
  std::vector<std::size_t> order;   // descending sort permutation
};

/// Eigendecomposition of a Hermitian matrix. Throws InvalidArgument if the
/// matrix is not square or is measurably non-Hermitian, ComputeError if the
/// sweep cap is exhausted (never observed for genuine Hermitian input).
[[nodiscard]] EigResult hermitian_eig(const CMatrix& a,
                                      const EigOptions& opts = {});

/// Same decomposition writing into caller-owned result + workspace; no
/// heap allocation when both already hold matching-size buffers.
void hermitian_eig_into(const CMatrix& a, EigResult& out, EigWorkspace& ws,
                        const EigOptions& opts = {});

}  // namespace wivi::linalg
