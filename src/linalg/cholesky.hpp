// Cholesky factorisation and linear solves for Hermitian positive-definite
// matrices - the numerical backbone of the Capon/MVDR spectrum estimator
// (core/doa.hpp), which needs R^{-1} a(theta) for every steering vector.
#pragma once

#include "src/common/types.hpp"
#include "src/linalg/cmatrix.hpp"

namespace wivi::linalg {

/// Lower-triangular Cholesky factor of a Hermitian positive-definite
/// matrix: A = L L^H. Throws InvalidArgument for non-square/non-Hermitian
/// input and ComputeError if A is not (numerically) positive definite.
class Cholesky {
 public:
  explicit Cholesky(const CMatrix& a);

  [[nodiscard]] const CMatrix& lower() const noexcept { return l_; }

  /// Solve A x = b.
  [[nodiscard]] CVec solve(CSpan b) const;

  /// The quadratic form b^H A^{-1} b (real and positive for Hermitian
  /// positive-definite A); computed stably as ||L^{-1} b||^2.
  [[nodiscard]] double inverse_quadratic_form(CSpan b) const;

  /// log(det A) = 2 sum log L_ii (useful for information criteria).
  [[nodiscard]] double log_determinant() const noexcept;

 private:
  /// Forward substitution: solve L y = b.
  [[nodiscard]] CVec forward(CSpan b) const;
  /// Back substitution: solve L^H x = y.
  [[nodiscard]] CVec backward(CSpan y) const;

  CMatrix l_;
};

/// Convenience: solve A x = b for Hermitian positive-definite A.
[[nodiscard]] CVec solve_hpd(const CMatrix& a, CSpan b);

}  // namespace wivi::linalg
