/// @file
/// Incremental (chunk-at-a-time) versions of the batch tracking stages.
///
/// The paper's pipeline is streaming by nature — nulling runs live in the
/// driver and smoothed MUSIC consumes a 312.5 Hz channel-estimate stream —
/// but the batch entry points (core::MotionTracker::process and friends)
/// want the whole trace at once. The classes here carry the window state
/// across arbitrarily sized sample chunks so a live session can emit
/// angle-time columns, track updates, decoded gesture bits and count
/// updates as soon as each hop of data lands, while staying *bit-for-bit
/// identical* to the batch pass over the concatenated stream (pinned by
/// test_rt_streaming and test_track_streaming).
///
/// Threading: like the core stages they wrap, none of these classes is safe
/// for concurrent use of one instance — one instance per session, one
/// processing thread at a time (rt::Engine enforces this with a per-session
/// claim; see DESIGN.md §4).
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/error.hpp"
#include "src/core/counting.hpp"
#include "src/core/gesture.hpp"
#include "src/core/tracker.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi::obs {
class PipelineObserver;
}  // namespace wivi::obs

namespace wivi::rt {

/// Streaming counterpart of core::MotionTracker: push sample chunks of any
/// size, get image columns appended to image() exactly as the batch
/// process() would have produced them. Memory stays bounded — consumed
/// samples are compacted away once the sliding window no longer needs
/// them (the growing image itself is the caller's to keep or trim).
class StreamingTracker {
 public:
  /// Start a streaming image at absolute time `t0` (time of the first
  /// pushed sample).
  explicit StreamingTracker(core::MotionTracker::Config cfg = core::MotionTracker::Config(),
                            double t0 = 0.0);

  /// Ingest one chunk; returns the number of columns it completed.
  std::size_t push(CSpan chunk);

  /// Adopt the image of a fully recorded stream that was built externally
  /// (par::ParallelImageBuilder — the Engine::run_recorded offline fast
  /// path). Requires a fresh tracker (nothing pushed yet) and an image
  /// whose shape matches what push(stream) would have produced for this
  /// configuration — column count, angle grid (values, not just size) and
  /// internal consistency are all enforced; a violation throws
  /// InvalidArgument. Afterwards the tracker reads as if `stream` had been
  /// pushed: samples_seen(), num_columns() and image() all line up, and
  /// further push() calls continue the stream (the window tail is
  /// retained) — though columns appended later come from a fresh
  /// correlation rebuild, like any post-compaction column.
  void adopt(CSpan stream, core::AngleTimeImage&& img);

  /// Columns produced so far; grows by push(). Identical to
  /// core::MotionTracker(cfg).process(all samples so far, t0) whenever at
  /// least one window has completed.
  [[nodiscard]] const core::AngleTimeImage& image() const noexcept {
    return img_;
  }

  /// Move the accumulated image out — the cheap alternative to copying
  /// image() when the stream is done and the tracker is about to be
  /// discarded. The tracker keeps its angle grid and the moved-out
  /// columns stay counted by num_columns(), but image() reads empty, so
  /// only call this once no further push() will follow.
  [[nodiscard]] core::AngleTimeImage take_image();

  /// Image columns completed so far (counts columns moved out by
  /// take_image() too; equals image().num_times() until then).
  [[nodiscard]] std::size_t num_columns() const noexcept {
    return next_col_;
  }
  /// Total samples ingested since construction / the last reset().
  [[nodiscard]] std::size_t samples_seen() const noexcept {
    return base_ + buf_.size();
  }

  /// The image-stage configuration.
  [[nodiscard]] const core::MotionTracker::Config& config() const noexcept {
    return cfg_;
  }
  /// Time step between image columns.
  [[nodiscard]] double column_period_sec() const noexcept;

  /// Graceful degradation under overload: when `factor` > 1, subsequent
  /// columns evaluate the MUSIC pseudospectrum only at every factor-th
  /// angle-grid point (the grid's end points always included) and fill the
  /// skipped angles by linear interpolation — the image shape, angle grid
  /// and event contract stay unchanged, the per-column scan cost drops
  /// ~factor-fold, and degraded columns are coarse approximations of the
  /// full-fidelity ones. Takes effect at the next completed column; 1
  /// restores full fidelity. See DESIGN.md §9 for the degradation ladder.
  void set_angle_decimation(int factor);
  /// Angle-grid decimation currently in effect (1 = full fidelity).
  [[nodiscard]] int angle_decimation() const noexcept { return decim_; }
  /// Columns emitted at reduced fidelity (angle_decimation() > 1) so far.
  [[nodiscard]] std::size_t degraded_columns() const noexcept {
    return degraded_cols_;
  }

  /// Drop all stream and image state and start a new trace at `t0`.
  void reset(double t0 = 0.0);

  /// Attach a per-stage latency observer (wivi::obs): the push() loop
  /// records one `stft_doppler` span (sliding-correlation advance) and one
  /// `music` span (pseudospectrum scan) per emitted column. nullptr
  /// detaches. The observer must outlive the tracker and is *not* owned;
  /// it survives reset().
  void set_observer(obs::PipelineObserver* observer) noexcept {
    obs_ = observer;
  }

 private:
  void compact();
  void emit_degraded_column(const linalg::CMatrix& r, RVec& out, int* order);

  core::MotionTracker::Config cfg_;
  double t0_ = 0.0;
  core::SmoothedMusic music_;
  core::SlidingCorrelation sliding_;
  // Correlation scratch lives in the per-thread core::music_scratch();
  // the tracker's own state is just the buffered stream tail + image.
  CVec buf_;                     // buffered tail of the stream
  std::size_t base_ = 0;         // stream index of buf_[0]
  std::size_t next_col_ = 0;     // next column index to emit
  core::AngleTimeImage img_;
  // Degraded-fidelity state (set_angle_decimation): the decimated grid and
  // its scratch column, rebuilt lazily when the factor changes.
  int decim_ = 1;
  std::size_t degraded_cols_ = 0;
  std::vector<std::size_t> coarse_idx_;  // full-grid indices evaluated
  RVec coarse_angles_;                   // angles at coarse_idx_
  RVec coarse_col_;                      // coarse pseudospectrum scratch
  obs::PipelineObserver* obs_ = nullptr;  // not owned; survives reset()
};

/// Streaming gesture decoding (§6): watches a growing angle-time image and
/// surfaces decoded bits as they become *stable* — far enough behind the
/// image frontier that later columns can no longer change their pairing.
/// Early emissions are provisional in the strict sense (the decoder's
/// noise scale is a whole-trace statistic): each bit time is emitted at
/// most once and in monotone time order, but a bit that a later re-decode
/// materialises *behind* the emission watermark is never delivered
/// incrementally. The final flush decode (result()) is always exactly
/// core::GestureDecoder::decode() of the full image.
class StreamingGesture {
 public:
  /// Decoder configuration plus the incremental-emission cadence.
  struct Config {
    /// Batch decoder configuration the stage re-runs incrementally.
    core::GestureDecoder::Config decoder;
    /// Re-decode cadence in image columns; decoding is O(image length), so
    /// running it every hop would make long sessions quadratic.
    std::size_t decode_interval_cols = 16;
    /// A bit whose centre lies this far behind the newest column is
    /// considered stable. <= 0 derives it from the gesture profile: one
    /// bit airtime plus the matched-filter half-width.
    double stability_guard_sec = 0.0;
  };

  StreamingGesture();  ///< Build a stage with the default Config.
  /// Build a stage with the given configuration.
  explicit StreamingGesture(Config cfg);

  /// Consider the image's newly appended columns; re-decodes when the
  /// cadence (or `flush`) demands and returns newly stable bits in time
  /// order. With `flush`, decodes unconditionally and returns everything
  /// not yet emitted.
  [[nodiscard]] std::vector<core::GestureDecoder::DecodedBit> poll(
      const core::AngleTimeImage& img, bool flush = false);

  /// Result of the most recent decode (the full batch result after a
  /// flush poll()).
  [[nodiscard]] const core::GestureDecoder::Result& result() const noexcept {
    return last_;
  }

  /// Move the most recent decode result out — the cheap alternative to
  /// copying result() when the stage is about to be discarded. result()
  /// reads empty afterwards.
  [[nodiscard]] core::GestureDecoder::Result take_result() {
    core::GestureDecoder::Result out = std::move(last_);
    last_ = core::GestureDecoder::Result{};
    return out;
  }
  /// Total bits returned by poll() so far.
  [[nodiscard]] std::size_t bits_emitted() const noexcept { return emitted_; }

 private:
  Config cfg_;
  core::GestureDecoder decoder_;
  core::GestureDecoder::Result last_;
  std::size_t cols_decoded_ = 0;   // image length at the last decode
  std::size_t emitted_ = 0;        // bits returned by poll() so far
  double emitted_until_ = -1e300;  // time watermark of the last emission
};

/// Streaming multi-target tracking: steps a track::MultiTargetTracker over
/// a growing angle-time image, one column at a time, as the columns
/// appear. Because the underlying tracker is strictly column-incremental
/// (it never revisits earlier columns), feeding columns as they complete
/// is *bit-for-bit identical* to the batch track::track_image() pass over
/// the finished image — the same parity contract as the other streaming
/// stages (pinned by test_track_streaming).
class StreamingMultiTracker {
 public:
  /// Wrap a fresh multi-target tracker with the given configuration.
  explicit StreamingMultiTracker(track::MultiTargetTracker::Config cfg = {})
      : tracker_(cfg) {}

  /// Step the tracker over any image columns not yet consumed.
  /// @param img  the growing image (same instance every call).
  /// @return how many new columns were consumed.
  std::size_t update(const core::AngleTimeImage& img);

  /// The wrapped tracker: snapshots(), histories(), num_confirmed()...
  [[nodiscard]] const track::MultiTargetTracker& tracker() const noexcept {
    return tracker_;
  }

  /// Live-track snapshots after the newest consumed column (empty before
  /// the first column).
  [[nodiscard]] const std::vector<track::TrackSnapshot>& snapshots()
      const noexcept {
    return tracker_.snapshots();
  }

  /// Image columns consumed so far.
  [[nodiscard]] std::size_t columns_seen() const noexcept {
    return tracker_.columns_processed();
  }

 private:
  track::MultiTargetTracker tracker_;
};

/// Streaming occupancy counting (§7.4): running Eq. 5.5 spatial-variance
/// average over the image columns seen so far. After the last column,
/// variance() equals core::spatial_variance() of the full image bit for
/// bit (same left-to-right accumulation).
class StreamingCounter {
 public:
  /// Accumulate columns on the [0, cap_db] dB scale (Eq. 5.4's cap;
  /// must be positive).
  explicit StreamingCounter(double cap_db = 60.0) : cap_db_(cap_db) {
    WIVI_REQUIRE(cap_db_ > 0.0, "cap_db must be positive");
  }

  /// Accumulate any image columns not yet seen; returns how many.
  std::size_t update(const core::AngleTimeImage& img);

  /// Running experiment-level spatial variance (0 before any column).
  [[nodiscard]] double variance() const noexcept {
    return n_ == 0 ? 0.0 : acc_ / static_cast<double>(n_);
  }
  /// Image columns accumulated so far.
  [[nodiscard]] std::size_t columns_seen() const noexcept { return n_; }

 private:
  double cap_db_;
  double acc_ = 0.0;
  std::size_t n_ = 0;
  RVec col_db_;  // column scratch, reused across updates
};

}  // namespace wivi::rt
