/// @file
/// Fixed-capacity lock-free single-producer/single-consumer ring.
///
/// The ingestion edge of the streaming runtime: one ring per sensor session,
/// the session's producer pushes sample chunks, whichever engine worker
/// currently owns the session pops them. Backpressure is explicit —
/// try_push() fails (without consuming its argument) when the ring is full,
/// and the session-level policy decides whether that means drop or wait.
///
/// Threading contract: at any instant at most one thread may push and at
/// most one may pop. The two sides may be *different threads over time*
/// (the engine's work stealing migrates the consumer role between workers)
/// provided each handoff is synchronised externally with acquire/release —
/// the engine's per-session claim flag provides exactly that, so the
/// per-side index caches below travel with the role.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/error.hpp"

namespace wivi::rt {

/// Lock-free SPSC ring of T values (see the file comment for the exact
/// threading contract).
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (index masking).
  explicit SpscRing(std::size_t min_capacity) {
    WIVI_REQUIRE(min_capacity >= 1, "ring capacity must be >= 1");
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;             ///< Non-copyable.
  SpscRing& operator=(const SpscRing&) = delete;  ///< Non-copyable.

  /// Actual (power-of-two) capacity in elements.
  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. On failure (ring full) `v` is left untouched and the
  /// drops() counter advances.
  [[nodiscard]] bool try_push(T&& v) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ == capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ == capacity()) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    slots_[t & mask_] = std::move(v);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (h == tail_cache_) return false;
    }
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Racy estimate, callable from any thread (the engine's pre-claim check
  /// reads rings it does not own): exact when both sides are quiet, and
  /// always in [0, capacity()]. Tail is loaded first: a pop landing
  /// between the two loads can then only push `head` past the sampled
  /// tail, which the wrap check below clamps to 0 — sampling the other
  /// order could pair a stale head with a fresh tail and report a huge
  /// wrapped value.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t t = tail_.load(std::memory_order_acquire);
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t n = t - h;
    return n <= capacity() ? n : 0;
  }
  /// True when size() == 0 (same caveat as size()).
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Elements ever accepted by try_push() — the producer cursor itself,
  /// read relaxed. Monitoring counters, readable from any thread; each is
  /// monotone but a cross-counter snapshot (pushes() - pops()) is as racy
  /// as size().
  [[nodiscard]] std::uint64_t pushes() const noexcept {
    return static_cast<std::uint64_t>(tail_.load(std::memory_order_relaxed));
  }
  /// Elements ever handed out by try_pop() (the consumer cursor, relaxed).
  [[nodiscard]] std::uint64_t pops() const noexcept {
    return static_cast<std::uint64_t>(head_.load(std::memory_order_relaxed));
  }
  /// try_push() calls rejected because the ring was full (relaxed,
  /// any-thread readable): the overflow count a kDrop backpressure policy
  /// turns into dropped chunks.
  [[nodiscard]] std::uint64_t drops() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Hot indices on separate cache lines; each side keeps a cached copy of
  // the other's cursor so the common-case push/pop touches no shared line.
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::size_t tail_cache_ = 0;        // consumer's view of tail_
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
  alignas(64) std::size_t head_cache_ = 0;        // producer's view of head_
  alignas(64) std::atomic<std::uint64_t> drops_{0};  // rejected try_push()es
};

}  // namespace wivi::rt
