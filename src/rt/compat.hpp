/// @file
/// Deprecated-surface shims: conversions between the legacy rt session
/// configuration / event types and the wivi::api facade types.
///
/// The legacy rt::SessionConfig (bool-flag stage toggles) and rt::Event
/// (fat union-style payload) predate the declarative api::PipelineSpec and
/// the typed api::Event variant. They are kept so existing engine
/// consumers continue to compile, and these conversions are the single
/// definition of what each legacy field means in the new model — the
/// engine itself runs on api::Session pipelines and uses exactly these
/// functions at its deprecated entry points.
#pragma once

#include "src/api/events.hpp"
#include "src/api/spec.hpp"
#include "src/rt/engine.hpp"

namespace wivi::rt {

/// The pipeline described by a legacy SessionConfig: image stage from
/// `tracker`/`t0`/`emit_columns`, optional stages from the bool flags and
/// their side-car configurations.
[[nodiscard]] api::PipelineSpec to_pipeline_spec(const SessionConfig& cfg);

/// The ingestion-edge half of a legacy SessionConfig (ring depth and
/// backpressure policy).
[[nodiscard]] IngestConfig to_ingest_config(const SessionConfig& cfg);

/// The legacy configuration equivalent to a spec + ingest pair (round-trips
/// with the two functions above).
[[nodiscard]] SessionConfig to_session_config(const api::PipelineSpec& spec,
                                              const IngestConfig& ingest = {});

/// The legacy engine event carrying the payload of a typed api::Event for
/// session `session`.
[[nodiscard]] Event to_legacy_event(SessionId session, api::Event e);

/// The typed api::Event carried by a legacy engine event (the session id
/// is dropped — api::Events are per-session by construction).
[[nodiscard]] api::Event to_api_event(const Event& e);

}  // namespace wivi::rt
