#include "src/rt/streaming.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/obs/trace.hpp"

namespace wivi::rt {

// ------------------------------------------------------ StreamingTracker ---

StreamingTracker::StreamingTracker(core::MotionTracker::Config cfg, double t0)
    : cfg_(cfg),
      t0_(t0),
      music_(cfg.music),
      sliding_(cfg.music.subarray, cfg.music.isar.window) {
  WIVI_REQUIRE(cfg_.hop >= 1, "hop must be >= 1");
  WIVI_REQUIRE(cfg_.angle_step_deg > 0.0, "angle step must be positive");
  // Both heavyweight artifacts resolve through the shared plan registry at
  // construction: the angle grid is copied out of the shared build (the
  // public image keeps its own RVec), and prewarming the steering table
  // here means N same-config sessions trigger exactly one table build —
  // an idle session then holds a handle, not ~100 KB of phase ramps.
  img_.angles_deg = *core::acquire_angle_grid(cfg_.angle_step_deg);
  music_.prewarm(img_.angles_deg);
}

double StreamingTracker::column_period_sec() const noexcept {
  return static_cast<double>(cfg_.hop) * cfg_.music.isar.sample_period_sec;
}

void StreamingTracker::reset(double t0) {
  obs::PipelineObserver* const keep = obs_;
  *this = StreamingTracker(cfg_, t0);
  obs_ = keep;
}

std::size_t StreamingTracker::push(CSpan chunk) {
  buf_.insert(buf_.end(), chunk.begin(), chunk.end());
  const auto w = static_cast<std::size_t>(cfg_.music.isar.window);
  const auto hop = static_cast<std::size_t>(cfg_.hop);
  const double T = cfg_.music.isar.sample_period_sec;

  // Emit every column whose window is now fully buffered. The per-column
  // math is the batch MotionTracker::process() loop verbatim — same
  // SlidingCorrelation advance sequence (rebase() only relabels offsets),
  // same workspace reuse — which is what makes streaming == batch exact.
  std::size_t emitted = 0;
  linalg::CMatrix& r = core::music_scratch().r;
  while (base_ + buf_.size() >= next_col_ * hop + w) {
    const std::size_t n = next_col_ * hop;  // absolute stream offset
    {
      obs::ScopedSpan span(obs_, obs::Stage::kStft);
      sliding_.advance_to(buf_, n - base_);
      sliding_.correlation_into(r);
    }
    img_.columns.emplace_back();
    int order = 0;
    obs::ScopedSpan span(obs_, obs::Stage::kMusic);
    if (decim_ <= 1) {
      music_.pseudospectrum_from_correlation_into(r, img_.angles_deg,
                                                  img_.columns.back(), &order);
    } else {
      emit_degraded_column(r, img_.columns.back(), &order);
    }
    span.stop();
    img_.model_orders.push_back(order);
    img_.times_sec.push_back(
        t0_ + (static_cast<double>(n) + static_cast<double>(w) / 2.0) * T);
    ++next_col_;
    ++emitted;
  }
  if (emitted > 0) compact();
  return emitted;
}

void StreamingTracker::adopt(CSpan stream, core::AngleTimeImage&& img) {
  WIVI_REQUIRE(base_ == 0 && buf_.empty() && next_col_ == 0,
               "adopt() requires a fresh tracker");
  const auto w = static_cast<std::size_t>(cfg_.music.isar.window);
  const auto hop = static_cast<std::size_t>(cfg_.hop);
  const std::size_t expect_cols =
      stream.size() >= w ? (stream.size() - w) / hop + 1 : 0;
  WIVI_REQUIRE(img.num_times() == expect_cols,
               "adopted image does not match the stream length");
  WIVI_REQUIRE(img.angles_deg == img_.angles_deg,
               "adopted image is on a different angle grid");
  WIVI_REQUIRE(img.times_sec.size() == expect_cols &&
                   img.model_orders.size() == expect_cols,
               "adopted image is internally inconsistent "
               "(times/model_orders vs columns)");
  for (const RVec& col : img.columns)
    WIVI_REQUIRE(col.size() == img.angles_deg.size(),
                 "adopted image has a column of the wrong height");

  img_ = std::move(img);
  next_col_ = expect_cols;
  // Keep exactly the tail a future column could still need (everything
  // from the next window start on); sliding state starts fresh, so the
  // next advance rebuilds — the same numerics as any re-anchor.
  base_ = std::min(next_col_ * hop, stream.size());
  buf_.assign(stream.begin() + static_cast<std::ptrdiff_t>(base_),
              stream.end());
  sliding_ = core::SlidingCorrelation(cfg_.music.subarray,
                                      cfg_.music.isar.window);
}

void StreamingTracker::set_angle_decimation(int factor) {
  WIVI_REQUIRE(factor >= 1, "angle decimation must be >= 1");
  if (factor == decim_) return;
  decim_ = factor;
  coarse_idx_.clear();  // grid rebuilt lazily at the next degraded column
}

/// One degraded column: evaluate the pseudospectrum at every decim_-th
/// angle (end points forced in so interpolation never extrapolates), then
/// fill the skipped angles linearly. The output has the full grid's shape.
void StreamingTracker::emit_degraded_column(const linalg::CMatrix& r, RVec& out,
                                            int* order) {
  const std::size_t n = img_.angles_deg.size();
  if (coarse_idx_.empty()) {
    const auto d = static_cast<std::size_t>(decim_);
    for (std::size_t i = 0; i < n; i += d) coarse_idx_.push_back(i);
    if (coarse_idx_.back() != n - 1) coarse_idx_.push_back(n - 1);
    coarse_angles_.resize(coarse_idx_.size());
    for (std::size_t j = 0; j < coarse_idx_.size(); ++j)
      coarse_angles_[j] = img_.angles_deg[coarse_idx_[j]];
  }
  music_.pseudospectrum_from_correlation_into(r, coarse_angles_, coarse_col_,
                                              order);
  out.resize(n);
  for (std::size_t j = 0; j + 1 < coarse_idx_.size(); ++j) {
    const std::size_t i0 = coarse_idx_[j];
    const std::size_t i1 = coarse_idx_[j + 1];
    out[i0] = coarse_col_[j];
    const double span = static_cast<double>(i1 - i0);
    for (std::size_t i = i0 + 1; i < i1; ++i) {
      const double w = static_cast<double>(i - i0) / span;
      out[i] = (1.0 - w) * coarse_col_[j] + w * coarse_col_[j + 1];
    }
  }
  out[n - 1] = coarse_col_.back();
  ++degraded_cols_;
}

core::AngleTimeImage StreamingTracker::take_image() {
  core::AngleTimeImage out = std::move(img_);
  img_ = core::AngleTimeImage{};
  img_.angles_deg = out.angles_deg;
  return out;
}

void StreamingTracker::compact() {
  // The incremental advance still reads from the *previous* window start
  // (= sliding_.position()), so that is the earliest sample we must keep.
  // Compact in big steps: the front-erase is O(kept), so amortise it.
  constexpr std::size_t kCompactThreshold = 4096;
  const std::size_t drop = sliding_.position();
  if (drop < kCompactThreshold) return;
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(drop));
  base_ += drop;
  sliding_.rebase(drop);
}

// ------------------------------------------------------ StreamingGesture ---

StreamingGesture::StreamingGesture() : StreamingGesture(Config{}) {}

StreamingGesture::StreamingGesture(Config cfg)
    : cfg_(cfg), decoder_(cfg.decoder) {
  WIVI_REQUIRE(cfg_.decode_interval_cols >= 1,
               "decode interval must be >= 1 column");
}

std::vector<core::GestureDecoder::DecodedBit> StreamingGesture::poll(
    const core::AngleTimeImage& img, bool flush) {
  std::vector<core::GestureDecoder::DecodedBit> fresh;
  const std::size_t cols = img.num_times();
  if (cols == 0) return fresh;
  if (!flush && cols < cols_decoded_ + cfg_.decode_interval_cols) return fresh;

  last_ = decoder_.decode(img);
  cols_decoded_ = cols;

  double guard = cfg_.stability_guard_sec;
  if (guard <= 0.0) {
    // One full bit behind the frontier, a pairing can no longer change;
    // add the matched-filter support so the peak itself is settled too.
    const core::GestureProfile& p = cfg_.decoder.profile;
    guard = p.bit_duration_sec() + p.step_duration_sec;
  }
  // Emission is keyed on the bit's time, not its index: a re-decode can
  // insert or remove *earlier* bits (the decoder's noise scale is a
  // whole-trace statistic), so an index cursor could re-emit or skip.
  // The watermark guarantees each emitted bit time is delivered at most
  // once and emissions are monotone in time; a bit that only materialises
  // behind the watermark on a later decode is dropped (documented).
  const double frontier = img.times_sec.back() - (flush ? 0.0 : guard);
  for (const auto& bit : last_.bits) {
    if (bit.time_sec <= emitted_until_ || bit.time_sec > frontier) continue;
    fresh.push_back(bit);
    emitted_until_ = bit.time_sec;
    ++emitted_;
  }
  return fresh;
}

// -------------------------------------------------- StreamingMultiTracker ---

std::size_t StreamingMultiTracker::update(const core::AngleTimeImage& img) {
  const std::size_t total = img.num_times();
  const std::size_t seen = tracker_.columns_processed();
  WIVI_REQUIRE(seen <= total, "image shrank between updates");
  for (std::size_t t = seen; t < total; ++t) tracker_.step(img, t);
  return total - seen;
}

// ------------------------------------------------------ StreamingCounter ---

std::size_t StreamingCounter::update(const core::AngleTimeImage& img) {
  const std::size_t total = img.num_times();
  WIVI_REQUIRE(n_ <= total, "image shrank between updates");
  const std::size_t fresh = total - n_;
  for (; n_ < total; ++n_) {
    img.column_db_into(n_, col_db_, cap_db_);
    acc_ += core::spatial_variance_column(col_db_, img.angles_deg);
  }
  return fresh;
}

}  // namespace wivi::rt
