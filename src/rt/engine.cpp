#include "src/rt/engine.hpp"

#include <algorithm>
#include <chrono>

#include "src/par/image_builder.hpp"

namespace wivi::rt {

Engine::Session::Session(SessionId id_, SessionConfig cfg_)
    : id(id_),
      cfg(cfg_),
      ring(cfg_.ring_capacity),
      tracker(cfg_.tracker, cfg_.t0) {
  if (cfg.decode_gestures) gesture.emplace(cfg.gesture);
  if (cfg.count_movers) counter.emplace(cfg.counter_cap_db);
  if (cfg.track_targets) multi.emplace(cfg.multi_track);
}

Engine::Engine() : Engine(Config{}) {}

Engine::Engine(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.max_sessions >= 1, "max_sessions must be >= 1");
  WIVI_REQUIRE(cfg_.chunks_per_claim >= 1, "chunks_per_claim must be >= 1");
  num_threads_ = cfg_.num_threads > 0
                     ? cfg_.num_threads
                     : static_cast<int>(
                           std::max(1u, std::thread::hardware_concurrency()));
  sessions_.resize(cfg_.max_sessions);
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

Engine::~Engine() {
  stop_.store(true, std::memory_order_release);
  wake_workers();
  for (std::thread& t : workers_) t.join();
}

Engine::Session& Engine::session(SessionId id) const {
  WIVI_REQUIRE(id < session_count_.load(std::memory_order_acquire),
               "unknown session id");
  return *sessions_[id];
}

SessionId Engine::open_session(SessionConfig cfg) {
  std::lock_guard lk(register_mu_);
  const std::size_t n = session_count_.load(std::memory_order_relaxed);
  WIVI_REQUIRE(n < cfg_.max_sessions, "session table full");
  sessions_[n] = std::make_unique<Session>(static_cast<SessionId>(n), cfg);
  session_count_.store(n + 1, std::memory_order_release);
  return static_cast<SessionId>(n);
}

SessionId Engine::run_recorded(SessionConfig cfg, CSpan trace) {
  const SessionId id = open_session(cfg);
  Session& s = session(id);
  // Claim the session for this thread. It is freshly opened with an empty
  // ring and no close flag, so no worker ever contends for it — the
  // exchange documents that this thread now plays the worker role.
  while (s.busy.exchange(true, std::memory_order_acquire))
    std::this_thread::yield();
  s.chunks_in.fetch_add(1, std::memory_order_relaxed);
  s.samples_in.fetch_add(trace.size(), std::memory_order_relaxed);
  try {
    const auto w = static_cast<std::size_t>(cfg.tracker.music.isar.window);
    if (trace.size() >= w) {
      // A builder per call: par::ThreadPool is one-job-at-a-time, so
      // concurrent run_recorded callers must not share one pool.
      par::ParallelImageBuilder builder(cfg.tracker, num_threads_);
      s.tracker.adopt(trace, builder.build(trace, cfg.t0));
    } else if (!trace.empty()) {
      (void)s.tracker.push(trace);  // shorter than one window: no columns
    }
    s.columns_out.store(s.tracker.num_columns(), std::memory_order_relaxed);
    emit_new_columns(s, 0);
    s.closed.store(true, std::memory_order_release);
    finalize(s);
  } catch (const std::exception& e) {
    s.closed.store(true, std::memory_order_release);
    fail_session(s, e.what());
  } catch (...) {
    s.closed.store(true, std::memory_order_release);
    fail_session(s, "unknown exception");
  }
  s.busy.store(false, std::memory_order_release);
  return id;
}

bool Engine::offer(SessionId id, CVec chunk) {
  Session& s = session(id);
  WIVI_REQUIRE(!s.closed.load(std::memory_order_relaxed),
               "offer() on a closed session");
  const std::uint64_t samples = chunk.size();
  s.chunks_in.fetch_add(1, std::memory_order_relaxed);
  s.samples_in.fetch_add(samples, std::memory_order_relaxed);

  if (s.cfg.backpressure == Backpressure::kBlock) {
    while (!s.ring.try_push(std::move(chunk))) {
      // A stopped engine — or a failed (finished) session, whose ring no
      // worker will ever drain again — would leave this loop spinning
      // forever; fall through to the drop path instead.
      if (stop_.load(std::memory_order_acquire) ||
          s.finished.load(std::memory_order_acquire)) {
        s.chunks_dropped.fetch_add(1, std::memory_order_relaxed);
        s.samples_dropped.fetch_add(samples, std::memory_order_relaxed);
        return false;
      }
      wake_workers();
      std::this_thread::yield();
    }
    wake_workers();
    return true;
  }
  if (!s.ring.try_push(std::move(chunk))) {
    s.chunks_dropped.fetch_add(1, std::memory_order_relaxed);
    s.samples_dropped.fetch_add(samples, std::memory_order_relaxed);
    return false;
  }
  wake_workers();
  return true;
}

void Engine::close_session(SessionId id) {
  session(id).closed.store(true, std::memory_order_release);
  wake_workers();
}

void Engine::set_callback(std::function<void(Event&&)> cb) {
  WIVI_REQUIRE(session_count_.load(std::memory_order_acquire) == 0,
               "install the callback before opening sessions");
  callback_ = std::move(cb);
}

void Engine::deliver(Event&& e) {
  if (callback_) {
    callback_(std::move(e));
    return;
  }
  std::lock_guard lk(events_mu_);
  events_.push_back(std::move(e));
}

std::size_t Engine::poll(std::vector<Event>& out) {
  std::lock_guard lk(events_mu_);
  const std::size_t n = events_.size();
  if (n > 0) {
    out.insert(out.end(), std::make_move_iterator(events_.begin()),
               std::make_move_iterator(events_.end()));
    events_.clear();
  }
  return n;
}

Engine::SessionStats Engine::stats(SessionId id) const {
  const Session& s = session(id);
  SessionStats st;
  st.chunks_in = s.chunks_in.load(std::memory_order_relaxed);
  st.samples_in = s.samples_in.load(std::memory_order_relaxed);
  st.chunks_dropped = s.chunks_dropped.load(std::memory_order_relaxed);
  st.samples_dropped = s.samples_dropped.load(std::memory_order_relaxed);
  st.columns_out = s.columns_out.load(std::memory_order_relaxed);
  st.bits_out = s.bits_out.load(std::memory_order_relaxed);
  st.closed = s.closed.load(std::memory_order_acquire);
  st.finished = s.finished.load(std::memory_order_acquire);
  return st;
}

const StreamingTracker& Engine::tracker(SessionId id) const {
  return session(id).tracker;
}

const core::GestureDecoder::Result& Engine::gesture_result(
    SessionId id) const {
  const Session& s = session(id);
  WIVI_REQUIRE(s.gesture.has_value(), "session has no gesture decoder");
  return s.gesture->result();
}

const track::MultiTargetTracker& Engine::multi_tracker(SessionId id) const {
  const Session& s = session(id);
  WIVI_REQUIRE(s.multi.has_value(), "session has no multi-target tracker");
  return s.multi->tracker();
}

void Engine::drain() {
  const std::size_t n = session_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i)
    WIVI_REQUIRE(sessions_[i]->closed.load(std::memory_order_acquire),
                 "drain() with a session still open would never return");
  for (;;) {
    bool all_finished = true;
    for (std::size_t i = 0; i < n && all_finished; ++i)
      all_finished = sessions_[i]->finished.load(std::memory_order_acquire);
    if (all_finished) return;
    wake_workers();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void Engine::wake_workers() noexcept { wake_cv_.notify_all(); }

void Engine::worker_loop(int wid) {
  const auto stride = static_cast<std::size_t>(num_threads_);
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t n = session_count_.load(std::memory_order_acquire);
    bool did_work = false;
    // Own shard first: sessions are distributed id mod thread count so the
    // common case is contention-free.
    for (std::size_t s = static_cast<std::size_t>(wid); s < n; s += stride)
      did_work |= try_process(*sessions_[s]);
    if (!did_work) {
      // Shard idle: steal one batch from any session with pending work.
      for (std::size_t s = 0; s < n && !did_work; ++s)
        if (s % stride != static_cast<std::size_t>(wid))
          did_work = try_process(*sessions_[s]);
    }
    if (!did_work) {
      // Nothing anywhere: sleep briefly. The timeout bounds the window of
      // a missed notify (offer() notifies without taking wake_mu_).
      std::unique_lock lk(wake_mu_);
      wake_cv_.wait_for(lk, std::chrono::microseconds(200));
    }
  }
}

bool Engine::try_process(Session& s) {
  if (s.finished.load(std::memory_order_acquire)) return false;
  // Cheap pre-check before contending on the claim flag.
  if (s.ring.empty() && !s.closed.load(std::memory_order_acquire))
    return false;
  if (s.busy.exchange(true, std::memory_order_acquire)) return false;
  // Re-check under the claim: the pre-claim read can go stale if another
  // worker fails or finalises the session between the two lines, and a
  // dead session must never be processed again — popping its ring or
  // delivering further events (a second kError, say) for an id the
  // consumer already saw die would corrupt the per-session event
  // contract. All finished-transitions happen under the claim flag, so
  // this second read is authoritative.
  if (s.finished.load(std::memory_order_acquire)) {
    s.busy.store(false, std::memory_order_release);
    return false;
  }

  // An exception from a stage (WIVI_REQUIRE on pathological input) or
  // from a throwing user callback must not escape the worker thread —
  // that would std::terminate the whole service. It kills this session
  // only: kError is delivered and the session counts as finished so
  // drain() still returns.
  bool did_work = false;
  try {
    CVec chunk;
    for (int i = 0; i < cfg_.chunks_per_claim && s.ring.try_pop(chunk); ++i) {
      process_chunk(s, std::move(chunk));
      chunk.clear();
      did_work = true;
    }
    // Finalise only once the close flag is up AND the ring is empty; the
    // acquire on `closed` makes every pre-close push visible, so an empty
    // ring here really is the end of the stream.
    if (!did_work && s.closed.load(std::memory_order_acquire) &&
        s.ring.empty() && !s.finished.load(std::memory_order_relaxed)) {
      finalize(s);
      did_work = true;
    }
  } catch (const std::exception& e) {
    fail_session(s, e.what());
    did_work = true;
  } catch (...) {
    fail_session(s, "unknown exception");
    did_work = true;
  }
  s.busy.store(false, std::memory_order_release);
  return did_work;
}

void Engine::process_chunk(Session& s, CVec chunk) {
  const std::size_t before = s.tracker.num_columns();
  s.tracker.push(chunk);
  const std::size_t after = s.tracker.num_columns();
  if (after == before) return;
  s.columns_out.fetch_add(after - before, std::memory_order_relaxed);
  emit_new_columns(s, before);
}

/// Deliver the per-column events for columns [from, end) plus one update
/// round of each attached stage — the shared tail of both the per-chunk
/// streaming path and the whole-trace run_recorded() path.
void Engine::emit_new_columns(Session& s, std::size_t from) {
  const core::AngleTimeImage& img = s.tracker.image();
  const std::size_t after = img.num_times();
  if (after == from) return;

  if (s.cfg.emit_columns) {
    for (std::size_t c = from; c < after; ++c) {
      Event e;
      e.session = s.id;
      e.type = Event::Type::kColumn;
      e.column_index = c;
      e.time_sec = img.times_sec[c];
      e.column = img.columns[c];
      e.model_order = img.model_orders[c];
      deliver(std::move(e));
    }
  }
  if (s.counter) {
    s.counter->update(img);
    Event e;
    e.session = s.id;
    e.type = Event::Type::kCount;
    e.spatial_variance = s.counter->variance();
    e.columns_seen = s.counter->columns_seen();
    deliver(std::move(e));
  }
  if (s.multi) {
    s.multi->update(img);
    Event e;
    e.session = s.id;
    e.type = Event::Type::kTracks;
    e.tracks = s.multi->snapshots();
    e.num_confirmed = s.multi->tracker().num_confirmed();
    e.columns_seen = s.multi->columns_seen();
    deliver(std::move(e));
  }
  if (s.gesture) {
    auto bits = s.gesture->poll(img, /*flush=*/false);
    if (!bits.empty()) {
      s.bits_out.fetch_add(bits.size(), std::memory_order_relaxed);
      Event e;
      e.session = s.id;
      e.type = Event::Type::kBits;
      e.bits = std::move(bits);
      deliver(std::move(e));
    }
  }
}

void Engine::fail_session(Session& s, const char* what) noexcept {
  // Lifecycle guard (belt to try_process's braces): a session that is
  // already dead — it failed or finalised earlier — must not emit another
  // kError. Callers hold the claim flag, so this read cannot race a
  // concurrent transition.
  if (s.finished.load(std::memory_order_acquire)) return;
  try {
    Event e;
    e.session = s.id;
    e.type = Event::Type::kError;
    e.error = what;
    deliver(std::move(e));
  } catch (...) {
    // The callback threw again (or allocation failed): the error event is
    // lost but the session still dies cleanly.
  }
  s.finished.store(true, std::memory_order_release);
}

void Engine::finalize(Session& s) {
  if (s.gesture) {
    auto bits = s.gesture->poll(s.tracker.image(), /*flush=*/true);
    if (!bits.empty()) {
      s.bits_out.fetch_add(bits.size(), std::memory_order_relaxed);
      Event e;
      e.session = s.id;
      e.type = Event::Type::kBits;
      e.bits = std::move(bits);
      deliver(std::move(e));
    }
  }
  if (s.counter) s.counter->update(s.tracker.image());
  if (s.multi) s.multi->update(s.tracker.image());

  Event e;
  e.session = s.id;
  e.type = Event::Type::kFinished;
  e.columns_seen = s.tracker.num_columns();
  if (s.counter) e.spatial_variance = s.counter->variance();
  if (s.multi) e.num_confirmed = s.multi->tracker().num_confirmed();
  deliver(std::move(e));
  s.finished.store(true, std::memory_order_release);
}

}  // namespace wivi::rt
