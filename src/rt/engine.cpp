#include "src/rt/engine.hpp"

#include <algorithm>
#include <chrono>
#include <variant>

#include "src/common/error.hpp"
#include "src/rt/compat.hpp"

namespace wivi::rt {

Engine::Session::Session(Engine* engine, SessionId id_,
                         api::PipelineSpec spec_, IngestConfig ingest_)
    : id(id_),
      ingest(ingest_),
      pipeline(std::move(spec_)),
      ring(ingest_.ring_capacity) {
  // The conversion sink: every typed event the pipeline emits becomes one
  // legacy Event tagged with this session's id. Runs under the session's
  // claim flag (the pipeline is only driven from there), so the counter
  // updates and delivery order stay per-session sequential.
  pipeline.set_callback([engine, this](api::Event&& e) {
    if (const auto* b = std::get_if<api::BitsEvent>(&e))
      bits_out.fetch_add(b->bits.size(), std::memory_order_relaxed);
    engine->deliver(to_legacy_event(id, std::move(e)));
  });
}

Engine::Engine() : Engine(Config{}) {}

Engine::Engine(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.max_sessions >= 1, "max_sessions must be >= 1");
  WIVI_REQUIRE(cfg_.chunks_per_claim >= 1, "chunks_per_claim must be >= 1");
  num_threads_ = cfg_.num_threads > 0
                     ? cfg_.num_threads
                     : static_cast<int>(
                           std::max(1u, std::thread::hardware_concurrency()));
  sessions_.resize(cfg_.max_sessions);
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

Engine::~Engine() {
  stop_.store(true, std::memory_order_release);
  wake_workers();
  for (std::thread& t : workers_) t.join();
}

Engine::Session& Engine::session(SessionId id) const {
  WIVI_REQUIRE(id < session_count_.load(std::memory_order_acquire),
               "unknown session id");
  return *sessions_[id];
}

SessionId Engine::open_session(api::PipelineSpec spec, IngestConfig ingest) {
  std::lock_guard lk(register_mu_);
  const std::size_t n = session_count_.load(std::memory_order_relaxed);
  WIVI_REQUIRE(n < cfg_.max_sessions, "session table full");
  sessions_[n] = std::make_unique<Session>(this, static_cast<SessionId>(n),
                                           std::move(spec), ingest);
  session_count_.store(n + 1, std::memory_order_release);
  return static_cast<SessionId>(n);
}

SessionId Engine::open_session(SessionConfig cfg) {
  return open_session(to_pipeline_spec(cfg), to_ingest_config(cfg));
}

SessionId Engine::run_recorded(api::PipelineSpec spec, CSpan trace) {
  const SessionId id = open_session(std::move(spec), IngestConfig{});
  Session& s = session(id);
  // Claim the session for this thread. It is freshly opened with an empty
  // ring and no close flag, so no worker ever contends for it — the
  // exchange documents that this thread now plays the worker role.
  while (s.busy.exchange(true, std::memory_order_acquire))
    std::this_thread::yield();
  s.chunks_in.fetch_add(1, std::memory_order_relaxed);
  s.samples_in.fetch_add(trace.size(), std::memory_order_relaxed);
  try {
    s.pipeline.run(trace, api::Parallelism{num_threads_});
    s.columns_out.store(s.pipeline.columns_seen(), std::memory_order_relaxed);
    s.closed.store(true, std::memory_order_release);
    s.finished.store(true, std::memory_order_release);
  } catch (const std::exception& e) {
    s.closed.store(true, std::memory_order_release);
    fail_session(s, e.what());
  } catch (...) {
    s.closed.store(true, std::memory_order_release);
    fail_session(s, "unknown exception");
  }
  s.busy.store(false, std::memory_order_release);
  return id;
}

SessionId Engine::run_recorded(SessionConfig cfg, CSpan trace) {
  return run_recorded(to_pipeline_spec(cfg), trace);
}

bool Engine::offer(SessionId id, CVec chunk) {
  Session& s = session(id);
  WIVI_REQUIRE(!s.closed.load(std::memory_order_relaxed),
               "offer() on a closed session");
  const std::uint64_t samples = chunk.size();
  s.chunks_in.fetch_add(1, std::memory_order_relaxed);
  s.samples_in.fetch_add(samples, std::memory_order_relaxed);

  if (s.ingest.backpressure == Backpressure::kBlock) {
    while (!s.ring.try_push(std::move(chunk))) {
      // A stopped engine — or a failed (finished) session, whose ring no
      // worker will ever drain again — would leave this loop spinning
      // forever; fall through to the drop path instead.
      if (stop_.load(std::memory_order_acquire) ||
          s.finished.load(std::memory_order_acquire)) {
        s.chunks_dropped.fetch_add(1, std::memory_order_relaxed);
        s.samples_dropped.fetch_add(samples, std::memory_order_relaxed);
        return false;
      }
      wake_workers();
      std::this_thread::yield();
    }
    wake_workers();
    return true;
  }
  if (!s.ring.try_push(std::move(chunk))) {
    s.chunks_dropped.fetch_add(1, std::memory_order_relaxed);
    s.samples_dropped.fetch_add(samples, std::memory_order_relaxed);
    return false;
  }
  wake_workers();
  return true;
}

void Engine::close_session(SessionId id) {
  session(id).closed.store(true, std::memory_order_release);
  wake_workers();
}

void Engine::set_callback(std::function<void(Event&&)> cb) {
  WIVI_REQUIRE(session_count_.load(std::memory_order_acquire) == 0,
               "install the callback before opening sessions");
  callback_ = std::move(cb);
}

void Engine::deliver(Event&& e) {
  if (callback_) {
    callback_(std::move(e));
    return;
  }
  std::lock_guard lk(events_mu_);
  events_.push_back(std::move(e));
}

std::size_t Engine::poll(std::vector<Event>& out) {
  std::lock_guard lk(events_mu_);
  const std::size_t n = events_.size();
  if (n > 0) {
    out.insert(out.end(), std::make_move_iterator(events_.begin()),
               std::make_move_iterator(events_.end()));
    events_.clear();
  }
  return n;
}

Engine::SessionStats Engine::stats(SessionId id) const {
  const Session& s = session(id);
  SessionStats st;
  st.chunks_in = s.chunks_in.load(std::memory_order_relaxed);
  st.samples_in = s.samples_in.load(std::memory_order_relaxed);
  st.chunks_dropped = s.chunks_dropped.load(std::memory_order_relaxed);
  st.samples_dropped = s.samples_dropped.load(std::memory_order_relaxed);
  st.columns_out = s.columns_out.load(std::memory_order_relaxed);
  st.bits_out = s.bits_out.load(std::memory_order_relaxed);
  st.closed = s.closed.load(std::memory_order_acquire);
  st.finished = s.finished.load(std::memory_order_acquire);
  return st;
}

const api::Session& Engine::pipeline(SessionId id) const {
  return session(id).pipeline;
}

const StreamingTracker& Engine::tracker(SessionId id) const {
  return session(id).pipeline.tracker();
}

const core::GestureDecoder::Result& Engine::gesture_result(
    SessionId id) const {
  return session(id).pipeline.gesture_result();
}

const track::MultiTargetTracker& Engine::multi_tracker(SessionId id) const {
  return session(id).pipeline.multi_tracker();
}

void Engine::drain() {
  const std::size_t n = session_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i)
    WIVI_REQUIRE(sessions_[i]->closed.load(std::memory_order_acquire),
                 "drain() with a session still open would never return");
  for (;;) {
    bool all_finished = true;
    for (std::size_t i = 0; i < n && all_finished; ++i)
      all_finished = sessions_[i]->finished.load(std::memory_order_acquire);
    if (all_finished) return;
    wake_workers();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void Engine::wake_workers() noexcept { wake_cv_.notify_all(); }

void Engine::worker_loop(int wid) {
  const auto stride = static_cast<std::size_t>(num_threads_);
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t n = session_count_.load(std::memory_order_acquire);
    bool did_work = false;
    // Own shard first: sessions are distributed id mod thread count so the
    // common case is contention-free.
    for (std::size_t s = static_cast<std::size_t>(wid); s < n; s += stride)
      did_work |= try_process(*sessions_[s]);
    if (!did_work) {
      // Shard idle: steal one batch from any session with pending work.
      for (std::size_t s = 0; s < n && !did_work; ++s)
        if (s % stride != static_cast<std::size_t>(wid))
          did_work = try_process(*sessions_[s]);
    }
    if (!did_work) {
      // Nothing anywhere: sleep briefly. The timeout bounds the window of
      // a missed notify (offer() notifies without taking wake_mu_).
      std::unique_lock lk(wake_mu_);
      wake_cv_.wait_for(lk, std::chrono::microseconds(200));
    }
  }
}

bool Engine::try_process(Session& s) {
  if (s.finished.load(std::memory_order_acquire)) return false;
  // Cheap pre-check before contending on the claim flag.
  if (s.ring.empty() && !s.closed.load(std::memory_order_acquire))
    return false;
  if (s.busy.exchange(true, std::memory_order_acquire)) return false;
  // Re-check under the claim: the pre-claim read can go stale if another
  // worker fails or finalises the session between the two lines, and a
  // dead session must never be processed again — popping its ring or
  // delivering further events (a second kError, say) for an id the
  // consumer already saw die would corrupt the per-session event
  // contract. All finished-transitions happen under the claim flag, so
  // this second read is authoritative.
  if (s.finished.load(std::memory_order_acquire)) {
    s.busy.store(false, std::memory_order_release);
    return false;
  }

  // An exception from a pipeline stage (WIVI_REQUIRE on pathological
  // input) or from a throwing user callback must not escape the worker
  // thread — that would std::terminate the whole service. It kills this
  // session only: the pipeline delivers its own ErrorEvent (converted to
  // kError) on the way out, and the session counts as finished so drain()
  // still returns.
  bool did_work = false;
  try {
    CVec chunk;
    for (int i = 0; i < cfg_.chunks_per_claim && s.ring.try_pop(chunk); ++i) {
      process_chunk(s, std::move(chunk));
      chunk.clear();
      did_work = true;
    }
    // Finalise only once the close flag is up AND the ring is empty; the
    // acquire on `closed` makes every pre-close push visible, so an empty
    // ring here really is the end of the stream.
    if (!did_work && s.closed.load(std::memory_order_acquire) &&
        s.ring.empty() && !s.finished.load(std::memory_order_relaxed)) {
      finalize(s);
      did_work = true;
    }
  } catch (const std::exception& e) {
    fail_session(s, e.what());
    did_work = true;
  } catch (...) {
    fail_session(s, "unknown exception");
    did_work = true;
  }
  s.busy.store(false, std::memory_order_release);
  return did_work;
}

void Engine::process_chunk(Session& s, CVec chunk) {
  // The pipeline emits every event itself (through the conversion sink
  // installed at construction); the engine only maintains the counters.
  // The counter is synced even when event delivery throws mid-chunk: the
  // image columns were completed before delivery started, and some may
  // already have reached the consumer.
  try {
    s.pipeline.push(chunk);
  } catch (...) {
    s.columns_out.store(s.pipeline.columns_seen(), std::memory_order_relaxed);
    throw;
  }
  s.columns_out.store(s.pipeline.columns_seen(), std::memory_order_relaxed);
}

void Engine::finalize(Session& s) {
  s.pipeline.finish();  // final flush + FinishedEvent via the sink
  s.columns_out.store(s.pipeline.columns_seen(), std::memory_order_relaxed);
  s.finished.store(true, std::memory_order_release);
}

void Engine::fail_session(Session& s, const char* what) noexcept {
  // Lifecycle guard (belt to try_process's braces): a session that is
  // already dead — it failed or finalised earlier — must not emit another
  // kError. Callers hold the claim flag, so this read cannot race a
  // concurrent transition.
  if (s.finished.load(std::memory_order_acquire)) return;
  // The pipeline delivers its own ErrorEvent (already converted to kError
  // by the session sink) when one of its stages or the sink threw; only
  // engine-side failures outside the pipeline still need one here.
  if (!s.pipeline.failed()) {
    try {
      Event e;
      e.session = s.id;
      e.type = Event::Type::kError;
      e.error = what;
      deliver(std::move(e));
    } catch (...) {
      // The callback threw again (or allocation failed): the error event
      // is lost but the session still dies cleanly.
    }
  }
  s.finished.store(true, std::memory_order_release);
}

}  // namespace wivi::rt
