#include "src/rt/engine.hpp"

#include <algorithm>
#include <chrono>
#include <variant>

#include "src/common/error.hpp"
#include "src/obs/clock.hpp"
#include "src/obs/trace.hpp"
#include "src/plan/registry.hpp"
#include "src/rt/compat.hpp"

namespace wivi::rt {

namespace {

/// Monotonic now in nanoseconds — the watchdog/backoff/latency time base.
/// Routed through obs::now_ns so tests can install an obs::FakeClock and
/// drive watchdog deadlines deterministically.
std::int64_t now_ns() noexcept { return obs::now_ns(); }

std::int64_t sec_to_ns(double sec) noexcept {
  return static_cast<std::int64_t>(sec * 1e9);
}

}  // namespace

Engine::Metrics::Metrics(obs::Registry& r)
    : chunks_in(r.counter("wivi_engine_chunks_in_total")),
      samples_in(r.counter("wivi_engine_samples_in_total")),
      chunks_dropped(r.counter("wivi_engine_chunks_dropped_total")),
      samples_dropped(r.counter("wivi_engine_samples_dropped_total")),
      chunks_rejected(r.counter("wivi_engine_chunks_rejected_total")),
      samples_rejected(r.counter("wivi_engine_samples_rejected_total")),
      samples_processed(r.counter("wivi_engine_samples_processed_total")),
      samples_lost(r.counter("wivi_engine_samples_lost_total")),
      events(r.counter("wivi_engine_events_total")),
      stalls(r.counter("wivi_engine_stalls_total")),
      timeouts(r.counter("wivi_engine_timeouts_total")),
      restarts(r.counter("wivi_engine_restarts_total")),
      overload_transitions(
          r.counter("wivi_engine_overload_transitions_total")),
      sessions_opened(r.counter("wivi_engine_sessions_opened_total")),
      sessions_finished(r.counter("wivi_engine_sessions_finished_total")),
      ingress_wait_ns(r.histogram("wivi_ingress_wait_ns")),
      chunk_latency_ns(r.histogram("wivi_chunk_latency_ns")) {}

Engine::Session::Session(Engine* engine, SessionId id_,
                         api::PipelineSpec spec_, IngestConfig ingest_)
    : id(id_),
      ingest(std::move(ingest_)),
      spec(std::move(spec_)),
      ring(ingest.ring_capacity) {
  arm_pipeline(engine);
  const std::int64_t now = now_ns();
  last_activity_ns.store(now, std::memory_order_relaxed);
  if (ingest.stats_interval_sec > 0.0)
    next_stats_ns.store(now + sec_to_ns(ingest.stats_interval_sec),
                        std::memory_order_relaxed);
}

void Engine::Session::arm_pipeline(Engine* engine) {
  pipeline.emplace(api::PipelineSpec(spec));
  // The conversion sink: every typed event the pipeline emits becomes one
  // legacy Event tagged with this session's id. Runs under the session's
  // claim flag (the pipeline is only driven from there), so the counter
  // updates and delivery order stay per-session sequential. Terminal
  // events additionally carry the session's cumulative loss counters.
  pipeline->set_callback([engine, this](api::Event&& e) {
    if (const auto* b = std::get_if<api::BitsEvent>(&e))
      bits_out.fetch_add(b->bits.size(), std::memory_order_relaxed);
    Event out = to_legacy_event(id, std::move(e));
    if (out.type == Event::Type::kFinished ||
        out.type == Event::Type::kError) {
      out.chunks_dropped = chunks_dropped.load(std::memory_order_relaxed);
      out.samples_dropped = samples_dropped.load(std::memory_order_relaxed);
      out.chunks_rejected = chunks_rejected.load(std::memory_order_relaxed);
    }
    engine->deliver(std::move(out));
  });
  if (ingest.fault_hook) pipeline->set_fault_hook(ingest.fault_hook);
  const int f = fidelity.load(std::memory_order_relaxed);
  if (f > 1) pipeline->set_fidelity(f);
}

Engine::Engine() : Engine(Config{}) {}

Engine::Engine(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(cfg_.max_sessions >= 1, "max_sessions must be >= 1");
  WIVI_REQUIRE(cfg_.chunks_per_claim >= 1, "chunks_per_claim must be >= 1");
  num_threads_ = cfg_.num_threads > 0
                     ? cfg_.num_threads
                     : static_cast<int>(
                           std::max(1u, std::thread::hardware_concurrency()));
  sessions_.resize(cfg_.max_sessions);
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  for (int w = 0; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

Engine::~Engine() {
  stop_.store(true, std::memory_order_release);
  wake_workers();
  for (std::thread& t : workers_) t.join();
}

Engine::Session& Engine::session(SessionId id) const {
  WIVI_REQUIRE(id < session_count_.load(std::memory_order_acquire),
               "unknown session id");
  return *sessions_[id];
}

SessionId Engine::open_session(api::PipelineSpec spec, IngestConfig ingest) {
  WIVI_REQUIRE(ingest.restart.max_restarts >= 0,
               "restart.max_restarts must be >= 0");
  WIVI_REQUIRE(ingest.restart.backoff_sec >= 0.0,
               "restart.backoff_sec must be >= 0");
  WIVI_REQUIRE(ingest.watchdog.stall_timeout_sec >= 0.0,
               "watchdog.stall_timeout_sec must be >= 0");
  WIVI_REQUIRE(!ingest.overload.degrade ||
                   (ingest.overload.degraded_fidelity >= 2 &&
                    ingest.overload.degrade_after_drops >= 1 &&
                    ingest.overload.restore_after_chunks >= 1),
               "overload policy: degraded_fidelity >= 2 and both "
               "thresholds >= 1");
  WIVI_REQUIRE(ingest.stats_interval_sec >= 0.0,
               "stats_interval_sec must be >= 0");
  m_.sessions_opened.add();
  std::lock_guard lk(register_mu_);
  const std::size_t n = session_count_.load(std::memory_order_relaxed);
  WIVI_REQUIRE(n < cfg_.max_sessions, "session table full");
  sessions_[n] = std::make_unique<Session>(this, static_cast<SessionId>(n),
                                           std::move(spec), std::move(ingest));
  session_count_.store(n + 1, std::memory_order_release);
  return static_cast<SessionId>(n);
}

SessionId Engine::open_session(SessionConfig cfg) {
  return open_session(to_pipeline_spec(cfg), to_ingest_config(cfg));
}

SessionId Engine::run_recorded(api::PipelineSpec spec, CSpan trace) {
  const SessionId id = open_session(std::move(spec), IngestConfig{});
  Session& s = session(id);
  // Claim the session for this thread. It is freshly opened with an empty
  // ring and no close flag, so no worker ever contends for it — the
  // exchange documents that this thread now plays the worker role.
  while (s.busy.exchange(true, std::memory_order_acquire))
    std::this_thread::yield();
  s.chunks_in.fetch_add(1, std::memory_order_relaxed);
  s.samples_in.fetch_add(trace.size(), std::memory_order_relaxed);
  m_.chunks_in.add();
  m_.samples_in.add(trace.size());
  try {
    s.pipeline->run(trace, api::Parallelism{num_threads_});
    s.columns_out.store(s.pipeline->columns_seen(),
                        std::memory_order_relaxed);
    m_.samples_processed.add(trace.size());
    s.closed.store(true, std::memory_order_release);
    s.finished.store(true, std::memory_order_release);
    m_.sessions_finished.add();
  } catch (const TypedError& e) {
    // Includes an InputGuard rejection of the whole trace: in recorded
    // mode the trace *is* the stream, so a rejected trace is terminal.
    s.closed.store(true, std::memory_order_release);
    fail_session(s, e.code(), e.what());
  } catch (const std::exception& e) {
    s.closed.store(true, std::memory_order_release);
    fail_session(s, ErrorCode::kStageFailure, e.what());
  } catch (...) {
    s.closed.store(true, std::memory_order_release);
    fail_session(s, ErrorCode::kStageFailure, "unknown exception");
  }
  s.busy.store(false, std::memory_order_release);
  return id;
}

SessionId Engine::run_recorded(SessionConfig cfg, CSpan trace) {
  return run_recorded(to_pipeline_spec(cfg), trace);
}

bool Engine::offer(SessionId id, CVec chunk) {
  Session& s = session(id);
  WIVI_REQUIRE(!s.closed.load(std::memory_order_relaxed),
               "offer() on a closed session");
  const std::uint64_t samples = chunk.size();
  const std::int64_t now = now_ns();
  s.chunks_in.fetch_add(1, std::memory_order_relaxed);
  s.samples_in.fetch_add(samples, std::memory_order_relaxed);
  m_.chunks_in.add();
  m_.samples_in.add(samples);
  // Feed the watchdog: any offer — accepted or dropped — is proof the
  // producer is alive, and re-arms the one-shot kStalled advisory.
  s.last_activity_ns.store(now, std::memory_order_relaxed);
  s.stall_flagged.store(false, std::memory_order_relaxed);
  // A finished session (failed, timed out, restarts exhausted) has no
  // consumer left; pushing to its ring would strand the chunk outside
  // every counter, so count it as a drop up front.
  if (s.finished.load(std::memory_order_acquire)) {
    s.chunks_dropped.fetch_add(1, std::memory_order_relaxed);
    s.samples_dropped.fetch_add(samples, std::memory_order_relaxed);
    m_.chunks_dropped.add();
    m_.samples_dropped.add(samples);
    return false;
  }

  Ingested in{std::move(chunk), now};
  if (s.ingest.backpressure == Backpressure::kBlock) {
    while (!s.ring.try_push(std::move(in))) {
      // A stopped engine — or a failed (finished) session, whose ring no
      // worker will ever drain again — would leave this loop spinning
      // forever; fall through to the drop path instead.
      if (stop_.load(std::memory_order_acquire) ||
          s.finished.load(std::memory_order_acquire)) {
        s.chunks_dropped.fetch_add(1, std::memory_order_relaxed);
        s.samples_dropped.fetch_add(samples, std::memory_order_relaxed);
        m_.chunks_dropped.add();
        m_.samples_dropped.add(samples);
        return false;
      }
      wake_workers();
      std::this_thread::yield();
    }
    wake_workers();
    return true;
  }
  if (!s.ring.try_push(std::move(in))) {
    s.chunks_dropped.fetch_add(1, std::memory_order_relaxed);
    s.samples_dropped.fetch_add(samples, std::memory_order_relaxed);
    m_.chunks_dropped.add();
    m_.samples_dropped.add(samples);
    return false;
  }
  wake_workers();
  return true;
}

void Engine::close_session(SessionId id) {
  session(id).closed.store(true, std::memory_order_release);
  wake_workers();
}

void Engine::set_callback(std::function<void(Event&&)> cb) {
  WIVI_REQUIRE(session_count_.load(std::memory_order_acquire) == 0,
               "install the callback before opening sessions");
  callback_ = std::move(cb);
}

void Engine::deliver(Event&& e) {
  m_.events.add();
  if (callback_) {
    callback_(std::move(e));
    return;
  }
  std::lock_guard lk(events_mu_);
  events_.push_back(std::move(e));
}

std::size_t Engine::poll(std::vector<Event>& out) {
  std::lock_guard lk(events_mu_);
  const std::size_t n = events_.size();
  if (n > 0) {
    out.insert(out.end(), std::make_move_iterator(events_.begin()),
               std::make_move_iterator(events_.end()));
    events_.clear();
  }
  return n;
}

Engine::SessionStats Engine::stats(SessionId id) const {
  const Session& s = session(id);
  SessionStats st;
  st.chunks_in = s.chunks_in.load(std::memory_order_relaxed);
  st.samples_in = s.samples_in.load(std::memory_order_relaxed);
  st.chunks_dropped = s.chunks_dropped.load(std::memory_order_relaxed);
  st.samples_dropped = s.samples_dropped.load(std::memory_order_relaxed);
  st.chunks_rejected = s.chunks_rejected.load(std::memory_order_relaxed);
  st.samples_rejected = s.samples_rejected.load(std::memory_order_relaxed);
  st.columns_out = s.columns_out.load(std::memory_order_relaxed);
  st.bits_out = s.bits_out.load(std::memory_order_relaxed);
  st.restarts = s.restarts.load(std::memory_order_relaxed);
  st.fidelity = s.fidelity.load(std::memory_order_relaxed);
  st.stalled = s.stall_flagged.load(std::memory_order_relaxed);
  st.closed = s.closed.load(std::memory_order_acquire);
  st.finished = s.finished.load(std::memory_order_acquire);
  st.latency = s.latency.snapshot();
  return st;
}

Engine::EngineStats Engine::stats() const {
  EngineStats st;
  st.sessions = m_.sessions_opened.value();
  st.sessions_finished = m_.sessions_finished.value();
  st.chunks_in = m_.chunks_in.value();
  st.samples_in = m_.samples_in.value();
  st.chunks_dropped = m_.chunks_dropped.value();
  st.samples_dropped = m_.samples_dropped.value();
  st.chunks_rejected = m_.chunks_rejected.value();
  st.samples_rejected = m_.samples_rejected.value();
  st.samples_processed = m_.samples_processed.value();
  st.samples_lost = m_.samples_lost.value();
  st.events_out = m_.events.value();
  st.stalls = m_.stalls.value();
  st.timeouts = m_.timeouts.value();
  st.restarts = m_.restarts.value();
  st.overload_transitions = m_.overload_transitions.value();
  const std::size_t n = session_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    st.columns_out +=
        sessions_[i]->columns_out.load(std::memory_order_relaxed);
    st.bits_out += sessions_[i]->bits_out.load(std::memory_order_relaxed);
  }
  const plan::Stats ps = plan::registry().stats();
  st.plan_hits = ps.hits;
  st.plan_misses = ps.misses;
  st.plan_builds = ps.builds;
  st.plan_evictions = ps.evictions;
  st.plan_ghost_hits = ps.ghost_hits;
  st.plan_resident_plans = ps.resident_plans;
  st.plan_resident_bytes = ps.resident_bytes;
  st.ingress_wait = m_.ingress_wait_ns.snapshot();
  st.chunk_latency = m_.chunk_latency_ns.snapshot();
  // Network-ingress mirror: a net::Receiver constructed with this
  // engine's registry() interns the wivi_net_* family there; reading it
  // back by name keeps rt free of a compile-time dependency on net.
  const obs::Snapshot reg = registry_.snapshot();
  st.net_frames_in = reg.counter_value("wivi_net_frames_in_total");
  st.net_frames_accepted = reg.counter_value("wivi_net_frames_accepted_total");
  st.net_frames_rejected = reg.counter_value("wivi_net_frames_rejected_total");
  st.net_frames_dup = reg.counter_value("wivi_net_frames_dup_total");
  st.net_frames_evicted = reg.counter_value("wivi_net_frames_evicted_total");
  st.net_frames_in_flight = reg.counter_value("wivi_net_frames_in_flight");
  st.net_chunks_delivered = reg.counter_value("wivi_net_chunks_delivered_total");
  st.net_chunk_gaps = reg.counter_value("wivi_net_chunk_gaps_total");
  st.net_ring_full_drops = reg.counter_value("wivi_net_ring_full_drops_total");
  st.net_bytes_in = reg.counter_value("wivi_net_bytes_in_total");
  return st;
}

obs::Snapshot Engine::snapshot() const {
  obs::Snapshot snap = registry_.snapshot();
  snap.source = "wivi::rt::Engine";
  // Ring cursor sums and per-session output sums, aggregated on read —
  // the rings count for themselves, so recording costs the hot path
  // nothing (the PR-6 counters unified behind the obs naming scheme).
  std::uint64_t pushes = 0, pops = 0, drops = 0, columns = 0, bits = 0;
  const std::size_t n = session_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const Session& s = *sessions_[i];
    pushes += s.ring.pushes();
    pops += s.ring.pops();
    drops += s.ring.drops();
    columns += s.columns_out.load(std::memory_order_relaxed);
    bits += s.bits_out.load(std::memory_order_relaxed);
  }
  snap.add_counter("wivi_ring_pushes_total", pushes);
  snap.add_counter("wivi_ring_pops_total", pops);
  snap.add_counter("wivi_ring_drops_total", drops);
  snap.add_counter("wivi_engine_columns_total", columns);
  snap.add_counter("wivi_engine_bits_total", bits);
  // Shared-plan registry: process-wide cache counters plus the residency
  // gauges (counters and gauges share the scalar slot; see obs::Snapshot).
  const plan::Stats ps = plan::registry().stats();
  snap.add_counter("wivi_plan_hits_total", ps.hits);
  snap.add_counter("wivi_plan_misses_total", ps.misses);
  snap.add_counter("wivi_plan_builds_total", ps.builds);
  snap.add_counter("wivi_plan_evictions_total", ps.evictions);
  snap.add_counter("wivi_plan_ghost_hits_total", ps.ghost_hits);
  snap.add_counter("wivi_plan_resident_plans", ps.resident_plans);
  snap.add_counter("wivi_plan_resident_bytes", ps.resident_bytes);
  return snap;
}

void Engine::write_snapshot(std::ostream& os, obs::ExportFormat format) const {
  obs::write_snapshot(os, snapshot(), format);
}

void Engine::write_trace(std::ostream& os) const {
  std::vector<obs::TraceTrack> tracks;
  const std::size_t n = session_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const Session& s = *sessions_[i];
    if (!s.pipeline || s.pipeline->observer().trace().capacity() == 0)
      continue;
    tracks.push_back({static_cast<int>(s.id), "wivi session",
                      s.pipeline->observer().trace().records()});
  }
  obs::write_chrome_trace(os, tracks);
}

const api::Session& Engine::pipeline(SessionId id) const {
  return *session(id).pipeline;
}

const StreamingTracker& Engine::tracker(SessionId id) const {
  return session(id).pipeline->tracker();
}

const core::GestureDecoder::Result& Engine::gesture_result(
    SessionId id) const {
  return session(id).pipeline->gesture_result();
}

const track::MultiTargetTracker& Engine::multi_tracker(SessionId id) const {
  return session(id).pipeline->multi_tracker();
}

void Engine::drain() {
  const std::size_t n = session_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    // A fatal watchdog is the one other way a session is guaranteed to
    // resolve: its timeout turns an absent feeder into a terminal
    // kError(kTimeout), so waiting on it cannot hang.
    const Session& s = *sessions_[i];
    WIVI_REQUIRE(s.closed.load(std::memory_order_acquire) ||
                     s.finished.load(std::memory_order_acquire) ||
                     (s.ingest.watchdog.stall_timeout_sec > 0.0 &&
                      s.ingest.watchdog.timeout_is_fatal),
                 "drain() with a session still open would never return");
  }
  for (;;) {
    bool all_finished = true;
    for (std::size_t i = 0; i < n && all_finished; ++i)
      all_finished = sessions_[i]->finished.load(std::memory_order_acquire);
    if (all_finished) return;
    wake_workers();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

void Engine::wake_workers() noexcept { wake_cv_.notify_all(); }

void Engine::worker_loop(int wid) {
  const auto stride = static_cast<std::size_t>(num_threads_);
  while (!stop_.load(std::memory_order_acquire)) {
    const std::size_t n = session_count_.load(std::memory_order_acquire);
    bool did_work = false;
    // Own shard first: sessions are distributed id mod thread count so the
    // common case is contention-free.
    for (std::size_t s = static_cast<std::size_t>(wid); s < n; s += stride)
      did_work |= try_process(*sessions_[s]);
    if (!did_work) {
      // Shard idle: steal one batch from any session with pending work.
      for (std::size_t s = 0; s < n && !did_work; ++s)
        if (s % stride != static_cast<std::size_t>(wid))
          did_work = try_process(*sessions_[s]);
    }
    if (!did_work) {
      // Nothing anywhere: sleep briefly. The timeout bounds the window of
      // a missed notify (offer() notifies without taking wake_mu_).
      std::unique_lock lk(wake_mu_);
      wake_cv_.wait_for(lk, std::chrono::microseconds(200));
    }
  }
}

bool Engine::try_process(Session& s) {
  if (s.finished.load(std::memory_order_acquire)) return false;
  const std::int64_t now = now_ns();
  // Restart-backoff gate: a freshly re-armed session rests until its
  // resume instant — the engine-side pause that keeps a crash-looping
  // pipeline from burning a worker.
  if (s.resume_at_ns.load(std::memory_order_acquire) > now) return false;
  // Cheap pre-check before contending on the claim flag. An idle session
  // is still claimed when its watchdog may be due — silence is exactly
  // what the watchdog exists to observe — or when a periodic kStats
  // emission is due.
  bool idle_tick = false;
  if (s.ring.empty() && !s.closed.load(std::memory_order_acquire)) {
    const double timeout = s.ingest.watchdog.stall_timeout_sec;
    const std::int64_t silent =
        now - s.last_activity_ns.load(std::memory_order_relaxed);
    const bool advisory_due = timeout > 0.0 && silent >= sec_to_ns(timeout) &&
                              !s.stall_flagged.load(std::memory_order_relaxed);
    const bool fatal_due = timeout > 0.0 &&
                           s.ingest.watchdog.timeout_is_fatal &&
                           silent >= 2 * sec_to_ns(timeout);
    const bool stats_due =
        s.ingest.stats_interval_sec > 0.0 &&
        now >= s.next_stats_ns.load(std::memory_order_relaxed);
    if (!advisory_due && !fatal_due && !stats_due) return false;
    idle_tick = true;
  }
  if (s.busy.exchange(true, std::memory_order_acquire)) return false;
  // Re-check under the claim: the pre-claim read can go stale if another
  // worker fails or finalises the session between the two lines, and a
  // dead session must never be processed again — popping its ring or
  // delivering further events (a second kError, say) for an id the
  // consumer already saw die would corrupt the per-session event
  // contract. All finished-transitions happen under the claim flag, so
  // this second read is authoritative.
  if (s.finished.load(std::memory_order_acquire)) {
    s.busy.store(false, std::memory_order_release);
    return false;
  }

  // An exception from a pipeline stage (WIVI_REQUIRE on pathological
  // input) or from a throwing user callback must not escape the worker
  // thread — that would std::terminate the whole service. It fails this
  // session only: the pipeline delivers its own ErrorEvent (converted to
  // kError) on the way out, and handle_failure() either re-arms the
  // session under its RestartPolicy or marks it finished so drain()
  // still returns.
  bool did_work = false;
  try {
    if (idle_tick) {
      if (s.ingest.watchdog.stall_timeout_sec > 0.0) check_watchdog(s, now);
      if (!s.finished.load(std::memory_order_relaxed))
        maybe_emit_stats(s, now);
      did_work = true;
    } else {
      Ingested in;
      for (int i = 0; i < cfg_.chunks_per_claim && s.ring.try_pop(in); ++i) {
        process_chunk(s, std::move(in));
        check_overload(s);
        in.samples.clear();
        did_work = true;
      }
      if (did_work) maybe_emit_stats(s, now_ns());
      // Finalise only once the close flag is up AND the ring is empty; the
      // acquire on `closed` makes every pre-close push visible, so an
      // empty ring here really is the end of the stream.
      if (!did_work && s.closed.load(std::memory_order_acquire) &&
          s.ring.empty() && !s.finished.load(std::memory_order_relaxed)) {
        finalize(s);
        did_work = true;
      }
    }
  } catch (const TypedError& e) {
    handle_failure(s, e.code(), e.what());
    did_work = true;
  } catch (const std::exception& e) {
    handle_failure(s, ErrorCode::kStageFailure, e.what());
    did_work = true;
  } catch (...) {
    handle_failure(s, ErrorCode::kStageFailure, "unknown exception");
    did_work = true;
  }
  s.busy.store(false, std::memory_order_release);
  return did_work;
}

void Engine::process_chunk(Session& s, Ingested in) {
  const CVec& chunk = in.samples;
  // Ring wait: how long the chunk sat between offer() and this pop.
  const std::int64_t popped = now_ns();
  if (popped > in.ingress_ns)
    m_.ingress_wait_ns.record(
        static_cast<std::uint64_t>(popped - in.ingress_ns));
  // The pipeline emits every event itself (through the conversion sink
  // installed at arm time); the engine only maintains the counters. The
  // counter is synced even when event delivery throws mid-chunk: the
  // image columns were completed before delivery started, and some may
  // already have reached the consumer.
  try {
    s.pipeline->push(chunk);
  } catch (const TypedError& e) {
    s.columns_out.store(s.columns_base + s.pipeline->columns_seen(),
                        std::memory_order_relaxed);
    if (e.code() == ErrorCode::kInvalidChunk) {
      // InputGuard rejection: by contract a no-op for the pipeline — the
      // session stays healthy, the malformed chunk is only counted.
      s.chunks_rejected.fetch_add(1, std::memory_order_relaxed);
      s.samples_rejected.fetch_add(chunk.size(), std::memory_order_relaxed);
      m_.chunks_rejected.add();
      m_.samples_rejected.add(chunk.size());
      return;
    }
    m_.samples_lost.add(chunk.size());
    throw;
  } catch (...) {
    s.columns_out.store(s.columns_base + s.pipeline->columns_seen(),
                        std::memory_order_relaxed);
    m_.samples_lost.add(chunk.size());
    throw;
  }
  s.columns_out.store(s.columns_base + s.pipeline->columns_seen(),
                      std::memory_order_relaxed);
  m_.samples_processed.add(chunk.size());
  // End-to-end chunk latency: offer() to fully processed (events
  // delivered). Engine-wide and per-session (the kStats payload).
  const std::int64_t done = now_ns();
  if (done > in.ingress_ns) {
    const auto lat = static_cast<std::uint64_t>(done - in.ingress_ns);
    m_.chunk_latency_ns.record(lat);
    s.latency.record(lat);
  }
}

/// The degradation ladder (runs under the claim flag, after each processed
/// chunk): trip down to the coarse angle grid once enough chunks drowned
/// since the last transition, climb back to full fidelity only after a
/// hysteresis window of drop-free processing.
void Engine::check_overload(Session& s) {
  const OverloadPolicy& op = s.ingest.overload;
  if (!op.degrade) return;
  const std::uint64_t drops = s.chunks_dropped.load(std::memory_order_relaxed);
  const std::uint64_t fresh = drops - s.drops_acked;
  const bool degraded = s.fidelity.load(std::memory_order_relaxed) > 1;
  if (!degraded) {
    if (fresh < op.degrade_after_drops) return;
    s.pipeline->set_fidelity(op.degraded_fidelity);
    s.fidelity.store(op.degraded_fidelity, std::memory_order_relaxed);
  } else if (fresh > 0) {
    s.drops_acked = drops;  // still drowning: restart the clean window
    s.clean_chunks = 0;
    return;
  } else if (++s.clean_chunks < op.restore_after_chunks) {
    return;
  } else {
    s.pipeline->set_fidelity(1);
    s.fidelity.store(1, std::memory_order_relaxed);
  }
  s.drops_acked = drops;
  s.clean_chunks = 0;
  m_.overload_transitions.add();
  Event e;
  e.session = s.id;
  e.type = Event::Type::kOverload;
  e.degraded = !degraded;
  e.fidelity = s.fidelity.load(std::memory_order_relaxed);
  e.chunks_dropped = drops;
  e.samples_dropped = s.samples_dropped.load(std::memory_order_relaxed);
  deliver(std::move(e));
}

/// Watchdog tick for an idle session (runs under the claim flag): one
/// advisory kStalled per silence, then — at twice the deadline, when the
/// timeout is fatal — a terminal kError of ErrorCode::kTimeout.
void Engine::check_watchdog(Session& s, std::int64_t now) {
  const std::int64_t deadline = sec_to_ns(s.ingest.watchdog.stall_timeout_sec);
  const std::int64_t silent =
      now - s.last_activity_ns.load(std::memory_order_relaxed);
  if (silent < deadline) return;  // fed between pre-check and claim
  if (s.ingest.watchdog.timeout_is_fatal && silent >= 2 * deadline) {
    m_.timeouts.add();
    fail_session(s, ErrorCode::kTimeout,
                 "watchdog: feeder silent past twice the liveness deadline");
    return;
  }
  if (s.stall_flagged.exchange(true, std::memory_order_relaxed)) return;
  m_.stalls.add();
  Event e;
  e.session = s.id;
  e.type = Event::Type::kStalled;
  e.silent_sec = static_cast<double>(silent) * 1e-9;
  e.chunks_in = s.chunks_in.load(std::memory_order_relaxed);
  deliver(std::move(e));
}

/// Periodic per-session telemetry (runs under the claim flag): one kStats
/// event carrying the session's SessionStats, at most once per
/// stats_interval_sec.
void Engine::maybe_emit_stats(Session& s, std::int64_t now) {
  if (s.ingest.stats_interval_sec <= 0.0) return;
  if (now < s.next_stats_ns.load(std::memory_order_relaxed)) return;
  s.next_stats_ns.store(now + sec_to_ns(s.ingest.stats_interval_sec),
                        std::memory_order_relaxed);
  Event e;
  e.session = s.id;
  e.type = Event::Type::kStats;
  e.stats = stats(s.id);
  deliver(std::move(e));
}

void Engine::finalize(Session& s) {
  s.pipeline->finish();  // final flush + FinishedEvent via the sink
  s.columns_out.store(s.columns_base + s.pipeline->columns_seen(),
                      std::memory_order_relaxed);
  s.finished.store(true, std::memory_order_release);
  m_.sessions_finished.add();
}

/// A pipeline (or engine-side delivery) failure under the claim flag:
/// either re-arm the session under its RestartPolicy — kRecovered follows
/// the failure's kError, processing resumes after the backoff — or let
/// the failure be terminal via fail_session().
void Engine::handle_failure(Session& s, ErrorCode code,
                            const char* what) noexcept {
  const RestartPolicy& rp = s.ingest.restart;
  const int used = s.restarts.load(std::memory_order_relaxed);
  if (used >= rp.max_restarts) {
    fail_session(s, code, what);
    return;
  }
  // Re-arm: a fresh pipeline (same spec, same sink/hook/fidelity wiring)
  // continues consuming the ring. The dead pipeline already delivered its
  // own kError; the kRecovered below tells the consumer the session
  // lives on. If re-compilation itself throws, the restart is abandoned
  // and the failure becomes terminal.
  try {
    s.columns_base += s.pipeline->columns_seen();
    s.arm_pipeline(this);
  } catch (...) {
    fail_session(s, code, what);
    return;
  }
  const int r = used + 1;
  s.restarts.store(r, std::memory_order_relaxed);
  m_.restarts.add();
  if (rp.backoff_sec > 0.0) {
    const double scale = static_cast<double>(std::uint64_t{1} << (r - 1));
    s.resume_at_ns.store(now_ns() + sec_to_ns(rp.backoff_sec * scale),
                         std::memory_order_release);
  }
  try {
    Event e;
    e.session = s.id;
    e.type = Event::Type::kRecovered;
    e.restarts = r;
    e.code = code;
    e.error = what;
    deliver(std::move(e));
  } catch (...) {
    // The callback threw again (or allocation failed): the kRecovered is
    // lost but the session is restarted all the same.
  }
}

void Engine::fail_session(Session& s, ErrorCode code,
                          const char* what) noexcept {
  // Lifecycle guard (belt to try_process's braces): a session that is
  // already dead — it failed or finalised earlier — must not emit another
  // kError. Callers hold the claim flag, so this read cannot race a
  // concurrent transition.
  if (s.finished.load(std::memory_order_acquire)) return;
  // The pipeline delivers its own ErrorEvent (already converted to kError
  // by the session sink) when one of its stages or the sink threw; only
  // engine-side failures outside the pipeline still need one here.
  if (!s.pipeline || !s.pipeline->failed()) {
    try {
      Event e;
      e.session = s.id;
      e.type = Event::Type::kError;
      e.error = what;
      e.code = code;
      e.chunks_dropped = s.chunks_dropped.load(std::memory_order_relaxed);
      e.samples_dropped = s.samples_dropped.load(std::memory_order_relaxed);
      e.chunks_rejected = s.chunks_rejected.load(std::memory_order_relaxed);
      deliver(std::move(e));
    } catch (...) {
      // The callback threw again (or allocation failed): the error event
      // is lost but the session still dies cleanly.
    }
  }
  // Chunks still queued behind a terminal failure will never be popped:
  // count their samples as lost so the engine-wide conservation law
  // (samples_in == processed + dropped + rejected + lost) stays exact.
  // Callers hold the claim flag, so draining the consumer side is safe.
  Ingested in;
  while (s.ring.try_pop(in)) m_.samples_lost.add(in.samples.size());
  s.finished.store(true, std::memory_order_release);
  m_.sessions_finished.add();
}

}  // namespace wivi::rt
