#include "src/rt/compat.hpp"

#include <utility>
#include <variant>

#include "src/common/error.hpp"

namespace wivi::rt {

api::PipelineSpec to_pipeline_spec(const SessionConfig& cfg) {
  api::PipelineSpec spec;
  spec.image.tracker = cfg.tracker;
  spec.image.emit_columns = cfg.emit_columns;
  spec.t0 = cfg.t0;
  if (cfg.track_targets) spec.track = api::TrackStage{cfg.multi_track};
  if (cfg.decode_gestures) spec.gesture = api::GestureStage{cfg.gesture};
  if (cfg.count_movers) spec.count = api::CountStage{cfg.counter_cap_db};
  return spec;
}

IngestConfig to_ingest_config(const SessionConfig& cfg) {
  return IngestConfig{cfg.ring_capacity, cfg.backpressure};
}

SessionConfig to_session_config(const api::PipelineSpec& spec,
                                const IngestConfig& ingest) {
  SessionConfig cfg;
  cfg.tracker = spec.image.tracker;
  cfg.emit_columns = spec.image.emit_columns;
  cfg.t0 = spec.t0;
  if (spec.track) {
    cfg.track_targets = true;
    cfg.multi_track = spec.track->tracker;
  }
  if (spec.gesture) {
    cfg.decode_gestures = true;
    cfg.gesture = spec.gesture->gesture;
  }
  if (spec.count) {
    cfg.count_movers = true;
    cfg.counter_cap_db = spec.count->cap_db;
  }
  cfg.ring_capacity = ingest.ring_capacity;
  cfg.backpressure = ingest.backpressure;
  return cfg;
}

Event to_legacy_event(SessionId session, api::Event e) {
  Event out;
  out.session = session;
  std::visit(
      [&out](auto&& ev) {
        using T = std::decay_t<decltype(ev)>;
        if constexpr (std::is_same_v<T, api::ColumnEvent>) {
          out.type = Event::Type::kColumn;
          out.column_index = ev.column_index;
          out.time_sec = ev.time_sec;
          out.column = std::move(ev.column);
          out.model_order = ev.model_order;
        } else if constexpr (std::is_same_v<T, api::TracksEvent>) {
          out.type = Event::Type::kTracks;
          out.tracks = std::move(ev.tracks);
          out.num_confirmed = ev.num_confirmed;
          out.columns_seen = ev.columns_seen;
        } else if constexpr (std::is_same_v<T, api::BitsEvent>) {
          out.type = Event::Type::kBits;
          out.bits = std::move(ev.bits);
        } else if constexpr (std::is_same_v<T, api::CountEvent>) {
          out.type = Event::Type::kCount;
          out.spatial_variance = ev.spatial_variance;
          out.columns_seen = ev.columns_seen;
        } else if constexpr (std::is_same_v<T, api::FinishedEvent>) {
          out.type = Event::Type::kFinished;
          out.columns_seen = ev.columns_seen;
          out.spatial_variance = ev.spatial_variance;
          out.num_confirmed = ev.num_confirmed;
        } else if constexpr (std::is_same_v<T, api::ErrorEvent>) {
          out.type = Event::Type::kError;
          out.error = std::move(ev.message);
          out.code = ev.code;
        } else if constexpr (std::is_same_v<T, api::StalledEvent>) {
          out.type = Event::Type::kStalled;
          out.silent_sec = ev.silent_sec;
          out.chunks_in = ev.chunks_seen;
        } else if constexpr (std::is_same_v<T, api::RecoveredEvent>) {
          out.type = Event::Type::kRecovered;
          out.restarts = ev.restarts;
          out.code = ev.cause;
          out.error = std::move(ev.message);
        } else if constexpr (std::is_same_v<T, api::StatsEvent>) {
          out.type = Event::Type::kStats;
          out.stats.chunks_in = ev.chunks_in;
          out.stats.samples_in = ev.samples_in;
          out.stats.chunks_dropped = ev.chunks_dropped;
          out.stats.samples_dropped = ev.samples_dropped;
          out.stats.chunks_rejected = ev.chunks_rejected;
          out.stats.samples_rejected = ev.samples_rejected;
          out.stats.columns_out = ev.columns_out;
          out.stats.bits_out = ev.bits_out;
          out.stats.restarts = ev.restarts;
          out.stats.fidelity = ev.fidelity;
          out.stats.stalled = ev.stalled;
          out.stats.latency = ev.latency;
        } else {
          static_assert(std::is_same_v<T, api::OverloadEvent>);
          out.type = Event::Type::kOverload;
          out.degraded = ev.degraded;
          out.fidelity = ev.fidelity;
          out.chunks_dropped = ev.chunks_dropped;
          out.samples_dropped = ev.samples_dropped;
        }
      },
      std::move(e));
  return out;
}

api::Event to_api_event(const Event& e) {
  switch (e.type) {
    case Event::Type::kColumn:
      return api::ColumnEvent{e.column_index, e.time_sec, e.column,
                              e.model_order};
    case Event::Type::kTracks:
      return api::TracksEvent{e.tracks, e.num_confirmed, e.columns_seen};
    case Event::Type::kBits:
      return api::BitsEvent{e.bits};
    case Event::Type::kCount:
      return api::CountEvent{e.spatial_variance, e.columns_seen};
    case Event::Type::kFinished:
      return api::FinishedEvent{e.columns_seen, e.spatial_variance,
                                e.num_confirmed};
    case Event::Type::kError:
      return api::ErrorEvent{e.error, e.code};
    case Event::Type::kStalled:
      return api::StalledEvent{e.silent_sec, e.chunks_in};
    case Event::Type::kRecovered:
      return api::RecoveredEvent{e.restarts, e.code, e.error};
    case Event::Type::kOverload:
      return api::OverloadEvent{e.degraded, e.fidelity, e.chunks_dropped,
                                e.samples_dropped};
    case Event::Type::kStats:
      return api::StatsEvent{e.stats.chunks_in,        e.stats.samples_in,
                             e.stats.chunks_dropped,   e.stats.samples_dropped,
                             e.stats.chunks_rejected,  e.stats.samples_rejected,
                             e.stats.columns_out,      e.stats.bits_out,
                             e.stats.restarts,         e.stats.fidelity,
                             e.stats.stalled,          e.stats.latency};
  }
  throw InvalidArgument("unknown legacy event type");
}

}  // namespace wivi::rt
