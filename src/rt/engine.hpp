/// @file
/// The streaming runtime engine: N live sensor sessions multiplexed over a
/// shared worker pool.
///
/// Since the wivi::api facade landed, the Engine is a *thin multiplexer*:
/// each session owns a lock-free SPSC ring of sample chunks plus one
/// compiled wivi::Session pipeline; a pool of workers drains the rings —
/// each worker walks its own shard (session id mod thread count) first and
/// steals from any other shard when its own is idle. A per-session claim
/// flag guarantees at most one worker touches a session's pipeline at a
/// time, so per-session results are in stream order and independent of
/// thread count and interleaving (pinned by test_rt_engine). Results come
/// back either through poll() or a caller-supplied callback (invoked on
/// worker threads).
///
/// Sessions are opened from an api::PipelineSpec plus an IngestConfig (the
/// ring/backpressure knobs that only exist in the multiplexed setting).
/// The legacy SessionConfig/Event surface is kept as deprecated shims that
/// convert to/from the api types (src/rt/compat.hpp).
///
/// Ownership/threading rules are spelled out in DESIGN.md §4. The short
/// version: one producer thread per session at a time; Engine owns every
/// Session; a session's pipeline is only ever touched under its claim
/// flag.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.hpp"
#include "src/obs/metrics.hpp"
#include "src/rt/spsc_ring.hpp"
#include "src/rt/streaming.hpp"

namespace wivi::rt {

/// Handle identifying one sensor session within an Engine.
using SessionId = std::uint32_t;

/// What to do when a session's ring is full at offer() time.
enum class Backpressure {
  /// Drop the offered chunk (and count it). Keeps the producer real-time
  /// at the cost of stream gaps — the live-capture default.
  kDropNewest,
  /// Make offer() wait (yield-spin) until the ring has room. Lossless and
  /// deterministic; for replayed traces and tests.
  kBlock,
};

/// Bounded-retry recovery of a failed multiplexed session (DESIGN.md §9):
/// when a pipeline stage, sink or fault hook throws, the engine re-arms
/// the session with a freshly compiled pipeline (same spec) instead of
/// killing it — up to `max_restarts` times, each restart announced by a
/// kRecovered event following the failure's kError. The restarted
/// pipeline starts a new image (earlier columns are lost, column indices
/// restart from 0) and continues consuming the ring where the dead one
/// stopped. With the default `max_restarts == 0` every failure is
/// terminal, exactly the legacy single-kError contract.
struct RestartPolicy {
  /// Restarts allowed over the session's lifetime (0 = never restart).
  int max_restarts = 0;
  /// Delay before restart r resumes processing: backoff_sec * 2^(r-1)
  /// (exponential). 0 resumes immediately.
  double backoff_sec = 0.0;
};

/// Per-session liveness watchdog (DESIGN.md §9): when the feeder goes
/// silent for `stall_timeout_sec`, the engine emits one advisory kStalled
/// event (re-armed by the next offer()); if silence reaches twice the
/// deadline and `timeout_is_fatal`, the session dies with a terminal
/// kError of ErrorCode::kTimeout — which is also how a session that was
/// opened but never fed nor closed resolves instead of hanging drain().
struct WatchdogConfig {
  /// Liveness deadline in seconds; 0 disables the watchdog.
  double stall_timeout_sec = 0.0;
  /// Kill the session (kError, ErrorCode::kTimeout) when silence reaches
  /// 2 * stall_timeout_sec. When false the watchdog only ever advises.
  bool timeout_is_fatal = true;
};

/// Graceful degradation under overload (DESIGN.md §9): when a kDropNewest
/// session keeps losing chunks to a full ring, the engine steps the
/// session down to a coarser MUSIC angle grid
/// (wivi::Session::set_fidelity) so each column costs less and the worker
/// catches up; after a hysteresis window of drop-free input it restores
/// full fidelity. Both transitions are announced with kOverload events.
struct OverloadPolicy {
  /// Master switch; false leaves fidelity alone no matter the drops.
  bool degrade = false;
  /// Enter degraded mode after this many chunks dropped since the last
  /// transition (the ladder's trip point).
  std::uint64_t degrade_after_drops = 8;
  /// Angle-grid decimation while degraded (>= 2 to be a real step down).
  int degraded_fidelity = 4;
  /// Restore full fidelity after this many consecutively processed chunks
  /// with no new drops (the hysteresis that prevents flapping).
  std::uint64_t restore_after_chunks = 64;
};

/// The ingestion-edge knobs of one multiplexed session — everything about
/// *feeding* the pipeline that has no meaning for a standalone
/// wivi::Session (which is handed its chunks directly).
struct IngestConfig {
  /// Ingest ring depth in chunks (rounded up to a power of two).
  std::size_t ring_capacity = 256;
  /// What offer() does when the ring is full.
  Backpressure backpressure = Backpressure::kDropNewest;
  /// Bounded-retry recovery of pipeline failures (default: none).
  RestartPolicy restart;
  /// Feeder-liveness watchdog (default: disabled).
  WatchdogConfig watchdog;
  /// Degrade-under-overload ladder (default: disabled).
  OverloadPolicy overload;
  /// Chaos-engineering failpoint forwarded to
  /// wivi::Session::set_fault_hook on every (re)armed pipeline — how the
  /// fault-injection suites script stage exceptions at exact chunk
  /// indices inside a multiplexed session (fault::throw_hook).
  std::function<void(std::size_t)> fault_hook;
  /// Emit a periodic kStats event carrying the session's SessionStats
  /// (cumulative counters + chunk-latency summary) at least this many
  /// seconds apart — in-band telemetry a sink can watch without polling
  /// Engine::stats(). Emitted from whichever worker holds the session's
  /// claim, including on idle sessions. 0 (the default) disables it.
  double stats_interval_sec = 0.0;
};

/// Point-in-time per-session counters (see Engine::stats(SessionId)).
struct SessionStats {
  std::uint64_t chunks_in = 0;         ///< chunks offered
  std::uint64_t samples_in = 0;        ///< samples offered
  std::uint64_t chunks_dropped = 0;    ///< chunks lost to backpressure
  std::uint64_t samples_dropped = 0;   ///< samples lost to backpressure
  std::uint64_t chunks_rejected = 0;   ///< chunks the InputGuard rejected
  std::uint64_t samples_rejected = 0;  ///< samples in rejected chunks
  std::uint64_t columns_out = 0;       ///< image columns produced
  std::uint64_t bits_out = 0;          ///< gesture bits emitted
  int restarts = 0;                    ///< RestartPolicy restarts consumed
  int fidelity = 1;                    ///< angle decimation in effect
  bool stalled = false;                ///< watchdog advisory in effect
  bool closed = false;                 ///< close_session() called
  bool finished = false;               ///< drained and finalised (or dead)
  /// Offer→processed chunk latency summary, nanoseconds (fills only while
  /// obs recording is enabled).
  obs::HistogramSnapshot latency;
};

/// Per-session processing configuration.
/// @deprecated Legacy bool-flag surface, kept as a shim: it converts to an
/// api::PipelineSpec + IngestConfig (src/rt/compat.hpp). New code should
/// open sessions with Engine::open_session(api::PipelineSpec, IngestConfig).
struct SessionConfig {
  /// Image-stage (smoothed MUSIC) configuration of the session.
  core::MotionTracker::Config tracker;
  /// Absolute time of the session's first sample.
  double t0 = 0.0;
  /// Emit a kColumn event per completed image column (costs one column
  /// copy; turn off for counting-only workloads).
  bool emit_columns = true;
  /// Attach a gesture stage to the session.
  bool decode_gestures = false;
  /// Attach a counting stage to the session.
  bool count_movers = false;
  /// Attach a multi-target tracking stage: kTracks events carry the live
  /// multi-target snapshots after each processed batch of columns.
  bool track_targets = false;
  /// Gesture-stage configuration (used when decode_gestures).
  StreamingGesture::Config gesture;
  /// Multi-target tracking configuration (used when track_targets).
  track::MultiTargetTracker::Config multi_track;
  /// dB cap of the counting stage (used when count_movers).
  double counter_cap_db = 60.0;
  /// Ingest ring depth in chunks (rounded up to a power of two).
  std::size_t ring_capacity = 256;
  /// What offer() does when the ring is full.
  Backpressure backpressure = Backpressure::kDropNewest;
};

/// One unit of output, delivered via poll() or the callback. Per-session
/// event order is deterministic; the interleaving across sessions is not.
/// @deprecated Legacy fat-union event, kept as a shim over the typed
/// api::Event variant the pipelines emit: which payload fields are
/// meaningful depends on `type`. Convert with rt::to_api_event() or
/// consume api::Events from a standalone wivi::Session instead.
struct Event {
  /// What this event reports.
  enum class Type {
    kColumn,     ///< one new angle-time image column
    kBits,       ///< newly stable decoded gesture bits
    kCount,      ///< running spatial-variance update (after new columns)
    kTracks,     ///< live multi-target snapshots (after new columns)
    kFinished,   ///< session closed, drained and finalised
    kError,      ///< session failed; terminal unless a kRecovered follows
    kStalled,    ///< watchdog advisory: the feeder has gone silent
    kRecovered,  ///< the session restarted under its RestartPolicy
    kOverload,   ///< degradation-ladder transition (OverloadPolicy)
    kStats,      ///< periodic telemetry (IngestConfig::stats_interval_sec)
  };

  /// Session this event belongs to.
  SessionId session = 0;
  /// Event kind; selects which of the payload fields below are meaningful.
  Type type = Type::kColumn;

  /// kColumn: index of the new column in the session's image.
  std::size_t column_index = 0;
  /// kColumn: absolute time of the column (window centre).
  double time_sec = 0.0;
  /// kColumn: linear pseudospectrum over the session's angle grid.
  RVec column;
  /// kColumn: MUSIC model order of the column.
  int model_order = 0;

  /// kBits: newly stable decoded gesture bits, time order.
  std::vector<core::GestureDecoder::DecodedBit> bits;

  /// kTracks: live track snapshots after the newest processed column.
  std::vector<track::TrackSnapshot> tracks;
  /// kTracks / kFinished (when tracking): confirmed-target count.
  std::size_t num_confirmed = 0;

  /// kCount / kFinished (when counting): running spatial variance.
  double spatial_variance = 0.0;
  /// kCount / kTracks / kFinished: image columns processed so far.
  std::size_t columns_seen = 0;

  /// kError: what the failing stage or callback threw.
  /// kRecovered: what forced the restart.
  std::string error;
  /// kError / kRecovered: machine-readable failure class
  /// (wivi::error_code_name() for the string form).
  ErrorCode code = ErrorCode::kNone;

  /// kStalled: how long the feeder has been silent.
  double silent_sec = 0.0;
  /// kStalled: chunks the session had received at stall detection.
  std::uint64_t chunks_in = 0;
  /// kRecovered: restarts consumed so far, this one included.
  int restarts = 0;
  /// kOverload: true entering degraded mode, false restoring fidelity.
  bool degraded = false;
  /// kOverload: angle-grid decimation now in effect (1 = full fidelity).
  int fidelity = 1;
  /// kOverload / kFinished / kError: cumulative chunks lost to
  /// backpressure.
  std::uint64_t chunks_dropped = 0;
  /// kOverload / kFinished / kError: cumulative samples lost to
  /// backpressure.
  std::uint64_t samples_dropped = 0;
  /// kFinished / kError: cumulative chunks rejected by the InputGuard.
  std::uint64_t chunks_rejected = 0;
  /// kStats: the session's cumulative counters and latency summary.
  SessionStats stats;
};

/// The session table plus worker pool: opens sessions, ingests chunks,
/// drains them through their compiled pipelines and delivers Events.
class Engine {
 public:
  /// Engine-wide (not per-session) configuration.
  struct Config {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    int num_threads = 0;
    /// Session table size (fixed at start so the lock-free reader side
    /// never chases a reallocating vector).
    std::size_t max_sessions = 1024;
    /// Chunks a worker processes per claim: the work-stealing granularity
    /// and the bound on how long one session monopolises a worker.
    int chunks_per_claim = 4;
  };

  /// Per-session counters, now a namespace-scope type (the kStats Event
  /// carries one); this alias keeps the historical Engine::SessionStats
  /// spelling working.
  using SessionStats = wivi::rt::SessionStats;

  /// Engine-wide cumulative telemetry (see stats() with no argument):
  /// sums over every session this engine has ever opened.
  struct EngineStats {
    std::uint64_t sessions = 0;           ///< sessions opened
    std::uint64_t sessions_finished = 0;  ///< sessions drained or dead
    std::uint64_t chunks_in = 0;          ///< chunks offered, all sessions
    std::uint64_t samples_in = 0;         ///< samples offered
    std::uint64_t chunks_dropped = 0;     ///< chunks lost to backpressure
    std::uint64_t samples_dropped = 0;    ///< samples lost to backpressure
    std::uint64_t chunks_rejected = 0;    ///< InputGuard rejections
    std::uint64_t samples_rejected = 0;   ///< samples in rejected chunks
    std::uint64_t samples_processed = 0;  ///< samples fully processed
    std::uint64_t samples_lost = 0;       ///< samples in chunks dying mid-failure
    std::uint64_t columns_out = 0;        ///< image columns produced
    std::uint64_t bits_out = 0;           ///< gesture bits emitted
    std::uint64_t events_out = 0;         ///< events delivered
    std::uint64_t stalls = 0;             ///< watchdog advisories fired
    std::uint64_t timeouts = 0;           ///< fatal watchdog timeouts
    std::uint64_t restarts = 0;           ///< RestartPolicy restarts
    std::uint64_t overload_transitions = 0;  ///< degradation-ladder moves
    // Shared-plan registry counters (process-wide wivi::plan cache — every
    // session's steering tables, FFT plans, window tables, angle grids).
    std::uint64_t plan_hits = 0;         ///< acquires served by a resident plan
    std::uint64_t plan_misses = 0;       ///< acquires that found no resident plan
    std::uint64_t plan_builds = 0;       ///< artifacts actually constructed
    std::uint64_t plan_evictions = 0;    ///< residents demoted by the ARC cache
    std::uint64_t plan_ghost_hits = 0;   ///< misses that matched an evicted key
    std::uint64_t plan_resident_plans = 0;  ///< gauge: plans resident now
    std::uint64_t plan_resident_bytes = 0;  ///< gauge: bytes resident now
    // Network-ingress counters: the `wivi_net_*` family a net::Receiver
    // registers when constructed with this engine's registry() (all zero
    // when no receiver is bound). The wire boundary obeys
    // frames_in == accepted + rejected; accepted frames then follow the
    // reassembly conservation law (src/net/reassembler.hpp).
    std::uint64_t net_frames_in = 0;        ///< frames presented to the parser
    std::uint64_t net_frames_accepted = 0;  ///< frames parsed and routed
    std::uint64_t net_frames_rejected = 0;  ///< typed parse rejections
    std::uint64_t net_frames_dup = 0;       ///< duplicate fragment arrivals
    std::uint64_t net_frames_evicted = 0;   ///< frames lost to window evictions
    std::uint64_t net_frames_in_flight = 0; ///< gauge: frames in partial chunks
    std::uint64_t net_chunks_delivered = 0; ///< complete chunks handed to sinks
    std::uint64_t net_chunk_gaps = 0;       ///< chunk sequence numbers never seen
    std::uint64_t net_ring_full_drops = 0;  ///< chunks refused by a full ring
    std::uint64_t net_bytes_in = 0;         ///< wire bytes received
    obs::HistogramSnapshot ingress_wait;  ///< offer→pop ring wait, ns
    obs::HistogramSnapshot chunk_latency; ///< offer→processed latency, ns
  };

  Engine();  ///< Start an engine with the default Config.
  /// Start the worker pool with the given configuration.
  explicit Engine(Config cfg);
  /// Stops the workers; queued-but-unprocessed chunks are discarded.
  ~Engine();

  Engine(const Engine&) = delete;             ///< Non-copyable.
  Engine& operator=(const Engine&) = delete;  ///< Non-copyable.

  /// Number of worker threads actually running.
  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }
  /// Number of sessions opened so far.
  [[nodiscard]] std::size_t num_sessions() const noexcept {
    return session_count_.load(std::memory_order_acquire);
  }

  /// Register a new session running the given compiled-on-open pipeline
  /// spec, fed through a ring with the given ingestion policy.
  /// Thread-safe.
  SessionId open_session(api::PipelineSpec spec, IngestConfig ingest = {});

  /// Register a new session from the legacy bool-flag configuration.
  /// Thread-safe.
  /// @deprecated Shim: converts `cfg` with rt::to_pipeline_spec() /
  /// rt::to_ingest_config() and behaves identically to the spec overload.
  SessionId open_session(SessionConfig cfg);

  /// Offline fast path for a fully recorded trace: open a session and
  /// execute its pipeline in the parallel-offline mode
  /// (wivi::Session::run(trace, Parallelism) — the image built
  /// column-parallel over this engine's thread count), delivering the same
  /// per-session event sequence a kBlock replay would — except that
  /// kCount/kTracks/kBits land once (after all columns) instead of once
  /// per chunk, and the column values come from the builder's
  /// thread-count-invariant rebuild path rather than the bit-exact
  /// streaming slide (~1e-9 apart; see DESIGN.md §7). Blocks the calling
  /// thread for the whole computation (events are delivered from it) and
  /// returns the finished session's id; offer() on it is an error.
  /// Thread-safe, and concurrent callers parallelise independently.
  SessionId run_recorded(api::PipelineSpec spec, CSpan trace);

  /// Offline fast path from the legacy configuration.
  /// @deprecated Shim: converts `cfg` and calls the spec overload.
  SessionId run_recorded(SessionConfig cfg, CSpan trace);

  /// Ingest one chunk (one producer thread per session at a time). Returns
  /// false iff the chunk was dropped: kDropNewest with a full ring, or —
  /// under either policy — the engine being stopped or the session already
  /// finished (it failed, timed out, or exhausted its restarts; no worker
  /// will ever drain its ring again). kBlock otherwise waits for ring
  /// space and returns true. Every offer also feeds the session's
  /// liveness watchdog.
  bool offer(SessionId id, CVec chunk);

  /// End of stream: after the ring drains, the session is finalised (final
  /// gesture flush, kFinished event). offer() afterwards is an error.
  void close_session(SessionId id);

  /// Block until every session is closed, drained and finalised. Requires
  /// every session to have been close_session()ed — or to carry a fatal
  /// watchdog (WatchdogConfig with timeout_is_fatal), whose timeout
  /// guarantees the session resolves even if its feeder never shows up
  /// (else drain() would never return — enforced).
  void drain();

  /// Move all queued events into `out` (appended); returns how many. No-op
  /// when a callback is installed.
  std::size_t poll(std::vector<Event>& out);

  /// Deliver events through `cb` (on worker threads, one event at a time
  /// per session) instead of the poll() queue. Install before the first
  /// open_session(). A throwing callback fails the session it was
  /// reporting on (kError, best effort) — it never crashes the engine.
  void set_callback(std::function<void(Event&&)> cb);

  /// Point-in-time counters for a session (safe while the session runs;
  /// exact once it is finished).
  [[nodiscard]] SessionStats stats(SessionId id) const;

  /// Engine-wide cumulative telemetry: the registry counters plus sums of
  /// the per-session counters. Safe any time; exact once quiet.
  [[nodiscard]] EngineStats stats() const;

  /// The engine's telemetry as one exportable obs::Snapshot: every
  /// registry metric (`wivi_engine_*`, `wivi_ingress_wait_ns`,
  /// `wivi_chunk_latency_ns`) plus the ring cursor sums
  /// (`wivi_ring_{pushes,pops,drops}_total`) and per-session output sums.
  /// Feed it to obs::write_snapshot, or use write_snapshot() directly.
  [[nodiscard]] obs::Snapshot snapshot() const;

  /// Render snapshot() to `os` as JSON (default) or Prometheus text.
  void write_snapshot(std::ostream& os,
                      obs::ExportFormat format = obs::ExportFormat::kJson) const;

  /// Write every session's retained pipeline trace spans as one Chrome
  /// trace-event JSON, one track (pid = session id) per session — only
  /// sessions whose spec set api::ObsConfig::trace_capacity contribute.
  /// Call once the engine is quiet (post-drain): the trace rings are
  /// claim-protected and this reads them unclaimed.
  void write_trace(std::ostream& os) const;

  /// The engine's metric registry — counters/histograms for everything the
  /// engine observes; extend it with caller-owned metrics if desired.
  [[nodiscard]] obs::Registry& registry() noexcept { return registry_; }

  /// The session's compiled pipeline — safe to read once the session is
  /// finished (kFinished observed or drain() returned).
  [[nodiscard]] const api::Session& pipeline(SessionId id) const;

  /// The session's streaming image stage — safe to read once the session
  /// is finished, like pipeline().
  [[nodiscard]] const StreamingTracker& tracker(SessionId id) const;
  /// Final gesture decode (sessions with a gesture stage; post-drain).
  [[nodiscard]] const core::GestureDecoder::Result& gesture_result(
      SessionId id) const;
  /// The session's multi-target tracker (sessions with a track stage) —
  /// safe to read once the session is finished, like pipeline().
  [[nodiscard]] const track::MultiTargetTracker& multi_tracker(
      SessionId id) const;

 private:
  /// One ring slot: the offered chunk stamped with its offer instant
  /// (obs::now_ns), so the draining worker can attribute ring wait and
  /// end-to-end chunk latency.
  struct Ingested {
    CVec samples;
    std::int64_t ingress_ns = 0;
  };

  struct Session {
    Session(Engine* engine, SessionId id_, api::PipelineSpec spec_,
            IngestConfig ingest_);

    /// (Re)compile `spec` into a fresh pipeline and wire it up: the
    /// conversion sink, the fault hook and the currently commanded
    /// fidelity. Runs at open and, under the claim flag, at every
    /// RestartPolicy restart.
    void arm_pipeline(Engine* engine);

    SessionId id;
    IngestConfig ingest;
    /// The spec, kept beyond compilation so a restart can re-arm an
    /// identical pipeline (api::Session is neither copyable nor movable).
    api::PipelineSpec spec;
    std::optional<api::Session> pipeline;
    SpscRing<Ingested> ring;

    std::atomic<bool> closed{false};
    std::atomic<bool> finished{false};
    /// Claim flag: exchange(true, acquire) to take the session, store
    /// (false, release) to hand it back. The acquire/release pair carries
    /// the pipeline state (and the ring's consumer cache) between
    /// workers.
    std::atomic<bool> busy{false};

    // Producer-side counters.
    std::atomic<std::uint64_t> chunks_in{0};
    std::atomic<std::uint64_t> samples_in{0};
    std::atomic<std::uint64_t> chunks_dropped{0};
    std::atomic<std::uint64_t> samples_dropped{0};
    // Worker-side counters (relaxed atomics: read by stats() while live).
    std::atomic<std::uint64_t> columns_out{0};
    std::atomic<std::uint64_t> bits_out{0};
    std::atomic<std::uint64_t> chunks_rejected{0};
    std::atomic<std::uint64_t> samples_rejected{0};

    // Watchdog state: last producer activity (steady-clock ns) and
    // whether the advisory kStalled for the current silence has fired.
    std::atomic<std::int64_t> last_activity_ns{0};
    std::atomic<bool> stall_flagged{false};
    // Restart state: restarts consumed, and the steady-clock instant
    // before which workers must leave the session alone (backoff).
    std::atomic<int> restarts{0};
    std::atomic<std::int64_t> resume_at_ns{0};
    /// Columns produced by pre-restart pipeline incarnations, so
    /// columns_out stays monotone across restarts. Claim-protected.
    std::uint64_t columns_base = 0;

    // Overload-ladder state, claim-protected except the mirrored
    // fidelity (read by stats() while live).
    std::atomic<int> fidelity{1};
    std::uint64_t drops_acked = 0;   ///< drops already reacted to
    std::uint64_t clean_chunks = 0;  ///< drop-free chunks since last drop

    /// Offer→processed chunk latency. Single-slot: the claim flag already
    /// serializes every writer, so sharding would only waste cache lines.
    obs::Histogram latency{1};
    /// Next kStats emission instant (stats_interval_sec; claim-checked).
    std::atomic<std::int64_t> next_stats_ns{0};
  };

  /// The engine's named metrics, interned once so the hot path records
  /// through cached references (DESIGN.md §10 naming scheme).
  struct Metrics {
    explicit Metrics(obs::Registry& r);
    obs::Counter& chunks_in;
    obs::Counter& samples_in;
    obs::Counter& chunks_dropped;
    obs::Counter& samples_dropped;
    obs::Counter& chunks_rejected;
    obs::Counter& samples_rejected;
    obs::Counter& samples_processed;
    obs::Counter& samples_lost;
    obs::Counter& events;
    obs::Counter& stalls;
    obs::Counter& timeouts;
    obs::Counter& restarts;
    obs::Counter& overload_transitions;
    obs::Counter& sessions_opened;
    obs::Counter& sessions_finished;
    obs::Histogram& ingress_wait_ns;
    obs::Histogram& chunk_latency_ns;
  };

  void worker_loop(int wid);
  bool try_process(Session& s);
  void process_chunk(Session& s, Ingested in);
  void check_overload(Session& s);
  void check_watchdog(Session& s, std::int64_t now_ns);
  void maybe_emit_stats(Session& s, std::int64_t now_ns);
  void finalize(Session& s);
  void handle_failure(Session& s, ErrorCode code, const char* what) noexcept;
  void fail_session(Session& s, ErrorCode code, const char* what) noexcept;
  void deliver(Event&& e);
  void wake_workers() noexcept;
  [[nodiscard]] Session& session(SessionId id) const;

  Config cfg_;
  int num_threads_ = 1;

  // Telemetry: the registry owns every named engine metric; m_ caches the
  // interned references for the hot paths (declared after registry_ —
  // construction order matters).
  obs::Registry registry_;
  Metrics m_{registry_};

  // Fixed-size table: slots are filled once under register_mu_ and then
  // only read; workers learn about new sessions via the release/acquire
  // on session_count_.
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<std::size_t> session_count_{0};
  std::mutex register_mu_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stop_{false};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  std::function<void(Event&&)> callback_;
  std::mutex events_mu_;
  std::vector<Event> events_;
};

}  // namespace wivi::rt
