/// @file
/// wivi::fault — deterministic, seeded fault injection for the streaming
/// runtime (DESIGN.md §9).
///
/// The chaos half of the failure model: FaultyFeeder wraps any
/// sim::ChunkedTrace and perturbs its chunk stream with the faults a real
/// deployment sees — dropped, duplicated, reordered and truncated chunks,
/// NaN/Inf corruption bursts, sensor-silence gaps, and early stream ends —
/// while throw_hook() scripts pipeline-stage exceptions at exact chunk
/// indices through wivi::Session::set_fault_hook. Every decision is a pure
/// hash of (FaultSpec::seed, source-chunk index), so a fault plan is
/// bit-reproducible per seed, independent of call pattern, timing or
/// thread schedule — the property the chaos suites (test_fault,
/// test_rt_recovery, the CI `chaos` job) build their assertions on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/types.hpp"
#include "src/sim/feeder.hpp"

namespace wivi::fault {

/// @addtogroup wivi_fault
/// @{

/// SplitMix64 finaliser — the stateless hash behind every fault decision
/// in this subsystem. Exposed so other deterministic-chaos layers (the
/// wire-level net::FaultyWire) key their decisions off the exact same
/// primitive: hash(seed ^ hash(index ^ salt)) is the idiom.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// Declarative fault plan over a chunk stream. Probabilities are per
/// source chunk in [0, 1] and drawn independently per fault kind; the
/// `*_at` lists script the same faults at exact source-chunk indices
/// (0-based, counted before any fault rewrites the stream), firing
/// regardless of the probabilities.
struct FaultSpec {
  /// Seed of every random decision; two feeders with equal spec (and
  /// equal wrapped traces) produce identical fault sequences.
  std::uint64_t seed = 1;

  /// Chunk never delivered (stream gap the pipeline must absorb).
  double drop_prob = 0.0;
  /// Chunk delivered twice back to back (at-least-once transport).
  double duplicate_prob = 0.0;
  /// Chunk swapped with the next delivered chunk (late packet).
  double reorder_prob = 0.0;
  /// Chunk cut to a random proper prefix (torn read / short frame).
  double truncate_prob = 0.0;
  /// A NaN/Inf burst written into the chunk (sensor glitch; the
  /// InputGuard's check_finite is what should catch it).
  double corrupt_prob = 0.0;
  /// A sensor-silence gap opens before the chunk: silence_chunks
  /// consecutive kGap periods with no data (what a watchdog observes).
  double gap_prob = 0.0;

  /// Samples poisoned per corruption burst (clamped to the chunk).
  std::size_t corrupt_burst = 4;
  /// Chunk periods per silence gap (>= 1 when a gap fires).
  std::size_t silence_chunks = 4;

  /// Scripted drops at these source-chunk indices.
  std::vector<std::size_t> drop_at;
  /// Scripted corruption bursts at these source-chunk indices.
  std::vector<std::size_t> corrupt_at;
  /// Scripted silence gaps opening before these source-chunk indices.
  std::vector<std::size_t> silence_at;
  /// End the stream early: source chunks >= end_at are never read
  /// (sensor death mid-trace).
  std::optional<std::size_t> end_at;
};

/// What FaultyFeeder::next() produced for one chunk period.
enum class FaultAction {
  kDeliver,  ///< `chunk` holds data to offer the session
  kGap,      ///< sensor silence: nothing arrives this chunk period
  kEnd,      ///< stream over (source exhausted or FaultSpec::end_at)
};

/// A sim::ChunkedTrace wrapped in a FaultSpec: replays the trace's chunk
/// stream with the spec's faults injected, deterministically in the seed.
/// Single-threaded like the trace it wraps; rewind() restarts both the
/// trace and the fault plan, reproducing the exact same faulted stream.
class FaultyFeeder {
 public:
  /// Cumulative injection counters (what the plan actually did — the
  /// ground truth chaos tests reconcile engine stats against).
  struct Stats {
    std::uint64_t delivered = 0;   ///< chunks handed out (kDeliver)
    std::uint64_t dropped = 0;     ///< source chunks never delivered
    std::uint64_t duplicated = 0;  ///< extra copies delivered
    std::uint64_t reordered = 0;   ///< chunks swapped with a successor
    std::uint64_t truncated = 0;   ///< chunks cut to a prefix
    std::uint64_t corrupted = 0;   ///< chunks given a NaN/Inf burst
    std::uint64_t gaps = 0;        ///< silent chunk periods (kGap)
  };

  /// Wrap `trace` in the fault plan `spec`.
  FaultyFeeder(sim::ChunkedTrace trace, FaultSpec spec);

  /// Produce the next chunk period: fills `chunk` and returns kDeliver,
  /// or reports a silence period (kGap — `chunk` untouched) or the end
  /// of the stream (kEnd).
  [[nodiscard]] FaultAction next(CVec& chunk);

  /// Injection counters so far.
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Source chunks consumed from the wrapped trace so far.
  [[nodiscard]] std::size_t source_index() const noexcept { return src_; }
  /// The wrapped trace (its ->trace() is the unfaulted ground truth).
  [[nodiscard]] const sim::ChunkedTrace& trace() const noexcept {
    return trace_;
  }
  /// The fault plan.
  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// Restart the trace and the fault plan from the top; the replay is
  /// bit-identical to the first pass.
  void rewind();

 private:
  [[nodiscard]] bool advance();
  void poison(CVec& chunk, std::size_t index);
  [[nodiscard]] std::uint64_t key(std::size_t index,
                                  std::uint64_t salt) const noexcept;
  [[nodiscard]] bool chance(std::size_t index, std::uint64_t salt,
                            double prob) const noexcept;

  sim::ChunkedTrace trace_;
  FaultSpec spec_;
  Stats stats_;
  std::size_t src_ = 0;        // next source-chunk index
  std::size_t gap_pending_ = 0;
  std::vector<CVec> ready_;    // transformed chunks awaiting delivery
  std::size_t head_ = 0;       // FIFO cursor into ready_
  CVec held_;                  // reordered chunk waiting for its successor
  bool have_held_ = false;
};

/// A wivi::Session fault hook (Session::set_fault_hook /
/// rt::IngestConfig::fault_hook) that throws TypedError of
/// ErrorCode::kStageFailure when the session's cumulative accepted-push
/// count reaches each index in `throw_at`. The hook keeps its own counter
/// across rt::RestartPolicy re-arms (the per-pipeline index argument is
/// ignored), so a scripted mid-stream failure fires exactly once even
/// though a restarted pipeline's own indices restart from zero.
[[nodiscard]] std::function<void(std::size_t)> throw_hook(
    std::vector<std::size_t> throw_at);

/// @}

}  // namespace wivi::fault

namespace wivi {

/// Canonical short spelling of fault::FaultSpec.
using fault::FaultSpec;
/// Canonical short spelling of fault::FaultyFeeder.
using fault::FaultyFeeder;

}  // namespace wivi
