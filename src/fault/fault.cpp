#include "src/fault/fault.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "src/common/error.hpp"

namespace wivi::fault {

namespace {

// Per-fault-kind salts so one chunk's decisions are independent draws.
constexpr std::uint64_t kSaltDrop = 0xD09;
constexpr std::uint64_t kSaltDuplicate = 0xD7B;
constexpr std::uint64_t kSaltReorder = 0x4E0;
constexpr std::uint64_t kSaltTruncate = 0x74C;
constexpr std::uint64_t kSaltTruncateLen = 0x74D;
constexpr std::uint64_t kSaltCorrupt = 0xC04;
constexpr std::uint64_t kSaltCorruptPos = 0xC05;
constexpr std::uint64_t kSaltGap = 0x6A9;

/// SplitMix64 finaliser: the stateless hash behind every fault decision
/// (the public spelling is fault::splitmix64 below).
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool scripted(const std::vector<std::size_t>& at, std::size_t index) {
  return std::find(at.begin(), at.end(), index) != at.end();
}

}  // namespace

FaultyFeeder::FaultyFeeder(sim::ChunkedTrace trace, FaultSpec spec)
    : trace_(std::move(trace)), spec_(std::move(spec)) {
  WIVI_REQUIRE(spec_.silence_chunks >= 1, "silence_chunks must be >= 1");
  const double probs[] = {spec_.drop_prob,     spec_.duplicate_prob,
                          spec_.reorder_prob,  spec_.truncate_prob,
                          spec_.corrupt_prob,  spec_.gap_prob};
  for (double p : probs)
    WIVI_REQUIRE(p >= 0.0 && p <= 1.0, "fault probabilities must be in [0,1]");
}

std::uint64_t FaultyFeeder::key(std::size_t index,
                                std::uint64_t salt) const noexcept {
  return mix(spec_.seed ^ mix(static_cast<std::uint64_t>(index) ^
                              (salt * 0x2545F4914F6CDD1Dull)));
}

bool FaultyFeeder::chance(std::size_t index, std::uint64_t salt,
                          double prob) const noexcept {
  if (prob <= 0.0) return false;
  // 53 uniform mantissa bits -> [0, 1); strictly-below keeps prob == 0
  // impossible and prob == 1 certain.
  const double u =
      static_cast<double>(key(index, salt) >> 11) * 0x1.0p-53;
  return u < prob;
}

void FaultyFeeder::poison(CVec& chunk, std::size_t index) {
  if (chunk.empty()) return;
  const std::size_t burst =
      std::min(std::max<std::size_t>(spec_.corrupt_burst, 1), chunk.size());
  const std::size_t start =
      chunk.size() > burst
          ? static_cast<std::size_t>(key(index, kSaltCorruptPos) %
                                     (chunk.size() - burst + 1))
          : 0;
  constexpr double nan = std::numeric_limits<double>::quiet_NaN();
  constexpr double inf = std::numeric_limits<double>::infinity();
  for (std::size_t k = start; k < start + burst; ++k)
    chunk[k] = (k & 1) ? cdouble(inf, 0.0) : cdouble(nan, nan);
}

/// Consume one source chunk and turn it into queued output (delivery,
/// gap periods, a held reorder, or nothing at all for a drop). Returns
/// false only when the source is finished and nothing is held back.
bool FaultyFeeder::advance() {
  CVec c;
  if ((spec_.end_at && src_ >= *spec_.end_at) || !trace_.next(c)) {
    if (have_held_) {  // stream ended while a reordered chunk waited
      ready_.push_back(std::move(held_));
      have_held_ = false;
      return true;
    }
    return false;
  }
  const std::size_t i = src_++;

  // A silence gap opens *before* the chunk: the sensor goes dark, then
  // (unless another fault eats it) the chunk arrives late.
  if (scripted(spec_.silence_at, i) || chance(i, kSaltGap, spec_.gap_prob))
    gap_pending_ += spec_.silence_chunks;

  if (scripted(spec_.drop_at, i) || chance(i, kSaltDrop, spec_.drop_prob)) {
    ++stats_.dropped;
    return true;
  }
  if (chance(i, kSaltTruncate, spec_.truncate_prob) && c.size() > 1) {
    c.resize(1 + static_cast<std::size_t>(key(i, kSaltTruncateLen) %
                                          (c.size() - 1)));
    ++stats_.truncated;
  }
  if (scripted(spec_.corrupt_at, i) ||
      chance(i, kSaltCorrupt, spec_.corrupt_prob)) {
    poison(c, i);
    ++stats_.corrupted;
  }
  // Reorder holds the chunk until the next surviving chunk passes it —
  // a swap with the successor (reorder excludes duplicate: one
  // transport fault per chunk keeps the plan easy to reason about).
  if (chance(i, kSaltReorder, spec_.reorder_prob) && !have_held_ &&
      !trace_.exhausted()) {
    held_ = std::move(c);
    have_held_ = true;
    ++stats_.reordered;
    return true;
  }
  const bool dup = chance(i, kSaltDuplicate, spec_.duplicate_prob);
  ready_.push_back(c);
  if (dup) {
    ready_.push_back(c);
    ++stats_.duplicated;
  }
  if (have_held_) {
    ready_.push_back(std::move(held_));
    have_held_ = false;
  }
  return true;
}

FaultAction FaultyFeeder::next(CVec& chunk) {
  for (;;) {
    if (gap_pending_ > 0) {
      --gap_pending_;
      ++stats_.gaps;
      return FaultAction::kGap;
    }
    if (head_ < ready_.size()) {
      chunk = std::move(ready_[head_++]);
      if (head_ == ready_.size()) {
        ready_.clear();
        head_ = 0;
      }
      ++stats_.delivered;
      return FaultAction::kDeliver;
    }
    if (!advance()) return FaultAction::kEnd;
  }
}

void FaultyFeeder::rewind() {
  trace_.rewind();
  stats_ = Stats{};
  src_ = 0;
  gap_pending_ = 0;
  ready_.clear();
  head_ = 0;
  held_.clear();
  have_held_ = false;
}

std::function<void(std::size_t)> throw_hook(std::vector<std::size_t> throw_at) {
  struct State {
    std::vector<std::size_t> at;
    std::size_t count = 0;
  };
  auto state = std::make_shared<State>();
  state->at = std::move(throw_at);
  return [state](std::size_t) {
    const std::size_t i = state->count++;
    if (std::find(state->at.begin(), state->at.end(), i) != state->at.end())
      throw TypedError(ErrorCode::kStageFailure,
                       "injected stage fault (fault::throw_hook)");
  };
}

std::uint64_t splitmix64(std::uint64_t x) noexcept { return mix(x); }

}  // namespace wivi::fault
