// Error handling for the Wi-Vi library.
//
// Following the Core Guidelines (E.2, I.6) we throw on precondition
// violations that are plausibly caused by caller input, and keep the check
// active in release builds: this library is driven by experiment
// configuration files and sweeps, where a silent out-of-range parameter
// would corrupt a whole evaluation run.
#pragma once

#include <stdexcept>
#include <string>

namespace wivi {

/// Thrown when a Wi-Vi API precondition is violated.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an algorithm reaches a state it cannot recover from
/// (e.g. eigensolver fails to converge within its iteration budget).
class ComputeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Machine-readable classification of a runtime failure — the taxonomy every
/// api::ErrorEvent (and the engine's legacy kError/kRecovered events)
/// carries, so consumers can branch on *what kind* of fault killed or
/// degraded a session instead of parsing what() strings. The failure model
/// (which code is raised where, and which are terminal) is DESIGN.md §9.
enum class ErrorCode {
  kNone = 0,       ///< no failure (default for non-error events)
  kInvalidChunk,   ///< malformed input rejected at the ingress boundary
                   ///  (empty / oversized / misaligned / non-finite chunk)
  kStageFailure,   ///< a pipeline stage threw while processing
  kSinkFailure,    ///< the consumer's event callback threw
  kTimeout,        ///< watchdog: the feeder went silent past its deadline
  kOverload,       ///< backpressure exhausted every degradation rung
  kMalformedFrame, ///< a wire frame failed parsing/validation at the
                   ///  network ingress (net::ParseStatus carries the
                   ///  precise cause; DESIGN.md §13)
  kIoError,        ///< a capture file could not be opened/read/identified
};

/// Stable identifier string of an ErrorCode ("InvalidChunk", "Timeout", ...).
[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone: return "None";
    case ErrorCode::kInvalidChunk: return "InvalidChunk";
    case ErrorCode::kStageFailure: return "StageFailure";
    case ErrorCode::kSinkFailure: return "SinkFailure";
    case ErrorCode::kTimeout: return "Timeout";
    case ErrorCode::kOverload: return "Overload";
    case ErrorCode::kMalformedFrame: return "MalformedFrame";
    case ErrorCode::kIoError: return "IoError";
  }
  return "Unknown";
}

/// A runtime failure that already knows its ErrorCode classification.
/// Guards at trust boundaries throw these directly (kInvalidChunk); the
/// session's failure path wraps sink exceptions into kSinkFailure and
/// classifies everything else as kStageFailure.
class TypedError : public std::runtime_error {
 public:
  /// Build a failure of class `code` with the given human-readable detail.
  TypedError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  /// The machine-readable failure class.
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement failed (" + expr + "): " + msg);
}
}  // namespace detail

}  // namespace wivi

/// Precondition check that stays on in release builds.
#define WIVI_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) ::wivi::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
