// Error handling for the Wi-Vi library.
//
// Following the Core Guidelines (E.2, I.6) we throw on precondition
// violations that are plausibly caused by caller input, and keep the check
// active in release builds: this library is driven by experiment
// configuration files and sweeps, where a silent out-of-range parameter
// would corrupt a whole evaluation run.
#pragma once

#include <stdexcept>
#include <string>

namespace wivi {

/// Thrown when a Wi-Vi API precondition is violated.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an algorithm reaches a state it cannot recover from
/// (e.g. eigensolver fails to converge within its iteration budget).
class ComputeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw InvalidArgument(std::string(file) + ":" + std::to_string(line) +
                        ": requirement failed (" + expr + "): " + msg);
}
}  // namespace detail

}  // namespace wivi

/// Precondition check that stays on in release builds.
#define WIVI_REQUIRE(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) ::wivi::detail::fail_require(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)
