// Physical and system constants used throughout Wi-Vi.
#pragma once

#include <numbers>

namespace wivi {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Speed of light [m/s].
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Wi-Vi operates in the 2.4 GHz ISM band (paper §3).
inline constexpr double kCarrierFrequencyHz = 2.4e9;

/// Carrier wavelength, ~12.5 cm (paper §2.3).
inline constexpr double kWavelength = kSpeedOfLight / kCarrierFrequencyHz;

/// Baseband bandwidth actually used by the USRP implementation (paper §7.1:
/// "we reduced the transmitted signal bandwidth to 5 MHz").
inline constexpr double kBasebandBandwidthHz = 5e6;

/// OFDM: 64 subcarriers including DC (paper §7.1).
inline constexpr int kNumSubcarriers = 64;

/// Emulated antenna array parameters (paper §7.1): samples over 0.32 s are
/// averaged into an array of size w = 100.
inline constexpr int kEmulatedArraySize = 100;
inline constexpr double kEmulatedArrayDurationSec = 0.32;

/// Channel-estimate sample rate implied by the two values above: 312.5 Hz.
inline constexpr double kChannelSampleRateHz =
    kEmulatedArraySize / kEmulatedArrayDurationSec;

/// Default assumed human walking speed for the ISAR array spacing
/// (paper §5.1, default v = 1 m/s).
inline constexpr double kAssumedHumanSpeed = 1.0;

/// Boltzmann constant [J/K] for thermal-noise floors.
inline constexpr double kBoltzmann = 1.380649e-23;

/// Reference temperature [K].
inline constexpr double kRoomTemperatureK = 290.0;

}  // namespace wivi
