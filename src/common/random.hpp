// Seeded, reproducible random number generation.
//
// Every experiment in the benchmark harness must be re-runnable bit-for-bit,
// so all randomness flows through this engine with explicit seeds; nothing
// in the library touches global RNG state.
#pragma once

#include <cstdint>

#include "src/common/types.hpp"

namespace wivi {

/// xoshiro256++ PRNG. Small, fast, and good enough statistical quality for
/// noise generation; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached spare deviate).
  double gaussian();

  /// Normal with the given mean / standard deviation.
  double gaussian(double mean, double stddev);

  /// Circularly-symmetric complex Gaussian with E[|z|^2] = variance.
  cdouble complex_gaussian(double variance = 1.0);

  /// Fill a buffer with complex AWGN of the given per-sample power.
  void fill_awgn(CVec& out, std::size_t n, double noise_power);

  /// Derive an independent child generator (for per-trial streams).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace wivi
