// Fundamental value types shared across the Wi-Vi library.
//
// Everything in the signal path is complex baseband; we standardise on
// double precision (`cdouble`) because the nulling math subtracts two nearly
// equal channel estimates and float would throw away most of the nulling
// depth we are trying to measure.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace wivi {

using cdouble = std::complex<double>;

/// A buffer of complex baseband samples (time or frequency domain).
using CVec = std::vector<cdouble>;

/// A buffer of real-valued samples (power traces, angles, filter taps...).
using RVec = std::vector<double>;

/// Read-only views used throughout public interfaces (I.13: pass arrays as span).
using CSpan = std::span<const cdouble>;
using RSpan = std::span<const double>;

/// Imaginary unit, so expressions read like the paper's equations.
inline constexpr cdouble kJ{0.0, 1.0};

/// Squared magnitude |z|^2 without the sqrt that std::abs would pay for.
[[nodiscard]] constexpr double norm2(cdouble z) noexcept {
  return z.real() * z.real() + z.imag() * z.imag();
}

/// Mean power of a complex buffer: (1/N) * sum |x[i]|^2. Returns 0 for empty.
[[nodiscard]] inline double mean_power(CSpan x) noexcept {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (cdouble v : x) acc += norm2(v);
  return acc / static_cast<double>(x.size());
}

}  // namespace wivi
