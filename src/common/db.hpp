// Decibel conversions.
//
// The paper reasons almost exclusively in dB (wall attenuation, nulling
// depth, gesture SNR), so these helpers are used everywhere. Power ratios
// use 10*log10, amplitude ratios 20*log10.
#pragma once

namespace wivi {

/// Smallest power ratio representable on our dB scale; keeps log10 finite.
inline constexpr double kDbFloorRatio = 1e-30;

/// Power ratio -> dB. Clamps at a -300 dB floor instead of returning -inf.
[[nodiscard]] double to_db(double power_ratio) noexcept;

/// dB -> power ratio.
[[nodiscard]] double from_db(double db) noexcept;

/// Amplitude ratio -> dB (20*log10).
[[nodiscard]] double amp_to_db(double amplitude_ratio) noexcept;

/// dB -> amplitude ratio.
[[nodiscard]] double db_to_amp(double db) noexcept;

/// dBm -> watts and back; the hardware layer quotes powers in dBm like the
/// USRP documentation does.
[[nodiscard]] double dbm_to_watts(double dbm) noexcept;
[[nodiscard]] double watts_to_dbm(double watts) noexcept;

}  // namespace wivi
