#include "src/common/random.hpp"

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"

namespace wivi {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

/// splitmix64: expands a single seed into well-distributed state words.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  WIVI_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  WIVI_REQUIRE(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  // Modulo bias is negligible for the small ranges used here, but rejection
  // sampling keeps per-trial streams exactly uniform.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  spare_ = r * std::sin(kTwoPi * u2);
  has_spare_ = true;
  return r * std::cos(kTwoPi * u2);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * gaussian();
}

cdouble Rng::complex_gaussian(double variance) {
  WIVI_REQUIRE(variance >= 0.0, "complex_gaussian variance must be >= 0");
  const double sigma = std::sqrt(variance / 2.0);
  return {gaussian() * sigma, gaussian() * sigma};
}

void Rng::fill_awgn(CVec& out, std::size_t n, double noise_power) {
  out.resize(n);
  for (auto& z : out) z = complex_gaussian(noise_power);
}

Rng Rng::fork() {
  // Two fresh words from this stream seed the child; children are
  // statistically independent of further draws from the parent.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

}  // namespace wivi
