#include "src/common/db.hpp"

#include <algorithm>
#include <cmath>

namespace wivi {

double to_db(double power_ratio) noexcept {
  return 10.0 * std::log10(std::max(power_ratio, kDbFloorRatio));
}

double from_db(double db) noexcept { return std::pow(10.0, db / 10.0); }

double amp_to_db(double amplitude_ratio) noexcept {
  return 20.0 * std::log10(std::max(amplitude_ratio, kDbFloorRatio));
}

double db_to_amp(double db) noexcept { return std::pow(10.0, db / 20.0); }

double dbm_to_watts(double dbm) noexcept { return 1e-3 * from_db(dbm); }

double watts_to_dbm(double watts) noexcept { return to_db(watts / 1e-3); }

}  // namespace wivi
