#include "src/par/image_builder.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace wivi::par {

ParallelImageBuilder::Workspace::Workspace(const core::MusicConfig& mc)
    : sliding(mc.subarray, mc.isar.window), music(mc) {}

ParallelImageBuilder::ParallelImageBuilder(core::MotionTracker::Config cfg,
                                           int num_threads)
    : cfg_(cfg), pool_(num_threads) {
  WIVI_REQUIRE(cfg_.hop >= 1, "hop must be >= 1");
  WIVI_REQUIRE(cfg_.angle_step_deg > 0.0, "angle step must be positive");
  workspaces_.reserve(static_cast<std::size_t>(pool_.num_threads()));
  for (int w = 0; w < pool_.num_threads(); ++w)
    workspaces_.push_back(std::make_unique<Workspace>(cfg_.music));
}

core::AngleTimeImage ParallelImageBuilder::build(CSpan h, double t0) const {
  const auto w = static_cast<std::size_t>(cfg_.music.isar.window);
  const auto hop = static_cast<std::size_t>(cfg_.hop);
  WIVI_REQUIRE(h.size() >= w, "channel stream shorter than one ISAR window");
  const std::size_t num_cols = (h.size() - w) / hop + 1;
  const double T = cfg_.music.isar.sample_period_sec;

  core::AngleTimeImage img;
  img.angles_deg = core::angle_grid_deg(cfg_.angle_step_deg);
  img.columns.resize(num_cols);
  img.model_orders.resize(num_cols);
  img.times_sec.resize(num_cols);

  const std::size_t num_blocks =
      (num_cols + kColumnsPerBlock - 1) / kColumnsPerBlock;
  pool_.parallel_for(num_blocks, [&](std::size_t block, int worker) {
    Workspace& ws = *workspaces_[static_cast<std::size_t>(worker)];
    const std::size_t c0 = block * kColumnsPerBlock;
    const std::size_t c1 = std::min(c0 + kColumnsPerBlock, num_cols);
    // Rebuild at the block start (blocks may land on any worker in any
    // order), then slide within the block exactly like the sequential
    // loop would over the same span.
    ws.sliding.rebuild(h, c0 * hop);
    for (std::size_t c = c0; c < c1; ++c) {
      const std::size_t n = c * hop;
      if (c != c0) ws.sliding.advance_to(h, n);
      ws.sliding.correlation_into(ws.r);
      int order = 0;
      ws.music.pseudospectrum_from_correlation_into(ws.r, img.angles_deg,
                                                    img.columns[c], &order);
      img.model_orders[c] = order;
      img.times_sec[c] =
          t0 + (static_cast<double>(n) + static_cast<double>(w) / 2.0) * T;
    }
  });
  return img;
}

}  // namespace wivi::par
