#include "src/par/thread_pool.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace wivi::par {

ThreadPool::ThreadPool(int num_threads) {
  WIVI_REQUIRE(num_threads >= 0, "thread count must be >= 0");
  num_threads_ =
      num_threads > 0
          ? num_threads
          : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  // Worker 0 is the caller's slot; only ids 1.. get dedicated threads.
  for (int w = 1; w < num_threads_; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::parallel_for(std::size_t count, const Task& fn) {
  if (count == 0) return;
  if (num_threads_ == 1) {
    // No pool threads: run inline, in index order — but with the same
    // exception contract as the threaded path (every task runs, first
    // exception rethrown at the end), so pool size never changes
    // observable semantics.
    std::exception_ptr first;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i, 0);
      } catch (...) {
        if (first == nullptr) first = std::current_exception();
      }
    }
    if (first != nullptr) std::rethrow_exception(first);
    return;
  }
  {
    std::lock_guard lk(mu_);
    WIVI_REQUIRE(job_ == nullptr,
                 "parallel_for is one-at-a-time per pool (no nesting, no "
                 "concurrent callers)");
    job_ = &fn;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    pending_ = count;
    first_error_ = nullptr;
    ++generation_;
  }
  start_cv_.notify_all();
  run_tasks(fn, count, /*worker_id=*/0);

  std::unique_lock lk(mu_);
  // Wait for every task to finish AND every worker to leave run_tasks:
  // a straggler that claimed past the end must not still be around when
  // the next job resets the claim cursor.
  done_cv_.wait(lk, [&] { return pending_ == 0 && active_ == 0; });
  job_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::run_tasks(const Task& fn, std::size_t count, int worker_id) {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    std::exception_ptr err;
    try {
      fn(i, worker_id);
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard lk(mu_);
    if (err != nullptr && first_error_ == nullptr) first_error_ = err;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(int worker_id) {
  std::uint64_t seen = 0;
  for (;;) {
    const Task* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;  // null if the job already drained and was retired
      count = job_count_;
      if (job == nullptr) continue;
      ++active_;
    }
    run_tasks(*job, count, worker_id);
    std::lock_guard lk(mu_);
    if (--active_ == 0 && pending_ == 0) done_cv_.notify_all();
  }
}

}  // namespace wivi::par
