/// @file
/// Column-parallel construction of the smoothed-MUSIC angle-time image.
///
/// core::MotionTracker::process() walks the image columns sequentially,
/// streaming the Eq. 5.2 correlation through rank-one updates — optimal
/// per column, but it leaves every other core idle while the per-column
/// pseudospectrum (~1 ms, the pipeline's dominant cost) runs. For batch
/// consumers (whole recorded traces: figure generation, benches,
/// rt::Engine::run_recorded) the columns can instead be sharded across a
/// par::ThreadPool: each worker owns a private
/// SlidingCorrelation/SmoothedMusic workspace set, rebuilds the
/// correlation at the start of its block and slides within it, and writes
/// into preassigned column slots.
///
/// Determinism: the block partition is a pure function of the column
/// count (kColumnsPerBlock), every block's math depends only on the input
/// stream and the block's own start position (workspaces are numerically
/// history-independent: each call fully overwrites them), and blocks
/// write disjoint slots — so the output is bit-identical for every thread
/// count and every dynamic block-to-worker assignment (pinned by
/// test_par). It is *not* bit-identical to the sequential sliding path,
/// whose rank-one update chain rounds differently (agreement is at the
/// 1e-9 parity level, also pinned). DESIGN.md §7 discusses when to prefer
/// which.
#pragma once

#include <memory>
#include <vector>

#include "src/core/tracker.hpp"
#include "src/par/thread_pool.hpp"

namespace wivi::par {

/// Builds core::AngleTimeImage by sharding columns over a worker pool.
/// Reusable across build() calls (workspaces and pool persist); one
/// build() at a time per instance — for concurrent builds give each
/// caller its own builder.
class ParallelImageBuilder {
 public:
  /// Columns per work unit: the load-balancing granularity, and the fixed
  /// partition the determinism argument rests on. Within one block the
  /// correlation slides (rank-one updates); across block starts it is
  /// rebuilt from scratch.
  static constexpr std::size_t kColumnsPerBlock = 16;

  /// Build with an internally owned pool of `num_threads` workers
  /// (0 = hardware concurrency; 1 = fully sequential, no threads).
  /// `cfg.num_threads` is ignored here — the explicit argument wins.
  explicit ParallelImageBuilder(core::MotionTracker::Config cfg,
                                int num_threads = 0);

  /// The imaging configuration (hop, angle grid, MUSIC parameters).
  [[nodiscard]] const core::MotionTracker::Config& config() const noexcept {
    return cfg_;
  }
  /// Worker count of the underlying pool.
  [[nodiscard]] int num_threads() const noexcept {
    return pool_.num_threads();
  }

  /// Compute the full angle-time image of a recorded channel-estimate
  /// stream; identical output for every thread count. `t0` is the
  /// absolute time of h.front().
  [[nodiscard]] core::AngleTimeImage build(CSpan h, double t0 = 0.0) const;

 private:
  /// One worker's private estimator state (core stages are single-threaded
  /// by design — see DESIGN.md §4 rule 4; parallelism comes from giving
  /// every worker its own copy).
  struct Workspace {
    explicit Workspace(const core::MusicConfig& mc);

    core::SlidingCorrelation sliding;  ///< per-block correlation state
    core::SmoothedMusic music;         ///< eigen/steering/noise workspaces
    linalg::CMatrix r;                 ///< normalised correlation scratch
  };

  core::MotionTracker::Config cfg_;
  mutable ThreadPool pool_;
  mutable std::vector<std::unique_ptr<Workspace>> workspaces_;  // per worker
};

}  // namespace wivi::par
