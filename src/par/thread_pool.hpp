/// @file
/// A reusable fork-join worker pool for data-parallel loops.
///
/// The batch pipeline's dominant cost is the per-column MUSIC
/// pseudospectrum (~1 ms/column against ~8 us of everything else), and the
/// columns of one angle-time image are independent once each worker owns
/// its workspaces. This pool is the execution engine for that sharding
/// (par::ParallelImageBuilder): a fixed set of threads, one blocking
/// parallel_for() at a time, tasks claimed dynamically off a shared atomic
/// counter so uneven task costs still balance. Threading/ownership rules
/// and the determinism argument live in DESIGN.md §7.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wivi::par {

/// A fixed-size fork-join pool: parallel_for() fans a task index range out
/// over the pool's threads (the calling thread participates as worker 0)
/// and blocks until every task has run.
///
/// One job at a time: parallel_for() may be called repeatedly, from any
/// single thread at a time, but never concurrently or reentrantly (from
/// inside a task) on one pool — enforced. Give independent concurrent
/// callers independent pools.
class ThreadPool {
 public:
  /// Task body: fn(task_index, worker_index). worker_index is in
  /// [0, num_threads()) and is stable for the duration of one task, which
  /// is what lets callers keep one mutable workspace per worker.
  using Task = std::function<void(std::size_t, int)>;

  /// Start a pool of `num_threads` total workers (including the calling
  /// thread's slot); 0 means std::thread::hardware_concurrency(). A pool
  /// of 1 spawns no threads and parallel_for() runs inline, in index
  /// order.
  explicit ThreadPool(int num_threads = 0);
  /// Joins the worker threads (any running parallel_for must have
  /// returned — the single-caller contract guarantees that).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;             ///< Non-copyable.
  ThreadPool& operator=(const ThreadPool&) = delete;  ///< Non-copyable.

  /// Total workers, counting the calling thread's slot.
  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Run fn(i, worker) for every i in [0, count). Tasks are claimed
  /// dynamically (uneven costs balance); every task runs exactly once even
  /// if some throw, and the first exception is rethrown here after all
  /// tasks finish. Blocks until the whole range is done.
  void parallel_for(std::size_t count, const Task& fn);

 private:
  void worker_loop(int worker_id);
  void run_tasks(const Task& fn, std::size_t count, int worker_id);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;  // workers: a new job was published
  std::condition_variable done_cv_;   // caller: pending_/active_ reached 0
  std::uint64_t generation_ = 0;      // bumped per published job (under mu_)
  bool stop_ = false;

  // Current job. job_ is non-null exactly while one is in flight; workers
  // read it under mu_ after observing the generation bump.
  const Task* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::atomic<std::size_t> next_{0};  // dynamic task claim cursor
  std::size_t pending_ = 0;           // unfinished tasks (under mu_)
  int active_ = 0;                    // workers inside run_tasks (under mu_)
  std::exception_ptr first_error_;    // first task exception (under mu_)
};

}  // namespace wivi::par
