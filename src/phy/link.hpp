// Abstract 2-TX / 1-RX MIMO link.
//
// core::Nuller drives this interface and nothing else, so the nulling
// algorithm is exactly what would run against real radios through a UHD
// backend; sim::SimulatedMimoLink is the offline implementation used here.
#pragma once

#include "src/common/types.hpp"
#include "src/phy/ofdm.hpp"

namespace wivi::phy {

class SubcarrierLink {
 public:
  virtual ~SubcarrierLink() = default;

  SubcarrierLink(const SubcarrierLink&) = delete;
  SubcarrierLink& operator=(const SubcarrierLink&) = delete;

  [[nodiscard]] virtual const OfdmModem& modem() const = 0;

  /// Transmit one OFDM symbol (frequency domain) on each TX chain
  /// simultaneously and return the received symbol (frequency domain) after
  /// the RX chain and ADC. Advances the link clock by one symbol.
  [[nodiscard]] virtual CVec transceive(CSpan tx0_freq, CSpan tx1_freq) = 0;

  /// Did the ADC rail on the most recent transceive()? The flash effect in
  /// one bit: before nulling + boost this is typically true at high gain.
  [[nodiscard]] virtual bool last_rx_saturated() const = 0;

  /// TX digital gain applied identically to both chains (dB). The nulling
  /// power-boost stage raises this by hw::kPowerBoostDb.
  virtual void set_tx_gain_db(double gain_db) = 0;
  [[nodiscard]] virtual double tx_gain_db() const = 0;

  /// RX gain ahead of the ADC (dB). Can be boosted after nulling (§4.1.2
  /// footnote) without saturating.
  virtual void set_rx_gain_db(double gain_db) = 0;
  [[nodiscard]] virtual double rx_gain_db() const = 0;

  /// Absolute link time [s]; advances by one OFDM symbol per transceive.
  [[nodiscard]] virtual double now() const = 0;

 protected:
  SubcarrierLink() = default;
};

}  // namespace wivi::phy
