#include "src/phy/ofdm.hpp"

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/dsp/fft.hpp"

namespace wivi::phy {

OfdmModem::OfdmModem() : OfdmModem(Config{}) {}

OfdmModem::OfdmModem(Config cfg) : cfg_(cfg) {
  WIVI_REQUIRE(dsp::is_pow2(static_cast<std::size_t>(cfg_.num_subcarriers)),
               "subcarrier count must be a power of two");
  WIVI_REQUIRE(cfg_.cyclic_prefix >= 0 && cfg_.cyclic_prefix < cfg_.num_subcarriers,
               "cyclic prefix must be in [0, N)");
  WIVI_REQUIRE(cfg_.guard_carriers >= 0 &&
                   2 * cfg_.guard_carriers + 1 < cfg_.num_subcarriers,
               "guard carriers leave no usable band");
  WIVI_REQUIRE(cfg_.bandwidth_hz > 0.0, "bandwidth must be positive");

  // FFT bin layout: bin 0 = DC, bins 1..N/2-1 positive frequencies,
  // bins N/2..N-1 negative. Guards sit at the extremes of both half-bands.
  const int n = cfg_.num_subcarriers;
  const int half = n / 2;
  for (int k = 1; k < half - cfg_.guard_carriers; ++k) used_.push_back(k);
  for (int k = half + cfg_.guard_carriers; k < n; ++k) used_.push_back(k);
}

double OfdmModem::symbol_duration_sec() const noexcept {
  return static_cast<double>(symbol_length()) / cfg_.bandwidth_hz;
}

double OfdmModem::subcarrier_offset_hz(int bin) const {
  WIVI_REQUIRE(bin >= 0 && bin < cfg_.num_subcarriers, "subcarrier bin out of range");
  const int n = cfg_.num_subcarriers;
  const int signed_bin = bin < n / 2 ? bin : bin - n;
  return static_cast<double>(signed_bin) * cfg_.bandwidth_hz /
         static_cast<double>(n);
}

CVec OfdmModem::preamble(std::uint64_t seed) const {
  Rng rng(seed);
  CVec freq(static_cast<std::size_t>(cfg_.num_subcarriers), cdouble{0.0, 0.0});
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  for (int k : used_) {
    const double re = rng.uniform() < 0.5 ? -inv_sqrt2 : inv_sqrt2;
    const double im = rng.uniform() < 0.5 ? -inv_sqrt2 : inv_sqrt2;
    freq[static_cast<std::size_t>(k)] = {re, im};
  }
  return freq;
}

CVec OfdmModem::modulate(CSpan freq) const {
  WIVI_REQUIRE(freq.size() == static_cast<std::size_t>(cfg_.num_subcarriers),
               "modulate: wrong symbol size");
  CVec body = dsp::ifft_copy(freq);
  const double scale = std::sqrt(static_cast<double>(cfg_.num_subcarriers));
  for (auto& v : body) v *= scale;
  CVec out;
  out.reserve(static_cast<std::size_t>(symbol_length()));
  // Cyclic prefix: last CP samples of the body.
  out.insert(out.end(), body.end() - cfg_.cyclic_prefix, body.end());
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

CVec OfdmModem::demodulate(CSpan time) const {
  WIVI_REQUIRE(time.size() == static_cast<std::size_t>(symbol_length()),
               "demodulate: wrong symbol size");
  CVec body(time.begin() + cfg_.cyclic_prefix, time.end());
  dsp::fft(body);
  const double scale = 1.0 / std::sqrt(static_cast<double>(cfg_.num_subcarriers));
  for (auto& v : body) v *= scale;
  return body;
}

CVec OfdmModem::estimate_channel(CSpan rx_freq, CSpan tx_freq) const {
  WIVI_REQUIRE(rx_freq.size() == tx_freq.size() &&
                   rx_freq.size() == static_cast<std::size_t>(cfg_.num_subcarriers),
               "estimate_channel: size mismatch");
  CVec h(rx_freq.size(), cdouble{0.0, 0.0});
  for (int k : used_) {
    const auto i = static_cast<std::size_t>(k);
    h[i] = rx_freq[i] / tx_freq[i];
  }
  return h;
}

cdouble OfdmModem::combine_subcarriers(CSpan per_subcarrier) const {
  WIVI_REQUIRE(per_subcarrier.size() ==
                   static_cast<std::size_t>(cfg_.num_subcarriers),
               "combine_subcarriers: size mismatch");
  cdouble acc{0.0, 0.0};
  for (int k : used_) acc += per_subcarrier[static_cast<std::size_t>(k)];
  return acc / static_cast<double>(used_.size());
}

}  // namespace wivi::phy
