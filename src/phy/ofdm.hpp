// Wi-Fi-style OFDM modem: 64 subcarriers including DC (paper §7.1), cyclic
// prefix, known preamble, and per-subcarrier channel estimation.
//
// Wi-Vi's nulling procedure runs per subcarrier and then combines the
// subcarrier channel estimates to improve SNR (paper §7.1); this modem
// provides exactly those primitives.
#pragma once

#include <vector>

#include "src/common/types.hpp"

namespace wivi::phy {

class OfdmModem {
 public:
  struct Config {
    int num_subcarriers = 64;   // must be a power of two
    int cyclic_prefix = 16;     // samples
    int guard_carriers = 5;     // unused carriers at each band edge
    double bandwidth_hz = 5e6;  // paper §7.1: reduced to 5 MHz for real time
  };

  OfdmModem();  // default Config
  explicit OfdmModem(Config cfg);

  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] int num_subcarriers() const noexcept { return cfg_.num_subcarriers; }
  [[nodiscard]] int symbol_length() const noexcept {
    return cfg_.num_subcarriers + cfg_.cyclic_prefix;
  }
  [[nodiscard]] double symbol_duration_sec() const noexcept;

  /// Indices (0-based FFT bins) of data-bearing subcarriers: DC and the
  /// band-edge guards are excluded.
  [[nodiscard]] const std::vector<int>& used_subcarriers() const noexcept {
    return used_;
  }

  /// Baseband frequency offset of FFT bin k relative to the carrier.
  [[nodiscard]] double subcarrier_offset_hz(int bin) const;

  /// Deterministic unit-power QPSK preamble on the used subcarriers
  /// (frequency domain). Same seed -> same preamble, as on a real device.
  [[nodiscard]] CVec preamble(std::uint64_t seed = 0x5Fee1DEA) const;

  /// Frequency domain -> time domain symbol with cyclic prefix. Power
  /// preserving: mean |time|^2 == mean |freq|^2 over the FFT body.
  [[nodiscard]] CVec modulate(CSpan freq) const;

  /// Time domain (with cyclic prefix) -> frequency domain.
  [[nodiscard]] CVec demodulate(CSpan time) const;

  /// Per-subcarrier channel estimate H[k] = Y[k]/X[k] on used subcarriers
  /// (zero elsewhere).
  [[nodiscard]] CVec estimate_channel(CSpan rx_freq, CSpan tx_freq) const;

  /// Combine per-subcarrier estimates into a single complex channel value
  /// by averaging the used subcarriers (paper §7.1).
  [[nodiscard]] cdouble combine_subcarriers(CSpan per_subcarrier) const;

 private:
  Config cfg_;
  std::vector<int> used_;
};

}  // namespace wivi::phy
