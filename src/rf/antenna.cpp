#include "src/rf/antenna.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::rf {

Antenna Antenna::isotropic(Vec2 position) {
  Antenna a;
  a.position_ = position;
  a.directional_ = false;
  return a;
}

Antenna Antenna::directional(Vec2 position, Vec2 boresight, double gain_dbi,
                             double exponent, double back_lobe_db) {
  WIVI_REQUIRE(boresight.norm() > 0.0, "boresight must be a nonzero vector");
  WIVI_REQUIRE(exponent > 0.0, "pattern exponent must be positive");
  WIVI_REQUIRE(back_lobe_db < 0.0, "back lobe must be below boresight");
  Antenna a;
  a.position_ = position;
  a.boresight_ = boresight.normalized();
  a.directional_ = true;
  a.boresight_gain_dbi_ = gain_dbi;
  a.exponent_ = exponent;
  a.back_lobe_db_ = back_lobe_db;
  return a;
}

double Antenna::gain_dbi_toward(Vec2 target) const {
  if (!directional_) return 0.0;
  const Vec2 dir = (target - position_).normalized();
  if (dir.norm() == 0.0) return boresight_gain_dbi_;  // degenerate: on top of us
  const double cos_theta = std::max(dir.dot(boresight_), 0.0);
  const double rel = std::pow(cos_theta, exponent_);  // power-pattern value
  const double rel_db = std::max(to_db(rel), back_lobe_db_);
  return boresight_gain_dbi_ + rel_db;
}

double Antenna::amplitude_gain_toward(Vec2 target) const {
  return db_to_amp(gain_dbi_toward(target));
}

}  // namespace wivi::rf
