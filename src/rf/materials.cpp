#include "src/rf/materials.hpp"

#include "src/common/error.hpp"

namespace wivi::rf {

const std::array<MaterialInfo, kNumMaterials>& material_table() {
  static const std::array<MaterialInfo, kNumMaterials> kTable = {{
      {Material::kFreeSpace, "Free Space", 0.0},
      {Material::kGlass, "Glass", 3.0},
      {Material::kSolidWoodDoor, "Solid Wood Door 1.75\"", 6.0},
      {Material::kHollowWall, "Interior Hollow Wall 6\"", 9.0},
      {Material::kConcrete8in, "Concrete Wall 8\"", 13.0},
      {Material::kConcrete18in, "Concrete Wall 18\"", 18.0},
      {Material::kReinforcedConcrete, "Reinforced Concrete", 40.0},
  }};
  return kTable;
}

const MaterialInfo& info(Material m) {
  for (const auto& row : material_table()) {
    if (row.material == m) return row;
  }
  throw InvalidArgument("unknown material");
}

double one_way_attenuation_db(Material m) { return info(m).one_way_attenuation_db; }

double two_way_attenuation_db(Material m) {
  return 2.0 * one_way_attenuation_db(m);
}

}  // namespace wivi::rf
