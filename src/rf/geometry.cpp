#include "src/rf/geometry.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace wivi::rf {

double Vec2::norm() const noexcept { return std::hypot(x, y); }

Vec2 Vec2::normalized() const noexcept {
  const double n = norm();
  if (n == 0.0) return {0.0, 0.0};
  return {x / n, y / n};
}

double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

namespace {
double cross(Vec2 o, Vec2 a, Vec2 b) noexcept {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}
bool on_segment(Vec2 p, Vec2 q, Vec2 r) noexcept {
  return std::min(p.x, r.x) <= q.x && q.x <= std::max(p.x, r.x) &&
         std::min(p.y, r.y) <= q.y && q.y <= std::max(p.y, r.y);
}
}  // namespace

bool segments_intersect(Vec2 a1, Vec2 a2, Vec2 b1, Vec2 b2) noexcept {
  const double d1 = cross(b1, b2, a1);
  const double d2 = cross(b1, b2, a2);
  const double d3 = cross(a1, a2, b1);
  const double d4 = cross(a1, a2, b2);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)))
    return true;
  if (d1 == 0.0 && on_segment(b1, a1, b2)) return true;
  if (d2 == 0.0 && on_segment(b1, a2, b2)) return true;
  if (d3 == 0.0 && on_segment(a1, b1, a2)) return true;
  if (d4 == 0.0 && on_segment(a1, b2, a2)) return true;
  return false;
}

Trajectory::Trajectory(std::vector<Vec2> samples, double dt)
    : samples_(std::move(samples)), dt_(dt) {
  WIVI_REQUIRE(!samples_.empty(), "trajectory needs at least one sample");
  WIVI_REQUIRE(dt_ > 0.0, "trajectory dt must be positive");
}

Trajectory Trajectory::stationary(Vec2 pos, double duration, double dt) {
  const auto n = static_cast<std::size_t>(std::ceil(duration / dt)) + 1;
  return Trajectory(std::vector<Vec2>(n, pos), dt);
}

double Trajectory::duration() const noexcept {
  return samples_.empty() ? 0.0
                          : static_cast<double>(samples_.size() - 1) * dt_;
}

Vec2 Trajectory::position(double t) const {
  WIVI_REQUIRE(!samples_.empty(), "position() on empty trajectory");
  if (samples_.size() == 1) return samples_.front();
  const double clamped = std::clamp(t, 0.0, duration());
  const double pos = clamped / dt_;
  const auto lo = std::min(static_cast<std::size_t>(pos), samples_.size() - 2);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Vec2 Trajectory::velocity(double t) const {
  WIVI_REQUIRE(!samples_.empty(), "velocity() on empty trajectory");
  if (samples_.size() == 1) return {0.0, 0.0};
  const double h = dt_;
  const double lo = std::max(t - h, 0.0);
  const double hi = std::min(t + h, duration());
  if (hi <= lo) return {0.0, 0.0};
  return (position(hi) - position(lo)) / (hi - lo);
}

double Trajectory::radial_speed_toward(Vec2 observer, double t) const {
  const Vec2 to_observer = (observer - position(t)).normalized();
  return velocity(t).dot(to_observer);
}

}  // namespace wivi::rf
