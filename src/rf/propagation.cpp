#include "src/rf/propagation.hpp"

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::rf {

double friis_amplitude(double distance_m, double wavelength_m) {
  WIVI_REQUIRE(distance_m > 0.0, "friis distance must be positive");
  WIVI_REQUIRE(wavelength_m > 0.0, "wavelength must be positive");
  return wavelength_m / (2.0 * kTwoPi * distance_m);
}

double reflection_amplitude(double d_tx_m, double d_rx_m, double rcs_m2,
                            double wavelength_m) {
  WIVI_REQUIRE(d_tx_m > 0.0 && d_rx_m > 0.0, "reflection distances must be positive");
  WIVI_REQUIRE(rcs_m2 >= 0.0, "radar cross section must be >= 0");
  const double four_pi = 2.0 * kTwoPi;
  return wavelength_m * std::sqrt(rcs_m2) /
         (std::pow(four_pi, 1.5) * d_tx_m * d_rx_m);
}

cdouble phase_factor(double path_length_m, double freq_hz) {
  const double phase = -kTwoPi * freq_hz * path_length_m / kSpeedOfLight;
  return {std::cos(phase), std::sin(phase)};
}

int Wall::traversals(Vec2 p, Vec2 q) const noexcept {
  return segments_intersect(p, q, a, b) ? 1 : 0;
}

double Wall::traversal_amplitude(Vec2 p, Vec2 q) const {
  const int n = traversals(p, q);
  if (n == 0) return 1.0;
  return db_to_amp(-one_way_attenuation_db(material) * n);
}

}  // namespace wivi::rf
