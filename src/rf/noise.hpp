// Receiver noise.
#pragma once

#include "src/common/random.hpp"
#include "src/common/types.hpp"

namespace wivi::rf {

/// Thermal noise power kTB degraded by the receiver noise figure, in watts.
[[nodiscard]] double thermal_noise_power_watts(double bandwidth_hz,
                                               double noise_figure_db);

/// Same, in dBm (so it can be compared against link budgets directly).
[[nodiscard]] double thermal_noise_power_dbm(double bandwidth_hz,
                                             double noise_figure_db);

/// Add circularly-symmetric AWGN of the given per-sample power in place.
void add_awgn(CVec& x, double noise_power, Rng& rng);

}  // namespace wivi::rf
