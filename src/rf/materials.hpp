// Building materials and their one-way RF attenuation at 2.4 GHz.
//
// Table 4.1 of the paper, reproduced verbatim, plus the 8-inch concrete wall
// of the Fairchild building used in the Fig. 7-6 experiments (the paper's
// table lists an 18-inch concrete wall; the 8-inch value is interpolated
// between the table's glass-to-concrete range consistent with the relative
// SNR ordering the paper measures: free space > glass > wood > hollow >
// 8-inch concrete).
#pragma once

#include <array>
#include <string_view>

namespace wivi::rf {

enum class Material {
  kFreeSpace,        // no obstruction (Fig. 7-6 control)
  kGlass,            // "Glass" - 3 dB (also the Fig. 7-6 "tinted glass")
  kSolidWoodDoor,    // "Solid Wood Door 1.75 inch" - 6 dB
  kHollowWall,       // "Interior Hollow Wall 6 inch" - 9 dB
  kConcrete8in,      // 8 inch concrete (Fairchild building, Fig. 7-6) - 13 dB
  kConcrete18in,     // "Concrete Wall 18 inch" - 18 dB
  kReinforcedConcrete,  // "Reinforced Concrete" - 40 dB
};

inline constexpr int kNumMaterials = 7;

struct MaterialInfo {
  Material material;
  std::string_view name;
  double one_way_attenuation_db;  // at 2.4 GHz (paper Table 4.1)
};

/// The full table, in enum order.
[[nodiscard]] const std::array<MaterialInfo, kNumMaterials>& material_table();

[[nodiscard]] const MaterialInfo& info(Material m);

/// One-way attenuation in dB.
[[nodiscard]] double one_way_attenuation_db(Material m);

/// Two-way (through-wall round trip) attenuation in dB; through-wall
/// systems traverse the obstacle twice (paper §4).
[[nodiscard]] double two_way_attenuation_db(Material m);

}  // namespace wivi::rf
