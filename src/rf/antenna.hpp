// Antenna gain models.
//
// Wi-Vi uses LP0965 directional antennas (6 dBi, paper §7.1) pointed at the
// wall; the direct TX->RX coupling is attenuated because it leaves/enters
// through the pattern's side, which is what makes nulling of the direct
// path easy (paper §4.1 bullet list).
#pragma once

#include "src/rf/geometry.hpp"

namespace wivi::rf {

class Antenna {
 public:
  /// Isotropic radiator (0 dBi everywhere).
  [[nodiscard]] static Antenna isotropic(Vec2 position);

  /// Directional antenna modelled as a cosine-power pattern:
  /// G(theta) = boresight_gain * max(cos theta, 0)^exponent, floored at
  /// back_lobe_db below boresight. The default exponent gives roughly the
  /// LP0965's ~80 degree half-power beamwidth.
  [[nodiscard]] static Antenna directional(Vec2 position, Vec2 boresight,
                                           double gain_dbi = 6.0,
                                           double exponent = 4.0,
                                           double back_lobe_db = -20.0);

  [[nodiscard]] Vec2 position() const noexcept { return position_; }

  /// Amplitude gain (sqrt of power gain) toward a target point.
  [[nodiscard]] double amplitude_gain_toward(Vec2 target) const;

  /// Power gain in dBi toward a target point.
  [[nodiscard]] double gain_dbi_toward(Vec2 target) const;

 private:
  Vec2 position_;
  Vec2 boresight_{1.0, 0.0};
  bool directional_ = false;
  double boresight_gain_dbi_ = 0.0;
  double exponent_ = 1.0;
  double back_lobe_db_ = -20.0;
};

}  // namespace wivi::rf
