#include "src/rf/noise.hpp"

#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::rf {

double thermal_noise_power_watts(double bandwidth_hz, double noise_figure_db) {
  WIVI_REQUIRE(bandwidth_hz > 0.0, "bandwidth must be positive");
  return kBoltzmann * kRoomTemperatureK * bandwidth_hz * from_db(noise_figure_db);
}

double thermal_noise_power_dbm(double bandwidth_hz, double noise_figure_db) {
  return watts_to_dbm(thermal_noise_power_watts(bandwidth_hz, noise_figure_db));
}

void add_awgn(CVec& x, double noise_power, Rng& rng) {
  WIVI_REQUIRE(noise_power >= 0.0, "noise power must be >= 0");
  if (noise_power == 0.0) return;
  for (auto& v : x) v += rng.complex_gaussian(noise_power);
}

}  // namespace wivi::rf
