// Time-varying multipath channel between Wi-Vi's antennas and the scene.
//
// The channel from TX k to the RX at time t and frequency f is the linear
// superposition (the physical fact Wi-Vi's nulling relies on, paper §1.1):
//
//   h_k(t, f) = direct coupling
//             + sum over static scatterers  (wall flash, furniture, floor)
//             + sum over moving-body scatter points (humans)
//
// each term = antenna gains * path amplitude * wall losses * phase(f, length).
#pragma once

#include <vector>

#include "src/common/types.hpp"
#include "src/rf/antenna.hpp"
#include "src/rf/geometry.hpp"
#include "src/rf/propagation.hpp"

namespace wivi::rf {

/// One reflecting point with its radar cross section.
struct ScatterPoint {
  Vec2 pos;
  double rcs_m2 = 1.0;
};

/// Anything that moves and reflects RF. Humans (sim::HumanBody) implement
/// this; so could the iRobot Create the paper footnotes.
class MovingBody {
 public:
  virtual ~MovingBody() = default;
  /// The body's reflecting points at absolute time t [s].
  [[nodiscard]] virtual std::vector<ScatterPoint> scatter_points(double t) const = 0;
};

class ChannelModel {
 public:
  struct Config {
    double carrier_hz;
    /// Extra isolation on the direct TX->RX path beyond what the antenna
    /// patterns provide (cable layout, shielding).
    double direct_extra_isolation_db;
    Config();
  };

  ChannelModel(Antenna tx0, Antenna tx1, Antenna rx, Config cfg = {});

  void add_wall(Wall wall);
  void add_static_scatterer(ScatterPoint s);
  /// Non-owning: bodies must outlive the channel model.
  void add_moving_body(const MovingBody* body);

  [[nodiscard]] int num_tx() const noexcept { return 2; }
  [[nodiscard]] const Antenna& tx(int index) const;
  [[nodiscard]] const Antenna& rx() const noexcept { return rx_; }

  /// Full channel TX k -> RX at time t and baseband frequency offset df
  /// (subcarrier offset from the carrier).
  [[nodiscard]] cdouble response(int tx_index, double t,
                                 double baseband_offset_hz = 0.0) const;

  /// Static-only part (direct + static scatterers): what nulling cancels.
  [[nodiscard]] cdouble static_response(int tx_index,
                                        double baseband_offset_hz = 0.0) const;

  /// Moving-only part: what survives nulling.
  [[nodiscard]] cdouble moving_response(int tx_index, double t,
                                        double baseband_offset_hz = 0.0) const;

 private:
  [[nodiscard]] cdouble reflected_path(const Antenna& tx, const ScatterPoint& s,
                                       double freq_hz) const;
  [[nodiscard]] cdouble direct_path(const Antenna& tx, double freq_hz) const;
  [[nodiscard]] double wall_losses(Vec2 p, Vec2 q) const;

  Antenna tx0_;
  Antenna tx1_;
  Antenna rx_;
  Config cfg_;
  std::vector<Wall> walls_;
  std::vector<ScatterPoint> statics_;
  std::vector<const MovingBody*> bodies_;
};

}  // namespace wivi::rf
