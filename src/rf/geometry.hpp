// 2-D geometry: positions, directions and time-parameterised trajectories.
//
// Wi-Vi's tracking math is purely planar (device and humans on one floor),
// so 2-D is the faithful model; the paper's figures are all top-view.
#pragma once

#include <vector>

#include "src/common/types.hpp"

namespace wivi::rf {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2 operator+(Vec2 o) const noexcept { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const noexcept { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const noexcept { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const noexcept { return {x / s, y / s}; }

  [[nodiscard]] double norm() const noexcept;
  [[nodiscard]] constexpr double dot(Vec2 o) const noexcept {
    return x * o.x + y * o.y;
  }
  /// Unit vector in this direction; returns {0,0} for the zero vector.
  [[nodiscard]] Vec2 normalized() const noexcept;
};

[[nodiscard]] double distance(Vec2 a, Vec2 b) noexcept;

/// True iff segments [a1,a2] and [b1,b2] intersect (inclusive of endpoints).
[[nodiscard]] bool segments_intersect(Vec2 a1, Vec2 a2, Vec2 b1, Vec2 b2) noexcept;

/// Piecewise-linear trajectory: uniformly sampled positions starting at t=0.
/// position(t) interpolates; velocity(t) is the central finite difference.
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(std::vector<Vec2> samples, double dt);

  /// A body that never moves.
  [[nodiscard]] static Trajectory stationary(Vec2 pos, double duration, double dt);

  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double duration() const noexcept;
  [[nodiscard]] double dt() const noexcept { return dt_; }
  [[nodiscard]] const std::vector<Vec2>& samples() const noexcept {
    return samples_;
  }

  /// Clamped to [0, duration].
  [[nodiscard]] Vec2 position(double t) const;
  [[nodiscard]] Vec2 velocity(double t) const;

  /// Radial speed toward `observer` (positive = approaching) at time t.
  [[nodiscard]] double radial_speed_toward(Vec2 observer, double t) const;

 private:
  std::vector<Vec2> samples_;
  double dt_ = 0.0;
};

}  // namespace wivi::rf
