// Free-space and radar-equation propagation, plus wall traversal.
//
// Channel amplitudes follow the standard link budgets:
//   direct path (Friis):      |h| = lambda / (4 pi d)
//   reflected path (radar eq): |h| = lambda * sqrt(rcs) / ((4 pi)^{3/2} d1 d2)
// (antenna gains are applied separately by the channel model), and every
// path is rotated by exp(-j 2 pi f d / c). Traversing a wall multiplies by
// the material's one-way attenuation once per crossing — which is exactly
// the double-traversal penalty the paper's §4 is about.
#pragma once

#include "src/common/types.hpp"
#include "src/rf/geometry.hpp"
#include "src/rf/materials.hpp"

namespace wivi::rf {

/// Amplitude gain of a line-of-sight path of length d at wavelength lambda.
[[nodiscard]] double friis_amplitude(double distance_m, double wavelength_m);

/// Amplitude gain of a TX -> scatterer -> RX path (radar equation),
/// excluding antenna gains and wall losses. `rcs_m2` is the scatterer's
/// radar cross section.
[[nodiscard]] double reflection_amplitude(double d_tx_m, double d_rx_m,
                                          double rcs_m2, double wavelength_m);

/// Carrier phase rotation accumulated over a path of the given length:
/// exp(-j 2 pi f d / c).
[[nodiscard]] cdouble phase_factor(double path_length_m, double freq_hz);

/// A wall is a finite segment of a given material. Wi-Vi points at one wall;
/// rooms may add more for clutter bookkeeping.
struct Wall {
  Vec2 a;
  Vec2 b;
  Material material = Material::kHollowWall;

  /// Number of times the straight path p->q crosses this wall (0 or 1 for a
  /// segment).
  [[nodiscard]] int traversals(Vec2 p, Vec2 q) const noexcept;

  /// Amplitude factor for the path p->q through this wall.
  [[nodiscard]] double traversal_amplitude(Vec2 p, Vec2 q) const;

  [[nodiscard]] Vec2 midpoint() const noexcept { return (a + b) * 0.5; }
};

}  // namespace wivi::rf
