#include "src/rf/channel.hpp"

#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"

namespace wivi::rf {

ChannelModel::Config::Config()
    : carrier_hz(kCarrierFrequencyHz), direct_extra_isolation_db(10.0) {}

ChannelModel::ChannelModel(Antenna tx0, Antenna tx1, Antenna rx, Config cfg)
    : tx0_(tx0), tx1_(tx1), rx_(rx), cfg_(cfg) {
  WIVI_REQUIRE(cfg_.carrier_hz > 0.0, "carrier frequency must be positive");
}

void ChannelModel::add_wall(Wall wall) { walls_.push_back(wall); }

void ChannelModel::add_static_scatterer(ScatterPoint s) { statics_.push_back(s); }

void ChannelModel::add_moving_body(const MovingBody* body) {
  WIVI_REQUIRE(body != nullptr, "moving body must not be null");
  bodies_.push_back(body);
}

const Antenna& ChannelModel::tx(int index) const {
  WIVI_REQUIRE(index == 0 || index == 1, "tx index must be 0 or 1");
  return index == 0 ? tx0_ : tx1_;
}

double ChannelModel::wall_losses(Vec2 p, Vec2 q) const {
  double amp = 1.0;
  for (const Wall& w : walls_) amp *= w.traversal_amplitude(p, q);
  return amp;
}

cdouble ChannelModel::direct_path(const Antenna& tx, double freq_hz) const {
  const double d = distance(tx.position(), rx_.position());
  if (d <= 0.0) return {0.0, 0.0};
  const double lambda = kSpeedOfLight / freq_hz;
  double amp = tx.amplitude_gain_toward(rx_.position()) *
               rx_.amplitude_gain_toward(tx.position()) *
               friis_amplitude(d, lambda) *
               wall_losses(tx.position(), rx_.position()) *
               db_to_amp(-cfg_.direct_extra_isolation_db);
  return amp * phase_factor(d, freq_hz);
}

cdouble ChannelModel::reflected_path(const Antenna& tx, const ScatterPoint& s,
                                     double freq_hz) const {
  const double d1 = distance(tx.position(), s.pos);
  const double d2 = distance(s.pos, rx_.position());
  if (d1 <= 0.0 || d2 <= 0.0) return {0.0, 0.0};
  const double lambda = kSpeedOfLight / freq_hz;
  const double amp = tx.amplitude_gain_toward(s.pos) *
                     rx_.amplitude_gain_toward(s.pos) *
                     reflection_amplitude(d1, d2, s.rcs_m2, lambda) *
                     wall_losses(tx.position(), s.pos) *
                     wall_losses(s.pos, rx_.position());
  return amp * phase_factor(d1 + d2, freq_hz);
}

cdouble ChannelModel::static_response(int tx_index, double baseband_offset_hz) const {
  const Antenna& t = tx(tx_index);
  const double f = cfg_.carrier_hz + baseband_offset_hz;
  cdouble h = direct_path(t, f);
  for (const ScatterPoint& s : statics_) h += reflected_path(t, s, f);
  return h;
}

cdouble ChannelModel::moving_response(int tx_index, double t,
                                      double baseband_offset_hz) const {
  const Antenna& ant = tx(tx_index);
  const double f = cfg_.carrier_hz + baseband_offset_hz;
  cdouble h{0.0, 0.0};
  for (const MovingBody* body : bodies_) {
    for (const ScatterPoint& s : body->scatter_points(t)) {
      h += reflected_path(ant, s, f);
    }
  }
  return h;
}

cdouble ChannelModel::response(int tx_index, double t,
                               double baseband_offset_hz) const {
  return static_response(tx_index, baseband_offset_hz) +
         moving_response(tx_index, t, baseband_offset_hz);
}

}  // namespace wivi::rf
