#include "src/net/frame.hpp"

#include <bit>
#include <cstring>

#include "src/common/error.hpp"
#include "src/net/crc32c.hpp"

namespace wivi::net {

namespace {

// Little-endian field accessors. Byte-at-a-time assembly keeps the wire
// layout exact on any host endianness and alignment.
std::uint16_t load_u16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}
std::uint32_t load_u32(const std::byte* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
std::uint64_t load_u64(const std::byte* p) noexcept {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}
void store_u16(std::byte* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>(v >> 8);
}
void store_u32(std::byte* p, std::uint32_t v) noexcept {
  store_u16(p, static_cast<std::uint16_t>(v & 0xFFFF));
  store_u16(p + 2, static_cast<std::uint16_t>(v >> 16));
}
void store_u64(std::byte* p, std::uint64_t v) noexcept {
  store_u32(p, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

/// CRC over the whole frame with the crc field treated as zero: the
/// header bytes before the field, four zero bytes, then the payload.
std::uint32_t frame_crc(std::span<const std::byte> header,
                        std::span<const std::byte> payload) noexcept {
  static constexpr std::byte kZeros[4] = {};
  std::uint32_t c = crc32c(0, header.first(28));
  c = crc32c(c, std::span<const std::byte>(kZeros, 4));
  return crc32c(c, payload);
}

}  // namespace

ParseStatus parse_frame(std::span<const std::byte> buf, FrameView& out,
                        std::size_t* consumed) {
  if (buf.size() < 4) {
    // Not enough bytes to even check the magic; only call it kNeedMore if
    // what we do have could be a magic prefix (stream resync relies on
    // kBadMagic for definitely-garbage bytes).
    static constexpr std::byte kMagicBytes[4] = {
        std::byte{0x57}, std::byte{0x56}, std::byte{0x46}, std::byte{0x52}};
    for (std::size_t i = 0; i < buf.size(); ++i)
      if (buf[i] != kMagicBytes[i]) return ParseStatus::kBadMagic;
    return ParseStatus::kNeedMore;
  }
  const std::byte* p = buf.data();
  if (load_u32(p) != kFrameMagic) return ParseStatus::kBadMagic;
  if (buf.size() < kHeaderSize) return ParseStatus::kNeedMore;

  FrameHeader h;
  const std::uint16_t version = load_u16(p + 4);
  h.flags = load_u16(p + 6);
  h.sensor_id = load_u32(p + 8);
  h.payload_len = load_u32(p + 12);
  h.chunk_seq = load_u64(p + 16);
  h.frag_index = load_u16(p + 24);
  h.frag_count = load_u16(p + 26);
  const std::uint32_t crc = load_u32(p + 28);

  // Reject in a fixed order so one malformed frame maps to one cause:
  // version, flags, length, fragment coherence, then the checksum last
  // (the only check that needs the payload bytes).
  if (version != kWireVersion) return ParseStatus::kBadVersion;
  if ((h.flags & ~kKnownFlags) != 0) return ParseStatus::kBadFlags;
  if (h.payload_len > kMaxPayloadBytes) return ParseStatus::kBadLength;
  if (h.frag_count == 0 || h.frag_index >= h.frag_count)
    return ParseStatus::kBadFragment;
  const std::size_t total = kHeaderSize + h.payload_len;
  if (buf.size() < total) return ParseStatus::kNeedMore;

  const std::span<const std::byte> payload = buf.subspan(kHeaderSize, h.payload_len);
  if (frame_crc(buf, payload) != crc) return ParseStatus::kBadCrc;

  out.header = h;
  out.payload = payload;
  if (consumed != nullptr) *consumed = total;
  return ParseStatus::kOk;
}

std::vector<std::byte> encode_frame(const FrameHeader& header,
                                    std::span<const std::byte> payload) {
  WIVI_REQUIRE(payload.size() <= kMaxPayloadBytes,
               "frame payload exceeds kMaxPayloadBytes");
  WIVI_REQUIRE(header.frag_count >= 1 && header.frag_index < header.frag_count,
               "incoherent fragment fields");
  WIVI_REQUIRE((header.flags & ~kKnownFlags) == 0, "unknown frame flags");

  std::vector<std::byte> frame(kHeaderSize + payload.size());
  std::byte* p = frame.data();
  store_u32(p, kFrameMagic);
  store_u16(p + 4, kWireVersion);
  store_u16(p + 6, header.flags);
  store_u32(p + 8, header.sensor_id);
  store_u32(p + 12, static_cast<std::uint32_t>(payload.size()));
  store_u64(p + 16, header.chunk_seq);
  store_u16(p + 24, header.frag_index);
  store_u16(p + 26, header.frag_count);
  store_u32(p + 28, 0);
  if (!payload.empty())
    std::memcpy(p + kHeaderSize, payload.data(), payload.size());
  store_u32(p + 28, frame_crc(frame, payload));
  return frame;
}

std::vector<std::byte> encode_samples(CSpan chunk) {
  std::vector<std::byte> bytes(chunk.size() * kBytesPerSample);
  std::byte* p = bytes.data();
  for (cdouble z : chunk) {
    store_u64(p, std::bit_cast<std::uint64_t>(z.real()));
    store_u64(p + 8, std::bit_cast<std::uint64_t>(z.imag()));
    p += kBytesPerSample;
  }
  return bytes;
}

CVec decode_samples(std::span<const std::byte> bytes) {
  WIVI_REQUIRE(bytes.size() % kBytesPerSample == 0,
               "sample byte length not a multiple of 16");
  CVec out(bytes.size() / kBytesPerSample);
  const std::byte* p = bytes.data();
  for (cdouble& z : out) {
    z = cdouble(std::bit_cast<double>(load_u64(p)),
                std::bit_cast<double>(load_u64(p + 8)));
    p += kBytesPerSample;
  }
  return out;
}

std::vector<std::vector<std::byte>> chunk_to_frames(std::uint32_t sensor_id,
                                                    std::uint64_t chunk_seq,
                                                    CSpan chunk,
                                                    std::size_t max_payload,
                                                    std::uint16_t flags) {
  WIVI_REQUIRE(max_payload >= kBytesPerSample, "max_payload below one sample");
  if (max_payload > kMaxPayloadBytes) max_payload = kMaxPayloadBytes;
  // Whole samples per fragment, so any prefix of fragments is decodable.
  max_payload -= max_payload % kBytesPerSample;

  const std::vector<std::byte> bytes = encode_samples(chunk);
  const std::size_t nfrag =
      bytes.empty() ? 1 : (bytes.size() + max_payload - 1) / max_payload;
  WIVI_REQUIRE(nfrag <= 0xFFFF, "chunk needs more than 65535 fragments");

  std::vector<std::vector<std::byte>> frames;
  frames.reserve(nfrag);
  for (std::size_t f = 0; f < nfrag; ++f) {
    FrameHeader h;
    h.flags = flags;
    h.sensor_id = sensor_id;
    h.chunk_seq = chunk_seq;
    h.frag_index = static_cast<std::uint16_t>(f);
    h.frag_count = static_cast<std::uint16_t>(nfrag);
    const std::size_t off = f * max_payload;
    const std::size_t len = bytes.empty()
                                ? 0
                                : std::min(max_payload, bytes.size() - off);
    frames.push_back(encode_frame(
        h, std::span<const std::byte>(bytes.data() + off, len)));
  }
  return frames;
}

StreamDecoder::StreamDecoder(std::size_t max_buffer)
    : max_buffer_(max_buffer) {
  WIVI_REQUIRE(max_buffer_ >= kHeaderSize + kMaxPayloadBytes,
               "stream buffer must hold at least one maximal frame");
}

void StreamDecoder::push(std::span<const std::byte> data) {
  compact();
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void StreamDecoder::compact() {
  // Drop the consumed prefix so the buffer stays bounded by the unparsed
  // tail (amortised O(1) per byte).
  if (pos_ == 0) return;
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
  pos_ = 0;
}

StreamDecoder::Result StreamDecoder::poll(FrameView& out) {
  for (;;) {
    const std::span<const std::byte> rest(buf_.data() + pos_,
                                          buf_.size() - pos_);
    if (rest.empty()) return Result::kNeedMore;

    std::size_t consumed = 0;
    const ParseStatus st = parse_frame(rest, out, &consumed);
    switch (st) {
      case ParseStatus::kOk:
        pos_ += consumed;
        return Result::kFrame;
      case ParseStatus::kNeedMore:
        if (rest.size() > max_buffer_) {
          // A plausible header promising more than we will ever buffer:
          // drop the prefix and resync (bounded-memory guarantee).
          error_ = ParseStatus::kBadLength;
          skipped_ += rest.size();
          pos_ = buf_.size();
          return Result::kReject;
        }
        return Result::kNeedMore;
      case ParseStatus::kBadMagic: {
        // Garbage byte(s): scan forward to the next candidate magic byte
        // and charge the stream one rejection for the whole skip.
        std::size_t skip = 1;
        while (skip < rest.size() && rest[skip] != std::byte{0x57}) ++skip;
        pos_ += skip;
        skipped_ += skip;
        error_ = ParseStatus::kBadMagic;
        return Result::kReject;
      }
      default:
        // A structurally-delimited bad frame (bad version/flags/length/
        // fragment/crc). The header told us nothing trustworthy about its
        // length, so resync exactly like garbage: skip the magic byte and
        // rescan — but report the precise cause.
        pos_ += 1;
        skipped_ += 1;
        error_ = st;
        return Result::kReject;
    }
  }
}

}  // namespace wivi::net
