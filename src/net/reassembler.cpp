#include "src/net/reassembler.hpp"

#include <utility>

#include "src/common/error.hpp"

namespace wivi::net {

Reassembler::Reassembler(std::uint32_t sensor_id, Config cfg)
    : sensor_id_(sensor_id), cfg_(cfg) {
  WIVI_REQUIRE(cfg_.window_chunks >= 1, "reassembly window must be >= 1");
  WIVI_REQUIRE(cfg_.max_chunk_bytes >= kBytesPerSample,
               "max_chunk_bytes below one sample");
}

void Reassembler::feed(const FrameView& view, const ChunkSink& sink,
                       const EndSink& end) {
  const FrameHeader& h = view.header;
  ++stats_.frames_in;

  if (h.chunk_seq < next_seq_) {
    ++stats_.frames_stale;  // already delivered or abandoned; a late dup
    return;
  }

  // Window overflow: the new frame sits too far ahead of the delivery
  // cursor. Force the cursor forward to make room, delivering what
  // completed, abandoning stragglers and recording the never-seen
  // sequence numbers as gaps — the wire lost them.
  if (h.chunk_seq >= next_seq_ + cfg_.window_chunks) {
    const std::uint64_t target = h.chunk_seq - cfg_.window_chunks + 1;
    std::uint64_t seen_below = 0;
    for (auto it = window_.begin();
         it != window_.end() && it->first < target;) {
      ++seen_below;
      Partial& p = it->second;
      if (!p.abandoned && p.received == p.frag_count)
        deliver(it->first, p, sink, end);
      else if (!p.abandoned)
        abandon(p);
      it = window_.erase(it);
    }
    stats_.chunk_gaps += (target - next_seq_) - seen_below;
    next_seq_ = target;
  }

  auto [it, created] = window_.try_emplace(h.chunk_seq);
  Partial& p = it->second;
  if (created) {
    p.frag_count = h.frag_count;
    p.frags.resize(h.frag_count);
    p.have.assign(h.frag_count, 0);
  } else if (p.abandoned) {
    ++stats_.frames_stale;  // chunk already given up on
    return;
  } else if (p.frag_count != h.frag_count) {
    // Two frames of the same chunk disagree about its shape: corruption
    // that survived the CRC (or a hostile sender). Keep the first story.
    ++stats_.frames_decode_failed;
    return;
  }
  if (p.have[h.frag_index]) {
    ++stats_.frames_dup;
    return;
  }
  p.have[h.frag_index] = 1;
  p.frags[h.frag_index].assign(view.payload.begin(), view.payload.end());
  ++p.received;
  p.bytes += view.payload.size();
  p.end_of_stream = p.end_of_stream || (h.flags & kFlagEndOfStream) != 0;
  ++stats_.frames_in_flight;

  if (p.bytes > cfg_.max_chunk_bytes)
    abandon(p);  // keeps a tombstone so late fragments read as stale

  deliver_ready(sink, end);
}

void Reassembler::deliver_ready(const ChunkSink& sink, const EndSink& end) {
  while (!window_.empty()) {
    auto it = window_.begin();
    if (it->first != next_seq_) break;
    Partial& p = it->second;
    if (!p.abandoned && p.received != p.frag_count)
      break;  // strict in-order delivery: wait for the head to complete
    if (!p.abandoned) deliver(it->first, p, sink, end);
    window_.erase(it);
    ++next_seq_;
  }
}

void Reassembler::deliver(std::uint64_t seq, Partial& p, const ChunkSink& sink,
                          const EndSink& end) {
  stats_.frames_in_flight -= p.received;

  // Concatenate the fragments into the chunk's wire bytes.
  std::vector<std::byte> bytes;
  bytes.reserve(p.bytes);
  for (const std::vector<std::byte>& f : p.frags)
    bytes.insert(bytes.end(), f.begin(), f.end());

  if (bytes.empty()) {
    // Pure control chunk (end-of-stream marker): nothing to deliver.
    stats_.frames_control += p.received;
  } else if (bytes.size() % kBytesPerSample != 0) {
    // Fragments assembled to a non-sample-aligned byte count — a torn or
    // forged chunk. Typed discard, never an exception.
    stats_.frames_decode_failed += p.received;
  } else if (sink && sink(sensor_id_, seq, decode_samples(bytes))) {
    stats_.frames_delivered += p.received;
    ++stats_.chunks_delivered;
    stats_.bytes_delivered += bytes.size();
  } else {
    stats_.frames_sink_dropped += p.received;
    ++stats_.sink_dropped_chunks;
  }

  if (p.end_of_stream && end) end(sensor_id_);
}

void Reassembler::abandon(Partial& p) {
  stats_.frames_in_flight -= p.received;
  stats_.frames_evicted += p.received;
  ++stats_.chunks_evicted;
  p.frags.clear();
  p.have.clear();
  p.received = 0;
  p.bytes = 0;
  p.abandoned = true;
}

void Reassembler::flush(const ChunkSink& sink, const EndSink& end) {
  std::uint64_t cursor = next_seq_;
  for (auto& [seq, p] : window_) {
    stats_.chunk_gaps += seq - cursor;
    cursor = seq + 1;
    if (p.abandoned) continue;
    if (p.received == p.frag_count)
      deliver(seq, p, sink, end);
    else
      abandon(p);
  }
  window_.clear();
  next_seq_ = cursor;
}

Demux::Demux(Reassembler::Config cfg, ChunkSink sink, EndSink end,
             std::size_t max_sensors)
    : cfg_(cfg),
      sink_(std::move(sink)),
      end_(std::move(end)),
      max_sensors_(max_sensors) {}

void Demux::feed(const FrameView& view) {
  const std::uint32_t id = view.header.sensor_id;
  auto it = sensors_.find(id);
  if (it == sensors_.end()) {
    if (sensors_.size() >= max_sensors_) {
      ++sensors_refused_;  // hostile sensor-id churn: refuse, don't grow
      return;
    }
    it = sensors_.emplace(id, std::make_unique<Reassembler>(id, cfg_)).first;
  }
  it->second->feed(view, sink_, end_);
}

void Demux::flush() {
  for (auto& [id, r] : sensors_) r->flush(sink_, end_);
}

Demux::Stats Demux::stats() const {
  Stats sum;
  for (const auto& [id, r] : sensors_) {
    const Stats& s = r->stats();
    sum.frames_in += s.frames_in;
    sum.frames_delivered += s.frames_delivered;
    sum.frames_dup += s.frames_dup;
    sum.frames_stale += s.frames_stale;
    sum.frames_evicted += s.frames_evicted;
    sum.frames_decode_failed += s.frames_decode_failed;
    sum.frames_sink_dropped += s.frames_sink_dropped;
    sum.frames_control += s.frames_control;
    sum.frames_in_flight += s.frames_in_flight;
    sum.chunks_delivered += s.chunks_delivered;
    sum.chunks_evicted += s.chunks_evicted;
    sum.chunk_gaps += s.chunk_gaps;
    sum.bytes_delivered += s.bytes_delivered;
    sum.sink_dropped_chunks += s.sink_dropped_chunks;
  }
  return sum;
}

const Reassembler* Demux::sensor(std::uint32_t id) const {
  auto it = sensors_.find(id);
  return it == sensors_.end() ? nullptr : it->second.get();
}

}  // namespace wivi::net
