/// @file
/// The wivi wire format: versioned, CRC-protected sample-chunk frames.
///
/// This is the load-bearing artifact of the ingress layer (DESIGN.md §13):
/// everything downstream — parsing, reassembly, fuzzing, capture/replay —
/// hangs off these exact bytes. One frame carries one fragment of one
/// sample chunk from one sensor:
///
///   offset size field        notes (all integers little-endian)
///        0    4 magic        0x52465657 ("WVFR" as bytes on the wire)
///        4    2 version      kWireVersion; parsers reject others
///        6    2 flags        bit 0 = end-of-stream; others must be zero
///        8    4 sensor_id    which sensor's stream this belongs to
///       12    4 payload_len  payload bytes following the header
///       16    8 chunk_seq    per-sensor chunk sequence number
///       24    2 frag_index   fragment position within the chunk
///       26    2 frag_count   fragments in the chunk (>= 1)
///       28    4 crc32c       over header (crc field zeroed) + payload
///       32    – payload      frag_index'th slice of the chunk's samples
///
/// Payload bytes are the chunk's complex samples serialised as IEEE-754
/// binary64 little-endian pairs (re, im) and sliced into fragments of at
/// most kMaxPayloadBytes; a complete chunk's byte length must be a
/// multiple of kBytesPerSample. A frame is exactly one UDP datagram; over
/// TCP frames are laid back to back and StreamDecoder re-frames the byte
/// stream (tolerating split/merged reads and resynchronising on garbage).
///
/// Versioning/compat policy (DESIGN.md §13): the header layout of version
/// 1 is frozen. Additive evolution happens through new flag bits (a v1
/// parser rejects frames using bits it does not know — fail closed);
/// anything else bumps `version`, and a parser accepts exactly the
/// versions it implements. Capture files record raw frames, so a capture
/// is readable for as long as a parser for its frames' version exists.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/types.hpp"

namespace wivi::net {

/// @addtogroup wivi_net
/// @{

/// Wire magic: the bytes 'W','V','F','R' read as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x52465657u;
/// The one wire-format version this library speaks.
inline constexpr std::uint16_t kWireVersion = 1;
/// Fixed frame-header size in bytes.
inline constexpr std::size_t kHeaderSize = 32;
/// Hard cap on one frame's payload: header + payload always fit one UDP
/// datagram (64 KiB) with room to spare.
inline constexpr std::size_t kMaxPayloadBytes = 32 * 1024;
/// Bytes one complex sample occupies on the wire (two binary64 values).
inline constexpr std::size_t kBytesPerSample = 16;

/// Frame flags (header `flags` field). Unknown bits are a parse error —
/// the fail-closed half of the versioning policy.
enum FrameFlags : std::uint16_t {
  /// The sensor's stream ends after this chunk (a close_session marker).
  kFlagEndOfStream = 1u << 0,
};
/// Every flag bit version 1 defines; the rest must be zero on the wire.
inline constexpr std::uint16_t kKnownFlags = kFlagEndOfStream;

/// Why a frame was rejected — the typed taxonomy every parse failure maps
/// to (counted per cause by the receiver's `wivi_net_frames_rejected_*`
/// metrics; never an exception, never a crash).
enum class ParseStatus {
  kOk = 0,       ///< a complete, checksummed frame was parsed
  kNeedMore,     ///< stream mode: more bytes required (not an error)
  kBadMagic,     ///< the buffer does not start with kFrameMagic
  kBadVersion,   ///< a version this parser does not implement
  kBadFlags,     ///< unknown flag bits set (fail closed)
  kBadLength,    ///< payload_len over kMaxPayloadBytes, or datagram size
                 ///  disagreeing with header + payload_len
  kBadFragment,  ///< frag_count == 0 or frag_index >= frag_count
  kBadCrc,       ///< checksum mismatch (corruption in header or payload)
};

/// Stable identifier string of a ParseStatus ("Ok", "BadCrc", ...).
[[nodiscard]] constexpr const char* parse_status_name(
    ParseStatus s) noexcept {
  switch (s) {
    case ParseStatus::kOk: return "Ok";
    case ParseStatus::kNeedMore: return "NeedMore";
    case ParseStatus::kBadMagic: return "BadMagic";
    case ParseStatus::kBadVersion: return "BadVersion";
    case ParseStatus::kBadFlags: return "BadFlags";
    case ParseStatus::kBadLength: return "BadLength";
    case ParseStatus::kBadFragment: return "BadFragment";
    case ParseStatus::kBadCrc: return "BadCrc";
  }
  return "Unknown";
}

/// The decoded header fields of one frame.
struct FrameHeader {
  std::uint16_t flags = 0;        ///< FrameFlags bits in effect
  std::uint32_t sensor_id = 0;    ///< originating sensor
  std::uint32_t payload_len = 0;  ///< payload bytes in this frame
  std::uint64_t chunk_seq = 0;    ///< per-sensor chunk sequence number
  std::uint16_t frag_index = 0;   ///< fragment position within the chunk
  std::uint16_t frag_count = 1;   ///< fragments making up the chunk
};

/// A zero-copy view of one parsed frame: decoded header plus a span over
/// the payload bytes *inside the caller's buffer*. Valid only as long as
/// that buffer is.
struct FrameView {
  FrameHeader header;                 ///< decoded header fields
  std::span<const std::byte> payload; ///< payload bytes, not copied
};

/// Parse one frame from the front of `buf` without copying. On kOk,
/// `out` views into `buf` and `*consumed` (when non-null) is the frame's
/// total byte length. kNeedMore means `buf` holds a plausible frame
/// prefix — datagram parsers should treat it as kBadLength (a datagram is
/// never a prefix), stream parsers should read more bytes. Any other
/// status is a typed rejection; `out` is unspecified.
[[nodiscard]] ParseStatus parse_frame(std::span<const std::byte> buf,
                                      FrameView& out,
                                      std::size_t* consumed = nullptr);

/// Serialise one frame: header fields + raw payload bytes, CRC computed
/// here. `payload.size()` must be <= kMaxPayloadBytes and the fragment
/// fields must be coherent (checked, InvalidArgument).
[[nodiscard]] std::vector<std::byte> encode_frame(
    const FrameHeader& header, std::span<const std::byte> payload);

/// Serialise `chunk` as the samples-on-the-wire byte layout (binary64
/// little-endian re/im pairs).
[[nodiscard]] std::vector<std::byte> encode_samples(CSpan chunk);

/// Decode the samples-on-the-wire byte layout back into complex samples.
/// `bytes.size()` must be a multiple of kBytesPerSample (checked,
/// InvalidArgument — callers validate first and reject, they don't catch).
[[nodiscard]] CVec decode_samples(std::span<const std::byte> bytes);

/// Slice one sample chunk into its wire frames: fragments of at most
/// `max_payload` bytes (clamped to kMaxPayloadBytes), all carrying
/// (sensor_id, chunk_seq), frag_index running 0..frag_count-1. An empty
/// chunk yields one zero-payload frame (how kFlagEndOfStream travels:
/// set `flags` on the last —only— fragment via the returned frames).
[[nodiscard]] std::vector<std::vector<std::byte>> chunk_to_frames(
    std::uint32_t sensor_id, std::uint64_t chunk_seq, CSpan chunk,
    std::size_t max_payload = kMaxPayloadBytes, std::uint16_t flags = 0);

/// Re-frames a TCP byte stream: push() appends received bytes (any split
/// or merge the transport produced), poll() yields one parsed frame or
/// one typed rejection at a time. After a rejection the decoder
/// resynchronises by scanning forward for the next byte that could start
/// a frame (the classic resync idiom), so one corrupt frame costs exactly
/// one rejection, not the rest of the stream.
class StreamDecoder {
 public:
  /// What poll() produced.
  enum class Result {
    kFrame,     ///< `out` holds the next parsed frame
    kNeedMore,  ///< buffer exhausted; push() more bytes
    kReject,    ///< a typed rejection (see last_error()); resync done
  };

  /// Cap on buffered-but-unparsed bytes. A stream that exceeds it loses
  /// its buffered prefix (one kBadLength rejection) — the bound that
  /// keeps a hostile peer from ballooning memory.
  explicit StreamDecoder(std::size_t max_buffer = 4 * (kHeaderSize + kMaxPayloadBytes));

  /// Append bytes received from the transport.
  void push(std::span<const std::byte> data);

  /// Extract the next frame or rejection. On kFrame, `out.payload` views
  /// into the decoder's buffer and stays valid until the next push() or
  /// poll().
  [[nodiscard]] Result poll(FrameView& out);

  /// The rejection cause of the last kReject result.
  [[nodiscard]] ParseStatus last_error() const noexcept { return error_; }
  /// Bytes skipped by resynchronisation scans so far.
  [[nodiscard]] std::uint64_t bytes_skipped() const noexcept {
    return skipped_;
  }

 private:
  void compact();

  std::vector<std::byte> buf_;
  std::size_t pos_ = 0;  // parse cursor into buf_
  std::size_t max_buffer_;
  ParseStatus error_ = ParseStatus::kOk;
  std::uint64_t skipped_ = 0;
};

/// @}

}  // namespace wivi::net
