/// @file
/// The frame producer side of the wire: chunks → frames → UDP datagrams
/// or a TCP byte stream.
///
/// Sender is the client half of the loopback ingress path (the tests' and
/// sim::NetFeeder's stand-in for a sensor host): it slices sample chunks
/// into wire frames with chunk_to_frames, tracks one chunk_seq per
/// sensor, and writes each frame to the socket — one datagram per frame
/// over UDP, frames laid back to back over TCP. An optional FaultyWire
/// sits between encoding and the socket so the chaos suites can perturb
/// the byte stream deterministically without touching the transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/net/frame.hpp"
#include "src/net/wire_fault.hpp"

namespace wivi::net {

/// @addtogroup wivi_net
/// @{

/// Which transport a Sender (and its matching Receiver socket) speaks.
enum class Transport {
  kUdp,  ///< one frame per datagram; loss/reorder possible even on loopback
  kTcp,  ///< frames back to back on one connection; lossless and ordered
};

/// Sends framed sample chunks to a Receiver.
class Sender {
 public:
  /// Where and how to send.
  struct Config {
    Transport transport = Transport::kUdp;  ///< datagrams or a stream
    std::string host = "127.0.0.1";         ///< receiver address (IPv4)
    std::uint16_t port = 0;                 ///< receiver port (required)
    /// Fragment payload cap handed to chunk_to_frames (clamped to
    /// kMaxPayloadBytes); small values force multi-fragment chunks.
    std::size_t max_payload = kMaxPayloadBytes;
    /// Optional deterministic wire perturbation, applied to every encoded
    /// frame before it reaches the socket. Not owned; may be nullptr.
    FaultyWire* wire = nullptr;
  };

  /// Open the socket (and, for TCP, connect). Throws TypedError of
  /// ErrorCode::kIoError when the socket cannot be created or connected.
  explicit Sender(Config cfg);
  ~Sender();  ///< Closes the socket (flushing any held faulted frame).

  Sender(const Sender&) = delete;             ///< Non-copyable.
  Sender& operator=(const Sender&) = delete;  ///< Non-copyable.

  /// Frame `chunk` as the sensor's next chunk_seq and send every
  /// fragment. Returns the chunk_seq used.
  std::uint64_t send_chunk(std::uint32_t sensor_id, CSpan chunk);

  /// Send the sensor's end-of-stream mark (a zero-payload frame with
  /// kFlagEndOfStream) and flush any frame a FaultyWire held for
  /// reordering. Returns the chunk_seq used.
  std::uint64_t send_end(std::uint32_t sensor_id);

  /// Send one already-encoded frame verbatim (fuzz/malformed-input tests
  /// use this to put arbitrary bytes on the wire). Bypasses the
  /// FaultyWire.
  void send_raw(std::span<const std::byte> frame);

  /// Close the socket early (idempotent; destructor calls it).
  void close();

  /// Frames that reached the socket so far.
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_;
  }
  /// Bytes that reached the socket so far.
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_;
  }
  /// Next chunk_seq the sensor would be assigned.
  [[nodiscard]] std::uint64_t next_seq(std::uint32_t sensor_id) const;

 private:
  void send_frames(std::vector<std::vector<std::byte>>&& frames);
  void write_frame(std::vector<std::byte>&& frame);

  Config cfg_;
  int fd_ = -1;
  std::map<std::uint32_t, std::uint64_t> seq_;  ///< per-sensor next seq
  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

/// @}

}  // namespace wivi::net
