/// @file
/// Capture and bit-exact replay of the network ingress (DESIGN.md §13).
///
/// CaptureWriter dumps every accepted frame, with its arrival metadata,
/// to a versioned on-disk format; Replayer feeds a capture back through
/// the exact per-sensor reassembly path the live Receiver runs, so any
/// production incident becomes a deterministic regression case: same
/// frames in, same chunks out, bit for bit.
///
/// On-disk format "WVCP" version 1 (all integers little-endian):
///
///   file header : u32 magic 0x50435657 ("WVCP"), u16 version = 1,
///                 u16 reserved (zero)
///   record      : i64 arrival_ns, u32 frame_len, u8[frame_len] frame
///
/// The frame bytes are stored verbatim — wire format, CRC and all — so a
/// capture stays readable for as long as a parser for its frames' wire
/// version exists, and replay needs no re-encoding step that could drift
/// from the live bytes.
///
/// Writer threading (the pdump-writer idiom): the hot path (the
/// receiver's I/O thread) only copies the frame into a lock-free SPSC
/// ring; a dedicated writer thread drains the ring to buffered file
/// writes. A full ring *drops the record and counts it* — capture is a
/// diagnostic tap and must never apply backpressure to live ingest. For
/// deterministic tests and tools a synchronous mode writes inline.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/net/frame.hpp"
#include "src/net/reassembler.hpp"
#include "src/rt/spsc_ring.hpp"

namespace wivi::net {

/// @addtogroup wivi_net
/// @{

/// Capture-file magic: the bytes 'W','V','C','P' as a little-endian u32.
inline constexpr std::uint32_t kCaptureMagic = 0x50435657u;
/// The capture-file format version this library reads and writes.
inline constexpr std::uint16_t kCaptureVersion = 1;

/// One captured frame: its arrival instant plus the verbatim wire bytes.
struct CaptureRecord {
  std::int64_t arrival_ns = 0;   ///< obs::now_ns() at frame arrival
  std::vector<std::byte> frame;  ///< the frame exactly as received
};

/// Ring-drained (or synchronous) capture-file writer.
class CaptureWriter {
 public:
  /// Writer configuration.
  struct Config {
    /// Records buffered between the hot path and the writer thread.
    std::size_t ring_capacity = 1024;
    /// Write inline on append() instead of via the writer thread —
    /// deterministic (nothing can drop) and test/tool friendly.
    bool synchronous = false;
  };

  /// Open `path` for writing and emit the file header. Throws
  /// TypedError{kIoError} when the file cannot be opened.
  explicit CaptureWriter(const std::string& path, Config cfg);
  /// Same, with the default Config.
  explicit CaptureWriter(const std::string& path);
  /// Flushes, stops the writer thread and closes the file.
  ~CaptureWriter();

  CaptureWriter(const CaptureWriter&) = delete;             ///< Non-copyable.
  CaptureWriter& operator=(const CaptureWriter&) = delete;  ///< Non-copyable.

  /// Append one accepted frame (hot path: one copy into the ring; a full
  /// ring drops the record and advances drops()). In synchronous mode the
  /// record is written before returning.
  void append(std::int64_t arrival_ns, std::span<const std::byte> frame);

  /// Drain everything queued so far, stop accepting records and close the
  /// file (idempotent; the destructor calls it).
  void close();

  /// Records accepted into the capture so far.
  [[nodiscard]] std::uint64_t records() const noexcept;
  /// Records lost to a full ring (the price of never blocking ingest).
  [[nodiscard]] std::uint64_t drops() const noexcept;
  /// Frame bytes written so far (excluding headers), exact once closed.
  [[nodiscard]] std::uint64_t bytes() const noexcept;

 private:
  void writer_loop();
  void write_record(const CaptureRecord& rec);

  Config cfg_;
  std::ofstream out_;
  rt::SpscRing<CaptureRecord> ring_;
  std::thread writer_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

/// Sequential reader over a capture file. Validates the file header at
/// open (TypedError{kIoError} on a missing/foreign/unsupported file) and
/// rejects torn trailing records gracefully (truncated() turns true, no
/// exception — a capture cut off mid-record replays its intact prefix).
class CaptureReader {
 public:
  /// Open and validate `path`.
  explicit CaptureReader(const std::string& path);

  /// Read the next record. False at end of file (or at a torn tail,
  /// which also sets truncated()).
  [[nodiscard]] bool next(CaptureRecord& out);

  /// True when the file ended mid-record (crash-truncated capture).
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  /// Records read so far.
  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  std::ifstream in_;
  bool truncated_ = false;
  std::uint64_t records_ = 0;
};

/// Replays a capture through the same parse + per-sensor reassembly path
/// the live Receiver runs. Frames are re-parsed from their stored bytes
/// (so a corrupted capture rejects frames exactly like a corrupted wire)
/// and fed to a Demux in recorded arrival order — the determinism that
/// makes replay output bit-identical to the live run.
class Replayer {
 public:
  /// Replay `path` with the given reassembly configuration (must match
  /// the live receiver's for bit-identical replay).
  Replayer(const std::string& path, Reassembler::Config cfg,
           ChunkSink sink, EndSink end = nullptr);

  /// Feed every record through the demux. Returns the number of frames
  /// replayed (parse rejects included in stats(), not in the count).
  std::uint64_t run();

  /// The reassembly/accounting state after (or during) run().
  [[nodiscard]] const Demux& demux() const noexcept { return demux_; }
  /// Frames whose stored bytes failed to re-parse (corrupt capture).
  [[nodiscard]] std::uint64_t parse_rejects() const noexcept {
    return parse_rejects_;
  }
  /// The reader, for truncation state.
  [[nodiscard]] const CaptureReader& reader() const noexcept {
    return reader_;
  }

 private:
  CaptureReader reader_;
  Demux demux_;
  std::uint64_t parse_rejects_ = 0;
};

/// @}

}  // namespace wivi::net
