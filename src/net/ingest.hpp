/// @file
/// Glue between the network ingress and the streaming runtime: sensor
/// streams become rt::Engine sessions.
///
/// EngineBinding is the ChunkSink/EndSink pair a Receiver (or Replayer)
/// delivers into: the first chunk from a sensor opens an engine session
/// compiled from the binding's PipelineSpec, later chunks are offered to
/// that session's ring (zero payload copy — the CVec moves straight in),
/// and the sensor's end-of-stream mark closes the session. A false
/// offer() (kDropNewest with a full ring) propagates back as a refused
/// chunk, which the reassembler counts as sink-dropped — the overload
/// path stays observable end to end.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "src/api/spec.hpp"
#include "src/net/reassembler.hpp"
#include "src/rt/engine.hpp"

namespace wivi::net {

/// @addtogroup wivi_net
/// @{

/// Routes per-sensor chunk streams into rt::Engine sessions.
class EngineBinding {
 public:
  /// How every sensor's session is opened.
  struct Config {
    /// Pipeline compiled for each sensor's session.
    api::PipelineSpec spec;
    /// Ingestion-edge knobs of each session (ring depth, backpressure...).
    rt::IngestConfig ingest;
    /// Close the sensor's session when its end-of-stream mark arrives.
    bool close_on_end = true;
  };

  /// Bind to `engine` (not owned; must outlive the binding).
  EngineBinding(rt::Engine& engine, Config cfg)
      : engine_(engine), cfg_(std::move(cfg)) {}

  /// The ChunkSink to hand a Receiver/Replayer/Demux.
  [[nodiscard]] ChunkSink sink() {
    return [this](std::uint32_t sensor_id, std::uint64_t chunk_seq,
                  CVec&& chunk) {
      return deliver(sensor_id, chunk_seq, std::move(chunk));
    };
  }
  /// The EndSink to hand the same consumer.
  [[nodiscard]] EndSink end_sink() {
    return [this](std::uint32_t sensor_id) { end(sensor_id); };
  }

  /// The engine session a sensor was bound to (nullopt: never seen).
  [[nodiscard]] std::optional<rt::SessionId> session(
      std::uint32_t sensor_id) const;
  /// Sensors bound to sessions so far.
  [[nodiscard]] std::size_t num_sessions() const;
  /// Close every still-open bound session (for streams that never sent an
  /// end-of-stream mark; makes Engine::drain() well-defined).
  void close_all();

 private:
  bool deliver(std::uint32_t sensor_id, std::uint64_t chunk_seq, CVec&& chunk);
  void end(std::uint32_t sensor_id);
  rt::SessionId bind(std::uint32_t sensor_id);

  rt::Engine& engine_;
  Config cfg_;
  mutable std::mutex mu_;
  std::map<std::uint32_t, rt::SessionId> sessions_;
  std::map<std::uint32_t, bool> closed_;
};

/// @}

}  // namespace wivi::net
