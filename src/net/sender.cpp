#include "src/net/sender.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/error.hpp"

namespace wivi::net {

namespace {

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw TypedError(ErrorCode::kIoError,
                     "net::Sender: not an IPv4 address: " + host);
  return addr;
}

}  // namespace

Sender::Sender(Config cfg) : cfg_(std::move(cfg)) {
  WIVI_REQUIRE(cfg_.port != 0, "net::Sender needs a destination port");
  const sockaddr_in addr = make_addr(cfg_.host, cfg_.port);
  const int type = cfg_.transport == Transport::kUdp ? SOCK_DGRAM : SOCK_STREAM;
  fd_ = ::socket(AF_INET, type, 0);
  if (fd_ < 0)
    throw TypedError(ErrorCode::kIoError,
                     std::string("net::Sender: socket: ") + std::strerror(errno));
  // connect() on both transports: the UDP socket learns its default
  // destination (plain send() afterwards) and surfaces ICMP errors.
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw TypedError(ErrorCode::kIoError,
                     std::string("net::Sender: connect: ") + std::strerror(err));
  }
}

Sender::~Sender() { close(); }

void Sender::close() {
  if (fd_ < 0) return;
  if (cfg_.wire != nullptr)
    cfg_.wire->flush(
        [this](std::vector<std::byte>&& f) { write_frame(std::move(f)); });
  ::close(fd_);
  fd_ = -1;
}

void Sender::write_frame(std::vector<std::byte>&& frame) {
  WIVI_REQUIRE(fd_ >= 0, "net::Sender is closed");
  const char* p = reinterpret_cast<const char*>(frame.data());
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TypedError(ErrorCode::kIoError,
                       std::string("net::Sender: send: ") +
                           std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  ++frames_sent_;
  bytes_sent_ += frame.size();
}

void Sender::send_raw(std::span<const std::byte> frame) {
  write_frame(std::vector<std::byte>(frame.begin(), frame.end()));
}

void Sender::send_frames(std::vector<std::vector<std::byte>>&& frames) {
  for (std::vector<std::byte>& f : frames) {
    if (cfg_.wire != nullptr)
      cfg_.wire->feed(std::move(f), [this](std::vector<std::byte>&& out) {
        write_frame(std::move(out));
      });
    else
      write_frame(std::move(f));
  }
}

std::uint64_t Sender::send_chunk(std::uint32_t sensor_id, CSpan chunk) {
  const std::uint64_t seq = seq_[sensor_id]++;
  send_frames(chunk_to_frames(sensor_id, seq, chunk, cfg_.max_payload));
  return seq;
}

std::uint64_t Sender::send_end(std::uint32_t sensor_id) {
  const std::uint64_t seq = seq_[sensor_id]++;
  send_frames(
      chunk_to_frames(sensor_id, seq, CSpan{}, cfg_.max_payload,
                      kFlagEndOfStream));
  if (cfg_.wire != nullptr)
    cfg_.wire->flush(
        [this](std::vector<std::byte>&& f) { write_frame(std::move(f)); });
  return seq;
}

std::uint64_t Sender::next_seq(std::uint32_t sensor_id) const {
  const auto it = seq_.find(sensor_id);
  return it == seq_.end() ? 0 : it->second;
}

}  // namespace wivi::net
