#include "src/net/capture.hpp"

#include <chrono>
#include <cstring>

#include "src/common/error.hpp"

namespace wivi::net {

namespace {

// Little-endian scalar I/O for the capture container (the frame bytes
// themselves are opaque here — stored and replayed verbatim).
void store_u16(std::byte* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::byte>(v & 0xFF);
  p[1] = static_cast<std::byte>(v >> 8);
}
void store_u32(std::byte* p, std::uint32_t v) noexcept {
  store_u16(p, static_cast<std::uint16_t>(v & 0xFFFF));
  store_u16(p + 2, static_cast<std::uint16_t>(v >> 16));
}
void store_u64(std::byte* p, std::uint64_t v) noexcept {
  store_u32(p, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  store_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}
std::uint16_t load_u16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}
std::uint32_t load_u32(const std::byte* p) noexcept {
  return static_cast<std::uint32_t>(load_u16(p)) |
         (static_cast<std::uint32_t>(load_u16(p + 2)) << 16);
}
std::uint64_t load_u64(const std::byte* p) noexcept {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

constexpr std::size_t kFileHeaderSize = 8;
constexpr std::size_t kRecordHeaderSize = 12;

}  // namespace

CaptureWriter::CaptureWriter(const std::string& path, Config cfg)
    : cfg_(cfg),
      out_(path, std::ios::binary | std::ios::trunc),
      ring_(cfg.ring_capacity) {
  if (!out_)
    throw TypedError(ErrorCode::kIoError,
                     "capture: cannot open for writing: " + path);
  std::byte hdr[kFileHeaderSize];
  store_u32(hdr, kCaptureMagic);
  store_u16(hdr + 4, kCaptureVersion);
  store_u16(hdr + 6, 0);  // reserved
  out_.write(reinterpret_cast<const char*>(hdr), kFileHeaderSize);
  if (!cfg_.synchronous) writer_ = std::thread([this] { writer_loop(); });
}

CaptureWriter::CaptureWriter(const std::string& path)
    : CaptureWriter(path, Config()) {}

CaptureWriter::~CaptureWriter() { close(); }

void CaptureWriter::append(std::int64_t arrival_ns,
                           std::span<const std::byte> frame) {
  if (closed_.load(std::memory_order_acquire)) return;
  CaptureRecord rec{arrival_ns,
                    std::vector<std::byte>(frame.begin(), frame.end())};
  if (cfg_.synchronous) {
    write_record(rec);
    records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (ring_.try_push(std::move(rec)))
    records_.fetch_add(1, std::memory_order_relaxed);
  else
    drops_.fetch_add(1, std::memory_order_relaxed);
}

void CaptureWriter::write_record(const CaptureRecord& rec) {
  std::byte hdr[kRecordHeaderSize];
  store_u64(hdr, static_cast<std::uint64_t>(rec.arrival_ns));
  store_u32(hdr + 8, static_cast<std::uint32_t>(rec.frame.size()));
  out_.write(reinterpret_cast<const char*>(hdr), kRecordHeaderSize);
  if (!rec.frame.empty())
    out_.write(reinterpret_cast<const char*>(rec.frame.data()),
               static_cast<std::streamsize>(rec.frame.size()));
  bytes_.fetch_add(rec.frame.size(), std::memory_order_relaxed);
}

void CaptureWriter::writer_loop() {
  CaptureRecord rec;
  for (;;) {
    if (ring_.try_pop(rec)) {
      write_record(rec);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      while (ring_.try_pop(rec)) write_record(rec);  // final drain
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void CaptureWriter::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (writer_.joinable()) writer_.join();
  out_.flush();
  out_.close();
}

std::uint64_t CaptureWriter::records() const noexcept {
  return records_.load(std::memory_order_relaxed);
}
std::uint64_t CaptureWriter::drops() const noexcept {
  return drops_.load(std::memory_order_relaxed);
}
std::uint64_t CaptureWriter::bytes() const noexcept {
  return bytes_.load(std::memory_order_relaxed);
}

CaptureReader::CaptureReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_)
    throw TypedError(ErrorCode::kIoError,
                     "capture: cannot open for reading: " + path);
  std::byte hdr[kFileHeaderSize];
  if (!in_.read(reinterpret_cast<char*>(hdr), kFileHeaderSize))
    throw TypedError(ErrorCode::kIoError, "capture: file too short: " + path);
  if (load_u32(hdr) != kCaptureMagic)
    throw TypedError(ErrorCode::kIoError, "capture: not a WVCP file: " + path);
  const std::uint16_t version = load_u16(hdr + 4);
  if (version != kCaptureVersion)
    throw TypedError(ErrorCode::kIoError,
                     "capture: unsupported version " + std::to_string(version) +
                         ": " + path);
}

bool CaptureReader::next(CaptureRecord& out) {
  std::byte hdr[kRecordHeaderSize];
  if (!in_.read(reinterpret_cast<char*>(hdr), kRecordHeaderSize)) {
    // Clean EOF lands exactly on a record boundary; anything read but
    // short of a full record header is a torn tail.
    truncated_ = in_.gcount() != 0;
    return false;
  }
  out.arrival_ns = static_cast<std::int64_t>(load_u64(hdr));
  const std::uint32_t len = load_u32(hdr + 8);
  out.frame.resize(len);
  if (len != 0 &&
      !in_.read(reinterpret_cast<char*>(out.frame.data()), len)) {
    truncated_ = true;  // header promised more bytes than the file holds
    return false;
  }
  ++records_;
  return true;
}

Replayer::Replayer(const std::string& path, Reassembler::Config cfg,
                   ChunkSink sink, EndSink end)
    : reader_(path), demux_(cfg, std::move(sink), std::move(end)) {}

std::uint64_t Replayer::run() {
  CaptureRecord rec;
  std::uint64_t frames = 0;
  while (reader_.next(rec)) {
    FrameView view;
    if (parse_frame(rec.frame, view) == ParseStatus::kOk) {
      demux_.feed(view);
      ++frames;
    } else {
      ++parse_rejects_;  // corrupt capture byte-for-byte == corrupt wire
    }
  }
  demux_.flush();
  return frames;
}

}  // namespace wivi::net
