/// @file
/// The network ingress front end: non-blocking UDP + TCP sockets →
/// FrameParser → Demux → per-sensor chunk streams (DESIGN.md §13).
///
/// One Receiver owns the listening sockets (loopback by default, port 0 =
/// kernel-assigned, discovered via udp_port()/tcp_port()), a StreamDecoder
/// per TCP connection, and one Demux routing every accepted frame to its
/// sensor's Reassembler. Completed chunks leave through the caller's
/// ChunkSink — in the live engine path that is net::EngineBinding, whose
/// sink is an rt::Engine::offer (a lock-free ring push; a false return is
/// counted as a ring-full drop, never a stall).
///
/// All socket work happens on one thread: either the caller's, via
/// poll_once() (deterministic tests drive ingest this way), or the
/// background thread start() spawns. poll(2) multiplexes the UDP socket,
/// the TCP accept socket and every live connection.
///
/// Telemetry: the receiver registers the `wivi_net_*` metric family in
/// the registry you hand it — pass rt::Engine::registry() and the metrics
/// ride along in Engine::snapshot()'s JSON/Prometheus export (and in
/// EngineStats' net_* mirror). Wire-level accounting obeys
/// frames_in == accepted + rejected; accepted frames then obey the
/// reassembler's conservation law (reassembler.hpp).
///
/// Capture tap: give the config a CaptureWriter and every *accepted*
/// frame is appended with its arrival timestamp — the recording a
/// Replayer later feeds through an identical Demux, which is what makes
/// replay bit-identical to the live run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/net/capture.hpp"
#include "src/net/frame.hpp"
#include "src/net/reassembler.hpp"
#include "src/obs/metrics.hpp"

namespace wivi::net {

/// @addtogroup wivi_net
/// @{

/// Receiver construction knobs.
struct ReceiverConfig {
  bool enable_udp = true;       ///< open the UDP datagram socket
  bool enable_tcp = true;       ///< open the TCP accept socket
  std::uint16_t udp_port = 0;   ///< 0 = kernel-assigned (see udp_port())
  std::uint16_t tcp_port = 0;   ///< 0 = kernel-assigned (see tcp_port())
  /// Per-sensor reassembly window configuration.
  Reassembler::Config reassembly;
  /// Sensor-table bound forwarded to Demux.
  std::size_t max_sensors = 1024;
  /// Live TCP connections accepted at once; further accepts are closed.
  std::size_t max_connections = 64;
  /// Accepted-frame capture tap (not owned; nullptr = no capture).
  CaptureWriter* capture = nullptr;
  /// Home of the `wivi_net_*` metrics (not owned). Pass
  /// rt::Engine::registry() to export them with the engine's snapshot;
  /// nullptr uses a private registry (metrics() still works).
  obs::Registry* registry = nullptr;
};

/// Frames-presented accounting at the wire boundary (before reassembly).
/// Exhaustive: frames_in == frames_accepted + frames_rejected, and
/// frames_rejected == sum of the per-cause rejects. Updated only on the
/// polling thread; exact once the receiver is stopped.
struct WireStats {
  std::uint64_t datagrams_in = 0;      ///< UDP datagrams received
  std::uint64_t connections_in = 0;    ///< TCP connections accepted
  std::uint64_t connections_refused = 0; ///< accepts over max_connections
  std::uint64_t bytes_in = 0;          ///< wire bytes received
  std::uint64_t frames_in = 0;         ///< frames presented to the parser
  std::uint64_t frames_accepted = 0;   ///< parsed OK, handed to the Demux
  std::uint64_t frames_rejected = 0;   ///< typed parse rejections
  std::uint64_t reject_bad_magic = 0;   ///< ParseStatus::kBadMagic
  std::uint64_t reject_bad_version = 0; ///< ParseStatus::kBadVersion
  std::uint64_t reject_bad_flags = 0;   ///< ParseStatus::kBadFlags
  std::uint64_t reject_bad_length = 0;  ///< kBadLength (+ short datagrams)
  std::uint64_t reject_bad_fragment = 0; ///< ParseStatus::kBadFragment
  std::uint64_t reject_bad_crc = 0;     ///< ParseStatus::kBadCrc
};

/// The UDP+TCP framed-ingress receiver.
class Receiver {
 public:
  /// Open the configured sockets (throws TypedError of kIoError when a
  /// socket cannot be created or bound) and stand ready to poll.
  /// Completed chunks go to `sink`; end-of-stream marks to `end`.
  Receiver(ReceiverConfig cfg, ChunkSink sink, EndSink end = nullptr);
  ~Receiver();  ///< stop()s and closes every socket.

  Receiver(const Receiver&) = delete;             ///< Non-copyable.
  Receiver& operator=(const Receiver&) = delete;  ///< Non-copyable.

  /// The UDP port actually bound (resolves port 0), 0 when UDP disabled.
  [[nodiscard]] std::uint16_t udp_port() const noexcept { return udp_port_; }
  /// The TCP port actually bound, 0 when TCP disabled.
  [[nodiscard]] std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  /// Service the sockets once from the calling thread: wait up to
  /// `timeout_ms` for readiness, drain whatever arrived, return the
  /// number of frames accepted this call. The deterministic-test driver.
  std::size_t poll_once(int timeout_ms = 0);

  /// Spawn the polling thread (poll_once in a loop). Idempotent.
  void start();
  /// Stop and join the polling thread (the sockets stay open; poll_once
  /// still works). Idempotent; the destructor calls it.
  void stop();

  /// Deliver every still-deliverable partial chunk and abandon the rest
  /// (Demux::flush) — call at end of test/run when streams never sent
  /// their end-of-stream mark.
  void flush();

  /// Wire-boundary accounting (exact once the polling thread is stopped).
  [[nodiscard]] const WireStats& wire_stats() const noexcept { return wire_; }
  /// The frame router (its stats() is the reassembly conservation law).
  [[nodiscard]] const Demux& demux() const noexcept { return demux_; }
  /// The registry holding the `wivi_net_*` metrics (the one configured,
  /// or the private fallback).
  [[nodiscard]] obs::Registry& metrics() noexcept { return *reg_; }

 private:
  struct Conn {
    int fd = -1;
    StreamDecoder decoder;
  };
  /// The `wivi_net_*` metric family, interned once (DESIGN.md §10).
  struct Metrics {
    explicit Metrics(obs::Registry& r);
    obs::Counter& frames_in;
    obs::Counter& frames_accepted;
    obs::Counter& frames_rejected;
    obs::Counter& reject_bad_magic;
    obs::Counter& reject_bad_version;
    obs::Counter& reject_bad_flags;
    obs::Counter& reject_bad_length;
    obs::Counter& reject_bad_fragment;
    obs::Counter& reject_bad_crc;
    obs::Counter& bytes_in;
    obs::Counter& frames_delivered;
    obs::Counter& frames_dup;
    obs::Counter& frames_stale;
    obs::Counter& frames_evicted;
    obs::Counter& frames_decode_failed;
    obs::Counter& frames_sink_dropped;
    obs::Counter& frames_control;
    obs::Counter& chunks_delivered;
    obs::Counter& chunks_evicted;
    obs::Counter& chunk_gaps;
    obs::Counter& ring_full_drops;
    obs::Gauge& frames_in_flight;
    obs::Gauge& sensors;
    obs::Histogram& frame_to_ring_ns;
  };

  void open_udp();
  void open_tcp();
  void drain_udp();
  void accept_connections();
  bool drain_connection(Conn& conn);  ///< false = connection closed
  void decode_stream(Conn& conn);
  void reject(ParseStatus cause);
  void accept_frame(const FrameView& view, std::span<const std::byte> raw);
  void publish_reassembly_metrics();
  void run_loop();

  ReceiverConfig cfg_;
  Demux demux_;
  std::unique_ptr<obs::Registry> own_reg_;  ///< fallback when none given
  obs::Registry* reg_ = nullptr;
  std::unique_ptr<Metrics> m_;
  WireStats wire_;
  Demux::Stats last_reasm_;  ///< last published reassembly stats (deltas)

  int udp_fd_ = -1;
  int tcp_fd_ = -1;
  std::uint16_t udp_port_ = 0;
  std::uint16_t tcp_port_ = 0;
  std::vector<Conn> conns_;
  std::vector<std::byte> buf_;       ///< datagram / read scratch
  std::int64_t arrival_ns_ = 0;      ///< arrival stamp of the frame in flight

  std::thread thread_;
  std::atomic<bool> running_{false};
};

/// @}

}  // namespace wivi::net
