/// @file
/// Per-sensor chunk reassembly: the RxProc/reassembler split of the
/// ingress layer (DESIGN.md §13).
///
/// The transport hands us parsed frames in whatever order the wire
/// produced — lost, duplicated, reordered, fragmented. One Reassembler
/// per sensor turns that back into the sensor's in-order chunk stream:
/// fragments are collected per chunk_seq, completed chunks are delivered
/// strictly in sequence order, and a bounded out-of-order window decides
/// how long to wait for stragglers before declaring a gap and moving on.
/// Loss, reordering and duplication are the wire's *normal* state, so
/// every outcome is first-class accounting, not an error path: the Stats
/// fields below are exhaustive — every accepted frame ends in exactly one
/// of delivered / duplicate / evicted / stale / decode-failed /
/// sink-dropped / control / in-flight, which is the conservation law the
/// tests and the `wivi_net_*` metrics pin end to end.
///
/// Demux is the layer above: it routes FrameViews to per-sensor
/// Reassemblers, creates them on first sight, owns the aggregate
/// accounting, and is the *shared* code path of the live Receiver and the
/// capture Replayer — the reason a replay is bit-identical to the live
/// run is that both feed the exact same bytes through this exact class.
///
/// Threading: single-threaded, like the parser. The Receiver runs one
/// Demux on its I/O thread; completed chunks leave through the sink
/// callback (which typically does a lock-free SpscRing push).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/types.hpp"
#include "src/net/frame.hpp"

namespace wivi::net {

/// @addtogroup wivi_net
/// @{

/// Where completed chunks go. Return false to refuse the chunk (ring
/// full): the reassembler counts its frames as sink-dropped and moves on
/// — the overload drop is explicit and observable, never a stall.
using ChunkSink = std::function<bool(std::uint32_t sensor_id,
                                     std::uint64_t chunk_seq, CVec&& chunk)>;
/// End-of-stream notification (a frame with kFlagEndOfStream completed).
using EndSink = std::function<void(std::uint32_t sensor_id)>;

/// Reassembles one sensor's frame stream into its in-order chunk stream.
class Reassembler {
 public:
  /// Tuning knobs (shared by every sensor of a Demux).
  struct Config {
    /// Out-of-order window in chunk sequence numbers: how far ahead of
    /// the delivery cursor a frame may land before the cursor is forced
    /// forward (declaring gaps / evicting stragglers). Must be >= 1.
    std::uint64_t window_chunks = 8;
    /// Hard cap on one reassembling chunk's payload bytes; a chunk
    /// growing past it is abandoned (its frames counted as evicted).
    std::size_t max_chunk_bytes = 1 << 20;
  };

  /// Exhaustive frame accounting (see the file comment's conservation
  /// law). All counts are frames except where named otherwise.
  struct Stats {
    std::uint64_t frames_in = 0;        ///< frames accepted into reassembly
    std::uint64_t frames_delivered = 0; ///< frames of delivered chunks
    std::uint64_t frames_dup = 0;       ///< duplicate fragment arrivals
    std::uint64_t frames_stale = 0;     ///< seq already delivered/abandoned
    std::uint64_t frames_evicted = 0;   ///< dropped with a window eviction
    std::uint64_t frames_decode_failed = 0; ///< chunk bytes not sample-aligned
    std::uint64_t frames_sink_dropped = 0;  ///< sink refused (ring full)
    std::uint64_t frames_control = 0;   ///< zero-payload end-of-stream marks
    std::uint64_t frames_in_flight = 0; ///< buffered in partial chunks now
    std::uint64_t chunks_delivered = 0; ///< complete chunks handed out
    std::uint64_t chunks_evicted = 0;   ///< partial chunks abandoned
    std::uint64_t chunk_gaps = 0;       ///< sequence numbers never seen
    std::uint64_t bytes_delivered = 0;  ///< payload bytes handed out
    std::uint64_t sink_dropped_chunks = 0; ///< complete chunks refused
  };

  /// One sensor's reassembler with the given window configuration.
  Reassembler(std::uint32_t sensor_id, Config cfg);

  /// Feed one parsed frame (already validated by parse_frame; `view`'s
  /// payload is copied into the partial chunk, the only copy between
  /// socket buffer and the delivered CVec). Completed chunks are
  /// delivered to `sink` in chunk_seq order; `end` (nullable) fires when
  /// an end-of-stream chunk completes.
  void feed(const FrameView& view, const ChunkSink& sink, const EndSink& end);

  /// Deliver everything still deliverable and abandon the rest: called at
  /// stream teardown so in-flight frames drain to a terminal bucket.
  void flush(const ChunkSink& sink, const EndSink& end);

  /// The exhaustive accounting so far.
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// Next chunk_seq the delivery cursor is waiting for.
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

 private:
  /// One chunk being reassembled (or its tombstone once abandoned).
  struct Partial {
    std::vector<std::vector<std::byte>> frags;  ///< payloads by frag_index
    std::vector<char> have;    ///< per-fragment arrival bitmap
    std::size_t received = 0;  ///< fragments present
    std::size_t bytes = 0;     ///< payload bytes present
    std::uint16_t frag_count = 1;
    bool end_of_stream = false;
    /// Abandoned chunks keep a tombstone in the window so late fragments
    /// read as stale instead of resurrecting the chunk.
    bool abandoned = false;
  };

  void deliver_ready(const ChunkSink& sink, const EndSink& end);
  void deliver(std::uint64_t seq, Partial& p, const ChunkSink& sink,
               const EndSink& end);
  void abandon(Partial& p);

  std::uint32_t sensor_id_;
  Config cfg_;
  Stats stats_;
  std::uint64_t next_seq_ = 0;  ///< delivery cursor
  /// Partial (and complete-but-out-of-order) chunks keyed by chunk_seq,
  /// all in [next_seq_, next_seq_ + window). Ordered map: delivery walks
  /// it in sequence order; the window bounds its size.
  std::map<std::uint64_t, Partial> window_;
};

/// Routes parsed frames to per-sensor Reassemblers — the shared spine of
/// the live Receiver and the capture Replayer.
class Demux {
 public:
  /// Aggregate view over every sensor (sums of the per-sensor Stats).
  using Stats = Reassembler::Stats;

  /// A demux delivering to `sink`/`end` with per-sensor windows built
  /// from `cfg`. `max_sensors` bounds the sensor table against hostile
  /// sensor-id churn; frames from sensors past the cap are counted as
  /// refused, not crashed on.
  Demux(Reassembler::Config cfg, ChunkSink sink, EndSink end = nullptr,
        std::size_t max_sensors = 1024);

  /// Feed one parsed frame to its sensor's reassembler.
  void feed(const FrameView& view);

  /// Flush every sensor's reassembler (stream teardown).
  void flush();

  /// Sum of every sensor's accounting.
  [[nodiscard]] Stats stats() const;
  /// Frames refused because the sensor table was full.
  [[nodiscard]] std::uint64_t sensors_refused() const noexcept {
    return sensors_refused_;
  }
  /// Per-sensor accounting (nullptr for a sensor never seen).
  [[nodiscard]] const Reassembler* sensor(std::uint32_t id) const;
  /// Number of distinct sensors seen.
  [[nodiscard]] std::size_t num_sensors() const noexcept {
    return sensors_.size();
  }

 private:
  Reassembler::Config cfg_;
  ChunkSink sink_;
  EndSink end_;
  std::size_t max_sensors_;
  std::uint64_t sensors_refused_ = 0;
  std::map<std::uint32_t, std::unique_ptr<Reassembler>> sensors_;
};

/// @}

}  // namespace wivi::net
