/// @file
/// Deterministic wire-level fault injection: the frame-layer sibling of
/// wivi::fault's chunk-layer FaultyFeeder.
///
/// FaultyWire sits between a frame producer (net::Sender, a test, the
/// loopback generator) and the wire, perturbing the encoded-frame stream
/// with the faults a datagram transport produces: dropped, duplicated,
/// reordered, truncated and bit-corrupted frames. Every decision is a
/// pure fault::splitmix64 hash of (seed, frame index, fault kind) —
/// exactly the FaultyFeeder idiom — so a wire-fault plan is
/// bit-reproducible per seed regardless of timing or call pattern, and
/// the chaos CI job can exercise the parser/reassembler recovery paths
/// deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/frame.hpp"

namespace wivi::net {

/// @addtogroup wivi_net
/// @{

/// Declarative frame-fault plan. Probabilities are per frame in [0, 1],
/// drawn independently per fault kind.
struct WireFaultSpec {
  /// Seed of every decision; equal spec + equal frame stream ⇒ identical
  /// fault sequence.
  std::uint64_t seed = 1;

  /// Frame never sent (datagram loss).
  double drop_prob = 0.0;
  /// Frame sent twice back to back (duplicate delivery).
  double duplicate_prob = 0.0;
  /// Frame swapped with the next surviving frame (late datagram).
  double reorder_prob = 0.0;
  /// Frame cut to a random proper prefix (torn write / MTU bug).
  double truncate_prob = 0.0;
  /// One random byte of the frame flipped (checksum must catch it).
  double corrupt_prob = 0.0;
};

/// Applies a WireFaultSpec to a stream of encoded frames.
class FaultyWire {
 public:
  /// What the plan actually did (ground truth the chaos tests reconcile
  /// receiver metrics against).
  struct Stats {
    std::uint64_t frames_in = 0;    ///< frames offered to the wire
    std::uint64_t delivered = 0;    ///< frames emitted (faulted or not)
    std::uint64_t dropped = 0;      ///< frames never emitted
    std::uint64_t duplicated = 0;   ///< extra copies emitted
    std::uint64_t reordered = 0;    ///< frames swapped with a successor
    std::uint64_t truncated = 0;    ///< frames cut to a prefix
    std::uint64_t corrupted = 0;    ///< frames with a flipped byte
  };

  /// A wire with the given fault plan (probabilities validated,
  /// InvalidArgument outside [0, 1]).
  explicit FaultyWire(WireFaultSpec spec);

  /// Offer one encoded frame; `emit` is called zero, one or two times
  /// with the frames that actually cross the wire (in wire order).
  void feed(std::vector<std::byte> frame,
            const std::function<void(std::vector<std::byte>&&)>& emit);

  /// Release a held reordered frame (call at end of stream).
  void flush(const std::function<void(std::vector<std::byte>&&)>& emit);

  /// Injection counters so far.
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  /// The plan.
  [[nodiscard]] const WireFaultSpec& spec() const noexcept { return spec_; }

 private:
  [[nodiscard]] bool chance(std::uint64_t salt, double prob) const noexcept;
  [[nodiscard]] std::uint64_t key(std::uint64_t salt) const noexcept;
  void transmit(std::vector<std::byte>&& frame,
                const std::function<void(std::vector<std::byte>&&)>& emit);

  WireFaultSpec spec_;
  Stats stats_;
  std::uint64_t index_ = 0;  ///< next frame's decision index
  std::vector<std::byte> held_;
  bool have_held_ = false;
};

/// @}

}  // namespace wivi::net
