#include "src/net/crc32c.hpp"

#include <array>

namespace wivi::net {

namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

/// 8 slice tables, generated at compile time. Table 0 is the classic
/// byte-at-a-time table; table k folds a byte that sits k positions ahead
/// of the CRC window.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1u) ? (c >> 1) ^ kPoly : (c >> 1);
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (int k = 1; k < 8; ++k)
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
  return t;
}

constexpr auto kTables = make_tables();

}  // namespace

std::uint32_t crc32c(std::uint32_t crc,
                     std::span<const std::byte> data) noexcept {
  std::uint32_t c = ~crc;
  const std::byte* p = data.data();
  std::size_t n = data.size();

  // Head: single bytes until we could read aligned 8-byte groups. (We do
  // not require alignment — unaligned byte reads below are assembled
  // manually — so the head loop only exists to shrink tiny inputs' cost.)
  while (n >= 8) {
    // Fold 8 bytes at once through the slice tables.
    const std::uint32_t lo =
        c ^ (static_cast<std::uint32_t>(p[0]) |
             (static_cast<std::uint32_t>(p[1]) << 8) |
             (static_cast<std::uint32_t>(p[2]) << 16) |
             (static_cast<std::uint32_t>(p[3]) << 24));
    c = kTables[7][lo & 0xFFu] ^ kTables[6][(lo >> 8) & 0xFFu] ^
        kTables[5][(lo >> 16) & 0xFFu] ^ kTables[4][lo >> 24] ^
        kTables[3][static_cast<std::uint8_t>(p[4])] ^
        kTables[2][static_cast<std::uint8_t>(p[5])] ^
        kTables[1][static_cast<std::uint8_t>(p[6])] ^
        kTables[0][static_cast<std::uint8_t>(p[7])];
    p += 8;
    n -= 8;
  }
  while (n-- > 0)
    c = (c >> 8) ^ kTables[0][(c ^ static_cast<std::uint8_t>(*p++)) & 0xFFu];
  return ~c;
}

}  // namespace wivi::net
