#include "src/net/receiver.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/error.hpp"
#include "src/obs/clock.hpp"

namespace wivi::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

[[noreturn]] void throw_errno(const char* what) {
  throw TypedError(ErrorCode::kIoError,
                   std::string("net::Receiver: ") + what + ": " +
                       std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

/// Bind a loopback socket of the given type; returns {fd, bound port}.
std::pair<int, std::uint16_t> bind_loopback(int type, std::uint16_t port) {
  const int fd = ::socket(AF_INET, type, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("getsockname");
  }
  set_nonblocking(fd);
  return {fd, ntohs(bound.sin_port)};
}

}  // namespace

Receiver::Metrics::Metrics(obs::Registry& r)
    : frames_in(r.counter("wivi_net_frames_in_total")),
      frames_accepted(r.counter("wivi_net_frames_accepted_total")),
      frames_rejected(r.counter("wivi_net_frames_rejected_total")),
      reject_bad_magic(r.counter("wivi_net_reject_bad_magic_total")),
      reject_bad_version(r.counter("wivi_net_reject_bad_version_total")),
      reject_bad_flags(r.counter("wivi_net_reject_bad_flags_total")),
      reject_bad_length(r.counter("wivi_net_reject_bad_length_total")),
      reject_bad_fragment(r.counter("wivi_net_reject_bad_fragment_total")),
      reject_bad_crc(r.counter("wivi_net_reject_bad_crc_total")),
      bytes_in(r.counter("wivi_net_bytes_in_total")),
      frames_delivered(r.counter("wivi_net_frames_delivered_total")),
      frames_dup(r.counter("wivi_net_frames_dup_total")),
      frames_stale(r.counter("wivi_net_frames_stale_total")),
      frames_evicted(r.counter("wivi_net_frames_evicted_total")),
      frames_decode_failed(r.counter("wivi_net_frames_decode_failed_total")),
      frames_sink_dropped(r.counter("wivi_net_frames_sink_dropped_total")),
      frames_control(r.counter("wivi_net_frames_control_total")),
      chunks_delivered(r.counter("wivi_net_chunks_delivered_total")),
      chunks_evicted(r.counter("wivi_net_chunks_evicted_total")),
      chunk_gaps(r.counter("wivi_net_chunk_gaps_total")),
      ring_full_drops(r.counter("wivi_net_ring_full_drops_total")),
      frames_in_flight(r.gauge("wivi_net_frames_in_flight")),
      sensors(r.gauge("wivi_net_sensors")),
      frame_to_ring_ns(r.histogram("wivi_net_frame_to_ring_ns")) {}

Receiver::Receiver(ReceiverConfig cfg, ChunkSink sink, EndSink end)
    : cfg_(cfg),
      demux_(
          cfg.reassembly,
          // The sink wrapper is where frame-to-ring latency and ring-full
          // drops are observed; it forwards to the caller's sink verbatim.
          [this, user = std::move(sink)](std::uint32_t sensor_id,
                                         std::uint64_t chunk_seq,
                                         CVec&& chunk) -> bool {
            const bool ok =
                user ? user(sensor_id, chunk_seq, std::move(chunk)) : true;
            if (ok) {
              m_->frame_to_ring_ns.record(static_cast<std::uint64_t>(
                  std::max<std::int64_t>(0, obs::now_ns() - arrival_ns_)));
            } else {
              m_->ring_full_drops.add(1);
            }
            return ok;
          },
          std::move(end), cfg.max_sensors) {
  if (cfg_.registry == nullptr) {
    own_reg_ = std::make_unique<obs::Registry>();
    reg_ = own_reg_.get();
  } else {
    reg_ = cfg_.registry;
  }
  m_ = std::make_unique<Metrics>(*reg_);
  buf_.resize(kReadChunk);
  if (cfg_.enable_udp) open_udp();
  if (cfg_.enable_tcp) open_tcp();
  WIVI_REQUIRE(udp_fd_ >= 0 || tcp_fd_ >= 0,
               "net::Receiver needs at least one transport enabled");
}

Receiver::~Receiver() {
  stop();
  for (Conn& c : conns_) ::close(c.fd);
  if (udp_fd_ >= 0) ::close(udp_fd_);
  if (tcp_fd_ >= 0) ::close(tcp_fd_);
}

void Receiver::open_udp() {
  auto [fd, port] = bind_loopback(SOCK_DGRAM, cfg_.udp_port);
  udp_fd_ = fd;
  udp_port_ = port;
}

void Receiver::open_tcp() {
  auto [fd, port] = bind_loopback(SOCK_STREAM, cfg_.tcp_port);
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("listen");
  }
  tcp_fd_ = fd;
  tcp_port_ = port;
}

void Receiver::reject(ParseStatus cause) {
  ++wire_.frames_in;
  ++wire_.frames_rejected;
  m_->frames_in.add(1);
  m_->frames_rejected.add(1);
  switch (cause) {
    case ParseStatus::kBadMagic:
      ++wire_.reject_bad_magic;
      m_->reject_bad_magic.add(1);
      break;
    case ParseStatus::kBadVersion:
      ++wire_.reject_bad_version;
      m_->reject_bad_version.add(1);
      break;
    case ParseStatus::kBadFlags:
      ++wire_.reject_bad_flags;
      m_->reject_bad_flags.add(1);
      break;
    case ParseStatus::kBadFragment:
      ++wire_.reject_bad_fragment;
      m_->reject_bad_fragment.add(1);
      break;
    case ParseStatus::kBadCrc:
      ++wire_.reject_bad_crc;
      m_->reject_bad_crc.add(1);
      break;
    // kNeedMore on a datagram means a truncated frame: a datagram is
    // never a prefix, so it lands in the length bucket with kBadLength.
    case ParseStatus::kNeedMore:
    case ParseStatus::kBadLength:
    default:
      ++wire_.reject_bad_length;
      m_->reject_bad_length.add(1);
      break;
  }
}

void Receiver::accept_frame(const FrameView& view,
                            std::span<const std::byte> raw) {
  ++wire_.frames_in;
  ++wire_.frames_accepted;
  m_->frames_in.add(1);
  m_->frames_accepted.add(1);
  if (cfg_.capture != nullptr) cfg_.capture->append(arrival_ns_, raw);
  demux_.feed(view);
}

void Receiver::drain_udp() {
  for (;;) {
    const ssize_t n = ::recv(udp_fd_, buf_.data(), buf_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN/EWOULDBLOCK: drained
    }
    ++wire_.datagrams_in;
    if (n == 0) continue;  // zero-length datagram: nothing to parse
    arrival_ns_ = obs::now_ns();
    wire_.bytes_in += static_cast<std::uint64_t>(n);
    m_->bytes_in.add(static_cast<std::uint64_t>(n));
    const std::span<const std::byte> dgram(buf_.data(),
                                           static_cast<std::size_t>(n));
    FrameView view;
    std::size_t consumed = 0;
    const ParseStatus st = parse_frame(dgram, view, &consumed);
    // One datagram must be exactly one frame: trailing bytes mean the
    // sender and header disagree about the length.
    if (st == ParseStatus::kOk && consumed == dgram.size())
      accept_frame(view, dgram);
    else if (st == ParseStatus::kOk)
      reject(ParseStatus::kBadLength);
    else
      reject(st);
  }
}

void Receiver::accept_connections() {
  for (;;) {
    const int fd = ::accept(tcp_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (conns_.size() >= cfg_.max_connections) {
      ++wire_.connections_refused;
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    ++wire_.connections_in;
    conns_.push_back(Conn{fd, StreamDecoder{}});
  }
}

void Receiver::decode_stream(Conn& conn) {
  FrameView view;
  for (;;) {
    switch (conn.decoder.poll(view)) {
      case StreamDecoder::Result::kFrame: {
        // The capture stores the re-encoded frame (header + payload are
        // contiguous in the decoder buffer, so the raw bytes are simply
        // the payload span widened back over the header).
        const std::span<const std::byte> raw(
            view.payload.data() - kHeaderSize,
            kHeaderSize + view.payload.size());
        accept_frame(view, raw);
        break;
      }
      case StreamDecoder::Result::kReject:
        reject(conn.decoder.last_error());
        break;
      case StreamDecoder::Result::kNeedMore:
        return;
    }
  }
}

bool Receiver::drain_connection(Conn& conn) {
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf_.data(), buf_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return true;  // EAGAIN: drained, connection stays
    }
    if (n == 0) return false;  // peer closed
    arrival_ns_ = obs::now_ns();
    wire_.bytes_in += static_cast<std::uint64_t>(n);
    m_->bytes_in.add(static_cast<std::uint64_t>(n));
    conn.decoder.push(
        std::span<const std::byte>(buf_.data(), static_cast<std::size_t>(n)));
    decode_stream(conn);
  }
}

std::size_t Receiver::poll_once(int timeout_ms) {
  const std::uint64_t before = wire_.frames_accepted;

  std::vector<pollfd> fds;
  fds.reserve(2 + conns_.size());
  if (udp_fd_ >= 0) fds.push_back({udp_fd_, POLLIN, 0});
  if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
  for (const Conn& c : conns_) fds.push_back({c.fd, POLLIN, 0});

  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;

  std::size_t idx = 0;
  if (udp_fd_ >= 0) {
    if (fds[idx].revents & (POLLIN | POLLERR | POLLHUP)) drain_udp();
    ++idx;
  }
  if (tcp_fd_ >= 0) {
    if (fds[idx].revents & POLLIN) accept_connections();
    ++idx;
  }
  // Walk connections by index against the snapshot taken above; closed
  // ones are compacted afterwards so the pollfd mapping stays aligned.
  std::vector<std::size_t> dead;
  for (std::size_t c = 0; c < conns_.size() && idx + c < fds.size(); ++c) {
    if (fds[idx + c].revents & (POLLIN | POLLERR | POLLHUP)) {
      if (!drain_connection(conns_[c])) dead.push_back(c);
    }
  }
  for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
    ::close(conns_[*it].fd);
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(*it));
  }

  publish_reassembly_metrics();
  return static_cast<std::size_t>(wire_.frames_accepted - before);
}

void Receiver::publish_reassembly_metrics() {
  const Demux::Stats now = demux_.stats();
  const Demux::Stats& old = last_reasm_;
  m_->frames_delivered.add(now.frames_delivered - old.frames_delivered);
  m_->frames_dup.add(now.frames_dup - old.frames_dup);
  m_->frames_stale.add(now.frames_stale - old.frames_stale);
  m_->frames_evicted.add(now.frames_evicted - old.frames_evicted);
  m_->frames_decode_failed.add(now.frames_decode_failed -
                               old.frames_decode_failed);
  m_->frames_sink_dropped.add(now.frames_sink_dropped -
                              old.frames_sink_dropped);
  m_->frames_control.add(now.frames_control - old.frames_control);
  m_->chunks_delivered.add(now.chunks_delivered - old.chunks_delivered);
  m_->chunks_evicted.add(now.chunks_evicted - old.chunks_evicted);
  m_->chunk_gaps.add(now.chunk_gaps - old.chunk_gaps);
  m_->frames_in_flight.set(
      static_cast<std::int64_t>(now.frames_in_flight));
  m_->sensors.set(static_cast<std::int64_t>(demux_.num_sensors()));
  last_reasm_ = now;
}

void Receiver::flush() {
  demux_.flush();
  publish_reassembly_metrics();
}

void Receiver::run_loop() {
  while (running_.load(std::memory_order_relaxed)) poll_once(10);
}

void Receiver::start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { run_loop(); });
}

void Receiver::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace wivi::net
