/// @file
/// CRC32C (Castagnoli) — the frame checksum of the wivi::net wire format.
///
/// Software slice-by-8 implementation: ~1 byte/cycle without any ISA
/// extension, table-driven, allocation-free. The Castagnoli polynomial
/// (0x1EDC6F41, reflected 0x82F63B78) is the iSCSI/ext4/DPDK choice — far
/// better burst-error detection at frame sizes than CRC32 (IEEE), and the
/// one a future SSE4.2 `crc32` fast path can drop in under without
/// changing a single stored checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace wivi::net {

/// @addtogroup wivi_net
/// @{

/// Extend a running CRC32C over `data`. Seed a fresh computation with
/// `crc == 0`; the returned value is the finalised checksum and also the
/// continuation state (`crc32c(crc32c(0, a), b) == crc32c(0, a ++ b)`).
[[nodiscard]] std::uint32_t crc32c(std::uint32_t crc,
                                   std::span<const std::byte> data) noexcept;

/// One-shot CRC32C of a buffer (crc32c(0, data)).
[[nodiscard]] inline std::uint32_t crc32c(
    std::span<const std::byte> data) noexcept {
  return crc32c(0, data);
}

/// @}

}  // namespace wivi::net
