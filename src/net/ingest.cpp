#include "src/net/ingest.hpp"

#include <utility>

namespace wivi::net {

rt::SessionId EngineBinding::bind(std::uint32_t sensor_id) {
  // Callers hold mu_.
  const auto it = sessions_.find(sensor_id);
  if (it != sessions_.end()) return it->second;
  const rt::SessionId id = engine_.open_session(cfg_.spec, cfg_.ingest);
  sessions_.emplace(sensor_id, id);
  closed_.emplace(sensor_id, false);
  return id;
}

bool EngineBinding::deliver(std::uint32_t sensor_id,
                            std::uint64_t /*chunk_seq*/, CVec&& chunk) {
  rt::SessionId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto c = closed_.find(sensor_id); c != closed_.end() && c->second)
      return false;  // stream already ended; late chunk refused
    id = bind(sensor_id);
  }
  return engine_.offer(id, std::move(chunk));
}

void EngineBinding::end(std::uint32_t sensor_id) {
  rt::SessionId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = bind(sensor_id);  // an end with no data still resolves the session
    bool& closed = closed_[sensor_id];
    if (closed || !cfg_.close_on_end) return;
    closed = true;
  }
  engine_.close_session(id);
}

std::optional<rt::SessionId> EngineBinding::session(
    std::uint32_t sensor_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(sensor_id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

std::size_t EngineBinding::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void EngineBinding::close_all() {
  std::vector<rt::SessionId> to_close;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [sensor, closed] : closed_) {
      if (!closed) {
        closed = true;
        to_close.push_back(sessions_.at(sensor));
      }
    }
  }
  for (rt::SessionId id : to_close) engine_.close_session(id);
}

}  // namespace wivi::net
