#include "src/net/wire_fault.hpp"

#include <utility>

#include "src/common/error.hpp"
#include "src/fault/fault.hpp"

namespace wivi::net {

namespace {
// Per-kind salts, disjoint from FaultyFeeder's (those live in fault.cpp;
// these are frame-layer decisions keyed off the same splitmix64).
constexpr std::uint64_t kSaltDrop = 0xF0D0;
constexpr std::uint64_t kSaltDup = 0xF0D1;
constexpr std::uint64_t kSaltReorder = 0xF0D2;
constexpr std::uint64_t kSaltTrunc = 0xF0D3;
constexpr std::uint64_t kSaltTruncLen = 0xF0D4;
constexpr std::uint64_t kSaltCorrupt = 0xF0D5;
constexpr std::uint64_t kSaltCorruptPos = 0xF0D6;
}  // namespace

FaultyWire::FaultyWire(WireFaultSpec spec) : spec_(spec) {
  const double probs[] = {spec_.drop_prob, spec_.duplicate_prob,
                          spec_.reorder_prob, spec_.truncate_prob,
                          spec_.corrupt_prob};
  for (double p : probs)
    WIVI_REQUIRE(p >= 0.0 && p <= 1.0, "wire-fault probabilities in [0,1]");
}

std::uint64_t FaultyWire::key(std::uint64_t salt) const noexcept {
  return fault::splitmix64(spec_.seed ^
                           fault::splitmix64(index_ ^ (salt * 0x2545F4914F6CDD1Dull)));
}

bool FaultyWire::chance(std::uint64_t salt, double prob) const noexcept {
  if (prob <= 0.0) return false;
  const double u = static_cast<double>(key(salt) >> 11) * 0x1.0p-53;
  return u < prob;
}

void FaultyWire::transmit(
    std::vector<std::byte>&& frame,
    const std::function<void(std::vector<std::byte>&&)>& emit) {
  ++stats_.delivered;
  emit(std::move(frame));
}

void FaultyWire::feed(
    std::vector<std::byte> frame,
    const std::function<void(std::vector<std::byte>&&)>& emit) {
  ++stats_.frames_in;

  if (chance(kSaltDrop, spec_.drop_prob)) {
    ++stats_.dropped;
    ++index_;
    return;
  }
  if (chance(kSaltTrunc, spec_.truncate_prob) && frame.size() > 1) {
    // A random proper prefix — mostly lands inside the payload, so the
    // CRC (or a datagram-length check) must reject it.
    const std::size_t len = 1 + key(kSaltTruncLen) % (frame.size() - 1);
    frame.resize(len);
    ++stats_.truncated;
  }
  if (chance(kSaltCorrupt, spec_.corrupt_prob) && !frame.empty()) {
    const std::size_t pos = key(kSaltCorruptPos) % frame.size();
    frame[pos] ^= std::byte{0x20};
    ++stats_.corrupted;
  }
  const bool dup = chance(kSaltDup, spec_.duplicate_prob);
  const bool swap = chance(kSaltReorder, spec_.reorder_prob);
  ++index_;

  if (have_held_) {
    // A previous frame is waiting to be overtaken: send the current one
    // first, then the held one.
    std::vector<std::byte> late = std::move(held_);
    have_held_ = false;
    if (dup) {
      ++stats_.duplicated;
      transmit(std::vector<std::byte>(frame), emit);
    }
    transmit(std::move(frame), emit);
    transmit(std::move(late), emit);
    return;
  }
  if (swap) {
    ++stats_.reordered;
    held_ = std::move(frame);
    have_held_ = true;
    return;
  }
  if (dup) {
    ++stats_.duplicated;
    transmit(std::vector<std::byte>(frame), emit);
  }
  transmit(std::move(frame), emit);
}

void FaultyWire::flush(
    const std::function<void(std::vector<std::byte>&&)>& emit) {
  if (!have_held_) return;
  have_held_ = false;
  transmit(std::move(held_), emit);
}

}  // namespace wivi::net
