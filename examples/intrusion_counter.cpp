// Intrusion detection / occupancy counting (paper §7.4): point Wi-Vi at a
// closed room and report how many people are moving inside, using the
// Eq. 5.4/5.5 spatial-variance classifier trained in a *different* room.
//
//   ./intrusion_counter [--count 0..3] [--seed N] [--duration S]
#include <cstdio>
#include <cstdlib>

#include <wivi/wivi.hpp>

#include "examples/example_cli.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  examples::Cli cli(argc, argv, "occupancy counting in an unseen room");
  const int true_count = cli.get_int("count", 2, "ground-truth movers (0..3)");
  const std::uint64_t seed = cli.get_seed("seed", 5, "watch-trial seed");
  const double duration =
      cli.get_double("duration", 25.0, "watch trace seconds");
  if (!cli.ok()) return 2;
  if (true_count < 0 || true_count > 3) {
    std::fprintf(stderr, "--count must be 0..3\n");
    return 1;
  }

  std::printf("Wi-Vi intrusion counter\n=======================\n");

  // Train the variance classifier on labelled experiments in room A.
  std::printf("training thresholds in %s...\n",
              sim::stata_conference_a().name.c_str());
  std::vector<core::VarianceClassifier::LabeledVariance> train;
  for (int n = 0; n <= 3; ++n) {
    for (int t = 0; t < 3; ++t) {
      sim::CountingTrial trial;
      trial.room = sim::stata_conference_a();
      trial.num_humans = n;
      trial.subjects = {t, (t + 2) % 8, (t + 4) % 8};
      trial.duration_sec = 20.0;
      trial.seed = 33000 + static_cast<std::uint64_t>(n * 10 + t);
      train.push_back({n, sim::run_counting_trial(trial).spatial_variance});
    }
  }
  core::VarianceClassifier clf;
  clf.train(train);
  std::printf("learned thresholds [millions]: ");
  for (double t : clf.thresholds()) std::printf("%.2f  ", t / 1e6);
  std::printf("\n\n");

  // Observe the other room with the true occupancy.
  sim::CountingTrial watch;
  watch.room = sim::stata_conference_b();
  watch.num_humans = true_count;
  watch.subjects = {1, 4, 6};
  watch.duration_sec = duration;
  watch.seed = seed;
  std::printf("watching %s for %.0f s (ground truth: %d mover(s))...\n",
              watch.room.name.c_str(), watch.duration_sec, true_count);
  const sim::CountingResult r = sim::run_counting_trial(watch);

  const int detected = clf.classify(r.spatial_variance);
  std::printf("\nspatial variance : %.2fM\n", r.spatial_variance / 1e6);
  std::printf("detected count   : %d  (%s)\n", detected,
              detected == true_count ? "correct" : "MISMATCH");
  std::printf("room occupied    : %s\n", detected > 0 ? "YES - motion detected"
                                                      : "no motion");
  return 0;
}
