// Tracking a robot through a wall (paper §5, footnote 1: "we have
// successfully experimented with tracking an iRobot Create robot").
//
// A patrolling robot is a single rigid reflector, so its angle trace is a
// clean sawtooth compared to a human's fuzzy line - run this next to
// ./through_wall_tracker 1 to see the difference.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include <wivi/wivi.hpp>

#include "examples/example_cli.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  examples::Cli cli(argc, argv, "track a patrolling robot through a wall");
  const std::uint64_t seed = cli.get_seed("seed", 23, "scene seed");
  const double duration = cli.get_double("duration", 12.0, "trace seconds");
  const double speed = cli.get_double("speed", 0.6, "patrol speed [m/s]");
  if (!cli.ok()) return 2;
  Rng rng(seed);

  sim::Scene scene(sim::stata_conference_a(), sim::default_calibration(), rng);
  // Radial patrol: straight toward the device and back.
  const sim::Robot robot(
      sim::patrol({0.3, 1.8}, {0.3, 4.4}, speed, duration + 18.0, 0.01));
  scene.add_body(&robot);

  sim::ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = duration;
  sim::ExperimentRunner runner(scene, cfg, rng.fork());
  const sim::TraceResult trace = runner.run();

  std::printf("Wi-Vi robot tracking\n====================\n");
  std::printf("target : iRobot Create-class robot (RCS ~0.05 m^2, rigid)\n");
  std::printf("patrol : radial, %.1f m/s -> expected angle +/- %.0f deg\n",
              speed, std::asin(std::min(speed, 1.0) / 1.0) * 180.0 / kPi);
  std::printf("nulling: %.1f dB\n\n", trace.effective_nulling_db);

  PipelineSpec spec;
  spec.t0 = trace.t0;
  spec.image.emit_columns = false;  // the image is read back whole below
  Session session(std::move(spec));
  session.run(trace.h);
  const core::AngleTimeImage& img = session.image();
  std::printf("%s\n", core::render_ascii(img).c_str());

  const RVec angles = core::MotionTracker().dominant_angle_trace(img);
  int approach = 0;
  int recede = 0;
  for (double a : angles) {
    if (std::isnan(a)) continue;
    (a > 0 ? approach : recede)++;
  }
  std::printf("frames approaching: %d, receding: %d (patrol alternates)\n",
              approach, recede);
  return 0;
}
