// Multi-sensor monitoring service: N Wi-Vi sensors watching N rooms, all
// multiplexed through one rt::Engine worker pool — the production-scale
// shape the ROADMAP aims at, in miniature.
//
// Each session gets an independently seeded scene (its own room occupancy
// and walking subjects). The service replays every capture in live-sized
// chunks through the engine, polls the event stream, and prints per-room
// occupancy estimates plus engine throughput.
//
// With --stats the service dumps the engine's full telemetry snapshot
// (every wivi_engine_* / wivi_ring_* counter plus latency quantiles) as
// JSON on exit; with --trace FILE it keeps a per-session span ring and
// writes a Chrome trace-event file loadable in ui.perfetto.dev.
//
//   ./multi_sensor_service --sessions 8 --threads 4 --duration 10
//                          [--seed 42] [--chunk 64] [--stats]
//                          [--trace spans.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <wivi/wivi.hpp>

#include "examples/example_cli.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  examples::Cli cli(argc, argv,
                    "N simulated sensors streaming into one rt::Engine");
  const int sessions = cli.get_int("sessions", 6, "concurrent sensor sessions");
  const int threads = cli.get_int("threads", 0, "worker threads (0 = all cores)");
  const double duration = cli.get_double("duration", 8.0, "trace seconds per sensor");
  const std::uint64_t seed = cli.get_seed("seed", 42, "base scene seed");
  const int chunk = cli.get_int("chunk", 64, "samples per ingest chunk");
  const bool stats =
      cli.get_flag("stats", "dump the engine telemetry snapshot (JSON)");
  const std::string trace_file = cli.get_string(
      "trace", "", "write a Chrome trace of recent spans to this file");
  if (!cli.ok()) return 2;

  std::printf("Wi-Vi multi-sensor service\n==========================\n");
  std::printf("simulating %d independent rooms (%.0f s each)...\n", sessions,
              duration);

  // --- Stage 1: record every sensor's capture (independently seeded
  // scenes; generation parallelises trivially since scenes are isolated).
  std::vector<sim::TraceResult> traces(static_cast<std::size_t>(sessions));
  std::vector<int> true_counts(static_cast<std::size_t>(sessions));
  {
    std::vector<std::thread> gen;
    const int gen_threads = std::min<int>(
        sessions, static_cast<int>(
                      std::max(1u, std::thread::hardware_concurrency())));
    std::atomic<int> next{0};
    for (int g = 0; g < gen_threads; ++g) {
      gen.emplace_back([&] {
        for (int s = next.fetch_add(1); s < sessions; s = next.fetch_add(1)) {
          sim::SessionScenario sc;
          sc.room.name = "room " + std::to_string(s);
          sc.num_humans = 1 + s % 3;
          sc.duration_sec = duration;
          sc.seed = seed + static_cast<std::uint64_t>(1000 * s);
          true_counts[static_cast<std::size_t>(s)] = sc.num_humans;
          traces[static_cast<std::size_t>(s)] = sim::record_session_trace(sc);
        }
      });
    }
    for (std::thread& t : gen) t.join();
  }

  // --- Stage 2: stream everything through the engine.
  rt::Engine::Config ec;
  ec.num_threads = threads;
  rt::Engine engine(ec);
  std::printf("engine: %d worker thread(s)\n\n", engine.num_threads());

  std::vector<rt::SessionId> ids;
  std::vector<sim::ChunkedTrace> feeds;
  for (int s = 0; s < sessions; ++s) {
    // Each sensor runs the same declarative pipeline: image + counting
    // (variance updates suffice for an occupancy service, so no columns).
    PipelineSpec spec;
    spec.t0 = traces[static_cast<std::size_t>(s)].t0;
    spec.image.emit_columns = false;
    spec.count = api::CountStage{};
    if (!trace_file.empty()) spec.obs.trace_capacity = 4096;
    rt::IngestConfig ingest;
    ingest.backpressure = rt::Backpressure::kBlock;  // replay: lossless
    ids.push_back(engine.open_session(std::move(spec), ingest));
    feeds.emplace_back(std::move(traces[static_cast<std::size_t>(s)]),
                       static_cast<std::size_t>(chunk));
  }

  const auto start = std::chrono::steady_clock::now();
  bool feeding = true;
  std::vector<rt::Event> events;
  std::vector<double> last_variance(static_cast<std::size_t>(sessions), 0.0);
  std::uint64_t count_updates = 0;
  while (feeding) {
    feeding = false;
    for (int s = 0; s < sessions; ++s) {
      CVec c;
      if (feeds[static_cast<std::size_t>(s)].next(c)) {
        engine.offer(ids[static_cast<std::size_t>(s)], std::move(c));
        feeding = true;
      }
    }
    events.clear();
    engine.poll(events);
    // The engine's wire format is the legacy multiplexer Event; convert to
    // the typed api::Event and dispatch on the variant.
    for (const rt::Event& e : events) {
      const api::Event typed = rt::to_api_event(e);
      if (const auto* c = std::get_if<api::CountEvent>(&typed)) {
        last_variance[e.session] = c->spatial_variance;
        ++count_updates;
      }
    }
  }
  for (rt::SessionId id : ids) engine.close_session(id);
  engine.drain();
  const double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  events.clear();
  engine.poll(events);
  for (const rt::Event& e : events) {
    const api::Event typed = rt::to_api_event(e);
    if (const auto* c = std::get_if<api::CountEvent>(&typed)) {
      ++count_updates;
      last_variance[e.session] = c->spatial_variance;
    } else if (const auto* f = std::get_if<api::FinishedEvent>(&typed)) {
      last_variance[e.session] = f->spatial_variance;
    }
  }

  // --- Report. The variance -> count mapping uses thresholds in the same
  // form a trained core::VarianceClassifier produces (see
  // intrusion_counter for actual training).
  std::printf("%-8s %-8s %-10s %-12s %-9s\n", "room", "movers", "columns",
              "variance", "nulling");
  std::uint64_t total_columns = 0;
  std::uint64_t total_samples = 0;
  for (int s = 0; s < sessions; ++s) {
    const auto si = static_cast<std::size_t>(s);
    const auto st = engine.stats(ids[si]);
    total_columns += st.columns_out;
    total_samples += st.samples_in;
    std::printf("%-8d %-8d %-10llu %-12.2e %6.1f dB\n", s, true_counts[si],
                static_cast<unsigned long long>(st.columns_out),
                last_variance[si],
                feeds[si].trace().effective_nulling_db);
  }
  std::printf("\nprocessed %llu columns (%llu samples, %llu count updates) "
              "in %.2f s wall\n",
              static_cast<unsigned long long>(total_columns),
              static_cast<unsigned long long>(total_samples),
              static_cast<unsigned long long>(count_updates), wall_sec);
  std::printf("throughput: %.0f columns/s, %.1fx realtime across %d sensors\n",
              static_cast<double>(total_columns) / wall_sec,
              static_cast<double>(sessions) * duration / wall_sec, sessions);

  if (stats) {
    std::printf("\nengine telemetry snapshot:\n");
    engine.write_snapshot(std::cout);
  }
  if (!trace_file.empty()) {
    std::ofstream f(trace_file);
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_file.c_str());
      return 1;
    }
    engine.write_trace(f);
    std::printf("wrote span trace to %s (load in ui.perfetto.dev)\n",
                trace_file.c_str());
  }
  return 0;
}
