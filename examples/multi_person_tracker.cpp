// Multi-person tracking demo (paper §5.2, Figs. 5-3 / 7-2): three synthetic
// movers — two of them crossing in angle mid-trace — streamed chunk by
// chunk through one wivi::Session, with the track stage assigning stable
// identities through the crossing.
//
// With --stats the demo prints the per-stage latency histograms and the
// session telemetry snapshot (JSON); with --trace FILE it records every
// pipeline span into a bounded ring and writes a Chrome trace-event file
// loadable in chrome://tracing or ui.perfetto.dev.
//
//   ./multi_person_tracker [--duration S] [--seed N] [--chunk SAMPLES]
//                          [--stats] [--trace spans.json]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include <wivi/wivi.hpp>

#include "examples/example_cli.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  examples::Cli cli(argc, argv, "three movers, one crossing, stable track ids");
  const double duration = cli.get_double("duration", 12.0, "trace seconds");
  const std::uint64_t seed = cli.get_seed("seed", 1234, "noise seed");
  const int chunk = cli.get_int("chunk", 96, "streaming chunk size (samples)");
  const int threads = cli.get_int(
      "threads", 0, "batch image-build workers (0 = all cores)");
  const bool stats =
      cli.get_flag("stats", "print per-stage latencies + snapshot (JSON)");
  const std::string trace_file = cli.get_string(
      "trace", "", "write a Chrome trace of pipeline spans to this file");
  if (!cli.ok()) return 2;
  if (duration < 2.0 || chunk < 1 || threads < 0) {
    std::fprintf(stderr,
                 "--duration must be >= 2, --chunk >= 1, --threads >= 0\n");
    return 1;
  }

  const CVec h = sim::synthetic_crossing_trace(duration, seed);
  std::printf("Wi-Vi multi-person tracker\n==========================\n");
  std::printf("3 synthetic movers, %.1f s, %zu channel samples; movers 1+2 "
              "cross mid-trace\n\n", duration, h.size());

  // One declarative pipeline: image + multi-target tracking. Stream the
  // trace through it exactly as a live session would see it and read the
  // live snapshots off the typed event stream.
  PipelineSpec spec;
  spec.image.emit_columns = false;  // TracksEvents are all this demo needs
  spec.track = api::TrackStage{};
  if (!trace_file.empty()) spec.obs.trace_capacity = 8192;
  Session session(std::move(spec));

  const double report_every_sec = 1.0;
  double next_report = 0.0;
  std::vector<api::Event> events;
  for (std::size_t pos = 0; pos < h.size(); pos += static_cast<std::size_t>(chunk)) {
    const std::size_t len =
        std::min<std::size_t>(static_cast<std::size_t>(chunk), h.size() - pos);
    session.push(CSpan(h).subspan(pos, len));
    events.clear();
    session.poll(events);
    for (const api::Event& e : events) {
      const auto* update = std::get_if<api::TracksEvent>(&e);
      if (update == nullptr || update->columns_seen == 0) continue;
      const auto& snaps = update->tracks;
      const double now = snaps.empty()
                             ? session.image().times_sec.back()
                             : snaps.front().time_sec;
      if (now < next_report) continue;
      next_report = now + report_every_sec;
      std::printf("t=%5.1fs  ", now);
      if (snaps.empty()) std::printf("(no tracks)");
      for (const auto& s : snaps) {
        if (s.state == track::TrackState::kTentative) continue;
        std::printf("[#%d %s %+5.1f deg %+5.1f deg/s%s] ", s.id,
                    track::to_string(s.state), s.angle_deg, s.velocity_dps,
                    s.updated ? "" : " (coast)");
      }
      std::printf("\n");
    }
  }
  session.finish();

  std::printf("\n%s\n", core::render_ascii(session.image()).c_str());

  // Batch pass over the finished image: must match the streamed result
  // bit for bit (the facade inherits the rt parity contract).
  const auto batch = track::track_image(session.image());
  const auto streamed = session.multi_tracker().histories();
  bool parity = batch.size() == streamed.size();
  for (std::size_t i = 0; parity && i < batch.size(); ++i)
    parity = batch[i].id == streamed[i].id &&
             batch[i].angles_deg == streamed[i].angles_deg;
  std::printf("streaming == batch: %s\n\n", parity ? "yes (bit for bit)" : "NO");

  // The batch-throughput route for the same trace: the same spec, executed
  // in the parallel-offline mode — the image rebuilt column-parallel
  // (par::ParallelImageBuilder) instead of slid sequentially, with
  // thread-count-invariant output ~1e-9 from the streamed image, so the
  // track picture must agree.
  PipelineSpec parallel_spec;
  parallel_spec.image.emit_columns = false;
  parallel_spec.track = api::TrackStage{};
  Session parallel_session(std::move(parallel_spec));
  parallel_session.run(h, Parallelism{threads});
  int parallel_confirmed = 0;
  for (const auto& tr : parallel_session.multi_tracker().histories())
    parallel_confirmed += tr.confirmed_ever;
  std::printf("column-parallel batch (Parallelism{%d}): "
              "%d confirmed tracks\n\n", threads, parallel_confirmed);

  std::printf("track summary (confirmed tracks only):\n");
  int confirmed = 0;
  for (const auto& tr : streamed) {
    if (!tr.confirmed_ever) continue;
    ++confirmed;
    std::printf("  #%d  %5.1fs..%5.1fs  angle %+5.1f -> %+5.1f deg  "
                "(%zu columns, %s)\n",
                tr.id, tr.times_sec.front(), tr.times_sec.back(),
                tr.angles_deg.front(), tr.angles_deg.back(),
                tr.angles_deg.size(), track::to_string(tr.state));
  }
  std::printf("\n%d confirmed tracks for 3 movers%s\n", confirmed,
              confirmed == 3 ? " — stable ids through the crossing" : "");

  if (stats) {
    const api::PipelineStats ps = session.stats();
    std::printf("\nper-stage latency (us, p50/p99 over %llu chunks):\n",
                static_cast<unsigned long long>(ps.chunks_in));
    for (const api::StageLatency& sl : ps.stages)
      std::printf("  %-13s %8.1f / %8.1f  (%llu spans)\n", sl.stage,
                  static_cast<double>(sl.latency.p50) / 1e3,
                  static_cast<double>(sl.latency.p99) / 1e3,
                  static_cast<unsigned long long>(sl.latency.count));
    std::printf("\nsession telemetry snapshot:\n");
    obs::write_snapshot(std::cout, session.snapshot());
  }
  if (!trace_file.empty()) {
    std::ofstream f(trace_file);
    if (!f) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_file.c_str());
      return 1;
    }
    session.write_trace(f);
    std::printf("wrote span trace to %s (load in ui.perfetto.dev)\n",
                trace_file.c_str());
  }
  return confirmed == 3 && parity ? 0 : 1;
}
