// Multi-person tracking demo (paper §5.2, Figs. 5-3 / 7-2): three synthetic
// movers — two of them crossing in angle mid-trace — streamed chunk by
// chunk through the rt streaming stages, with the track:: subsystem
// assigning stable identities through the crossing.
//
//   ./multi_person_tracker [--duration S] [--seed N] [--chunk SAMPLES]
#include <cmath>
#include <cstdio>

#include "examples/example_cli.hpp"
#include "src/core/tracker.hpp"
#include "src/rt/streaming.hpp"
#include "src/sim/synthetic.hpp"
#include "src/track/multi_tracker.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  examples::Cli cli(argc, argv, "three movers, one crossing, stable track ids");
  const double duration = cli.get_double("duration", 12.0, "trace seconds");
  const std::uint64_t seed = cli.get_seed("seed", 1234, "noise seed");
  const int chunk = cli.get_int("chunk", 96, "streaming chunk size (samples)");
  const int threads = cli.get_int(
      "threads", 0, "batch image-build workers (0 = all cores)");
  if (!cli.ok()) return 2;
  if (duration < 2.0 || chunk < 1 || threads < 0) {
    std::fprintf(stderr,
                 "--duration must be >= 2, --chunk >= 1, --threads >= 0\n");
    return 1;
  }

  const CVec h = sim::synthetic_crossing_trace(duration, seed);
  std::printf("Wi-Vi multi-person tracker\n==========================\n");
  std::printf("3 synthetic movers, %.1f s, %zu channel samples; movers 1+2 "
              "cross mid-trace\n\n", duration, h.size());

  // Stream the trace through the chunk-resumable stages exactly as a live
  // session would see it.
  rt::StreamingTracker image_stage;
  rt::StreamingMultiTracker tracks;
  const double report_every_sec = 1.0;
  double next_report = 0.0;
  for (std::size_t pos = 0; pos < h.size(); pos += static_cast<std::size_t>(chunk)) {
    const std::size_t len =
        std::min<std::size_t>(static_cast<std::size_t>(chunk), h.size() - pos);
    image_stage.push(CSpan(h).subspan(pos, len));
    tracks.update(image_stage.image());
    if (tracks.columns_seen() == 0) continue;
    const auto& snaps = tracks.snapshots();
    const double now = snaps.empty()
                           ? image_stage.image().times_sec.back()
                           : snaps.front().time_sec;
    if (now < next_report) continue;
    next_report = now + report_every_sec;
    std::printf("t=%5.1fs  ", now);
    if (snaps.empty()) std::printf("(no tracks)");
    for (const auto& s : snaps) {
      if (s.state == track::TrackState::kTentative) continue;
      std::printf("[#%d %s %+5.1f deg %+5.1f deg/s%s] ", s.id,
                  track::to_string(s.state), s.angle_deg, s.velocity_dps,
                  s.updated ? "" : " (coast)");
    }
    std::printf("\n");
  }

  std::printf("\n%s\n", core::render_ascii(image_stage.image()).c_str());

  // Batch pass over the finished image: must match the streamed result
  // bit for bit (the rt parity contract).
  const auto batch = track::track_image(image_stage.image());
  const auto streamed = tracks.tracker().histories();
  bool parity = batch.size() == streamed.size();
  for (std::size_t i = 0; parity && i < batch.size(); ++i)
    parity = batch[i].id == streamed[i].id &&
             batch[i].angles_deg == streamed[i].angles_deg;
  std::printf("streaming == batch: %s\n\n", parity ? "yes (bit for bit)" : "NO");

  // The batch-throughput route for the same trace: track_trace() rebuilds
  // the image column-parallel (par::ParallelImageBuilder) instead of
  // sliding sequentially — thread-count-invariant output, ~1e-9 from the
  // streamed image, so the track picture must agree.
  core::MotionTracker::Config image_cfg;
  image_cfg.num_threads = threads;
  const auto parallel = track::track_trace(h, image_cfg);
  int parallel_confirmed = 0;
  for (const auto& tr : parallel.histories)
    parallel_confirmed += tr.confirmed_ever;
  std::printf("column-parallel batch (track_trace, threads=%d): "
              "%d confirmed tracks\n\n", threads, parallel_confirmed);

  std::printf("track summary (confirmed tracks only):\n");
  int confirmed = 0;
  for (const auto& tr : streamed) {
    if (!tr.confirmed_ever) continue;
    ++confirmed;
    std::printf("  #%d  %5.1fs..%5.1fs  angle %+5.1f -> %+5.1f deg  "
                "(%zu columns, %s)\n",
                tr.id, tr.times_sec.front(), tr.times_sec.back(),
                tr.angles_deg.front(), tr.angles_deg.back(),
                tr.angles_deg.size(), track::to_string(tr.state));
  }
  std::printf("\n%d confirmed tracks for 3 movers%s\n", confirmed,
              confirmed == 3 ? " — stable ids through the crossing" : "");
  return confirmed == 3 && parity ? 0 : 1;
}
