// Through-wall gesture messaging (paper §6): a person behind a closed wall,
// carrying no device whatsoever, sends a binary message to Wi-Vi by
// stepping forward/backward. Default message 1011; pass any bit string:
//
//   ./gesture_messaging [--message 10110] [--distance M] [--seed N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <wivi/wivi.hpp>

#include "examples/example_cli.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  examples::Cli cli(argc, argv, "send bits through a wall by stepping");
  const std::string bits_str =
      cli.get_string("message", "1011", "bit string to gesture");
  const double distance =
      cli.get_double("distance", 4.0, "metres behind the wall (1..9)");
  const std::uint64_t seed = cli.get_seed("seed", 11, "trial seed");
  if (!cli.ok()) return 2;

  sim::GestureTrial trial;
  trial.room = sim::stata_conference_a();
  trial.distance_m = distance;
  trial.subject_index = 1;
  trial.seed = seed;
  for (const char c : bits_str) {
    if (c != '0' && c != '1') {
      std::fprintf(stderr, "message must be a bit string, got '%s'\n",
                   bits_str.c_str());
      return 1;
    }
    trial.message.push_back(c == '0' ? core::Bit::kZero : core::Bit::kOne);
  }

  std::printf("Wi-Vi gesture messaging\n=======================\n");
  std::printf("room     : %s\n", trial.room.name.c_str());
  std::printf("distance : %.1f m behind the wall\n", distance);
  std::printf("message  : %s  (%zu bits; '0' = step forward then back,\n",
              bits_str.c_str(), trial.message.size());
  std::printf("            '1' = step backward then forward)\n");
  const core::GestureProfile profile;
  std::printf("airtime  : ~%.1f s\n\n",
              core::message_duration_sec(trial.message.size(), profile));

  const sim::GestureResult r = sim::run_gesture_trial(trial);

  std::printf("decoded  : ");
  for (const auto& b : r.decoded.bits)
    std::printf("%d", static_cast<int>(b.value));
  std::printf("\n");
  std::printf("result   : %d correct, %d erased, %d flipped\n", r.correct,
              r.erased, r.flipped);
  std::printf("per-bit SNR: ");
  for (const auto& b : r.decoded.bits) std::printf("%.1f dB  ", b.snr_db);
  std::printf("\n");
  std::printf("nulling  : %.1f dB of static-path suppression\n",
              r.effective_nulling_db);
  if (r.flipped == 0 && r.erased == 0)
    std::printf("\nmessage received intact through the wall.\n");
  else if (r.flipped == 0)
    std::printf("\npartial reception: erasures only, never bit flips (§7.5).\n");
  return 0;
}
