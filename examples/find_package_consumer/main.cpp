// The 30-line out-of-tree wivi application: find_package(wivi), one
// include, one declarative pipeline over a synthetic two-mover stream.
#include <wivi/wivi.hpp>

#include <cstdio>

int main() {
  using namespace wivi;

  PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.track = api::TrackStage{};
  spec.count = api::CountStage{};

  Session session(std::move(spec));
  const sim::SyntheticMover movers[] = {{0.5, 0.5, 1.0, 0.0},
                                        {-0.4, -0.4, 0.8, 1.0}};
  const CVec h = sim::synthetic_movers_trace(4000, /*seed=*/7, movers);
  session.run(h);

  std::printf("wivi %s consumer: %zu columns, variance %.3g, "
              "%zu confirmed target(s)\n",
              "find_package", session.columns_seen(),
              session.spatial_variance(),
              session.multi_tracker().num_confirmed());
  const bool ok = session.columns_seen() > 0 &&
                  session.spatial_variance() > 0.0;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
