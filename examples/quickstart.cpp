// Quickstart: the whole Wi-Vi pipeline in ~60 lines.
//
//   1. Build a scene: a closed conference room behind a 6" hollow wall,
//      with one person walking inside (they never carry any device).
//   2. Run MIMO nulling to erase the wall flash and all static clutter.
//   3. Capture the post-nulling channel stream and run it through a
//      wivi::Session (the declarative pipeline facade) to build the
//      smoothed-MUSIC angle-time image.
//   4. Print the angle-time heat map (the paper's Fig. 5-2) as ASCII art.
//
// Build & run:  ./quickstart [--seed N] [--duration S]
#include <cstdio>
#include <cstdlib>
#include <string>

#include <wivi/wivi.hpp>

#include "examples/example_cli.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  examples::Cli cli(argc, argv, "the whole Wi-Vi pipeline, one room");
  const std::uint64_t seed = cli.get_seed("seed", 7, "scene seed");
  const double duration = cli.get_double("duration", 8.0, "trace seconds");
  if (!cli.ok()) return 2;
  Rng rng(seed);

  // --- Scene: the paper's 7x4 m Stata conference room, device 1 m from
  // the wall, one person moving at will inside the closed room.
  sim::Scene scene(sim::stata_conference_a(), sim::default_calibration(), rng);
  const sim::SubjectParams person = sim::subject(3);
  scene.add_human(person,
                  sim::random_walk(scene.interior(), duration + 10.0,
                                   /*dt=*/0.01, person.walk_speed_mps, rng),
                  rng());

  // --- Nulling + trace capture.
  sim::ExperimentRunner::Config cfg;
  cfg.trace_duration_sec = duration;
  sim::ExperimentRunner runner(scene, cfg, rng.fork());
  const sim::TraceResult trace = runner.run();

  std::printf("Wi-Vi quickstart\n================\n");
  std::printf("scene: %s\n", scene.spec().name.c_str());
  std::printf("flash effect without nulling: ADC %s\n",
              trace.nulling.saturates_without_nulling ? "SATURATES" : "ok");
  std::printf("with nulling at boosted gain:  ADC %s\n",
              trace.nulling.saturates_with_nulling ? "SATURATES" : "ok");
  std::printf("achieved nulling: %.1f dB over the capture "
              "(%.1f dB right after convergence, initial %.1f dB, %d iterations)\n",
              trace.effective_nulling_db, trace.nulling.nulling_db,
              trace.nulling.pre_null_power_db -
                  trace.nulling.initial_residual_power_db,
              trace.nulling.iterations_used);

  // --- Track: one declarative pipeline (image stage only), batch-run.
  PipelineSpec spec;
  spec.t0 = trace.t0;
  spec.image.emit_columns = false;  // the image is read back whole below
  Session session(std::move(spec));
  session.run(trace.h);
  const core::AngleTimeImage& img = session.image();
  std::printf("\nA'[theta, n] - one person moving behind the wall:\n%s\n",
              core::render_ascii(img).c_str());

  const RVec angles = core::MotionTracker().dominant_angle_trace(img);
  std::printf("dominant angle per column (NaN = no confident mover):\n");
  for (std::size_t i = 0; i < angles.size(); ++i)
    std::printf("%s%+.0f", i ? " " : "", angles[i]);
  std::printf("\n");
  return 0;
}
