// Multi-person through-wall tracker (paper §5.2, Fig. 5-3 / 7-2): live-style
// ASCII rendering of A'[theta, n] with several people moving behind a wall,
// plus the per-column dominant-angle readout a downstream application (e.g.
// gaming or elderly monitoring, §1) would consume.
//
//   ./through_wall_tracker [--people 1..3] [--material M] [--seed N]
//                          [--duration S]
// materials: hollow (default) | concrete | wood | glass
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <wivi/wivi.hpp>

#include "examples/example_cli.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  examples::Cli cli(argc, argv, "live-style multi-person through-wall view");
  const int people = cli.get_int("people", 2, "number of movers (1..3)");
  const std::string material_name =
      cli.get_string("material", "hollow", "hollow|concrete|wood|glass");
  const std::uint64_t seed = cli.get_seed("seed", 17, "scene seed");
  const double duration = cli.get_double("duration", 10.0, "trace seconds");
  const int threads =
      cli.get_int("threads", 0, "image-build workers (0 = all cores, 1 = "
                                "sequential sliding path)");
  if (!cli.ok()) return 2;
  if (people < 1 || people > 3 || threads < 0) {
    std::fprintf(stderr, "--people must be 1..3 and --threads >= 0\n");
    return 1;
  }

  rf::Material material = rf::Material::kHollowWall;
  if (material_name == "concrete")
    material = rf::Material::kConcrete8in;
  else if (material_name == "wood")
    material = rf::Material::kSolidWoodDoor;
  else if (material_name == "glass")
    material = rf::Material::kGlass;

  sim::CountingTrial trial;
  trial.room = sim::room_with_material(material);
  trial.num_humans = people;
  trial.subjects = {0, 3, 6};
  trial.duration_sec = duration;
  trial.seed = seed;
  trial.image_threads = threads;  // whole-trace build: column-parallel MUSIC

  std::printf("Wi-Vi through-wall tracker\n==========================\n");
  std::printf("scene: %d person(s) behind %s\n", people,
              std::string(rf::info(material).name).c_str());

  const sim::CountingResult r = sim::run_counting_trial(trial);
  std::printf("nulling: %.1f dB of flash suppression\n\n",
              r.effective_nulling_db);
  std::printf("%s\n", core::render_ascii(r.image).c_str());

  const core::MotionTracker tracker;
  const RVec trace = tracker.dominant_angle_trace(r.image);
  std::printf("motion readout (dominant angle; '+' approaching, '-' receding):\n");
  int moving_cols = 0;
  for (std::size_t i = 0; i < trace.size(); i += 5) {
    if (std::isnan(trace[i])) {
      std::printf("  t=%5.1fs   (no confident mover)\n", r.image.times_sec[i]);
    } else {
      std::printf("  t=%5.1fs   theta=%+4.0f deg  %s\n", r.image.times_sec[i],
                  trace[i], trace[i] > 0 ? "approaching" : "receding");
    }
  }
  for (double a : trace) moving_cols += !std::isnan(a);
  std::printf("\nmotion visible in %d of %zu frames\n", moving_cols, trace.size());
  return 0;
}
