// Multi-person through-wall tracker (paper §5.2, Fig. 5-3 / 7-2): live-style
// ASCII rendering of A'[theta, n] with several people moving behind a wall,
// plus the per-column dominant-angle readout a downstream application (e.g.
// gaming or elderly monitoring, §1) would consume.
//
//   ./through_wall_tracker [num_people 1..3] [material] [seed]
// materials: hollow (default) | concrete | wood | glass
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/tracker.hpp"
#include "src/sim/protocols.hpp"

int main(int argc, char** argv) {
  using namespace wivi;
  const int people = argc > 1 ? std::atoi(argv[1]) : 2;
  const char* material_name = argc > 2 ? argv[2] : "hollow";
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 17;
  if (people < 1 || people > 3) {
    std::fprintf(stderr, "num_people must be 1..3\n");
    return 1;
  }

  rf::Material material = rf::Material::kHollowWall;
  if (std::strcmp(material_name, "concrete") == 0)
    material = rf::Material::kConcrete8in;
  else if (std::strcmp(material_name, "wood") == 0)
    material = rf::Material::kSolidWoodDoor;
  else if (std::strcmp(material_name, "glass") == 0)
    material = rf::Material::kGlass;

  sim::CountingTrial trial;
  trial.room = sim::room_with_material(material);
  trial.num_humans = people;
  trial.subjects = {0, 3, 6};
  trial.duration_sec = 10.0;
  trial.seed = seed;

  std::printf("Wi-Vi through-wall tracker\n==========================\n");
  std::printf("scene: %d person(s) behind %s\n", people,
              std::string(rf::info(material).name).c_str());

  const sim::CountingResult r = sim::run_counting_trial(trial);
  std::printf("nulling: %.1f dB of flash suppression\n\n",
              r.effective_nulling_db);
  std::printf("%s\n", core::render_ascii(r.image).c_str());

  const core::MotionTracker tracker;
  const RVec trace = tracker.dominant_angle_trace(r.image);
  std::printf("motion readout (dominant angle; '+' approaching, '-' receding):\n");
  int moving_cols = 0;
  for (std::size_t i = 0; i < trace.size(); i += 5) {
    if (std::isnan(trace[i])) {
      std::printf("  t=%5.1fs   (no confident mover)\n", r.image.times_sec[i]);
    } else {
      std::printf("  t=%5.1fs   theta=%+4.0f deg  %s\n", r.image.times_sec[i],
                  trace[i], trace[i] > 0 ? "approaching" : "receding");
    }
  }
  for (double a : trace) moving_cols += !std::isnan(a);
  std::printf("\nmotion visible in %d of %zu frames\n", moving_cols, trace.size());
  return 0;
}
