// Minimal command-line parsing shared by the examples: --name=value or
// --name value flags with typed accessors and auto-generated usage, so
// scenario sweeps (seed, duration, session count...) don't require
// recompiling. Header-only and dependency-free on purpose — this is
// example scaffolding, not library surface.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace wivi::examples {

class Cli {
 public:
  Cli(int argc, char** argv, std::string synopsis)
      : prog_(argv[0]), synopsis_(std::move(synopsis)) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] std::string get_string(const char* name, std::string def,
                                       const char* help) {
    record(name, def, help);
    std::string v = std::move(def);
    (void)lookup(name, v);
    return v;
  }

  [[nodiscard]] double get_double(const char* name, double def,
                                  const char* help) {
    record(name, std::to_string(def), help);
    std::string v;
    if (!lookup(name, v)) return def;
    char* end = nullptr;
    const double r = std::strtod(v.c_str(), &end);
    return parsed_fully(name, v, end) ? r : def;
  }

  [[nodiscard]] int get_int(const char* name, int def, const char* help) {
    record(name, std::to_string(def), help);
    std::string v;
    if (!lookup(name, v)) return def;
    char* end = nullptr;
    const long r = std::strtol(v.c_str(), &end, 10);
    return parsed_fully(name, v, end) ? static_cast<int>(r) : def;
  }

  /// Bare boolean switch: present means true, no value token expected
  /// (`--stats`, not `--stats 1`).
  [[nodiscard]] bool get_flag(const char* name, const char* help) {
    options_.push_back({name, "off", help, /*is_flag=*/true});
    const std::string want(name);
    for (const std::string& a : args_)
      if (flag_name(a) == want) return true;
    return false;
  }

  [[nodiscard]] std::uint64_t get_seed(const char* name, std::uint64_t def,
                                       const char* help) {
    record(name, std::to_string(def), help);
    std::string v;
    if (!lookup(name, v)) return def;
    char* end = nullptr;
    const std::uint64_t r = std::strtoull(v.c_str(), &end, 10);
    return parsed_fully(name, v, end) ? r : def;
  }

  /// Call after all get_*() registrations: prints usage and returns false
  /// on --help, any unrecognised argument, or an unparseable value.
  [[nodiscard]] bool ok() const {
    bool good = bad_values_.empty();
    for (const std::string& b : bad_values_)
      std::fprintf(stderr, "invalid value: %s\n", b.c_str());
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string& a = args_[i];
      if (a == "-h" || a == "--help") {
        good = false;
        continue;
      }
      const std::string name = flag_name(a);
      bool known = false, is_flag = false;
      for (const Option& o : options_) {
        known |= (name == o.name);
        is_flag |= (name == o.name && o.is_flag);
      }
      if (!known) {
        std::fprintf(stderr, "unknown argument: %s\n", a.c_str());
        good = false;
      } else if (is_flag) {
        // Switches carry no value token.
      } else if (a.find('=') == std::string::npos) {
        // Space-separated form: the next token must be a value, not
        // another flag and not the end of the line.
        if (i + 1 >= args_.size() || args_[i + 1].rfind("--", 0) == 0) {
          std::fprintf(stderr, "missing value for --%s\n", name.c_str());
          good = false;
        } else {
          ++i;  // skip the value token
        }
      }
    }
    if (!good) usage();
    return good;
  }

  void usage() const {
    std::fprintf(stderr, "usage: %s [options]\n  %s\noptions:\n", prog_.c_str(),
                 synopsis_.c_str());
    for (const Option& o : options_)
      std::fprintf(stderr, "  --%-12s %s (default: %s)\n", o.name.c_str(),
                   o.help.c_str(), o.def.c_str());
  }

 private:
  struct Option {
    std::string name, def, help;
    bool is_flag = false;
  };

  static std::string flag_name(const std::string& arg) {
    if (arg.rfind("--", 0) != 0) return arg;
    const std::size_t eq = arg.find('=');
    return arg.substr(2, eq == std::string::npos ? std::string::npos : eq - 2);
  }

  void record(const char* name, std::string def, const char* help) {
    options_.push_back({name, std::move(def), help});
  }

  /// True when strtoX consumed the whole token; otherwise queue the
  /// mistake for ok() so `--count x` errors instead of running with 0.
  bool parsed_fully(const char* name, const std::string& v, const char* end) {
    if (end != v.c_str() && *end == '\0') return true;
    bad_values_.push_back("--" + std::string(name) + "=" + v);
    return false;
  }

  bool lookup(const char* name, std::string& value) const {
    const std::string want(name);
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (flag_name(args_[i]) != want) continue;
      const std::size_t eq = args_[i].find('=');
      if (eq != std::string::npos) {
        value = args_[i].substr(eq + 1);
        return true;
      }
      // Never swallow another flag as a value; ok() reports the mistake.
      if (i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0) {
        value = args_[i + 1];
        return true;
      }
    }
    return false;
  }

  std::string prog_;
  std::string synopsis_;
  std::vector<std::string> args_;
  std::vector<Option> options_;
  std::vector<std::string> bad_values_;
};

}  // namespace wivi::examples
