/// @file
/// The wivi umbrella header: the library's entire public surface behind one
/// include.
///
/// Applications — the in-tree examples and out-of-tree find_package(wivi)
/// consumers alike — include only this header:
///
/// @code
///   #include <wivi/wivi.hpp>
///
///   wivi::PipelineSpec spec;
///   spec.count = wivi::api::CountStage{};
///   wivi::Session session(std::move(spec));
///   session.run(samples);                    // or push(chunk) / run(.., Parallelism{n})
///   std::printf("%g\n", session.spatial_variance());
/// @endcode
///
/// The canonical entry point is the wivi::api facade (PipelineSpec →
/// Session → typed Events; DESIGN.md §8); the layer headers below it stay
/// public for callers who need a single stage, the simulation testbed, or
/// the multiplexing runtime.
#pragma once

// ----------------------------------------------------------- the facade ---
#include "src/api/events.hpp"
#include "src/api/session.hpp"
#include "src/api/spec.hpp"

// ------------------------------------------------- common value types ------
#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/common/types.hpp"

// ------------------------------------------------------- linalg + dsp -----
#include "src/dsp/fft.hpp"
#include "src/dsp/fir.hpp"
#include "src/dsp/matched_filter.hpp"
#include "src/dsp/peaks.hpp"
#include "src/dsp/stats.hpp"
#include "src/dsp/window.hpp"
#include "src/linalg/cholesky.hpp"
#include "src/linalg/cmatrix.hpp"
#include "src/linalg/eig.hpp"

// ------------------------------------- core: the paper's algorithms -------
#include "src/core/counting.hpp"
#include "src/core/doa.hpp"
#include "src/core/doppler.hpp"
#include "src/core/gesture.hpp"
#include "src/core/isar.hpp"
#include "src/core/music.hpp"
#include "src/core/nulling.hpp"
#include "src/core/peak_policy.hpp"
#include "src/core/tracker.hpp"

// ---------------------------------------------- track: multi-target -------
#include "src/track/assignment.hpp"
#include "src/track/detect.hpp"
#include "src/track/kalman.hpp"
#include "src/track/multi_tracker.hpp"

// ---------------------------- obs: metrics, tracing, telemetry export -----
#include "src/obs/obs.hpp"

// ------------------------------------- rt: streaming runtime + engine -----
#include "src/rt/compat.hpp"
#include "src/rt/engine.hpp"
#include "src/rt/spsc_ring.hpp"
#include "src/rt/streaming.hpp"

// -------------------------------------- par: column-parallel batching -----
#include "src/par/image_builder.hpp"
#include "src/par/thread_pool.hpp"

// ------------------------------- hardware / RF / PHY models (sim side) ----
#include "src/hw/adc.hpp"
#include "src/hw/chains.hpp"
#include "src/hw/usrp.hpp"
#include "src/phy/link.hpp"
#include "src/phy/ofdm.hpp"
#include "src/rf/antenna.hpp"
#include "src/rf/channel.hpp"
#include "src/rf/geometry.hpp"
#include "src/rf/materials.hpp"
#include "src/rf/noise.hpp"
#include "src/rf/propagation.hpp"

// --------------------------------------------- sim: the virtual testbed ---
#include "src/sim/calibration.hpp"
#include "src/sim/experiment.hpp"
#include "src/sim/feeder.hpp"
#include "src/sim/human.hpp"
#include "src/sim/link.hpp"
#include "src/sim/multipath.hpp"
#include "src/sim/protocols.hpp"
#include "src/sim/robot.hpp"
#include "src/sim/room.hpp"
#include "src/sim/synthetic.hpp"

// ------------------- sim: scenario factory + accuracy evaluation harness ---
#include "src/sim/evaluate.hpp"
#include "src/sim/scenario.hpp"

// -------------------------------------- fault: deterministic chaos --------
#include "src/fault/fault.hpp"

// ------------------- net: framed ingress, reassembly, capture/replay ------
#include "src/net/capture.hpp"
#include "src/net/crc32c.hpp"
#include "src/net/frame.hpp"
#include "src/net/ingest.hpp"
#include "src/net/reassembler.hpp"
#include "src/net/receiver.hpp"
#include "src/net/sender.hpp"
#include "src/net/wire_fault.hpp"
#include "src/sim/netfeed.hpp"
