#!/usr/bin/env python3
"""Gate for the committed scenario accuracy matrix (ACCURACY_matrix.json).

Two layers, matching what the scenario-eval CI job needs:

  * Schema validation (always): the document is a
    ``wivi-accuracy-matrix-v1`` object whose ``families`` array carries at
    least 5 named families and at least 100 scenario rows in total, every
    row typed correctly and every family summary consistent with its rows
    (recomputed means/totals must agree).
  * Baseline comparison (``--baseline file``): the candidate matrix must
    describe the identical sweep (same families, row names, seeds, column
    counts) and score within per-metric tolerances of the committed
    baseline.  Scores are bit-identical when one binary regenerates them
    (eval_scenarios is pure in the base seed); the tolerances exist so a
    different compiler or optimisation level, which may round the MUSIC
    eigendecomposition differently, does not fail the gate while any real
    behavioural regression still does.  Counters that do not depend on
    floating point (chunk rejections, row identity) must match exactly.

Exit 0 when the candidate passes, 1 otherwise.

Usage: python3 scripts/check_accuracy.py [--baseline FILE] CANDIDATE
"""
from __future__ import annotations

import argparse
import json
import numbers
import sys

SCHEMA = "wivi-accuracy-matrix-v1"
MIN_FAMILIES = 5
MIN_SCENARIOS = 100

# Per-metric drift allowed between a candidate and the committed baseline.
ABS_TOL = {
    "ospa_deg": 1.0,
    "continuity": 0.08,
    "purity": 0.08,
    "count_accuracy": 0.10,
    "count_mae": 0.20,
}
REL_TOL = {
    "spatial_variance": 0.10,  # large linear-power magnitudes: relative
}
INT_TOL = {
    "id_switches": 2,
    "ghost_tracks": 1,
}
EXACT_INTS = ("seed", "movers", "max_concurrent", "columns",
              "chunks_rejected")

ROW_NUMBERS = ("ospa_deg", "continuity", "purity", "count_accuracy",
               "count_mae", "spatial_variance")

errors: list[str] = []


def fail(where: str, message: str) -> None:
    errors.append(f"{where}: {message}")


def is_number(value: object) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def load(path: str) -> dict | None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable: {e}")
        return None
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
        return None
    return doc


def check_row(where: str, row: object) -> bool:
    if not isinstance(row, dict):
        fail(where, "row is not an object")
        return False
    ok = True
    if not isinstance(row.get("name"), str) or not row.get("name"):
        fail(where, "missing or empty row name")
        ok = False
    for key in EXACT_INTS + tuple(INT_TOL):
        if not is_int(row.get(key)):
            fail(where, f"'{key}' is not an integer")
            ok = False
    for key in ROW_NUMBERS:
        if not is_number(row.get(key)):
            fail(where, f"'{key}' is not a number")
            ok = False
    if not isinstance(row.get("faulted"), bool):
        fail(where, "'faulted' is not a bool")
        ok = False
    if not ok:
        return False
    for key in ("continuity", "purity", "count_accuracy"):
        if not 0.0 <= row[key] <= 1.0:
            fail(where, f"'{key}' = {row[key]} outside [0, 1]")
            ok = False
    if row["ospa_deg"] < 0.0:
        fail(where, f"negative ospa_deg {row['ospa_deg']}")
        ok = False
    if not row["faulted"] and row["chunks_rejected"] != 0:
        fail(where, "chunk rejections on an unfaulted run")
        ok = False
    return ok


def check_summary(where: str, summary: object, rows: list[dict]) -> None:
    if not isinstance(summary, dict):
        fail(where, "summary is not an object")
        return
    n = len(rows)
    recomputed = {
        "mean_ospa_deg": sum(r["ospa_deg"] for r in rows) / n,
        "mean_continuity": sum(r["continuity"] for r in rows) / n,
        "mean_purity": sum(r["purity"] for r in rows) / n,
        "total_id_switches": sum(r["id_switches"] for r in rows),
        "total_ghost_tracks": sum(r["ghost_tracks"] for r in rows),
        "mean_count_accuracy": sum(r["count_accuracy"] for r in rows) / n,
        "mean_count_mae": sum(r["count_mae"] for r in rows) / n,
        "total_chunks_rejected": sum(r["chunks_rejected"] for r in rows),
    }
    for key, want in recomputed.items():
        got = summary.get(key)
        if not is_number(got):
            fail(where, f"summary '{key}' is not a number")
        elif abs(got - want) > 5e-6 + 1e-9 * abs(want):
            fail(where, f"summary '{key}' = {got} does not match its rows "
                        f"(recomputed {want})")


def check_schema(path: str, doc: dict) -> None:
    if doc.get("schema") != SCHEMA:
        fail(path, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not is_int(doc.get("base_seed")):
        fail(path, "'base_seed' is not an integer")
    families = doc.get("families")
    if not isinstance(families, list) or len(families) < MIN_FAMILIES:
        fail(path, f"fewer than {MIN_FAMILIES} families")
        return
    total = 0
    seen: set[str] = set()
    for fam in families:
        if not isinstance(fam, dict) or not isinstance(fam.get("name"), str):
            fail(path, "family without a name")
            continue
        where = f"{path}[{fam['name']}]"
        if fam["name"] in seen:
            fail(where, "duplicate family name")
        seen.add(fam["name"])
        rows = fam.get("rows")
        if not isinstance(rows, list) or not rows:
            fail(where, "family has no rows")
            continue
        if fam.get("scenarios") != len(rows):
            fail(where, f"'scenarios' = {fam.get('scenarios')} but "
                        f"{len(rows)} rows")
        row_ok = all(check_row(f"{where}.{i}", row)
                     for i, row in enumerate(rows))
        total += len(rows)
        if row_ok:
            check_summary(where, fam.get("summary"), rows)
    if doc.get("scenarios_total") != total:
        fail(path, f"'scenarios_total' = {doc.get('scenarios_total')} but "
                   f"families hold {total} rows")
    if total < MIN_SCENARIOS:
        fail(path, f"only {total} scenarios, expected >= {MIN_SCENARIOS}")


def compare_rows(where: str, base: dict, cand: dict) -> None:
    if cand.get("name") != base.get("name"):
        fail(where, f"row is {cand.get('name')!r}, baseline has "
                    f"{base.get('name')!r}")
        return
    for key in EXACT_INTS:
        if cand[key] != base[key]:
            fail(where, f"'{key}' = {cand[key]}, baseline {base[key]}")
    if cand["faulted"] != base["faulted"]:
        fail(where, "'faulted' flag differs from the baseline")
    for key, tol in INT_TOL.items():
        if abs(cand[key] - base[key]) > tol:
            fail(where, f"'{key}' = {cand[key]} drifted beyond +-{tol} "
                        f"from baseline {base[key]}")
    for key, tol in ABS_TOL.items():
        if abs(cand[key] - base[key]) > tol:
            fail(where, f"'{key}' = {cand[key]:.6f} drifted beyond "
                        f"+-{tol} from baseline {base[key]:.6f}")
    for key, tol in REL_TOL.items():
        scale = max(abs(base[key]), 1e-12)
        if abs(cand[key] - base[key]) / scale > tol:
            fail(where, f"'{key}' = {cand[key]:.6f} drifted beyond "
                        f"{tol:.0%} from baseline {base[key]:.6f}")


def compare(base_path: str, base: dict, cand_path: str, cand: dict) -> None:
    if cand.get("base_seed") != base.get("base_seed"):
        fail(cand_path, f"base_seed {cand.get('base_seed')} differs from "
                        f"the baseline's {base.get('base_seed')}")
    base_fams = base.get("families", [])
    cand_fams = cand.get("families", [])
    if [f.get("name") for f in base_fams] != [f.get("name")
                                              for f in cand_fams]:
        fail(cand_path, "family list differs from the baseline")
        return
    for bf, cf in zip(base_fams, cand_fams):
        name = bf["name"]
        if len(bf["rows"]) != len(cf["rows"]):
            fail(f"{cand_path}[{name}]",
                 f"{len(cf['rows'])} rows, baseline has {len(bf['rows'])}")
            continue
        for i, (br, cr) in enumerate(zip(bf["rows"], cf["rows"])):
            compare_rows(f"{cand_path}[{name}].{br.get('name', i)}", br, cr)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate",
                        help="matrix to validate (e.g. a fresh sweep)")
    parser.add_argument("--baseline",
                        help="committed matrix to compare against")
    args = parser.parse_args()

    cand = load(args.candidate)
    if cand is not None:
        check_schema(args.candidate, cand)
    if args.baseline and cand is not None:
        base = load(args.baseline)
        if base is not None:
            check_schema(args.baseline, base)
            compare(args.baseline, base, args.candidate, cand)

    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        return 1
    print(f"OK {args.candidate}"
          + (f" vs {args.baseline}" if args.baseline else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
