#!/usr/bin/env python3
"""Network-ingress gate for the framed wire path (ISSUE 10).

Holds a fresh ``bench_net`` run against the committed ``BENCH_net.json``
reference.  The contract being enforced:

  * frame parsing, reassembly and end-to-end loopback ingest must stay
    above the gate's throughput floors (scaled by ``--slack`` for
    CI-runner jitter) — the one-polling-thread ingress design must keep
    sustaining sensor-rate streams;
  * p99 frame-to-ring latency must stay under the gate's ceiling
    (scaled by ``--slack``);
  * under 2x offered load the receiver must shed load as *counted
    drops* — the drop fraction stays below 1.0 (ingest never stalls to
    zero) and under the gate's ceiling, some frames are still accepted,
    and the reassembly conservation law must have held on everything
    that arrived (``overload_conservation_held``).

Exit 0 when every check passes, 1 otherwise.

Usage:
  ./build/bench_net > measured.json
  python3 scripts/check_net.py measured.json --baseline BENCH_net.json
"""
from __future__ import annotations

import argparse
import json
import sys

errors: list[str] = []


def fail(message: str) -> None:
    errors.append(message)


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", help="fresh bench_net JSON output")
    parser.add_argument("--baseline", default="BENCH_net.json",
                        help="committed reference (default: BENCH_net.json)")
    parser.add_argument("--slack", type=float, default=2.0,
                        help="multiplicative tolerance on throughput floors "
                             "and latency ceilings (CI-runner jitter)")
    args = parser.parse_args()

    measured = load(args.measured)
    baseline = load(args.baseline)
    gate = baseline["gate"]

    # Throughput floors (gate value divided by slack).
    for key in ("parse_mframes_per_sec", "reassembly_chunks_per_sec",
                "loopback_chunks_per_sec"):
        floor = gate[f"min_{key}"] / args.slack
        got = measured[key]
        if got < floor:
            fail(f"{key} = {got:.2f} below floor {floor:.2f} "
                 f"(gate {gate[f'min_{key}']} / slack {args.slack})")

    # Latency ceiling (gate value multiplied by slack).
    ceiling = gate["max_frame_to_ring_p99_ns"] * args.slack
    p99 = measured["frame_to_ring_p99_ns"]
    if p99 <= 0:
        fail("frame_to_ring_p99_ns is zero: the latency histogram never "
             "recorded — the receiver's accept path is broken")
    elif p99 > ceiling:
        fail(f"frame_to_ring_p99_ns = {p99} over ceiling {ceiling:.0f} "
             f"(gate {gate['max_frame_to_ring_p99_ns']} x slack {args.slack})")

    # Overload: load is shed as counted drops, never a stall, and the
    # conservation law held on what arrived.
    drop = measured["overload_drop_fraction"]
    if not 0.0 <= drop <= gate["max_overload_drop_fraction"]:
        fail(f"overload_drop_fraction = {drop:.4f} outside "
             f"[0, {gate['max_overload_drop_fraction']}]")
    if measured["overload_frames_accepted"] <= 0:
        fail("overload run accepted zero frames: ingest stalled")
    if measured["overload_frames_sent"] <= 0:
        fail("overload run sent zero frames: bench is broken")
    if not measured["overload_conservation_held"]:
        fail("frame conservation law violated during the overload run")

    if errors:
        print("check_net: FAIL")
        for e in errors:
            print(f"  - {e}")
        return 1

    print("check_net: OK "
          f"(parse {measured['parse_mframes_per_sec']:.2f} Mframes/s, "
          f"reassembly {measured['reassembly_chunks_per_sec']:.0f} chunks/s, "
          f"loopback {measured['loopback_chunks_per_sec']:.0f} chunks/s, "
          f"p99 {measured['frame_to_ring_p99_ns']} ns, "
          f"overload drop {drop:.2%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
