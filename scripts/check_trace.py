#!/usr/bin/env python3
"""Validator for wivi::obs telemetry artifacts.

Checks the two exportable formats against their contracts:

  * Chrome trace-event JSON (``--trace file``): a top-level object with a
    ``traceEvents`` array; every event carries ``name``/``ph``/``pid``/
    ``tid``, non-metadata events carry a numeric ``ts``, and complete
    ("X") events a non-negative ``dur``.  This is exactly what
    chrome://tracing and ui.perfetto.dev require to render the file.
  * Snapshot JSON (``--snapshot file``): ``version``/``source`` plus the
    ``counters`` and ``histograms`` maps; every histogram entry has
    count/sum/mean/p50/p90/p99/max with ordered quantiles.

Exit 0 when every named file validates, 1 otherwise.  The observability
CI job runs an instrumented example with ``--trace``/``--stats`` and feeds
the artifacts through this script.

Usage: python3 scripts/check_trace.py [--trace FILE]... [--snapshot FILE]...
"""
from __future__ import annotations

import argparse
import json
import numbers
import sys

errors: list[str] = []


def fail(path: str, message: str) -> None:
    errors.append(f"{path}: {message}")


def is_number(value: object) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def check_trace(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable JSON: {e}")
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, "top level must be an object with a 'traceEvents' array")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(path, "'traceEvents' is not an array")
        return
    spans = 0
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(path, f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(path, f"{where}: missing '{key}'")
        ph = e.get("ph")
        if ph == "M":  # metadata: no timestamp required
            continue
        if not is_number(e.get("ts")):
            fail(path, f"{where}: non-metadata event without numeric 'ts'")
        if ph == "X":
            spans += 1
            if not is_number(e.get("dur")) or e["dur"] < 0:
                fail(path, f"{where}: complete event needs 'dur' >= 0")
    if spans == 0:
        fail(path, "no complete ('X') span events — nothing was traced")


def check_snapshot(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable JSON: {e}")
        return
    if not isinstance(doc, dict):
        fail(path, "top level must be an object")
        return
    for key, kind in (("version", numbers.Real), ("source", str),
                      ("counters", dict), ("histograms", dict)):
        if not isinstance(doc.get(key), kind):
            fail(path, f"missing or mistyped '{key}'")
    for name, value in (doc.get("counters") or {}).items():
        if not is_number(value) or value < 0:
            fail(path, f"counter '{name}': not a non-negative number")
    for name, hist in (doc.get("histograms") or {}).items():
        if not isinstance(hist, dict):
            fail(path, f"histogram '{name}': not an object")
            continue
        for key in ("count", "sum", "mean", "p50", "p90", "p99", "max"):
            if not is_number(hist.get(key)):
                fail(path, f"histogram '{name}': missing numeric '{key}'")
                break
        else:
            if not hist["p50"] <= hist["p90"] <= hist["p99"] <= hist["max"]:
                fail(path, f"histogram '{name}': quantiles out of order")
            if hist["count"] == 0 and hist["sum"] != 0:
                fail(path, f"histogram '{name}': empty but sum != 0")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", action="append", default=[],
                        metavar="FILE", help="Chrome trace JSON to validate")
    parser.add_argument("--snapshot", action="append", default=[],
                        metavar="FILE", help="snapshot JSON to validate")
    args = parser.parse_args()
    if not args.trace and not args.snapshot:
        parser.error("nothing to check: pass --trace and/or --snapshot")
    for path in args.trace:
        check_trace(path)
    for path in args.snapshot:
        check_snapshot(path)
    if errors:
        for e in errors:
            print(f"check_trace: {e}", file=sys.stderr)
        return 1
    n = len(args.trace) + len(args.snapshot)
    print(f"check_trace: {n} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
