#!/usr/bin/env python3
"""Memory-footprint gate for the shared-plan registry (ISSUE 9).

Holds a fresh ``bench_mem`` run against the committed ``BENCH_mem.json``
reference.  The contract being enforced:

  * idle bytes per session at N=1000 must stay at least
    ``gate.min_idle_reduction_at_1000`` times below the committed
    pre-registry baseline (``before.idle_bytes_per_session``) — the
    headline "split immutable shared plans from the mutable workspace"
    win must not regress;
  * idle bytes per session must not exceed
    ``gate.max_idle_bytes_per_session_at_1000`` (absolute backstop, with
    a configurable slack for allocator jitter across toolchains);
  * per-session idle cost must be flat in session count (the marginal
    cost at N=1000 must not exceed N=100 by more than the slack), i.e.
    nothing per-session secretly scales with the fleet;
  * active bytes per session must not regress past the committed
    ``after`` reference by more than the slack.

Exit 0 when every check passes, 1 otherwise.

Usage:
  ./build/bench_mem > measured.json
  python3 scripts/check_mem.py measured.json --baseline BENCH_mem.json
"""
from __future__ import annotations

import argparse
import json
import sys

errors: list[str] = []


def fail(message: str) -> None:
    errors.append(message)


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("measured", help="fresh bench_mem JSON output")
    parser.add_argument("--baseline", default="BENCH_mem.json",
                        help="committed reference (default: BENCH_mem.json)")
    parser.add_argument("--slack", type=float, default=1.25,
                        help="multiplicative tolerance on absolute byte "
                             "limits (allocator/toolchain jitter)")
    args = parser.parse_args()

    measured = load(args.measured)
    baseline = load(args.baseline)

    gate = baseline["gate"]
    before_idle = baseline["before"]["idle_bytes_per_session"]
    after_active = baseline["after"]["active_bytes_per_session"]

    idle = measured["idle_bytes_per_session"]
    active = measured["active_bytes_per_session"]

    # 1. The headline reduction holds against the pre-registry baseline.
    min_reduction = float(gate["min_idle_reduction_at_1000"])
    if idle["1000"] * min_reduction > before_idle["1000"]:
        fail(f"idle bytes/session at N=1000 is {idle['1000']}, which is not "
             f"{min_reduction:.1f}x below the pre-registry baseline of "
             f"{before_idle['1000']}")

    # 2. Absolute backstop (with slack for allocator differences).
    cap = float(gate["max_idle_bytes_per_session_at_1000"]) * args.slack
    if idle["1000"] > cap:
        fail(f"idle bytes/session at N=1000 is {idle['1000']}, above the "
             f"gate of {cap:.0f} ({gate['max_idle_bytes_per_session_at_1000']}"
             f" x slack {args.slack})")

    # 3. Marginal cost is flat in session count: nothing per-session may
    #    scale with the fleet.
    if idle["1000"] > idle["100"] * args.slack:
        fail(f"idle bytes/session grows with session count: "
             f"{idle['100']} at N=100 vs {idle['1000']} at N=1000")

    # 4. Active footprint must not regress past the committed reference.
    active_cap = float(after_active["1000"]) * args.slack
    if active["1000"] > active_cap:
        fail(f"active bytes/session at N=1000 is {active['1000']}, above "
             f"the committed reference {after_active['1000']} x slack "
             f"{args.slack} = {active_cap:.0f}")

    if errors:
        for e in errors:
            print(f"check_mem: FAIL: {e}", file=sys.stderr)
        return 1

    reduction = before_idle["1000"] / max(1, idle["1000"])
    print(f"check_mem: OK — idle {idle['1000']} B/session at N=1000 "
          f"({reduction:.1f}x below the pre-registry baseline), "
          f"active {active['1000']} B/session")
    return 0


if __name__ == "__main__":
    sys.exit(main())
