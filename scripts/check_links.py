#!/usr/bin/env python3
"""Cross-reference checker for the repository documentation.

Fails (exit 1) on dangling references in README.md / DESIGN.md and on
dangling "DESIGN.md §N" section references anywhere in the tree:

  * markdown links whose local target file (or in-file #anchor) is missing,
  * backtick-quoted repository paths that do not exist,
  * `test_*` / `bench_*` binary names without a matching source file,
  * "DESIGN.md §N" references (from markdown or source comments) to a
    section heading DESIGN.md does not define.

Run from the repository root: python3 scripts/check_links.py
"""
from __future__ import annotations

import glob
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = ["README.md", "DESIGN.md"]

errors: list[str] = []


def fail(doc: str, line: int, message: str) -> None:
    errors.append(f"{doc}:{line}: {message}")


def heading_anchors(markdown: str) -> set[str]:
    """GitHub-style anchors for every heading in a markdown document."""
    anchors = set()
    for match in re.finditer(r"^#+\s+(.*)$", markdown, re.MULTILINE):
        text = re.sub(r"[`*_]", "", match.group(1).strip()).lower()
        text = re.sub(r"[^\w\s§.-]", "", text)
        anchors.add(re.sub(r"\s+", "-", text).strip("-"))
    return anchors


def design_sections(markdown: str) -> set[str]:
    """Section numbers DESIGN.md defines as '## §N' headings."""
    return set(re.findall(r"^##+\s+§(\d+)", markdown, re.MULTILINE))


def check_markdown_links(doc: str, text: str) -> None:
    for i, line in enumerate(text.splitlines(), 1):
        for target in re.findall(r"\[[^\]]*\]\(([^)]+)\)", line):
            target = target.strip()
            if target.startswith(("http://", "https://", "mailto:")):
                continue  # external: not checked (no network in CI step)
            path, _, anchor = target.partition("#")
            if path:
                full = os.path.normpath(os.path.join(ROOT, path))
                if not os.path.exists(full):
                    fail(doc, i, f"link target does not exist: {path}")
                    continue
            ref_doc = path if path else doc
            if anchor:
                ref_full = os.path.normpath(os.path.join(ROOT, ref_doc))
                if not ref_doc.endswith(".md") or not os.path.exists(ref_full):
                    continue
                with open(ref_full, encoding="utf-8") as f:
                    if anchor.lower() not in heading_anchors(f.read()):
                        fail(doc, i, f"anchor #{anchor} not found in {ref_doc}")


PATHLIKE = re.compile(
    r"`((?:src|tests|bench|examples|docs|scripts|\.github)/[\w./-]+)`")
BINARY = re.compile(r"\b((?:test|bench)_[a-z0-9_]+)\b")


def check_repo_paths(doc: str, text: str) -> None:
    for i, line in enumerate(text.splitlines(), 1):
        for path in PATHLIKE.findall(line):
            if not os.path.exists(os.path.join(ROOT, path)):
                fail(doc, i, f"referenced path does not exist: {path}")


def check_binary_names(doc: str, text: str) -> None:
    for i, line in enumerate(text.splitlines(), 1):
        for name in BINARY.findall(line):
            directory = "tests" if name.startswith("test_") else "bench"
            candidates = [f"{directory}/{name}.cpp", f"{directory}/{name}.hpp"]
            if not any(os.path.exists(os.path.join(ROOT, c)) for c in candidates):
                fail(doc, i, f"no source for referenced binary: {name}")


def check_design_section_refs(sections: set[str]) -> None:
    """Every 'DESIGN.md §N' in docs or source must resolve to a heading."""
    files = DOCS + [
        p for pattern in ("src/**/*.hpp", "src/**/*.cpp", "bench/*.hpp",
                          "bench/*.cpp", "examples/*.cpp", "tests/*.cpp")
        for p in glob.glob(pattern, root_dir=ROOT, recursive=True)
    ]
    for rel in files:
        with open(os.path.join(ROOT, rel), encoding="utf-8") as f:
            for i, line in enumerate(f, 1):
                for num in re.findall(r"DESIGN\.md\s+§(\d+)", line):
                    if num not in sections:
                        fail(rel, i, f"DESIGN.md has no section §{num}")


def main() -> int:
    with open(os.path.join(ROOT, "DESIGN.md"), encoding="utf-8") as f:
        sections = design_sections(f.read())
    for doc in DOCS:
        with open(os.path.join(ROOT, doc), encoding="utf-8") as f:
            text = f.read()
        check_markdown_links(doc, text)
        check_repo_paths(doc, text)
        check_binary_names(doc, text)
    check_design_section_refs(sections)
    if errors:
        print(f"{len(errors)} dangling reference(s):")
        for e in errors:
            print("  " + e)
        return 1
    print("all documentation cross-references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
