// wivi::obs — histogram bucket math against exact references, clock
// swapping (FakeClock), registry aggregation, JSON/Prometheus/Chrome-trace
// export formats, the per-stage pipeline instrumentation through a live
// api::Session, engine-wide sample conservation, and every disable path
// (run-time set_enabled + per-session ObsConfig::timing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/session.hpp"
#include "src/common/random.hpp"
#include "src/obs/obs.hpp"
#include "src/rt/engine.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi {
namespace {

// ------------------------------------------------------- bucket math ---

TEST(ObsHistogramBuckets, IdentityBelowSubBucketCount) {
  for (std::uint64_t v = 0; v < obs::kHistSub; ++v) {
    EXPECT_EQ(obs::bucket_index(v), static_cast<int>(v));
    EXPECT_EQ(obs::bucket_lower(static_cast<int>(v)), v);
  }
}

TEST(ObsHistogramBuckets, IndexIsMonotoneAndLowerBoundsAreTight) {
  int prev = -1;
  for (std::uint64_t v = 0; v < 100000; v = v < 16 ? v + 1 : v + v / 7) {
    const int idx = obs::bucket_index(v);
    ASSERT_GE(idx, prev) << "v=" << v;
    ASSERT_LT(idx, obs::kHistBuckets) << "v=" << v;
    // v falls inside [lower(idx), lower(idx+1)).
    ASSERT_LE(obs::bucket_lower(idx), v) << "v=" << v;
    ASSERT_GT(obs::bucket_lower(idx + 1), v) << "v=" << v;
    prev = idx;
  }
}

TEST(ObsHistogramBuckets, RelativeErrorBoundedByLogLinearResolution) {
  // Log-linear with 8 sub-buckets: the bucket width is at most 1/8 of the
  // value's magnitude, so lower(idx) is within 12.5% of any v in bucket.
  for (std::uint64_t v = obs::kHistSub; v < (std::uint64_t{1} << 40);
       v = v + 1 + v / 3) {
    const std::uint64_t lo = obs::bucket_lower(obs::bucket_index(v));
    ASSERT_LE(static_cast<double>(v - lo) / static_cast<double>(v), 0.125 + 1e-12)
        << "v=" << v;
  }
}

TEST(ObsHistogramBuckets, HugeValuesStayInRange) {
  const std::uint64_t top = ~std::uint64_t{0};
  const int idx = obs::bucket_index(top);
  EXPECT_LT(idx, obs::kHistBuckets);
  EXPECT_LE(obs::bucket_lower(idx), top);
}

// --------------------------------------------------------- quantiles ---

/// Exact reference quantile: value of rank ceil(q*n) in sorted order.
std::uint64_t exact_quantile(std::vector<std::uint64_t> v, double q) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<double>(v.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::clamp<std::size_t>(rank, 1, v.size());
  return v[rank - 1];
}

TEST(ObsHistogramQuantiles, MatchExactReferenceWithinBucketResolution) {
  Rng rng(42);
  std::vector<std::uint64_t> values;
  obs::LocalHistogram h;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform spread across 6 decades, the shape of latency data.
    const double u = rng.uniform(0.0, 6.0);
    const auto v = static_cast<std::uint64_t>(std::pow(10.0, u));
    values.push_back(v);
    h.record(v);
  }
  const obs::HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.count, values.size());
  for (const auto& [q, got] :
       {std::pair{0.50, s.p50}, {0.90, s.p90}, {0.99, s.p99}}) {
    const auto exact = static_cast<double>(exact_quantile(values, q));
    // The histogram returns a bucket lower bound: at most one bucket
    // (12.5%) below the exact rank statistic, never above the next bucket.
    EXPECT_LE(static_cast<double>(got), exact * 1.15) << "q=" << q;
    EXPECT_GE(static_cast<double>(got), exact * 0.85) << "q=" << q;
  }
  std::uint64_t sum = 0;
  for (std::uint64_t v : values) sum += v;
  EXPECT_EQ(s.sum, sum);
  EXPECT_GE(s.max, exact_quantile(values, 1.0));
}

TEST(ObsHistogramQuantiles, SingleValueSnapshotIsThatBucket) {
  obs::LocalHistogram h;
  h.record(1000);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 1000u);
  EXPECT_EQ(s.p50, s.p99);
  EXPECT_LE(s.p50, 1000u);
  EXPECT_GE(s.max, 1000u);
}

TEST(ObsHistogramQuantiles, EmptySnapshotIsAllZero) {
  const obs::HistogramSnapshot s = obs::LocalHistogram().snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.p50, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(ObsHistogramMerge, MergedEqualsRecordingEverythingIntoOne) {
  obs::LocalHistogram a, b, all;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::uint64_t>(rng.uniform(0.0, 1e7));
    (i % 2 ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  const obs::HistogramSnapshot sa = a.snapshot(), sall = all.snapshot();
  EXPECT_EQ(sa.count, sall.count);
  EXPECT_EQ(sa.sum, sall.sum);
  EXPECT_EQ(sa.p50, sall.p50);
  EXPECT_EQ(sa.p90, sall.p90);
  EXPECT_EQ(sa.p99, sall.p99);
  EXPECT_EQ(sa.max, sall.max);
}

TEST(ObsHistogramSharded, AggregatesAcrossSlotsExactly) {
  obs::Histogram h(4);
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
}

// ------------------------------------------------------------- clock ---

TEST(ObsClock, DefaultClockAdvances) {
  const std::int64_t a = obs::now_ns();
  const std::int64_t b = obs::now_ns();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0);
}

TEST(ObsClock, FakeClockControlsNowAndRestoresOnDestruction) {
  const std::int64_t real_before = obs::now_ns();
  {
    obs::FakeClock fake(5'000);
    EXPECT_EQ(obs::now_ns(), 5'000);
    fake.advance_ns(123);
    EXPECT_EQ(obs::now_ns(), 5'123);
    fake.advance_sec(2.0);
    EXPECT_EQ(obs::now_ns(), 5'123 + 2'000'000'000);
    EXPECT_EQ(fake.now(), obs::now_ns());
  }
  EXPECT_GE(obs::now_ns(), real_before);  // steady clock is back
}

// ------------------------------------------------- counters + registry ---

TEST(ObsCounter, AddAndValue) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(ObsGauge, SetAddValue) {
  obs::Gauge g;
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(ObsRegistry, SameNameReturnsSameMetric) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x_total");
  obs::Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  obs::Histogram& ha = reg.histogram("y_ns");
  obs::Histogram& hb = reg.histogram("y_ns");
  EXPECT_EQ(&ha, &hb);
}

TEST(ObsRegistry, SnapshotCarriesEveryRegisteredMetric) {
  obs::Registry reg;
  reg.counter("a_total").add(7);
  reg.gauge("depth").set(3);
  reg.histogram("lat_ns").record(100);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("a_total"), 7u);
  EXPECT_EQ(snap.counter_value("depth"), 3u);
  EXPECT_EQ(snap.counter_value("missing"), 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].name, "lat_ns");
  EXPECT_EQ(snap.histograms[0].hist.count, 1u);
}

TEST(ObsEnabled, RuntimeDisableStopsRecordingEverywhere) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c_total");
  obs::Histogram& h = reg.histogram("h_ns");
  obs::set_enabled(false);
  c.add(5);
  h.record(5);
  obs::set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.add(1);
  h.record(1);
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(h.count(), 1u);
}

// ----------------------------------------------------------- exporters ---

TEST(ObsSnapshotExport, JsonContainsVersionCountersAndQuantiles) {
  obs::Registry reg;
  reg.counter("wivi_demo_total").add(9);
  for (std::uint64_t v = 1; v <= 100; ++v) reg.histogram("wivi_demo_ns").record(v);
  std::ostringstream os;
  obs::write_snapshot(os, reg.snapshot());
  const std::string j = os.str();
  EXPECT_NE(j.find("\"version\":1"), std::string::npos) << j;
  EXPECT_NE(j.find("\"wivi_demo_total\":9"), std::string::npos) << j;
  EXPECT_NE(j.find("\"wivi_demo_ns\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"p99\""), std::string::npos) << j;
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '\n');
}

TEST(ObsSnapshotExport, PrometheusTextExposition) {
  obs::Registry reg;
  reg.counter("wivi_demo_total").add(4);
  reg.histogram("wivi_demo_ns").record(50);
  std::ostringstream os;
  obs::write_snapshot(os, reg.snapshot(), obs::ExportFormat::kPrometheus);
  const std::string p = os.str();
  EXPECT_NE(p.find("# TYPE wivi_demo_total counter"), std::string::npos) << p;
  EXPECT_NE(p.find("wivi_demo_total 4"), std::string::npos) << p;
  EXPECT_NE(p.find("# TYPE wivi_demo_ns summary"), std::string::npos) << p;
  EXPECT_NE(p.find("quantile=\"0.99\""), std::string::npos) << p;
  EXPECT_NE(p.find("wivi_demo_ns_count 1"), std::string::npos) << p;
}

// --------------------------------------------------------------- trace ---

TEST(ObsTraceBuffer, BoundedRingEvictsOldestFirst) {
  obs::TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i)
    buf.push(obs::TraceRecord{"span", i * 100, 10});
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total(), 10u);
  const std::vector<obs::TraceRecord> r = buf.records();
  ASSERT_EQ(r.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r[static_cast<std::size_t>(i)].start_ns, (6 + i) * 100);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ObsTraceBuffer, ZeroCapacityDropsEverything) {
  obs::TraceBuffer buf(0);
  buf.push(obs::TraceRecord{"span", 0, 1});
  EXPECT_EQ(buf.size(), 0u);
}

TEST(ObsChromeTrace, EmitsWellFormedCompleteEvents) {
  obs::TraceBuffer buf(8);
  buf.push(obs::TraceRecord{"stft_doppler", 1'000, 2'500});
  buf.push(obs::TraceRecord{"music", 4'000, 1'000});
  std::ostringstream os;
  obs::write_chrome_trace(os, buf, "session0");
  const std::string t = os.str();
  EXPECT_EQ(t.rfind("{\"traceEvents\":[", 0), 0u) << t;
  EXPECT_NE(t.find("\"ph\":\"M\""), std::string::npos) << t;
  EXPECT_NE(t.find("\"process_name\""), std::string::npos) << t;
  EXPECT_NE(t.find("\"name\":\"stft_doppler\""), std::string::npos) << t;
  EXPECT_NE(t.find("\"ph\":\"X\""), std::string::npos) << t;
  EXPECT_NE(t.find("\"ts\":1.000"), std::string::npos) << t;   // 1000 ns = 1 us
  EXPECT_NE(t.find("\"dur\":2.500"), std::string::npos) << t;
  EXPECT_NE(t.find("\"displayTimeUnit\":\"ms\""), std::string::npos) << t;
}

TEST(ObsPipelineObserver, RecordsStagesAndHonoursDisable) {
  obs::PipelineObserver on(/*timing=*/true, /*trace_capacity=*/16);
  {
    obs::ScopedSpan span(&on, obs::Stage::kMusic);
  }
  EXPECT_EQ(on.stage(obs::Stage::kMusic).count(), 1u);
  EXPECT_EQ(on.trace().size(), 1u);

  obs::PipelineObserver off(/*timing=*/false, /*trace_capacity=*/16);
  {
    obs::ScopedSpan span(&off, obs::Stage::kMusic);
  }
  EXPECT_EQ(off.stage(obs::Stage::kMusic).count(), 0u);
  EXPECT_EQ(off.trace().size(), 0u);

  obs::ScopedSpan null_ok(nullptr, obs::Stage::kEmit);  // must be a no-op
}

TEST(ObsPipelineObserver, StopEndsTheSpanEarly) {
  obs::FakeClock fake(0);
  obs::PipelineObserver o(true, 4);
  {
    obs::ScopedSpan span(&o, obs::Stage::kDetect);
    fake.advance_ns(500);
    span.stop();
    fake.advance_ns(10'000);  // after stop(): not part of the span
  }
  const std::vector<obs::TraceRecord> r = o.trace().records();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].dur_ns, 500);
  EXPECT_EQ(o.stage(obs::Stage::kDetect).count(), 1u);
}

// ------------------------------------------------------- api::Session ---

api::PipelineSpec obs_spec(bool timing = true, std::size_t trace_cap = 0) {
  api::PipelineSpec spec;
  spec.image.emit_columns = true;
  spec.count = api::CountStage{};
  spec.obs.timing = timing;
  spec.obs.trace_capacity = trace_cap;
  return spec;
}

TEST(SessionObs, StatsCountChunksColumnsAndStageLatencies) {
  const CVec h = sim::synthetic_mover_trace(1500);
  api::Session session(obs_spec(true, 1024));
  std::size_t chunks = 0;
  for (std::size_t pos = 0; pos < h.size(); pos += 100, ++chunks)
    session.push(CSpan(h).subspan(pos, std::min<std::size_t>(100, h.size() - pos)));
  const api::PipelineStats st = session.stats();
  EXPECT_EQ(st.chunks_in, chunks);
  EXPECT_EQ(st.samples_seen, h.size());
  EXPECT_GT(st.columns_seen, 0u);
  EXPECT_GT(st.events_emitted, 0u);
  EXPECT_EQ(st.chunks_rejected, 0u);
  // Real stages ran, so their histograms must be populated with real time.
  ASSERT_FALSE(st.stages.empty());
  bool saw_stft = false, saw_chunk = false;
  for (const api::StageLatency& sl : st.stages) {
    EXPECT_GT(sl.latency.count, 0u) << sl.stage;
    if (std::string(sl.stage) == "stft_doppler") {
      saw_stft = true;
      EXPECT_GT(sl.latency.p50, 0u);
      EXPECT_GE(sl.latency.p99, sl.latency.p50);
    }
    if (std::string(sl.stage) == "chunk") saw_chunk = true;
  }
  EXPECT_TRUE(saw_stft);
  EXPECT_TRUE(saw_chunk);

  // The exported snapshot mirrors the same counters under wivi_session_*.
  const obs::Snapshot snap = session.snapshot();
  EXPECT_EQ(snap.counter_value("wivi_session_chunks_in_total"), chunks);
  EXPECT_EQ(snap.counter_value("wivi_session_samples_seen_total"), h.size());

  // And the trace ring holds Chrome-trace-renderable spans.
  std::ostringstream os;
  session.write_trace(os);
  EXPECT_NE(os.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(SessionObs, TimingOffLeavesStagesEmptyAndOutputIdentical) {
  const CVec h = sim::synthetic_mover_trace(1000);
  api::Session timed(obs_spec(true));
  api::Session untimed(obs_spec(false));
  timed.run(h);
  untimed.run(h);
  EXPECT_EQ(untimed.stats().stages.size(), 0u);
  EXPECT_GT(timed.stats().stages.size(), 0u);
  // Instrumentation must not perturb the numbers.
  EXPECT_EQ(timed.spatial_variance(), untimed.spatial_variance());
  EXPECT_EQ(timed.stats().columns_seen, untimed.stats().columns_seen);
}

TEST(SessionObs, GuardRejectionsAreCountedAndDoNotPolluteChunkLatency) {
  api::Session session(obs_spec(true));
  CVec bad(64, cdouble(std::nan(""), 0.0));
  EXPECT_THROW(session.push(bad), TypedError);
  const api::PipelineStats st = session.stats();
  EXPECT_EQ(st.chunks_rejected, 1u);
  for (const api::StageLatency& sl : st.stages) {
    if (std::string(sl.stage) == "chunk") {
      EXPECT_EQ(sl.latency.count, 0u);
    }
  }
}

// --------------------------------------------------------- rt::Engine ---

TEST(EngineObs, SampleConservationAcrossDropsAndRejections) {
  rt::Engine::Config ec;
  ec.num_threads = 2;
  rt::Engine engine(ec);
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  rt::IngestConfig ingest;
  ingest.ring_capacity = 2;
  ingest.backpressure = rt::Backpressure::kDropNewest;
  const rt::SessionId id = engine.open_session(spec, ingest);

  // The malformed chunk goes first, onto an empty ring: its push cannot
  // fail, so the worker is guaranteed to pop it and the guard to reject it.
  CVec bad(32, cdouble(std::nan(""), 0.0));
  EXPECT_TRUE(engine.offer(id, std::move(bad)));
  std::uint64_t offered_samples = 32, offered_chunks = 1;
  const CVec h = sim::synthetic_mover_trace(4000);
  for (std::size_t pos = 0; pos < h.size(); pos += 64) {
    const std::size_t len = std::min<std::size_t>(64, h.size() - pos);
    CVec c(h.begin() + static_cast<std::ptrdiff_t>(pos),
           h.begin() + static_cast<std::ptrdiff_t>(pos + len));
    engine.offer(id, std::move(c));  // tiny kDropNewest ring: many drop
    offered_samples += len;
    ++offered_chunks;
  }
  engine.close_session(id);
  engine.drain();

  const auto st = engine.stats();
  EXPECT_EQ(st.chunks_in, offered_chunks);
  EXPECT_EQ(st.samples_in, offered_samples);
  // Conservation: every offered sample is processed, dropped, rejected or
  // lost — nothing vanishes, nothing is double-counted.
  EXPECT_EQ(st.samples_in, st.samples_processed + st.samples_dropped +
                               st.samples_rejected + st.samples_lost);
  EXPECT_EQ(st.samples_rejected, 32u);
  EXPECT_EQ(st.chunks_rejected, 1u);
  EXPECT_EQ(st.sessions, 1u);
  EXPECT_EQ(st.sessions_finished, 1u);
  EXPECT_GT(st.ingress_wait.count, 0u);
  EXPECT_GT(st.chunk_latency.count, 0u);

  // The exported snapshot agrees with the typed stats and adds the ring
  // counters (pushes = pops + drops for a drained engine).
  const obs::Snapshot snap = engine.snapshot();
  EXPECT_EQ(snap.counter_value("wivi_engine_samples_in_total"), st.samples_in);
  EXPECT_EQ(snap.counter_value("wivi_engine_samples_in_total"),
            snap.counter_value("wivi_engine_samples_processed_total") +
                snap.counter_value("wivi_engine_samples_dropped_total") +
                snap.counter_value("wivi_engine_samples_rejected_total") +
                snap.counter_value("wivi_engine_samples_lost_total"));
  // A drained engine has consumed everything it accepted, and every offer
  // either entered the ring or bumped its drop counter.
  EXPECT_EQ(snap.counter_value("wivi_ring_pushes_total"),
            snap.counter_value("wivi_ring_pops_total"));
  EXPECT_EQ(snap.counter_value("wivi_ring_pushes_total") +
                snap.counter_value("wivi_ring_drops_total"),
            offered_chunks);

  std::ostringstream os;
  engine.write_snapshot(os);
  EXPECT_NE(os.str().find("wivi_engine_chunks_in_total"), std::string::npos);
}

TEST(EngineObs, PeriodicStatsEventsCarryLiveCounters) {
  rt::Engine::Config ec;
  ec.num_threads = 1;
  rt::Engine engine(ec);
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  rt::IngestConfig ingest;
  ingest.backpressure = rt::Backpressure::kBlock;
  ingest.stats_interval_sec = 0.01;
  const rt::SessionId id = engine.open_session(spec, ingest);

  const CVec h = sim::synthetic_mover_trace(3000);
  for (std::size_t pos = 0; pos < h.size(); pos += 50) {
    const std::size_t len = std::min<std::size_t>(50, h.size() - pos);
    CVec c(h.begin() + static_cast<std::ptrdiff_t>(pos),
           h.begin() + static_cast<std::ptrdiff_t>(pos + len));
    engine.offer(id, std::move(c));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.close_session(id);
  engine.drain();

  std::vector<rt::Event> events;
  engine.poll(events);
  std::vector<const rt::Event*> stats_events;
  for (const rt::Event& e : events)
    if (e.type == rt::Event::Type::kStats) stats_events.push_back(&e);
  ASSERT_FALSE(stats_events.empty()) << "no kStats events in "
                                     << events.size() << " events";
  const rt::SessionStats& last = stats_events.back()->stats;
  EXPECT_GT(last.chunks_in, 0u);
  EXPECT_EQ(last.samples_in, h.size());
  EXPECT_GT(last.latency.count, 0u);
  // Counters only grow across successive stats events.
  for (std::size_t i = 1; i < stats_events.size(); ++i)
    EXPECT_GE(stats_events[i]->stats.chunks_in,
              stats_events[i - 1]->stats.chunks_in);
}

TEST(EngineObs, FakeClockMakesTheWatchdogDeterministic) {
  // Install the fake clock BEFORE the engine exists so every internal
  // now_ns() — session birth, feed timestamps, deadline checks — reads it.
  obs::FakeClock fake(1'000'000);
  rt::Engine::Config ec;
  ec.num_threads = 1;
  rt::Engine engine(ec);
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  rt::IngestConfig ingest;
  ingest.watchdog.stall_timeout_sec = 3600.0;  // one real hour: never fires
  ingest.watchdog.timeout_is_fatal = true;
  const rt::SessionId id = engine.open_session(spec, ingest);

  // Below the fatal deadline (2x the stall timeout) nothing terminal
  // happens no matter how long we really wait.
  fake.advance_sec(3599.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(engine.stats(id).finished);

  // Two fake hours of silence later the fatal timeout must fire.
  fake.advance_sec(3602.0);
  engine.drain();
  const rt::SessionStats st = engine.stats(id);
  EXPECT_TRUE(st.finished);

  std::vector<rt::Event> events;
  engine.poll(events);
  const bool timed_out = std::any_of(
      events.begin(), events.end(), [](const rt::Event& e) {
        return e.type == rt::Event::Type::kError &&
               e.code == ErrorCode::kTimeout;
      });
  EXPECT_TRUE(timed_out);
}

}  // namespace
}  // namespace wivi
