// Unit tests for wivi::dsp - FFT, windows, FIR, matched filters, peaks,
// statistics.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/dsp/fft.hpp"
#include "src/dsp/fir.hpp"
#include "src/dsp/matched_filter.hpp"
#include "src/dsp/peaks.hpp"
#include "src/dsp/stats.hpp"
#include "src/dsp/window.hpp"

namespace wivi::dsp {
namespace {

// ---------------------------------------------------------------- FFT ---

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  CVec x(8, cdouble{0.0, 0.0});
  x[0] = 1.0;
  fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v - cdouble{1.0, 0.0}), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInTheRightBin) {
  const std::size_t n = 64;
  const int k0 = 5;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phi = kTwoPi * k0 * static_cast<double>(i) / static_cast<double>(n);
    x[i] = {std::cos(phi), std::sin(phi)};
  }
  fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = (k == k0) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(x[k]), expected, 1e-9) << "bin " << k;
  }
}

TEST(Fft, InverseRecoversInput) {
  Rng rng(3);
  CVec x(128);
  for (auto& v : x) v = rng.complex_gaussian();
  const CVec orig = x;
  fft(x);
  ifft(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-10);
}

TEST(Fft, ParsevalHolds) {
  Rng rng(4);
  CVec x(256);
  for (auto& v : x) v = rng.complex_gaussian();
  const double time_energy = mean_power(x) * static_cast<double>(x.size());
  const CVec X = fft_copy(x);
  double freq_energy = 0.0;
  for (const auto& v : X) freq_energy += norm2(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(x.size()), time_energy, 1e-6);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  CVec x(12);
  EXPECT_THROW(fft(x), InvalidArgument);
}

TEST(Fft, FftShiftCentersDc) {
  CVec x = {0, 1, 2, 3, 4, 5, 6, 7};
  const CVec s = fftshift(x);
  EXPECT_DOUBLE_EQ(s[4].real(), 0.0);  // DC moved to the middle
  EXPECT_DOUBLE_EQ(s[0].real(), 4.0);
}

TEST(Fft, FftShiftCentersDcForOddLength) {
  CVec x = {0, 1, 2, 3, 4};
  const CVec s = fftshift(x);
  // DC lands at floor(n/2) = 2: [3, 4, 0, 1, 2] (the MATLAB convention).
  EXPECT_DOUBLE_EQ(s[2].real(), 0.0);
  EXPECT_DOUBLE_EQ(s[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(s[4].real(), 2.0);
}

TEST(Fft, IfftShiftInvertsFftShiftBothParities) {
  Rng rng(21);
  for (const std::size_t n : {1ul, 2ul, 5ul, 8ul, 9ul, 64ul, 101ul}) {
    CVec x(n);
    for (auto& v : x) v = rng.complex_gaussian();
    const CVec round1 = ifftshift(fftshift(x));
    const CVec round2 = fftshift(ifftshift(x));
    ASSERT_EQ(round1.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(round1[i], x[i]) << "n=" << n << " i=" << i;
      EXPECT_EQ(round2[i], x[i]) << "n=" << n << " i=" << i;
    }
    if (n % 2 == 1 && n > 1) {
      // Odd lengths are why ifftshift exists: fftshift is NOT its own
      // inverse there (applying it twice is off by one sample).
      const CVec twice = fftshift(fftshift(x));
      bool identical = true;
      for (std::size_t i = 0; i < n; ++i) identical &= (twice[i] == x[i]);
      EXPECT_FALSE(identical) << "n=" << n;
    }
  }
}

// ------------------------------------------------------------- Window ---

TEST(Window, HannEndsAtZeroAndPeaksAtCenter) {
  const RVec w = make_window(WindowType::kHann, 65);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, RectangularIsAllOnes) {
  for (double v : make_window(WindowType::kRectangular, 17))
    EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, AllTypesAreSymmetric) {
  for (auto type : {WindowType::kHann, WindowType::kHamming,
                    WindowType::kBlackman, WindowType::kTriangular}) {
    const RVec w = make_window(type, 33);
    for (std::size_t i = 0; i < w.size(); ++i)
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
  }
}

TEST(Window, PeriodicEqualsSymmetricOfOneMorePoint) {
  // The defining relation between the two conventions: the periodic
  // n-window is the first n points of the symmetric (n+1)-window.
  for (auto type : {WindowType::kHann, WindowType::kHamming,
                    WindowType::kBlackman, WindowType::kTriangular}) {
    for (const std::size_t n : {16ul, 33ul, 64ul}) {
      const RVec p = make_window(type, n, /*periodic=*/true);
      const RVec s = make_window(type, n + 1);
      for (std::size_t i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(p[i], s[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Window, PeriodicHannIsColaAtStftHops) {
  // The DopplerProcessor STFT contract: periodic-Hann windows overlapped
  // at hop = n/4 (the default 64/16 shape) or n/2 sum to an exactly
  // constant level, so spectrogram energy cannot depend on where a window
  // seam falls. The symmetric form fails this — its endpoint seam
  // double-counts — which is exactly why the STFT must not use it.
  const std::size_t n = 64;
  for (const std::size_t hop : {n / 4, n / 2}) {
    const RVec w = make_window(WindowType::kHann, n, /*periodic=*/true);
    // Sum shifted copies over one hop-period of the steady-state overlap.
    for (std::size_t offset = 0; offset < hop; ++offset) {
      double acc = 0.0;
      for (std::size_t k = 0; k * hop + offset < n; ++k)
        acc += w[k * hop + offset];
      const double expected = 0.5 * static_cast<double>(n) /
                              static_cast<double>(hop);  // mean * n/hop
      EXPECT_NEAR(acc, expected, 1e-12) << "hop=" << hop << " off=" << offset;
    }
  }
  // Symmetric Hann violates COLA at the same hop: the overlap sum is not
  // flat (don't pin the exact dip, just that it moves).
  const RVec sym = make_window(WindowType::kHann, n);
  double first = 0.0;
  double worst_dev = 0.0;
  for (std::size_t offset = 0; offset < n / 4; ++offset) {
    double acc = 0.0;
    for (std::size_t k = 0; k * (n / 4) + offset < n; ++k)
      acc += sym[k * (n / 4) + offset];
    if (offset == 0) first = acc;
    worst_dev = std::max(worst_dev, std::abs(acc - first));
  }
  EXPECT_GT(worst_dev, 1e-3);
}

TEST(Window, GainPinnedForOddLengths) {
  // Closed forms for the coefficient sums (the amplitude-normalisation
  // denominator), pinned especially at odd lengths where the symmetric
  // cosine sum leaves the extra endpoint term:
  //   symmetric Hann(n):    (n-1)/2        periodic Hann(n):    n/2
  //   symmetric Hamming(n): 0.54n - 0.46   periodic Hamming(n): 0.54n
  for (const std::size_t n : {33ul, 65ul, 101ul}) {
    const double nd = static_cast<double>(n);
    EXPECT_NEAR(window_gain(make_window(WindowType::kHann, n)),
                (nd - 1.0) / 2.0, 1e-9) << "n=" << n;
    EXPECT_NEAR(window_gain(make_window(WindowType::kHann, n, true)),
                nd / 2.0, 1e-9) << "n=" << n;
    EXPECT_NEAR(window_gain(make_window(WindowType::kHamming, n)),
                0.54 * nd - 0.46, 1e-9) << "n=" << n;
    EXPECT_NEAR(window_gain(make_window(WindowType::kHamming, n, true)),
                0.54 * nd, 1e-9) << "n=" << n;
  }
}

TEST(Window, ApplyScalesComplexBuffer) {
  CVec x(5, cdouble{2.0, 0.0});
  const RVec w = {0.0, 0.5, 1.0, 0.5, 0.0};
  apply_window(x, w);
  EXPECT_DOUBLE_EQ(x[2].real(), 2.0);
  EXPECT_DOUBLE_EQ(x[0].real(), 0.0);
  EXPECT_DOUBLE_EQ(x[1].real(), 1.0);
}

// ---------------------------------------------------------------- FIR ---

TEST(Fir, LowpassHasUnityDcGain) {
  const RVec taps = design_lowpass(31, 0.2);
  double sum = 0.0;
  for (double t : taps) sum += t;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Fir, LowpassAttenuatesHighFrequency) {
  const RVec taps = design_lowpass(63, 0.1);
  // Probe with a tone well inside the stopband (0.4 of fs).
  const std::size_t n = 512;
  RVec tone(n);
  for (std::size_t i = 0; i < n; ++i)
    tone[i] = std::cos(kTwoPi * 0.4 * static_cast<double>(i));
  const RVec out = convolve(tone, taps, ConvMode::kSame);
  double in_pow = 0.0;
  double out_pow = 0.0;
  for (std::size_t i = 100; i < n - 100; ++i) {  // skip edge transients
    in_pow += tone[i] * tone[i];
    out_pow += out[i] * out[i];
  }
  EXPECT_LT(out_pow / in_pow, 1e-4);  // > 40 dB stopband rejection
}

TEST(Fir, ConvolveFullLength) {
  const RVec x = {1.0, 2.0, 3.0};
  const RVec h = {1.0, 1.0};
  const RVec y = convolve(x, h, ConvMode::kFull);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
  EXPECT_DOUBLE_EQ(y[3], 3.0);
}

TEST(Fir, ConvolveSamePreservesLength) {
  const RVec x(37, 1.0);
  const RVec h = {0.25, 0.5, 0.25};
  EXPECT_EQ(convolve(x, h, ConvMode::kSame).size(), x.size());
}

TEST(Fir, BlockAverageReducesNoiseVariance) {
  Rng rng(5);
  CVec x;
  rng.fill_awgn(x, 10000, 1.0);
  const CVec avg = block_average(x, 100);
  ASSERT_EQ(avg.size(), 100u);
  EXPECT_NEAR(mean_power(avg), 0.01, 0.006);  // variance drops by the factor
}

TEST(Fir, BlockAverageOfConstantIsConstant) {
  const CVec x(64, cdouble{2.0, -1.0});
  for (const auto& v : block_average(x, 8)) {
    EXPECT_NEAR(std::abs(v - cdouble{2.0, -1.0}), 0.0, 1e-12);
  }
}

TEST(Fir, MovingAverageSmoothsStep) {
  RVec x(21, 0.0);
  for (std::size_t i = 10; i < x.size(); ++i) x[i] = 1.0;
  const RVec y = moving_average(x, 5);
  EXPECT_LT(y[9], 1.0);
  EXPECT_GT(y[9], 0.0);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[20], 1.0);
}

// ----------------------------------------------------- Matched filter ---

TEST(MatchedFilter, PeaksAtTemplateLocation) {
  RVec x(101, 0.0);
  const RVec tri = triangle_template(11, 1.0);
  for (std::size_t i = 0; i < tri.size(); ++i) x[40 + i] = tri[i];
  const RVec out = matched_filter(x, tri);
  EXPECT_EQ(argmax(out), 45u);  // centre of the embedded template
}

TEST(MatchedFilter, SelfCorrelationEqualsTemplateEnergy) {
  const RVec tri = triangle_template(15, 2.0);
  const RVec out = matched_filter(tri, tri);
  EXPECT_NEAR(out[7], template_energy(tri), 1e-9);
}

TEST(MatchedFilter, TriangleTemplateShape) {
  const RVec t = triangle_template(5, 3.0);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  EXPECT_DOUBLE_EQ(t[2], 3.0);
  EXPECT_DOUBLE_EQ(t[4], 0.0);
  EXPECT_DOUBLE_EQ(t[1], 1.5);
}

TEST(MatchedFilter, InvertedTemplateGivesNegativePeak) {
  RVec x(61, 0.0);
  const RVec tri = triangle_template(9, 1.0);
  for (std::size_t i = 0; i < tri.size(); ++i) x[20 + i] = -tri[i];
  const RVec out = matched_filter(x, tri);
  const auto troughs = find_peaks(out, {.min_height = 0.5, .negative = true});
  ASSERT_FALSE(troughs.empty());
  EXPECT_LT(troughs.front().value, 0.0);
}

// -------------------------------------------------------------- Peaks ---

TEST(Peaks, FindsIsolatedMaxima) {
  const RVec x = {0, 1, 0, 0, 3, 0, 0, 2, 0};
  const auto peaks = find_peaks(x, {.min_height = 0.5, .min_distance = 1});
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].index, 1u);
  EXPECT_EQ(peaks[1].index, 4u);
  EXPECT_EQ(peaks[2].index, 7u);
}

TEST(Peaks, MinDistanceSuppressesLesserNeighbours) {
  const RVec x = {0, 5, 0, 4, 0, 0, 0, 0, 3, 0};
  const auto peaks = find_peaks(x, {.min_height = 0.5, .min_distance = 4});
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].index, 1u);  // 5 kept, 4 suppressed (distance 2)
  EXPECT_EQ(peaks[1].index, 8u);
}

TEST(Peaks, MinHeightFilters) {
  const RVec x = {0, 1, 0, 0, 3, 0};
  const auto peaks = find_peaks(x, {.min_height = 2.0});
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 4u);
}

TEST(Peaks, SignedPeaksInterleave) {
  const RVec x = {0, 2, 0, -3, 0, 1.5, 0, -1.0, 0};
  const auto peaks = find_signed_peaks(x, 0.5, 1);
  ASSERT_EQ(peaks.size(), 4u);
  EXPECT_GT(peaks[0].value, 0.0);
  EXPECT_LT(peaks[1].value, 0.0);
  EXPECT_GT(peaks[2].value, 0.0);
  EXPECT_LT(peaks[3].value, 0.0);
}

TEST(Peaks, ArgmaxThrowsOnEmpty) {
  EXPECT_THROW((void)argmax(RVec{}), InvalidArgument);
}

// -------------------------------------------------------------- Stats ---

TEST(Stats, MeanVarianceStddev) {
  const RVec x = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_DOUBLE_EQ(variance(x), 4.0);
  EXPECT_DOUBLE_EQ(stddev(x), 2.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(RVec{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(RVec{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const RVec x = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(x, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(x, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(x, 100.0), 10.0);
}

TEST(Stats, EcdfMonotoneAndBounded) {
  Rng rng(8);
  RVec x(500);
  for (auto& v : x) v = rng.gaussian();
  const Ecdf cdf(x);
  double prev = 0.0;
  for (double v = -4.0; v <= 4.0; v += 0.25) {
    const double f = cdf(v);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(cdf(cdf.max()), 1.0);
}

TEST(Stats, EcdfQuantileInvertsCdf) {
  RVec x;
  for (int i = 1; i <= 100; ++i) x.push_back(static_cast<double>(i));
  const Ecdf cdf(x);
  EXPECT_NEAR(cdf.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(cdf.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(cdf.quantile(1.0), 100.0, 1e-9);
}

TEST(Stats, EcdfTabulateSpansRange) {
  const RVec x = {1.0, 2.0, 3.0};
  const auto rows = Ecdf(x).tabulate(5);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(rows.front().value, 1.0);
  EXPECT_DOUBLE_EQ(rows.back().value, 3.0);
  EXPECT_DOUBLE_EQ(rows.back().fraction, 1.0);
}

TEST(Stats, HistogramCountsFallInBins) {
  const RVec x = {0.1, 0.2, 0.6, 0.7, 0.8, 1.5};
  const auto h = Histogram::build(x, 0.0, 1.0, 2);
  ASSERT_EQ(h.counts.size(), 2u);
  EXPECT_EQ(h.counts[0], 2u);  // 0.1, 0.2
  EXPECT_EQ(h.counts[1], 3u);  // 0.6, 0.7, 0.8 ; 1.5 out of range
}

// Parameterized property sweep: FFT round trip at many sizes.
class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, IfftOfFftIsIdentity) {
  Rng rng(GetParam());
  CVec x(GetParam());
  for (auto& v : x) v = rng.complex_gaussian();
  const CVec orig = x;
  fft(x);
  ifft(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_NEAR(std::abs(x[i] - orig[i]), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

}  // namespace
}  // namespace wivi::dsp
