// Counting-allocator proof that the hot STFT/MUSIC loops are
// allocation-free once their workspaces are warm (ISSUE 1 acceptance).
//
// The global operator new/delete are replaced with counting versions for
// this binary only; each test warms the path under test once (first calls
// may size workspaces), then asserts the steady-state call performs zero
// heap allocations.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "src/common/random.hpp"
#include "src/core/doppler.hpp"
#include "src/core/isar.hpp"
#include "src/core/music.hpp"
#include "src/dsp/fft.hpp"
#include "src/linalg/eig.hpp"

namespace {

// Not atomic: these tests are single-threaded, and the counter is only
// read between sequenced statements.
long g_alloc_count = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size))
    return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size))
    return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace wivi {
namespace {

CVec make_trace(std::size_t n) {
  Rng rng(7);
  CVec h(n);
  const core::IsarConfig isar;
  const double step =
      kTwoPi * 2.0 * 0.6 * isar.sample_period_sec / isar.wavelength_m;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = step * static_cast<double>(i);
    h[i] = cdouble{std::cos(p), std::sin(p)} + cdouble{0.4, 0.1} +
           rng.complex_gaussian(1e-4);
  }
  return h;
}

TEST(ZeroAlloc, FftPlanExecutionNeverAllocates) {
  const dsp::FftPlan plan(64);
  Rng rng(1);
  CVec x(64);
  for (auto& v : x) v = rng.complex_gaussian();

  const long before = g_alloc_count;
  plan.forward(x);
  plan.inverse(x);
  EXPECT_EQ(g_alloc_count - before, 0);
}

TEST(ZeroAlloc, StftProcessIntoIsAllocationFreeWhenWarm) {
  const CVec h = make_trace(2000);
  const core::DopplerProcessor proc;
  core::DopplerSpectrogram spec;
  proc.process_into(h, spec);  // warm the output buffers

  const long before = g_alloc_count;
  proc.process_into(h, spec);
  EXPECT_EQ(g_alloc_count - before, 0);
}

TEST(ZeroAlloc, MusicPseudospectrumIntoIsAllocationFreeWhenWarm) {
  const CVec h = make_trace(100);
  const core::SmoothedMusic music;
  const RVec angles = core::angle_grid_deg(1.0);
  RVec spectrum;
  int order = 0;
  music.pseudospectrum_into(h, angles, spectrum, &order);  // warm

  const long before = g_alloc_count;
  music.pseudospectrum_into(h, angles, spectrum, &order);
  EXPECT_EQ(g_alloc_count - before, 0);
}

TEST(ZeroAlloc, PlanRegistryHitAcquisitionIsAllocationFree) {
  // Warm: make both artifacts resident in the shared registry.
  const auto warm_plan = dsp::acquire_fft_plan(64);
  const core::IsarConfig isar;
  const RVec angles = core::angle_grid_deg(1.0);
  const auto warm_steering = core::acquire_steering(isar, angles, 32, true);

  // A cache hit is a hash + probe + list splice + handle copy — no heap.
  const long before = g_alloc_count;
  const auto plan = dsp::acquire_fft_plan(64);
  const auto steering = core::acquire_steering(isar, angles, 32, true);
  EXPECT_EQ(g_alloc_count - before, 0);
  EXPECT_EQ(plan.get(), warm_plan.get());
  EXPECT_EQ(steering.get(), warm_steering.get());
}

TEST(ZeroAlloc, SteeringEnsureIsAllocationFreeOnceResident) {
  const core::IsarConfig isar;
  const RVec angles = core::angle_grid_deg(1.0);
  core::SteeringMatrix warm;
  warm.ensure(isar, angles, 32, true);  // table resident, handle held

  core::SteeringMatrix fresh;
  const long before = g_alloc_count;
  warm.ensure(isar, angles, 32, true);   // held-handle field compare
  fresh.ensure(isar, angles, 32, true);  // registry-hit handle copy
  EXPECT_EQ(g_alloc_count - before, 0);
  EXPECT_EQ(fresh.table().get(), warm.table().get());
}

TEST(ZeroAlloc, SlidingCorrelationStreamingLoopIsAllocationFree) {
  const CVec h = make_trace(2000);
  const core::SmoothedMusic music;
  const int w = music.config().isar.window;
  const RVec angles = core::angle_grid_deg(1.0);

  core::SlidingCorrelation sliding(music.config().subarray, w);
  linalg::CMatrix r;
  RVec spectrum;
  int order = 0;
  // Warm: first column sizes every workspace.
  sliding.advance_to(h, 0);
  sliding.correlation_into(r);
  music.pseudospectrum_from_correlation_into(r, angles, spectrum, &order);

  // Steady state: the whole per-column chain — slide, normalise,
  // eigendecompose, project — must not touch the heap.
  const long before = g_alloc_count;
  for (std::size_t pos = 25; pos + static_cast<std::size_t>(w) <= h.size();
       pos += 25) {
    sliding.advance_to(h, pos);
    sliding.correlation_into(r);
    music.pseudospectrum_from_correlation_into(r, angles, spectrum, &order);
  }
  EXPECT_EQ(g_alloc_count - before, 0);
}

}  // namespace
}  // namespace wivi
