// Unit tests for wivi::linalg - complex matrices and the Hermitian Jacobi
// eigensolver that powers smoothed MUSIC.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/linalg/cmatrix.hpp"
#include "src/linalg/eig.hpp"

namespace wivi::linalg {
namespace {

CMatrix random_hermitian(std::size_t n, Rng& rng) {
  CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = rng.gaussian();
    for (std::size_t j = i + 1; j < n; ++j) {
      const cdouble v = rng.complex_gaussian();
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  return a;
}

// ------------------------------------------------------------- CMatrix ---

TEST(CMatrix, IdentityTimesVectorIsVector) {
  const CMatrix id = CMatrix::identity(4);
  const CVec x = {{1, 2}, {3, -1}, {0, 0}, {-2, 5}};
  const CVec y = id * CSpan(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-15);
}

TEST(CMatrix, OuterProductIsRankOneHermitian) {
  const CVec x = {{1, 1}, {2, -1}, {0, 3}};
  const CMatrix m = CMatrix::outer(x);
  EXPECT_NEAR(m.hermitian_defect(), 0.0, 1e-15);
  // Diagonal = |x_i|^2.
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(m(i, i).real(), norm2(x[i]), 1e-15);
  // m * x == ||x||^2 x (x is the only eigenvector with nonzero eigenvalue).
  double e = 0.0;
  for (const auto& v : x) e += norm2(v);
  const CVec mx = m * CSpan(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(mx[i] - e * x[i]), 0.0, 1e-12);
}

TEST(CMatrix, ProductMatchesHandComputation) {
  CMatrix a(2, 2);
  a(0, 0) = {1, 0};
  a(0, 1) = {0, 1};
  a(1, 0) = {2, 0};
  a(1, 1) = {0, 0};
  CMatrix b(2, 2);
  b(0, 0) = {0, 1};
  b(0, 1) = {1, 0};
  b(1, 0) = {1, 0};
  b(1, 1) = {0, -1};
  const CMatrix c = a * b;
  EXPECT_NEAR(std::abs(c(0, 0) - cdouble{0, 2}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(c(0, 1) - cdouble{2, 0}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(c(1, 0) - cdouble{0, 2}), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(c(1, 1) - cdouble{2, 0}), 0.0, 1e-15);
}

TEST(CMatrix, HermitianTransposeConjugates) {
  CMatrix a(2, 3);
  a(0, 2) = {1, 2};
  const CMatrix h = a.hermitian();
  EXPECT_EQ(h.rows(), 3u);
  EXPECT_EQ(h.cols(), 2u);
  EXPECT_NEAR(std::abs(h(2, 0) - cdouble{1, -2}), 0.0, 1e-15);
}

TEST(CMatrix, SizeMismatchThrows) {
  CMatrix a(2, 3);
  CMatrix b(2, 3);
  EXPECT_THROW((void)(a * b), InvalidArgument);
  CMatrix c(2, 2);
  EXPECT_THROW(c += a, InvalidArgument);
}

TEST(CMatrix, AtChecksBounds) {
  CMatrix a(2, 2);
  EXPECT_THROW((void)a.at(2, 0), InvalidArgument);
  EXPECT_NO_THROW((void)a.at(1, 1));
}

// ----------------------------------------------------------------- Eig ---

TEST(Eig, DiagonalMatrixReturnsSortedDiagonal) {
  CMatrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  const EigResult r = hermitian_eig(a);
  EXPECT_DOUBLE_EQ(r.values[0], 5.0);
  EXPECT_DOUBLE_EQ(r.values[1], 3.0);
  EXPECT_DOUBLE_EQ(r.values[2], 1.0);
}

TEST(Eig, TwoByTwoKnownEigenvalues) {
  // [[2, i], [-i, 2]] has eigenvalues 3 and 1.
  CMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = {0.0, 1.0};
  a(1, 0) = {0.0, -1.0};
  a(1, 1) = 2.0;
  const EigResult r = hermitian_eig(a);
  EXPECT_NEAR(r.values[0], 3.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
}

TEST(Eig, RejectsNonHermitian) {
  CMatrix a(2, 2);
  a(0, 1) = {1.0, 0.0};
  a(1, 0) = {5.0, 0.0};  // != conj(a(0,1))
  EXPECT_THROW((void)hermitian_eig(a), InvalidArgument);
}

TEST(Eig, RejectsNonSquare) {
  EXPECT_THROW((void)hermitian_eig(CMatrix(2, 3)), InvalidArgument);
}

// Property sweep over sizes: reconstruction, orthonormality, trace.
class EigProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigProperty, ReconstructsAndIsUnitary) {
  Rng rng(GetParam() * 7919 + 1);
  const std::size_t n = GetParam();
  const CMatrix a = random_hermitian(n, rng);
  const EigResult r = hermitian_eig(a);

  // Eigenvalues are sorted descending.
  for (std::size_t i = 0; i + 1 < n; ++i) EXPECT_GE(r.values[i], r.values[i + 1]);

  // Trace is preserved.
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i).real();
  double eig_sum = 0.0;
  for (double v : r.values) eig_sum += v;
  EXPECT_NEAR(trace, eig_sum, 1e-9 * std::max(1.0, std::abs(trace)));

  // Columns are orthonormal: V^H V = I.
  const CMatrix vhv = r.vectors.hermitian() * r.vectors;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double expected = i == j ? 1.0 : 0.0;
      ASSERT_NEAR(std::abs(vhv(i, j)), expected, 1e-9);
    }
  }

  // A v_j = lambda_j v_j.
  for (std::size_t j = 0; j < n; ++j) {
    const CVec v = r.vectors.column(j);
    const CVec av = a * CSpan(v);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(std::abs(av[i] - r.values[j] * v[i]), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 32, 50));

TEST(Eig, RankOnePlusNoiseSeparatesSubspaces) {
  // The MUSIC use case in miniature: R = s s^H + sigma^2 I must yield one
  // dominant eigenvalue ~ ||s||^2 + sigma^2 and a flat noise floor.
  Rng rng(42);
  const std::size_t n = 16;
  CVec s(n);
  for (auto& v : s) v = rng.complex_gaussian();
  CMatrix r = CMatrix::outer(s);
  const double sigma2 = 0.01;
  for (std::size_t i = 0; i < n; ++i) r(i, i) += sigma2;

  const EigResult e = hermitian_eig(r);
  double s_energy = 0.0;
  for (const auto& v : s) s_energy += norm2(v);
  EXPECT_NEAR(e.values[0], s_energy + sigma2, 1e-9);
  for (std::size_t i = 1; i < n; ++i) EXPECT_NEAR(e.values[i], sigma2, 1e-9);
}

}  // namespace
}  // namespace wivi::linalg
