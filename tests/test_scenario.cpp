// Unit tests for the scenario factory (src/sim/scenario.hpp): pure seeded
// generation, the validate() rejection matrix, truth consistency with the
// compiled physics, and streaming==batch parity on generated traces.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "src/api/session.hpp"
#include "src/common/error.hpp"
#include "src/sim/scenario.hpp"

namespace wivi::sim {
namespace {

ScenarioSpec walker_spec() {
  ScenarioSpec spec;
  spec.name = "walker";
  spec.duration_sec = 4.0;
  ScenarioMover m;
  m.mobility = MobilityModel::kRandomWalk;
  m.walk_speed_mps = 0.9;
  spec.movers.push_back(m);
  return spec;
}

ScenarioSpec ramp_spec(double start, double end) {
  ScenarioSpec spec;
  spec.name = "ramp";
  spec.duration_sec = 4.0;
  ScenarioMover m;
  m.mobility = MobilityModel::kSpeedRamp;
  m.start_speed_mps = start;
  m.end_speed_mps = end;
  spec.movers.push_back(m);
  return spec;
}

// ---------------------------------------------------------- Determinism ---

TEST(ScenarioGenerator, SameSpecAndSeedIsBitIdentical) {
  const ScenarioSpec spec = walker_spec();
  const GeneratedScenario a = generate_scenario(spec, 42);
  const GeneratedScenario b = generate_scenario(spec, 42);

  ASSERT_EQ(a.h.size(), b.h.size());
  ASSERT_FALSE(a.h.empty());
  for (std::size_t i = 0; i < a.h.size(); ++i) {
    ASSERT_EQ(a.h[i].real(), b.h[i].real()) << "sample " << i;
    ASSERT_EQ(a.h[i].imag(), b.h[i].imag()) << "sample " << i;
  }
  ASSERT_EQ(a.truth.movers.size(), b.truth.movers.size());
  for (std::size_t k = 0; k < a.truth.movers.size(); ++k) {
    const MoverTruth& ta = a.truth.movers[k];
    const MoverTruth& tb = b.truth.movers[k];
    EXPECT_EQ(ta.enter_sample, tb.enter_sample);
    EXPECT_EQ(ta.exit_sample, tb.exit_sample);
    ASSERT_EQ(ta.radial_speed_mps.size(), tb.radial_speed_mps.size());
    for (std::size_t i = 0; i < ta.radial_speed_mps.size(); ++i)
      ASSERT_EQ(ta.radial_speed_mps[i], tb.radial_speed_mps[i]);
  }
}

TEST(ScenarioGenerator, DifferentSeedsDiffer) {
  const ScenarioSpec spec = walker_spec();
  const GeneratedScenario a = generate_scenario(spec, 1);
  const GeneratedScenario b = generate_scenario(spec, 2);
  ASSERT_EQ(a.h.size(), b.h.size());
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.h.size(); ++i) differing += a.h[i] != b.h[i];
  EXPECT_GT(differing, a.h.size() / 2);  // a reseeded walk diverges at once
}

TEST(ScenarioGenerator, SubStreamsAreSeedIsolated) {
  // Adding a clutter source must not reshuffle the walker's random-walk
  // draws: sub-streams are salted SplitMix64 derivations, not shared
  // generator state.
  const ScenarioSpec bare = walker_spec();
  ScenarioSpec cluttered = bare;
  ClutterSpec fan;
  fan.kind = ClutterKind::kFan;
  fan.pos = {1.5, 2.5};
  cluttered.clutter.push_back(fan);

  const GeneratedScenario a = generate_scenario(bare, 7);
  const GeneratedScenario b = generate_scenario(cluttered, 7);
  ASSERT_EQ(a.truth.movers.size(), b.truth.movers.size());
  const RVec& va = a.truth.movers[0].radial_speed_mps;
  const RVec& vb = b.truth.movers[0].radial_speed_mps;
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) ASSERT_EQ(va[i], vb[i]);
}

TEST(ScenarioGenerator, TraceCoversDuration) {
  const GeneratedScenario sc = generate_scenario(walker_spec(), 3);
  EXPECT_GT(sc.sample_rate_hz, 0.0);
  EXPECT_EQ(sc.h.size(),
            static_cast<std::size_t>(
                std::llround(4.0 * sc.sample_rate_hz)));
  EXPECT_EQ(sc.truth.sample_rate_hz, sc.sample_rate_hz);
  EXPECT_EQ(sc.seed, 3u);
}

// ----------------------------------------------------- Rejection matrix ---

TEST(ScenarioValidate, AcceptsTheDefaultWalker) {
  EXPECT_NO_THROW(walker_spec().validate());
}

TEST(ScenarioValidate, RejectsBadRooms) {
  ScenarioSpec spec = walker_spec();
  spec.room.width_m = 0.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec.room.width_m = -3.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec.room.width_m = 0.5;  // positive, but no walkable interior remains
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(ScenarioValidate, RejectsBadDurations) {
  ScenarioSpec spec = walker_spec();
  spec.duration_sec = 0.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec.duration_sec = -1.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec.duration_sec = 0.2;  // shorter than one ISAR window (100 samples)
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(ScenarioValidate, RejectsZeroSignalSources) {
  ScenarioSpec spec;
  spec.duration_sec = 4.0;  // no movers, no clutter
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec.interferer = InterfererSpec{};  // an interferer is not a source
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(ScenarioValidate, RejectsBadPresenceWindows) {
  ScenarioSpec spec = walker_spec();
  spec.movers[0].amplitude = 0.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = walker_spec();
  spec.movers[0].enter_sec = -0.5;
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = walker_spec();
  spec.movers[0].enter_sec = 2.0;
  spec.movers[0].exit_sec = 2.0;  // exit must come after enter
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = walker_spec();
  spec.movers[0].enter_sec = 5.0;  // enters after the 4 s trace ends
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = walker_spec();
  spec.movers[0].enter_sec = 1.0;
  spec.movers[0].exit_sec = 1.05;  // present for less than 0.1 s
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(ScenarioValidate, RejectsBadWaypointPaths) {
  ScenarioSpec spec = walker_spec();
  spec.movers[0].mobility = MobilityModel::kWaypoint;
  EXPECT_THROW(spec.validate(), InvalidArgument);  // no waypoints

  spec.movers[0].waypoints.push_back({{1.0, 3.0}, 1.0, 0.0});
  EXPECT_NO_THROW(spec.validate());

  ScenarioSpec bad = spec;
  bad.movers[0].waypoints[0].pos = {100.0, 3.0};  // outside the interior
  EXPECT_THROW(bad.validate(), InvalidArgument);

  bad = spec;
  bad.movers[0].start = {0.0, 0.0};  // in front of the wall
  EXPECT_THROW(bad.validate(), InvalidArgument);

  bad = spec;
  bad.movers[0].waypoints[0].speed_mps = 0.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);

  bad = spec;
  bad.movers[0].waypoints[0].pause_sec = -1.0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(ScenarioValidate, RejectsBadSpeeds) {
  ScenarioSpec spec = walker_spec();
  spec.movers[0].walk_speed_mps = 0.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);

  // Ramp speeds beyond the assumed ISAR speed would alias past +-90 deg.
  EXPECT_THROW(ramp_spec(1.2, 0.5).validate(), InvalidArgument);
  EXPECT_THROW(ramp_spec(0.5, -1.2).validate(), InvalidArgument);
  EXPECT_NO_THROW(ramp_spec(-1.0, 1.0).validate());
}

TEST(ScenarioValidate, RejectsBadClutter) {
  ScenarioSpec spec = walker_spec();
  ClutterSpec c;
  c.pos = {1.5, 2.5};

  c.amplitude = 0.0;
  spec.clutter.assign(1, c);
  EXPECT_THROW(spec.validate(), InvalidArgument);

  c.amplitude = 0.15;
  c.extent_m = 0.0;
  spec.clutter.assign(1, c);
  EXPECT_THROW(spec.validate(), InvalidArgument);

  c.extent_m = 0.05;
  c.rate_hz = 0.0;  // a fan must oscillate
  spec.clutter.assign(1, c);
  EXPECT_THROW(spec.validate(), InvalidArgument);

  c.rate_hz = 3.0;
  c.pos = {0.0, -5.0};  // outside the interior
  spec.clutter.assign(1, c);
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(ScenarioValidate, RejectsBadInterfererAndProtocol) {
  ScenarioSpec spec = walker_spec();
  spec.interferer = InterfererSpec{};
  spec.interferer->burst_prob = 1.5;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec.interferer->burst_prob = 0.3;
  spec.interferer->burst_sec = 0.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec.interferer->burst_sec = 0.5;
  spec.interferer->power = 0.0;
  EXPECT_THROW(spec.validate(), InvalidArgument);

  spec = walker_spec();
  spec.protocol.num_pilot_bins = 0;
  EXPECT_THROW(spec.validate(), InvalidArgument);
  spec.protocol.num_pilot_bins = 1 << 20;  // more than used subcarriers
  EXPECT_THROW(spec.validate(), InvalidArgument);
}

TEST(ScenarioValidate, GenerateValidatesFirst) {
  ScenarioSpec spec;  // no signal sources
  spec.duration_sec = 4.0;
  EXPECT_THROW((void)generate_scenario(spec, 1), InvalidArgument);
}

// ----------------------------------------------------- Truth consistency ---

TEST(ScenarioTruth, AngleConventionMatchesIsar) {
  EXPECT_DOUBLE_EQ(truth_angle_deg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(truth_angle_deg(1.0), 90.0);
  EXPECT_DOUBLE_EQ(truth_angle_deg(-1.0), -90.0);
  EXPECT_DOUBLE_EQ(truth_angle_deg(2.0), 90.0);  // clamped, not NaN
  EXPECT_NEAR(truth_angle_deg(0.5), 30.0, 1e-12);
}

TEST(ScenarioTruth, SpeedRampTruthTracksTheRamp) {
  const GeneratedScenario sc = generate_scenario(ramp_spec(0.2, 0.8), 11);
  ASSERT_EQ(sc.truth.movers.size(), 1u);
  const RVec& v = sc.truth.movers[0].radial_speed_mps;
  ASSERT_GT(v.size(), 100u);
  EXPECT_NEAR(v.front(), 0.2, 0.01);
  EXPECT_NEAR(v.back(), 0.8, 0.01);
  // Monotone non-decreasing ramp (up to one-sample discretisation).
  for (std::size_t i = 2; i < v.size(); ++i) EXPECT_GE(v[i] + 1e-9, v[i - 1]);
}

TEST(ScenarioTruth, PresenceWindowsDriveCounts) {
  ScenarioSpec spec = ramp_spec(0.6, 0.6);
  ScenarioMover late;
  late.mobility = MobilityModel::kSpeedRamp;
  late.start_speed_mps = -0.5;
  late.end_speed_mps = -0.5;
  late.enter_sec = 1.5;
  late.exit_sec = 3.0;
  spec.movers.push_back(late);

  const GeneratedScenario sc = generate_scenario(spec, 5);
  EXPECT_TRUE(sc.truth.present(0, 0.5));
  EXPECT_FALSE(sc.truth.present(1, 0.5));
  EXPECT_TRUE(sc.truth.present(1, 2.0));
  EXPECT_FALSE(sc.truth.present(1, 3.5));
  EXPECT_EQ(sc.truth.count_at(0.5), 1);
  EXPECT_EQ(sc.truth.count_at(2.0), 2);
  EXPECT_EQ(sc.truth.count_at(3.5), 1);
  EXPECT_EQ(sc.truth.max_concurrent(), 2);
  EXPECT_DOUBLE_EQ(sc.truth.radial_speed_mps_at(1, 3.5), 0.0);  // absent
  EXPECT_DOUBLE_EQ(sc.truth.angle_deg_at(1, 3.5), 0.0);
  EXPECT_NEAR(sc.truth.angle_deg_at(0, 0.5), truth_angle_deg(0.6), 0.5);
}

TEST(ScenarioTruth, WaypointPauseFadesIntoDC) {
  // A mover that walks, dwells, and walks again: its truth radial speed
  // must be ~0 during the dwell (the count-hysteresis stress physics).
  ScenarioSpec spec;
  spec.duration_sec = 6.0;
  ScenarioMover m;
  m.mobility = MobilityModel::kWaypoint;
  m.start = {-1.5, 2.0};
  m.waypoints.push_back({{1.0, 3.0}, 1.0, 2.0});
  m.waypoints.push_back({{-1.0, 4.0}, 1.0, 0.0});
  spec.movers.push_back(m);

  const GeneratedScenario sc = generate_scenario(spec, 9);
  const RVec& v = sc.truth.movers[0].radial_speed_mps;
  // Leg 1 is ~2.7 m at 1 m/s; the dwell covers roughly t in [3.0, 4.7].
  const auto at = [&](double t) {
    return v[static_cast<std::size_t>(t * sc.sample_rate_hz)];
  };
  EXPECT_GT(std::abs(at(1.0)), 0.05);   // walking
  EXPECT_NEAR(at(3.8), 0.0, 1e-9);      // parked mid-dwell
  EXPECT_GT(std::abs(at(5.5)), 0.05);   // walking again
}

// --------------------------------------------- Streaming==batch parity ---

TEST(ScenarioPipeline, StreamingEqualsBatchOnGeneratedTrace) {
  ScenarioSpec spec = ramp_spec(0.25, 0.85);
  ScenarioMover second;
  second.mobility = MobilityModel::kSpeedRamp;
  second.start_speed_mps = -0.8;
  second.end_speed_mps = -0.4;
  second.phase_rad = 2.1;
  spec.movers.push_back(second);
  const GeneratedScenario sc = generate_scenario(spec, 21);

  api::PipelineSpec ps;
  ps.image.emit_columns = false;
  ps.count = api::CountStage{};

  api::Session batch{ps};
  batch.run(sc.h);

  api::Session streamed{ps};
  const CSpan h(sc.h);
  const std::size_t chunk = 171;  // deliberately hop-misaligned
  for (std::size_t i = 0; i < h.size(); i += chunk)
    streamed.push(h.subspan(i, std::min(chunk, h.size() - i)));
  streamed.finish();

  const core::AngleTimeImage& a = batch.image();
  const core::AngleTimeImage& b = streamed.image();
  ASSERT_EQ(a.num_times(), b.num_times());
  ASSERT_EQ(a.num_angles(), b.num_angles());
  ASSERT_GT(a.num_times(), 10u);
  for (std::size_t t = 0; t < a.num_times(); ++t) {
    ASSERT_EQ(a.times_sec[t], b.times_sec[t]);
    for (std::size_t r = 0; r < a.num_angles(); ++r)
      ASSERT_EQ(a.columns[t][r], b.columns[t][r])
          << "column " << t << " row " << r;
  }
  EXPECT_EQ(batch.spatial_variance(), streamed.spatial_variance());
}

// ----------------------------------------------------------------- Misc ---

TEST(ScenarioNames, ToStringCoversEveryEnumerator) {
  EXPECT_STREQ(to_string(MobilityModel::kWaypoint), "waypoint");
  EXPECT_STREQ(to_string(MobilityModel::kRandomWalk), "random-walk");
  EXPECT_STREQ(to_string(MobilityModel::kSpeedRamp), "speed-ramp");
  EXPECT_STREQ(to_string(ClutterKind::kFan), "fan");
  EXPECT_STREQ(to_string(ClutterKind::kPet), "pet");
}

}  // namespace
}  // namespace wivi::sim
