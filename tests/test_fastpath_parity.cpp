// Numeric parity between the pre-plan ("legacy") signal-chain
// implementations and the planned/workspace-reusing fast paths.
//
// The legacy STFT and MUSIC algorithms are reproduced here verbatim (as
// they stood before the fast-path refactor) and compared against the
// production implementations. MUSIC comparisons are made on the noise
// projection proj(theta) = 1 / A'[theta]: proj is bounded by ||a||^2 = 1
// (unit-norm steering against orthonormal eigenvectors), so an absolute
// 1e-9 bound on it is meaningful everywhere, whereas the pseudospectrum
// itself amplifies rounding by 1/proj^2 exactly at its (sharp) peaks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/db.hpp"
#include "src/common/random.hpp"
#include "src/core/doppler.hpp"
#include "src/core/isar.hpp"
#include "src/core/music.hpp"
#include "src/core/tracker.hpp"
#include "src/dsp/fft.hpp"
#include "src/dsp/stats.hpp"
#include "src/dsp/window.hpp"
#include "src/linalg/eig.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi {
namespace {

constexpr double kParityTol = 1e-9;

/// A trace with a slow mover, a static residual, and noise — the same
/// construction bench_perf uses for the §7.1 full-trace benchmark.
CVec make_trace(std::size_t n, double speed_mps = 0.6) {
  return sim::synthetic_mover_trace(n, 404, speed_mps);
}

// ------------------------------------------------- legacy STFT (pre-PR) ---

core::DopplerSpectrogram legacy_stft(CSpan h,
                                     const core::DopplerProcessor::Config& cfg,
                                     double t0 = 0.0) {
  const auto nfft = static_cast<std::size_t>(cfg.fft_size);
  // Periodic to match the production STFT's COLA-correct window choice;
  // this parity suite pins the buffer-reuse refactor, not the window
  // convention (which test_dsp pins separately).
  const RVec window =
      dsp::make_window(dsp::WindowType::kHann, nfft, /*periodic=*/true);
  core::DopplerSpectrogram out;
  out.freqs_hz.resize(nfft);
  for (std::size_t f = 0; f < nfft; ++f) {
    const auto signed_bin =
        static_cast<double>(f) - static_cast<double>(nfft) / 2.0;
    out.freqs_hz[f] = signed_bin * cfg.sample_rate_hz / static_cast<double>(nfft);
  }
  for (std::size_t n = 0; n + nfft <= h.size();
       n += static_cast<std::size_t>(cfg.hop)) {
    CVec win(h.begin() + static_cast<std::ptrdiff_t>(n),
             h.begin() + static_cast<std::ptrdiff_t>(n + nfft));
    if (cfg.remove_dc) {
      cdouble mean{0.0, 0.0};
      for (const cdouble& v : win) mean += v;
      mean /= static_cast<double>(nfft);
      for (cdouble& v : win) v -= mean;
    }
    dsp::apply_window(win, window);
    dsp::fft(win);
    const CVec shifted = dsp::fftshift(win);
    RVec power(nfft);
    for (std::size_t f = 0; f < nfft; ++f) power[f] = norm2(shifted[f]);
    out.columns.push_back(std::move(power));
    out.times_sec.push_back(
        t0 + (static_cast<double>(n) + static_cast<double>(nfft) / 2.0) /
                 cfg.sample_rate_hz);
  }
  return out;
}

// ------------------------------------------ legacy smoothed MUSIC (pre-PR) ---

linalg::CMatrix legacy_smoothed_correlation(CSpan window, int subarray) {
  const auto wp = static_cast<std::size_t>(subarray);
  const std::size_t num_subarrays = window.size() - wp + 1;
  linalg::CMatrix r(wp, wp);
  for (std::size_t s = 0; s < num_subarrays; ++s) {
    const CSpan sub = window.subspan(s, wp);
    for (std::size_t i = 0; i < wp; ++i)
      for (std::size_t j = 0; j < wp; ++j)
        r(i, j) += sub[i] * std::conj(sub[j]);
  }
  r *= cdouble{1.0 / static_cast<double>(num_subarrays), 0.0};
  return r;
}

int legacy_model_order(const core::MusicConfig& cfg, RSpan eigenvalues) {
  const std::size_t n = eigenvalues.size();
  const std::size_t half = n / 2;
  RVec tail(eigenvalues.begin() + static_cast<std::ptrdiff_t>(half),
            eigenvalues.end());
  std::sort(tail.begin(), tail.end());
  const double floor = std::max(tail[tail.size() / 2], 1e-300);
  const double threshold = floor * from_db(cfg.signal_threshold_db);
  int order = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (eigenvalues[i] > threshold)
      ++order;
    else
      break;
  }
  order = std::clamp(order, 1, cfg.max_sources);
  order = std::min(order, static_cast<int>(n) - 1);
  return order;
}

RVec legacy_pseudospectrum(const core::MusicConfig& cfg, CSpan window,
                           RSpan angles_deg, int* model_order_out = nullptr) {
  const linalg::CMatrix r = legacy_smoothed_correlation(window, cfg.subarray);
  const linalg::EigResult eig = linalg::hermitian_eig(r);
  const int order = legacy_model_order(cfg, eig.values);
  if (model_order_out != nullptr) *model_order_out = order;

  const std::size_t wp = r.rows();
  std::vector<CVec> noise;
  for (std::size_t j = static_cast<std::size_t>(order); j < wp; ++j)
    noise.push_back(eig.vectors.column(j));

  RVec spectrum(angles_deg.size(), 0.0);
  for (std::size_t ai = 0; ai < angles_deg.size(); ++ai) {
    CVec a = core::steering_vector(cfg.isar, angles_deg[ai], wp);
    const double inv_norm = 1.0 / std::sqrt(static_cast<double>(wp));
    for (auto& v : a) v *= inv_norm;
    double proj = 0.0;
    for (const CVec& u : noise) {
      cdouble dot{0.0, 0.0};
      for (std::size_t i = 0; i < wp; ++i) dot += std::conj(a[i]) * u[i];
      proj += norm2(dot);
    }
    spectrum[ai] = 1.0 / std::max(proj, 1e-12);
  }
  return spectrum;
}

// ------------------------------------------------------------- the tests ---

TEST(FastPathParity, StftMatchesLegacy) {
  const CVec h = make_trace(1200);
  const core::DopplerProcessor::Config cfg;
  const core::DopplerProcessor proc(cfg);
  const core::DopplerSpectrogram fast = proc.process(h, 0.25);
  const core::DopplerSpectrogram ref = legacy_stft(h, cfg, 0.25);

  ASSERT_EQ(fast.num_times(), ref.num_times());
  ASSERT_EQ(fast.num_freqs(), ref.num_freqs());
  for (std::size_t f = 0; f < ref.num_freqs(); ++f)
    ASSERT_DOUBLE_EQ(fast.freqs_hz[f], ref.freqs_hz[f]);
  for (std::size_t t = 0; t < ref.num_times(); ++t) {
    ASSERT_DOUBLE_EQ(fast.times_sec[t], ref.times_sec[t]);
    for (std::size_t f = 0; f < ref.num_freqs(); ++f) {
      const double scale = std::max(1.0, std::abs(ref.columns[t][f]));
      ASSERT_NEAR(fast.columns[t][f], ref.columns[t][f], kParityTol * scale)
          << "t=" << t << " f=" << f;
    }
  }
}

TEST(FastPathParity, StftWithoutDcRemovalMatchesLegacy) {
  const CVec h = make_trace(600);
  core::DopplerProcessor::Config cfg;
  cfg.remove_dc = false;
  cfg.hop = 7;  // non-divisor hop exercises the column-count arithmetic
  const core::DopplerSpectrogram fast = core::DopplerProcessor(cfg).process(h);
  const core::DopplerSpectrogram ref = legacy_stft(h, cfg);
  ASSERT_EQ(fast.num_times(), ref.num_times());
  for (std::size_t t = 0; t < ref.num_times(); ++t)
    for (std::size_t f = 0; f < ref.num_freqs(); ++f) {
      const double scale = std::max(1.0, std::abs(ref.columns[t][f]));
      ASSERT_NEAR(fast.columns[t][f], ref.columns[t][f], kParityTol * scale);
    }
}

TEST(FastPathParity, SmoothedCorrelationMatchesLegacy) {
  const CVec h = make_trace(100);
  const core::SmoothedMusic music;
  const linalg::CMatrix fast = music.smoothed_correlation(h);
  const linalg::CMatrix ref =
      legacy_smoothed_correlation(h, music.config().subarray);
  ASSERT_EQ(fast.rows(), ref.rows());
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (std::size_t j = 0; j < ref.cols(); ++j)
      ASSERT_NEAR(std::abs(fast(i, j) - ref(i, j)), 0.0, kParityTol)
          << i << "," << j;
}

TEST(FastPathParity, PseudospectrumMatchesLegacy) {
  const CVec h = make_trace(100);
  const core::SmoothedMusic music;
  const RVec angles = core::angle_grid_deg(1.0);
  int fast_order = 0;
  int ref_order = 0;
  const RVec fast = music.pseudospectrum(h, angles, &fast_order);
  const RVec ref =
      legacy_pseudospectrum(music.config(), h, angles, &ref_order);
  EXPECT_EQ(fast_order, ref_order);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t ai = 0; ai < ref.size(); ++ai)
    ASSERT_NEAR(1.0 / fast[ai], 1.0 / ref[ai], kParityTol) << "angle " << ai;
}

TEST(FastPathParity, SlidingCorrelationMatchesDirectRebuild) {
  const CVec h = make_trace(1000);
  const core::SmoothedMusic music;
  const int w = music.config().isar.window;
  core::SlidingCorrelation sliding(music.config().subarray, w);
  linalg::CMatrix r;
  for (std::size_t pos = 0; pos + static_cast<std::size_t>(w) <= h.size();
       pos += 25) {
    sliding.advance_to(h, pos);
    sliding.correlation_into(r);
    const linalg::CMatrix ref = music.smoothed_correlation(
        CSpan(h).subspan(pos, static_cast<std::size_t>(w)));
    for (std::size_t i = 0; i < ref.rows(); ++i)
      for (std::size_t j = 0; j < ref.cols(); ++j)
        ASSERT_NEAR(std::abs(r(i, j) - ref(i, j)), 0.0, 1e-10)
            << "pos=" << pos << " " << i << "," << j;
  }
}

TEST(FastPathParity, TrackerStreamingMatchesPerWindowMusic) {
  const CVec h = make_trace(2000);
  const core::MotionTracker tracker;
  const core::AngleTimeImage img = tracker.process(h);

  const core::SmoothedMusic music(tracker.config().music);
  const auto w = static_cast<std::size_t>(tracker.config().music.isar.window);
  const RVec angles = core::angle_grid_deg(tracker.config().angle_step_deg);
  ASSERT_GT(img.num_times(), 10u);
  for (std::size_t c = 0; c < img.num_times(); ++c) {
    const std::size_t n = c * static_cast<std::size_t>(tracker.config().hop);
    int order = 0;
    const RVec direct =
        music.pseudospectrum(CSpan(h).subspan(n, w), angles, &order);
    EXPECT_EQ(img.model_orders[c], order) << "column " << c;
    for (std::size_t ai = 0; ai < angles.size(); ++ai)
      ASSERT_NEAR(1.0 / img.columns[c][ai], 1.0 / direct[ai], kParityTol)
          << "column " << c << " angle " << ai;
  }
}

TEST(FastPathParity, MedianInplaceMatchesMedian) {
  Rng rng(11);
  for (const std::size_t n : {1ul, 2ul, 5ul, 8ul, 101ul, 256ul}) {
    RVec x(n);
    for (auto& v : x) v = rng.gaussian();
    const double expected = dsp::median(x);
    RVec scratch = x;
    EXPECT_DOUBLE_EQ(dsp::median_inplace(scratch), expected) << "n=" << n;
  }
}

TEST(FastPathParity, PeakOverFloorMatchesSortBasedMedian) {
  const CVec h = make_trace(1200, 0.9);
  const core::DopplerSpectrogram spec = core::DopplerProcessor().process(h);
  const double got = spec.peak_over_floor(12.0);

  // Recompute with the pre-PR copy-and-sort median.
  double acc = 0.0;
  for (const RVec& col : spec.columns) {
    RVec band;
    double peak = 0.0;
    for (std::size_t f = 0; f < col.size(); ++f) {
      if (std::abs(spec.freqs_hz[f]) <= 12.0) continue;
      band.push_back(col[f]);
      peak = std::max(peak, col[f]);
    }
    acc += peak / std::max(dsp::median(band), 1e-300);
  }
  EXPECT_DOUBLE_EQ(got, acc / static_cast<double>(spec.columns.size()));
}

}  // namespace
}  // namespace wivi
