// The wivi::api facade contract: every PipelineSpec / stage-config
// invariant rejects bad input through WIVI_REQUIRE, and the compiled
// wivi::Session is *bit-identical* to the legacy entry points in every
// execution mode — batch (core::MotionTracker / GestureDecoder /
// spatial_variance / track_image), chunked streaming, column-parallel
// offline (par::ParallelImageBuilder) and engine-multiplexed (rt::Engine,
// through both the new spec entry point and the deprecated SessionConfig
// shim).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <variant>

#include "src/api/session.hpp"
#include "src/common/error.hpp"
#include "src/core/counting.hpp"
#include "src/core/gesture.hpp"
#include "src/core/tracker.hpp"
#include "src/par/image_builder.hpp"
#include "src/rt/compat.hpp"
#include "src/rt/engine.hpp"
#include "src/sim/synthetic.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi {
namespace {

// ---------------------------------------------------------- test helpers ---

/// The canonical three-mover trace every parity test runs on (long enough
/// for confirmed tracks and a crossing, short enough to stay fast).
const CVec& crossing_trace() {
  static const CVec h = sim::synthetic_crossing_trace(8.0, 1234);
  return h;
}

/// A spec with every stage attached and column events on.
api::PipelineSpec full_spec() {
  api::PipelineSpec spec;
  spec.track = api::TrackStage{};
  spec.gesture = api::GestureStage{};
  spec.count = api::CountStage{};
  return spec;
}

void expect_images_identical(const core::AngleTimeImage& a,
                             const core::AngleTimeImage& b,
                             const char* label) {
  ASSERT_EQ(a.num_times(), b.num_times()) << label;
  ASSERT_EQ(a.angles_deg, b.angles_deg) << label;
  ASSERT_EQ(a.times_sec, b.times_sec) << label;
  ASSERT_EQ(a.model_orders, b.model_orders) << label;
  for (std::size_t t = 0; t < a.num_times(); ++t)
    ASSERT_EQ(a.columns[t], b.columns[t]) << label << " col " << t;
}

void expect_histories_identical(const std::vector<track::TrackHistory>& a,
                                const std::vector<track::TrackHistory>& b,
                                const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << label;
    EXPECT_EQ(a[i].birth_column, b[i].birth_column) << label;
    EXPECT_EQ(a[i].state, b[i].state) << label;
    EXPECT_EQ(a[i].confirmed_ever, b[i].confirmed_ever) << label;
    EXPECT_EQ(a[i].times_sec, b[i].times_sec) << label;
    EXPECT_EQ(a[i].angles_deg, b[i].angles_deg) << label;
    EXPECT_EQ(a[i].updated, b[i].updated) << label;
  }
}

void expect_events_identical(const std::vector<api::Event>& a,
                             const std::vector<api::Event>& b,
                             const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].index(), b[i].index()) << label << " event " << i;
    std::visit(
        [&](const auto& ea) {
          using T = std::decay_t<decltype(ea)>;
          const auto& eb = std::get<T>(b[i]);
          if constexpr (std::is_same_v<T, api::ColumnEvent>) {
            EXPECT_EQ(ea.column_index, eb.column_index) << label;
            EXPECT_EQ(ea.time_sec, eb.time_sec) << label;
            EXPECT_EQ(ea.column, eb.column) << label;
            EXPECT_EQ(ea.model_order, eb.model_order) << label;
          } else if constexpr (std::is_same_v<T, api::TracksEvent>) {
            EXPECT_EQ(ea.num_confirmed, eb.num_confirmed) << label;
            EXPECT_EQ(ea.columns_seen, eb.columns_seen) << label;
            ASSERT_EQ(ea.tracks.size(), eb.tracks.size()) << label;
            for (std::size_t k = 0; k < ea.tracks.size(); ++k) {
              EXPECT_EQ(ea.tracks[k].id, eb.tracks[k].id) << label;
              EXPECT_EQ(ea.tracks[k].angle_deg, eb.tracks[k].angle_deg)
                  << label;
              EXPECT_EQ(ea.tracks[k].state, eb.tracks[k].state) << label;
            }
          } else if constexpr (std::is_same_v<T, api::BitsEvent>) {
            ASSERT_EQ(ea.bits.size(), eb.bits.size()) << label;
            for (std::size_t k = 0; k < ea.bits.size(); ++k) {
              EXPECT_EQ(ea.bits[k].value, eb.bits[k].value) << label;
              EXPECT_EQ(ea.bits[k].time_sec, eb.bits[k].time_sec) << label;
              EXPECT_EQ(ea.bits[k].snr_db, eb.bits[k].snr_db) << label;
            }
          } else if constexpr (std::is_same_v<T, api::CountEvent>) {
            EXPECT_EQ(ea.spatial_variance, eb.spatial_variance) << label;
            EXPECT_EQ(ea.columns_seen, eb.columns_seen) << label;
          } else if constexpr (std::is_same_v<T, api::FinishedEvent>) {
            EXPECT_EQ(ea.columns_seen, eb.columns_seen) << label;
            EXPECT_EQ(ea.spatial_variance, eb.spatial_variance) << label;
            EXPECT_EQ(ea.num_confirmed, eb.num_confirmed) << label;
          } else if constexpr (std::is_same_v<T, api::ErrorEvent>) {
            EXPECT_EQ(ea.message, eb.message) << label;
            EXPECT_EQ(ea.code, eb.code) << label;
          } else if constexpr (std::is_same_v<T, api::StalledEvent>) {
            EXPECT_EQ(ea.silent_sec, eb.silent_sec) << label;
            EXPECT_EQ(ea.chunks_seen, eb.chunks_seen) << label;
          } else if constexpr (std::is_same_v<T, api::RecoveredEvent>) {
            EXPECT_EQ(ea.restarts, eb.restarts) << label;
            EXPECT_EQ(ea.cause, eb.cause) << label;
            EXPECT_EQ(ea.message, eb.message) << label;
          } else if constexpr (std::is_same_v<T, api::StatsEvent>) {
            EXPECT_EQ(ea.chunks_in, eb.chunks_in) << label;
            EXPECT_EQ(ea.samples_in, eb.samples_in) << label;
            EXPECT_EQ(ea.chunks_dropped, eb.chunks_dropped) << label;
            EXPECT_EQ(ea.samples_dropped, eb.samples_dropped) << label;
            EXPECT_EQ(ea.columns_out, eb.columns_out) << label;
            EXPECT_EQ(ea.bits_out, eb.bits_out) << label;
            EXPECT_EQ(ea.restarts, eb.restarts) << label;
            EXPECT_EQ(ea.latency.count, eb.latency.count) << label;
          } else {
            static_assert(std::is_same_v<T, api::OverloadEvent>);
            EXPECT_EQ(ea.degraded, eb.degraded) << label;
            EXPECT_EQ(ea.fidelity, eb.fidelity) << label;
            EXPECT_EQ(ea.chunks_dropped, eb.chunks_dropped) << label;
            EXPECT_EQ(ea.samples_dropped, eb.samples_dropped) << label;
          }
        },
        a[i]);
  }
}

// ------------------------------------------------------- spec validation ---

TEST(PipelineSpecValidation, RejectsBadImageStage) {
  {
    api::PipelineSpec s;
    s.image.tracker.hop = 0;
    EXPECT_THROW(s.validate(), InvalidArgument);
    EXPECT_THROW(api::Session{s}, InvalidArgument);
  }
  {
    api::PipelineSpec s;
    s.image.tracker.angle_step_deg = 0.0;
    EXPECT_THROW(s.validate(), InvalidArgument);
    EXPECT_THROW(api::Session{s}, InvalidArgument);
  }
  {
    api::PipelineSpec s;
    s.image.tracker.music.subarray = 1;
    EXPECT_THROW(s.validate(), InvalidArgument);
    EXPECT_THROW(api::Session{s}, InvalidArgument);
  }
  {
    api::PipelineSpec s;
    s.image.tracker.music.max_sources = 0;
    EXPECT_THROW(s.validate(), InvalidArgument);
    EXPECT_THROW(api::Session{s}, InvalidArgument);
  }
}

TEST(PipelineSpecValidation, RejectsBadTrackStage) {
  const auto invalid = [](auto&& mutate) {
    api::PipelineSpec s;
    s.track = api::TrackStage{};
    mutate(s.track->tracker);
    EXPECT_THROW(s.validate(), InvalidArgument);
    EXPECT_THROW(api::Session{s}, InvalidArgument);
  };
  invalid([](auto& t) { t.gate_deg = 0.0; });
  invalid([](auto& t) { t.confirm_columns = 0; });
  invalid([](auto& t) { t.max_coast_columns = -1; });
  invalid([](auto& t) { t.tentative_max_misses = 0; });
  invalid([](auto& t) { t.detector.max_detections = 0; });
  invalid([](auto& t) { t.detector.min_separation_deg = -1.0; });
  invalid([](auto& t) { t.detector.peaks.min_peak_db = -1.0; });
  invalid([](auto& t) { t.detector.peaks.dc_exclusion_deg = 95.0; });
}

TEST(PipelineSpecValidation, RejectsBadGestureStage) {
  {
    api::PipelineSpec s;
    s.gesture = api::GestureStage{};
    s.gesture->gesture.decode_interval_cols = 0;
    EXPECT_THROW(s.validate(), InvalidArgument);
    EXPECT_THROW(api::Session{s}, InvalidArgument);
  }
  {
    api::PipelineSpec s;
    s.gesture = api::GestureStage{};
    s.gesture->gesture.decoder.dc_exclusion_deg = -1.0;
    EXPECT_THROW(s.validate(), InvalidArgument);
    EXPECT_THROW(api::Session{s}, InvalidArgument);
  }
}

TEST(PipelineSpecValidation, RejectsBadCountStage) {
  api::PipelineSpec s;
  s.count = api::CountStage{0.0};
  EXPECT_THROW(s.validate(), InvalidArgument);
  EXPECT_THROW(api::Session{s}, InvalidArgument);
}

TEST(PipelineSpecValidation, AcceptsTheFullDefaultSpec) {
  api::PipelineSpec s = full_spec();
  EXPECT_NO_THROW(s.validate());
  EXPECT_NO_THROW(api::Session{s});
}

// ----------------------------------------------------------- batch parity ---

TEST(SessionBatch, BitIdenticalToLegacyEntryPoints) {
  const CVec& h = crossing_trace();
  api::Session session(full_spec());
  session.run(h);
  ASSERT_TRUE(session.finished());
  ASSERT_FALSE(session.failed());

  // Image == core::MotionTracker::process.
  const core::AngleTimeImage batch_img =
      core::MotionTracker().process(h, 0.0);
  expect_images_identical(batch_img, session.image(), "batch image");

  // Count == core::spatial_variance.
  EXPECT_EQ(session.spatial_variance(), core::spatial_variance(batch_img));

  // Tracks == track::track_image.
  expect_histories_identical(track::track_image(batch_img),
                             session.multi_tracker().histories(),
                             "batch tracks");

  // Gesture == core::GestureDecoder::decode (the synthetic trace holds no
  // gestures, so this pins the *whole result*, not just the bits).
  const auto batch_dec = core::GestureDecoder().decode(batch_img);
  const auto& facade_dec = session.gesture_result();
  ASSERT_EQ(facade_dec.bits.size(), batch_dec.bits.size());
  ASSERT_EQ(facade_dec.symbols.size(), batch_dec.symbols.size());
  EXPECT_EQ(facade_dec.matched_output, batch_dec.matched_output);
  EXPECT_EQ(facade_dec.noise_sigma, batch_dec.noise_sigma);
}

TEST(SessionBatch, TrackTraceIsTheSamePipeline) {
  const CVec& h = crossing_trace();
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.track = api::TrackStage{};
  api::Session session(std::move(spec));
  session.run(h);

  const auto via_helper = track::track_trace(h);
  expect_images_identical(via_helper.image, session.image(), "track_trace");
  expect_histories_identical(via_helper.histories,
                             session.multi_tracker().histories(),
                             "track_trace");
}

// ------------------------------------------------------- streaming parity ---

TEST(SessionStreaming, BitIdenticalToBatchAcrossChunkSizes) {
  const CVec& h = crossing_trace();
  api::Session batch(full_spec());
  batch.run(h);
  std::vector<api::Event> batch_events;
  batch.poll(batch_events);

  for (const std::size_t chunk :
       {std::size_t{64}, std::size_t{311}, h.size()}) {
    api::Session streaming(full_spec());
    for (std::size_t pos = 0; pos < h.size(); pos += chunk)
      streaming.push(CSpan(h).subspan(pos, std::min(chunk, h.size() - pos)));
    streaming.finish();

    const std::string label = "chunk=" + std::to_string(chunk);
    expect_images_identical(batch.image(), streaming.image(), label.c_str());
    EXPECT_EQ(streaming.spatial_variance(), batch.spatial_variance()) << label;
    expect_histories_identical(batch.multi_tracker().histories(),
                               streaming.multi_tracker().histories(),
                               label.c_str());

    // The ColumnEvent stream is chunking-invariant (stage-update events
    // arrive per chunk by design, so only their *final* values are pinned
    // above).
    std::vector<api::Event> streamed_events;
    streaming.poll(streamed_events);
    const auto columns_only = [](const std::vector<api::Event>& in) {
      std::vector<api::Event> out;
      for (const api::Event& e : in)
        if (std::holds_alternative<api::ColumnEvent>(e)) out.push_back(e);
      return out;
    };
    expect_events_identical(columns_only(batch_events),
                            columns_only(streamed_events), label.c_str());
  }
}

TEST(SessionStreaming, CallbackSinkSeesTheSameSequenceAsPoll) {
  const CVec& h = crossing_trace();
  api::Session polled(full_spec());
  std::vector<api::Event> poll_events;
  for (std::size_t pos = 0; pos < h.size(); pos += 128) {
    polled.push(CSpan(h).subspan(pos, std::min<std::size_t>(128, h.size() - pos)));
    polled.poll(poll_events);
  }
  polled.finish();
  polled.poll(poll_events);

  api::Session called(full_spec());
  std::vector<api::Event> cb_events;
  called.set_callback([&cb_events](api::Event&& e) {
    cb_events.push_back(std::move(e));
  });
  for (std::size_t pos = 0; pos < h.size(); pos += 128)
    called.push(CSpan(h).subspan(pos, std::min<std::size_t>(128, h.size() - pos)));
  called.finish();

  expect_events_identical(poll_events, cb_events, "poll vs callback");
}

// -------------------------------------------------------- parallel parity ---

TEST(SessionParallel, BitIdenticalToTheParallelBuilder) {
  const CVec& h = crossing_trace();
  const core::AngleTimeImage built =
      par::ParallelImageBuilder(core::MotionTracker::Config{}, 2).build(h);

  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.track = api::TrackStage{};
  api::Session session(std::move(spec));
  session.run(h, api::Parallelism{2});

  expect_images_identical(built, session.image(), "parallel image");
  // The tracking pass over the adopted image equals the batch pass.
  expect_histories_identical(track::track_image(built),
                             session.multi_tracker().histories(),
                             "parallel tracks");
}

TEST(SessionParallel, ThreadCountInvariant) {
  const CVec& h = crossing_trace();
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  api::Session one(spec);
  one.run(h, api::Parallelism{1});
  api::Session three(spec);
  three.run(h, api::Parallelism{3});
  expect_images_identical(one.image(), three.image(), "1 vs 3 threads");
}

// ----------------------------------------------------- engine multiplexed ---

TEST(EngineFacadeParity, MultiplexedEqualsStandaloneSession) {
  const CVec& h = crossing_trace();

  // Standalone facade session, chunked exactly as the engine will see it.
  api::Session standalone(full_spec());
  std::vector<api::Event> standalone_events;
  for (std::size_t pos = 0; pos < h.size(); pos += 96)
    standalone.push(CSpan(h).subspan(pos, std::min<std::size_t>(96, h.size() - pos)));
  standalone.finish();
  standalone.poll(standalone_events);

  rt::Engine engine({.num_threads = 2});
  rt::IngestConfig ingest;
  ingest.backpressure = rt::Backpressure::kBlock;
  const rt::SessionId id = engine.open_session(full_spec(), ingest);
  for (std::size_t pos = 0; pos < h.size(); pos += 96) {
    CSpan c = CSpan(h).subspan(pos, std::min<std::size_t>(96, h.size() - pos));
    engine.offer(id, CVec(c.begin(), c.end()));
  }
  engine.close_session(id);
  engine.drain();

  expect_images_identical(standalone.image(), engine.tracker(id).image(),
                          "engine image");
  expect_histories_identical(standalone.multi_tracker().histories(),
                             engine.multi_tracker(id).histories(),
                             "engine tracks");
  EXPECT_EQ(engine.pipeline(id).spatial_variance(),
            standalone.spatial_variance());

  // The engine's legacy event stream, converted back to typed events, is
  // the standalone session's event stream.
  std::vector<rt::Event> legacy;
  engine.poll(legacy);
  std::vector<api::Event> engine_events;
  for (const rt::Event& e : legacy) {
    ASSERT_EQ(e.session, id);
    engine_events.push_back(rt::to_api_event(e));
  }
  expect_events_identical(standalone_events, engine_events, "engine events");
}

TEST(EngineFacadeParity, LegacySessionConfigShimEqualsSpec) {
  const CVec& h = crossing_trace();

  rt::SessionConfig legacy_cfg;
  legacy_cfg.track_targets = true;
  legacy_cfg.count_movers = true;
  legacy_cfg.decode_gestures = true;
  legacy_cfg.backpressure = rt::Backpressure::kBlock;

  // The shim conversion round-trips.
  const api::PipelineSpec spec = rt::to_pipeline_spec(legacy_cfg);
  EXPECT_TRUE(spec.track && spec.gesture && spec.count);
  const rt::SessionConfig round =
      rt::to_session_config(spec, rt::to_ingest_config(legacy_cfg));
  EXPECT_EQ(round.track_targets, legacy_cfg.track_targets);
  EXPECT_EQ(round.count_movers, legacy_cfg.count_movers);
  EXPECT_EQ(round.decode_gestures, legacy_cfg.decode_gestures);
  EXPECT_EQ(round.emit_columns, legacy_cfg.emit_columns);
  EXPECT_EQ(round.counter_cap_db, legacy_cfg.counter_cap_db);
  EXPECT_EQ(round.ring_capacity, legacy_cfg.ring_capacity);
  EXPECT_EQ(round.backpressure, legacy_cfg.backpressure);
  EXPECT_EQ(round.t0, legacy_cfg.t0);

  // Both engine entry points produce identical results.
  rt::Engine engine({.num_threads = 2});
  const rt::SessionId via_legacy = engine.open_session(legacy_cfg);
  const rt::SessionId via_spec = engine.open_session(
      rt::to_pipeline_spec(legacy_cfg), rt::to_ingest_config(legacy_cfg));
  for (std::size_t pos = 0; pos < h.size(); pos += 128) {
    CSpan c = CSpan(h).subspan(pos, std::min<std::size_t>(128, h.size() - pos));
    engine.offer(via_legacy, CVec(c.begin(), c.end()));
    engine.offer(via_spec, CVec(c.begin(), c.end()));
  }
  engine.close_session(via_legacy);
  engine.close_session(via_spec);
  engine.drain();
  expect_images_identical(engine.tracker(via_legacy).image(),
                          engine.tracker(via_spec).image(), "shim image");
  expect_histories_identical(engine.multi_tracker(via_legacy).histories(),
                             engine.multi_tracker(via_spec).histories(),
                             "shim tracks");
}

TEST(EngineFacadeParity, RunRecordedEqualsParallelRun) {
  const CVec& h = crossing_trace();
  rt::Engine engine({.num_threads = 2});
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.count = api::CountStage{};
  const rt::SessionId id = engine.run_recorded(spec, h);
  ASSERT_TRUE(engine.stats(id).finished);

  api::Session session(spec);
  session.run(h, api::Parallelism{engine.num_threads()});
  expect_images_identical(session.image(), engine.tracker(id).image(),
                          "run_recorded");
  EXPECT_EQ(engine.pipeline(id).spatial_variance(),
            session.spatial_variance());
}

// ------------------------------------------------------- lifecycle/errors ---

TEST(SessionLifecycle, RejectsUseAfterFinish) {
  api::PipelineSpec spec;
  api::Session session(spec);
  session.finish();
  EXPECT_TRUE(session.finished());
  EXPECT_FALSE(session.failed());
  const CVec h(8, cdouble{0.0, 0.0});
  EXPECT_THROW(session.push(h), InvalidArgument);
  EXPECT_THROW(session.finish(), InvalidArgument);
  EXPECT_THROW(session.run(h), InvalidArgument);
}

TEST(SessionLifecycle, AccessorsRequireTheirStage) {
  api::PipelineSpec spec;  // image only
  api::Session session(spec);
  EXPECT_THROW(session.multi_tracker(), InvalidArgument);
  EXPECT_THROW(session.gesture_result(), InvalidArgument);
  EXPECT_THROW(session.spatial_variance(), InvalidArgument);
}

TEST(SessionLifecycle, CallbackMustBeInstalledFresh) {
  const CVec& h = crossing_trace();
  api::PipelineSpec spec;
  api::Session session(spec);
  session.push(CSpan(h).subspan(0, 128));
  EXPECT_THROW(session.set_callback([](api::Event&&) {}), InvalidArgument);
}

TEST(SessionLifecycle, ParallelRunRequiresAFreshSession) {
  const CVec& h = crossing_trace();
  api::PipelineSpec spec;
  api::Session session(spec);
  session.push(CSpan(h).subspan(0, 128));
  EXPECT_THROW(session.run(h, api::Parallelism{1}), InvalidArgument);
  // A precondition slip is not a stage failure: the session stays usable.
  EXPECT_FALSE(session.failed());
  EXPECT_NO_THROW(session.push(CSpan(h).subspan(128, 128)));
}

TEST(SessionLifecycle, TakeAccessorsMoveResultsOutOfAFinishedSession) {
  const CVec& h = crossing_trace();
  api::PipelineSpec spec;
  spec.image.emit_columns = false;
  spec.gesture = api::GestureStage{};
  api::Session session(spec);
  EXPECT_THROW((void)session.take_image(), InvalidArgument);  // still open
  session.run(h);

  const core::AngleTimeImage batch = core::MotionTracker().process(h, 0.0);
  const core::AngleTimeImage taken = session.take_image();
  expect_images_identical(batch, taken, "take_image");
  EXPECT_EQ(session.image().num_times(), 0u);
  // The moved-out columns stay counted.
  EXPECT_EQ(session.columns_seen(), batch.num_times());

  const auto batch_dec = core::GestureDecoder().decode(batch);
  const auto taken_dec = session.take_gesture_result();
  EXPECT_EQ(taken_dec.matched_output, batch_dec.matched_output);
  EXPECT_TRUE(session.gesture_result().matched_output.empty());
}

TEST(SessionErrors, ThrowingCallbackFailsTheSessionWithAnErrorEvent) {
  const CVec& h = crossing_trace();
  api::PipelineSpec spec;  // column events on
  api::Session session(spec);
  std::string error_seen;
  session.set_callback([&error_seen](api::Event&& e) {
    if (const auto* err = std::get_if<api::ErrorEvent>(&e)) {
      error_seen = err->message;
      return;  // the error report itself is accepted
    }
    throw std::runtime_error("poisoned sink");
  });
  // Enough samples to complete a column -> the callback fires and throws.
  EXPECT_THROW(session.push(CSpan(h).subspan(0, 512)), std::runtime_error);
  EXPECT_TRUE(session.failed());
  EXPECT_TRUE(session.finished());
  EXPECT_EQ(session.error(), "poisoned sink");
  EXPECT_EQ(error_seen, "poisoned sink");
  // A dead session rejects further input.
  EXPECT_THROW(session.push(CSpan(h).subspan(0, 8)), InvalidArgument);
}

}  // namespace
}  // namespace wivi
