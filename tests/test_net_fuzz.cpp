// Structure-aware fuzzing of the network ingress: seeded deterministic
// mutations of valid frames (truncation, magic/version/flag/length
// tampering, CRC corruption, byte flips, splice and merge) plus pure
// random bytes, driven through the datagram parser, the TCP stream
// decoder (at random read-split sizes) and the demux. The invariant
// everywhere: malformed input produces a *typed rejection* — never a
// crash, hang, exception or accounting leak. The CI net-ingress job runs
// this binary under ASan/UBSan, which is what turns "never a crash" into
// "never an out-of-bounds read either".
//
// Seeds derive from WIVI_CHAOS_SEED (default 1) via fault::splitmix64, so
// a failing mutation reproduces exactly: re-run with the same seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/net/frame.hpp"
#include "src/net/reassembler.hpp"

namespace wivi {
namespace {

using net::FrameView;
using net::ParseStatus;

std::uint64_t chaos_seed() {
  const char* env = std::getenv("WIVI_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 1;
}

/// A tiny deterministic RNG over splitmix64 (same primitive the fault
/// and wire-fault layers key off).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return fault::splitmix64(state_++); }
  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

 private:
  std::uint64_t state_;
};

CVec ramp_chunk(std::size_t n, double base = 0.0) {
  CVec c(n);
  for (std::size_t i = 0; i < n; ++i)
    c[i] = cdouble(base + static_cast<double>(i), -static_cast<double>(i));
  return c;
}

/// One structure-aware mutation of a valid frame. Some mutations keep the
/// frame valid (identity / CRC-preserving no-ops are fine: the harness
/// asserts "parses or rejects typed", not "always rejects").
std::vector<std::byte> mutate(std::vector<std::byte> f, Rng& rng) {
  switch (rng.below(8)) {
    case 0:  // truncate anywhere, including inside the header
      f.resize(rng.below(f.size() + 1));
      break;
    case 1:  // stomp the magic
      f[rng.below(4)] = static_cast<std::byte>(rng.next());
      break;
    case 2:  // bogus version
      f[4] = static_cast<std::byte>(rng.next());
      f[5] = static_cast<std::byte>(rng.next());
      break;
    case 3:  // unknown flag bits
      f[6] = static_cast<std::byte>(rng.next() | 0x02);
      break;
    case 4:  // length field lies (overflow or mismatch)
      f[12 + rng.below(4)] = static_cast<std::byte>(rng.next());
      break;
    case 5:  // fragment fields lie
      f[24 + rng.below(4)] = static_cast<std::byte>(rng.next());
      break;
    case 6:  // flip a random byte anywhere (CRC catches what checks miss)
      if (!f.empty()) f[rng.below(f.size())] ^= std::byte{1};
      break;
    case 7:  // append trailing garbage (merged datagrams)
      for (std::uint64_t i = rng.below(40); i > 0; --i)
        f.push_back(static_cast<std::byte>(rng.next()));
      break;
  }
  return f;
}

std::vector<std::byte> valid_frame(Rng& rng) {
  const std::uint32_t sensor = static_cast<std::uint32_t>(rng.below(4));
  const std::uint64_t seq = rng.below(16);
  const auto frames = net::chunk_to_frames(
      sensor, seq, ramp_chunk(1 + rng.below(64)), 64 + rng.below(512));
  return frames[rng.below(frames.size())];
}

TEST(NetFuzz, DatagramParserNeverEscapesTheTaxonomy) {
  Rng rng(fault::splitmix64(chaos_seed() ^ 0xDA7A));
  std::size_t ok = 0, rejected = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::byte> f = valid_frame(rng);
    const std::uint64_t layers = 1 + rng.below(3);
    for (std::uint64_t i = 0; i < layers; ++i) f = mutate(std::move(f), rng);

    FrameView v;
    std::size_t consumed = 0;
    const ParseStatus st = net::parse_frame(f, v, &consumed);
    switch (st) {  // exhaustively typed: anything else fails the test
      case ParseStatus::kOk:
        ++ok;
        ASSERT_LE(consumed, f.size());
        ASSERT_EQ(consumed, net::kHeaderSize + v.header.payload_len);
        break;
      case ParseStatus::kNeedMore:
      case ParseStatus::kBadMagic:
      case ParseStatus::kBadVersion:
      case ParseStatus::kBadFlags:
      case ParseStatus::kBadLength:
      case ParseStatus::kBadFragment:
      case ParseStatus::kBadCrc:
        ++rejected;
        break;
      default:
        FAIL() << "untyped parse status " << static_cast<int>(st);
    }
  }
  // The mutator must actually produce both outcomes to mean anything.
  EXPECT_GT(ok, 0u);
  EXPECT_GT(rejected, 0u);
}

TEST(NetFuzz, PureRandomBytesAlwaysRejectTyped) {
  Rng rng(fault::splitmix64(chaos_seed() ^ 0xBEEF));
  for (int iter = 0; iter < 5000; ++iter) {
    std::vector<std::byte> buf(rng.below(200));
    for (auto& b : buf) b = static_cast<std::byte>(rng.next());
    FrameView v;
    const ParseStatus st = net::parse_frame(buf, v);
    EXPECT_NE(st, ParseStatus::kOk);  // a 1-in-2^32 CRC fluke aside
    EXPECT_GE(static_cast<int>(st), static_cast<int>(ParseStatus::kNeedMore));
    EXPECT_LE(static_cast<int>(st), static_cast<int>(ParseStatus::kBadCrc));
  }
}

TEST(NetFuzz, StreamDecoderSurvivesMutatedStreamsAtAnySplit) {
  Rng rng(fault::splitmix64(chaos_seed() ^ 0x57EA));
  std::size_t total_frames = 0, total_rejects = 0;
  for (int round = 0; round < 200; ++round) {
    // A stream of valid frames with mutations spliced in.
    std::vector<std::byte> stream;
    std::size_t valid_frames = 0;
    for (std::uint64_t i = 0, n = 2 + rng.below(8); i < n; ++i) {
      std::vector<std::byte> f = valid_frame(rng);
      if (rng.below(2) == 0) {
        f = mutate(std::move(f), rng);
      } else {
        ++valid_frames;
      }
      stream.insert(stream.end(), f.begin(), f.end());
    }

    net::StreamDecoder dec(2 * (net::kHeaderSize + net::kMaxPayloadBytes));
    std::size_t frames = 0, rejects = 0, polls = 0;
    FrameView v;
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t len =
          std::min<std::size_t>(1 + rng.below(400), stream.size() - off);
      dec.push(std::span<const std::byte>(stream.data() + off, len));
      off += len;
      for (;;) {
        ASSERT_LT(++polls, stream.size() * 4 + 1000)
            << "decoder failed to make progress (seed " << chaos_seed()
            << ", round " << round << ")";
        const auto r = dec.poll(v);
        if (r == net::StreamDecoder::Result::kNeedMore) break;
        if (r == net::StreamDecoder::Result::kFrame) {
          ++frames;
        } else {
          ++rejects;
          const ParseStatus e = dec.last_error();
          ASSERT_NE(e, ParseStatus::kOk);
          ASSERT_NE(e, ParseStatus::kNeedMore);
        }
      }
    }
    // No per-round count assertion: a mutation may legitimately swallow
    // following valid frames (a truncated frame absorbs the next frame's
    // bytes into its pending payload). What must hold is progress, typed
    // rejections and bounded memory — asserted above. Unmutated streams
    // are pinned to full decode in test_net.cpp.
    (void)valid_frames;
    total_frames += frames;
    total_rejects += rejects;
  }
  // Across the whole run the mutator must exercise both paths.
  EXPECT_GT(total_frames, 0u);
  EXPECT_GT(total_rejects, 0u);
}

TEST(NetFuzz, DemuxKeepsConservationUnderMutatedInput) {
  Rng rng(fault::splitmix64(chaos_seed() ^ 0xD312));
  std::size_t delivered_chunks = 0;
  net::Reassembler::Config rcfg;
  rcfg.window_chunks = 4;
  rcfg.max_chunk_bytes = 4096;  // small cap: exercise cap-abandon too
  net::Demux demux(
      rcfg,
      [&](std::uint32_t, std::uint64_t, CVec&&) {
        ++delivered_chunks;
        return rng.below(8) != 0;  // occasionally refuse (ring full)
      },
      [](std::uint32_t) {}, /*max_sensors=*/3);

  for (int iter = 0; iter < 20000; ++iter) {
    std::vector<std::byte> f = valid_frame(rng);
    if (rng.below(2) == 0) f = mutate(std::move(f), rng);
    FrameView v;
    if (net::parse_frame(f, v) != ParseStatus::kOk) continue;
    demux.feed(v);  // must never throw, whatever the header claims
  }
  demux.flush();

  const auto s = demux.stats();
  EXPECT_EQ(s.frames_in,
            s.frames_delivered + s.frames_dup + s.frames_stale +
                s.frames_evicted + s.frames_decode_failed +
                s.frames_sink_dropped + s.frames_control + s.frames_in_flight);
  EXPECT_EQ(s.frames_in_flight, 0u);  // flush() drained everything
  EXPECT_GT(s.frames_in, 0u);
  EXPECT_GT(delivered_chunks, 0u);
}

}  // namespace
}  // namespace wivi
