// wivi::par — the thread pool and the column-parallel image builder.
//
// The load-bearing property is determinism: ParallelImageBuilder output
// must be bit-identical (same doubles, same model orders) for every
// thread count 1..8 and for repeated builds on one instance, because the
// block partition is fixed and every workspace is numerically
// history-independent. The sliding sequential path is a *different*
// rounding chain, so against it we only assert the 1e-9 parity bound (on
// the noise projection 1/A', same convention as test_fastpath_parity).
// The pool stress tests here also run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/core/tracker.hpp"
#include "src/par/image_builder.hpp"
#include "src/par/thread_pool.hpp"
#include "src/rt/engine.hpp"
#include "src/sim/synthetic.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi {
namespace {

constexpr double kParityTol = 1e-9;

CVec make_trace(std::size_t n) {
  return sim::synthetic_mover_trace(n, 404, 0.6);
}

void expect_images_bit_identical(const core::AngleTimeImage& a,
                                 const core::AngleTimeImage& b) {
  ASSERT_EQ(a.num_times(), b.num_times());
  ASSERT_EQ(a.num_angles(), b.num_angles());
  for (std::size_t t = 0; t < a.num_times(); ++t) {
    ASSERT_EQ(a.times_sec[t], b.times_sec[t]) << "column " << t;
    ASSERT_EQ(a.model_orders[t], b.model_orders[t]) << "column " << t;
    for (std::size_t x = 0; x < a.num_angles(); ++x)
      ASSERT_EQ(a.columns[t][x], b.columns[t][x])
          << "column " << t << " angle " << x;
  }
}

// ---------------------------------------------------------- ThreadPool ---

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  par::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, pool.num_threads());
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, SingleThreadRunsInlineInOrder) {
  par::ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(16, [&](std::size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);  // no synchronisation needed: inline execution
  });
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ZeroCountIsANoop) {
  par::ThreadPool pool(3);
  pool.parallel_for(0, [&](std::size_t, int) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  // TSan target: the publish/claim/retire cycle repeated back to back,
  // with job sizes straddling the worker count.
  par::ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    const auto count = static_cast<std::size_t>(1 + round % 9);
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(count, [&](std::size_t i, int) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), count * (count + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPool, FirstExceptionIsRethrownAndEveryTaskStillRuns) {
  // The contract is pool-size independent: the inline (size 1) path must
  // drain the range and rethrow exactly like the threaded path.
  for (const int size : {1, 4}) {
    par::ThreadPool pool(size);
    std::vector<std::atomic<int>> hits(64);
    EXPECT_THROW(
        pool.parallel_for(64,
                          [&](std::size_t i, int) {
                            hits[i].fetch_add(1, std::memory_order_relaxed);
                            if (i % 7 == 3)
                              throw std::runtime_error("task boom");
                          }),
        std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "pool=" << size << " index " << i;
    // The pool survives a throwing job.
    std::atomic<int> ran{0};
    pool.parallel_for(8, [&](std::size_t, int) { ++ran; });
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(ThreadPool, RejectsNestedParallelFor) {
  par::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   4,
                   [&](std::size_t, int) {
                     pool.parallel_for(2, [](std::size_t, int) {});
                   }),
               std::exception);
}

// ------------------------------------------------ ParallelImageBuilder ---

TEST(ParallelImageBuilder, BitIdenticalAcrossThreadCounts1To8) {
  // The acceptance-criterion sweep: one trace, eight thread counts, all
  // images equal double for double. Long enough for several blocks so the
  // partition actually fans out.
  const CVec h = make_trace(2000);
  const core::MotionTracker::Config cfg;
  const par::ParallelImageBuilder reference(cfg, 1);
  const core::AngleTimeImage ref = reference.build(h, 0.25);
  EXPECT_GT(ref.num_times(),
            par::ParallelImageBuilder::kColumnsPerBlock * 3);
  for (int threads = 2; threads <= 8; ++threads) {
    const par::ParallelImageBuilder builder(cfg, threads);
    expect_images_bit_identical(ref, builder.build(h, 0.25));
  }
}

TEST(ParallelImageBuilder, RepeatedBuildsOnOneInstanceAreIdentical) {
  // Workspace reuse must be numerically invisible: warm workspaces from a
  // previous build (even of a different trace) change nothing.
  const CVec h = make_trace(1200);
  const par::ParallelImageBuilder builder(core::MotionTracker::Config{}, 4);
  const core::AngleTimeImage first = builder.build(h);
  (void)builder.build(make_trace(700));  // dirty the workspaces
  expect_images_bit_identical(first, builder.build(h));
}

TEST(ParallelImageBuilder, MatchesSequentialSlidingPathAtParityTolerance) {
  // Rebuild-per-block vs rank-one-slide are different rounding chains; the
  // agreement contract is 1e-9 on the bounded noise projection 1/A'
  // (the test_fastpath_parity convention), with identical model orders
  // and identical (exactly computed) time stamps.
  const CVec h = make_trace(1500);
  const core::MotionTracker tracker;  // num_threads = 1: sliding path
  const core::AngleTimeImage seq = tracker.process(h, 0.0);
  const core::AngleTimeImage p =
      par::ParallelImageBuilder(tracker.config(), 4).build(h, 0.0);
  ASSERT_EQ(seq.num_times(), p.num_times());
  ASSERT_EQ(seq.num_angles(), p.num_angles());
  for (std::size_t t = 0; t < seq.num_times(); ++t) {
    EXPECT_EQ(seq.times_sec[t], p.times_sec[t]);
    EXPECT_EQ(seq.model_orders[t], p.model_orders[t]) << "column " << t;
    for (std::size_t a = 0; a < seq.num_angles(); ++a)
      ASSERT_NEAR(1.0 / seq.columns[t][a], 1.0 / p.columns[t][a], kParityTol)
          << "column " << t << " angle " << a;
  }
}

TEST(ParallelImageBuilder, MotionTrackerNumThreadsRoutesToBuilder) {
  const CVec h = make_trace(900);
  core::MotionTracker::Config cfg;
  cfg.num_threads = 3;
  const core::AngleTimeImage via_tracker = core::MotionTracker(cfg).process(h);
  expect_images_bit_identical(
      via_tracker, par::ParallelImageBuilder(cfg, 3).build(h));
  // And thread-count invariance holds through the tracker API too.
  cfg.num_threads = 5;
  expect_images_bit_identical(via_tracker,
                              core::MotionTracker(cfg).process(h));
}

TEST(ParallelImageBuilder, ShortTraceSingleBlockStillWorks) {
  const core::MotionTracker::Config cfg;
  const auto w = static_cast<std::size_t>(cfg.music.isar.window);
  const CVec h = make_trace(w + 3 * static_cast<std::size_t>(cfg.hop));
  const core::AngleTimeImage img =
      par::ParallelImageBuilder(cfg, 8).build(h);  // workers >> blocks
  EXPECT_EQ(img.num_times(), 4u);
  expect_images_bit_identical(img,
                              par::ParallelImageBuilder(cfg, 1).build(h));
}

TEST(ParallelImageBuilder, RejectsTooShortStream) {
  const core::MotionTracker::Config cfg;
  const CVec h = make_trace(static_cast<std::size_t>(cfg.music.isar.window) - 1);
  EXPECT_THROW((void)par::ParallelImageBuilder(cfg, 2).build(h),
               std::exception);
}

// ------------------------------------------------- batch entry wiring ---

TEST(TrackTrace, MatchesManualImageThenTrack) {
  const CVec h = sim::synthetic_crossing_trace(6.0, 17);
  core::MotionTracker::Config icfg;
  icfg.num_threads = 4;
  const track::TraceTrackResult got = track::track_trace(h, icfg);
  const core::AngleTimeImage img = core::MotionTracker(icfg).process(h);
  expect_images_bit_identical(img, got.image);
  const auto want = track::track_image(img);
  ASSERT_EQ(want.size(), got.histories.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got.histories[i].id);
    EXPECT_EQ(want[i].state, got.histories[i].state);
    ASSERT_EQ(want[i].angles_deg.size(), got.histories[i].angles_deg.size());
    for (std::size_t t = 0; t < want[i].angles_deg.size(); ++t)
      EXPECT_EQ(want[i].angles_deg[t], got.histories[i].angles_deg[t]);
  }
}

TEST(RunRecorded, MatchesBuilderOutputAndDeliversFullEventStream) {
  const CVec h = make_trace(1100);
  rt::Engine::Config ec;
  ec.num_threads = 3;
  rt::Engine engine(ec);

  rt::SessionConfig sc;
  sc.count_movers = true;
  sc.t0 = 1.5;
  const rt::SessionId id = engine.run_recorded(sc, h);

  // The session is finished on return and the image is the builder's.
  EXPECT_TRUE(engine.stats(id).finished);
  const core::AngleTimeImage want =
      par::ParallelImageBuilder(sc.tracker, ec.num_threads).build(h, sc.t0);
  expect_images_bit_identical(want, engine.tracker(id).image());
  EXPECT_EQ(engine.tracker(id).samples_seen(), h.size());
  EXPECT_EQ(engine.stats(id).columns_out, want.num_times());

  // Events: every column once in order, one kCount, then kFinished with
  // the batch spatial variance of the (parallel) image.
  std::vector<rt::Event> events;
  engine.poll(events);
  std::size_t next_col = 0;
  std::size_t counts = 0;
  bool finished = false;
  for (const rt::Event& e : events) {
    ASSERT_EQ(e.session, id);
    if (e.type == rt::Event::Type::kColumn) {
      EXPECT_FALSE(finished);
      EXPECT_EQ(e.column_index, next_col);
      ASSERT_EQ(e.column.size(), want.num_angles());
      for (std::size_t a = 0; a < e.column.size(); ++a)
        EXPECT_EQ(e.column[a], want.columns[next_col][a]);
      ++next_col;
    } else if (e.type == rt::Event::Type::kCount) {
      ++counts;
    } else if (e.type == rt::Event::Type::kFinished) {
      finished = true;
      EXPECT_EQ(e.spatial_variance, core::spatial_variance(want));
      EXPECT_EQ(e.columns_seen, want.num_times());
    }
  }
  EXPECT_EQ(next_col, want.num_times());
  EXPECT_EQ(counts, 1u);
  EXPECT_TRUE(finished);

  // A recorded session is closed: offering afterwards is an error.
  EXPECT_THROW((void)engine.offer(id, CVec(10)), std::exception);
}

TEST(RunRecorded, TrackTargetsSessionMatchesBatchTrackImage) {
  const CVec h = sim::synthetic_crossing_trace(5.0, 22);
  rt::Engine::Config ec;
  ec.num_threads = 2;
  rt::Engine engine(ec);
  rt::SessionConfig sc;
  sc.emit_columns = false;
  sc.track_targets = true;
  const rt::SessionId id = engine.run_recorded(sc, h);
  EXPECT_TRUE(engine.stats(id).finished);

  const core::AngleTimeImage img =
      par::ParallelImageBuilder(sc.tracker, ec.num_threads).build(h);
  const auto want = track::track_image(img, sc.multi_track);
  const auto got = engine.multi_tracker(id).histories();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].id, got[i].id);
    EXPECT_EQ(want[i].confirmed_ever, got[i].confirmed_ever);
  }
}

}  // namespace
}  // namespace wivi
