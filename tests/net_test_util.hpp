// Shared helpers for the net test suites: bit-exact serialisation of a
// session's engine event stream (the "event log" the live-vs-network and
// capture-vs-replay parity tests byte-compare), plus small trace/chunk
// builders. Doubles are serialised as their IEEE-754 bit patterns in hex,
// so two logs compare equal iff every value is bit-identical — an
// approximate match is a parity failure by design.
#pragma once

#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/rt/engine.hpp"
#include "src/sim/feeder.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi::nettest {

inline void put_f64(std::ostringstream& os, double v) {
  os << std::hex << std::bit_cast<std::uint64_t>(v) << std::dec << ',';
}

/// Serialise one session's events (in queue order) to a byte-comparable
/// log. Only deterministic event kinds appear; timing-driven kinds
/// (kStats, kStalled) are excluded so wall-clock noise cannot fail a
/// parity compare.
inline std::string event_log(const std::vector<rt::Event>& events,
                             rt::SessionId id) {
  std::ostringstream os;
  for (const rt::Event& e : events) {
    if (e.session != id) continue;
    switch (e.type) {
      case rt::Event::Type::kColumn:
        os << "col:" << e.column_index << ':' << e.model_order << ':';
        put_f64(os, e.time_sec);
        for (double v : e.column) put_f64(os, v);
        break;
      case rt::Event::Type::kCount:
        os << "cnt:" << e.columns_seen << ':';
        put_f64(os, e.spatial_variance);
        break;
      case rt::Event::Type::kBits:
        os << "bit:";
        for (const auto& b : e.bits) {
          os << static_cast<int>(b.value) << ':';
          put_f64(os, b.time_sec);
          put_f64(os, b.snr_db);
        }
        break;
      case rt::Event::Type::kTracks:
        os << "trk:" << e.num_confirmed << ':' << e.columns_seen;
        break;
      case rt::Event::Type::kFinished:
        os << "fin:" << e.columns_seen << ':' << e.num_confirmed << ':';
        put_f64(os, e.spatial_variance);
        break;
      case rt::Event::Type::kError:
        os << "err:" << error_code_name(e.code);
        break;
      case rt::Event::Type::kRecovered:
        os << "rec:" << e.restarts;
        break;
      case rt::Event::Type::kOverload:
        os << "ovl:" << e.degraded << ':' << e.fidelity;
        break;
      case rt::Event::Type::kStalled:
      case rt::Event::Type::kStats:
        continue;  // wall-clock driven: excluded from parity logs
    }
    os << '\n';
  }
  return os.str();
}

/// A cheap deterministic chunked feed (no room simulation).
inline sim::ChunkedTrace make_feed(std::size_t samples, std::uint64_t seed,
                                   std::size_t chunk_len) {
  sim::TraceResult tr;
  tr.h = sim::synthetic_mover_trace(samples, seed, 0.4);
  tr.sample_rate_hz = 312.5;
  return sim::ChunkedTrace(std::move(tr), chunk_len);
}

}  // namespace wivi::nettest
