// Track lifecycle and association edge cases: birth/confirmation
// thresholds, tentative and confirmed death, coasting through dropped
// detections, and identity preservation through a crossing — on scripted
// images (exact control of detections per column) and on the synthetic
// crossing trace (full MUSIC path).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "src/core/tracker.hpp"
#include "src/sim/synthetic.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi {
namespace {

using track::MultiTargetTracker;
using track::TrackState;

/// Scripted angle-time image: column c holds dB bumps at
/// scripted[c] = {(angle, db), ...} over a unit floor, 0.1 s per column.
core::AngleTimeImage scripted_image(
    const std::vector<std::vector<std::pair<double, double>>>& scripted) {
  core::AngleTimeImage img;
  img.angles_deg = core::angle_grid_deg(1.0);
  for (std::size_t c = 0; c < scripted.size(); ++c) {
    RVec col(img.angles_deg.size(), 1.0);
    for (const auto& [angle, db] : scripted[c]) {
      const auto idx = static_cast<std::size_t>(std::lround(angle + 90.0));
      col[idx] = std::pow(10.0, db / 10.0);
    }
    img.columns.push_back(std::move(col));
    img.model_orders.push_back(1);
    img.times_sec.push_back(0.1 * static_cast<double>(c));
  }
  return img;
}

MultiTargetTracker::Config test_config() {
  MultiTargetTracker::Config cfg;
  cfg.confirm_columns = 3;
  cfg.max_coast_columns = 5;
  cfg.tentative_max_misses = 2;
  return cfg;
}

TEST(TrackLifecycle, ConfirmationRequiresConsecutiveHits) {
  // A target present for exactly confirm_columns columns.
  std::vector<std::vector<std::pair<double, double>>> script(
      5, {{30.0, 15.0}});
  const auto img = scripted_image(script);
  MultiTargetTracker tracker(test_config());

  auto snaps = tracker.step(img, 0);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].state, TrackState::kTentative);
  EXPECT_EQ(tracker.num_confirmed(), 0u);

  tracker.step(img, 1);
  EXPECT_EQ(tracker.snapshots()[0].state, TrackState::kTentative);

  snaps = tracker.step(img, 2);  // third consecutive hit -> confirmed
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].state, TrackState::kConfirmed);
  EXPECT_EQ(tracker.num_confirmed(), 1u);
  EXPECT_EQ(snaps[0].id, 1);
}

TEST(TrackLifecycle, TentativeClutterDiesQuickly) {
  // One blip, then nothing: the tentative track must die after
  // tentative_max_misses columns and never confirm.
  std::vector<std::vector<std::pair<double, double>>> script(6);
  script[0] = {{-50.0, 12.0}};
  const auto img = scripted_image(script);
  MultiTargetTracker tracker(test_config());
  for (std::size_t t = 0; t < img.num_times(); ++t) tracker.step(img, t);
  EXPECT_TRUE(tracker.snapshots().empty());
  const auto histories = tracker.histories();
  ASSERT_EQ(histories.size(), 1u);
  EXPECT_FALSE(histories[0].confirmed_ever);
  EXPECT_EQ(histories[0].state, TrackState::kDead);
  // Born at column 0, coasted misses at 1 — dead by column 2.
  EXPECT_LE(histories[0].times_sec.size(), 2u);
}

TEST(TrackLifecycle, CoastsThroughADroppedDetectionGap) {
  // Target at +40 moving slowly, detections dropped for 4 columns
  // (< max_coast_columns = 5): the same id must coast through and
  // re-acquire.
  std::vector<std::vector<std::pair<double, double>>> script;
  for (int c = 0; c < 8; ++c) script.push_back({{40.0 + 0.5 * c, 15.0}});
  for (int c = 0; c < 4; ++c) script.push_back({});  // the gap
  for (int c = 12; c < 20; ++c) script.push_back({{40.0 + 0.5 * c, 15.0}});
  const auto img = scripted_image(script);

  MultiTargetTracker tracker(test_config());
  bool saw_coasting = false;
  int coasting_id = 0;
  for (std::size_t t = 0; t < img.num_times(); ++t) {
    const auto& snaps = tracker.step(img, t);
    for (const auto& s : snaps)
      if (s.state == TrackState::kCoasting) {
        saw_coasting = true;
        coasting_id = s.id;
      }
  }
  EXPECT_TRUE(saw_coasting);
  const auto& snaps = tracker.snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].state, TrackState::kConfirmed);
  EXPECT_EQ(snaps[0].id, coasting_id);
  // One single track ever — the gap did not split the identity.
  EXPECT_EQ(tracker.histories().size(), 1u);
  EXPECT_NEAR(snaps[0].angle_deg, 40.0 + 0.5 * 19, 1.5);
}

TEST(TrackLifecycle, ConfirmedTrackDiesAfterCoastBudget) {
  std::vector<std::vector<std::pair<double, double>>> script;
  for (int c = 0; c < 6; ++c) script.push_back({{-25.0, 15.0}});
  for (int c = 0; c < 10; ++c) script.push_back({});  // gone for good
  const auto img = scripted_image(script);
  MultiTargetTracker tracker(test_config());
  std::size_t died_at = 0;
  for (std::size_t t = 0; t < img.num_times(); ++t) {
    tracker.step(img, t);
    if (died_at == 0 && tracker.snapshots().empty()) died_at = t;
  }
  EXPECT_TRUE(tracker.snapshots().empty());
  // Last hit at column 5; coast budget 5 -> dead on the 6th miss (col 11).
  EXPECT_EQ(died_at, 11u);
  const auto histories = tracker.histories();
  ASSERT_EQ(histories.size(), 1u);
  EXPECT_TRUE(histories[0].confirmed_ever);
  EXPECT_EQ(histories[0].state, TrackState::kDead);
}

TEST(TrackLifecycle, ScriptedCrossingKeepsDistinctIds) {
  // Two targets crossing at +35: one climbs 20 -> 50, one descends
  // 50 -> 20, merging into a single detection for the few columns where
  // they are closer than the detector's separation limit.
  std::vector<std::vector<std::pair<double, double>>> script;
  const int cols = 31;
  for (int c = 0; c < cols; ++c) {
    const double up = 20.0 + c;
    const double down = 50.0 - c;
    if (std::abs(up - down) < 2.0)
      script.push_back({{(up + down) / 2.0, 18.0}});  // merged
    else
      script.push_back({{up, 15.0}, {down, 14.0}});
  }
  const auto img = scripted_image(script);

  MultiTargetTracker tracker(test_config());
  for (std::size_t t = 0; t < img.num_times(); ++t) tracker.step(img, t);

  const auto& snaps = tracker.snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_NE(snaps[0].id, snaps[1].id);
  // Identity check: the track that started low ends high and vice versa.
  std::map<int, std::pair<double, double>> first_last;
  for (const auto& h : tracker.histories())
    if (h.confirmed_ever)
      first_last[h.id] = {h.angles_deg.front(), h.angles_deg.back()};
  ASSERT_EQ(first_last.size(), 2u);
  for (const auto& [id, fl] : first_last) {
    if (fl.first < 35.0)
      EXPECT_GT(fl.second, 44.0) << "climbing track " << id;
    else
      EXPECT_LT(fl.second, 26.0) << "descending track " << id;
  }
}

TEST(TrackLifecycle, SyntheticCrossingTraceKeepsStableIds) {
  // Full pipeline: MUSIC image of the canonical three-mover scenario (two
  // movers crossing near +35 degrees, one steady at -30), then the
  // multi-target tracker over it.
  const CVec h = sim::synthetic_crossing_trace(12.0, 1234);
  const core::MotionTracker imager;
  const core::AngleTimeImage img = imager.process(h);

  const auto histories = track::track_image(img);
  std::vector<const track::TrackHistory*> confirmed;
  for (const auto& tr : histories)
    if (tr.confirmed_ever) confirmed.push_back(&tr);
  ASSERT_EQ(confirmed.size(), 3u) << "one track per mover";

  // Each track must span (almost) the whole trace: no identity was lost
  // and re-born at the crossing.
  for (const auto* tr : confirmed)
    EXPECT_GT(tr->times_sec.back() - tr->times_sec.front(), 10.0);

  // The crossing movers exchanged angle bands while keeping their ids.
  bool saw_up = false, saw_down = false, saw_steady = false;
  for (const auto* tr : confirmed) {
    const double a0 = tr->angles_deg.front();
    const double a1 = tr->angles_deg.back();
    if (a0 < -20.0 && a1 < -20.0) saw_steady = true;
    if (a0 > 0.0 && a0 < 30.0 && a1 > 50.0) saw_up = true;
    if (a0 > 50.0 && a1 > 0.0 && a1 < 30.0) saw_down = true;
  }
  EXPECT_TRUE(saw_steady);
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
}

}  // namespace
}  // namespace wivi
