// Unit tests for wivi::hw - ADC quantization/saturation and TX/RX chains.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/hw/adc.hpp"
#include "src/hw/chains.hpp"
#include "src/hw/usrp.hpp"

namespace wivi::hw {
namespace {

// ----------------------------------------------------------------- ADC ---

TEST(Adc, QuantizesToLsbGrid) {
  const Adc adc(8, 1.0);
  const double lsb = adc.lsb();
  const cdouble q = adc.quantize({0.3337, -0.1234});
  EXPECT_NEAR(std::fmod(std::abs(q.real()), lsb), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(q.real() - 0.3337), 0.0, lsb / 2 + 1e-12);
}

TEST(Adc, SaturatesAtFullScale) {
  const Adc adc(12, 1.0);
  const cdouble q = adc.quantize({2.5, -3.0});
  EXPECT_DOUBLE_EQ(q.real(), 1.0);
  EXPECT_DOUBLE_EQ(q.imag(), -1.0);
}

TEST(Adc, ConvertCountsSaturatedSamples) {
  const Adc adc(12, 1.0);
  const CVec x = {{0.5, 0.5}, {1.5, 0.0}, {0.0, -2.0}, {0.1, 0.1}};
  const Adc::Result r = adc.convert(x);
  EXPECT_EQ(r.saturated_count, 2u);
  EXPECT_TRUE(r.saturated());
}

TEST(Adc, SmallSignalBelowLsbVanishes) {
  // The flash effect in miniature: a signal below the quantization step of
  // a coarse converter reads as zero (paper §1: minute variations are lost).
  const Adc adc(4, 1.0);
  const cdouble tiny{adc.lsb() / 4.0, -adc.lsb() / 4.0};
  const cdouble q = adc.quantize(tiny);
  EXPECT_DOUBLE_EQ(q.real(), 0.0);
  EXPECT_DOUBLE_EQ(q.imag(), 0.0);
}

TEST(Adc, MoreBitsMeansFinerLsb) {
  EXPECT_LT(Adc(14, 1.0).lsb(), Adc(8, 1.0).lsb());
  EXPECT_NEAR(Adc(12, 1.0).dynamic_range_db(), 72.24, 0.01);
}

TEST(Adc, QuantizationErrorBoundedByHalfLsb) {
  const Adc adc(10, 1.0);
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const cdouble x{rng.uniform(-0.99, 0.99), rng.uniform(-0.99, 0.99)};
    const cdouble q = adc.quantize(x);
    EXPECT_LE(std::abs(q.real() - x.real()), adc.lsb() / 2 + 1e-12);
    EXPECT_LE(std::abs(q.imag() - x.imag()), adc.lsb() / 2 + 1e-12);
  }
}

TEST(Adc, RejectsBadConfig) {
  EXPECT_THROW(Adc(1, 1.0), InvalidArgument);
  EXPECT_THROW(Adc(12, 0.0), InvalidArgument);
  EXPECT_THROW(Adc(12, -1.0), InvalidArgument);
}

// -------------------------------------------------------------- Chains ---

TEST(TxChain, AppliesGainBelowClip) {
  const TxChain tx(6.0, 100.0);
  const CVec x = {{1.0, 0.0}, {0.0, -1.0}};
  const TxChain::Result r = tx.process(x);
  EXPECT_EQ(r.clipped_count, 0u);
  EXPECT_NEAR(std::abs(r.samples[0]), db_to_amp(6.0), 1e-12);
}

TEST(TxChain, ClipsAmplitudePreservingPhase) {
  const TxChain tx(0.0, 1.0);
  const CVec x = {{3.0, 4.0}};  // |x| = 5, phase preserved at |1|
  const TxChain::Result r = tx.process(x);
  EXPECT_EQ(r.clipped_count, 1u);
  EXPECT_NEAR(std::abs(r.samples[0]), 1.0, 1e-12);
  EXPECT_NEAR(std::arg(r.samples[0]), std::arg(x[0]), 1e-12);
}

TEST(TxChain, TwelveDbBoostStaysLinearAtUsrpHeadroom) {
  // The paper's §4.1.2 footnote: the 12 dB boost is chosen to stay within
  // the USRP linear range. Unit-amplitude input, clip sized with 12.5 dB
  // of headroom -> +12 dB OK, +14 dB clips.
  const double clip = db_to_amp(12.5);
  const CVec x = {{1.0, 0.0}};
  TxChain tx(kPowerBoostDb, clip);
  EXPECT_FALSE(tx.would_clip(x));
  tx.set_gain_db(14.0);
  EXPECT_TRUE(tx.would_clip(x));
}

TEST(RxChain, AppliesGain) {
  const RxChain rx(20.0);
  const CVec y = rx.process(CVec{{0.01, 0.0}});
  EXPECT_NEAR(y[0].real(), 0.1, 1e-12);
}

TEST(RxChain, ZeroGainIsIdentity) {
  const RxChain rx(0.0);
  const CVec x = {{0.3, -0.7}, {1.0, 2.0}};
  const CVec y = rx.process(x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-15);
}

TEST(Usrp, ConstantsMatchPaper) {
  EXPECT_DOUBLE_EQ(kPowerBoostDb, 12.0);           // §4.1.2 footnote
  EXPECT_DOUBLE_EQ(kUsrpLinearTxPowerWatts, 0.02); // §7.5: ~20 mW
  EXPECT_DOUBLE_EQ(kWifiMaxTxPowerWatts, 0.10);    // §7.5: 100 mW
}

}  // namespace
}  // namespace wivi::hw
