// Capture/replay: WVCP file round trips (synchronous and ring-drained
// writer), torn-tail tolerance, foreign-file rejection, and the headline
// determinism claim — replaying a capture through the shared Demux path
// reproduces the live run bit for bit, at the chunk level and all the way
// through the engine's typed event stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/net/capture.hpp"
#include "src/net/frame.hpp"
#include "src/net/ingest.hpp"
#include "src/net/reassembler.hpp"
#include "src/net/wire_fault.hpp"
#include "src/rt/engine.hpp"
#include "tests/net_test_util.hpp"

namespace wivi {
namespace {

namespace fs = std::filesystem;

/// A unique path under the system temp dir, removed on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& tag)
      : path((fs::temp_directory_path() /
              ("wivi_capture_" + tag + "_" +
               std::to_string(static_cast<unsigned>(::getpid())) + ".wvcp"))
                 .string()) {}
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
};

CVec ramp_chunk(std::size_t n, double base = 0.0) {
  CVec c(n);
  for (std::size_t i = 0; i < n; ++i)
    c[i] = cdouble(base + static_cast<double>(i), -static_cast<double>(i));
  return c;
}

std::vector<net::CaptureRecord> read_all(const std::string& path,
                                         bool* truncated = nullptr) {
  net::CaptureReader reader(path);
  std::vector<net::CaptureRecord> out;
  net::CaptureRecord rec;
  while (reader.next(rec)) out.push_back(rec);
  if (truncated) *truncated = reader.truncated();
  return out;
}

TEST(Capture, SyncWriterReaderRoundTrip) {
  TempFile f("sync");
  std::vector<net::CaptureRecord> written;
  {
    net::CaptureWriter::Config cfg;
    cfg.synchronous = true;
    net::CaptureWriter w(f.path, cfg);
    for (std::uint64_t seq = 0; seq < 10; ++seq) {
      const auto frames = net::chunk_to_frames(3, seq, ramp_chunk(8, seq));
      w.append(static_cast<std::int64_t>(1000 + seq), frames[0]);
      written.push_back(
          {static_cast<std::int64_t>(1000 + seq), frames[0]});
    }
    EXPECT_EQ(w.records(), 10u);
    EXPECT_EQ(w.drops(), 0u);
  }  // destructor closes

  bool truncated = true;
  const auto got = read_all(f.path, &truncated);
  EXPECT_FALSE(truncated);
  ASSERT_EQ(got.size(), written.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].arrival_ns, written[i].arrival_ns);
    EXPECT_EQ(got[i].frame, written[i].frame);
  }
}

TEST(Capture, AsyncWriterDrainsEverythingOnClose) {
  TempFile f("async");
  const std::size_t n = 500;
  {
    net::CaptureWriter w(f.path);  // default: ring + writer thread
    for (std::uint64_t seq = 0; seq < n; ++seq)
      w.append(static_cast<std::int64_t>(seq),
               net::chunk_to_frames(1, seq, ramp_chunk(4))[0]);
    w.close();
    EXPECT_EQ(w.records() + w.drops(), n);
    EXPECT_EQ(w.drops(), 0u);  // ring (1024) never fills at this rate
  }
  const auto got = read_all(f.path);
  EXPECT_EQ(got.size(), n);
}

TEST(Capture, TornTailReplaysIntactPrefix) {
  TempFile f("torn");
  {
    net::CaptureWriter::Config cfg;
    cfg.synchronous = true;
    net::CaptureWriter w(f.path, cfg);
    for (std::uint64_t seq = 0; seq < 5; ++seq)
      w.append(0, net::chunk_to_frames(1, seq, ramp_chunk(4))[0]);
  }
  // Chop a few bytes off the last record, as a crash mid-write would.
  const auto size = fs::file_size(f.path);
  fs::resize_file(f.path, size - 7);

  bool truncated = false;
  const auto got = read_all(f.path, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(got.size(), 4u);  // the intact prefix survives
}

TEST(Capture, RejectsForeignAndUnsupportedFiles) {
  EXPECT_THROW(net::CaptureReader("/nonexistent/path/x.wvcp"), TypedError);

  TempFile junk("junk");
  {
    std::ofstream out(junk.path, std::ios::binary);
    out << "this is not a capture file at all";
  }
  EXPECT_THROW(net::CaptureReader{junk.path}, TypedError);

  // Right magic, future version.
  TempFile v2("v2");
  {
    std::ofstream out(v2.path, std::ios::binary);
    const unsigned char hdr[8] = {'W', 'V', 'C', 'P', 0x02, 0x00, 0x00, 0x00};
    out.write(reinterpret_cast<const char*>(hdr), 8);
  }
  try {
    net::CaptureReader reader(v2.path);
    FAIL() << "version 2 file accepted";
  } catch (const TypedError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
  }
}

/// Collects delivered chunks for byte comparison between live and replay.
struct ChunkLog {
  std::string log;
  net::ChunkSink sink() {
    return [this](std::uint32_t sensor, std::uint64_t seq, CVec&& chunk) {
      log += "s" + std::to_string(sensor) + ":q" + std::to_string(seq) + ":";
      const std::size_t old = log.size();
      log.resize(old + chunk.size() * sizeof(cdouble));
      if (!chunk.empty())
        std::memcpy(log.data() + old, chunk.data(),
                    chunk.size() * sizeof(cdouble));
      return true;
    };
  }
  net::EndSink end_sink() {
    return [this](std::uint32_t sensor) {
      log += "end" + std::to_string(sensor) + ";";
    };
  }
};

TEST(Capture, ReplayMatchesLiveDemuxBitExact) {
  // A faulted wire (drops, dups, reorder, truncation, corruption) feeds
  // the live path; accepted frames are captured. Replay must land every
  // chunk byte-identically and reproduce the reassembly accounting.
  TempFile f("parity");
  net::Reassembler::Config rcfg;
  rcfg.window_chunks = 4;

  ChunkLog live;
  net::Demux demux(rcfg, live.sink(), live.end_sink());
  net::WireFaultSpec spec;
  spec.seed = 2026;
  spec.drop_prob = 0.1;
  spec.duplicate_prob = 0.1;
  spec.reorder_prob = 0.2;
  spec.truncate_prob = 0.05;
  spec.corrupt_prob = 0.05;
  net::FaultyWire wire(spec);

  std::uint64_t accepted = 0, rejected = 0;
  {
    net::CaptureWriter::Config wcfg;
    wcfg.synchronous = true;
    net::CaptureWriter writer(f.path, wcfg);
    const auto deliver = [&](std::vector<std::byte>&& frame) {
      net::FrameView v;
      if (net::parse_frame(frame, v) == net::ParseStatus::kOk) {
        demux.feed(v);
        writer.append(static_cast<std::int64_t>(accepted), frame);
        ++accepted;
      } else {
        ++rejected;  // a truncated/corrupted frame: typed reject, no tap
      }
    };
    for (std::uint64_t seq = 0; seq < 80; ++seq) {
      for (const auto& frame :
           net::chunk_to_frames(5, seq, ramp_chunk(40, seq), 256))
        wire.feed(frame, deliver);
    }
    for (const auto& frame : net::chunk_to_frames(
             5, 80, CVec{}, net::kMaxPayloadBytes, net::kFlagEndOfStream))
      wire.feed(frame, deliver);
    wire.flush(deliver);
    demux.flush();
  }
  ASSERT_GT(accepted, 0u);
  EXPECT_GT(rejected, 0u);  // the fault spec must actually have bitten

  ChunkLog replayed;
  net::Replayer replayer(f.path, rcfg, replayed.sink(), replayed.end_sink());
  EXPECT_EQ(replayer.run(), accepted);
  EXPECT_EQ(replayer.parse_rejects(), 0u);  // capture stores accepted only

  EXPECT_EQ(live.log, replayed.log);  // bit-identical chunk stream

  const auto a = demux.stats();
  const auto b = replayer.demux().stats();
  EXPECT_EQ(a.frames_in, b.frames_in);
  EXPECT_EQ(a.chunks_delivered, b.chunks_delivered);
  EXPECT_EQ(a.chunks_evicted, b.chunks_evicted);
  EXPECT_EQ(a.chunk_gaps, b.chunk_gaps);
  EXPECT_EQ(a.frames_dup, b.frames_dup);
  EXPECT_EQ(a.bytes_delivered, b.bytes_delivered);
}

TEST(Capture, CorruptedCaptureRejectsLikeCorruptWire) {
  TempFile f("corrupt");
  {
    net::CaptureWriter::Config cfg;
    cfg.synchronous = true;
    net::CaptureWriter w(f.path, cfg);
    auto good = net::chunk_to_frames(1, 0, ramp_chunk(8))[0];
    w.append(0, good);
    auto bad = net::chunk_to_frames(1, 1, ramp_chunk(8))[0];
    bad[net::kHeaderSize + 1] ^= std::byte{0x80};  // stored bytes corrupt
    w.append(1, bad);
  }
  ChunkLog out;
  net::Replayer replayer(f.path, {}, out.sink(), out.end_sink());
  EXPECT_EQ(replayer.run(), 1u);
  EXPECT_EQ(replayer.parse_rejects(), 1u);
}

/// Run one engine fed by parsed frames (optionally capturing), drain it
/// and return the bit-exact event log of the single sensor's session.
std::string engine_event_log(const std::vector<std::vector<std::byte>>& frames,
                             std::size_t chunk_len,
                             const std::string& capture_path) {
  rt::Engine::Config ec;
  ec.num_threads = 1;
  rt::Engine engine(ec);

  net::EngineBinding::Config bc;
  bc.spec.count = api::CountStage{};
  bc.spec.guard.max_chunk_samples = chunk_len * 4;
  bc.ingest.ring_capacity = 8;
  bc.ingest.backpressure = rt::Backpressure::kBlock;
  net::EngineBinding binding(engine, bc);

  net::Demux demux({}, binding.sink(), binding.end_sink());
  std::unique_ptr<net::CaptureWriter> writer;
  if (!capture_path.empty()) {
    net::CaptureWriter::Config wcfg;
    wcfg.synchronous = true;
    writer = std::make_unique<net::CaptureWriter>(capture_path, wcfg);
  }
  std::int64_t t = 0;
  for (const auto& frame : frames) {
    net::FrameView v;
    if (net::parse_frame(frame, v) != net::ParseStatus::kOk) continue;
    demux.feed(v);
    if (writer) writer->append(t++, frame);
  }
  demux.flush();
  binding.close_all();
  engine.drain();

  std::vector<rt::Event> events;
  engine.poll(events);
  const auto id = binding.session(7);
  EXPECT_TRUE(id.has_value());
  return nettest::event_log(events, *id);
}

TEST(Capture, EngineEventStreamReplaysBitIdentically) {
  for (std::size_t chunk_len : {25u, 64u}) {
    // Build the full frame sequence of one sensor's stream.
    auto feed = nettest::make_feed(800, 77, chunk_len);
    std::vector<std::vector<std::byte>> frames;
    CVec chunk;
    std::uint64_t seq = 0;
    while (feed.next(chunk)) {
      for (auto& f : net::chunk_to_frames(7, seq, chunk, 256))
        frames.push_back(std::move(f));
      ++seq;
    }
    for (auto& f : net::chunk_to_frames(7, seq, CVec{}, net::kMaxPayloadBytes,
                                        net::kFlagEndOfStream))
      frames.push_back(std::move(f));

    TempFile f("engine" + std::to_string(chunk_len));
    const std::string live = engine_event_log(frames, chunk_len, f.path);
    ASSERT_FALSE(live.empty());

    // Replay the capture into a fresh engine; the typed event stream must
    // compare byte-equal to the live run.
    rt::Engine::Config ec;
    ec.num_threads = 1;
    rt::Engine engine(ec);
    net::EngineBinding::Config bc;
    bc.spec.count = api::CountStage{};
    bc.spec.guard.max_chunk_samples = chunk_len * 4;
    bc.ingest.ring_capacity = 8;
    bc.ingest.backpressure = rt::Backpressure::kBlock;
    net::EngineBinding binding(engine, bc);
    net::Replayer replayer(f.path, {}, binding.sink(), binding.end_sink());
    EXPECT_EQ(replayer.run(), frames.size());
    binding.close_all();
    engine.drain();

    std::vector<rt::Event> events;
    engine.poll(events);
    const auto id = binding.session(7);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(live, nettest::event_log(events, *id))
        << "chunk_len " << chunk_len;
  }
}

}  // namespace
}  // namespace wivi
