// Streaming-vs-batch parity for the multi-target tracking stage: a trace
// fed in arbitrary chunk sizes through rt::StreamingTracker +
// rt::StreamingMultiTracker must produce *bit-for-bit* the same tracks as
// the batch track::track_image() pass over the batch image — and the same
// holds through the full concurrent rt::Engine path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/core/tracker.hpp"
#include "src/rt/engine.hpp"
#include "src/rt/streaming.hpp"
#include "src/sim/synthetic.hpp"
#include "src/track/multi_tracker.hpp"

namespace wivi {
namespace {

void expect_histories_identical(const std::vector<track::TrackHistory>& batch,
                                const std::vector<track::TrackHistory>& other,
                                const std::string& label) {
  ASSERT_EQ(batch.size(), other.size()) << label;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& a = batch[i];
    const auto& b = other[i];
    ASSERT_EQ(a.id, b.id) << label;
    EXPECT_EQ(a.birth_column, b.birth_column) << label;
    EXPECT_EQ(a.state, b.state) << label;
    EXPECT_EQ(a.confirmed_ever, b.confirmed_ever) << label;
    ASSERT_EQ(a.times_sec.size(), b.times_sec.size()) << label;
    for (std::size_t k = 0; k < a.times_sec.size(); ++k) {
      ASSERT_EQ(a.times_sec[k], b.times_sec[k]) << label << " track " << a.id;
      ASSERT_EQ(a.angles_deg[k], b.angles_deg[k]) << label << " track " << a.id;
      ASSERT_EQ(a.updated[k], b.updated[k]) << label << " track " << a.id;
    }
  }
}

TEST(StreamingMultiTracker, BitForBitParityAcrossChunkSizes) {
  const CVec h = sim::synthetic_crossing_trace(8.0, 5);
  const core::MotionTracker imager;
  const core::AngleTimeImage batch_img = imager.process(h);
  const auto batch = track::track_image(batch_img);
  ASSERT_GT(batch.size(), 0u);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{25},
                                  std::size_t{137}, h.size()}) {
    rt::StreamingTracker image_stage(imager.config());
    rt::StreamingMultiTracker tracks;
    for (std::size_t pos = 0; pos < h.size(); pos += chunk) {
      const std::size_t len = std::min(chunk, h.size() - pos);
      image_stage.push(CSpan(h).subspan(pos, len));
      tracks.update(image_stage.image());
    }
    EXPECT_EQ(tracks.columns_seen(), batch_img.num_times());
    expect_histories_identical(batch, tracks.tracker().histories(),
                               "chunk=" + std::to_string(chunk));
  }
}

TEST(StreamingMultiTracker, SnapshotsMatchBatchTrackerAfterEveryColumn) {
  // Stepping the batch tracker and the streaming wrapper in lockstep must
  // agree on the live snapshots after every column.
  const CVec h = sim::synthetic_crossing_trace(4.0, 11);
  const core::MotionTracker imager;
  const core::AngleTimeImage img = imager.process(h);

  track::MultiTargetTracker reference;
  rt::StreamingTracker image_stage(imager.config());
  rt::StreamingMultiTracker streaming;
  std::size_t cols_checked = 0;
  for (std::size_t pos = 0; pos < h.size(); pos += 64) {
    image_stage.push(CSpan(h).subspan(pos, std::min<std::size_t>(64, h.size() - pos)));
    streaming.update(image_stage.image());
    while (cols_checked < streaming.columns_seen()) {
      reference.step(img, cols_checked);
      ++cols_checked;
    }
    ASSERT_EQ(streaming.snapshots().size(), reference.snapshots().size());
    for (std::size_t i = 0; i < reference.snapshots().size(); ++i) {
      const auto& a = reference.snapshots()[i];
      const auto& b = streaming.snapshots()[i];
      ASSERT_EQ(a.id, b.id);
      ASSERT_EQ(a.state, b.state);
      ASSERT_EQ(a.angle_deg, b.angle_deg);
      ASSERT_EQ(a.velocity_dps, b.velocity_dps);
    }
  }
  EXPECT_EQ(cols_checked, img.num_times());
}

TEST(EngineTracking, EngineSessionMatchesBatchBitForBit) {
  const CVec h = sim::synthetic_crossing_trace(6.0, 21);
  const core::MotionTracker imager;
  const auto batch = track::track_image(imager.process(h));

  rt::Engine engine({.num_threads = 2});
  rt::SessionConfig cfg;
  cfg.emit_columns = false;
  cfg.track_targets = true;
  cfg.backpressure = rt::Backpressure::kBlock;  // lossless: exact results
  const rt::SessionId id = engine.open_session(cfg);
  for (std::size_t pos = 0; pos < h.size(); pos += 200) {
    const std::size_t len = std::min<std::size_t>(200, h.size() - pos);
    CVec chunk(h.begin() + static_cast<std::ptrdiff_t>(pos),
               h.begin() + static_cast<std::ptrdiff_t>(pos + len));
    ASSERT_TRUE(engine.offer(id, std::move(chunk)));
  }
  engine.close_session(id);
  engine.drain();

  expect_histories_identical(batch, engine.multi_tracker(id).histories(),
                             "engine");

  // kTracks events were delivered and the last one agrees with the final
  // confirmed-target count.
  std::vector<rt::Event> events;
  engine.poll(events);
  std::size_t tracks_events = 0;
  std::size_t last_confirmed = 0;
  for (const auto& e : events) {
    if (e.type != rt::Event::Type::kTracks) continue;
    ++tracks_events;
    last_confirmed = e.num_confirmed;
  }
  EXPECT_GT(tracks_events, 0u);
  EXPECT_EQ(last_confirmed, engine.multi_tracker(id).num_confirmed());
}

}  // namespace
}  // namespace wivi
