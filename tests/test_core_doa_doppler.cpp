// Tests for the DoA estimator family (Bartlett / Capon / MUSIC), the
// Cholesky solver beneath Capon, the Doppler spectrogram processor, and
// the new sim bodies (robot, multipath ghosts).
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/core/doa.hpp"
#include "src/core/doppler.hpp"
#include "src/dsp/peaks.hpp"
#include "src/linalg/cholesky.hpp"
#include "src/sim/multipath.hpp"
#include "src/sim/robot.hpp"

namespace wivi {
namespace {

CVec mover(double vr, std::size_t n, const core::IsarConfig& cfg,
           double noise, Rng& rng) {
  CVec h(n);
  const double step = kTwoPi * 2.0 * vr * cfg.sample_period_sec / cfg.wavelength_m;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = step * static_cast<double>(i);
    h[i] = cdouble{std::cos(p), std::sin(p)} + rng.complex_gaussian(noise);
  }
  return h;
}

// ------------------------------------------------------------ Cholesky ---

linalg::CMatrix random_hpd(std::size_t n, Rng& rng) {
  // A = B B^H + n I is Hermitian positive definite.
  linalg::CMatrix b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.complex_gaussian();
  linalg::CMatrix a = b * b.hermitian();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(Cholesky, ReconstructsMatrix) {
  Rng rng(3);
  const linalg::CMatrix a = random_hpd(8, rng);
  const linalg::Cholesky chol(a);
  const linalg::CMatrix llh = chol.lower() * chol.lower().hermitian();
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      ASSERT_NEAR(std::abs(llh(i, j) - a(i, j)), 0.0, 1e-9);
}

TEST(Cholesky, SolveSatisfiesSystem) {
  Rng rng(4);
  const linalg::CMatrix a = random_hpd(12, rng);
  CVec b(12);
  for (auto& v : b) v = rng.complex_gaussian();
  const CVec x = linalg::solve_hpd(a, b);
  const CVec ax = a * CSpan(x);
  for (std::size_t i = 0; i < b.size(); ++i)
    ASSERT_NEAR(std::abs(ax[i] - b[i]), 0.0, 1e-9);
}

TEST(Cholesky, InverseQuadraticFormMatchesSolve) {
  Rng rng(5);
  const linalg::CMatrix a = random_hpd(6, rng);
  CVec b(6);
  for (auto& v : b) v = rng.complex_gaussian();
  const linalg::Cholesky chol(a);
  const CVec x = chol.solve(b);
  cdouble form{0.0, 0.0};
  for (std::size_t i = 0; i < b.size(); ++i) form += std::conj(b[i]) * x[i];
  EXPECT_NEAR(chol.inverse_quadratic_form(b), form.real(), 1e-9);
  EXPECT_NEAR(form.imag(), 0.0, 1e-9);
}

TEST(Cholesky, LogDeterminantOfIdentityIsZero) {
  const linalg::Cholesky chol(linalg::CMatrix::identity(5));
  EXPECT_NEAR(chol.log_determinant(), 0.0, 1e-12);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  linalg::CMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;  // indefinite
  EXPECT_THROW(linalg::Cholesky{a}, ComputeError);
}

// ----------------------------------------------------------------- DoA ---

class DoaMethodSweep : public ::testing::TestWithParam<core::DoaMethod> {};

TEST_P(DoaMethodSweep, SingleMoverPeaksAtTheRightAngle) {
  Rng rng(7);
  core::MusicConfig cfg;
  const CVec h = mover(0.5, 100, cfg.isar, 1e-4, rng);
  const core::DoaEstimator est(GetParam(), cfg);
  const RVec angles = core::angle_grid_deg(1.0);
  const RVec spec = est.spectrum(h, angles);
  EXPECT_NEAR(angles[dsp::argmax(spec)], 30.0, 4.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, DoaMethodSweep,
                         ::testing::Values(core::DoaMethod::kBartlett,
                                           core::DoaMethod::kCapon,
                                           core::DoaMethod::kMusic));

TEST(Doa, ResolutionOrderingBartlettCaponMusic) {
  // Classic result (Stoica & Moses): MUSIC <= Capon <= Bartlett beamwidth.
  Rng rng(8);
  core::MusicConfig cfg;
  const CVec h = mover(0.5, 100, cfg.isar, 1e-5, rng);
  const RVec angles = core::angle_grid_deg(0.5);

  auto width = [&](core::DoaMethod m) {
    const core::DoaEstimator est(m, cfg);
    const RVec spec = est.spectrum(h, angles);
    const std::size_t peak = dsp::argmax(spec);
    const double half = spec[peak] / 2.0;
    std::size_t lo = peak;
    std::size_t hi = peak;
    while (lo > 0 && spec[lo] > half) --lo;
    while (hi + 1 < spec.size() && spec[hi] > half) ++hi;
    return hi - lo;
  };
  const auto wb = width(core::DoaMethod::kBartlett);
  const auto wc = width(core::DoaMethod::kCapon);
  const auto wm = width(core::DoaMethod::kMusic);
  EXPECT_LE(wc, wb);
  EXPECT_LE(wm, wc);
}

// ------------------------------------------------------------- Doppler ---

TEST(Doppler, ToneLandsAtTheRadialDopplerFrequency) {
  Rng rng(9);
  core::IsarConfig isar;
  const double vr = 0.8;  // -> 2 v / lambda = 12.8 Hz
  const CVec h = mover(vr, 512, isar, 1e-6, rng);
  const core::DopplerProcessor proc;
  const core::DopplerSpectrogram spec = proc.process(h);
  ASSERT_GT(spec.num_times(), 0u);
  // Strongest bin across the whole spectrogram.
  double best = -1.0;
  double best_freq = 0.0;
  for (const RVec& col : spec.columns) {
    const std::size_t f = dsp::argmax(col);
    if (col[f] > best) {
      best = col[f];
      best_freq = spec.freqs_hz[f];
    }
  }
  EXPECT_NEAR(best_freq, 2.0 * vr / isar.wavelength_m, 3.0);
  EXPECT_NEAR(spec.mean_radial_speed_mps(12.0), vr, 0.15);
}

TEST(Doppler, StaticSceneHasLowMotionEnergy) {
  Rng rng(10);
  CVec h(512, cdouble{0.5, -0.2});  // pure DC
  for (auto& v : h) v += rng.complex_gaussian(1e-8);
  // Without DC removal the energy concentrates at 0 Hz -> tiny ratio.
  core::DopplerProcessor::Config keep_dc;
  keep_dc.remove_dc = false;
  EXPECT_LT(core::DopplerProcessor(keep_dc).process(h).motion_energy_ratio(12.0),
            0.05);
  // With DC removal only flat noise remains -> the CFAR statistic stays
  // near its noise-only level, far below the detection threshold.
  const core::DopplerProcessor proc;
  EXPECT_LT(proc.process(h).peak_over_floor(12.0),
            core::NarrowbandMotionDetector::Config{}.threshold_peak_over_floor);
}

TEST(Doppler, DetectorSeparatesMotionFromStatic) {
  Rng rng(11);
  core::IsarConfig isar;
  const core::NarrowbandMotionDetector detector;
  CVec moving = mover(0.7, 512, isar, 1e-6, rng);
  for (auto& v : moving) v += cdouble{0.5, 0.1};  // DC on top
  CVec still(512, cdouble{0.5, 0.1});
  for (auto& v : still) v += rng.complex_gaussian(1e-6);
  EXPECT_TRUE(detector.detect(moving).motion);
  EXPECT_FALSE(detector.detect(still).motion);
}

TEST(Doppler, ConfigValidation) {
  core::DopplerProcessor::Config bad;
  bad.fft_size = 48;
  EXPECT_THROW(core::DopplerProcessor{bad}, InvalidArgument);
  core::NarrowbandMotionDetector::Config bad_thr;
  bad_thr.threshold_peak_over_floor = 0.5;
  EXPECT_THROW(core::NarrowbandMotionDetector{bad_thr}, InvalidArgument);
}

// ---------------------------------------------------- Robot and ghosts ---

TEST(Robot, SingleRigidScatterPoint) {
  const sim::Robot robot(sim::patrol({0, 2}, {0, 4}, 0.5, 10.0, 0.01));
  const auto pts = robot.scatter_points(1.0);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_GT(pts[0].rcs_m2, 0.0);
}

TEST(Robot, PatrolBouncesBetweenEndpoints) {
  const rf::Trajectory t = sim::patrol({0, 2}, {0, 4}, 1.0, 10.0, 0.01);
  EXPECT_NEAR(t.position(0.0).y, 2.0, 1e-9);
  EXPECT_NEAR(t.position(2.0).y, 4.0, 0.02);   // one leg = 2 s
  EXPECT_NEAR(t.position(4.0).y, 2.0, 0.02);   // and back
  // Speed is constant at 1 m/s away from the turnarounds.
  EXPECT_NEAR(t.velocity(1.0).norm(), 1.0, 0.05);
}

TEST(Ghost, MirrorsAcrossSideWall) {
  const sim::Robot robot(sim::patrol({1.0, 2.0}, {1.0, 4.0}, 0.5, 10.0, 0.01));
  const sim::GhostReflection ghost(&robot, /*mirror_x=*/3.5, /*rcs_scale=*/0.1);
  const auto src = robot.scatter_points(0.0);
  const auto img = ghost.scatter_points(0.0);
  ASSERT_EQ(img.size(), src.size());
  EXPECT_NEAR(img[0].pos.x, 2.0 * 3.5 - src[0].pos.x, 1e-12);
  EXPECT_NEAR(img[0].pos.y, src[0].pos.y, 1e-12);
  EXPECT_NEAR(img[0].rcs_m2, src[0].rcs_m2 * 0.1, 1e-12);
}

TEST(Ghost, ValidatesArguments) {
  EXPECT_THROW(sim::GhostReflection(nullptr, 0.0), InvalidArgument);
  const sim::Robot robot(sim::patrol({0, 2}, {0, 4}, 0.5, 5.0, 0.01));
  EXPECT_THROW(sim::GhostReflection(&robot, 0.0, 1.5), InvalidArgument);
}

}  // namespace
}  // namespace wivi
