// End-to-end integration tests: full pipeline (scene -> nulling -> trace ->
// smoothed MUSIC -> tracking / counting / gesture decoding), reproducing the
// paper's headline behaviours at reduced trial counts (the full-size runs
// live in bench/).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/counting.hpp"
#include "src/dsp/stats.hpp"
#include "src/sim/protocols.hpp"

namespace wivi {
namespace {

TEST(Integration, NullingDepthLandsNearPaperMedian) {
  // Fig. 7-7: median ~40 dB, spread roughly 25-55 dB.
  RVec depths;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::CountingTrial trial;
    trial.room = sim::stata_conference_a();
    trial.num_humans = 0;
    trial.duration_sec = 4.0;
    trial.seed = seed;
    depths.push_back(sim::run_counting_trial(trial).effective_nulling_db);
  }
  const double median = dsp::median(depths);
  EXPECT_GT(median, 30.0);
  EXPECT_LT(median, 52.0);
}

TEST(Integration, SinglePersonTrackIsVisibleAndCurved) {
  // Fig. 5-2: one person produces a non-DC track whose angle varies.
  sim::CountingTrial trial;
  trial.room = sim::stata_conference_a();
  trial.num_humans = 1;
  trial.subjects = {3};
  trial.duration_sec = 10.0;
  trial.seed = 21;
  const sim::CountingResult r = sim::run_counting_trial(trial);

  const core::MotionTracker tracker;
  const RVec trace = tracker.dominant_angle_trace(r.image);
  int visible = 0;
  double lo = 1e9;
  double hi = -1e9;
  for (double a : trace) {
    if (std::isnan(a)) continue;
    ++visible;
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  // Most columns show the mover, and the angle spans a wide arc.
  EXPECT_GT(visible, static_cast<int>(trace.size()) / 2);
  EXPECT_GT(hi - lo, 40.0);
}

TEST(Integration, SpatialVarianceOrderingZeroThroughThree) {
  // Fig. 7-3's monotonicity at small scale: mean variance strictly
  // increases with the number of moving humans.
  double prev = -1.0;
  for (int n = 0; n <= 3; ++n) {
    double acc = 0.0;
    const int trials = 3;
    for (int t = 0; t < trials; ++t) {
      sim::CountingTrial trial;
      trial.room = t % 2 ? sim::stata_conference_b() : sim::stata_conference_a();
      trial.num_humans = n;
      trial.subjects = {t % 8, (t + 2) % 8, (t + 5) % 8};
      trial.duration_sec = 15.0;
      trial.seed = 7000 + static_cast<std::uint64_t>(100 * n + t);
      acc += sim::run_counting_trial(trial).spatial_variance;
    }
    const double mean_var = acc / trials;
    EXPECT_GT(mean_var, prev) << "n = " << n;
    prev = mean_var;
  }
}

TEST(Integration, GestureMessageRoundTripThroughHollowWall) {
  // §7.5 at 3 m: all gestures decode, no flips.
  sim::GestureTrial trial;
  trial.room = sim::stata_conference_a();
  trial.distance_m = 3.0;
  trial.subject_index = 1;
  trial.message = {core::Bit::kOne, core::Bit::kZero, core::Bit::kOne,
                   core::Bit::kOne};
  trial.seed = 31;
  const sim::GestureResult r = sim::run_gesture_trial(trial);
  EXPECT_EQ(r.flipped, 0);
  EXPECT_GE(r.correct, 3);  // at most one erasure tolerated in one trial
  for (double s : r.snr_zero_db) EXPECT_GT(s, 3.0);
  for (double s : r.snr_one_db) EXPECT_GT(s, 3.0);
}

TEST(Integration, GesturesFailBeyondNineMeters) {
  // Fig. 7-4: the SNR gate kills decoding at 9+ m.
  int decoded = 0;
  for (std::uint64_t seed = 41; seed <= 44; ++seed) {
    sim::GestureTrial trial;
    trial.room = sim::stata_conference_b();
    trial.distance_m = 9.5;
    trial.subject_index = static_cast<int>(seed % 4);
    trial.message = {core::Bit::kZero, core::Bit::kOne};
    trial.seed = seed;
    decoded += sim::run_gesture_trial(trial).correct;
  }
  EXPECT_LE(decoded, 1);  // essentially nothing gets through
}

TEST(Integration, SlantedGesturesKeepTheirShape) {
  // Fig. 6-2(c): stepping toward the wall without facing the device still
  // yields the right bits (smaller angles, same signs).
  sim::GestureTrial trial;
  trial.room = sim::stata_conference_a();
  trial.distance_m = 3.0;
  trial.subject_index = 2;
  trial.facing_offset_deg = 30.0;
  trial.message = {core::Bit::kZero, core::Bit::kOne};
  trial.seed = 51;
  const sim::GestureResult r = sim::run_gesture_trial(trial);
  EXPECT_EQ(r.flipped, 0);
  EXPECT_GE(r.correct, 1);
}

TEST(Integration, ConcreteWallDegradesButOftenWorks) {
  // Fig. 7-6: 8" concrete = 87.5% detection at 3 m vs 100% for hollow.
  int correct = 0;
  int total = 0;
  for (std::uint64_t seed = 61; seed <= 64; ++seed) {
    sim::GestureTrial trial;
    trial.room = sim::fairchild_room();
    trial.distance_m = 3.0;
    trial.subject_index = static_cast<int>(seed % 4);
    trial.message = {core::Bit::kZero};
    trial.seed = seed;
    const sim::GestureResult r = sim::run_gesture_trial(trial);
    correct += r.correct;
    total += 1;
    EXPECT_EQ(r.flipped, 0);
  }
  EXPECT_GE(correct, total / 2);  // mostly works, may drop some
}

TEST(Integration, ReinforcedConcreteBlocksWiVi) {
  // §7.6: "it would not be able to see through denser material like
  // re-enforced concrete" (40 dB one-way).
  sim::GestureTrial trial;
  trial.room = sim::room_with_material(rf::Material::kReinforcedConcrete);
  trial.distance_m = 3.0;
  trial.subject_index = 0;
  trial.message = {core::Bit::kZero, core::Bit::kOne};
  trial.seed = 71;
  const sim::GestureResult r = sim::run_gesture_trial(trial);
  EXPECT_EQ(r.correct, 0);
}

TEST(Integration, ErrorsAreErasuresNeverFlips) {
  // §7.5's strongest claim, across a mixed sweep of conditions.
  int flips = 0;
  std::uint64_t seed = 81;
  for (double d : {2.0, 5.0, 8.0, 9.0}) {
    sim::GestureTrial trial;
    trial.room = sim::stata_conference_b();
    trial.distance_m = d;
    trial.subject_index = static_cast<int>(seed % 4);
    trial.message = {core::Bit::kOne, core::Bit::kZero};
    trial.seed = seed++;
    flips += sim::run_gesture_trial(trial).flipped;
  }
  EXPECT_EQ(flips, 0);
}

TEST(Integration, ClassifierCrossRoomGeneralizes) {
  // §7.4 protocol in miniature: train in room A, test in room B. The
  // paper's strongest cross-room claim - empty vs. occupied is never
  // confused (Table 7.1 rows 0/1 are 100%) - must hold exactly; the
  // high-count rows are evaluated at full trial counts in bench_table_7_1.
  std::vector<core::VarianceClassifier::LabeledVariance> train;
  std::vector<std::pair<int, double>> test;
  for (int n : {0, 2}) {
    for (int t = 0; t < 2; ++t) {
      sim::CountingTrial a;
      a.room = sim::stata_conference_a();
      a.num_humans = n;
      a.subjects = {t, t + 2, t + 4};
      a.duration_sec = 18.0;
      a.seed = 9000 + static_cast<std::uint64_t>(n * 10 + t);
      train.push_back({n, sim::run_counting_trial(a).spatial_variance});

      sim::CountingTrial b = a;
      b.room = sim::stata_conference_b();
      b.seed += 5000;
      test.push_back({n, sim::run_counting_trial(b).spatial_variance});
    }
  }
  core::VarianceClassifier clf;
  clf.train(train);
  for (const auto& [label, var] : test)
    EXPECT_EQ(clf.classify(var), label) << "variance " << var;
}

}  // namespace
}  // namespace wivi
