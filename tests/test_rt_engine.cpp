// rt::Engine: multi-session determinism (results independent of thread
// count and interleaving), parity with the batch pipeline through the full
// engine path, backpressure accounting, and a concurrent-producer stress
// pass. This binary is what the TSan CI job runs — every synchronisation
// edge in the engine (ring handoff, claim flag, close/finalise, event
// queue) is exercised here under real concurrency.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/random.hpp"
#include "src/sim/synthetic.hpp"
#include "src/core/tracker.hpp"
#include "src/rt/engine.hpp"

namespace wivi {
namespace {

std::vector<CVec> make_session_traces(std::size_t sessions, std::size_t len) {
  std::vector<CVec> traces;
  traces.reserve(sessions);
  for (std::size_t s = 0; s < sessions; ++s)
    traces.push_back(
        sim::synthetic_mover_trace(len, 1000 + s, 0.3 + 0.1 * static_cast<double>(s)));
  return traces;
}

/// Feed every trace through an engine with the given thread count and
/// return each session's final image (chunk sizes vary per session so the
/// chunking itself is part of what must not matter).
std::vector<core::AngleTimeImage> run_engine(
    const std::vector<CVec>& traces, int num_threads,
    rt::Backpressure policy = rt::Backpressure::kBlock,
    std::size_t ring_capacity = 8) {
  rt::Engine::Config ec;
  ec.num_threads = num_threads;
  rt::Engine engine(ec);

  std::vector<rt::SessionId> ids;
  for (std::size_t s = 0; s < traces.size(); ++s) {
    rt::SessionConfig sc;
    sc.emit_columns = false;
    sc.count_movers = true;
    sc.ring_capacity = ring_capacity;
    sc.backpressure = policy;
    ids.push_back(engine.open_session(sc));
  }
  // Round-robin feeding interleaves the sessions like concurrent sensors.
  std::vector<std::size_t> pos(traces.size(), 0);
  bool any = true;
  std::size_t round = 0;
  while (any) {
    any = false;
    for (std::size_t s = 0; s < traces.size(); ++s) {
      if (pos[s] >= traces[s].size()) continue;
      const std::size_t chunk = 16 + 13 * s + 7 * (round % 3);
      const std::size_t len = std::min(chunk, traces[s].size() - pos[s]);
      CVec c(traces[s].begin() + static_cast<std::ptrdiff_t>(pos[s]),
             traces[s].begin() + static_cast<std::ptrdiff_t>(pos[s] + len));
      engine.offer(ids[s], std::move(c));
      pos[s] += len;
      any = true;
    }
    ++round;
  }
  for (rt::SessionId id : ids) engine.close_session(id);
  engine.drain();

  std::vector<core::AngleTimeImage> images;
  for (rt::SessionId id : ids) {
    EXPECT_TRUE(engine.stats(id).finished);
    images.push_back(engine.tracker(id).image());
  }
  return images;
}

void expect_images_identical(const core::AngleTimeImage& a,
                             const core::AngleTimeImage& b) {
  ASSERT_EQ(a.num_times(), b.num_times());
  ASSERT_EQ(a.num_angles(), b.num_angles());
  for (std::size_t t = 0; t < a.num_times(); ++t) {
    ASSERT_EQ(a.times_sec[t], b.times_sec[t]);
    ASSERT_EQ(a.model_orders[t], b.model_orders[t]);
    for (std::size_t x = 0; x < a.num_angles(); ++x)
      ASSERT_EQ(a.columns[t][x], b.columns[t][x]);
  }
}

TEST(Engine, MatchesBatchPipelineThroughOneSession) {
  const CVec h = sim::synthetic_mover_trace(1200, 77, 0.5);
  const core::MotionTracker tracker;
  const core::AngleTimeImage batch = tracker.process(h, 0.0);

  rt::Engine::Config ec;
  ec.num_threads = 2;
  rt::Engine engine(ec);
  rt::SessionConfig sc;
  sc.backpressure = rt::Backpressure::kBlock;
  sc.count_movers = true;
  const rt::SessionId id = engine.open_session(sc);
  for (std::size_t pos = 0; pos < h.size(); pos += 100) {
    CVec c(h.begin() + static_cast<std::ptrdiff_t>(pos),
           h.begin() +
               static_cast<std::ptrdiff_t>(std::min(pos + 100, h.size())));
    EXPECT_TRUE(engine.offer(id, std::move(c)));
  }
  engine.close_session(id);
  engine.drain();

  expect_images_identical(batch, engine.tracker(id).image());

  // The event stream carries every column exactly once, in order, plus a
  // final kFinished with the batch spatial variance.
  std::vector<rt::Event> events;
  engine.poll(events);
  std::size_t next_col = 0;
  bool finished = false;
  for (const rt::Event& e : events) {
    if (e.type == rt::Event::Type::kColumn) {
      EXPECT_EQ(e.column_index, next_col);
      EXPECT_EQ(e.time_sec, batch.times_sec[next_col]);
      ASSERT_EQ(e.column.size(), batch.num_angles());
      for (std::size_t a = 0; a < e.column.size(); ++a)
        EXPECT_EQ(e.column[a], batch.columns[next_col][a]);
      ++next_col;
    } else if (e.type == rt::Event::Type::kFinished) {
      finished = true;
      EXPECT_EQ(e.spatial_variance, core::spatial_variance(batch));
      EXPECT_EQ(e.columns_seen, batch.num_times());
    }
  }
  EXPECT_EQ(next_col, batch.num_times());
  EXPECT_TRUE(finished);
}

TEST(Engine, ResultsIndependentOfThreadCountAndInterleaving) {
  const auto traces = make_session_traces(5, 900);
  const auto one = run_engine(traces, 1);
  const auto two = run_engine(traces, 2);
  const auto many = run_engine(traces, 7);  // more threads than sessions
  ASSERT_EQ(one.size(), traces.size());
  for (std::size_t s = 0; s < traces.size(); ++s) {
    expect_images_identical(one[s], two[s]);
    expect_images_identical(one[s], many[s]);
    // And each equals the batch pipeline over the same samples.
    const core::MotionTracker tracker;
    expect_images_identical(tracker.process(traces[s], 0.0), one[s]);
  }
}

TEST(Engine, ConcurrentProducersStress) {
  // One producer thread per session feeding chunks of pseudo-random size
  // while the worker pool processes and steals — the TSan target. A couple
  // of sessions use the drop policy with tiny rings so the overflow path
  // runs concurrently too.
  constexpr std::size_t kSessions = 6;
  constexpr std::size_t kLen = 700;
  const auto traces = make_session_traces(kSessions, kLen);

  rt::Engine::Config ec;
  ec.num_threads = 3;
  rt::Engine engine(ec);

  std::vector<rt::SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    rt::SessionConfig sc;
    sc.emit_columns = (s % 2 == 0);
    sc.count_movers = true;
    sc.decode_gestures = (s % 3 == 0);
    if (s < 2) {
      sc.ring_capacity = 2;
      sc.backpressure = rt::Backpressure::kDropNewest;
    } else {
      sc.ring_capacity = 4;
      sc.backpressure = rt::Backpressure::kBlock;
    }
    ids.push_back(engine.open_session(sc));
  }

  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < kSessions; ++s) {
    producers.emplace_back([&, s] {
      Rng rng(9000 + s);
      std::size_t pos = 0;
      while (pos < traces[s].size()) {
        const std::size_t chunk =
            1 + static_cast<std::size_t>(rng() % 97);
        const std::size_t len = std::min(chunk, traces[s].size() - pos);
        CVec c(traces[s].begin() + static_cast<std::ptrdiff_t>(pos),
               traces[s].begin() + static_cast<std::ptrdiff_t>(pos + len));
        engine.offer(ids[s], std::move(c));
        pos += len;
      }
      engine.close_session(ids[s]);
    });
  }
  for (std::thread& t : producers) t.join();
  engine.drain();

  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto st = engine.stats(ids[s]);
    EXPECT_TRUE(st.finished);
    // Conservation: every offered sample was either processed or dropped.
    EXPECT_EQ(engine.tracker(ids[s]).samples_seen(),
              st.samples_in - st.samples_dropped);
    if (s >= 2) {
      EXPECT_EQ(st.samples_dropped, 0u) << "kBlock must not drop";
    }
    // Processed samples produce exactly the batch column count.
    const std::size_t n = engine.tracker(ids[s]).samples_seen();
    const auto& cfg = engine.tracker(ids[s]).config();
    const auto w = static_cast<std::size_t>(cfg.music.isar.window);
    const std::size_t expect_cols =
        n >= w ? (n - w) / static_cast<std::size_t>(cfg.hop) + 1 : 0;
    EXPECT_EQ(st.columns_out, expect_cols);
  }
}

TEST(Engine, CallbackDeliveryAndPerSessionOrder) {
  const auto traces = make_session_traces(3, 800);
  rt::Engine::Config ec;
  ec.num_threads = 3;
  rt::Engine engine(ec);

  std::mutex mu;
  std::map<rt::SessionId, std::vector<rt::Event>> per_session;
  engine.set_callback([&](rt::Event&& e) {
    std::lock_guard lk(mu);
    per_session[e.session].push_back(std::move(e));
  });

  std::vector<rt::SessionId> ids;
  for (std::size_t s = 0; s < traces.size(); ++s) {
    rt::SessionConfig sc;
    sc.count_movers = true;
    sc.backpressure = rt::Backpressure::kBlock;
    ids.push_back(engine.open_session(sc));
  }
  for (std::size_t s = 0; s < traces.size(); ++s) {
    for (std::size_t pos = 0; pos < traces[s].size(); pos += 50) {
      CVec c(traces[s].begin() + static_cast<std::ptrdiff_t>(pos),
             traces[s].begin() + static_cast<std::ptrdiff_t>(
                                     std::min(pos + 50, traces[s].size())));
      engine.offer(ids[s], std::move(c));
    }
    engine.close_session(ids[s]);
  }
  engine.drain();

  // poll() is a no-op with a callback installed.
  std::vector<rt::Event> polled;
  EXPECT_EQ(engine.poll(polled), 0u);

  for (rt::SessionId id : ids) {
    const auto& events = per_session[id];
    ASSERT_FALSE(events.empty());
    // Columns arrive in index order; the last event is kFinished.
    std::size_t next_col = 0;
    for (const rt::Event& e : events) {
      if (e.type == rt::Event::Type::kColumn) {
        EXPECT_EQ(e.column_index, next_col++);
      }
    }
    EXPECT_EQ(events.back().type, rt::Event::Type::kFinished);
    EXPECT_GT(next_col, 0u);
  }
}

TEST(Engine, ThrowingCallbackFailsOnlyItsSession) {
  const auto traces = make_session_traces(2, 600);
  rt::Engine::Config ec;
  ec.num_threads = 2;
  rt::Engine engine(ec);

  std::mutex mu;
  std::vector<rt::Event> good_events;
  rt::SessionId poison = 0;
  engine.set_callback([&](rt::Event&& e) {
    if (e.session == poison) throw std::runtime_error("downstream exploded");
    std::lock_guard lk(mu);
    good_events.push_back(std::move(e));
  });

  std::vector<rt::SessionId> ids;
  for (std::size_t s = 0; s < traces.size(); ++s) {
    rt::SessionConfig sc;
    sc.count_movers = true;
    sc.backpressure = rt::Backpressure::kBlock;
    ids.push_back(engine.open_session(sc));
  }
  poison = ids[0];
  for (std::size_t s = 0; s < traces.size(); ++s) {
    for (std::size_t pos = 0; pos < traces[s].size(); pos += 64) {
      CVec c(traces[s].begin() + static_cast<std::ptrdiff_t>(pos),
             traces[s].begin() + static_cast<std::ptrdiff_t>(
                                     std::min(pos + 64, traces[s].size())));
      engine.offer(ids[s], std::move(c));
    }
    engine.close_session(ids[s]);
  }
  // The poisoned session dies on its first event; drain() must still
  // return and the healthy session must be untouched.
  engine.drain();
  EXPECT_TRUE(engine.stats(ids[0]).finished);
  EXPECT_TRUE(engine.stats(ids[1]).finished);

  const core::MotionTracker tracker;
  expect_images_identical(tracker.process(traces[1], 0.0),
                          engine.tracker(ids[1]).image());
  std::lock_guard lk(mu);
  for (const rt::Event& e : good_events) EXPECT_EQ(e.session, ids[1]);
  EXPECT_EQ(good_events.back().type, rt::Event::Type::kFinished);
}

TEST(Engine, DeadSessionNeverEmitsASecondErrorOrAnyLaterEvent) {
  // Error-path lifecycle: once a session has died (kError delivered), no
  // worker may touch it again — in particular a stale pre-claim check must
  // not let a second worker process its still-filling ring and deliver
  // another kError (or any event) for the already-dead id. Poisoned
  // callbacks + concurrent producers + small rings widen the race window;
  // repeated engine lifetimes cover the construction/teardown edges too.
  constexpr std::size_t kSessions = 4;
  constexpr int kRounds = 15;
  const auto traces = make_session_traces(kSessions, 500);

  for (int round = 0; round < kRounds; ++round) {
    rt::Engine::Config ec;
    ec.num_threads = 3;
    ec.chunks_per_claim = 1;  // maximise claim churn
    rt::Engine engine(ec);

    std::mutex mu;
    std::map<rt::SessionId, std::vector<rt::Event::Type>> seen;
    engine.set_callback([&](rt::Event&& e) {
      {
        std::lock_guard lk(mu);
        seen[e.session].push_back(e.type);
      }
      // Every session's first kColumn poisons it.
      if (e.type == rt::Event::Type::kColumn)
        throw std::runtime_error("poisoned consumer");
    });

    std::vector<rt::SessionId> ids;
    for (std::size_t s = 0; s < kSessions; ++s) {
      rt::SessionConfig sc;
      sc.count_movers = true;
      sc.ring_capacity = 2;
      sc.backpressure = rt::Backpressure::kBlock;
      ids.push_back(engine.open_session(sc));
    }
    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < kSessions; ++s) {
      producers.emplace_back([&, s] {
        for (std::size_t pos = 0; pos < traces[s].size(); pos += 40) {
          CVec c(traces[s].begin() + static_cast<std::ptrdiff_t>(pos),
                 traces[s].begin() + static_cast<std::ptrdiff_t>(
                                         std::min(pos + 40, traces[s].size())));
          engine.offer(ids[s], std::move(c));
        }
        engine.close_session(ids[s]);
      });
    }
    for (std::thread& t : producers) t.join();
    engine.drain();

    std::lock_guard lk(mu);
    for (rt::SessionId id : ids) {
      EXPECT_TRUE(engine.stats(id).finished);
      const auto& events = seen[id];
      const std::size_t errors = static_cast<std::size_t>(
          std::count(events.begin(), events.end(), rt::Event::Type::kError));
      ASSERT_EQ(errors, 1u) << "session " << id << " round " << round;
      // kError is terminal: nothing may follow it.
      const auto first_err =
          std::find(events.begin(), events.end(), rt::Event::Type::kError);
      EXPECT_EQ(first_err + 1, events.end())
          << "session " << id << " got events after kError";
    }
  }
}

TEST(Engine, RejectsMisuse) {
  rt::Engine engine;  // default config
  EXPECT_THROW((void)engine.stats(0), std::exception);
  const rt::SessionId id = engine.open_session(rt::SessionConfig{});
  engine.close_session(id);
  EXPECT_THROW((void)engine.offer(id, CVec(10)), std::exception);
  engine.drain();
  EXPECT_TRUE(engine.stats(id).finished);
}

}  // namespace
}  // namespace wivi
