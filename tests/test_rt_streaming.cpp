// Streaming-vs-batch parity: a trace fed through the rt streaming stages
// in arbitrary chunk sizes must reproduce the batch results *bit for bit*
// — same doubles, not just close ones. This holds because the streaming
// path executes the identical arithmetic in the identical order (the
// SlidingCorrelation advance sequence is position-relabelled, never
// re-ordered), and it is the property the whole runtime's correctness
// rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/core/counting.hpp"
#include "src/core/gesture.hpp"
#include "src/core/tracker.hpp"
#include "src/rt/streaming.hpp"
#include "src/sim/experiment.hpp"
#include "src/sim/human.hpp"
#include "src/sim/room.hpp"
#include "src/sim/synthetic.hpp"

namespace wivi {
namespace {

// Traces come from sim::synthetic_mover_trace; the 6000-sample one is
// long enough to cross StreamingTracker's compaction threshold so the
// rebase path is covered too.

void expect_images_identical(const core::AngleTimeImage& batch,
                             const core::AngleTimeImage& streamed,
                             const char* label) {
  ASSERT_EQ(batch.num_times(), streamed.num_times()) << label;
  ASSERT_EQ(batch.num_angles(), streamed.num_angles()) << label;
  for (std::size_t a = 0; a < batch.num_angles(); ++a)
    ASSERT_EQ(batch.angles_deg[a], streamed.angles_deg[a]) << label;
  for (std::size_t t = 0; t < batch.num_times(); ++t) {
    ASSERT_EQ(batch.times_sec[t], streamed.times_sec[t]) << label << " col " << t;
    ASSERT_EQ(batch.model_orders[t], streamed.model_orders[t])
        << label << " col " << t;
    for (std::size_t a = 0; a < batch.num_angles(); ++a)
      ASSERT_EQ(batch.columns[t][a], streamed.columns[t][a])
          << label << " col " << t << " angle " << a;
  }
}

TEST(StreamingTracker, BitForBitParityAcrossChunkSizes) {
  const CVec h = sim::synthetic_mover_trace(6000);
  const double t0 = 3.25;
  const core::MotionTracker tracker;
  const core::AngleTimeImage batch = tracker.process(h, t0);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7},
                                  std::size_t{25}, std::size_t{100},
                                  std::size_t{137}, h.size()}) {
    rt::StreamingTracker streaming(tracker.config(), t0);
    std::size_t emitted = 0;
    for (std::size_t pos = 0; pos < h.size(); pos += chunk) {
      const std::size_t len = std::min(chunk, h.size() - pos);
      emitted += streaming.push(CSpan(h).subspan(pos, len));
    }
    EXPECT_EQ(emitted, batch.num_times());
    EXPECT_EQ(streaming.samples_seen(), h.size());
    const std::string label = "chunk=" + std::to_string(chunk);
    expect_images_identical(batch, streaming.image(), label.c_str());
  }
}

TEST(StreamingTracker, ResetStartsAFreshTrace) {
  const CVec h = sim::synthetic_mover_trace(500);
  rt::StreamingTracker streaming;
  streaming.push(h);
  ASSERT_GT(streaming.num_columns(), 0u);
  streaming.reset(1.0);
  EXPECT_EQ(streaming.num_columns(), 0u);
  EXPECT_EQ(streaming.samples_seen(), 0u);
  streaming.push(h);
  const core::MotionTracker tracker;
  expect_images_identical(tracker.process(h, 1.0), streaming.image(), "reset");
}

TEST(StreamingCounter, RunningVarianceMatchesBatch) {
  const CVec h = sim::synthetic_mover_trace(2000);
  const core::MotionTracker tracker;
  const core::AngleTimeImage batch = tracker.process(h, 0.0);
  const double batch_variance = core::spatial_variance(batch);

  rt::StreamingTracker streaming(tracker.config());
  rt::StreamingCounter counter;
  for (std::size_t pos = 0; pos < h.size(); pos += 64) {
    streaming.push(CSpan(h).subspan(pos, std::min<std::size_t>(64, h.size() - pos)));
    counter.update(streaming.image());
  }
  EXPECT_EQ(counter.columns_seen(), batch.num_times());
  EXPECT_EQ(counter.variance(), batch_variance) << "not bit-for-bit";
}

// adopt() preconditions are enforced, not doc-comments: a non-fresh
// tracker or a shape-mismatched / internally inconsistent image throws
// InvalidArgument instead of silently corrupting the stream state.

TEST(StreamingTrackerAdopt, AcceptsAMatchingImage) {
  const CVec h = sim::synthetic_mover_trace(600);
  const core::MotionTracker tracker;
  rt::StreamingTracker streaming;
  streaming.adopt(h, tracker.process(h, 0.0));
  EXPECT_EQ(streaming.samples_seen(), h.size());
  EXPECT_EQ(streaming.num_columns(), tracker.process(h, 0.0).num_times());
}

TEST(StreamingTrackerAdopt, RejectsANonFreshTracker) {
  const CVec h = sim::synthetic_mover_trace(600);
  core::AngleTimeImage img = core::MotionTracker().process(h, 0.0);
  rt::StreamingTracker streaming;
  streaming.push(CSpan(h).subspan(0, 10));  // no column yet, but not fresh
  EXPECT_THROW(streaming.adopt(h, std::move(img)), InvalidArgument);
}

TEST(StreamingTrackerAdopt, RejectsAWrongColumnCount) {
  const CVec h = sim::synthetic_mover_trace(600);
  core::AngleTimeImage img =
      core::MotionTracker().process(CSpan(h).subspan(0, 400), 0.0);
  rt::StreamingTracker streaming;
  EXPECT_THROW(streaming.adopt(h, std::move(img)), InvalidArgument);
}

TEST(StreamingTrackerAdopt, RejectsADifferentAngleGrid) {
  const CVec h = sim::synthetic_mover_trace(600);
  core::MotionTracker::Config coarse;
  coarse.angle_step_deg = 2.0;
  core::AngleTimeImage img = core::MotionTracker(coarse).process(h, 0.0);
  rt::StreamingTracker streaming;  // default 1-degree grid
  EXPECT_THROW(streaming.adopt(h, std::move(img)), InvalidArgument);
}

TEST(StreamingTrackerAdopt, RejectsAlteredAngleValues) {
  const CVec h = sim::synthetic_mover_trace(600);
  core::AngleTimeImage img = core::MotionTracker().process(h, 0.0);
  img.angles_deg.front() += 0.25;  // same size, different grid
  rt::StreamingTracker streaming;
  EXPECT_THROW(streaming.adopt(h, std::move(img)), InvalidArgument);
}

TEST(StreamingTrackerAdopt, RejectsAnInternallyInconsistentImage) {
  const CVec h = sim::synthetic_mover_trace(600);
  {
    core::AngleTimeImage img = core::MotionTracker().process(h, 0.0);
    img.times_sec.pop_back();  // times no longer cover every column
    rt::StreamingTracker streaming;
    EXPECT_THROW(streaming.adopt(h, std::move(img)), InvalidArgument);
  }
  {
    core::AngleTimeImage img = core::MotionTracker().process(h, 0.0);
    img.columns.back().pop_back();  // one column of the wrong height
    rt::StreamingTracker streaming;
    EXPECT_THROW(streaming.adopt(h, std::move(img)), InvalidArgument);
  }
}

/// Gesture parity runs on a real simulated gesture trial (the §7.5 setup,
/// three bits at 4 m) so the decoder actually has bits to find.
class StreamingGestureParity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(11);
    sim::Scene scene(sim::stata_conference_a(), sim::default_calibration(),
                     rng);
    const sim::SubjectParams params = sim::subject(1);
    profile_.step_length_m = params.step_length_m;
    profile_.step_duration_sec = params.step_duration_sec;

    const std::vector<core::Bit> message{core::Bit::kOne, core::Bit::kZero,
                                         core::Bit::kOne};
    const rf::Vec2 start{0.0, scene.wall_y() + 4.0};
    const double lead_in = 2.0;
    const auto steps = core::encode_message(message, profile_, lead_in);
    const double duration =
        lead_in + core::message_duration_sec(message.size(), profile_) + 3.0;
    scene.add_human(params,
                    sim::gesture_trajectory(start, scene.toward_device(start),
                                            steps, profile_, duration + 10.0,
                                            /*dt=*/0.01),
                    rng());

    sim::ExperimentRunner::Config cfg;
    cfg.trace_duration_sec = duration;
    sim::ExperimentRunner runner(scene, cfg, rng.fork());
    trace_ = new sim::TraceResult(runner.run());
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }

  static core::GestureProfile profile_;
  static sim::TraceResult* trace_;
};

core::GestureProfile StreamingGestureParity::profile_;
sim::TraceResult* StreamingGestureParity::trace_ = nullptr;

TEST_F(StreamingGestureParity, FlushDecodeEqualsBatchDecode) {
  const core::MotionTracker tracker;
  const core::AngleTimeImage batch_img =
      tracker.process(trace_->h, trace_->t0);
  core::GestureDecoder::Config dec_cfg;
  dec_cfg.profile = profile_;
  const core::GestureDecoder decoder(dec_cfg);
  const core::GestureDecoder::Result batch = decoder.decode(batch_img);
  ASSERT_GT(batch.bits.size(), 0u) << "trial produced no decodable bits";

  rt::StreamingTracker streaming(tracker.config(), trace_->t0);
  rt::StreamingGesture::Config gcfg;
  gcfg.decoder = dec_cfg;
  rt::StreamingGesture gesture(gcfg);

  std::vector<core::GestureDecoder::DecodedBit> emitted;
  const CSpan h(trace_->h);
  for (std::size_t pos = 0; pos < h.size(); pos += 73) {
    streaming.push(h.subspan(pos, std::min<std::size_t>(73, h.size() - pos)));
    for (auto& b : gesture.poll(streaming.image(), /*flush=*/false))
      emitted.push_back(b);
  }
  for (auto& b : gesture.poll(streaming.image(), /*flush=*/true))
    emitted.push_back(b);

  // The flush decode is the batch decode, exactly.
  const core::GestureDecoder::Result& flushed = gesture.result();
  ASSERT_EQ(flushed.bits.size(), batch.bits.size());
  for (std::size_t i = 0; i < batch.bits.size(); ++i) {
    EXPECT_EQ(flushed.bits[i].value, batch.bits[i].value);
    EXPECT_EQ(flushed.bits[i].time_sec, batch.bits[i].time_sec);
    EXPECT_EQ(flushed.bits[i].snr_db, batch.bits[i].snr_db);
  }
  ASSERT_EQ(flushed.symbols.size(), batch.symbols.size());
  ASSERT_EQ(flushed.matched_output.size(), batch.matched_output.size());
  for (std::size_t i = 0; i < batch.matched_output.size(); ++i)
    ASSERT_EQ(flushed.matched_output[i], batch.matched_output[i]);
  EXPECT_EQ(flushed.noise_sigma, batch.noise_sigma);

  // Every bit was emitted exactly once, in order.
  ASSERT_EQ(emitted.size(), batch.bits.size());
  for (std::size_t i = 0; i < batch.bits.size(); ++i) {
    EXPECT_EQ(emitted[i].value, batch.bits[i].value);
    EXPECT_EQ(emitted[i].time_sec, batch.bits[i].time_sec);
  }
}

}  // namespace
}  // namespace wivi
