// rt::SpscRing: capacity semantics, FIFO order, move-only payloads, and a
// two-thread stress pass (the single-ring half of what the TSan CI job
// checks; test_rt_engine stresses the full engine).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "src/rt/spsc_ring.hpp"

namespace wivi::rt {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(200).capacity(), 256u);
}

TEST(SpscRing, PushPopFifoAndFullEmpty) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.size(), 4u);
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(std::move(overflow)));
  EXPECT_EQ(overflow, 99) << "failed push must not consume its argument";

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapAroundKeepsOrder) {
  SpscRing<int> ring(4);
  int out = 0;
  int next = 0;
  // Interleave pushes and pops so the cursors lap the buffer many times.
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.try_push(round * 2));
    EXPECT_TRUE(ring.try_push(round * 2 + 1));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next++);
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next++);
  }
}

TEST(SpscRing, MonitoringCountersTrackPushesPopsAndDrops) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.pushes(), 0u);
  EXPECT_EQ(ring.pops(), 0u);
  EXPECT_EQ(ring.drops(), 0u);

  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.pushes(), 4u);

  // Rejected pushes advance drops() only — pushes() counts acceptances.
  int overflow = 7;
  EXPECT_FALSE(ring.try_push(std::move(overflow)));
  EXPECT_FALSE(ring.try_push(std::move(overflow)));
  EXPECT_EQ(ring.pushes(), 4u);
  EXPECT_EQ(ring.drops(), 2u);

  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(ring.pops(), 1u);
  // Room again: the next push succeeds and the drop count stays put.
  ASSERT_TRUE(ring.try_push(int{4}));
  EXPECT_EQ(ring.pushes(), 5u);
  EXPECT_EQ(ring.drops(), 2u);

  while (ring.try_pop(out)) {
  }
  EXPECT_EQ(ring.pops(), 5u);
  EXPECT_EQ(ring.pushes() - ring.pops(), 0u);
}

TEST(SpscRing, CountersAreReadableFromObserverThreads) {
  // pushes()/pops()/drops() are monitoring counters with an any-thread
  // read contract (the engine's stats() reads rings it does not own).
  // Each is monotone; a racing observer must only ever see values bounded
  // by what the two real sides have completed (a TSan target in CI).
  constexpr std::size_t kCount = 50000;
  SpscRing<std::size_t> ring(8);
  std::atomic<bool> done{false};
  std::atomic<bool> violated{false};

  std::thread observer([&] {
    std::uint64_t last_pushes = 0;
    std::uint64_t last_pops = 0;
    std::uint64_t last_drops = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::uint64_t pushes = ring.pushes();
      const std::uint64_t pops = ring.pops();
      const std::uint64_t drops = ring.drops();
      if (pushes < last_pushes || pops < last_pops || drops < last_drops)
        violated.store(true, std::memory_order_relaxed);
      last_pushes = pushes;
      last_pops = pops;
      last_drops = drops;
    }
  });
  std::thread producer([&] {
    for (std::size_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::size_t{i})) std::this_thread::yield();
    }
  });
  std::size_t popped = 0;
  std::size_t v = 0;
  while (popped < kCount) {
    if (ring.try_pop(v))
      ++popped;
    else
      std::this_thread::yield();
  }
  producer.join();
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_FALSE(violated.load()) << "a monitoring counter went backwards";
  EXPECT_EQ(ring.pushes(), kCount);
  EXPECT_EQ(ring.pops(), kCount);
}

TEST(SpscRing, MoveOnlyPayload) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscRing, SizeIsBoundedUnderConcurrentPushPop) {
  // size() is an estimate readable from *any* thread (the engine's
  // pre-claim check reads rings it does not own). The old implementation
  // could pair a fresh tail with a stale head mid-pop and wrap to a huge
  // value; this stress pins the contract size() <= capacity() under
  // concurrent push/pop with racing observers (a TSan target in CI).
  constexpr std::size_t kCount = 100000;
  SpscRing<std::size_t> ring(8);
  std::atomic<bool> done{false};
  std::atomic<bool> violated{false};

  std::vector<std::thread> observers;
  for (int o = 0; o < 2; ++o) {
    observers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t n = ring.size();
        if (n > ring.capacity()) violated.store(true, std::memory_order_relaxed);
      }
    });
  }
  std::thread producer([&] {
    for (std::size_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::size_t{i})) std::this_thread::yield();
      // The producer may read size() too (its side of the contract).
      if (ring.size() > ring.capacity()) violated.store(true);
    }
  });
  std::size_t popped = 0;
  std::size_t v = 0;
  while (popped < kCount) {
    if (ring.try_pop(v)) {
      ++popped;
      if (ring.size() > ring.capacity()) violated.store(true);
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : observers) t.join();
  EXPECT_FALSE(violated.load()) << "size() exceeded capacity";
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TwoThreadStressPreservesSequence) {
  constexpr std::size_t kCount = 200000;
  SpscRing<std::size_t> ring(64);

  std::thread producer([&] {
    for (std::size_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::size_t{i})) std::this_thread::yield();
    }
  });

  std::size_t expected = 0;
  std::size_t v = 0;
  while (expected < kCount) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace wivi::rt
