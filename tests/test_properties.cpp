// Property-based sweeps and failure injection across the library.
//
// These encode the paper's *laws* rather than point values: angular
// resolution scales with aperture (§1.2: "to achieve a narrow beam, the
// human needs to move by about 4 wavelengths"), nulling depth degrades
// monotonically with noise and quantization, decoding survives every
// subject and orientation, and bad inputs fail loudly instead of silently.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/constants.hpp"
#include "src/common/db.hpp"
#include "src/common/error.hpp"
#include "src/common/random.hpp"
#include "src/core/isar.hpp"
#include "src/core/music.hpp"
#include "src/core/nulling.hpp"
#include "src/dsp/peaks.hpp"
#include "src/phy/link.hpp"
#include "src/sim/protocols.hpp"

namespace wivi {
namespace {

CVec mover_with_noise(double vr, std::size_t n, const core::IsarConfig& cfg,
                      double noise_power, Rng& rng) {
  CVec h(n);
  const double step =
      kTwoPi * 2.0 * vr * cfg.sample_period_sec / cfg.wavelength_m;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = step * static_cast<double>(i);
    h[i] = cdouble{std::cos(p), std::sin(p)} + rng.complex_gaussian(noise_power);
  }
  return h;
}

double beam_width_deg(RSpan spectrum, RSpan angles) {
  const std::size_t peak = dsp::argmax(spectrum);
  const double half = spectrum[peak] / 2.0;
  std::size_t lo = peak;
  std::size_t hi = peak;
  while (lo > 0 && spectrum[lo] > half) --lo;
  while (hi + 1 < spectrum.size() && spectrum[hi] > half) ++hi;
  return angles[hi] - angles[lo];
}

// ---------------------------------------------------- Aperture physics ---

TEST(ApertureLaw, BeamNarrowsWithTargetMotion) {
  // §1.2: ISAR resolution depends on how far the target moves. Windows
  // spanning larger apertures (more wavelengths of motion) must give
  // monotonically narrower beams.
  Rng rng(1);
  const core::IsarConfig cfg;
  const RVec angles = core::angle_grid_deg(0.5);
  double prev_width = 1e9;
  for (std::size_t w : {16u, 32u, 64u, 128u}) {
    const CVec h = mover_with_noise(0.5, w, cfg, 1e-6, rng);
    const RVec spec = core::beamform_power(h, cfg, angles);
    const double width = beam_width_deg(spec, angles);
    EXPECT_LT(width, prev_width) << "window " << w;
    prev_width = width;
  }
}

TEST(ApertureLaw, FourWavelengthsGiveNarrowBeam) {
  // The paper's rule of thumb: ~4 wavelengths (~50 cm) of motion gives a
  // usefully narrow beam. 4 lambda of aperture = w * Delta = 0.5 m ->
  // w = 78 samples at the default spacing.
  Rng rng(2);
  const core::IsarConfig cfg;
  const RVec angles = core::angle_grid_deg(0.5);
  const auto w = static_cast<std::size_t>(
      std::round(4.0 * cfg.wavelength_m / core::element_spacing_m(cfg)));
  const CVec h = mover_with_noise(0.4, w, cfg, 1e-6, rng);
  const RVec spec = core::beamform_power(h, cfg, angles);
  EXPECT_LT(beam_width_deg(spec, angles), 20.0);
}

// --------------------------------------------------- MUSIC SNR sweep ---

class MusicSnrSweep : public ::testing::TestWithParam<double> {};

TEST_P(MusicSnrSweep, AngleEstimateStaysAccurate) {
  const double snr_db = GetParam();
  Rng rng(static_cast<std::uint64_t>(snr_db * 10.0) + 77);
  core::MusicConfig cfg;
  const CVec h =
      mover_with_noise(0.6, 100, cfg.isar, from_db(-snr_db), rng);
  const core::SmoothedMusic music(cfg);
  const RVec angles = core::angle_grid_deg(1.0);
  const RVec spec = music.pseudospectrum(h, angles);
  const double expected = std::asin(0.6) * 180.0 / kPi;
  EXPECT_NEAR(angles[dsp::argmax(spec)], expected, 4.0) << "SNR " << snr_db;
}

INSTANTIATE_TEST_SUITE_P(SnrLevels, MusicSnrSweep,
                         ::testing::Values(10.0, 15.0, 20.0, 30.0, 40.0));

// ----------------------------------------------- Nulling degradation ---

class NoisyLink final : public phy::SubcarrierLink {
 public:
  NoisyLink(double noise_power, std::uint64_t seed)
      : noise_power_(noise_power), rng_(seed) {}
  const phy::OfdmModem& modem() const override { return modem_; }
  CVec transceive(CSpan x0, CSpan x1) override {
    const auto n = static_cast<std::size_t>(modem_.num_subcarriers());
    const double g = db_to_amp(tx_) * db_to_amp(rx_);
    CVec y(n, cdouble{0.0, 0.0});
    for (int k : modem_.used_subcarriers()) {
      const auto i = static_cast<std::size_t>(k);
      y[i] = g * (h1_ * x0[i] + h2_ * x1[i]) + rng_.complex_gaussian(noise_power_);
    }
    now_ += modem_.symbol_duration_sec();
    return y;
  }
  bool last_rx_saturated() const override { return false; }
  void set_tx_gain_db(double v) override { tx_ = v; }
  double tx_gain_db() const override { return tx_; }
  void set_rx_gain_db(double v) override { rx_ = v; }
  double rx_gain_db() const override { return rx_; }
  double now() const override { return now_; }

 private:
  phy::OfdmModem modem_;
  cdouble h1_{0.02, -0.011};
  cdouble h2_{0.016, 0.008};
  double noise_power_;
  double tx_ = 0.0;
  double rx_ = 0.0;
  double now_ = 0.0;
  Rng rng_;
};

TEST(NullingLaw, DepthDegradesMonotonicallyWithNoise) {
  const core::Nuller nuller;
  double prev_depth = 1e9;
  for (double noise_db : {-140.0, -120.0, -100.0, -80.0}) {
    NoisyLink link(from_db(noise_db), 5);
    const auto r = nuller.run(link);
    EXPECT_LT(r.nulling_db, prev_depth + 3.0) << "noise " << noise_db;
    prev_depth = r.nulling_db;
  }
}

TEST(NullingLaw, SurvivesExtremeNoise) {
  // Failure injection: even with noise at the signal level the procedure
  // must terminate with finite results, not NaN or divide-by-zero.
  NoisyLink link(1e-3, 6);
  const core::Nuller nuller;
  const auto r = nuller.run(link);
  EXPECT_TRUE(std::isfinite(r.nulling_db));
  EXPECT_TRUE(std::isfinite(r.residual_power_db));
  EXPECT_GE(r.iterations_used, 0);
}

TEST(NullingLaw, MoreEstimationSymbolsNeverHurt) {
  RVec depths;
  for (int symbols : {1, 4, 16}) {
    core::Nuller::Config cfg;
    cfg.symbols_per_estimate = symbols;
    NoisyLink link(1e-9, 7);
    depths.push_back(core::Nuller(cfg).run(link).nulling_db);
  }
  // 16-symbol averaging must beat single-symbol estimation clearly.
  EXPECT_GT(depths[2], depths[0]);
}

// ------------------------------------------------- Gesture robustness ---

class GestureSubjectSweep : public ::testing::TestWithParam<int> {};

TEST_P(GestureSubjectSweep, EverySubjectDecodesAtThreeMeters) {
  sim::GestureTrial trial;
  trial.room = sim::stata_conference_a();
  trial.distance_m = 3.0;
  trial.subject_index = GetParam();
  trial.message = {core::Bit::kZero, core::Bit::kOne};
  trial.seed = 4200 + static_cast<std::uint64_t>(GetParam());
  const sim::GestureResult r = sim::run_gesture_trial(trial);
  EXPECT_EQ(r.flipped, 0);
  EXPECT_GE(r.correct, 1) << "subject " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSubjects, GestureSubjectSweep,
                         ::testing::Range(0, sim::kNumSubjects));

class GestureOrientationSweep : public ::testing::TestWithParam<double> {};

TEST_P(GestureOrientationSweep, SlantedOrientationNeverFlipsBits) {
  // Fig. 6-2(c): the subject need not face the device exactly; the angle
  // magnitude shrinks but the sign (and hence the bit) is preserved.
  sim::GestureTrial trial;
  trial.room = sim::stata_conference_a();
  trial.distance_m = 3.0;
  trial.subject_index = 2;
  trial.facing_offset_deg = GetParam();
  trial.message = {core::Bit::kZero, core::Bit::kOne};
  trial.seed = 4300 + static_cast<std::uint64_t>(GetParam() * 10.0);
  const sim::GestureResult r = sim::run_gesture_trial(trial);
  EXPECT_EQ(r.flipped, 0) << "offset " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Orientations, GestureOrientationSweep,
                         ::testing::Values(0.0, 15.0, 30.0, 45.0));

// ------------------------------------------------- Failure injection ---

TEST(FailureInjection, GestureTrialValidatesInput) {
  sim::GestureTrial empty;
  empty.room = sim::stata_conference_a();
  EXPECT_THROW((void)sim::run_gesture_trial(empty), InvalidArgument);

  sim::GestureTrial bad_dist;
  bad_dist.room = sim::stata_conference_a();
  bad_dist.message = {core::Bit::kZero};
  bad_dist.distance_m = -1.0;
  EXPECT_THROW((void)sim::run_gesture_trial(bad_dist), InvalidArgument);
}

TEST(FailureInjection, CountingTrialValidatesSubjects) {
  sim::CountingTrial t;
  t.room = sim::stata_conference_a();
  t.num_humans = 3;
  t.subjects = {0};  // too few
  EXPECT_THROW((void)sim::run_counting_trial(t), InvalidArgument);
}

TEST(FailureInjection, MusicConfigRejectsDegenerateSetups) {
  core::MusicConfig tiny;
  tiny.subarray = 1;
  EXPECT_THROW(core::SmoothedMusic{tiny}, InvalidArgument);
  core::MusicConfig crowded;
  crowded.max_sources = 40;
  crowded.subarray = 32;
  EXPECT_THROW(core::SmoothedMusic{crowded}, InvalidArgument);
}

TEST(FailureInjection, SteeringGridRejectsBadStep) {
  EXPECT_THROW((void)core::angle_grid_deg(0.0), InvalidArgument);
  EXPECT_THROW((void)core::angle_grid_deg(-1.0), InvalidArgument);
}

}  // namespace
}  // namespace wivi
